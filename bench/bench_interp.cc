// Experiment: execution-tier throughput — legacy vs decoded vs JIT
// (DESIGN.md §10, §14).
//
// Measures interpreter throughput — executions/sec of one verified program —
// for the legacy instruction-at-a-time interpreter, the pre-decoded micro-op
// engine, and the x86-64 JIT tier, on a plain and a sanitizer-rewritten
// program, at repeat=1 and repeat=64 (the campaign's hot ProgTestRunRepeat
// shape). Each timed batch reproduces one campaign case: ResetCaseState
// (arena rewind — the KASAN-model arena never reuses freed memory, so a
// long-lived substrate would exhaust it), map create, PROG_LOAD (verify +
// rewrite + decode + compile), then one test_run of |repeat| back-to-back
// executions. At repeat=1 the per-case verify/decode/compile overhead is
// unamortized — the JIT's worst case (a fresh code mapping per batch); at
// repeat=64 execution dominates, which is where the native tier pays off.
//
// The measured program is a 200-iteration bounded loop doing three
// map-value accesses per iteration. Map-value pointers are exactly what the
// sanitation pass instruments (constant-offset stack accesses are skipped by
// design, paper §4.2), so the sanitized variant executes ~600
// bpf_asan_{load,store} dispatches per run — the path the decoded engine
// lowers to inlined uops and the JIT compiles to inline shadow checks.
//
// Digest equality is enforced inside the bench, twice:
//   * per-batch: all three engines must produce identical ExecResult
//     (r0, errno, insns_executed) for every measured configuration, and
//   * campaign-level: a full serial campaign (sanitize on, all bugs) run
//     with --interp=legacy, --interp=decoded, and --interp=jit must produce
//     the same StatsDigest. A faster engine that drifts is a correctness
//     failure, not a perf data point.
//
// Acceptance bars: decoded >= 1.5x legacy execs/sec on the sanitized program
// at repeat=64 (ISSUE 4), and jit >= 3x decoded on the same cell (ISSUE 9;
// enforced only where JitAvailable() — elsewhere the jit tier downgrades to
// decoded and the bar would measure the downgrade, not the JIT).
//
// Results go to stdout as a table and to bench_interp.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/checkpoint.h"
#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/jit_prog.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bvf {
namespace {

constexpr int kLoopIterations = 200;
constexpr uint64_t kTotalExecs = 4096;  // per measurement cell
constexpr int kBestOf = 3;              // damp scheduler noise
constexpr uint64_t kCampaignIterations = 500;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Bounded loop over a map value: load, store, load back, ALU mix. The three
// accesses per iteration go through a PTR_TO_MAP_VALUE pointer, so the
// sanitizer rewrites each into a bpf_asan_load/store call.
bpf::Program LoopProgram(int map_fd) {
  using namespace bpf;
  ProgramBuilder b;
  b.StoreImm(kSizeW, kR10, -4, 0);          //  0: key = 0
  b.LdMapFd(kR1, map_fd);                   //  1 (+hi slot 2)
  b.Mov(kR2, kR10);                         //  3
  b.Add(kR2, -4);                           //  4
  b.Call(kHelperMapLookupElem);             //  5
  b.JmpIf(kJmpJne, kR0, 0, 2);              //  6: value != null -> insn 9
  b.Mov(kR0, 0);                            //  7
  b.Ret();                                  //  8
  b.Mov(kR8, kR0);                          //  9: value pointer
  b.Mov(kR6, 0);                            // 10: accumulator
  b.Mov(kR7, kLoopIterations);              // 11: counter
  // loop: (insn 12)
  b.Load(kSizeDw, kR1, kR8, 0);             // 12
  b.Add(kR6, kR1);                          // 13
  b.Store(kSizeDw, kR8, kR6, 8);            // 14
  b.Load(kSizeDw, kR2, kR8, 8);             // 15
  b.Alu(kAluXor, kR6, kR2);                 // 16
  b.Alu(kAluMul, kR6, 3);                   // 17
  b.Add(kR6, 7);                            // 18
  b.Mov(kR1, 1);                            // 19
  b.Alu(kAluRsh, kR6, kR1);                 // 20: shifts need the reg form
  b.Alu(kAluSub, kR7, 1);                   // 21
  b.JmpIf(kJmpJne, kR7, 0, -11);            // 22: back to insn 12
  b.Mov(kR0, kR6);                          // 23
  b.Ret();                                  // 24
  return b.Build();
}

struct Measurement {
  double seconds = 0;
  double execs_per_sec = 0;
  uint64_t r0 = 0;
  int err = 0;
  uint64_t insns = 0;
  bool ok = true;
};

// One campaign-case-shaped batch per ProgTestRunRepeat call: reset, map,
// load, run |repeat| times. Returns the wall time of |batches| such cases.
// No caches are attached: every batch pays the full verify/decode/compile
// cost its engine incurs at PROG_LOAD, exactly like a cache-miss campaign
// case.
Measurement Measure(bpf::ExecEngine engine, bool sanitize, int repeat) {
  Measurement best;
  best.ok = false;
  for (int attempt = 0; attempt < kBestOf; ++attempt) {
    bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
    bpf::Bpf facade(kernel);
    facade.set_exec_engine(engine);
    Sanitizer sanitizer;
    if (sanitize) {
      bpf::BpfAsan::Register(kernel);
      facade.set_instrument(sanitizer.Hook());
    }
    const uint64_t batches = kTotalExecs / static_cast<uint64_t>(repeat);
    bpf::MapDef def;
    def.value_size = 16;
    bpf::ExecResult last;
    bool ok = true;
    const double start = Now();
    for (uint64_t i = 0; i < batches && ok; ++i) {
      facade.ResetCaseState();
      const int map_fd = facade.MapCreate(def);
      bpf::VerifierResult result;
      const int fd = facade.ProgLoad(LoopProgram(map_fd), &result);
      if (map_fd <= 0 || fd <= 0) {
        fprintf(stderr, "FATAL: bench case setup failed (map %d, prog %d): %s\n",
                map_fd, fd, result.log.c_str());
        ok = false;
        break;
      }
      last = facade.ProgTestRunRepeat(fd, repeat);
      ok = last.err == 0;
    }
    const double seconds = Now() - start;
    if (!ok) {
      fprintf(stderr, "FATAL: bench execution failed: err=%d (%s)\n", last.err,
              last.abort_reason.c_str());
      exit(1);
    }
    if (attempt == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.execs_per_sec = static_cast<double>(batches * repeat) / seconds;
      best.r0 = last.r0;
      best.err = last.err;
      best.insns = last.insns_executed;
      best.ok = true;
    }
  }
  return best;
}

std::string CampaignDigest(bpf::ExecEngine engine) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kCampaignIterations;
  options.seed = 1;
  options.interp_engine = engine;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  return StatsDigest(stats);
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("execution tiers: legacy vs decoded vs jit throughput");
  printf("program: %d-iteration loop, 3 map-value accesses/iteration; %" PRIu64
         " execs per cell, best of %d\n"
         "each batch = one campaign case: reset + map create + PROG_LOAD + "
         "test_run(repeat)\n"
         "jit tier: %s\n\n",
         kLoopIterations, kTotalExecs, kBestOf,
         bpf::JitAvailable() ? "available (x86-64, W^X)"
                             : "UNAVAILABLE (jit column runs decoded)");

  struct Cell {
    const char* label;
    bool sanitize;
    int repeat;
    Measurement legacy;
    Measurement decoded;
    Measurement jit;
  };
  Cell cells[] = {
      {"plain      repeat=1", false, 1, {}, {}, {}},
      {"plain      repeat=64", false, 64, {}, {}, {}},
      {"sanitized  repeat=1", true, 1, {}, {}, {}},
      {"sanitized  repeat=64", true, 64, {}, {}, {}},
  };

  bool exec_parity = true;
  printf("%-22s %12s %12s %12s %9s %9s\n", "config", "legacy e/s", "decoded e/s",
         "jit e/s", "dec/leg", "jit/dec");
  PrintRule(82);
  for (Cell& cell : cells) {
    cell.legacy = Measure(bpf::ExecEngine::kLegacy, cell.sanitize, cell.repeat);
    cell.decoded = Measure(bpf::ExecEngine::kDecoded, cell.sanitize, cell.repeat);
    cell.jit = Measure(bpf::ExecEngine::kJit, cell.sanitize, cell.repeat);
    const bool same = cell.legacy.r0 == cell.decoded.r0 &&
                      cell.legacy.err == cell.decoded.err &&
                      cell.legacy.insns == cell.decoded.insns &&
                      cell.jit.r0 == cell.decoded.r0 &&
                      cell.jit.err == cell.decoded.err &&
                      cell.jit.insns == cell.decoded.insns;
    exec_parity = exec_parity && same;
    printf("%-22s %12.0f %12.0f %12.0f %8.2fx %8.2fx%s\n", cell.label,
           cell.legacy.execs_per_sec, cell.decoded.execs_per_sec,
           cell.jit.execs_per_sec,
           cell.decoded.execs_per_sec / cell.legacy.execs_per_sec,
           cell.jit.execs_per_sec / cell.decoded.execs_per_sec,
           same ? "" : "  EXEC MISMATCH");
  }

  const double sanitized64_speedup =
      cells[3].decoded.execs_per_sec / cells[3].legacy.execs_per_sec;
  const double sanitized64_jit_speedup =
      cells[3].jit.execs_per_sec / cells[3].decoded.execs_per_sec;
  printf("\nper-exec results identical across engines: %s\n",
         exec_parity ? "yes" : "NO");
  printf("sanitized repeat=64 decoded/legacy speedup: %.2fx (acceptance bar >= 1.5x)\n",
         sanitized64_speedup);
  printf("sanitized repeat=64 jit/decoded speedup: %.2fx (acceptance bar >= 3x%s)\n",
         sanitized64_jit_speedup,
         bpf::JitAvailable() ? "" : "; waived, jit unavailable");

  printf("\ncampaign digest check (%" PRIu64 " iterations, sanitize on, all bugs)\n",
         kCampaignIterations);
  const std::string digest_decoded = CampaignDigest(bpf::ExecEngine::kDecoded);
  const std::string digest_legacy = CampaignDigest(bpf::ExecEngine::kLegacy);
  const std::string digest_jit = CampaignDigest(bpf::ExecEngine::kJit);
  const bool digests_match =
      digest_decoded == digest_legacy && digest_decoded == digest_jit;
  printf("decoded %s / legacy %s / jit %s: %s\n", digest_decoded.c_str(),
         digest_legacy.c_str(), digest_jit.c_str(),
         digests_match ? "identical" : "DIVERGED");

  FILE* json = fopen("bench_interp.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"loop_iterations\": %d,\n"
            "  \"execs_per_cell\": %" PRIu64 ",\n"
            "  \"best_of\": %d,\n"
            "  \"jit_available\": %s,\n"
            "  \"exec_parity\": %s,\n"
            "  \"campaign_digests_match\": %s,\n"
            "  \"campaign_digest\": \"%s\",\n"
            "  \"sanitized_repeat64_speedup\": %.3f,\n"
            "  \"sanitized_repeat64_jit_speedup\": %.3f,\n"
            "  \"cells\": [\n",
            kLoopIterations, kTotalExecs, kBestOf,
            bpf::JitAvailable() ? "true" : "false", exec_parity ? "true" : "false",
            digests_match ? "true" : "false", digest_decoded.c_str(),
            sanitized64_speedup, sanitized64_jit_speedup);
    for (size_t i = 0; i < 4; ++i) {
      const Cell& cell = cells[i];
      fprintf(json,
              "    {\"sanitize\": %s, \"repeat\": %d, \"legacy_execs_per_sec\": %.1f, "
              "\"decoded_execs_per_sec\": %.1f, \"jit_execs_per_sec\": %.1f, "
              "\"speedup\": %.3f, \"jit_speedup\": %.3f}%s\n",
              cell.sanitize ? "true" : "false", cell.repeat,
              cell.legacy.execs_per_sec, cell.decoded.execs_per_sec,
              cell.jit.execs_per_sec,
              cell.decoded.execs_per_sec / cell.legacy.execs_per_sec,
              cell.jit.execs_per_sec / cell.decoded.execs_per_sec, i == 3 ? "" : ",");
    }
    fprintf(json, "  ]\n}\n");
    fclose(json);
    printf("wrote bench_interp.json\n");
  }

  if (!exec_parity || !digests_match) {
    return 1;
  }
  if (sanitized64_speedup < 1.5) {
    return 1;
  }
  if (bpf::JitAvailable() && sanitized64_jit_speedup < 3.0) {
    return 1;
  }
  return 0;
}
