// Experiment: parallel sharded campaign engine throughput (DESIGN.md §9).
//
// Measures the same campaign (all bugs, faults off, structured generation,
// verdict cache on) on the legacy serial engine and on the parallel engine at
// jobs ∈ {1, 2, 4, 8}, reporting executions/sec, covered-branches/sec, and
// the verdict-cache hit rate. Because the engine is bit-deterministic across
// job counts, every parallel row is required to produce the same StatsDigest
// — a throughput run that diverges is a correctness failure, not a perf data
// point.
//
// Acceptance bars (enforced only where the host can express them):
//   * jobs=1 parallel within 10% of the legacy serial engine (always checked:
//     the sharded machinery may not tax a single-threaded campaign), and
//   * ≥3x throughput at jobs=8 — checked only when the host actually has ≥8
//     hardware threads; on smaller hosts the scaling rows are informational
//     (a 1-core container cannot demonstrate parallel speedup).
//
// Results go to stdout as a table and to bench_parallel.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/checkpoint.h"
#include "src/core/parallel.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 2000;
constexpr int kRepeats = 3;  // best-of to damp scheduler noise

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double seconds = 0;
  uint64_t exec_runs = 0;
  size_t coverage = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::string digest;
};

CampaignOptions BenchOptions(int jobs) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kIterations;
  options.seed = 1;
  options.jobs = jobs;
  options.verdict_cache = true;
  return options;
}

RunResult Measure(int jobs, bool serial_engine) {
  const CampaignOptions options = BenchOptions(jobs);
  RunResult best;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    StructuredGenerator generator(options.version);
    CampaignStats stats;
    const double start = Now();
    if (serial_engine) {
      Fuzzer fuzzer(generator, options);
      stats = fuzzer.Run();
    } else {
      ParallelFuzzer fuzzer(generator, options);
      stats = fuzzer.Run();
    }
    const double seconds = Now() - start;
    if (repeat == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.exec_runs = stats.exec_runs;
      best.coverage = stats.final_coverage;
      best.cache_hits = stats.verdict_cache_hits;
      best.cache_misses = stats.verdict_cache_misses;
      best.digest = StatsDigest(stats);
    }
  }
  return best;
}

double HitRate(const RunResult& r) {
  const uint64_t total = r.cache_hits + r.cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(r.cache_hits) / static_cast<double>(total);
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  PrintHeader("parallel sharded campaign engine: throughput and determinism");
  printf("campaign: %" PRIu64 " iterations, all bugs, verdict cache on, best of %d runs\n",
         kIterations, kRepeats);
  printf("host: %u hardware threads\n\n", hw_threads);

  const RunResult serial = Measure(1, /*serial_engine=*/true);
  const int kJobs[] = {1, 2, 4, 8};
  RunResult parallel[4];
  for (int i = 0; i < 4; ++i) {
    parallel[i] = Measure(kJobs[i], /*serial_engine=*/false);
  }

  printf("%-12s %9s %10s %10s %9s %8s\n", "engine", "seconds", "iters/s", "execs/s",
         "cov/s", "hit%");
  PrintRule(64);
  printf("%-12s %9.3f %10.0f %10.0f %9.0f %7.1f%%\n", "serial", serial.seconds,
         kIterations / serial.seconds, serial.exec_runs / serial.seconds,
         serial.coverage / serial.seconds, 100 * HitRate(serial));
  bool digests_match = true;
  bool any_oversubscribed = false;
  for (int i = 0; i < 4; ++i) {
    // A row with more jobs than hardware threads cannot demonstrate parallel
    // speedup — the workers time-slice one another. Keep the row (digest
    // determinism still holds and must be checked) but mark it informational
    // so nobody quotes an oversubscribed number as a scaling result.
    const bool oversubscribed = static_cast<unsigned>(kJobs[i]) > hw_threads;
    any_oversubscribed = any_oversubscribed || oversubscribed;
    char label[16];
    snprintf(label, sizeof(label), "jobs=%d", kJobs[i]);
    printf("%-12s %9.3f %10.0f %10.0f %9.0f %7.1f%%%s\n", label, parallel[i].seconds,
           kIterations / parallel[i].seconds, parallel[i].exec_runs / parallel[i].seconds,
           parallel[i].coverage / parallel[i].seconds, 100 * HitRate(parallel[i]),
           oversubscribed ? "  *" : "");
    digests_match = digests_match && parallel[i].digest == parallel[0].digest;
  }
  if (any_oversubscribed) {
    printf("* informational: more jobs than the host's %u hardware threads; "
           "excluded from speedup bars\n",
           hw_threads);
  }

  const double single_job_overhead =
      100 * (parallel[0].seconds / serial.seconds - 1);
  const double speedup8 = parallel[0].seconds / parallel[3].seconds;
  printf("\nparallel digests identical across job counts: %s (%s)\n",
         digests_match ? "yes" : "NO", parallel[0].digest.c_str());
  printf("jobs=1 vs serial engine: %+.2f%% (acceptance bar < 10%%)\n", single_job_overhead);
  printf("jobs=8 speedup over jobs=1: %.2fx (bar >= 3x, enforced only with >= 8 hw threads)\n",
         speedup8);

  FILE* json = fopen("bench_parallel.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"iterations\": %" PRIu64 ",\n"
            "  \"repeats\": %d,\n"
            "  \"hardware_threads\": %u,\n"
            "  \"serial_seconds\": %.4f,\n"
            "  \"serial_execs_per_sec\": %.1f,\n"
            "  \"single_job_overhead_pct\": %.2f,\n"
            "  \"jobs8_speedup\": %.3f,\n"
            "  \"digests_match\": %s,\n"
            "  \"stats_digest\": \"%s\",\n"
            "  \"per_jobs\": [\n",
            kIterations, kRepeats, hw_threads, serial.seconds,
            serial.exec_runs / serial.seconds, single_job_overhead, speedup8,
            digests_match ? "true" : "false", parallel[0].digest.c_str());
    for (int i = 0; i < 4; ++i) {
      fprintf(json,
              "    {\"jobs\": %d, \"seconds\": %.4f, \"iters_per_sec\": %.1f, "
              "\"execs_per_sec\": %.1f, \"coverage_per_sec\": %.1f, "
              "\"cache_hit_rate\": %.4f, \"informational\": %s}%s\n",
              kJobs[i], parallel[i].seconds, kIterations / parallel[i].seconds,
              parallel[i].exec_runs / parallel[i].seconds,
              parallel[i].coverage / parallel[i].seconds, HitRate(parallel[i]),
              static_cast<unsigned>(kJobs[i]) > hw_threads ? "true" : "false",
              i == 3 ? "" : ",");
    }
    fprintf(json, "  ]\n}\n");
    fclose(json);
    printf("wrote bench_parallel.json\n");
  }

  if (!digests_match) {
    return 1;
  }
  if (single_job_overhead >= 10) {
    return 1;
  }
  if (hw_threads >= 8 && speedup8 < 3) {
    return 1;
  }
  return 0;
}
