// Experiment: §6.3 acceptance-rate analysis.
//
// Paper results:
//  * BVF reaches a 49% verifier-acceptance rate, more than twice Syzkaller's
//    23.5%; the dominant rejection errnos for Syzkaller are EACCES and EINVAL.
//  * Buzzer's two modes accept at ~1% (random bytes) and ~97% (ALU/JMP mode);
//    in the latter more than 88.4% of instructions are ALU and JMP.

#include <cerrno>
#include <cinttypes>

#include "bench/bench_util.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 8000;

CampaignStats RunTool(const char* tool) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::None();
  options.iterations = kIterations;
  options.seed = 99;
  options.coverage_points = 0;
  std::unique_ptr<Generator> generator = MakeTool(tool, options.version);
  Fuzzer fuzzer(*generator, options);
  return fuzzer.Run();
}

const char* ErrnoName(int err) {
  switch (err) {
    case EACCES:
      return "EACCES";
    case EINVAL:
      return "EINVAL";
    case E2BIG:
      return "E2BIG";
    case EBADF:
      return "EBADF";
    case ENOENT:
      return "ENOENT";
    default:
      return "other";
  }
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("§6.3: verifier acceptance rate and rejection breakdown (8000 programs/tool)");
  printf("%-14s %10s %14s %16s\n", "tool", "accepted", "acceptance", "ALU+JMP share");
  PrintRule(60);

  const char* tools[] = {"bvf", "syzkaller", "buzzer", "buzzer-random"};
  for (const char* tool : tools) {
    const CampaignStats stats = RunTool(tool);
    printf("%-14s %10" PRIu64 " %13.1f%% %15.1f%%\n", tool, stats.accepted,
           100 * stats.AcceptanceRate(), 100 * stats.AluJmpShare());
    printf("    rejections:");
    for (const auto& [err, count] : stats.reject_errno) {
      printf("  %s=%" PRIu64, ErrnoName(err), count);
    }
    printf("\n");
  }
  PrintRule(60);
  printf(
      "Paper: BVF 49%% vs Syzkaller 23.5%% (EACCES/EINVAL dominate Syzkaller's\n"
      "rejections); Buzzer 97%% in ALU/JMP mode (>88.4%% ALU+JMP instructions) and\n"
      "~1%% in random mode. BVF's programs are expressive *and* comparably accepted.\n");
  return 0;
}
