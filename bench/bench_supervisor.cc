// Experiment: crash-isolated campaign supervisor overhead (DESIGN.md §12).
//
// Runs the same campaign (all bugs, faults off, structured generation with
// every case pinned to repeat=64 sanitized executions — the campaign's hot
// ProgTestRunRepeat shape, cf. bench_interp — verdict cache on, jobs=2)
// three ways:
//
//   * in-process parallel engine (the §9 thread-sharded baseline),
//   * supervised: one forked worker process per shard, epochs streamed over
//     the pipe protocol and merged by the coordinator,
//   * supervised with one injected SIGKILL mid-epoch (informational): the
//     price of reaping the worker, re-forking, and re-running the epoch.
//
// The supervisor exists to survive worker crashes, not to be fast — but it
// must not tax a healthy campaign. Acceptance bars:
//
//   * supervised digest bit-identical to the in-process digest (a divergent
//     run is a correctness failure, not a perf data point), and
//   * supervised throughput within 10% of in-process (fork + pipe framing +
//     coordinator-side merge is per-epoch, not per-case, so the overhead
//     amortises across the epoch length).
//
// The crash row is never gated on time — its digest must still match, which
// is the whole point of transparent retry.
//
// Results go to stdout as a table and to bench_supervisor.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/checkpoint.h"
#include "src/core/parallel.h"
#include "src/core/supervisor/supervisor.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 1000;
constexpr int kRepeats = 5;  // best-of to damp scheduler noise (forked workers
                             // on a shared core are noisier than threads)
constexpr int kJobs = 2;
constexpr int kTestRuns = 64;

// Structured generation with every case's driver pinned to repeat=64
// executions. The supervisor's per-case cost (one CASE_BEGIN heartbeat frame)
// is fixed, so the honest overhead number comes from the workload the
// campaign actually spends its time in: execution-dominated sanitized runs.
class Repeat64Generator : public Generator {
 public:
  explicit Repeat64Generator(bpf::KernelVersion version)
      : version_(version), inner_(version) {}

  const char* name() const override { return "bvf-repeat64"; }
  FuzzCase Generate(bpf::Rng& rng) override {
    FuzzCase the_case = inner_.Generate(rng);
    the_case.test_runs = kTestRuns;
    return the_case;
  }
  void Mutate(bpf::Rng& rng, FuzzCase& the_case) override {
    inner_.Mutate(rng, the_case);
    the_case.test_runs = kTestRuns;
  }
  std::unique_ptr<Generator> Clone() const override {
    return std::make_unique<Repeat64Generator>(version_);
  }

 private:
  bpf::KernelVersion version_;
  StructuredGenerator inner_;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double seconds = 0;
  uint64_t exec_runs = 0;
  size_t coverage = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  std::string digest;
};

CampaignOptions BenchOptions() {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kIterations;
  options.seed = 1;
  options.jobs = kJobs;
  options.verdict_cache = true;
  return options;
}

enum class Engine { kInProcess, kSupervised, kSupervisedCrash };

RunResult Measure(Engine engine, const char* marker_dir) {
  RunResult best;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    CampaignOptions options = BenchOptions();
    if (engine == Engine::kSupervisedCrash) {
      // One SIGKILL per run: the marker file arms a single shot, and a fresh
      // path per repeat re-arms it.
      char marker[256];
      snprintf(marker, sizeof(marker), "%s/crash-%d.marker", marker_dir, repeat);
      options.test_crash_at = kIterations / 2;
      options.test_crash_mode = 1;  // SIGKILL
      options.test_crash_marker = marker;
    }
    Repeat64Generator generator(options.version);
    CampaignStats stats;
    const double start = Now();
    if (engine == Engine::kInProcess) {
      ParallelFuzzer fuzzer(generator, options);
      stats = fuzzer.Run();
    } else {
      SupervisedFuzzer fuzzer(generator, options);
      stats = fuzzer.Run();
    }
    const double seconds = Now() - start;
    if (repeat == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.exec_runs = stats.exec_runs;
      best.coverage = stats.final_coverage;
      best.crashes = stats.worker_crashes;
      best.restarts = stats.worker_restarts;
      best.digest = StatsDigest(stats);
    }
  }
  return best;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  char marker_dir[] = "/tmp/bvf-bench-supervisor-XXXXXX";
  if (!mkdtemp(marker_dir)) {
    fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  PrintHeader("crash-isolated campaign supervisor: overhead and determinism");
  printf("campaign: %" PRIu64
         " iterations, all bugs, repeat=%d sanitized runs/case, verdict cache on, "
         "jobs=%d, best of %d runs\n",
         kIterations, kTestRuns, kJobs, kRepeats);
  printf("host: %u hardware threads\n\n", hw_threads);

  const RunResult inproc = Measure(Engine::kInProcess, marker_dir);
  const RunResult sup = Measure(Engine::kSupervised, marker_dir);
  const RunResult crash = Measure(Engine::kSupervisedCrash, marker_dir);

  printf("%-22s %9s %10s %10s %9s %9s\n", "engine", "seconds", "iters/s", "execs/s",
         "crashes", "restarts");
  PrintRule(74);
  const RunResult* rows[] = {&inproc, &sup, &crash};
  const char* labels[] = {"in-process", "supervised", "supervised+SIGKILL"};
  for (int i = 0; i < 3; ++i) {
    printf("%-22s %9.3f %10.0f %10.0f %9" PRIu64 " %9" PRIu64 "\n", labels[i],
           rows[i]->seconds, kIterations / rows[i]->seconds,
           rows[i]->exec_runs / rows[i]->seconds, rows[i]->crashes, rows[i]->restarts);
  }

  const bool digests_match =
      sup.digest == inproc.digest && crash.digest == inproc.digest;
  const double overhead = 100 * (sup.seconds / inproc.seconds - 1);
  const double crash_cost = 100 * (crash.seconds / inproc.seconds - 1);
  printf("\nsupervised + crash-recovery digests match in-process: %s (%s)\n",
         digests_match ? "yes" : "NO", inproc.digest.c_str());
  printf("supervised vs in-process: %+.2f%% (acceptance bar < 10%%)\n", overhead);
  printf("supervised with one SIGKILL + retried epoch: %+.2f%% (informational)\n",
         crash_cost);
  if (crash.crashes != 1 || crash.restarts != 1) {
    printf("UNEXPECTED: crash row saw %" PRIu64 " crashes / %" PRIu64
           " restarts (wanted 1/1)\n",
           crash.crashes, crash.restarts);
  }

  FILE* json = fopen("bench_supervisor.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"iterations\": %" PRIu64 ",\n"
            "  \"repeats\": %d,\n"
            "  \"jobs\": %d,\n"
            "  \"test_runs_per_case\": %d,\n"
            "  \"hardware_threads\": %u,\n"
            "  \"inprocess_seconds\": %.4f,\n"
            "  \"inprocess_execs_per_sec\": %.1f,\n"
            "  \"supervised_seconds\": %.4f,\n"
            "  \"supervised_execs_per_sec\": %.1f,\n"
            "  \"supervised_overhead_pct\": %.2f,\n"
            "  \"crash_recovery_seconds\": %.4f,\n"
            "  \"crash_recovery_overhead_pct\": %.2f,\n"
            "  \"crash_row_crashes\": %" PRIu64 ",\n"
            "  \"crash_row_restarts\": %" PRIu64 ",\n"
            "  \"digests_match\": %s,\n"
            "  \"stats_digest\": \"%s\"\n"
            "}\n",
            kIterations, kRepeats, kJobs, kTestRuns, hw_threads, inproc.seconds,
            inproc.exec_runs / inproc.seconds, sup.seconds,
            sup.exec_runs / sup.seconds, overhead, crash.seconds, crash_cost,
            crash.crashes, crash.restarts, digests_match ? "true" : "false",
            inproc.digest.c_str());
    fclose(json);
    printf("wrote bench_supervisor.json\n");
  }

  if (!digests_match) {
    return 1;
  }
  if (overhead >= 10) {
    return 1;
  }
  if (crash.crashes != 1 || crash.restarts != 1) {
    return 1;
  }
  return 0;
}
