// Ablation: which parts of BVF's program structure (paper §4.1, Fig. 4) are
// responsible for the acceptance-rate and coverage gains of §6.3.
//
// Variants disable one structural component at a time: the init header
// (register initialization from the object pool), the call frames (helper /
// kfunc interaction), the jump frames (control-flow nesting and bounded
// loops), and the risky choices. The full configuration should dominate —
// this is the design-choice evidence behind the paper's RQ2 claim.

#include <cinttypes>

#include "bench/bench_util.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 6000;

struct Variant {
  const char* name;
  StructuredGenOptions options;
};

CampaignStats RunVariant(const Variant& variant, uint64_t seed) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kIterations;
  options.seed = seed;
  options.coverage_points = 0;
  StructuredGenerator generator(options.version, variant.options);
  Fuzzer fuzzer(generator, options);
  return fuzzer.Run();
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;

  StructuredGenOptions full;
  StructuredGenOptions no_init = full;
  no_init.init_header = false;
  StructuredGenOptions no_calls = full;
  no_calls.call_frames = false;
  StructuredGenOptions no_jumps = full;
  no_jumps.jump_frames = false;
  StructuredGenOptions no_risky = full;
  no_risky.risky = false;

  const Variant variants[] = {
      {"full structure", full},   {"no init header", no_init}, {"no call frames", no_calls},
      {"no jump frames", no_jumps}, {"no risky choices", no_risky},
  };

  PrintHeader("Ablation: structural components of the generator (all bugs live, 6000 progs)");
  printf("%-18s %12s %12s %14s %16s\n", "variant", "acceptance", "coverage", "bugs found",
         "ind#1 / ind#2");
  PrintRule(80);
  for (const Variant& variant : variants) {
    const CampaignStats stats = RunVariant(variant, 7);
    int found = 0;
    int ind1 = 0;
    int ind2 = 0;
    bool bug_seen[16] = {};
    for (const Finding& finding : stats.findings) {
      if (finding.triaged != KnownBug::kUnknown &&
          !bug_seen[static_cast<int>(finding.triaged)]) {
        bug_seen[static_cast<int>(finding.triaged)] = true;
        ++found;
        if (finding.indicator == 1) {
          ++ind1;
        } else {
          ++ind2;
        }
      }
    }
    printf("%-18s %11.1f%% %12zu %11d/12 %10d / %d\n", variant.name,
           100 * stats.AcceptanceRate(), stats.final_coverage, found, ind1, ind2);
  }
  PrintRule(80);
  printf("Reading: call frames carry the kernel-interaction (indicator #2) bugs and most\n"
         "of the coverage; the risky choices carry the indicator #1 (memory) bugs; the\n"
         "init header and jump frames add breadth. The full structure dominates.\n");
  return 0;
}
