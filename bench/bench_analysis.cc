// Experiment: static-analysis subsystem cost.
//
// Two questions: (1) how fast are the bytecode passes (CFG construction,
// liveness, reaching definitions, lints) over generated programs -- they run
// on the generator's hot path as a pre-verifier filter, so per-program cost
// matters; (2) what does the indicator-#3 abstract-state audit cost a whole
// campaign -- the acceptance bar is < 15% throughput regression with the
// audit enabled.
//
// Results go to stdout as a table and to bench_analysis.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/cfg.h"
#include "src/analysis/lints.h"
#include "src/analysis/liveness.h"
#include "src/analysis/reaching_defs.h"

namespace bvf {
namespace {

constexpr int kCorpusSize = 500;
constexpr int kPassRepeats = 20;
constexpr uint64_t kCampaignIterations = 1500;

struct PassTimings {
  double cfg_us = 0;
  double liveness_us = 0;
  double reaching_us = 0;
  double lint_us = 0;
  uint64_t insns = 0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PassTimings MeasurePasses(const std::vector<FuzzCase>& corpus) {
  PassTimings t;
  for (int repeat = 0; repeat < kPassRepeats; ++repeat) {
    for (const FuzzCase& the_case : corpus) {
      if (repeat == 0) t.insns += the_case.prog.insns.size();
      double start = Now();
      const Cfg cfg = BuildCfg(the_case.prog);
      t.cfg_us += Now() - start;

      start = Now();
      ComputeLiveness(the_case.prog, cfg);
      t.liveness_us += Now() - start;

      start = Now();
      ComputeReachingDefs(the_case.prog, cfg);
      t.reaching_us += Now() - start;

      start = Now();
      LintProgram(the_case.prog);
      t.lint_us += Now() - start;
    }
  }
  const double denom = 1e-6 * kPassRepeats * corpus.size();  // -> us/program
  t.cfg_us /= denom;
  t.liveness_us /= denom;
  t.reaching_us /= denom;
  t.lint_us /= denom;
  return t;
}

double MeasureCampaign(bool audit, uint64_t* findings) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kCampaignIterations;
  options.seed = 1;
  options.audit_state = audit;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const double start = Now();
  const CampaignStats stats = fuzzer.Run();
  const double seconds = Now() - start;
  *findings = stats.findings.size();
  return seconds;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("static analysis: per-program pass cost and campaign audit overhead");

  // Corpus: whatever the structured generator emits (the filter sees exactly
  // this distribution, accepted or not).
  std::vector<FuzzCase> corpus;
  StructuredGenerator generator(bpf::KernelVersion::kBpfNext);
  bpf::Rng rng(7);
  corpus.reserve(kCorpusSize);
  for (int i = 0; i < kCorpusSize; ++i) {
    corpus.push_back(generator.Generate(rng));
  }

  const PassTimings passes = MeasurePasses(corpus);
  const double avg_insns = static_cast<double>(passes.insns) / kCorpusSize;
  printf("corpus: %d generated programs, %.1f insns on average\n\n", kCorpusSize,
         avg_insns);
  printf("%-24s %12s\n", "pass", "us/program");
  PrintRule(38);
  printf("%-24s %12.2f\n", "cfg construction", passes.cfg_us);
  printf("%-24s %12.2f\n", "liveness", passes.liveness_us);
  printf("%-24s %12.2f\n", "reaching definitions", passes.reaching_us);
  printf("%-24s %12.2f\n", "lints (all of the above)", passes.lint_us);

  uint64_t findings_off = 0;
  uint64_t findings_on = 0;
  const double base = MeasureCampaign(/*audit=*/false, &findings_off);
  const double audited = MeasureCampaign(/*audit=*/true, &findings_on);
  const double overhead = 100 * (audited / base - 1);

  printf("\ncampaign (%" PRIu64 " iterations, all bugs): %.2fs -> %.2fs with audit"
         " (%+.1f%%, acceptance bar < 15%%)\n",
         kCampaignIterations, base, audited, overhead);
  printf("findings: %" PRIu64 " -> %" PRIu64 " with the state audit on\n",
         findings_off, findings_on);

  FILE* json = fopen("bench_analysis.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"corpus_programs\": %d,\n"
            "  \"avg_insns\": %.1f,\n"
            "  \"us_per_program\": {\n"
            "    \"cfg\": %.3f,\n"
            "    \"liveness\": %.3f,\n"
            "    \"reaching_defs\": %.3f,\n"
            "    \"lints\": %.3f\n"
            "  },\n"
            "  \"campaign\": {\n"
            "    \"iterations\": %" PRIu64 ",\n"
            "    \"seconds_audit_off\": %.4f,\n"
            "    \"seconds_audit_on\": %.4f,\n"
            "    \"audit_overhead_pct\": %.2f,\n"
            "    \"findings_audit_off\": %" PRIu64 ",\n"
            "    \"findings_audit_on\": %" PRIu64 "\n"
            "  }\n"
            "}\n",
            kCorpusSize, avg_insns, passes.cfg_us, passes.liveness_us,
            passes.reaching_us, passes.lint_us, kCampaignIterations, base, audited,
            overhead, findings_off, findings_on);
    fclose(json);
    printf("wrote bench_analysis.json\n");
  }
  return overhead < 15 ? 0 : 1;
}
