// Shared helpers for the experiment harnesses: campaign construction and
// fixed-width table printing.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/fuzzer.h"
#include "src/core/structured_gen.h"

namespace bvf {

inline std::unique_ptr<Generator> MakeTool(const std::string& tool,
                                           bpf::KernelVersion version) {
  if (tool == "bvf") {
    return std::make_unique<StructuredGenerator>(version);
  }
  if (tool == "syzkaller") {
    return std::make_unique<SyzkallerGenerator>(version);
  }
  if (tool == "buzzer") {
    return std::make_unique<BuzzerGenerator>(version);
  }
  if (tool == "buzzer-random") {
    return std::make_unique<BuzzerGenerator>(version, BuzzerGenerator::Mode::kRandomBytes);
  }
  return nullptr;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    putchar('-');
  }
  putchar('\n');
}

inline void PrintHeader(const char* title) {
  putchar('\n');
  PrintRule();
  printf("%s\n", title);
  PrintRule();
}

}  // namespace bvf

#endif  // BENCH_BENCH_UTIL_H_
