// Experiment: metamorphic oracle overhead and digest invisibility
// (DESIGN.md §11).
//
// The oracle executes K semantics-preserving variants of every accepted case
// through a fresh substrate (PROG_LOAD + test runs, both engines' witness
// fields), so --metamorph buys its divergence checking with extra work per
// accepted case. This bench prices that work and pins the two digest
// contracts the feature ships with:
//
//   1. Overhead: the same serial campaign (all bugs, sanitize + audit on —
//      the realistic hunting shape) is timed with --metamorph off (the PR 4
//      baseline path: the oracle is never constructed) and with
//      --metamorph-k=2. Acceptance bar (ISSUE 5): on/off wall-clock ratio
//      <= 2.5x at K=2.
//   2. Oracle invisibility: on a correct kernel (no injected bugs) no
//      transform may diverge, so the K=2 campaign's StatsDigest must be
//      bit-identical to the metamorph-off digest — the oracle contributes
//      nothing but divergences, and a correct verifier yields none.
//   3. Base-campaign invariance: with --metamorph off, the parallel engine
//      must agree digest-for-digest at --jobs=1 and --jobs=2, i.e. the
//      metamorph plumbing (options, counters, checkpoint lines, barrier
//      merges) is invisible to the base campaign it rides on. (The serial
//      engine is not compared against the parallel one: they draw distinct
//      per-iteration seed streams by design.)
//
// The overhead campaign also reports the divergence counters: with all bugs
// injected the const-remat transform flips bug13's mov-imm/ld_imm64 verdict
// asymmetry, so a healthy run shows nonzero verdict divergences — evidence
// the paid-for oracle actually fires.
//
// Results go to stdout as a table and to bench_metamorph.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/checkpoint.h"
#include "src/core/parallel.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 400;
constexpr uint64_t kSeed = 7;
constexpr int kBestOf = 3;  // damp scheduler noise

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CampaignOptions BaseOptions(bool all_bugs) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = all_bugs ? bpf::BugConfig::All() : bpf::BugConfig::None();
  options.iterations = kIterations;
  options.seed = kSeed;
  return options;
}

struct CampaignRun {
  double seconds = 0;  // best-of-kBestOf wall time
  std::string digest;
  CampaignStats stats;
};

CampaignRun RunSerial(CampaignOptions options, int metamorph_k) {
  options.metamorph = metamorph_k > 0;
  options.metamorph_k = metamorph_k;
  CampaignRun run;
  for (int attempt = 0; attempt < kBestOf; ++attempt) {
    StructuredGenerator generator(options.version);
    Fuzzer fuzzer(generator, options);
    const double start = Now();
    const CampaignStats stats = fuzzer.Run();
    const double seconds = Now() - start;
    if (attempt == 0 || seconds < run.seconds) {
      run.seconds = seconds;
    }
    run.digest = StatsDigest(stats);
    run.stats = stats;
  }
  return run;
}

std::string RunParallelDigest(CampaignOptions options, int jobs) {
  options.jobs = jobs;
  StructuredGenerator generator(options.version);
  ParallelFuzzer fuzzer(generator, options);
  return StatsDigest(fuzzer.Run());
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("metamorphic oracle: K=2 overhead and digest invisibility");
  printf("campaign: %" PRIu64 " iterations, seed %" PRIu64
         ", serial engine, best of %d\n\n",
         kIterations, kSeed, kBestOf);

  // ---- 1. Overhead on the realistic hunting campaign (all bugs). ----
  const CampaignRun off = RunSerial(BaseOptions(/*all_bugs=*/true), 0);
  const CampaignRun k1 = RunSerial(BaseOptions(/*all_bugs=*/true), 1);
  const CampaignRun k2 = RunSerial(BaseOptions(/*all_bugs=*/true), 2);
  const double overhead_k2 = k2.seconds / off.seconds;

  printf("%-18s %10s %10s %12s %12s\n", "config", "seconds", "overhead",
         "variants", "divergences");
  PrintRule(68);
  const CampaignRun* runs[] = {&off, &k1, &k2};
  const char* labels[] = {"metamorph off", "metamorph k=1", "metamorph k=2"};
  for (int i = 0; i < 3; ++i) {
    const CampaignStats& s = runs[i]->stats;
    printf("%-18s %10.3f %9.2fx %12" PRIu64 " %12" PRIu64 "\n", labels[i],
           runs[i]->seconds, runs[i]->seconds / off.seconds,
           s.metamorph_variants,
           s.metamorph_verdict_divergences + s.metamorph_witness_divergences +
               s.metamorph_sanitizer_divergences);
  }
  printf("\nk=2 overhead: %.2fx (acceptance bar <= 2.5x)\n", overhead_k2);
  const uint64_t k2_divergences = k2.stats.metamorph_verdict_divergences +
                                  k2.stats.metamorph_witness_divergences +
                                  k2.stats.metamorph_sanitizer_divergences;
  printf("k=2 divergences on injected bugs: %" PRIu64 " (bug13 evidence)\n",
         k2_divergences);

  // ---- 2. Oracle invisibility on a correct kernel. ----
  const CampaignRun clean_off = RunSerial(BaseOptions(/*all_bugs=*/false), 0);
  const CampaignRun clean_k2 = RunSerial(BaseOptions(/*all_bugs=*/false), 2);
  const bool invisible = clean_off.digest == clean_k2.digest;
  printf("\ncorrect kernel digest, metamorph off %s / k=2 %s: %s\n",
         clean_off.digest.c_str(), clean_k2.digest.c_str(),
         invisible ? "identical" : "DIVERGED");

  // ---- 3. Base campaign unperturbed with --metamorph off. ----
  const std::string parallel_off1 =
      RunParallelDigest(BaseOptions(/*all_bugs=*/true), 1);
  const std::string parallel_off2 =
      RunParallelDigest(BaseOptions(/*all_bugs=*/true), 2);
  const bool base_equal = parallel_off1 == parallel_off2;
  printf("base campaign digest, parallel jobs=1 %s / jobs=2 %s: %s\n",
         parallel_off1.c_str(), parallel_off2.c_str(),
         base_equal ? "identical" : "DIVERGED");

  FILE* json = fopen("bench_metamorph.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"iterations\": %" PRIu64 ",\n"
            "  \"seed\": %" PRIu64 ",\n"
            "  \"best_of\": %d,\n"
            "  \"seconds_off\": %.3f,\n"
            "  \"seconds_k1\": %.3f,\n"
            "  \"seconds_k2\": %.3f,\n"
            "  \"overhead_k1\": %.3f,\n"
            "  \"overhead_k2\": %.3f,\n"
            "  \"k2_variants\": %" PRIu64 ",\n"
            "  \"k2_divergences\": %" PRIu64 ",\n"
            "  \"clean_digest_invisible\": %s,\n"
            "  \"base_digest_off\": \"%s\",\n"
            "  \"base_digest_jobs_invariant\": %s\n"
            "}\n",
            kIterations, kSeed, kBestOf, off.seconds, k1.seconds, k2.seconds,
            k1.seconds / off.seconds, overhead_k2, k2.stats.metamorph_variants,
            k2_divergences, invisible ? "true" : "false", parallel_off1.c_str(),
            base_equal ? "true" : "false");
    fclose(json);
    printf("wrote bench_metamorph.json\n");
  }

  if (!invisible || !base_equal) {
    return 1;
  }
  if (overhead_k2 > 2.5) {
    return 1;
  }
  return 0;
}
