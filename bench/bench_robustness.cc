// Experiment: robustness engine cost.
//
// The fault-injection hooks, execution guards, outcome classification, and
// periodic checkpointing all sit on the campaign hot path, so they must be
// close to free when idle and cheap when armed. Three configurations over the
// same seed and iteration count:
//
//   baseline   -- guards at defaults, no fault injection, no checkpointing
//   guarded    -- wall watchdog armed (2s) + periodic checkpoint every 500
//   faulted    -- guarded plus 10% fault injection and 3-run confirmation
//
// The acceptance bar is < 5% regression for `guarded` over `baseline`: the
// default-on machinery may not tax a clean campaign. `faulted` is reported
// for context (it does strictly more work per case — extra outcomes, fault
// bookkeeping, confirmation re-executions) and has no bar.
//
// Results go to stdout as a table and to bench_robustness.json for tooling.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 2000;
constexpr int kRepeats = 3;  // best-of to damp scheduler noise

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double seconds = 0;
  uint64_t findings = 0;
  uint64_t faults = 0;
  uint64_t panics = 0;
};

enum class Mode { kBaseline, kGuarded, kFaulted };

RunResult MeasureCampaign(Mode mode) {
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = kIterations;
  options.seed = 1;
  if (mode != Mode::kBaseline) {
    options.limits.wall_budget_ms = 2000;
    options.checkpoint_path = "bench_robustness.bvfcp";
    options.checkpoint_every = 500;
  }
  if (mode == Mode::kFaulted) {
    options.fault.probability = 0.1;
    options.confirm_runs = 3;
  }

  RunResult best;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    StructuredGenerator generator(options.version);
    Fuzzer fuzzer(generator, options);
    const double start = Now();
    const CampaignStats stats = fuzzer.Run();
    const double seconds = Now() - start;
    if (repeat == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.findings = stats.findings.size();
      best.faults = stats.fault_injected;
      best.panics = stats.panics;
    }
  }
  return best;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("robustness engine: guard + checkpoint + fault-injection overhead");

  const RunResult baseline = MeasureCampaign(Mode::kBaseline);
  const RunResult guarded = MeasureCampaign(Mode::kGuarded);
  const RunResult faulted = MeasureCampaign(Mode::kFaulted);
  std::remove("bench_robustness.bvfcp");

  const double guard_overhead = 100 * (guarded.seconds / baseline.seconds - 1);
  const double fault_overhead = 100 * (faulted.seconds / baseline.seconds - 1);

  printf("campaign: %" PRIu64 " iterations, all bugs, best of %d runs\n\n", kIterations,
         kRepeats);
  printf("%-10s %10s %10s %9s %8s %7s\n", "mode", "seconds", "iters/s", "findings",
         "faults", "panics");
  PrintRule(60);
  printf("%-10s %10.3f %10.0f %9" PRIu64 " %8" PRIu64 " %7" PRIu64 "\n", "baseline",
         baseline.seconds, kIterations / baseline.seconds, baseline.findings,
         baseline.faults, baseline.panics);
  printf("%-10s %10.3f %10.0f %9" PRIu64 " %8" PRIu64 " %7" PRIu64 "\n", "guarded",
         guarded.seconds, kIterations / guarded.seconds, guarded.findings,
         guarded.faults, guarded.panics);
  printf("%-10s %10.3f %10.0f %9" PRIu64 " %8" PRIu64 " %7" PRIu64 "\n", "faulted",
         faulted.seconds, kIterations / faulted.seconds, faulted.findings,
         faulted.faults, faulted.panics);

  printf("\nguarded overhead: %+.2f%% (acceptance bar < 5%%)\n", guard_overhead);
  printf("faulted overhead: %+.2f%% (informational)\n", fault_overhead);

  FILE* json = fopen("bench_robustness.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"iterations\": %" PRIu64 ",\n"
            "  \"repeats\": %d,\n"
            "  \"baseline_seconds\": %.4f,\n"
            "  \"guarded_seconds\": %.4f,\n"
            "  \"faulted_seconds\": %.4f,\n"
            "  \"guarded_overhead_pct\": %.2f,\n"
            "  \"faulted_overhead_pct\": %.2f,\n"
            "  \"baseline_findings\": %" PRIu64 ",\n"
            "  \"guarded_findings\": %" PRIu64 ",\n"
            "  \"faulted_findings\": %" PRIu64 ",\n"
            "  \"faulted_faults_injected\": %" PRIu64 ",\n"
            "  \"faulted_panics\": %" PRIu64 "\n"
            "}\n",
            kIterations, kRepeats, baseline.seconds, guarded.seconds, faulted.seconds,
            guard_overhead, fault_overhead, baseline.findings, guarded.findings,
            faulted.findings, faulted.faults, faulted.panics);
    fclose(json);
    printf("wrote bench_robustness.json\n");
  }
  return guard_overhead < 5 ? 0 : 1;
}
