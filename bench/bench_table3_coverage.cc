// Experiment: Table 3 (RQ2) — final covered verifier branches of Syzkaller,
// Buzzer, and BVF on three kernel versions, with BVF's improvement factors.
//
// Paper result (absolute branch counts are testbed-specific; the comparison
// shape is what transfers):
//   version    BVF     Syzkaller (+%)   Buzzer (+%)
//   v5.15      50192   41433 (+17.5%)   9176 (+447.0%)
//   v6.1       67348   56458 (+16.2%)   10059 (+569.5%)
//   bpf-next   65176   52295 (+19.8%)   9271 (+603.0%)
//   Overall    60905   50062 (+17.5%)   9502 (+541.0%)

#include <cinttypes>

#include "bench/bench_util.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 9600;
constexpr int kRepeats = 3;

double FinalCoverage(const char* tool, bpf::KernelVersion version) {
  double sum = 0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    CampaignOptions options;
    options.version = version;
    options.bugs = bpf::BugConfig::ForVersion(version);
    options.iterations = kIterations;
    options.seed = 500 + static_cast<uint64_t>(repeat);
    options.coverage_points = 0;
    std::unique_ptr<Generator> generator = MakeTool(tool, version);
    Fuzzer fuzzer(*generator, options);
    sum += static_cast<double>(fuzzer.Run().final_coverage);
  }
  return sum / kRepeats;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("Table 3 (RQ2): covered verifier branches after the campaign (avg of 3)");
  printf("%-10s %10s %22s %22s\n", "Version", "BVF", "Syzkaller (BVF +%)", "Buzzer (BVF +%)");
  PrintRule(70);

  const bpf::KernelVersion versions[] = {bpf::KernelVersion::kV5_15,
                                         bpf::KernelVersion::kV6_1,
                                         bpf::KernelVersion::kBpfNext};
  double total_bvf = 0;
  double total_syz = 0;
  double total_buzzer = 0;
  for (const bpf::KernelVersion version : versions) {
    const double cov_bvf = FinalCoverage("bvf", version);
    const double cov_syz = FinalCoverage("syzkaller", version);
    const double cov_buzzer = FinalCoverage("buzzer", version);
    total_bvf += cov_bvf / 3;
    total_syz += cov_syz / 3;
    total_buzzer += cov_buzzer / 3;
    printf("%-10s %10.0f %12.0f (+%5.1f%%) %12.0f (+%5.1f%%)\n",
           bpf::KernelVersionName(version), cov_bvf, cov_syz,
           100 * (cov_bvf - cov_syz) / cov_syz, cov_buzzer,
           100 * (cov_bvf - cov_buzzer) / cov_buzzer);
  }
  PrintRule(70);
  printf("%-10s %10.0f %12.0f (+%5.1f%%) %12.0f (+%5.1f%%)\n", "Overall", total_bvf,
         total_syz, 100 * (total_bvf - total_syz) / total_syz, total_buzzer,
         100 * (total_bvf - total_buzzer) / total_buzzer);
  printf("\nPaper: BVF covers +17.5%% over Syzkaller and +541%% over Buzzer overall;\n"
         "absolute counts differ (simulated verifier is smaller than Linux's 27k LoC).\n");
  return 0;
}
