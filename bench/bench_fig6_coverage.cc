// Experiment: Figure 6 (RQ2) — verifier branch coverage over time for
// Syzkaller, Buzzer, and BVF on Linux v5.15, v6.1, and bpf-next.
//
// Paper result: all tools grow quickly in the first ~8 "hours"; Syzkaller and
// Buzzer then saturate while BVF keeps climbing, ending highest on every
// version.
//
// Reproduction: wall-clock hours map to iteration budget (48 samples = the
// 48-hour x-axis); three repeats with different seeds are averaged, as in the
// paper. The series below are the plot data.

#include <cinttypes>

#include "bench/bench_util.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 9600;  // 48 "hours" x 200 programs/hour
constexpr int kPoints = 48;
constexpr int kRepeats = 3;
const char* kTools[] = {"syzkaller", "buzzer", "bvf"};
const bpf::KernelVersion kVersions[] = {bpf::KernelVersion::kV5_15,
                                        bpf::KernelVersion::kV6_1,
                                        bpf::KernelVersion::kBpfNext};

std::vector<double> AveragedCurve(const char* tool, bpf::KernelVersion version) {
  std::vector<double> curve(kPoints, 0.0);
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    CampaignOptions options;
    options.version = version;
    options.bugs = bpf::BugConfig::ForVersion(version);
    options.iterations = kIterations;
    options.seed = 1000 + static_cast<uint64_t>(repeat);
    options.coverage_points = kPoints;
    std::unique_ptr<Generator> generator = MakeTool(tool, version);
    Fuzzer fuzzer(*generator, options);
    const CampaignStats stats = fuzzer.Run();
    for (int i = 0; i < kPoints && i < static_cast<int>(stats.curve.size()); ++i) {
      curve[i] += static_cast<double>(stats.curve[i].covered) / kRepeats;
    }
  }
  return curve;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader(
      "Figure 6 (RQ2): verifier branch coverage over time (48 'hours', avg of 3 repeats)");

  for (const bpf::KernelVersion version : kVersions) {
    printf("\n== Linux %s ==\n", bpf::KernelVersionName(version));
    std::vector<std::vector<double>> curves;
    for (const char* tool : kTools) {
      curves.push_back(AveragedCurve(tool, version));
    }
    printf("%6s %12s %12s %12s\n", "hour", "syzkaller", "buzzer", "bvf");
    for (int i = 0; i < kPoints; ++i) {
      if (i % 4 != 3 && i != 0) {
        continue;  // print every 4th hour to keep the series readable
      }
      printf("%6d %12.1f %12.1f %12.1f\n", i + 1, curves[0][i], curves[1][i], curves[2][i]);
    }
    // ASCII sparkline of the BVF-vs-Syzkaller race.
    printf("shape: growth in first hours, BVF pulls ahead after saturation of others\n");
    const double syz_8h = curves[0][7];
    const double syz_final = curves[0][kPoints - 1];
    const double bvf_8h = curves[2][7];
    const double bvf_final = curves[2][kPoints - 1];
    printf("syzkaller 8h->48h: %.1f -> %.1f (+%.1f%%)   bvf 8h->48h: %.1f -> %.1f (+%.1f%%)\n",
           syz_8h, syz_final, syz_8h > 0 ? 100 * (syz_final - syz_8h) / syz_8h : 0.0,
           bvf_8h, bvf_final, bvf_8h > 0 ? 100 * (bvf_final - bvf_8h) / bvf_8h : 0.0);
  }
  printf("\nPaper: BVF achieves the highest coverage on every version; growth of all tools\n"
         "is similar before ~8h, after which Syzkaller and Buzzer saturate.\n");
  return 0;
}
