// Experiment: Table 2 (RQ1) — previously unknown vulnerabilities found.
//
// Paper result: over two weeks on upstream/bpf-next, BVF found 11 bugs (six
// verifier correctness bugs); Syzkaller and Buzzer found no correctness bugs.
//
// Reproduction: each of the 11 Table 2 root causes (plus CVE-2022-23222) is
// re-injected one at a time into the simulated kernel; every tool runs a
// fixed-budget campaign against it. A bug counts as found when the oracle
// (indicator #1 sanitation or indicator #2 kernel self-checks) fires and the
// triage attributes it to the injected root cause. A second run with every
// bug enabled reports the combined-campaign view.

#include <cinttypes>

#include "bench/bench_util.h"

namespace bvf {
namespace {

struct BugSpec {
  KnownBug bug;
  const char* component;
  int indicator;
  void (*enable)(bpf::BugConfig&);
  bpf::KernelVersion version;
};

const BugSpec kBugs[] = {
    {KnownBug::kBug1NullnessPropagation, "Verifier", 1,
     [](bpf::BugConfig& b) { b.bug1_nullness_propagation = true; },
     bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug2TaskStructBounds, "Verifier", 1,
     [](bpf::BugConfig& b) { b.bug2_task_struct_bounds = true; },
     bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug3KfuncBacktrack, "Verifier", 1,
     [](bpf::BugConfig& b) { b.bug3_kfunc_backtrack = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug4TracePrintkRecursion, "Verifier", 2,
     [](bpf::BugConfig& b) { b.bug4_trace_printk_recursion = true; },
     bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug5ContentionBegin, "Verifier", 2,
     [](bpf::BugConfig& b) { b.bug5_contention_begin = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug6SendSignal, "Verifier", 2,
     [](bpf::BugConfig& b) { b.bug6_send_signal = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug7DispatcherSync, "Dispatcher", 2,
     [](bpf::BugConfig& b) { b.bug7_dispatcher_sync = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug8Kmemdup, "Syscall", 2,
     [](bpf::BugConfig& b) { b.bug8_kmemdup = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug9BucketIteration, "Map", 2,
     [](bpf::BugConfig& b) { b.bug9_bucket_iteration = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug10IrqWork, "Helper", 2,
     [](bpf::BugConfig& b) { b.bug10_irq_work = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kBug11XdpOffload, "XDP", 2,
     [](bpf::BugConfig& b) { b.bug11_xdp_offload = true; }, bpf::KernelVersion::kBpfNext},
    {KnownBug::kCve2022_23222, "Verifier", 1,
     [](bpf::BugConfig& b) { b.cve_2022_23222 = true; }, bpf::KernelVersion::kV5_15},
};

constexpr uint64_t kIterations = 6000;
constexpr uint64_t kSeed = 2024;

uint64_t RunTool(const char* tool, const BugSpec& spec) {
  CampaignOptions options;
  options.version = spec.version;
  options.bugs = bpf::BugConfig::None();
  spec.enable(options.bugs);
  options.iterations = kIterations;
  options.seed = kSeed;
  options.coverage_points = 0;

  std::unique_ptr<Generator> generator = MakeTool(tool, spec.version);
  Fuzzer fuzzer(*generator, options);
  const CampaignStats stats = fuzzer.Run();
  return stats.FoundAtIteration(spec.bug);
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;

  PrintHeader(
      "Table 2 (RQ1): vulnerability detection, one injected root cause per campaign\n"
      "(budget: 6000 programs/tool/bug; 'found @N' = first triggering iteration)");
  printf("%-4s %-11s %-58s %-4s %12s %12s %12s\n", "#", "Component", "Description", "Ind",
         "BVF", "Syzkaller", "Buzzer");
  PrintRule(120);

  int bvf_found = 0;
  int bvf_correctness = 0;
  int syz_found = 0;
  int buzzer_found = 0;
  int row = 0;
  for (const BugSpec& spec : kBugs) {
    ++row;
    const uint64_t at_bvf = RunTool("bvf", spec);
    const uint64_t at_syz = RunTool("syzkaller", spec);
    const uint64_t at_buzzer = RunTool("buzzer", spec);
    char bvf_cell[32];
    char syz_cell[32];
    char buzzer_cell[32];
    snprintf(bvf_cell, sizeof(bvf_cell),
             at_bvf != 0 ? "found @%" PRIu64 : "not found", at_bvf);
    snprintf(syz_cell, sizeof(syz_cell),
             at_syz != 0 ? "found @%" PRIu64 : "not found", at_syz);
    snprintf(buzzer_cell, sizeof(buzzer_cell),
             at_buzzer != 0 ? "found @%" PRIu64 : "not found", at_buzzer);
    printf("%-4d %-11s %-58s %-4d %12s %12s %12s\n", row, spec.component,
           KnownBugName(spec.bug), spec.indicator, bvf_cell, syz_cell, buzzer_cell);
    if (at_bvf != 0) {
      ++bvf_found;
      if (spec.indicator == 1 || spec.component == std::string("Verifier")) {
        ++bvf_correctness;
      }
    }
    syz_found += at_syz != 0;
    buzzer_found += at_buzzer != 0;
  }
  PrintRule(120);
  printf("BVF: %d/12 found (%d verifier correctness bugs). Syzkaller: %d/12. Buzzer: %d/12.\n",
         bvf_found, bvf_correctness, syz_found, buzzer_found);
  printf("Paper: BVF 11 bugs (6 verifier correctness); Syzkaller and Buzzer found no\n"
         "correctness bugs in the two-week campaign.\n");

  // Combined campaign: all bugs live simultaneously (the realistic target).
  PrintHeader("Combined campaign on bpf-next with every bug live (BVF, 8000 programs)");
  CampaignOptions options;
  options.version = bpf::KernelVersion::kBpfNext;
  options.bugs = bpf::BugConfig::All();
  options.iterations = 8000;
  options.seed = kSeed + 1;
  options.coverage_points = 0;
  StructuredGenerator generator(options.version);
  Fuzzer fuzzer(generator, options);
  const CampaignStats stats = fuzzer.Run();
  printf("acceptance=%.1f%%  unique findings=%zu\n", 100 * stats.AcceptanceRate(),
         stats.findings.size());
  for (const Finding& finding : stats.findings) {
    printf("  [indicator#%d @%-5" PRIu64 "] %-55s -> %s\n", finding.indicator,
           finding.iteration, finding.signature.c_str(), KnownBugName(finding.triaged));
  }
  return 0;
}
