// Experiment: §6.4 (RQ3) — overhead of the memory-access sanitation.
//
// Paper setup: the 708 manually-written eBPF self-test programs containing at
// least one load/store are executed with and without sanitation; measured
// overhead is a 90% average execution slowdown and a 3.0x instruction
// footprint (compare ASAN on CPU2006: 73% slowdown, 3.37x memory).
//
// Reproduction: a corpus of 708 verifier-accepted, load/store-containing
// programs stands in for the self-tests (generated with the risky knobs off,
// mirroring "carefully encoded by maintainers"). Every program is executed
// repeatedly through BPF_PROG_TEST_RUN in both configurations.

#include <chrono>
#include <cinttypes>

#include "bench/bench_util.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"

namespace bvf {
namespace {

constexpr int kCorpusSize = 708;
constexpr int kRunsPerProgram = 50;
constexpr int kRepeats = 3;

bool HasLoadStore(const bpf::Program& prog) {
  for (const bpf::Insn& insn : prog.insns) {
    if (insn.IsMemLoad() || insn.IsMemStore() || insn.IsAtomic()) {
      return true;
    }
  }
  return false;
}

struct CorpusEntry {
  FuzzCase the_case;
};

// Builds the self-test stand-in corpus: accepted, load/store-bearing programs.
std::vector<CorpusEntry> BuildCorpus() {
  std::vector<CorpusEntry> corpus;
  StructuredGenOptions gen_options;
  gen_options.risky = false;
  StructuredGenerator generator(bpf::KernelVersion::kBpfNext, gen_options);
  bpf::Rng rng(7);
  while (corpus.size() < kCorpusSize) {
    FuzzCase the_case = generator.Generate(rng);
    if (!HasLoadStore(the_case.prog)) {
      continue;  // tests without load/store are skipped, as in the paper
    }
    bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
    bpf::Bpf bpf(kernel);
    for (const bpf::MapDef& def : the_case.maps) {
      bpf.MapCreate(def);
    }
    if (bpf.ProgLoad(the_case.prog) > 0) {
      corpus.push_back(CorpusEntry{std::move(the_case)});
    }
  }
  return corpus;
}

struct Measurement {
  double exec_seconds = 0;
  uint64_t insns_before = 0;
  uint64_t insns_after = 0;
  uint64_t insns_executed = 0;
};

Measurement Measure(const std::vector<CorpusEntry>& corpus, bool sanitize) {
  Measurement m;
  Sanitizer sanitizer;
  for (const CorpusEntry& entry : corpus) {
    bpf::Kernel kernel(bpf::KernelVersion::kBpfNext, bpf::BugConfig::None());
    bpf::Bpf bpf(kernel);
    if (sanitize) {
      bpf::BpfAsan::Register(kernel);
      bpf.set_instrument(sanitizer.Hook());
    }
    for (const bpf::MapDef& def : entry.the_case.maps) {
      bpf.MapCreate(def);
    }
    const int fd = bpf.ProgLoad(entry.the_case.prog);
    if (fd <= 0) {
      continue;
    }
    const bpf::LoadedProgram* prog = bpf.FindProg(fd);
    m.insns_before += entry.the_case.prog.insns.size();
    m.insns_after += prog->prog.insns.size();

    // BPF_PROG_TEST_RUN with repeat: one context, many executions, so the
    // measured time is interpretation (the paper measures execution time of
    // the loaded programs, not loader overhead).
    const auto start = std::chrono::steady_clock::now();
    const bpf::ExecResult result = bpf.ProgTestRunRepeat(fd, kRunsPerProgram, 64, 7);
    const auto end = std::chrono::steady_clock::now();
    m.insns_executed += result.insns_executed;
    m.exec_seconds += std::chrono::duration<double>(end - start).count();
  }
  return m;
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("§6.4 (RQ3): sanitation overhead on the 708-program self-test corpus");

  const std::vector<CorpusEntry> corpus = BuildCorpus();
  printf("corpus: %zu accepted programs containing load/store\n", corpus.size());

  double base_time = 0;
  double san_time = 0;
  Measurement base;
  Measurement san;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    base = Measure(corpus, /*sanitize=*/false);
    san = Measure(corpus, /*sanitize=*/true);
    base_time += base.exec_seconds / kRepeats;
    san_time += san.exec_seconds / kRepeats;
  }

  printf("\n%-28s %14s %14s %10s\n", "metric", "baseline", "sanitized", "ratio");
  PrintRule(72);
  printf("%-28s %14.4f %14.4f %9.2fx\n", "execution time (s, avg of 3)", base_time, san_time,
         san_time / base_time);
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %9.2fx\n", "instruction footprint",
         base.insns_before, san.insns_after,
         static_cast<double>(san.insns_after) / static_cast<double>(base.insns_before));
  printf("%-28s %14" PRIu64 " %14" PRIu64 " %9.2fx\n", "instructions executed",
         base.insns_executed, san.insns_executed,
         static_cast<double>(san.insns_executed) / static_cast<double>(base.insns_executed));
  printf("\nslowdown: %.0f%%  (paper: 90%%; ASAN on CPU2006: 73%%)\n",
         100 * (san_time / base_time - 1));
  printf("footprint: %.2fx (paper: 3.0x; ASAN memory: 3.37x)\n",
         static_cast<double>(san.insns_after) / static_cast<double>(base.insns_before));
  return 0;
}
