// Experiment: hot-loop throughput overhaul (DESIGN.md §13).
//
// Measures the same 2000-iteration jobs=1 campaign twice on one binary:
//   baseline  — the pre-overhaul configuration: full-arena rewind between
//               cases, full StateEqual scans in the pruning back-edge walk,
//               canonical verdict-cache level off;
//   optimized — dirty-tracked reset + prune fingerprint fast path +
//               canonical cache on (the shipping defaults).
//
// Measurement hygiene: each campaign runs in a forked child so neither
// configuration inherits the other's heap and page-cache state (a baseline
// full-rewind campaign leaves hundreds of MB of allocator churn behind that
// slows a following in-process run by ~30%). Repeats are interleaved
// (baseline, optimized, baseline, ...), the speedup is the median of the
// per-pair ratios (adjacent runs see the same machine state, so load drift
// cancels inside a pair), and the table reports each config's best run.
//
// Two acceptance bars, both enforced here (not just reported):
//   * >= 5x executions/sec over the baseline, and
//   * bit-identical StatsDigest between the two runs — every one of these
//     switches is an implementation detail the campaign's results must not
//     see. A fast run with a different digest is a correctness failure.
//
// Results go to stdout as a table and to BENCH_reset.json for tooling.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/checkpoint.h"
#include "src/verifier/verifier.h"

namespace bvf {
namespace {

constexpr uint64_t kIterations = 2000;
constexpr int kRepeats = 5;  // interleaved repeats to damp scheduler noise
constexpr double kBar = 5.0;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double seconds = 0;
  uint64_t exec_runs = 0;
  uint64_t accepted = 0;
  uint64_t coverage = 0;
  uint64_t canon_hits = 0;
  uint64_t canon_misses = 0;
  char digest[32] = {};
};

// One full campaign in the given configuration, in a forked child; the fixed
// -size result comes back over a pipe. Returns false if the child failed.
bool RunOnceIsolated(bool optimized, RunResult* best, double* seconds) {
  int fds[2];
  if (pipe(fds) != 0) {
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    CampaignOptions options;
    options.version = bpf::KernelVersion::kBpfNext;
    options.bugs = bpf::BugConfig::All();
    options.iterations = kIterations;
    options.seed = 1;
    options.jobs = 1;
    options.verdict_cache = true;  // the bench_parallel jobs=1 configuration
    options.canonical_cache = optimized;
    options.dirty_reset = optimized;
    bpf::SetPruneFingerprintEnabled(optimized);

    StructuredGenerator generator(options.version);
    Fuzzer fuzzer(generator, options);
    const double start = Now();
    const CampaignStats stats = fuzzer.Run();

    RunResult wire;
    wire.seconds = Now() - start;
    wire.exec_runs = stats.exec_runs;
    wire.accepted = stats.accepted;
    wire.coverage = stats.final_coverage;
    wire.canon_hits = stats.canonical_cache_hits;
    wire.canon_misses = stats.canonical_cache_misses;
    snprintf(wire.digest, sizeof(wire.digest), "%s", StatsDigest(stats).c_str());
    const ssize_t written = write(fds[1], &wire, sizeof(wire));
    _exit(written == sizeof(wire) ? 0 : 1);
  }
  close(fds[1]);
  RunResult wire;
  const ssize_t got = read(fds[0], &wire, sizeof(wire));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof(wire))) {
    return false;
  }
  if (best->seconds == 0 || wire.seconds < best->seconds) {
    *best = wire;
  }
  *seconds = wire.seconds;
  return true;
}

// Middle value; the host's effective speed drifts on a timescale of minutes,
// so a single slow phase can poison a mean but not a median.
double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace bvf

int main() {
  using namespace bvf;
  PrintHeader("hot-loop throughput: dirty reset + prune fingerprint + canonical cache");
  printf("campaign: %" PRIu64 " iterations, all bugs, jobs=1, "
         "%d interleaved isolated run pairs\n\n",
         kIterations, kRepeats);

  // Speedup estimator: the ratio within each (baseline, optimized) pair is
  // computed from two back-to-back runs that see the same machine state, so
  // background-load drift cancels inside a pair; the median across pairs
  // then drops outliers. Comparing one config's best against the other's
  // best would compare runs minutes apart instead.
  RunResult baseline;
  RunResult optimized;
  std::vector<double> pair_speedups;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    double base_s = 0;
    double opt_s = 0;
    if (!RunOnceIsolated(/*optimized=*/false, &baseline, &base_s) ||
        !RunOnceIsolated(/*optimized=*/true, &optimized, &opt_s)) {
      fprintf(stderr, "measurement child failed\n");
      return 1;
    }
    pair_speedups.push_back(base_s / opt_s);
  }

  printf("%-12s %9s %10s %10s %9s\n", "config", "seconds", "execs/s", "accepted",
         "coverage");
  PrintRule(56);
  printf("%-12s %9.3f %10.0f %10" PRIu64 " %9" PRIu64 "\n", "baseline",
         baseline.seconds, baseline.exec_runs / baseline.seconds,
         baseline.accepted, baseline.coverage);
  printf("%-12s %9.3f %10.0f %10" PRIu64 " %9" PRIu64 "\n", "optimized",
         optimized.seconds, optimized.exec_runs / optimized.seconds,
         optimized.accepted, optimized.coverage);

  const double speedup = Median(pair_speedups);
  const bool digests_match = strcmp(baseline.digest, optimized.digest) == 0;
  printf("\nspeedup: %.2fx, median of %d interleaved pairs (bar >= %.1fx)\n",
         speedup, kRepeats, kBar);
  printf("digests identical: %s (%s)\n", digests_match ? "yes" : "NO",
         optimized.digest);
  printf("canonical cache: %" PRIu64 " hits / %" PRIu64 " misses\n",
         optimized.canon_hits, optimized.canon_misses);

  FILE* json = fopen("BENCH_reset.json", "w");
  if (json) {
    fprintf(json,
            "{\n"
            "  \"iterations\": %" PRIu64 ",\n"
            "  \"repeats\": %d,\n"
            "  \"bar\": %.1f,\n"
            "  \"baseline_seconds\": %.4f,\n"
            "  \"optimized_seconds\": %.4f,\n"
            "  \"baseline_execs_per_sec\": %.1f,\n"
            "  \"optimized_execs_per_sec\": %.1f,\n"
            "  \"speedup\": %.3f,\n"
            "  \"speedup_method\": \"median of per-repeat pairwise ratios\",\n"
            "  \"digests_match\": %s,\n"
            "  \"stats_digest\": \"%s\",\n"
            "  \"canonical_cache_hits\": %" PRIu64 ",\n"
            "  \"canonical_cache_misses\": %" PRIu64 "\n"
            "}\n",
            kIterations, kRepeats, kBar, baseline.seconds, optimized.seconds,
            baseline.exec_runs / baseline.seconds,
            optimized.exec_runs / optimized.seconds, speedup,
            digests_match ? "true" : "false", optimized.digest,
            optimized.canon_hits, optimized.canon_misses);
    fclose(json);
    printf("wrote BENCH_reset.json\n");
  }

  if (!digests_match) {
    return 1;
  }
  if (speedup < kBar) {
    return 1;
  }
  return 0;
}
