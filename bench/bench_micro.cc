// Micro-benchmarks (google-benchmark) for the pipeline components: verifier
// throughput, sanitation pass cost, and interpreter speed. These are the
// per-iteration costs behind the campaign benchmarks.

#include <benchmark/benchmark.h>

#include "src/core/structured_gen.h"
#include "src/ebpf/builder.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"
#include "src/verifier/tnum.h"

namespace {

using namespace bpf;

Program LookupProgram(int map_fd) {
  ProgramBuilder b;
  b.LdMapFd(kR1, map_fd);
  b.Mov(kR2, kR10);
  b.Add(kR2, -8);
  b.StoreImm(kSizeDw, kR10, -8, 0);
  b.Call(kHelperMapLookupElem);
  b.JmpIf(kJmpJeq, kR0, 0, 2);
  b.StoreImm(kSizeDw, kR0, 0, 1);
  b.Load(kSizeDw, kR0, kR0, 8);
  b.RetImm(0);
  return b.Build();
}

void BM_VerifySmallProgram(benchmark::State& state) {
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  MapDef def;
  def.value_size = 16;
  const int map_fd = bpf.MapCreate(def);
  const Program prog = LookupProgram(map_fd);
  for (auto _ : state) {
    VerifierResult result;
    benchmark::DoNotOptimize(bpf.ProgLoad(prog, &result));
  }
}
BENCHMARK(BM_VerifySmallProgram);

void BM_VerifyGeneratedProgram(benchmark::State& state) {
  bvf::StructuredGenerator generator(KernelVersion::kBpfNext);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    bvf::FuzzCase the_case = generator.Generate(rng);
    Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
    Bpf bpf(kernel);
    for (const MapDef& def : the_case.maps) {
      bpf.MapCreate(def);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(bpf.ProgLoad(the_case.prog));
  }
}
BENCHMARK(BM_VerifyGeneratedProgram);

void BM_SanitizePass(benchmark::State& state) {
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  MapDef def;
  def.value_size = 16;
  const int map_fd = bpf.MapCreate(def);
  const Program prog = LookupProgram(map_fd);
  VerifierResult verified;
  bpf.ProgLoad(prog, &verified);
  bvf::Sanitizer sanitizer;
  for (auto _ : state) {
    Program copy = verified.prog;
    std::vector<InsnAux> aux = verified.aux;
    sanitizer.Instrument(copy, aux);
    benchmark::DoNotOptimize(copy.insns.size());
  }
}
BENCHMARK(BM_SanitizePass);

void BM_InterpretLookup(benchmark::State& state) {
  const bool sanitized = state.range(0) != 0;
  Kernel kernel(KernelVersion::kBpfNext, BugConfig::None());
  Bpf bpf(kernel);
  bvf::Sanitizer sanitizer;
  if (sanitized) {
    BpfAsan::Register(kernel);
    bpf.set_instrument(sanitizer.Hook());
  }
  MapDef def;
  def.value_size = 16;
  const int map_fd = bpf.MapCreate(def);
  const uint32_t key = 0;
  uint8_t value[16] = {};
  bpf.MapUpdateElem(map_fd, &key, value);
  const int fd = bpf.ProgLoad(LookupProgram(map_fd));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bpf.ProgTestRun(fd).insns_executed);
  }
}
BENCHMARK(BM_InterpretLookup)->Arg(0)->Arg(1);

void BM_GenerateStructured(benchmark::State& state) {
  bvf::StructuredGenerator generator(KernelVersion::kBpfNext);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(rng).prog.insns.size());
  }
}
BENCHMARK(BM_GenerateStructured);

void BM_TnumMul(benchmark::State& state) {
  Tnum a = TnumRange(3, 300);
  Tnum b = TnumRange(5, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TnumMul(a, b));
  }
}
BENCHMARK(BM_TnumMul);

void BM_KernelBoot(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel(KernelVersion::kBpfNext, BugConfig::None(), 512 * 1024);
    benchmark::DoNotOptimize(kernel.current_task_addr());
  }
}
BENCHMARK(BM_KernelBoot);

}  // namespace

BENCHMARK_MAIN();
