#include "src/kernel/kasan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bpf {

namespace {

std::string HexAddr(uint64_t addr) {
  char buf[32];
  snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(addr));
  return buf;
}

bool ParanoidResetFromEnv() {
  const char* env = std::getenv("BVF_PARANOID_RESET");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

KasanArena::KasanArena(size_t size)
    : mem_(size, 0),
      shadow_(size, static_cast<uint8_t>(Shadow::kUnallocated)),
      page_dirty_((size + kPageSize - 1) / kPageSize, 0),
      paranoid_reset_(ParanoidResetFromEnv()) {}

uint64_t KasanArena::Alloc(size_t size, const std::string& tag) {
  if (size == 0) {
    size = 1;
  }
  const size_t padded = (size + kAlign - 1) & ~(kAlign - 1);
  const size_t total = kRedzoneSize + padded + kRedzoneSize;
  if (bump_ + total > mem_.size()) {
    return 0;  // arena exhausted (simulated -ENOMEM)
  }
  if (alloc_budget_ != 0 && bytes_in_use_ + size > alloc_budget_) {
    ++budget_trips_;  // per-case memory guard: fail like an exhausted arena
    return 0;
  }
  const size_t start = bump_ + kRedzoneSize;
  MarkDirty(bump_, total);
  // Left redzone.
  std::fill(shadow_.begin() + bump_, shadow_.begin() + start,
            static_cast<uint8_t>(Shadow::kRedzone));
  // Object bytes.
  std::fill(shadow_.begin() + start, shadow_.begin() + start + size,
            static_cast<uint8_t>(Shadow::kAddressable));
  // Padding + right redzone.
  std::fill(shadow_.begin() + start + size, shadow_.begin() + bump_ + total,
            static_cast<uint8_t>(Shadow::kRedzone));
  std::fill(mem_.begin() + start, mem_.begin() + start + padded, 0);
  bump_ += total;
  const uint64_t addr = kArenaBase + start;
  allocations_[addr] = Allocation{size, tag};
  bytes_in_use_ += size;
  return addr;
}

void KasanArena::Free(uint64_t addr) {
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return;
  }
  const size_t start = Offset(addr);
  MarkDirty(start, it->second.size);
  std::fill(shadow_.begin() + start, shadow_.begin() + start + it->second.size,
            static_cast<uint8_t>(Shadow::kFreed));
  bytes_in_use_ -= it->second.size;
  // Freed-object metadata moves to the quarantine (bounded FIFO) so
  // use-after-free accesses can still be attributed to their object.
  if (quarantine_.size() >= kQuarantineSlots) {
    quarantine_.erase(quarantine_.begin());
  }
  quarantine_.push_back(Quarantined{addr, it->second.size, std::move(it->second.tag)});
  allocations_.erase(it);
}

void KasanArena::TakeBootSnapshot() {
  boot_bump_ = bump_;
  boot_bytes_in_use_ = bytes_in_use_;
  boot_mem_.assign(mem_.begin(), mem_.begin() + static_cast<long>(bump_));
  boot_shadow_.assign(shadow_.begin(), shadow_.begin() + static_cast<long>(bump_));
  boot_allocations_ = allocations_;
  has_boot_snapshot_ = true;
  // The snapshot itself is now the restore target: pages written during boot
  // need no restore, and pages marked before this point must not be replayed.
  std::fill(page_dirty_.begin(), page_dirty_.end(), 0);
  dirty_pages_.clear();
}

void KasanArena::RestorePage(size_t page) {
  const size_t begin = page * kPageSize;
  const size_t end = std::min(begin + kPageSize, mem_.size());
  // Below boot_bump_ the pristine bytes come from the boot image; above it
  // they are the unallocated fill. A page straddling boot_bump_ gets both.
  const size_t snap_end = std::min(end, boot_bump_);
  if (begin < snap_end) {
    std::memcpy(mem_.data() + begin, boot_mem_.data() + begin, snap_end - begin);
    std::memcpy(shadow_.data() + begin, boot_shadow_.data() + begin, snap_end - begin);
  }
  const size_t fill_begin = std::max(begin, boot_bump_);
  if (fill_begin < end) {
    std::memset(mem_.data() + fill_begin, 0, end - fill_begin);
    std::memset(shadow_.data() + fill_begin, static_cast<int>(Shadow::kUnallocated),
                end - fill_begin);
  }
}

void KasanArena::FullRewind() {
  // Restore the boot image (undoing any silent corruption of boot objects)
  // and scrub everything above it back to pristine unallocated zeros, so a
  // reused substrate is byte-identical to a freshly booted one.
  std::copy(boot_mem_.begin(), boot_mem_.end(), mem_.begin());
  std::fill(mem_.begin() + static_cast<long>(boot_bump_), mem_.end(), 0);
  std::copy(boot_shadow_.begin(), boot_shadow_.end(), shadow_.begin());
  std::fill(shadow_.begin() + static_cast<long>(boot_bump_), shadow_.end(),
            static_cast<uint8_t>(Shadow::kUnallocated));
}

void KasanArena::VerifyPristine() const {
  const auto die = [](const char* what, size_t offset) {
    std::fprintf(stderr,
                 "BVF_PARANOID_RESET: dirty-tracked reset diverged from full "
                 "rewind (%s at arena offset %zu)\n",
                 what, offset);
    std::abort();
  };
  for (size_t i = 0; i < boot_bump_; ++i) {
    if (mem_[i] != boot_mem_[i]) {
      die("boot memory byte", i);
    }
    if (shadow_[i] != boot_shadow_[i]) {
      die("boot shadow byte", i);
    }
  }
  for (size_t i = boot_bump_; i < mem_.size(); ++i) {
    if (mem_[i] != 0) {
      die("post-boot memory byte", i);
    }
    if (shadow_[i] != static_cast<uint8_t>(Shadow::kUnallocated)) {
      die("post-boot shadow byte", i);
    }
  }
}

void KasanArena::ResetToBootSnapshot() {
  if (!has_boot_snapshot_) {
    return;
  }
  if (dirty_reset_) {
    for (const uint32_t page : dirty_pages_) {
      RestorePage(page);
      page_dirty_[page] = 0;
    }
    dirty_pages_.clear();
  } else {
    FullRewind();
    std::fill(page_dirty_.begin(), page_dirty_.end(), 0);
    dirty_pages_.clear();
  }
  allocations_ = boot_allocations_;
  quarantine_.clear();
  bump_ = boot_bump_;
  bytes_in_use_ = boot_bytes_in_use_;
  if (paranoid_reset_) {
    VerifyPristine();
  }
}

AccessResult KasanArena::Classify(uint64_t addr, size_t size) const {
  if (addr < 4096) {
    return AccessResult::kNull;
  }
  if (!InArena(addr, size)) {
    return AccessResult::kWild;
  }
  const size_t start = Offset(addr);
  // Fast path: for word-sized accesses (the interpreter's case), test all
  // shadow bytes at once. kAddressable is 0, so an all-zero shadow word means
  // every byte is backed; anything else falls through to the classifying walk.
  if (size <= 8) {
    uint64_t shadow_word = 0;
    std::memcpy(&shadow_word, shadow_.data() + start, size);
    if (shadow_word == 0) {
      return AccessResult::kOk;
    }
  }
  for (size_t i = 0; i < size; ++i) {
    switch (static_cast<Shadow>(shadow_[start + i])) {
      case Shadow::kAddressable:
        break;
      case Shadow::kFreed:
        return AccessResult::kUseAfterFree;
      case Shadow::kRedzone:
      case Shadow::kUnallocated:
        return AccessResult::kOob;
    }
  }
  return AccessResult::kOk;
}

void KasanArena::ReportViolation(AccessResult result, uint64_t addr, size_t size, bool write,
                                 ReportSink& sink, const std::string& ctx, bool from_bpf_asan) {
  ReportKind kind;
  switch (result) {
    case AccessResult::kOob:
      kind = from_bpf_asan ? ReportKind::kBpfAsanOob : ReportKind::kKasanOob;
      break;
    case AccessResult::kUseAfterFree:
      kind = from_bpf_asan ? ReportKind::kBpfAsanUseAfterFree : ReportKind::kKasanUseAfterFree;
      break;
    case AccessResult::kNull:
      kind = from_bpf_asan ? ReportKind::kBpfAsanNullDeref : ReportKind::kKasanNullDeref;
      break;
    case AccessResult::kWild:
      kind = from_bpf_asan ? ReportKind::kBpfAsanWild : ReportKind::kPageFault;
      break;
    default:
      return;
  }
  std::string details = std::string(write ? "write" : "read") + " of size " +
                        std::to_string(size) + " at " + HexAddr(addr);
  // Name the nearest allocation for OOB reports, like KASAN's object dump.
  if (result == AccessResult::kOob) {
    details += DescribeNearest(addr, size);
  }
  sink.Report(kind, ctx, std::move(details));
}

bool KasanArena::CheckedRead(uint64_t addr, size_t size, uint64_t* out, ReportSink& sink,
                             const char* ctx) {
  const AccessResult result = Classify(addr, size);
  if (result != AccessResult::kOk) {
    ReportViolation(result, addr, size, /*write=*/false, sink, ctx, /*from_bpf_asan=*/false);
    if (result == AccessResult::kNull || result == AccessResult::kWild) {
      return false;  // unbacked: the access cannot complete
    }
  }
  uint64_t value = 0;
  std::memcpy(&value, mem_.data() + Offset(addr), size);
  if (out != nullptr) {
    *out = value;
  }
  return result == AccessResult::kOk;
}

bool KasanArena::CheckedWrite(uint64_t addr, size_t size, uint64_t value, ReportSink& sink,
                              const char* ctx) {
  const AccessResult result = Classify(addr, size);
  if (result != AccessResult::kOk) {
    ReportViolation(result, addr, size, /*write=*/true, sink, ctx, /*from_bpf_asan=*/false);
    if (result == AccessResult::kNull || result == AccessResult::kWild) {
      return false;
    }
  }
  MarkDirty(Offset(addr), size);
  std::memcpy(mem_.data() + Offset(addr), &value, size);
  return result == AccessResult::kOk;
}

bool KasanArena::RawRead(uint64_t addr, size_t size, uint64_t* out, ReportSink& sink,
                         const char* ctx) {
  if (addr < 4096 || !InArena(addr, size)) {
    // Native execution faults on unmapped memory: kernel oops.
    ReportViolation(addr < 4096 ? AccessResult::kNull : AccessResult::kWild, addr, size,
                    /*write=*/false, sink, ctx, /*from_bpf_asan=*/false);
    return false;
  }
  uint64_t value = 0;
  std::memcpy(&value, mem_.data() + Offset(addr), size);
  if (out != nullptr) {
    *out = value;
  }
  return true;  // silent even if the bytes are a redzone: no KASAN in JITed code
}

bool KasanArena::RawWrite(uint64_t addr, size_t size, uint64_t value, ReportSink& sink,
                          const char* ctx) {
  if (addr < 4096 || !InArena(addr, size)) {
    ReportViolation(addr < 4096 ? AccessResult::kNull : AccessResult::kWild, addr, size,
                    /*write=*/true, sink, ctx, /*from_bpf_asan=*/false);
    return false;
  }
  MarkDirty(Offset(addr), size);
  std::memcpy(mem_.data() + Offset(addr), &value, size);
  return true;
}

uint8_t* KasanArena::HostPtr(uint64_t addr, size_t size) {
  if (!InArena(addr, size)) {
    return nullptr;
  }
  // The caller gets a mutable pointer, so assume the whole range will be
  // written; read-only bulk access goes through CopyOut, which does not dirty.
  MarkDirty(Offset(addr), size);
  return mem_.data() + Offset(addr);
}

bool KasanArena::CopyIn(uint64_t addr, const void* src, size_t size) {
  uint8_t* dst = HostPtr(addr, size);
  if (dst == nullptr) {
    return false;
  }
  std::memcpy(dst, src, size);
  return true;
}

bool KasanArena::CopyOut(uint64_t addr, void* dst, size_t size) {
  if (!InArena(addr, size)) {
    return false;
  }
  std::memcpy(dst, mem_.data() + Offset(addr), size);
  return true;
}

std::string KasanArena::DescribeNearest(uint64_t addr, size_t size) const {
  for (const auto& [start, alloc] : allocations_) {
    if (addr + size >= start && addr <= start + alloc.size + kRedzoneSize) {
      return " near object '" + alloc.tag + "' of size " + std::to_string(alloc.size);
    }
  }
  // Fall back to quarantined (freed) objects, like KASAN's freed-object dump.
  for (const Quarantined& q : quarantine_) {
    if (addr + size >= q.addr && addr <= q.addr + q.size + kRedzoneSize) {
      return " near freed object '" + q.tag + "' of size " + std::to_string(q.size);
    }
  }
  return "";
}

uint64_t KasanArena::AllocationStart(uint64_t addr) const {
  for (const auto& [start, alloc] : allocations_) {
    if (addr >= start && addr < start + alloc.size) {
      return start;
    }
  }
  return 0;
}

size_t KasanArena::AllocationSize(uint64_t addr) const {
  const uint64_t start = AllocationStart(addr);
  if (start == 0) {
    return 0;
  }
  return allocations_.at(start).size;
}

const std::string* KasanArena::AllocationTag(uint64_t addr) const {
  const uint64_t start = AllocationStart(addr);
  if (start == 0) {
    return nullptr;
  }
  return &allocations_.at(start).tag;
}

}  // namespace bpf
