// Tracepoint registry with re-entrancy semantics.
//
// Firing a tracepoint invokes every attached handler (eBPF programs, via the
// runtime's attach layer). Handlers run in tracepoint context; if a handler
// causes the same tracepoint to fire again (e.g. by acquiring a contended
// lock while attached to contention_begin), the nested firing re-enters the
// handlers. A recursion-depth guard converts runaway recursion into a stack
// overflow report — the kernel crash shape of Table 2 bugs #4/#5.

#ifndef SRC_KERNEL_TRACEPOINT_H_
#define SRC_KERNEL_TRACEPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/kernel/report.h"

namespace bpf {

// Well-known tracepoints / attach targets in the simulated kernel.
enum class TracepointId : int {
  kContentionBegin = 0,  // lock contention, fired while acquiring a held lock
  kTracePrintk,          // fired inside the bpf_trace_printk implementation
  kSchedSwitch,          // benign scheduling tracepoint
  kSysEnter,             // benign syscall-entry tracepoint
  kCount,
};

const char* TracepointName(TracepointId id);

class TracepointRegistry {
 public:
  explicit TracepointRegistry(ReportSink& sink) : sink_(sink) {}

  using Handler = std::function<void()>;

  // Attaches a handler; returns a token usable for Detach.
  int Attach(TracepointId id, Handler handler);
  void Detach(TracepointId id, int token);
  void DetachAll();

  // Fires the tracepoint, running all attached handlers. Nested firings beyond
  // the depth limit are cut off with a stack-overflow report.
  void Fire(TracepointId id);

  size_t HandlerCount(TracepointId id) const;
  int fire_depth() const { return depth_; }

 private:
  struct Entry {
    int token;
    Handler handler;
  };

  static constexpr int kMaxDepth = 16;

  ReportSink& sink_;
  std::vector<Entry> handlers_[static_cast<int>(TracepointId::kCount)];
  int next_token_ = 1;
  int depth_ = 0;
  bool overflow_reported_ = false;
};

}  // namespace bpf

#endif  // SRC_KERNEL_TRACEPOINT_H_
