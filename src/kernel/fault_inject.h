// Kernel fault injection, modeled on Linux's CONFIG_FAULT_INJECTION family
// (failslab / fail_function): named fault points in the allocator, the map
// syscall paths, and the helper dispatcher fail on a configurable schedule so
// that campaigns exercise -ENOMEM / -EINVAL degradation paths. The schedule
// knobs mirror the debugfs attributes of the real facility (`probability`,
// `interval`, `space`, `times`).
//
// Every injected fault is appended to a log of (point, nth-call) records.
// A replay injector (`FaultInjector::Replay`) re-fires faults at exactly the
// logged call indices, which is what makes fault-dependent findings
// reproducible: the confirmation pass re-executes a case with the original
// fault schedule instead of a fresh random one.

#ifndef SRC_KERNEL_FAULT_INJECT_H_
#define SRC_KERNEL_FAULT_INJECT_H_

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/kernel/rng.h"

namespace bpf {

// Named fault points. Each maps to one error-injectable kernel site class,
// like fail_function's per-function attributes.
enum class FaultPoint : int {
  kKmalloc = 0,   // KernelAllocator::Kmalloc / Kmemdup
  kKvmalloc,      // KernelAllocator::Kvmalloc / Kvmemdup
  kMapCreate,     // BPF_MAP_CREATE syscall path
  kMapUpdate,     // BPF_MAP_UPDATE_ELEM syscall path
  kHelperCall,    // failable helpers in the runtime dispatcher
  kCount,
};

inline constexpr int kNumFaultPoints = static_cast<int>(FaultPoint::kCount);

const char* FaultPointName(FaultPoint point);

// Per-campaign fault schedule (failslab-style attributes).
struct FaultConfig {
  double probability = 0.0;  // chance each eligible call fails, in [0, 1]
  uint64_t interval = 0;     // every Nth eligible call fails (0 = off)
  uint64_t space = 0;        // per point: this many initial calls never fail
  int64_t times = -1;        // total failures to inject (-1 = unlimited)

  // Per-point enable mask; all points armed by default.
  std::array<bool, kNumFaultPoints> enabled = {true, true, true, true, true};

  bool Active() const { return probability > 0.0 || interval > 0; }
};

// One injected fault: the point and which call to it (1-based) failed.
struct FaultRecord {
  FaultPoint point;
  uint64_t nth;
};

using FaultLog = std::vector<FaultRecord>;

// Decides, per call to a fault point, whether that call fails. Deterministic
// for a given (config, seed) pair; campaigns derive the seed from the campaign
// seed and the iteration number so schedules replay across process restarts.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, uint64_t seed)
      : config_(config), rng_(seed) {}

  // An injector that fails exactly the calls recorded in |log| and nothing
  // else (fault-schedule replay for finding confirmation).
  static FaultInjector Replay(const FaultLog& log);

  // Counts the call and returns true when it should fail. The decision is
  // logged so the schedule can be replayed later.
  bool ShouldFail(FaultPoint point);

  const FaultLog& log() const { return log_; }
  uint64_t calls(FaultPoint point) const { return calls_[static_cast<int>(point)]; }
  uint64_t failures(FaultPoint point) const { return failures_[static_cast<int>(point)]; }
  uint64_t total_failures() const;

 private:
  FaultConfig config_;
  Rng rng_;
  bool replay_ = false;
  std::array<uint64_t, kNumFaultPoints> calls_ = {};
  std::array<uint64_t, kNumFaultPoints> failures_ = {};
  std::array<std::unordered_set<uint64_t>, kNumFaultPoints> replay_nth_;
  FaultLog log_;
};

// Deterministic per-iteration seed derivation (splitmix64 over the campaign
// seed and iteration), so fault schedules survive checkpoint/resume without
// consuming the campaign RNG stream.
inline uint64_t FaultSeed(uint64_t campaign_seed, uint64_t iteration) {
  uint64_t z = campaign_seed ^ (iteration * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace bpf

#endif  // SRC_KERNEL_FAULT_INJECT_H_
