#include "src/kernel/fault_inject.h"

namespace bpf {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kKmalloc:
      return "kmalloc";
    case FaultPoint::kKvmalloc:
      return "kvmalloc";
    case FaultPoint::kMapCreate:
      return "map_create";
    case FaultPoint::kMapUpdate:
      return "map_update";
    case FaultPoint::kHelperCall:
      return "helper_call";
    default:
      return "unknown";
  }
}

FaultInjector FaultInjector::Replay(const FaultLog& log) {
  FaultInjector injector(FaultConfig{}, 0);
  injector.replay_ = true;
  for (const FaultRecord& record : log) {
    injector.replay_nth_[static_cast<int>(record.point)].insert(record.nth);
  }
  return injector;
}

bool FaultInjector::ShouldFail(FaultPoint point) {
  const int idx = static_cast<int>(point);
  const uint64_t nth = ++calls_[idx];

  if (replay_) {
    if (replay_nth_[idx].count(nth) == 0) {
      return false;
    }
    ++failures_[idx];
    log_.push_back(FaultRecord{point, nth});
    return true;
  }

  if (!config_.enabled[idx] || !config_.Active()) {
    return false;
  }
  if (nth <= config_.space) {
    return false;
  }
  if (config_.times >= 0 && static_cast<int64_t>(total_failures()) >= config_.times) {
    return false;
  }

  bool fail = false;
  if (config_.interval > 0 && nth % config_.interval == 0) {
    fail = true;
  }
  // The RNG is consumed for every eligible call, failing or not, so the
  // decision stream depends only on the call sequence, not on prior outcomes.
  if (config_.probability > 0.0 && rng_.Chance(config_.probability)) {
    fail = true;
  }
  if (!fail) {
    return false;
  }
  ++failures_[idx];
  log_.push_back(FaultRecord{point, nth});
  return true;
}

uint64_t FaultInjector::total_failures() const {
  uint64_t total = 0;
  for (const uint64_t count : failures_) {
    total += count;
  }
  return total;
}

}  // namespace bpf
