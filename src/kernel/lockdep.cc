#include "src/kernel/lockdep.h"

namespace bpf {

int Lockdep::RegisterClass(const std::string& name) {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  classes_.push_back(LockClass{name});
  return static_cast<int>(classes_.size()) - 1;
}

void Lockdep::Acquire(int class_id, LockContext ctx) {
  LockClass& cls = classes_[class_id];

  // AA recursion: the same class is already held on this CPU.
  for (const HeldLock& held : held_) {
    if (held.class_id == class_id) {
      const bool cross_context = held.ctx != ctx;
      sink_.Report(cross_context ? ReportKind::kLockdepInconsistent
                                 : ReportKind::kLockdepRecursion,
                   cls.name,
                   cross_context
                       ? "lock held in " +
                             std::string(held.ctx == LockContext::kNormal ? "normal" : "tracepoint") +
                             " context re-acquired from " +
                             std::string(ctx == LockContext::kNormal ? "normal" : "tracepoint") +
                             " context"
                       : "possible recursive locking of " + cls.name);
      break;
    }
  }

  // Usage-state bookkeeping. Note that merely taking a class in both normal
  // and tracepoint context is fine (handlers that cannot interrupt a holder
  // are safe); only re-acquiring a *held* class — detected above — is a bug.
  if (!cls.used_in_normal && !cls.used_in_tracepoint) {
    usage_touched_.push_back(class_id);
  }
  if (ctx == LockContext::kTracepoint) {
    cls.used_in_tracepoint = true;
  } else {
    cls.used_in_normal = true;
  }

  if (held_.size() >= kMaxDepth) {
    sink_.Report(ReportKind::kLockdepDeadlock, cls.name, "held-lock depth overflow");
    return;
  }
  held_.push_back(HeldLock{class_id, ctx});
}

void Lockdep::Release(int class_id) {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (it->class_id == class_id) {
      held_.erase(std::next(it).base());
      return;
    }
  }
}

bool Lockdep::IsHeld(int class_id) const {
  for (const HeldLock& held : held_) {
    if (held.class_id == class_id) {
      return true;
    }
  }
  return false;
}

void Lockdep::Reset() { held_.clear(); }

}  // namespace bpf
