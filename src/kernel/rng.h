// Deterministic PRNG (xoshiro256**) used by the fuzzer and workload
// generators. Deterministic seeds make every campaign in the benchmark suite
// reproducible.

#ifndef SRC_KERNEL_RNG_H_
#define SRC_KERNEL_RNG_H_

#include <array>
#include <cstdint>

namespace bpf {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability num/den.
  bool OneIn(uint64_t den) { return Below(den) == 0; }
  bool Chance(double p) { return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p; }

  // Snapshot/restore of the generator position, for campaign checkpointing:
  // restoring a saved state resumes the exact output stream.
  std::array<uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state[i];
    }
  }

  // Picks a random element of a container.
  template <typename C>
  auto& Pick(C& container) {
    return container[Below(container.size())];
  }
  template <typename C>
  const auto& Pick(const C& container) {
    return container[Below(container.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace bpf

#endif  // SRC_KERNEL_RNG_H_
