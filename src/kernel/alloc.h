// kmalloc-family allocation primitives over the KASAN arena.
//
// kmalloc() has a maximum allocation size (KMALLOC_MAX); kvmalloc() falls back
// to the vmalloc path for larger requests. kvmemdup() is the primitive that
// the paper's authors contributed upstream to fix Table 2 bug #8: the eBPF
// syscall duplicated rewritten instruction arrays with kmemdup(), which fails
// once sanitation inflates the program beyond KMALLOC_MAX.

#ifndef SRC_KERNEL_ALLOC_H_
#define SRC_KERNEL_ALLOC_H_

#include <cstdint>
#include <string>

#include "src/kernel/fault_inject.h"
#include "src/kernel/kasan.h"

namespace bpf {

// Maximum kmalloc allocation. The real limit is KMALLOC_MAX_CACHE_SIZE-order
// dependent; we use a small fixed value so that sanitized programs (3x insn
// inflation, 8 bytes/insn) can realistically exceed it.
inline constexpr size_t kKmallocMax = 16 * 1024;

class KernelAllocator {
 public:
  explicit KernelAllocator(KasanArena& arena) : arena_(arena) {}

  // Returns a guest address or 0 (-ENOMEM / -E2BIG semantics).
  uint64_t Kmalloc(size_t size, const std::string& tag);
  uint64_t Kvmalloc(size_t size, const std::string& tag);
  void Kfree(uint64_t addr);

  // Duplicate |size| bytes from host memory into a fresh kernel allocation.
  // Kmemdup is subject to kKmallocMax; Kvmemdup is not.
  uint64_t Kmemdup(const void* src, size_t size, const std::string& tag);
  uint64_t Kvmemdup(const void* src, size_t size, const std::string& tag);

  // failslab-style error injection: when set, kmalloc/kvmalloc consult the
  // injector and return 0 on an injected fault. Non-owning; nullptr disarms.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  KasanArena& arena_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace bpf

#endif  // SRC_KERNEL_ALLOC_H_
