#include "src/kernel/coverage.h"

#include <cstdio>
#include <cstdlib>

namespace bpf {

thread_local CoverageSink* Coverage::tls_sink_ = nullptr;

CoverageSink::CoverageSink()
    : case_hit_(Coverage::kMaxSites, 0), epoch_hit_(Coverage::kMaxSites, 0) {}

void CoverageSink::BeginCase() {
  for (const int site : case_marks_) {
    case_hit_[site] = 0;
  }
  case_marks_.clear();
  new_since_case_ = 0;
}

void CoverageSink::ClearEpoch() {
  for (const int site : epoch_sites_) {
    epoch_hit_[site] = 0;
  }
  epoch_sites_.clear();
}

Coverage::Coverage() : hit_(new std::atomic<uint8_t>[kMaxSites]()) {}

std::string Coverage::SiteKey(const Site& site) {
  return std::string(site.file) + ":" + std::to_string(site.line) + ":" +
         std::to_string(site.idx);
}

CoverageSink* Coverage::InstallThreadSink(CoverageSink* sink) {
  CoverageSink* previous = tls_sink_;
  tls_sink_ = sink;
  return previous;
}

int Coverage::RegisterSite(const char* file, int line) {
  return RegisterGroup(file, line, 1);
}

int Coverage::RegisterGroup(const char* file, int line, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t base = sites_.size();
  if (base + static_cast<size_t>(count) > kMaxSites) {
    std::fprintf(stderr, "coverage: site registry overflow (%zu + %d > %zu)\n", base,
                 count, kMaxSites);
    std::abort();
  }
  for (int i = 0; i < count; ++i) {
    sites_.push_back(Site{file, line, i});
    const size_t id = base + static_cast<size_t>(i);
    if (!pending_.empty() && pending_.erase(SiteKey(sites_.back())) > 0) {
      // Already counted toward hit_count_ at restore time; just materialize.
      hit_[id].store(1, std::memory_order_relaxed);
    }
  }
  site_count_.store(sites_.size(), std::memory_order_release);
  return static_cast<int>(base);
}

void Coverage::ResetHits() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = sites_.size();
  for (size_t i = 0; i < n; ++i) {
    hit_[i].store(0, std::memory_order_relaxed);
  }
  pending_.clear();
  hit_count_.store(0, std::memory_order_relaxed);
  new_since_mark_.store(0, std::memory_order_relaxed);
  run_trace_len_.store(0, std::memory_order_relaxed);
}

size_t Coverage::Commit(CoverageSink& sink) {
  size_t newly = 0;
  for (const int site : sink.epoch_sites()) {
    if (hit_[site].exchange(1, std::memory_order_relaxed) == 0) {
      ++newly;
    }
  }
  hit_count_.fetch_add(newly, std::memory_order_relaxed);
  run_trace_len_.fetch_add(sink.trace_len_, std::memory_order_relaxed);
  sink.trace_len_ = 0;
  sink.ClearEpoch();
  return newly;
}

std::vector<std::string> Coverage::SerializeHitKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (hit_[i].load(std::memory_order_relaxed)) {
      keys.push_back(SiteKey(sites_[i]));
    }
  }
  // Sites pending restoration are still part of the campaign's hit set even
  // though their code has not run in this process yet.
  keys.insert(keys.end(), pending_.begin(), pending_.end());
  return keys;
}

void Coverage::RestoreHitKeys(const std::vector<std::string>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  // Every distinct restored key is part of the campaign's covered set and
  // counts immediately — including keys for sites this process has not
  // registered yet (those stay pending and are materialized, without
  // recounting, the moment their code first runs).
  std::set<std::string> wanted(keys.begin(), keys.end());
  size_t restored = 0;
  for (size_t i = 0; i < sites_.size() && !wanted.empty(); ++i) {
    if (wanted.erase(SiteKey(sites_[i])) > 0 &&
        hit_[i].exchange(1, std::memory_order_relaxed) == 0) {
      ++restored;
    }
  }
  hit_count_.fetch_add(restored + wanted.size(), std::memory_order_relaxed);
  pending_.insert(wanted.begin(), wanted.end());
}

std::vector<std::string> Coverage::SiteKeysFor(const std::vector<int>& site_ids) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(site_ids.size());
  for (const int id : site_ids) {
    if (id >= 0 && static_cast<size_t>(id) < sites_.size()) {
      keys.push_back(SiteKey(sites_[static_cast<size_t>(id)]));
    }
  }
  return keys;
}

std::vector<std::string> Coverage::CoveredSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (hit_[i].load(std::memory_order_relaxed)) {
      out.push_back(std::string(sites_[i].file) + ":" + std::to_string(sites_[i].line));
    }
  }
  return out;
}

ScopedCoverageSuppress::ScopedCoverageSuppress() : sink_(Coverage::ThreadSink()) {
  if (sink_ != nullptr) {
    sink_was_muted_ = sink_->muted();
    sink_->set_muted(true);
  } else {
    global_was_enabled_ = Coverage::Get().enabled();
    Coverage::Get().set_enabled(false);
  }
}

ScopedCoverageSuppress::~ScopedCoverageSuppress() {
  if (sink_ != nullptr) {
    sink_->set_muted(sink_was_muted_);
  } else {
    Coverage::Get().set_enabled(global_was_enabled_);
  }
}

}  // namespace bpf
