#include "src/kernel/coverage.h"

#include <algorithm>

namespace bpf {

Coverage& Coverage::Get() {
  static Coverage instance;
  return instance;
}

std::string Coverage::SiteKey(const Site& site) {
  return std::string(site.file) + ":" + std::to_string(site.line) + ":" +
         std::to_string(site.idx);
}

int Coverage::RegisterSite(const char* file, int line) {
  sites_.push_back(Site{file, line, 0});
  hit_.push_back(0);
  const int id = static_cast<int>(sites_.size()) - 1;
  if (!pending_.empty() && pending_.erase(SiteKey(sites_.back())) > 0) {
    // Already counted toward hit_count_ at restore time; just materialize.
    hit_[id] = 1;
  }
  return id;
}

int Coverage::RegisterGroup(const char* file, int line, int count) {
  const int base = static_cast<int>(sites_.size());
  for (int i = 0; i < count; ++i) {
    sites_.push_back(Site{file, line, i});
    hit_.push_back(0);
    if (!pending_.empty() && pending_.erase(SiteKey(sites_.back())) > 0) {
      hit_[base + i] = 1;
    }
  }
  return base;
}

void Coverage::ResetHits() {
  std::fill(hit_.begin(), hit_.end(), 0);
  pending_.clear();
  hit_count_ = 0;
  new_since_mark_ = 0;
  run_trace_len_ = 0;
}

std::vector<std::string> Coverage::SerializeHitKeys() const {
  std::vector<std::string> keys;
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (hit_[i]) {
      keys.push_back(SiteKey(sites_[i]));
    }
  }
  // Sites pending restoration are still part of the campaign's hit set even
  // though their code has not run in this process yet.
  keys.insert(keys.end(), pending_.begin(), pending_.end());
  return keys;
}

void Coverage::RestoreHitKeys(const std::vector<std::string>& keys) {
  // Every distinct restored key is part of the campaign's covered set and
  // counts immediately — including keys for sites this process has not
  // registered yet (those stay pending and are materialized, without
  // recounting, the moment their code first runs).
  std::set<std::string> wanted(keys.begin(), keys.end());
  for (size_t i = 0; i < sites_.size() && !wanted.empty(); ++i) {
    if (wanted.erase(SiteKey(sites_[i])) > 0 && !hit_[i]) {
      hit_[i] = 1;
      ++hit_count_;
    }
  }
  hit_count_ += wanted.size();
  pending_.insert(wanted.begin(), wanted.end());
}

std::vector<std::string> Coverage::CoveredSites() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (hit_[i]) {
      out.push_back(std::string(sites_[i].file) + ":" + std::to_string(sites_[i].line));
    }
  }
  return out;
}

}  // namespace bpf
