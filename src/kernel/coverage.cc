#include "src/kernel/coverage.h"

namespace bpf {

Coverage& Coverage::Get() {
  static Coverage instance;
  return instance;
}

int Coverage::RegisterSite(const char* file, int line) {
  sites_.push_back(Site{file, line});
  hit_.push_back(0);
  return static_cast<int>(sites_.size()) - 1;
}

int Coverage::RegisterGroup(const char* file, int line, int count) {
  const int base = static_cast<int>(sites_.size());
  for (int i = 0; i < count; ++i) {
    sites_.push_back(Site{file, line});
    hit_.push_back(0);
  }
  return base;
}

void Coverage::ResetHits() {
  std::fill(hit_.begin(), hit_.end(), 0);
  hit_count_ = 0;
  new_since_mark_ = 0;
  run_trace_len_ = 0;
}

std::vector<std::string> Coverage::CoveredSites() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (hit_[i]) {
      out.push_back(std::string(sites_[i].file) + ":" + std::to_string(sites_[i].line));
    }
  }
  return out;
}

}  // namespace bpf
