// Kernel self-check report sink: the simulated equivalent of dmesg + panic.
//
// Every detection mechanism in the simulated kernel (KASAN, lockdep, WARN_ON,
// panic, and BVF's bpf_asan dispatch checks) files a KernelReport here. The
// fuzzer's oracle classifies reports into the paper's two indicators.

#ifndef SRC_KERNEL_REPORT_H_
#define SRC_KERNEL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bpf {

enum class ReportKind {
  // Indicator #1: invalid load/store in a verified eBPF program, caught by the
  // dispatch-based sanitation (bpf_asan_* -> KASAN) or the alu_limit check.
  kBpfAsanOob,
  kBpfAsanUseAfterFree,
  kBpfAsanNullDeref,
  kBpfAsanWild,
  kAluLimitViolation,

  // Indicator #2: errors inside kernel routines invoked by the program.
  kKasanOob,
  kKasanUseAfterFree,
  kKasanNullDeref,
  kLockdepRecursion,
  kLockdepInconsistent,
  kLockdepDeadlock,
  kWarn,
  kPanic,
  kPageFault,  // native wild access (oops), also reachable without sanitation
  kStackOverflow,

  // Indicator #3: a concrete execution witnessed a register value outside the
  // verifier's claimed abstract state (witness-containment audit,
  // src/analysis/state_audit.h).
  kStateAuditViolation,

  // Indicator #4: metamorphic divergences (src/core/metamorph). These are
  // never filed through a ReportSink — the oracle compares whole cases, not
  // single kernel events — but the kinds live here so metamorph findings
  // serialize, triage, and dedup through the same Finding machinery.
  kMetamorphVerdictDivergence,    // accept/reject flip on a variant
  kMetamorphWitnessDivergence,    // exit-value/errno mismatch across variants
  kMetamorphSanitizerDivergence,  // indicator fires on one variant only

  // Supervisor (src/core/supervisor): a campaign worker *process* died — a
  // real sanitizer abort, a hang past the heartbeat deadline, or an
  // unexpected exit. Like the metamorph kinds, never filed through a
  // ReportSink; the supervisor synthesizes the finding (with the worker's
  // captured stderr as details) and keeps it in the digest-excluded
  // crash_findings list.
  kWorkerCrash,

  // Indicator #5: JIT differential oracle (src/core/fuzzer.cc). The decoded
  // interpreter and the JIT tier produced different witnesses for one
  // program — a miscompile by construction (they implement one semantics).
  // Never filed through a ReportSink; the oracle synthesizes the finding.
  // Appended last: findings serialize the kind as an int.
  kJitDivergence,

  // Indicator #6: conformance corpus oracle (src/conformance, DESIGN.md §15).
  // An authored corpus case with a known expected value either executed to a
  // different r0 on some engine (kConformanceMismatch — engine bug) or was
  // rejected/accepted against its expectation (kConformanceReject — verifier
  // gap). Never filed through a ReportSink; the conformance prologue
  // synthesizes the finding. Append-tail: findings serialize the kind as int.
  kConformanceMismatch,
  kConformanceReject,
};

const char* ReportKindName(ReportKind kind);

// True for report kinds produced by BVF's program sanitation (indicator #1).
bool IsIndicator1(ReportKind kind);

// True for reports from the abstract-state witness audit (indicator #3).
bool IsIndicator3(ReportKind kind);

struct KernelReport {
  ReportKind kind;
  std::string title;    // one-line summary, stable across duplicates of one bug
  std::string details;  // free-form context (addresses, lock names, ...)

  // Signature used for triage dedup: kind + title.
  std::string Signature() const;
};

// Collects reports for one simulated kernel instance. Unlike the real kernel,
// reporting never aborts the process; `panicked()` tells callers the machine
// would be dead.
class ReportSink {
 public:
  void Report(ReportKind kind, std::string title, std::string details = "");
  void Panic(std::string title, std::string details = "");

  bool panicked() const { return panicked_; }
  bool empty() const { return reports_.empty(); }
  size_t size() const { return reports_.size(); }
  const std::vector<KernelReport>& reports() const { return reports_; }

  // Reports filed since the given watermark (for per-execution oracles).
  size_t Watermark() const { return reports_.size(); }

  void Clear() {
    reports_.clear();
    panicked_ = false;
  }

 private:
  std::vector<KernelReport> reports_;
  bool panicked_ = false;
};

}  // namespace bpf

#endif  // SRC_KERNEL_REPORT_H_
