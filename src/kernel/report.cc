#include "src/kernel/report.h"

namespace bpf {

const char* ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kBpfAsanOob:
      return "bpf-asan: out-of-bounds";
    case ReportKind::kBpfAsanUseAfterFree:
      return "bpf-asan: use-after-free";
    case ReportKind::kBpfAsanNullDeref:
      return "bpf-asan: null-ptr-deref";
    case ReportKind::kBpfAsanWild:
      return "bpf-asan: wild-access";
    case ReportKind::kAluLimitViolation:
      return "bpf-asan: alu-limit-violation";
    case ReportKind::kKasanOob:
      return "KASAN: slab-out-of-bounds";
    case ReportKind::kKasanUseAfterFree:
      return "KASAN: use-after-free";
    case ReportKind::kKasanNullDeref:
      return "KASAN: null-ptr-deref";
    case ReportKind::kLockdepRecursion:
      return "lockdep: possible recursive locking";
    case ReportKind::kLockdepInconsistent:
      return "lockdep: inconsistent lock state";
    case ReportKind::kLockdepDeadlock:
      return "lockdep: possible deadlock";
    case ReportKind::kWarn:
      return "WARNING";
    case ReportKind::kPanic:
      return "kernel panic";
    case ReportKind::kPageFault:
      return "BUG: unable to handle page fault";
    case ReportKind::kStackOverflow:
      return "BUG: stack guard page was hit";
    case ReportKind::kStateAuditViolation:
      return "state-audit: witness outside verifier claim";
    case ReportKind::kMetamorphVerdictDivergence:
      return "metamorph: verdict divergence";
    case ReportKind::kMetamorphWitnessDivergence:
      return "metamorph: witness divergence";
    case ReportKind::kMetamorphSanitizerDivergence:
      return "metamorph: sanitizer divergence";
    case ReportKind::kWorkerCrash:
      return "supervisor: worker crash";
    case ReportKind::kJitDivergence:
      return "jit: interpreter/jit divergence";
    case ReportKind::kConformanceMismatch:
      return "conformance: expected-value mismatch";
    case ReportKind::kConformanceReject:
      return "conformance: verdict mismatch";
  }
  return "unknown";
}

bool IsIndicator1(ReportKind kind) {
  switch (kind) {
    case ReportKind::kBpfAsanOob:
    case ReportKind::kBpfAsanUseAfterFree:
    case ReportKind::kBpfAsanNullDeref:
    case ReportKind::kBpfAsanWild:
    case ReportKind::kAluLimitViolation:
      return true;
    default:
      return false;
  }
}

bool IsIndicator3(ReportKind kind) { return kind == ReportKind::kStateAuditViolation; }

std::string KernelReport::Signature() const {
  return std::string(ReportKindName(kind)) + " in " + title;
}

void ReportSink::Report(ReportKind kind, std::string title, std::string details) {
  reports_.push_back(KernelReport{kind, std::move(title), std::move(details)});
  if (kind == ReportKind::kPanic) {
    panicked_ = true;
  }
}

void ReportSink::Panic(std::string title, std::string details) {
  Report(ReportKind::kPanic, std::move(title), std::move(details));
}

}  // namespace bpf
