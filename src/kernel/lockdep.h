// Runtime locking correctness validator, modelled on Linux lockdep.
//
// Tracks the stack of held locks per (simulated, single) CPU together with
// the context each acquisition happened in. Detections:
//  * recursion        — re-acquiring a lock class already held (AA deadlock);
//  * inconsistent use — a class acquired both inside and outside tracepoint
//                       context, i.e. a tracepoint handler can interrupt a
//                       holder of the same class (the Fig. 2 / Bug #5 shape);
//  * depth overflow   — unbounded nesting, reported as a deadlock.
//
// This is the capture mechanism for the paper's indicator #2 lock bugs
// (Table 2 bugs #4, #5, #10).

#ifndef SRC_KERNEL_LOCKDEP_H_
#define SRC_KERNEL_LOCKDEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/report.h"

namespace bpf {

// Execution context of an acquisition, a simplified version of lockdep's
// usage states (hardirq/softirq/normal); tracepoint context plays the role of
// the interrupting context in this model.
enum class LockContext {
  kNormal,
  kTracepoint,
};

class Lockdep {
 public:
  explicit Lockdep(ReportSink& sink) : sink_(sink) {}

  // Registers a lock class, returning its id. Idempotent by name.
  int RegisterClass(const std::string& name);

  // Acquire/release. Acquire files reports on violations but still records the
  // acquisition (lockdep warns once and keeps going).
  void Acquire(int class_id, LockContext ctx);
  void Release(int class_id);

  bool IsHeld(int class_id) const;
  size_t depth() const { return held_.size(); }

  // Clears held state between executions (a crashed program's locks are
  // force-released by the test harness, as BPF_PROG_TEST_RUN effectively does).
  void Reset();

  // Full case-boundary reset: drops held locks AND the per-class usage bits,
  // so a reused kernel substrate cannot carry lock-usage history (and the
  // inconsistent-use detector's inputs) from one fuzz case into the next.
  // Registered classes persist — they are code, not state. Dirty-tracked:
  // Acquire records which classes it set usage bits on, so the reset walks
  // only the classes the case touched rather than the whole registry.
  void ResetCaseState() {
    held_.clear();
    for (const int class_id : usage_touched_) {
      classes_[class_id].used_in_normal = false;
      classes_[class_id].used_in_tracepoint = false;
    }
    usage_touched_.clear();
  }

  // Classes whose usage bits are currently set (test/bench introspection).
  size_t usage_touched_count() const { return usage_touched_.size(); }

  const std::string& ClassName(int class_id) const { return classes_[class_id].name; }

  // Usage-state observability (which contexts a class has been taken in).
  bool UsedInNormal(int class_id) const { return classes_[class_id].used_in_normal; }
  bool UsedInTracepoint(int class_id) const { return classes_[class_id].used_in_tracepoint; }

 private:
  struct LockClass {
    std::string name;
    bool used_in_normal = false;
    bool used_in_tracepoint = false;
  };
  struct HeldLock {
    int class_id;
    LockContext ctx;
  };

  static constexpr size_t kMaxDepth = 48;

  ReportSink& sink_;
  std::vector<LockClass> classes_;
  std::vector<HeldLock> held_;
  std::vector<int> usage_touched_;  // class ids with a usage bit set
};

}  // namespace bpf

#endif  // SRC_KERNEL_LOCKDEP_H_
