// Simulated kernel address space with KASAN-style shadow memory.
//
// All kernel objects reachable from eBPF programs (map values, contexts,
// program stacks, BTF-typed kernel structures) are carved out of one arena.
// Each byte of the arena has a shadow byte recording whether it is
// addressable, a redzone, or freed memory. Two access paths exist:
//
//  * Checked*() — the path "compiled with KASAN": kernel routines (helpers,
//    map implementations) and BVF's bpf_asan_* dispatch functions use it; any
//    shadow violation files a KASAN report.
//  * Raw*() — the path native JITed eBPF code takes: no shadow check. An
//    in-arena out-of-bounds access silently corrupts neighbouring data, just
//    like native execution; only accesses leaving the mapped arena entirely
//    fault (page-fault oops). This asymmetry is exactly the paper's motivation
//    for dispatch-based sanitation.

#ifndef SRC_KERNEL_KASAN_H_
#define SRC_KERNEL_KASAN_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kernel/report.h"

namespace bpf {

// Base guest address of the arena; mirrors the x86-64 direct-map base so that
// addresses look like kernel pointers in reports.
inline constexpr uint64_t kArenaBase = 0xffff888000000000ull;

// Shadow byte values.
enum class Shadow : uint8_t {
  kAddressable = 0,
  kUnallocated = 0xfe,
  kRedzone = 0xfa,
  kFreed = 0xfb,
};

enum class AccessResult {
  kOk,
  kOob,           // redzone or unallocated inside the arena
  kUseAfterFree,  // freed object
  kNull,          // address in the null page
  kWild,          // address outside the arena entirely
};

class KasanArena {
 public:
  explicit KasanArena(size_t size = 8u << 20);

  // Allocates |size| bytes with redzones; returns the guest address, or 0 when
  // the arena is exhausted (or the per-case allocation budget is exceeded).
  // |tag| names the allocation in reports.
  uint64_t Alloc(size_t size, const std::string& tag);
  void Free(uint64_t addr);

  // Per-case execution guard: when non-zero, allocations that would push
  // bytes_in_use() past |bytes| fail as if the arena were exhausted. Trips are
  // counted so campaigns can classify kResourceExhausted outcomes.
  void set_alloc_budget(size_t bytes) { alloc_budget_ = bytes; }
  size_t alloc_budget() const { return alloc_budget_; }
  uint64_t budget_trips() const { return budget_trips_; }

  // Case-hygiene support for substrate reuse. TakeBootSnapshot() captures the
  // arena immediately after kernel boot (memory image, shadow, allocation
  // metadata); ResetToBootSnapshot() restores exactly that state — post-boot
  // allocations vanish, silent corruption of boot objects is undone, and the
  // KASAN quarantine is purged so no freed-object state leaks across cases.
  //
  // The restore is dirty-tracked: every write path marks the 4KiB pages it
  // touches, and the reset rewrites only those pages (memory and shadow both),
  // so its cost scales with what the case actually used instead of the arena
  // size. set_dirty_reset(false) forces the original full-arena rewind
  // (benchmark baseline); paranoid mode (BVF_PARANOID_RESET=1 or
  // set_paranoid_reset) cross-checks the dirty restore byte-for-byte against
  // the pristine boot image after every reset and aborts on any divergence.
  void TakeBootSnapshot();
  void ResetToBootSnapshot();
  void set_dirty_reset(bool enabled) { dirty_reset_ = enabled; }
  bool dirty_reset() const { return dirty_reset_; }
  void set_paranoid_reset(bool enabled) { paranoid_reset_ = enabled; }
  bool paranoid_reset() const { return paranoid_reset_; }
  // Pages currently marked dirty (test/bench introspection).
  size_t dirty_page_count() const { return dirty_pages_.size(); }

  static constexpr size_t kPageSize = 4096;

  size_t quarantine_size() const { return quarantine_.size(); }

  // Classifies an access without reporting.
  AccessResult Classify(uint64_t addr, size_t size) const;

  // Range-only classification: null page / outside the arena / mapped,
  // without walking shadow bytes. Exactly the distinction the uninstrumented
  // (native-JIT-model) access path needs — Raw* accesses succeed anywhere
  // inside the arena regardless of shadow state, so kOk here means "mapped",
  // and the result matches Classify() whenever Classify() would return kNull
  // or kWild. Kept inline: this runs once per interpreted load.
  AccessResult ClassifyRange(uint64_t addr, size_t size) const {
    if (addr < 4096) {
      return AccessResult::kNull;
    }
    if (!InArena(addr, size)) {
      return AccessResult::kWild;
    }
    return AccessResult::kOk;
  }

  // Dispatch-free cores of the bpf_asan_{load,store}{8..64} fast paths used
  // by the pre-decoded execution engine's asan micro-ops. Both work on whole
  // 8-byte words (one shadow-word test, one value word) and return false —
  // without reporting — whenever the access is not a plain all-addressable
  // interior hit; the caller then takes the out-of-line AsanChecked* path,
  // which re-classifies and reports exactly as the dispatched bpf_asan_*
  // functions do. A fast-path true is possible only when Classify() would
  // say kOk, so taking it never changes observable behavior.
  bool FastCheckedLoad(uint64_t addr, size_t size, uint64_t* out) const {
    if (addr < 4096 || !InArena(addr, 8)) {
      return false;  // null/wild/too close to the arena end for word access
    }
    const size_t start = Offset(addr);
    uint64_t shadow_word;
    std::memcpy(&shadow_word, shadow_.data() + start, 8);
    const uint64_t mask = size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
    if ((shadow_word & mask) != 0) {
      return false;  // some byte is a redzone/freed/unallocated
    }
    uint64_t value;
    std::memcpy(&value, mem_.data() + start, 8);
    *out = value & mask;
    return true;
  }
  bool FastCheckedStore(uint64_t addr, size_t size, uint64_t value) {
    if (addr < 4096 || !InArena(addr, 8)) {
      return false;
    }
    const size_t start = Offset(addr);
    uint64_t shadow_word;
    std::memcpy(&shadow_word, shadow_.data() + start, 8);
    const uint64_t mask = size >= 8 ? ~0ull : ((1ull << (size * 8)) - 1);
    if ((shadow_word & mask) != 0) {
      return false;
    }
    MarkDirty(start, 8);
    // Branchless sub-word store: blend into the containing word. The bytes
    // above the access are rewritten with their current values, which is
    // invisible (single-threaded kernel model).
    uint64_t current;
    std::memcpy(&current, mem_.data() + start, 8);
    current = (current & ~mask) | (value & mask);
    std::memcpy(mem_.data() + start, &current, 8);
    return true;
  }

  // Raw buffer pointers for the JIT execution tier (src/runtime/jit_prog.h).
  // Generated code receives them through the per-invocation JitRt block —
  // never baked into code — and replicates ClassifyRange/FastChecked* checks
  // inline. The vectors never resize after construction, so the pointers stay
  // valid for the arena's lifetime. page_dirty is read-only to generated
  // code: the native store fast path requires the page to be dirty already
  // (so skipping MarkDirty is a no-op) and routes everything else through the
  // C++ path, which marks pages normally.
  uint8_t* jit_mem_base() { return mem_.data(); }
  const uint8_t* jit_shadow_base() const { return shadow_.data(); }
  const uint8_t* jit_page_dirty_base() const { return page_dirty_.data(); }
  size_t jit_arena_size() const { return mem_.size(); }

  // KASAN-instrumented access: checks shadow, files a report on violation (and
  // still performs the access when the bytes are backed, as real KASAN does).
  // |ctx| is a static origin string; it is only materialized on violation, so
  // the hot non-faulting path never constructs a std::string.
  bool CheckedRead(uint64_t addr, size_t size, uint64_t* out, ReportSink& sink,
                   const char* ctx);
  bool CheckedWrite(uint64_t addr, size_t size, uint64_t value, ReportSink& sink,
                    const char* ctx);

  // Uninstrumented native access: succeeds anywhere inside the arena
  // (including redzones/freed memory -> silent corruption); faults outside.
  bool RawRead(uint64_t addr, size_t size, uint64_t* out, ReportSink& sink,
               const char* ctx);
  bool RawWrite(uint64_t addr, size_t size, uint64_t value, ReportSink& sink,
                const char* ctx);

  // Bulk accessors for kernel-side code operating on its own objects.
  uint8_t* HostPtr(uint64_t addr, size_t size);  // nullptr if out of arena
  bool CopyIn(uint64_t addr, const void* src, size_t size);
  bool CopyOut(uint64_t addr, void* dst, size_t size);

  // Human-readable description of the nearest allocation, e.g.
  // " near object 'task_struct' of size 192"; empty when none is close.
  std::string DescribeNearest(uint64_t addr, size_t size) const;

  // Allocation metadata (0 if |addr| is not inside a live allocation).
  uint64_t AllocationStart(uint64_t addr) const;
  size_t AllocationSize(uint64_t addr) const;
  const std::string* AllocationTag(uint64_t addr) const;

  size_t bytes_in_use() const { return bytes_in_use_; }
  size_t live_allocations() const { return allocations_.size(); }

 private:
  struct Allocation {
    size_t size;
    std::string tag;
  };
  // A freed object whose metadata is retained (real KASAN keeps freed objects
  // in a quarantine so use-after-free reports can still name them).
  struct Quarantined {
    uint64_t addr;
    size_t size;
    std::string tag;
  };

  bool InArena(uint64_t addr, size_t size) const {
    return addr >= kArenaBase && addr + size <= kArenaBase + mem_.size() && addr + size >= addr;
  }
  size_t Offset(uint64_t addr) const { return static_cast<size_t>(addr - kArenaBase); }

  // Marks the pages overlapping [offset, offset+size) as touched by the
  // current case. Over-marking is sound (a clean page is restored to itself);
  // under-marking is not, so every path that mutates mem_ or shadow_ — or
  // hands out a mutable pointer into mem_ — must call this first.
  void MarkDirty(size_t offset, size_t size) {
    if (size == 0) {
      return;
    }
    const size_t last = (offset + size - 1) / kPageSize;
    for (size_t page = offset / kPageSize; page <= last; ++page) {
      if (page_dirty_[page] == 0) {
        page_dirty_[page] = 1;
        dirty_pages_.push_back(static_cast<uint32_t>(page));
      }
    }
  }

  // Rewrites one page of mem_ and shadow_ back to the pristine post-boot
  // image (boot snapshot below boot_bump_, unallocated fill above it).
  void RestorePage(size_t page);
  // Full-arena rewind (the pre-dirty-tracking reset), also used as the
  // paranoid-mode reference.
  void FullRewind();
  // Paranoid cross-check: abort unless mem_/shadow_ are byte-for-byte
  // identical to what FullRewind() would produce.
  void VerifyPristine() const;

  void ReportViolation(AccessResult result, uint64_t addr, size_t size, bool write,
                       ReportSink& sink, const std::string& ctx, bool from_bpf_asan);

  friend class BpfAsan;

  std::vector<uint8_t> mem_;
  std::vector<uint8_t> shadow_;
  std::unordered_map<uint64_t, Allocation> allocations_;  // start addr -> meta
  std::vector<Quarantined> quarantine_;                   // bounded FIFO
  std::vector<uint8_t> page_dirty_;    // 1 byte per kPageSize page
  std::vector<uint32_t> dirty_pages_;  // indices of set page_dirty_ entries
  bool dirty_reset_ = true;
  bool paranoid_reset_ = false;
  size_t bump_ = 0;
  size_t bytes_in_use_ = 0;
  size_t alloc_budget_ = 0;  // 0 = unlimited
  uint64_t budget_trips_ = 0;

  // Boot-time snapshot for ResetToBootSnapshot().
  std::vector<uint8_t> boot_mem_;
  std::vector<uint8_t> boot_shadow_;
  std::unordered_map<uint64_t, Allocation> boot_allocations_;
  size_t boot_bump_ = 0;
  size_t boot_bytes_in_use_ = 0;
  bool has_boot_snapshot_ = false;

  static constexpr size_t kRedzoneSize = 32;
  static constexpr size_t kAlign = 16;
  static constexpr size_t kQuarantineSlots = 64;
};

}  // namespace bpf

#endif  // SRC_KERNEL_KASAN_H_
