#include "src/kernel/alloc.h"

namespace bpf {

uint64_t KernelAllocator::Kmalloc(size_t size, const std::string& tag) {
  if (size > kKmallocMax) {
    return 0;
  }
  if (fault_ != nullptr && fault_->ShouldFail(FaultPoint::kKmalloc)) {
    return 0;  // failslab: the allocation attempt itself fails
  }
  return arena_.Alloc(size, tag);
}

uint64_t KernelAllocator::Kvmalloc(size_t size, const std::string& tag) {
  if (fault_ != nullptr && fault_->ShouldFail(FaultPoint::kKvmalloc)) {
    return 0;
  }
  return arena_.Alloc(size, tag);
}

void KernelAllocator::Kfree(uint64_t addr) { arena_.Free(addr); }

uint64_t KernelAllocator::Kmemdup(const void* src, size_t size, const std::string& tag) {
  const uint64_t addr = Kmalloc(size, tag);
  if (addr == 0) {
    return 0;
  }
  arena_.CopyIn(addr, src, size);
  return addr;
}

uint64_t KernelAllocator::Kvmemdup(const void* src, size_t size, const std::string& tag) {
  const uint64_t addr = Kvmalloc(size, tag);
  if (addr == 0) {
    return 0;
  }
  arena_.CopyIn(addr, src, size);
  return addr;
}

}  // namespace bpf
