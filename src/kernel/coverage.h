// kcov-style branch coverage for the simulated verifier.
//
// Every decision point in instrumented code drops a BVF_COV() marker; the
// first execution registers a site, subsequent executions mark it hit. The
// fuzzer uses the global hit set as feedback (new-coverage detection), and the
// benchmarks report the number of distinct covered sites, matching the
// covered-branch metric of the paper's Figure 6 / Table 3.
//
// The registry is process-global, mirroring kcov: coverage belongs to the
// "machine", not to a kernel object. Reset() clears hit state between
// campaigns; registered sites persist (they are code locations).
//
// Threading model (DESIGN.md §9). Registration is mutex-guarded and hit
// storage is a fixed-capacity array of atomics, so instrumented code may run
// on any number of threads. Two hit-recording modes exist:
//
//  * Global mode (default, no sink installed on the thread): Hit() commits
//    straight into the process-global hit set. This is the single-threaded
//    campaign / test path; hit_count(), MarkRun()/NewSinceMark() behave as
//    they always have.
//  * Buffered mode: a worker thread installs a CoverageSink; its hits are
//    recorded privately (per-case marks + an epoch delta) and only merged
//    into the global committed set at a synchronization barrier via
//    Commit(). Between barriers the committed set is frozen, which is what
//    makes per-case novelty (NewSinceCase) independent of how iterations are
//    sharded across workers.

#ifndef SRC_KERNEL_COVERAGE_H_
#define SRC_KERNEL_COVERAGE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace bpf {

class Coverage;

// Per-worker hit buffer for the parallel campaign engine. Owned by exactly
// one thread; installed with Coverage::InstallThreadSink(). All methods are
// called by the owning thread only, except epoch_sites()/ClearEpoch() which
// the merge coordinator calls while the owner is parked at a barrier.
class CoverageSink {
 public:
  CoverageSink();

  // Per-case feedback: forget case-local marks; NewSinceCase() then counts
  // distinct sites this case hits that are absent from the global committed
  // set (frozen between barriers).
  void BeginCase();
  size_t NewSinceCase() const { return new_since_case_; }

  // Suppress recording entirely (finding-confirmation re-executions must not
  // feed campaign feedback), mirroring Coverage::set_enabled for the
  // single-threaded path.
  void set_muted(bool muted) { muted_ = muted; }
  bool muted() const { return muted_; }

  // Distinct sites hit since the last ClearEpoch(), in first-hit order.
  const std::vector<int>& epoch_sites() const { return epoch_sites_; }
  void ClearEpoch();

  size_t trace_len() const { return trace_len_; }

 private:
  friend class Coverage;
  inline void Record(int site, const Coverage& cov);  // body below Coverage

  std::vector<uint8_t> case_hit_;   // sites hit by the current case
  std::vector<int> case_marks_;     // for O(case) reset
  std::vector<uint8_t> epoch_hit_;  // sites hit since the last barrier
  std::vector<int> epoch_sites_;
  size_t new_since_case_ = 0;
  size_t trace_len_ = 0;
  bool muted_ = false;
};

class Coverage {
 public:
  // Hard capacity of the site registry. Instrumentation sites are static code
  // locations (a few thousand in this tree); the fixed bound is what lets
  // Hit() be a lock-free array index even while other threads register.
  static constexpr size_t kMaxSites = 1 << 16;

  // Inline Meyers singleton: Hit()/Record() run once per instrumented branch
  // per verified instruction, so the accessor must not cost a function call.
  static Coverage& Get() {
    static Coverage instance;
    return instance;
  }

  // Registers a static code site; returns its id. Idempotent per call site via
  // the static-local in BVF_COV(). Thread-safe (mutex-guarded); the C++ magic
  // static in the macro serializes first-executions of one call site.
  int RegisterSite(const char* file, int line);

  // Registers |count| contiguous sites for an indexed decision (a switch over
  // helper ids, ALU ops, context fields, ...); returns the base id.
  int RegisterGroup(const char* file, int line, int count);

  void Hit(int site) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      return;
    }
    CoverageSink* sink = tls_sink_;
    if (sink != nullptr) {
      sink->Record(site, *this);
      return;
    }
    // Global mode. Nearly every call re-hits an already-hit site, so check
    // with a plain load before the locked RMW; the exchange() then keeps the
    // distinct-hit accounting exact even if legacy-mode code races on one
    // site (each site increments hit_count_ exactly once).
    std::atomic<uint8_t>& slot = hit_[site];
    if (slot.load(std::memory_order_relaxed) == 0 &&
        slot.exchange(1, std::memory_order_relaxed) == 0) {
      hit_count_.fetch_add(1, std::memory_order_relaxed);
      new_since_mark_.fetch_add(1, std::memory_order_relaxed);
    }
    // Load+store, not fetch_add: global-mode hits come from one thread at a
    // time (workers run buffered through sinks), and the trace length is a
    // diagnostic counter no campaign result reads — not worth a locked add
    // per instrumented branch.
    run_trace_len_.store(run_trace_len_.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  }

  // True when |site| is in the committed global hit set. Frozen between
  // barriers while sinks are active, which is what sink novelty tests rely on.
  bool Committed(int site) const { return hit_[site].load(std::memory_order_relaxed) != 0; }

  // Campaign control (global mode).
  void ResetHits();
  void MarkRun() { new_since_mark_.store(0, std::memory_order_relaxed); }
  size_t NewSinceMark() const { return new_since_mark_.load(std::memory_order_relaxed); }

  // -- Parallel campaign support --
  // Installs |sink| as the calling thread's hit buffer (nullptr restores
  // global mode); returns the previously installed sink.
  static CoverageSink* InstallThreadSink(CoverageSink* sink);
  static CoverageSink* ThreadSink() { return tls_sink_; }

  // Merges a worker's epoch delta into the committed set and clears it.
  // Returns the number of sites that were new to the committed set. Call from
  // one thread at a barrier (workers parked).
  size_t Commit(CoverageSink& sink);

  // Checkpoint support. Hit sites serialize as stable "file:line:idx" keys
  // (idx = position within a RegisterGroup block, 0 for plain sites), so a
  // restored campaign's hit set is independent of registration order. Keys
  // naming sites that are not registered yet (site registration is lazy —
  // a static local per call site) are kept pending and applied the moment
  // the site registers, without counting as new coverage.
  std::vector<std::string> SerializeHitKeys() const;
  void RestoreHitKeys(const std::vector<std::string>& keys);

  // Stable keys for a list of site ids (a sink's epoch delta). The supervised
  // campaign's workers ship their epoch coverage to the coordinator as keys —
  // site ids are lazy-registration order and differ between processes, keys
  // do not. Out-of-range ids are skipped.
  std::vector<std::string> SiteKeysFor(const std::vector<int>& site_ids) const;

  size_t hit_count() const { return hit_count_.load(std::memory_order_relaxed); }
  size_t site_count() const { return site_count_.load(std::memory_order_relaxed); }
  size_t run_trace_len() const { return run_trace_len_.load(std::memory_order_relaxed); }

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Debug: list covered site locations.
  std::vector<std::string> CoveredSites() const;

 private:
  Coverage();

  struct Site {
    const char* file;
    int line;
    int idx;  // index within a RegisterGroup block; 0 for plain sites
  };

  static std::string SiteKey(const Site& site);

  static thread_local CoverageSink* tls_sink_;

  mutable std::mutex mu_;                     // guards sites_ and pending_
  std::deque<Site> sites_;                    // stable storage; ids are indices
  std::set<std::string> pending_;             // restored keys awaiting registration
  std::unique_ptr<std::atomic<uint8_t>[]> hit_;  // committed global hit set
  std::atomic<size_t> site_count_{0};
  std::atomic<size_t> hit_count_{0};
  std::atomic<size_t> new_since_mark_{0};
  std::atomic<size_t> run_trace_len_{0};
  std::atomic<bool> enabled_{true};
};

// Suppresses campaign-feedback coverage recording on the current thread for
// the scope's lifetime: mutes the installed sink if one exists (worker
// thread), otherwise disables the global registry (legacy single-threaded
// confirmation path).
inline void CoverageSink::Record(int site, const Coverage& cov) {
  if (muted_) {
    return;
  }
  ++trace_len_;
  if (!case_hit_[site]) {
    case_hit_[site] = 1;
    case_marks_.push_back(site);
    if (!cov.Committed(site)) {
      ++new_since_case_;
    }
  }
  if (!epoch_hit_[site]) {
    epoch_hit_[site] = 1;
    epoch_sites_.push_back(site);
  }
}

class ScopedCoverageSuppress {
 public:
  ScopedCoverageSuppress();
  ~ScopedCoverageSuppress();
  ScopedCoverageSuppress(const ScopedCoverageSuppress&) = delete;
  ScopedCoverageSuppress& operator=(const ScopedCoverageSuppress&) = delete;

 private:
  CoverageSink* sink_;
  bool sink_was_muted_ = false;
  bool global_was_enabled_ = false;
};

}  // namespace bpf

// Marks one branch-coverage site at the current source location.
#define BVF_COV()                                                                      \
  do {                                                                                 \
    static const int bvf_cov_site_ = ::bpf::Coverage::Get().RegisterSite(__FILE__, __LINE__); \
    ::bpf::Coverage::Get().Hit(bvf_cov_site_);                                         \
  } while (0)

// Marks the i-th of n branch-coverage sites of an indexed decision point
// (e.g. a switch over helper ids). Out-of-range indices are ignored.
#define BVF_COV_IDX(n, i)                                                              \
  do {                                                                                 \
    static const int bvf_cov_base_ =                                                   \
        ::bpf::Coverage::Get().RegisterGroup(__FILE__, __LINE__, (n));                 \
    const int bvf_cov_i_ = static_cast<int>(i);                                        \
    if (bvf_cov_i_ >= 0 && bvf_cov_i_ < static_cast<int>(n)) {                         \
      ::bpf::Coverage::Get().Hit(bvf_cov_base_ + bvf_cov_i_);                          \
    }                                                                                  \
  } while (0)

#endif  // SRC_KERNEL_COVERAGE_H_
