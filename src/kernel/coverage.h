// kcov-style branch coverage for the simulated verifier.
//
// Every decision point in instrumented code drops a BVF_COV() marker; the
// first execution registers a site, subsequent executions mark it hit. The
// fuzzer uses the global hit set as feedback (new-coverage detection), and the
// benchmarks report the number of distinct covered sites, matching the
// covered-branch metric of the paper's Figure 6 / Table 3.
//
// The registry is process-global, mirroring kcov: coverage belongs to the
// "machine", not to a kernel object. Reset() clears hit state between
// campaigns; registered sites persist (they are code locations).

#ifndef SRC_KERNEL_COVERAGE_H_
#define SRC_KERNEL_COVERAGE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace bpf {

class Coverage {
 public:
  static Coverage& Get();

  // Registers a static code site; returns its id. Idempotent per call site via
  // the static-local in BVF_COV().
  int RegisterSite(const char* file, int line);

  // Registers |count| contiguous sites for an indexed decision (a switch over
  // helper ids, ALU ops, context fields, ...); returns the base id.
  int RegisterGroup(const char* file, int line, int count);

  void Hit(int site) {
    if (!enabled_) {
      return;
    }
    if (!hit_[site]) {
      hit_[site] = 1;
      ++hit_count_;
      ++new_since_mark_;
    }
    ++run_trace_len_;
  }

  // Campaign control.
  void ResetHits();
  void MarkRun() { new_since_mark_ = 0; }             // call before each execution
  size_t NewSinceMark() const { return new_since_mark_; }  // new sites since MarkRun

  // Checkpoint support. Hit sites serialize as stable "file:line:idx" keys
  // (idx = position within a RegisterGroup block, 0 for plain sites), so a
  // restored campaign's hit set is independent of registration order. Keys
  // naming sites that are not registered yet (site registration is lazy —
  // a static local per call site) are kept pending and applied the moment
  // the site registers, without counting as new coverage.
  std::vector<std::string> SerializeHitKeys() const;
  void RestoreHitKeys(const std::vector<std::string>& keys);

  size_t hit_count() const { return hit_count_; }
  size_t site_count() const { return hit_.size(); }
  size_t run_trace_len() const { return run_trace_len_; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Debug: list covered site locations.
  std::vector<std::string> CoveredSites() const;

 private:
  Coverage() = default;

  struct Site {
    const char* file;
    int line;
    int idx;  // index within a RegisterGroup block; 0 for plain sites
  };

  static std::string SiteKey(const Site& site);

  std::vector<Site> sites_;
  std::vector<uint8_t> hit_;
  std::set<std::string> pending_;  // restored keys awaiting registration
  size_t hit_count_ = 0;
  size_t new_since_mark_ = 0;
  size_t run_trace_len_ = 0;
  bool enabled_ = true;
};

}  // namespace bpf

// Marks one branch-coverage site at the current source location.
#define BVF_COV()                                                                      \
  do {                                                                                 \
    static const int bvf_cov_site_ = ::bpf::Coverage::Get().RegisterSite(__FILE__, __LINE__); \
    ::bpf::Coverage::Get().Hit(bvf_cov_site_);                                         \
  } while (0)

// Marks the i-th of n branch-coverage sites of an indexed decision point
// (e.g. a switch over helper ids). Out-of-range indices are ignored.
#define BVF_COV_IDX(n, i)                                                              \
  do {                                                                                 \
    static const int bvf_cov_base_ =                                                   \
        ::bpf::Coverage::Get().RegisterGroup(__FILE__, __LINE__, (n));                 \
    const int bvf_cov_i_ = static_cast<int>(i);                                        \
    if (bvf_cov_i_ >= 0 && bvf_cov_i_ < static_cast<int>(n)) {                         \
      ::bpf::Coverage::Get().Hit(bvf_cov_base_ + bvf_cov_i_);                          \
    }                                                                                  \
  } while (0)

#endif  // SRC_KERNEL_COVERAGE_H_
