#include "src/kernel/tracepoint.h"

namespace bpf {

const char* TracepointName(TracepointId id) {
  switch (id) {
    case TracepointId::kContentionBegin:
      return "contention_begin";
    case TracepointId::kTracePrintk:
      return "trace_printk";
    case TracepointId::kSchedSwitch:
      return "sched_switch";
    case TracepointId::kSysEnter:
      return "sys_enter";
    default:
      return "unknown";
  }
}

int TracepointRegistry::Attach(TracepointId id, Handler handler) {
  const int token = next_token_++;
  handlers_[static_cast<int>(id)].push_back(Entry{token, std::move(handler)});
  return token;
}

void TracepointRegistry::Detach(TracepointId id, int token) {
  auto& list = handlers_[static_cast<int>(id)];
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->token == token) {
      list.erase(it);
      return;
    }
  }
}

void TracepointRegistry::DetachAll() {
  for (auto& list : handlers_) {
    list.clear();
  }
  depth_ = 0;
  overflow_reported_ = false;
}

void TracepointRegistry::Fire(TracepointId id) {
  if (depth_ >= kMaxDepth) {
    if (!overflow_reported_) {
      overflow_reported_ = true;
      sink_.Report(ReportKind::kStackOverflow, TracepointName(id),
                   "tracepoint handler recursion exceeded depth " + std::to_string(kMaxDepth));
    }
    return;
  }
  ++depth_;
  // Iterate by index: handlers may attach/detach during the run.
  auto& list = handlers_[static_cast<int>(id)];
  for (size_t i = 0; i < list.size(); ++i) {
    list[i].handler();
  }
  --depth_;
}

size_t TracepointRegistry::HandlerCount(TracepointId id) const {
  return handlers_[static_cast<int>(id)].size();
}

}  // namespace bpf
