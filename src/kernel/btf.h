// Minimal BTF (BPF Type Format) model.
//
// The verifier uses BTF to validate accesses through PTR_TO_BTF_ID registers:
// each pointed-to kernel structure has a size and typed fields; loading a
// pointer-typed field yields another PTR_TO_BTF_ID. The runtime materializes
// one arena-backed instance per structure so sanitized accesses hit real
// (redzoned) memory.

#ifndef SRC_KERNEL_BTF_H_
#define SRC_KERNEL_BTF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bpf {

// Well-known BTF struct ids.
inline constexpr int kBtfTaskStruct = 1;
inline constexpr int kBtfMmStruct = 2;
inline constexpr int kBtfFile = 3;
inline constexpr int kBtfCgroup = 4;

// Well-known BTF func ids (kfuncs).
inline constexpr int kKfuncTaskAcquire = 100;
inline constexpr int kKfuncTaskRelease = 101;
inline constexpr int kKfuncRcuReadLock = 102;
inline constexpr int kKfuncRcuReadUnlock = 103;

struct BtfField {
  std::string name;
  uint32_t offset;
  uint32_t size;
  // If non-zero, the field is a pointer to another BTF struct with this id.
  int points_to = 0;
};

struct BtfStruct {
  int id;
  std::string name;
  uint32_t size;
  std::vector<BtfField> fields;

  // Returns the field fully covering [offset, offset+size), or nullptr.
  const BtfField* FieldAt(uint32_t offset, uint32_t size) const;
};

class BtfRegistry {
 public:
  // Builds the built-in kernel types (task_struct, mm_struct, file, cgroup).
  BtfRegistry();

  const BtfStruct* Find(int id) const;
  const BtfStruct* FindByName(const std::string& name) const;
  const std::vector<BtfStruct>& structs() const { return structs_; }

 private:
  std::vector<BtfStruct> structs_;
};

}  // namespace bpf

#endif  // SRC_KERNEL_BTF_H_
