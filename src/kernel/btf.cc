#include "src/kernel/btf.h"

namespace bpf {

const BtfField* BtfStruct::FieldAt(uint32_t offset, uint32_t access_size) const {
  for (const BtfField& field : fields) {
    if (offset >= field.offset && offset + access_size <= field.offset + field.size) {
      return &field;
    }
  }
  return nullptr;
}

BtfRegistry::BtfRegistry() {
  structs_.push_back(BtfStruct{
      kBtfTaskStruct,
      "task_struct",
      /*size=*/192,
      {
          {"state", 0, 8},
          {"flags", 8, 4},
          {"cpu", 12, 4},
          {"pid", 16, 4},
          {"tgid", 20, 4},
          {"comm", 24, 16},
          {"mm", 40, 8, kBtfMmStruct},
          {"files", 48, 8, kBtfFile},
          {"cgroup", 56, 8, kBtfCgroup},
          {"start_time", 64, 8},
          {"utime", 72, 8},
          {"stime", 80, 8},
          {"prio", 88, 4},
          {"static_prio", 92, 4},
          {"nr_cpus_allowed", 96, 4},
          {"exit_code", 100, 4},
          {"stack_canary", 104, 8},
          {"parent", 112, 8, kBtfTaskStruct},
          {"real_parent", 120, 8, kBtfTaskStruct},
      },
  });
  structs_.push_back(BtfStruct{
      kBtfMmStruct,
      "mm_struct",
      /*size=*/96,
      {
          {"mmap_base", 0, 8},
          {"task_size", 8, 8},
          {"pgd", 16, 8},
          {"mm_users", 24, 4},
          {"mm_count", 28, 4},
          {"total_vm", 32, 8},
          {"stack_vm", 40, 8},
          {"start_code", 48, 8},
          {"end_code", 56, 8},
          {"start_stack", 64, 8},
      },
  });
  structs_.push_back(BtfStruct{
      kBtfFile,
      "file",
      /*size=*/64,
      {
          {"f_mode", 0, 4},
          {"f_count", 4, 4},
          {"f_pos", 8, 8},
          {"f_flags", 16, 4},
          {"f_owner", 24, 8},
      },
  });
  structs_.push_back(BtfStruct{
      kBtfCgroup,
      "cgroup",
      /*size=*/80,
      {
          {"id", 0, 8},
          {"level", 8, 4},
          {"flags", 12, 4},
          {"parent", 16, 8, kBtfCgroup},
      },
  });
}

const BtfStruct* BtfRegistry::Find(int id) const {
  for (const BtfStruct& s : structs_) {
    if (s.id == id) {
      return &s;
    }
  }
  return nullptr;
}

const BtfStruct* BtfRegistry::FindByName(const std::string& name) const {
  for (const BtfStruct& s : structs_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace bpf
