#include "src/maps/map.h"

#include <cerrno>
#include <cstring>

namespace bpf {

const char* MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kPercpuArray:
      return "percpu_array";
    case MapType::kRingbuf:
      return "ringbuf";
  }
  return "unknown";
}

namespace {

uint32_t KeyToIndex(const void* key) {
  uint32_t index = 0;
  std::memcpy(&index, key, sizeof(index));
  return index;
}

// FNV-1a over the key bytes.
uint64_t HashKey(const void* key, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(key);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

// ---- ArrayMap ----

ArrayMap::ArrayMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink)
    : Map(id, def, arena, sink) {
  values_addr_ =
      arena_.Alloc(static_cast<size_t>(def.value_size) * def.max_entries, "array_map_values");
}

ArrayMap::~ArrayMap() {
  if (values_addr_ != 0) {
    arena_.Free(values_addr_);
  }
}

uint64_t ArrayMap::Lookup(const void* key) {
  const uint32_t index = KeyToIndex(key);
  if (index >= def_.max_entries || values_addr_ == 0) {
    return 0;
  }
  return values_addr_ + static_cast<uint64_t>(index) * def_.value_size;
}

int ArrayMap::Update(const void* key, const void* value) {
  const uint64_t addr = Lookup(key);
  if (addr == 0) {
    return -E2BIG;
  }
  arena_.CopyIn(addr, value, def_.value_size);
  return 0;
}

int ArrayMap::Delete(const void* key) {
  return -EINVAL;  // array elements cannot be deleted, as in the kernel
}

int ArrayMap::GetNextKey(const void* key, void* next_key) {
  uint32_t next = 0;
  if (key != nullptr) {
    const uint32_t index = KeyToIndex(key);
    if (index + 1 >= def_.max_entries) {
      return -ENOENT;
    }
    next = index + 1;
  }
  std::memcpy(next_key, &next, sizeof(next));
  return 0;
}

// ---- HashMap ----

HashMap::HashMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink,
                 bool bug_bucket_iteration)
    : Map(id, def, arena, sink), bug_bucket_iteration_(bug_bucket_iteration) {
  size_t n_buckets = 1;
  while (n_buckets < def.max_entries) {
    n_buckets <<= 1;
  }
  buckets_.resize(n_buckets);
}

HashMap::~HashMap() {
  for (auto& bucket : buckets_) {
    for (Element& elem : bucket) {
      arena_.Free(elem.value_addr);
    }
  }
}

size_t HashMap::BucketOf(const void* key) const {
  return HashKey(key, def_.key_size) & (buckets_.size() - 1);
}

HashMap::Element* HashMap::FindInBucket(size_t bucket, const void* key) {
  for (Element& elem : buckets_[bucket]) {
    if (std::memcmp(elem.key.data(), key, def_.key_size) == 0) {
      return &elem;
    }
  }
  return nullptr;
}

uint64_t HashMap::Lookup(const void* key) {
  Element* elem = FindInBucket(BucketOf(key), key);
  return elem != nullptr ? elem->value_addr : 0;
}

int HashMap::Update(const void* key, const void* value) {
  const size_t bucket = BucketOf(key);
  Element* elem = FindInBucket(bucket, key);
  if (elem != nullptr) {
    arena_.CopyIn(elem->value_addr, value, def_.value_size);
    return 0;
  }
  if (count_ >= def_.max_entries) {
    return -E2BIG;
  }
  const uint64_t value_addr = arena_.Alloc(def_.value_size, "htab_elem");
  if (value_addr == 0) {
    return -ENOMEM;
  }
  arena_.CopyIn(value_addr, value, def_.value_size);
  std::vector<uint8_t> key_copy(def_.key_size);
  std::memcpy(key_copy.data(), key, def_.key_size);
  buckets_[bucket].push_back(Element{std::move(key_copy), value_addr});
  ++count_;
  return 0;
}

int HashMap::Delete(const void* key) {
  const size_t bucket = BucketOf(key);
  auto& chain = buckets_[bucket];
  for (auto it = chain.begin(); it != chain.end(); ++it) {
    if (std::memcmp(it->key.data(), key, def_.key_size) == 0) {
      arena_.Free(it->value_addr);
      chain.erase(it);
      --count_;
      return 0;
    }
  }
  return -ENOENT;
}

int HashMap::GetNextKey(const void* key, void* next_key) {
  bool return_next = key == nullptr;
  for (const auto& bucket : buckets_) {
    for (const Element& elem : bucket) {
      if (return_next) {
        std::memcpy(next_key, elem.key.data(), def_.key_size);
        return 0;
      }
      if (std::memcmp(elem.key.data(), key, def_.key_size) == 0) {
        return_next = true;
      }
    }
  }
  return -ENOENT;
}

int HashMap::LookupBatch(std::vector<std::vector<uint8_t>>* out, int max_count) {
  int copied = 0;
  for (const auto& bucket : buckets_) {
    if (bucket.empty()) {
      continue;
    }
    // The real code takes the bucket lock with raw_spin_trylock and retries
    // under contention. Simulated contention: every kContentionPeriod-th
    // acquisition fails.
    const bool lock_ok = (++trylock_tick_ % kContentionPeriod) != 0;
    if (!lock_ok) {
      if (bug_bucket_iteration_) {
        // Bug #9: the failure path forgets to rewind the element cursor and
        // re-reads one element past the chain snapshot. The stale cursor
        // points just past the last element's value allocation — a
        // slab-out-of-bounds read, caught by KASAN since htab code is
        // compiled with instrumentation.
        const Element& last = bucket.back();
        uint64_t scratch = 0;
        arena_.CheckedRead(last.value_addr + def_.value_size, 8, &scratch, sink_,
                           "htab_map_lookup_batch");
      }
      continue;  // skip this bucket, as the (fixed) retry path effectively does
    }
    for (const Element& elem : bucket) {
      if (copied >= max_count) {
        return copied;
      }
      std::vector<uint8_t> value(def_.value_size);
      arena_.CopyOut(elem.value_addr, value.data(), def_.value_size);
      out->push_back(std::move(value));
      ++copied;
    }
  }
  return copied;
}

// ---- PercpuArrayMap ----

PercpuArrayMap::PercpuArrayMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink)
    : Map(id, def, arena, sink) {
  values_addr_ = arena_.Alloc(
      static_cast<size_t>(def.value_size) * def.max_entries * kNumSimCpus, "percpu_array_values");
}

PercpuArrayMap::~PercpuArrayMap() {
  if (values_addr_ != 0) {
    arena_.Free(values_addr_);
  }
}

uint64_t PercpuArrayMap::Lookup(const void* key) {
  const uint32_t index = KeyToIndex(key);
  if (index >= def_.max_entries || values_addr_ == 0) {
    return 0;
  }
  return values_addr_ + static_cast<uint64_t>(index) * def_.value_size;  // cpu 0 block
}

int PercpuArrayMap::Update(const void* key, const void* value) {
  const uint32_t index = KeyToIndex(key);
  if (index >= def_.max_entries || values_addr_ == 0) {
    return -E2BIG;
  }
  for (int cpu = 0; cpu < kNumSimCpus; ++cpu) {
    const uint64_t addr =
        values_addr_ +
        (static_cast<uint64_t>(cpu) * def_.max_entries + index) * def_.value_size;
    arena_.CopyIn(addr, value, def_.value_size);
  }
  return 0;
}

int PercpuArrayMap::Delete(const void* key) { return -EINVAL; }

int PercpuArrayMap::GetNextKey(const void* key, void* next_key) {
  uint32_t next = 0;
  if (key != nullptr) {
    const uint32_t index = KeyToIndex(key);
    if (index + 1 >= def_.max_entries) {
      return -ENOENT;
    }
    next = index + 1;
  }
  std::memcpy(next_key, &next, sizeof(next));
  return 0;
}

// ---- RingbufMap ----

RingbufMap::RingbufMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink)
    : Map(id, def, arena, sink) {
  ring_size_ = def.max_entries;  // ringbuf uses max_entries as byte size
  ring_addr_ = arena_.Alloc(ring_size_, "ringbuf_data");
}

RingbufMap::~RingbufMap() {
  if (ring_addr_ != 0) {
    arena_.Free(ring_addr_);
  }
}

int RingbufMap::Output(uint64_t data_addr, uint32_t size) {
  if (size == 0 || size > ring_size_ || ring_addr_ == 0) {
    return -EINVAL;
  }
  for (uint32_t i = 0; i < size; ++i) {
    uint64_t byte = 0;
    if (!arena_.CheckedRead(data_addr + i, 1, &byte, sink_, "bpf_ringbuf_output")) {
      return -EFAULT;
    }
    arena_.CheckedWrite(ring_addr_ + (head_ + i) % ring_size_, 1, byte, sink_,
                        "bpf_ringbuf_output");
  }
  head_ = (head_ + size) % ring_size_;
  produced_ += size;
  return 0;
}

// ---- MapRegistry ----

int MapRegistry::Create(const MapDef& def, bool bug_bucket_iteration) {
  if (def.key_size == 0 || def.key_size > 64 || def.value_size == 0 ||
      def.value_size > 4096 || def.max_entries == 0 || def.max_entries > 65536) {
    return -EINVAL;
  }
  if ((def.type == MapType::kArray || def.type == MapType::kPercpuArray) &&
      def.key_size != 4) {
    return -EINVAL;  // array keys are u32 indices
  }
  const int id = next_id_++;
  std::unique_ptr<Map> map;
  switch (def.type) {
    case MapType::kArray:
      map = std::make_unique<ArrayMap>(id, def, arena_, sink_);
      break;
    case MapType::kHash:
      map = std::make_unique<HashMap>(id, def, arena_, sink_, bug_bucket_iteration);
      break;
    case MapType::kPercpuArray:
      map = std::make_unique<PercpuArrayMap>(id, def, arena_, sink_);
      break;
    case MapType::kRingbuf:
      map = std::make_unique<RingbufMap>(id, def, arena_, sink_);
      break;
  }
  maps_.push_back(std::move(map));
  return id;
}

Map* MapRegistry::Find(int id) {
  for (const auto& map : maps_) {
    if (map->id() == id) {
      return map.get();
    }
  }
  return nullptr;
}

Map* MapRegistry::FindByObjAddr(uint64_t addr) {
  if (addr == 0) {
    return nullptr;
  }
  for (const auto& map : maps_) {
    if (map->obj_addr() == addr) {
      return map.get();
    }
  }
  return nullptr;
}

}  // namespace bpf
