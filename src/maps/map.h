// eBPF map infrastructure.
//
// Map metadata lives host-side; element value storage is carved from the
// KASAN arena so that out-of-bounds accesses to map values land in redzones,
// exactly the memory the verifier is supposed to fence (Listing 1 of the
// paper is an OOB access to a map value).

#ifndef SRC_MAPS_MAP_H_
#define SRC_MAPS_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kasan.h"
#include "src/kernel/report.h"

namespace bpf {

enum class MapType {
  kArray,
  kHash,
  kPercpuArray,
  kRingbuf,
};

const char* MapTypeName(MapType type);

inline constexpr int kNumSimCpus = 4;

struct MapDef {
  MapType type = MapType::kArray;
  uint32_t key_size = 4;
  uint32_t value_size = 8;
  uint32_t max_entries = 1;
};

// Base class for all map implementations. Keys are passed as host byte
// buffers (the syscall/helper layer copies them out of guest memory first);
// values are addressed by guest pointers into the arena.
class Map {
 public:
  Map(int id, const MapDef& def, KasanArena& arena, ReportSink& sink)
      : id_(id), def_(def), arena_(arena), sink_(sink) {}
  virtual ~Map() = default;

  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  // Returns the guest address of the value for |key|, or 0 if absent.
  virtual uint64_t Lookup(const void* key) = 0;
  // 0 on success, negative errno otherwise.
  virtual int Update(const void* key, const void* value) = 0;
  virtual int Delete(const void* key) = 0;
  // Iterates keys: writes the successor of |key| (nullptr = first) into
  // |next_key|; returns -ENOENT at the end.
  virtual int GetNextKey(const void* key, void* next_key) = 0;

  // Base guest address of contiguous value storage, for direct map-value
  // loads (BPF_PSEUDO_MAP_VALUE); 0 for map types without one.
  virtual uint64_t ValuesAddr() const { return 0; }

  // Guest address of the kernel `struct bpf_map` object this map is
  // represented by (set by the syscall layer at creation).
  uint64_t obj_addr() const { return obj_addr_; }
  void set_obj_addr(uint64_t addr) { obj_addr_ = addr; }

  int id() const { return id_; }
  const MapDef& def() const { return def_; }
  uint32_t key_size() const { return def_.key_size; }
  uint32_t value_size() const { return def_.value_size; }
  uint32_t max_entries() const { return def_.max_entries; }

 protected:
  const int id_;
  const MapDef def_;
  KasanArena& arena_;
  ReportSink& sink_;
  uint64_t obj_addr_ = 0;
};

// BPF_MAP_TYPE_ARRAY: contiguous value storage, index key.
class ArrayMap : public Map {
 public:
  ArrayMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink);
  ~ArrayMap() override;

  uint64_t Lookup(const void* key) override;
  int Update(const void* key, const void* value) override;
  int Delete(const void* key) override;
  int GetNextKey(const void* key, void* next_key) override;

  uint64_t ValuesAddr() const override { return values_addr_; }

 private:
  uint64_t values_addr_ = 0;
};

// BPF_MAP_TYPE_HASH: separately chained buckets, per-element arena
// allocations (like the kernel's kmalloc'ed htab_elem).
//
// Carries Table 2 bug #9: with `bug_bucket_iteration` set, the batched
// iteration path mishandles a failed bucket-lock acquisition and walks one
// element past the bucket's chain snapshot — an OOB read caught by KASAN
// because htab code is kernel code.
class HashMap : public Map {
 public:
  HashMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink,
          bool bug_bucket_iteration);
  ~HashMap() override;

  uint64_t Lookup(const void* key) override;
  int Update(const void* key, const void* value) override;
  int Delete(const void* key) override;
  int GetNextKey(const void* key, void* next_key) override;

  // The syscall-side batched-lookup path (the buggy one). Copies up to
  // |max_count| values into |out|; returns the number copied.
  int LookupBatch(std::vector<std::vector<uint8_t>>* out, int max_count);

 private:
  struct Element {
    std::vector<uint8_t> key;
    uint64_t value_addr;
  };

  size_t BucketOf(const void* key) const;
  Element* FindInBucket(size_t bucket, const void* key);

  std::vector<std::vector<Element>> buckets_;
  size_t count_ = 0;
  const bool bug_bucket_iteration_;
  // Simulated lock contention: every kContentionPeriod-th trylock fails.
  int trylock_tick_ = 0;
  static constexpr int kContentionPeriod = 3;
};

// BPF_MAP_TYPE_PERCPU_ARRAY: one value block per simulated CPU.
class PercpuArrayMap : public Map {
 public:
  PercpuArrayMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink);
  ~PercpuArrayMap() override;

  // Lookup returns the current-CPU (cpu 0) slot, as helpers do.
  uint64_t Lookup(const void* key) override;
  int Update(const void* key, const void* value) override;
  int Delete(const void* key) override;
  int GetNextKey(const void* key, void* next_key) override;

 private:
  uint64_t values_addr_ = 0;  // [cpu][entry] blocks
};

// BPF_MAP_TYPE_RINGBUF (simplified): a byte ring the program reserves into.
class RingbufMap : public Map {
 public:
  RingbufMap(int id, const MapDef& def, KasanArena& arena, ReportSink& sink);
  ~RingbufMap() override;

  uint64_t Lookup(const void* key) override { return 0; }
  int Update(const void* key, const void* value) override { return -EINVAL; }
  int Delete(const void* key) override { return -EINVAL; }
  int GetNextKey(const void* key, void* next_key) override { return -EINVAL; }

  // Appends |size| bytes from guest |data_addr|; 0 on success.
  int Output(uint64_t data_addr, uint32_t size);
  size_t produced() const { return produced_; }

 private:
  uint64_t ring_addr_ = 0;
  size_t ring_size_ = 0;
  size_t head_ = 0;
  size_t produced_ = 0;
};

// Owns all maps of one simulated kernel and hands out map ids (used as fds by
// the syscall layer).
class MapRegistry {
 public:
  MapRegistry(KasanArena& arena, ReportSink& sink) : arena_(arena), sink_(sink) {}

  // Returns the new map id (>= 1), or negative errno.
  int Create(const MapDef& def, bool bug_bucket_iteration = false);
  Map* Find(int id);
  // Resolves a map by the guest address of its `struct bpf_map` object
  // (how helpers receive maps at runtime after fixup).
  Map* FindByObjAddr(uint64_t addr);
  const std::vector<std::unique_ptr<Map>>& maps() const { return maps_; }
  size_t size() const { return maps_.size(); }

  // Case-boundary reset for substrate reuse: drops every map and restarts id
  // assignment, so a reused kernel hands out the same fds a fresh one would.
  // (Backing arena storage is reclaimed separately by the arena snapshot
  // rewind; maps never free their elements on the real no-reuse arena either.)
  void Clear() {
    maps_.clear();
    next_id_ = 1;
  }

 private:
  KasanArena& arena_;
  ReportSink& sink_;
  std::vector<std::unique_ptr<Map>> maps_;
  int next_id_ = 1;
};

}  // namespace bpf

#endif  // SRC_MAPS_MAP_H_
