// BVF's dispatch-based memory-access sanitation pass (paper §4.2, Fig. 5).
//
// Runs inside the verifier's rewrite phase (the bpf_misc_fixup hook): every
// necessary load/store in the verified program is rewritten into
//
//     *(u64 *)(r10 - 520) = r0        ; extended-stack backup of R0
//     r11 = r1                        ; aux-register backup of R1
//     r1 = <target address>
//     call bpf_asan_loadN             ; KASAN-instrumented dispatch
//     r1 = r11
//     r0 = *(u64 *)(r10 - 520)
//     <original instruction>
//
// and pointer/scalar ALU instructions gain runtime alu_limit assertions.
// Instruction-count reduction strategies from the paper are implemented:
// accesses through R10 with constant offsets are skipped (validated against
// the fixed stack bound at verification time), as are instructions emitted
// by other rewrite passes.

#ifndef SRC_SANITIZER_INSTRUMENT_H_
#define SRC_SANITIZER_INSTRUMENT_H_

#include <cstdint>
#include <vector>

#include "src/ebpf/program.h"
#include "src/verifier/verifier.h"

namespace bvf {

struct SanitizerOptions {
  bool sanitize_mem = true;   // load/store dispatch (patches 1 & 2)
  bool sanitize_alu = true;   // alu_limit runtime checks (patch 3)
  bool skip_fp_const = true;  // reduction: skip R10-relative constant accesses
  bool skip_rewritten = true; // reduction: skip insns added by other passes
};

struct SanitizerStats {
  size_t programs = 0;
  size_t insns_before = 0;
  size_t insns_after = 0;
  size_t mem_sites = 0;      // load/store sites instrumented
  size_t alu_sites = 0;      // alu_limit checks emitted
  size_t skipped_fp = 0;     // sites skipped by the R10 optimization
  size_t skipped_rewritten = 0;

  double Footprint() const {
    return insns_before == 0 ? 1.0
                             : static_cast<double>(insns_after) /
                                   static_cast<double>(insns_before);
  }

  // Counter-wise accumulation (parallel-campaign merge; verdict-cache hit
  // crediting).
  void Add(const SanitizerStats& other) {
    programs += other.programs;
    insns_before += other.insns_before;
    insns_after += other.insns_after;
    mem_sites += other.mem_sites;
    alu_sites += other.alu_sites;
    skipped_fp += other.skipped_fp;
    skipped_rewritten += other.skipped_rewritten;
  }

  // Counter-wise delta against an earlier snapshot of the same sanitizer.
  SanitizerStats Since(const SanitizerStats& before) const {
    SanitizerStats delta;
    delta.programs = programs - before.programs;
    delta.insns_before = insns_before - before.insns_before;
    delta.insns_after = insns_after - before.insns_after;
    delta.mem_sites = mem_sites - before.mem_sites;
    delta.alu_sites = alu_sites - before.alu_sites;
    delta.skipped_fp = skipped_fp - before.skipped_fp;
    delta.skipped_rewritten = skipped_rewritten - before.skipped_rewritten;
    return delta;
  }
};

// Rewrites |prog| in place, extending |aux| in lockstep (inserted
// instructions are marked `rewritten`). Branch offsets and pseudo-call
// targets are re-linked across insertions.
class Sanitizer {
 public:
  explicit Sanitizer(SanitizerOptions options = {}) : options_(options) {}

  void Instrument(bpf::Program& prog, std::vector<bpf::InsnAux>& aux);

  // Binds this sanitizer as a verifier-env instrumentation hook.
  std::function<void(bpf::Program&, std::vector<bpf::InsnAux>&)> Hook() {
    return [this](bpf::Program& prog, std::vector<bpf::InsnAux>& aux) {
      Instrument(prog, aux);
    };
  }

  const SanitizerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SanitizerStats{}; }
  // Campaign resume: reinstate counters saved in a checkpoint.
  void RestoreStats(const SanitizerStats& stats) { stats_ = stats; }
  // Verdict-cache hit: account the instrumentation work the original
  // verification of this program performed.
  void Credit(const SanitizerStats& delta) { stats_.Add(delta); }

 private:
  SanitizerOptions options_;
  SanitizerStats stats_;
};

}  // namespace bvf

#endif  // SRC_SANITIZER_INSTRUMENT_H_
