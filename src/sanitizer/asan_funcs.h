// The bpf_asan_* sanitizing functions (paper §4.2 / §5, kernel patches 1-3):
// kernel-resident, KASAN-instrumented functions that verified programs are
// rewritten to dispatch their loads/stores through. A shadow-memory violation
// observed here is the paper's indicator #1 — a correctness bug in the
// verifier made concrete.

#ifndef SRC_SANITIZER_ASAN_FUNCS_H_
#define SRC_SANITIZER_ASAN_FUNCS_H_

#include <cstdint>

#include "src/kernel/kasan.h"
#include "src/runtime/kernel.h"

namespace bpf {

// Friend of KasanArena: classifies accesses and files bpf-asan reports.
class BpfAsan {
 public:
  // R1 = target address. Performs the checked load/store of |size| bytes.
  // |null_ok| marks exception-handled PTR_TO_BTF_ID loads, whose NULL
  // dereference the kernel fixes up rather than oopsing.
  static uint64_t CheckLoad(Kernel& kernel, uint64_t addr, int size, bool null_ok);
  static void CheckStore(Kernel& kernel, uint64_t addr, uint64_t value, int size);

  // R1 = runtime scalar offset, R2 = limit. Asserts the offset lies within
  // the bound the verifier derived (paper: assert(offset < alu_limit)).
  static void CheckAluPos(Kernel& kernel, uint64_t value, uint64_t limit);
  static void CheckAluNeg(Kernel& kernel, uint64_t value, uint64_t limit);

  // Installs every bpf_asan_* entry into the kernel's internal-function
  // table (the CONFIG_BPF_ASAN Kconfig switch).
  static void Register(Kernel& kernel);
};

}  // namespace bpf

#endif  // SRC_SANITIZER_ASAN_FUNCS_H_
