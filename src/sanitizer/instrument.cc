#include "src/sanitizer/instrument.h"

#include "src/verifier/helper_protos.h"

namespace bvf {

using bpf::Insn;
using bpf::InsnAux;
using bpf::Program;
using bpf::RegType;

namespace {

// Extended-stack backup slots (below the 512 visible bytes; see Fig. 5).
constexpr int16_t kBackupR0 = -(bpf::kStackSize + 8);
constexpr int16_t kBackupR2 = -(bpf::kStackSize + 16);

int32_t AsanLoadId(int size, bool btf) {
  switch (size) {
    case 1:
      return btf ? bpf::kAsanLoadBtf8 : bpf::kAsanLoad8;
    case 2:
      return btf ? bpf::kAsanLoadBtf16 : bpf::kAsanLoad16;
    case 4:
      return btf ? bpf::kAsanLoadBtf32 : bpf::kAsanLoad32;
    default:
      return btf ? bpf::kAsanLoadBtf64 : bpf::kAsanLoad64;
  }
}

int32_t AsanStoreId(int size) {
  switch (size) {
    case 1:
      return bpf::kAsanStore8;
    case 2:
      return bpf::kAsanStore16;
    case 4:
      return bpf::kAsanStore32;
    default:
      return bpf::kAsanStore64;
  }
}

// Builds a load-style dispatch sequence (Fig. 5): backup, address setup,
// call, restore. The original instruction follows the sequence. |base|/|off|
// locate the access; |preserve_r0| is false only when the original load
// overwrites R0 anyway.
std::vector<Insn> BuildLoadStyleCheck(uint8_t base, int16_t off, int size, bool btf,
                                      bool preserve_r0) {
  std::vector<Insn> seq;
  if (preserve_r0) {
    seq.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR0, kBackupR0));
  }
  seq.push_back(bpf::MovReg(bpf::kR11, bpf::kR1));
  if (base != bpf::kR1) {
    seq.push_back(bpf::MovReg(bpf::kR1, base));
  }
  if (off != 0) {
    seq.push_back(bpf::AluImm(bpf::kAluAdd, bpf::kR1, off));
  }
  seq.push_back(bpf::CallHelper(AsanLoadId(size, btf)));
  seq.push_back(bpf::MovReg(bpf::kR1, bpf::kR11));
  if (preserve_r0) {
    seq.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR0, bpf::kR10, kBackupR0));
  }
  return seq;
}

std::vector<Insn> BuildLoadCheck(const Insn& insn, bool btf) {
  // R0 need not be preserved only when the original load overwrites it
  // anyway AND does not use it as the address base (the sanitizing call
  // leaves the loaded value in R0, which would corrupt an R0 base).
  const bool preserve_r0 = insn.dst != bpf::kR0 || insn.src == bpf::kR0;
  return BuildLoadStyleCheck(insn.src, insn.off, insn.AccessBytes(), btf, preserve_r0);
}

// Builds the dispatch sequence for a store or atomic op. R2 carries the
// stored value into the sanitizing function and must be preserved too.
std::vector<Insn> BuildStoreCheck(const Insn& insn) {
  std::vector<Insn> seq;
  seq.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR0, kBackupR0));
  seq.push_back(bpf::MovReg(bpf::kR11, bpf::kR1));
  seq.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR2, kBackupR2));
  if (insn.dst != bpf::kR1) {
    seq.push_back(bpf::MovReg(bpf::kR1, insn.dst));
  }
  if (insn.off != 0) {
    seq.push_back(bpf::AluImm(bpf::kAluAdd, bpf::kR1, insn.off));
  }
  if (insn.Class() == bpf::kClassSt) {
    seq.push_back(bpf::MovImm(bpf::kR2, insn.imm));
  } else if (insn.src == bpf::kR1) {
    seq.push_back(bpf::MovReg(bpf::kR2, bpf::kR11));  // value was in (old) R1
  } else if (insn.src != bpf::kR2) {
    seq.push_back(bpf::MovReg(bpf::kR2, insn.src));
  }
  seq.push_back(bpf::CallHelper(AsanStoreId(insn.AccessBytes())));
  seq.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR2, bpf::kR10, kBackupR2));
  seq.push_back(bpf::MovReg(bpf::kR1, bpf::kR11));
  seq.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR0, bpf::kR10, kBackupR0));
  return seq;
}

// Builds the alu_limit assertion for a ptr<op>scalar instruction.
std::vector<Insn> BuildAluCheck(const Insn& insn, const InsnAux& aux) {
  std::vector<Insn> seq;
  int32_t check_id;
  uint64_t limit;
  if (aux.alu_smin >= 0) {
    check_id = bpf::kAsanAluCheckPos;
    limit = static_cast<uint64_t>(aux.alu_smax);
  } else if (aux.alu_smax <= 0 && aux.alu_smin != bpf::kS64Min) {
    check_id = bpf::kAsanAluCheckNeg;
    limit = static_cast<uint64_t>(-aux.alu_smin);
  } else {
    return seq;  // mixed-sign range: no single-direction limit (kernel skips too)
  }

  seq.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR0, kBackupR0));
  seq.push_back(bpf::MovReg(bpf::kR11, bpf::kR1));
  seq.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR2, kBackupR2));
  if (aux.alu_scalar_reg != bpf::kR1) {
    seq.push_back(bpf::MovReg(bpf::kR1, aux.alu_scalar_reg));
  }
  if (limit <= static_cast<uint64_t>(bpf::kS32Max)) {
    seq.push_back(bpf::MovImm(bpf::kR2, static_cast<int32_t>(limit)));
  } else {
    seq.push_back(bpf::LdImm64Lo(bpf::kR2, 0, limit));
    seq.push_back(bpf::LdImm64Hi(limit));
  }
  seq.push_back(bpf::CallHelper(check_id));
  seq.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR2, bpf::kR10, kBackupR2));
  seq.push_back(bpf::MovReg(bpf::kR1, bpf::kR11));
  seq.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR0, bpf::kR10, kBackupR0));
  return seq;
}

}  // namespace

void Sanitizer::Instrument(Program& prog, std::vector<InsnAux>& aux) {
  const size_t n = prog.insns.size();
  stats_.programs += 1;
  stats_.insns_before += n;

  // Pass 1: build the check sequence for every original instruction.
  std::vector<std::vector<Insn>> prefix(n);
  for (size_t i = 0; i < n; ++i) {
    const Insn& insn = prog.insns[i];
    if (insn.IsLdImm64()) {
      ++i;  // skip the hi slot
      continue;
    }
    if (options_.skip_rewritten && aux[i].rewritten) {
      ++stats_.skipped_rewritten;
      continue;
    }
    if (options_.sanitize_alu && aux[i].alu_check) {
      prefix[i] = BuildAluCheck(insn, aux[i]);
      if (!prefix[i].empty()) {
        ++stats_.alu_sites;
      }
      continue;
    }
    if (!options_.sanitize_mem) {
      continue;
    }
    const bool is_mem = insn.IsMemLoad() || insn.IsMemStore() || insn.IsAtomic();
    if (!is_mem) {
      continue;
    }
    if (options_.skip_fp_const && aux[i].fp_const_access) {
      // R10-relative constant accesses were fully validated against the
      // fixed 512-byte stack bound at verification time (paper §4.2).
      ++stats_.skipped_fp;
      continue;
    }
    if (insn.IsMemLoad()) {
      prefix[i] = BuildLoadCheck(insn, aux[i].mem_ptr_type == RegType::kPtrToBtfId);
    } else if (insn.IsAtomic()) {
      // Read-modify-write is not idempotent: check the target address with a
      // load-style dispatch instead of pre-performing the store.
      prefix[i] = BuildLoadStyleCheck(insn.dst, insn.off, insn.AccessBytes(),
                                      /*btf=*/false, /*preserve_r0=*/true);
    } else {
      prefix[i] = BuildStoreCheck(insn);
    }
    ++stats_.mem_sites;
  }

  // Pass 2: compute new positions.
  std::vector<int> new_pos(n + 1, 0);
  int pos = 0;
  for (size_t i = 0; i < n; ++i) {
    new_pos[i] = pos;
    pos += static_cast<int>(prefix[i].size()) + 1;
  }
  new_pos[n] = pos;

  // Pass 3: emit, re-linking branch targets to group starts.
  std::vector<Insn> out;
  std::vector<InsnAux> out_aux;
  out.reserve(pos);
  out_aux.reserve(pos);
  for (size_t i = 0; i < n; ++i) {
    for (const Insn& check : prefix[i]) {
      out.push_back(check);
      InsnAux inserted;
      inserted.rewritten = true;
      out_aux.push_back(inserted);
    }
    Insn insn = prog.insns[i];
    const int self = static_cast<int>(out.size());
    const bool is_cond_or_ja =
        insn.IsJmp() && insn.JmpOp() != bpf::kJmpCall && insn.JmpOp() != bpf::kJmpExit;
    if (is_cond_or_ja) {
      const int target_old = static_cast<int>(i) + 1 + insn.off;
      insn.off = static_cast<int16_t>(new_pos[target_old] - (self + 1));
    } else if (insn.IsBpfToBpfCall()) {
      const int target_old = static_cast<int>(i) + 1 + insn.imm;
      insn.imm = new_pos[target_old] - (self + 1);
    }
    out.push_back(insn);
    out_aux.push_back(aux[i]);
  }

  stats_.insns_after += out.size();
  prog.insns = std::move(out);
  aux = std::move(out_aux);
}

}  // namespace bvf
