// Header-only core of the bpf_asan_* checked-access semantics.
//
// BpfAsan (asan_funcs.cc) registers these as internal kernel functions that
// sanitized programs dispatch to through the generic call path, and the
// pre-decoded execution engine (src/runtime/decoded_prog.cc) inlines the same
// code directly into its asan micro-ops — bypassing the id->std::function
// table on the hot path. Keeping one definition here is what makes the fast
// path behaviorally identical to the dispatched path: same classification,
// same report kinds, origins ("bpf_asan_load"/"bpf_asan_store"/"bpf_asan_alu")
// and detail strings, byte for byte.
//
// Only kernel-layer types appear here (KasanArena, ReportSink), so including
// this header from src/runtime does not create a link dependency on the
// sanitizer library.

#ifndef SRC_SANITIZER_ASAN_CHECK_H_
#define SRC_SANITIZER_ASAN_CHECK_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/kernel/kasan.h"
#include "src/kernel/report.h"

namespace bpf {
namespace asan_detail {

inline std::string DescribeAccess(uint64_t addr, int size, bool write) {
  char buf[96];
  snprintf(buf, sizeof(buf), "%s of size %d at 0x%016llx in verified program",
           write ? "write" : "read", size, static_cast<unsigned long long>(addr));
  return buf;
}

inline ReportKind KindForAccess(AccessResult result) {
  switch (result) {
    case AccessResult::kOob:
      return ReportKind::kBpfAsanOob;
    case AccessResult::kUseAfterFree:
      return ReportKind::kBpfAsanUseAfterFree;
    case AccessResult::kNull:
      return ReportKind::kBpfAsanNullDeref;
    default:
      return ReportKind::kBpfAsanWild;
  }
}

}  // namespace asan_detail

// R1 = target address: the checked |size|-byte load. |null_ok| marks
// exception-handled PTR_TO_BTF_ID loads, whose NULL dereference the kernel
// fixes up (returns 0) rather than oopsing.
inline uint64_t AsanCheckedLoad(KasanArena& arena, ReportSink& sink, uint64_t addr,
                                int size, bool null_ok) {
  const AccessResult result = arena.Classify(addr, size);
  if (result == AccessResult::kOk) {
    uint64_t value = 0;
    arena.CopyOut(addr, &value, size);
    return value;
  }
  if (null_ok && result == AccessResult::kNull) {
    return 0;  // exception-table handled BTF load
  }
  std::string details = asan_detail::DescribeAccess(addr, size, /*write=*/false);
  if (result == AccessResult::kOob) {
    details += arena.DescribeNearest(addr, size);
  }
  sink.Report(asan_detail::KindForAccess(result), "bpf_asan_load", std::move(details));
  return 0;
}

// R1 = target address, R2 = value: the checked |size|-byte store.
inline void AsanCheckedStore(KasanArena& arena, ReportSink& sink, uint64_t addr,
                             uint64_t value, int size) {
  const AccessResult result = arena.Classify(addr, size);
  if (result == AccessResult::kOk) {
    arena.CopyIn(addr, &value, size);
    return;
  }
  std::string details = asan_detail::DescribeAccess(addr, size, /*write=*/true);
  if (result == AccessResult::kOob) {
    details += arena.DescribeNearest(addr, size);
  }
  sink.Report(asan_detail::KindForAccess(result), "bpf_asan_store", std::move(details));
}

// R1 = runtime scalar offset, R2 = limit: assert(offset <= alu_limit) in the
// positive direction (paper: assert(offset < alu_limit)).
inline void AsanCheckAluPos(ReportSink& sink, uint64_t value, uint64_t limit) {
  if (value > limit) {
    char buf[96];
    snprintf(buf, sizeof(buf), "runtime offset %llu exceeds alu_limit %llu",
             static_cast<unsigned long long>(value), static_cast<unsigned long long>(limit));
    sink.Report(ReportKind::kAluLimitViolation, "bpf_asan_alu", buf);
  }
}

// Negative direction: the offset must be a non-positive value whose magnitude
// stays within the limit.
inline void AsanCheckAluNeg(ReportSink& sink, uint64_t value, uint64_t limit) {
  const uint64_t magnitude = static_cast<uint64_t>(-static_cast<int64_t>(value));
  if (static_cast<int64_t>(value) > 0 || magnitude > limit) {
    char buf[96];
    snprintf(buf, sizeof(buf), "runtime offset %lld outside negative alu_limit %llu",
             static_cast<long long>(value), static_cast<unsigned long long>(limit));
    sink.Report(ReportKind::kAluLimitViolation, "bpf_asan_alu", buf);
  }
}

}  // namespace bpf

#endif  // SRC_SANITIZER_ASAN_CHECK_H_
