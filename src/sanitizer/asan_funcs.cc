#include "src/sanitizer/asan_funcs.h"

#include "src/sanitizer/asan_check.h"
#include "src/verifier/helper_protos.h"

namespace bpf {

// The checked-access semantics live in asan_check.h so the pre-decoded
// execution engine can inline them; these entry points keep the historical
// BpfAsan surface and the internal-function registrations.

uint64_t BpfAsan::CheckLoad(Kernel& kernel, uint64_t addr, int size, bool null_ok) {
  return AsanCheckedLoad(kernel.arena(), kernel.reports(), addr, size, null_ok);
}

void BpfAsan::CheckStore(Kernel& kernel, uint64_t addr, uint64_t value, int size) {
  AsanCheckedStore(kernel.arena(), kernel.reports(), addr, value, size);
}

void BpfAsan::CheckAluPos(Kernel& kernel, uint64_t value, uint64_t limit) {
  AsanCheckAluPos(kernel.reports(), value, limit);
}

void BpfAsan::CheckAluNeg(Kernel& kernel, uint64_t value, uint64_t limit) {
  AsanCheckAluNeg(kernel.reports(), value, limit);
}

void BpfAsan::Register(Kernel& kernel) {
  auto load = [](int size, bool null_ok) {
    return [size, null_ok](Kernel& k, ExecContext&, const uint64_t args[5]) {
      return BpfAsan::CheckLoad(k, args[0], size, null_ok);
    };
  };
  auto store = [](int size) {
    return [size](Kernel& k, ExecContext&, const uint64_t args[5]) {
      BpfAsan::CheckStore(k, args[0], args[1], size);
      return 0ull;
    };
  };
  kernel.RegisterInternalFunc(kAsanLoad8, load(1, false));
  kernel.RegisterInternalFunc(kAsanLoad16, load(2, false));
  kernel.RegisterInternalFunc(kAsanLoad32, load(4, false));
  kernel.RegisterInternalFunc(kAsanLoad64, load(8, false));
  kernel.RegisterInternalFunc(kAsanLoadBtf8, load(1, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf16, load(2, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf32, load(4, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf64, load(8, true));
  kernel.RegisterInternalFunc(kAsanStore8, store(1));
  kernel.RegisterInternalFunc(kAsanStore16, store(2));
  kernel.RegisterInternalFunc(kAsanStore32, store(4));
  kernel.RegisterInternalFunc(kAsanStore64, store(8));
  kernel.RegisterInternalFunc(kAsanAluCheckPos,
                              [](Kernel& k, ExecContext&, const uint64_t args[5]) {
                                BpfAsan::CheckAluPos(k, args[0], args[1]);
                                return 0ull;
                              });
  kernel.RegisterInternalFunc(kAsanAluCheckNeg,
                              [](Kernel& k, ExecContext&, const uint64_t args[5]) {
                                BpfAsan::CheckAluNeg(k, args[0], args[1]);
                                return 0ull;
                              });
  // Every asan id now resolves to the canonical implementation above, so the
  // decoded engine's inlined fast paths (also built from asan_check.h) are
  // exact stand-ins for the table dispatch.
  kernel.set_asan_funcs_native(true);
}

}  // namespace bpf
