#include "src/sanitizer/asan_funcs.h"

#include <cstdio>

#include "src/verifier/helper_protos.h"

namespace bpf {

namespace {

std::string Describe(uint64_t addr, int size, bool write) {
  char buf[96];
  snprintf(buf, sizeof(buf), "%s of size %d at 0x%016llx in verified program",
           write ? "write" : "read", size, static_cast<unsigned long long>(addr));
  return buf;
}

ReportKind KindFor(AccessResult result) {
  switch (result) {
    case AccessResult::kOob:
      return ReportKind::kBpfAsanOob;
    case AccessResult::kUseAfterFree:
      return ReportKind::kBpfAsanUseAfterFree;
    case AccessResult::kNull:
      return ReportKind::kBpfAsanNullDeref;
    default:
      return ReportKind::kBpfAsanWild;
  }
}

}  // namespace

uint64_t BpfAsan::CheckLoad(Kernel& kernel, uint64_t addr, int size, bool null_ok) {
  KasanArena& arena = kernel.arena();
  const AccessResult result = arena.Classify(addr, size);
  if (result == AccessResult::kOk) {
    uint64_t value = 0;
    arena.CopyOut(addr, &value, size);
    return value;
  }
  if (null_ok && result == AccessResult::kNull) {
    return 0;  // exception-table handled BTF load
  }
  std::string details = Describe(addr, size, /*write=*/false);
  if (result == AccessResult::kOob) {
    details += arena.DescribeNearest(addr, size);
  }
  kernel.reports().Report(KindFor(result), "bpf_asan_load", std::move(details));
  return 0;
}

void BpfAsan::CheckStore(Kernel& kernel, uint64_t addr, uint64_t value, int size) {
  KasanArena& arena = kernel.arena();
  const AccessResult result = arena.Classify(addr, size);
  if (result == AccessResult::kOk) {
    arena.CopyIn(addr, &value, size);
    return;
  }
  std::string details = Describe(addr, size, /*write=*/true);
  if (result == AccessResult::kOob) {
    details += arena.DescribeNearest(addr, size);
  }
  kernel.reports().Report(KindFor(result), "bpf_asan_store", std::move(details));
}

void BpfAsan::CheckAluPos(Kernel& kernel, uint64_t value, uint64_t limit) {
  if (value > limit) {
    char buf[96];
    snprintf(buf, sizeof(buf), "runtime offset %llu exceeds alu_limit %llu",
             static_cast<unsigned long long>(value), static_cast<unsigned long long>(limit));
    kernel.reports().Report(ReportKind::kAluLimitViolation, "bpf_asan_alu", buf);
  }
}

void BpfAsan::CheckAluNeg(Kernel& kernel, uint64_t value, uint64_t limit) {
  const uint64_t magnitude = static_cast<uint64_t>(-static_cast<int64_t>(value));
  if (static_cast<int64_t>(value) > 0 || magnitude > limit) {
    char buf[96];
    snprintf(buf, sizeof(buf), "runtime offset %lld outside negative alu_limit %llu",
             static_cast<long long>(value), static_cast<unsigned long long>(limit));
    kernel.reports().Report(ReportKind::kAluLimitViolation, "bpf_asan_alu", buf);
  }
}

void BpfAsan::Register(Kernel& kernel) {
  auto load = [](int size, bool null_ok) {
    return [size, null_ok](Kernel& k, ExecContext&, const uint64_t args[5]) {
      return BpfAsan::CheckLoad(k, args[0], size, null_ok);
    };
  };
  auto store = [](int size) {
    return [size](Kernel& k, ExecContext&, const uint64_t args[5]) {
      BpfAsan::CheckStore(k, args[0], args[1], size);
      return 0ull;
    };
  };
  kernel.RegisterInternalFunc(kAsanLoad8, load(1, false));
  kernel.RegisterInternalFunc(kAsanLoad16, load(2, false));
  kernel.RegisterInternalFunc(kAsanLoad32, load(4, false));
  kernel.RegisterInternalFunc(kAsanLoad64, load(8, false));
  kernel.RegisterInternalFunc(kAsanLoadBtf8, load(1, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf16, load(2, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf32, load(4, true));
  kernel.RegisterInternalFunc(kAsanLoadBtf64, load(8, true));
  kernel.RegisterInternalFunc(kAsanStore8, store(1));
  kernel.RegisterInternalFunc(kAsanStore16, store(2));
  kernel.RegisterInternalFunc(kAsanStore32, store(4));
  kernel.RegisterInternalFunc(kAsanStore64, store(8));
  kernel.RegisterInternalFunc(kAsanAluCheckPos,
                              [](Kernel& k, ExecContext&, const uint64_t args[5]) {
                                BpfAsan::CheckAluPos(k, args[0], args[1]);
                                return 0ull;
                              });
  kernel.RegisterInternalFunc(kAsanAluCheckNeg,
                              [](Kernel& k, ExecContext&, const uint64_t args[5]) {
                                BpfAsan::CheckAluNeg(k, args[0], args[1]);
                                return 0ull;
                              });
}

}  // namespace bpf
