#include "src/ebpf/program.h"

#include <cerrno>

namespace bpf {

namespace {

void LogTo(std::string* log, const std::string& msg) {
  if (log != nullptr) {
    log->append(msg);
    log->push_back('\n');
  }
}

bool ValidAluOpcode(const Insn& insn) {
  const uint8_t op = insn.AluOp();
  switch (op) {
    case kAluAdd:
    case kAluSub:
    case kAluMul:
    case kAluDiv:
    case kAluOr:
    case kAluAnd:
    case kAluLsh:
    case kAluRsh:
    case kAluMod:
    case kAluXor:
    case kAluMov:
    case kAluArsh:
      return true;
    case kAluNeg:
      return !insn.SrcIsReg() && insn.imm == 0;
    case kAluEnd:
      return insn.imm == 16 || insn.imm == 32 || insn.imm == 64;
    default:
      return false;
  }
}

bool ValidJmpOpcode(const Insn& insn) {
  switch (insn.JmpOp()) {
    case kJmpJa:
    case kJmpJeq:
    case kJmpJgt:
    case kJmpJge:
    case kJmpJset:
    case kJmpJne:
    case kJmpJsgt:
    case kJmpJsge:
    case kJmpJlt:
    case kJmpJle:
    case kJmpJslt:
    case kJmpJsle:
      return true;
    case kJmpCall:
    case kJmpExit:
      return insn.Class() == kClassJmp;
    default:
      return false;
  }
}

}  // namespace

const char* ProgTypeName(ProgType type) {
  switch (type) {
    case ProgType::kSocketFilter:
      return "socket_filter";
    case ProgType::kKprobe:
      return "kprobe";
    case ProgType::kTracepoint:
      return "tracepoint";
    case ProgType::kXdp:
      return "xdp";
  }
  return "unknown";
}

std::string Program::Disassemble() const {
  std::string out;
  for (size_t i = 0; i < insns.size(); ++i) {
    out += std::to_string(i) + ": " + bpf::Disassemble(insns[i]) + "\n";
  }
  return out;
}

int CheckEncoding(const Program& prog, std::string* log) {
  const size_t n = prog.insns.size();
  if (n == 0) {
    LogTo(log, "empty program");
    return -EINVAL;
  }
  if (n > kMaxInsns) {
    LogTo(log, "program too large");
    return -E2BIG;
  }
  for (size_t i = 0; i < n; ++i) {
    const Insn& insn = prog.insns[i];
    const uint8_t cls = insn.Class();

    if (insn.dst > kR10 || insn.src > kR10) {
      // R11 is only legal in kernel-internal rewritten programs.
      LogTo(log, "insn " + std::to_string(i) + ": invalid register number");
      return -EINVAL;
    }

    if (insn.IsLdImm64()) {
      if (i + 1 >= n || prog.insns[i + 1].opcode != 0 || prog.insns[i + 1].dst != 0 ||
          prog.insns[i + 1].src != 0 || prog.insns[i + 1].off != 0) {
        LogTo(log, "insn " + std::to_string(i) + ": invalid ld_imm64 pair");
        return -EINVAL;
      }
      if (insn.src > kPseudoFunc) {
        LogTo(log, "insn " + std::to_string(i) + ": invalid ld_imm64 pseudo src");
        return -EINVAL;
      }
      ++i;  // Skip the high slot.
      continue;
    }

    switch (cls) {
      case kClassAlu:
      case kClassAlu64:
        if (!ValidAluOpcode(insn)) {
          LogTo(log, "insn " + std::to_string(i) + ": invalid ALU opcode");
          return -EINVAL;
        }
        // BPF_END reuses the source bit as the TO_LE/TO_BE selector and imm
        // as the swap width; every other BPF_X ALU must leave imm zero.
        if (insn.SrcIsReg() && insn.imm != 0 && insn.AluOp() != kAluEnd) {
          LogTo(log, "insn " + std::to_string(i) + ": BPF_X ALU uses reserved imm");
          return -EINVAL;
        }
        if (insn.AluOp() != kAluEnd && insn.off != 0) {
          LogTo(log, "insn " + std::to_string(i) + ": ALU uses reserved off");
          return -EINVAL;
        }
        if ((insn.AluOp() == kAluLsh || insn.AluOp() == kAluRsh || insn.AluOp() == kAluArsh) &&
            !insn.SrcIsReg()) {
          const int max_shift = cls == kClassAlu64 ? 64 : 32;
          if (insn.imm < 0 || insn.imm >= max_shift) {
            LogTo(log, "insn " + std::to_string(i) + ": invalid shift amount");
            return -EINVAL;
          }
        }
        if ((insn.AluOp() == kAluDiv || insn.AluOp() == kAluMod) && !insn.SrcIsReg() &&
            insn.imm == 0) {
          LogTo(log, "insn " + std::to_string(i) + ": division by zero immediate");
          return -EINVAL;
        }
        break;
      case kClassLd:
        // Legacy ABS/IND packet loads are rejected (modern programs use direct
        // packet access); the only allowed kClassLd form is ld_imm64 above.
        LogTo(log, "insn " + std::to_string(i) + ": invalid BPF_LD mode");
        return -EINVAL;
      case kClassLdx:
        if (insn.Mode() != kModeMem && insn.Mode() != kModeMemsx) {
          LogTo(log, "insn " + std::to_string(i) + ": invalid BPF_LDX mode");
          return -EINVAL;
        }
        // BPF_MEMSX sign-extends a narrower value into the 64-bit register;
        // a DW "sign extension" is meaningless and rejected as in Linux.
        if (insn.Mode() == kModeMemsx && insn.Size() == kSizeDw) {
          LogTo(log, "insn " + std::to_string(i) + ": BPF_MEMSX does not support u64");
          return -EINVAL;
        }
        if (insn.imm != 0) {
          LogTo(log, "insn " + std::to_string(i) + ": BPF_LDX uses reserved imm");
          return -EINVAL;
        }
        break;
      case kClassSt:
        if (insn.Mode() != kModeMem) {
          LogTo(log, "insn " + std::to_string(i) + ": invalid BPF_ST mode");
          return -EINVAL;
        }
        if (insn.src != 0) {
          LogTo(log, "insn " + std::to_string(i) + ": BPF_ST uses reserved src");
          return -EINVAL;
        }
        break;
      case kClassStx:
        if (insn.Mode() == kModeAtomic) {
          if (insn.Size() != kSizeW && insn.Size() != kSizeDw) {
            LogTo(log, "insn " + std::to_string(i) + ": invalid atomic size");
            return -EINVAL;
          }
          switch (insn.imm) {
            case kAtomicAdd:
            case kAtomicOr:
            case kAtomicAnd:
            case kAtomicXor:
            case kAtomicAdd | kAtomicFetch:
            case kAtomicOr | kAtomicFetch:
            case kAtomicAnd | kAtomicFetch:
            case kAtomicXor | kAtomicFetch:
            case kAtomicXchg:
            case kAtomicCmpXchg:
              break;
            default:
              LogTo(log, "insn " + std::to_string(i) + ": invalid atomic op");
              return -EINVAL;
          }
        } else if (insn.Mode() != kModeMem) {
          LogTo(log, "insn " + std::to_string(i) + ": invalid BPF_STX mode");
          return -EINVAL;
        } else if (insn.imm != 0) {
          LogTo(log, "insn " + std::to_string(i) + ": BPF_STX uses reserved imm");
          return -EINVAL;
        }
        break;
      case kClassJmp:
      case kClassJmp32:
        if (!ValidJmpOpcode(insn)) {
          LogTo(log, "insn " + std::to_string(i) + ": invalid JMP opcode");
          return -EINVAL;
        }
        if (insn.JmpOp() == kJmpCall) {
          if (insn.dst != 0 || insn.off != 0 ||
              (insn.src != kPseudoCallHelper && insn.src != kPseudoCallFunc &&
               insn.src != kPseudoKfuncCall)) {
            LogTo(log, "insn " + std::to_string(i) + ": malformed call");
            return -EINVAL;
          }
        } else if (insn.JmpOp() == kJmpExit) {
          if (insn.dst != 0 || insn.src != 0 || insn.off != 0 || insn.imm != 0) {
            LogTo(log, "insn " + std::to_string(i) + ": malformed exit");
            return -EINVAL;
          }
        } else {
          // Jump target must land inside the program; `off` is relative to the
          // next instruction.
          if (insn.JmpOp() != kJmpJa && insn.SrcIsReg() && insn.imm != 0) {
            LogTo(log, "insn " + std::to_string(i) + ": BPF_X JMP uses reserved imm");
            return -EINVAL;
          }
          const int64_t target = static_cast<int64_t>(i) + 1 + insn.off;
          if (target < 0 || target >= static_cast<int64_t>(n)) {
            LogTo(log, "insn " + std::to_string(i) + ": jump out of range");
            return -EINVAL;
          }
        }
        break;
      default:
        LogTo(log, "insn " + std::to_string(i) + ": unknown class");
        return -EINVAL;
    }
  }

  // The program must not fall off the end: the kernel requires the last
  // instruction to be EXIT or an unconditional jump backwards.
  const Insn& last = prog.insns.back();
  const bool ends_ok = last.IsExit() || (last.Class() == kClassJmp && last.JmpOp() == kJmpJa);
  if (!ends_ok) {
    LogTo(log, "program does not end with exit or jump");
    return -EINVAL;
  }
  return 0;
}

}  // namespace bpf
