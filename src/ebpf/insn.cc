#include "src/ebpf/insn.h"

#include <cstdarg>
#include <cstdio>

namespace bpf {

int Insn::AccessBytes() const {
  switch (Size()) {
    case kSizeB:
      return 1;
    case kSizeH:
      return 2;
    case kSizeW:
      return 4;
    case kSizeDw:
      return 8;
    default:
      return 0;
  }
}

Insn MovReg(uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | kAluMov | kSrcX), dst, src, 0, 0};
}

Insn MovImm(uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | kAluMov | kSrcK), dst, 0, 0, imm};
}

Insn Mov32Reg(uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu | kAluMov | kSrcX), dst, src, 0, 0};
}

Insn Mov32Imm(uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu | kAluMov | kSrcK), dst, 0, 0, imm};
}

Insn AluReg(uint8_t op, uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | op | kSrcX), dst, src, 0, 0};
}

Insn AluImm(uint8_t op, uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | op | kSrcK), dst, 0, 0, imm};
}

Insn Alu32Reg(uint8_t op, uint8_t dst, uint8_t src) {
  return Insn{static_cast<uint8_t>(kClassAlu | op | kSrcX), dst, src, 0, 0};
}

Insn Alu32Imm(uint8_t op, uint8_t dst, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassAlu | op | kSrcK), dst, 0, 0, imm};
}

Insn Neg(uint8_t dst) {
  return Insn{static_cast<uint8_t>(kClassAlu64 | kAluNeg), dst, 0, 0, 0};
}

Insn LoadMem(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassLdx | size | kModeMem), dst, src, off, 0};
}

Insn LoadMemSx(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassLdx | size | kModeMemsx), dst, src, off, 0};
}

Insn StoreMemReg(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassStx | size | kModeMem), dst, src, off, 0};
}

Insn StoreMemImm(uint8_t size, uint8_t dst, int16_t off, int32_t imm) {
  return Insn{static_cast<uint8_t>(kClassSt | size | kModeMem), dst, 0, off, imm};
}

Insn AtomicOp(uint8_t size, uint8_t dst, uint8_t src, int16_t off, int32_t op) {
  return Insn{static_cast<uint8_t>(kClassStx | size | kModeAtomic), dst, src, off, op};
}

Insn LdImm64Lo(uint8_t dst, uint8_t pseudo_src, uint64_t imm64) {
  return Insn{static_cast<uint8_t>(kClassLd | kSizeDw | kModeImm), dst, pseudo_src, 0,
              static_cast<int32_t>(imm64 & 0xffffffffu)};
}

Insn LdImm64Hi(uint64_t imm64) {
  return Insn{0, 0, 0, 0, static_cast<int32_t>(imm64 >> 32)};
}

Insn JmpA(int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpJa), 0, 0, off, 0};
}

Insn JmpImm(uint8_t op, uint8_t dst, int32_t imm, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | op | kSrcK), dst, 0, off, imm};
}

Insn JmpReg(uint8_t op, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp | op | kSrcX), dst, src, off, 0};
}

Insn Jmp32Imm(uint8_t op, uint8_t dst, int32_t imm, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp32 | op | kSrcK), dst, 0, off, imm};
}

Insn Jmp32Reg(uint8_t op, uint8_t dst, uint8_t src, int16_t off) {
  return Insn{static_cast<uint8_t>(kClassJmp32 | op | kSrcX), dst, src, off, 0};
}

Insn CallHelper(int32_t helper_id) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpCall), 0, kPseudoCallHelper, 0, helper_id};
}

Insn CallKfunc(int32_t btf_func_id) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpCall), 0, kPseudoKfuncCall, 0, btf_func_id};
}

Insn CallPseudoFunc(int32_t insn_delta) {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpCall), 0, kPseudoCallFunc, 0, insn_delta};
}

Insn Exit() {
  return Insn{static_cast<uint8_t>(kClassJmp | kJmpExit), 0, 0, 0, 0};
}

std::string RegName(uint8_t reg) {
  return "r" + std::to_string(static_cast<int>(reg));
}

namespace {

const char* SizeName(uint8_t size) {
  switch (size) {
    case kSizeB:
      return "u8";
    case kSizeH:
      return "u16";
    case kSizeW:
      return "u32";
    case kSizeDw:
      return "u64";
    default:
      return "u?";
  }
}

const char* SignedSizeName(uint8_t size) {
  switch (size) {
    case kSizeB:
      return "s8";
    case kSizeH:
      return "s16";
    case kSizeW:
      return "s32";
    case kSizeDw:
      return "s64";
    default:
      return "s?";
  }
}

const char* AluOpName(uint8_t op) {
  switch (op) {
    case kAluAdd:
      return "+=";
    case kAluSub:
      return "-=";
    case kAluMul:
      return "*=";
    case kAluDiv:
      return "/=";
    case kAluOr:
      return "|=";
    case kAluAnd:
      return "&=";
    case kAluLsh:
      return "<<=";
    case kAluRsh:
      return ">>=";
    case kAluMod:
      return "%=";
    case kAluXor:
      return "^=";
    case kAluMov:
      return "=";
    case kAluArsh:
      return "s>>=";
    default:
      return "?=";
  }
}

const char* JmpOpName(uint8_t op) {
  switch (op) {
    case kJmpJeq:
      return "==";
    case kJmpJgt:
      return ">";
    case kJmpJge:
      return ">=";
    case kJmpJset:
      return "&";
    case kJmpJne:
      return "!=";
    case kJmpJsgt:
      return "s>";
    case kJmpJsge:
      return "s>=";
    case kJmpJlt:
      return "<";
    case kJmpJle:
      return "<=";
    case kJmpJslt:
      return "s<";
    case kJmpJsle:
      return "s<=";
    default:
      return "?";
  }
}

std::string Fmt(const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

}  // namespace

std::string Disassemble(const Insn& insn) {
  const uint8_t cls = insn.Class();
  if (insn.opcode == 0) {
    return Fmt("  (ld_imm64 hi: 0x%x)", insn.imm);
  }
  if (insn.IsLdImm64()) {
    const char* tag = "";
    switch (insn.src) {
      case kPseudoMapFd:
        tag = " map_fd";
        break;
      case kPseudoMapValue:
        tag = " map_value";
        break;
      case kPseudoBtfId:
        tag = " btf_id";
        break;
      case kPseudoFunc:
        tag = " func";
        break;
      default:
        break;
    }
    return Fmt("%s = 0x%x ll%s", RegName(insn.dst).c_str(), insn.imm, tag);
  }
  if (cls == kClassAlu || cls == kClassAlu64) {
    const bool is32 = cls == kClassAlu;
    const std::string dst = RegName(insn.dst);
    if (insn.AluOp() == kAluNeg) {
      return Fmt("%s%s = -%s", is32 ? "w" : "", dst.c_str(), dst.c_str());
    }
    if (insn.AluOp() == kAluEnd) {
      // Four distinct encodings (class x TO_LE/TO_BE bit), four distinct
      // spellings, so disassembly round-trips byte-identically: the ALU-class
      // pair is the classic le/be conversion, the ALU64-class pair the
      // unconditional-swap spelling (swap_le names the odd bit-clear form).
      const bool to_be = insn.SrcIsReg();
      const char* mnemonic = is32 ? (to_be ? "be" : "le") : (to_be ? "bswap" : "swap_le");
      return Fmt("%s = %s%d %s", dst.c_str(), mnemonic, insn.imm, dst.c_str());
    }
    if (insn.SrcIsReg()) {
      return Fmt("%s%s %s %s%s", is32 ? "w" : "", dst.c_str(), AluOpName(insn.AluOp()),
                 is32 ? "w" : "", RegName(insn.src).c_str());
    }
    return Fmt("%s%s %s %d", is32 ? "w" : "", dst.c_str(), AluOpName(insn.AluOp()), insn.imm);
  }
  if (insn.IsMemLoad()) {
    return Fmt("%s = *(%s *)(%s %+d)", RegName(insn.dst).c_str(),
               insn.IsMemLoadSx() ? SignedSizeName(insn.Size()) : SizeName(insn.Size()),
               RegName(insn.src).c_str(), insn.off);
  }
  if (insn.IsAtomic()) {
    return Fmt("atomic_op(0x%x) (%s *)(%s %+d), %s", insn.imm, SizeName(insn.Size()),
               RegName(insn.dst).c_str(), insn.off, RegName(insn.src).c_str());
  }
  if (cls == kClassStx && insn.Mode() == kModeMem) {
    return Fmt("*(%s *)(%s %+d) = %s", SizeName(insn.Size()), RegName(insn.dst).c_str(),
               insn.off, RegName(insn.src).c_str());
  }
  if (cls == kClassSt && insn.Mode() == kModeMem) {
    return Fmt("*(%s *)(%s %+d) = %d", SizeName(insn.Size()), RegName(insn.dst).c_str(),
               insn.off, insn.imm);
  }
  if (cls == kClassJmp || cls == kClassJmp32) {
    const bool is32 = cls == kClassJmp32;
    switch (insn.JmpOp()) {
      case kJmpJa:
        return Fmt("goto %+d", insn.off);
      case kJmpCall:
        if (insn.src == kPseudoKfuncCall) {
          return Fmt("call kfunc#%d", insn.imm);
        }
        if (insn.src == kPseudoCallFunc) {
          return Fmt("call pc%+d", insn.imm);
        }
        return Fmt("call helper#%d", insn.imm);
      case kJmpExit:
        return "exit";
      default:
        break;
    }
    if (insn.SrcIsReg()) {
      return Fmt("if %s%s %s %s%s goto %+d", is32 ? "w" : "", RegName(insn.dst).c_str(),
                 JmpOpName(insn.JmpOp()), is32 ? "w" : "", RegName(insn.src).c_str(), insn.off);
    }
    return Fmt("if %s%s %s %d goto %+d", is32 ? "w" : "", RegName(insn.dst).c_str(),
               JmpOpName(insn.JmpOp()), insn.imm, insn.off);
  }
  return Fmt("(unknown opcode 0x%02x)", insn.opcode);
}

}  // namespace bpf
