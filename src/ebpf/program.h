// eBPF program container and structural (pre-verifier) encoding checks.

#ifndef SRC_EBPF_PROGRAM_H_
#define SRC_EBPF_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"

namespace bpf {

// Program types, a subset of the kernel's enum bpf_prog_type.
enum class ProgType {
  kSocketFilter,
  kKprobe,
  kTracepoint,
  kXdp,
};

const char* ProgTypeName(ProgType type);

// Maximum number of instructions the loader accepts (kernel: BPF_MAXINSNS for
// unprivileged, 1M for privileged; we use a single generous bound).
inline constexpr size_t kMaxInsns = 8192;

// An eBPF program as submitted to (or rewritten by) the loader.
struct Program {
  ProgType type = ProgType::kSocketFilter;
  std::vector<Insn> insns;

  // Load flags (subset of the kernel's prog load attrs).
  bool offload_requested = false;  // XDP hardware offload (Table 2 bug #11 path)

  size_t size() const { return insns.size(); }

  // Renders the whole program, one instruction per line with indices.
  std::string Disassemble() const;
};

// Structural validation performed before any semantic analysis, mirroring the
// encoding checks at the top of the kernel's bpf_check(): reserved field use,
// valid opcodes, register numbers in range, ld_imm64 pairing, jump targets
// inside the program. Returns 0 or a negative errno (-EINVAL), appending
// messages to |log| when non-null.
int CheckEncoding(const Program& prog, std::string* log);

}  // namespace bpf

#endif  // SRC_EBPF_PROGRAM_H_
