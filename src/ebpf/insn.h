// eBPF instruction encoding, mirroring the Linux UAPI (include/uapi/linux/bpf.h).
//
// An instruction is 8 bytes: {opcode, dst_reg:4, src_reg:4, off:s16, imm:s32}.
// The 64-bit immediate load (BPF_LD | BPF_IMM | BPF_DW) occupies two slots; the
// second slot carries the upper 32 bits of the immediate in its imm field.

#ifndef SRC_EBPF_INSN_H_
#define SRC_EBPF_INSN_H_

#include <cstdint>
#include <string>

namespace bpf {

// ---- Instruction classes (low 3 bits of the opcode) ----
inline constexpr uint8_t kClassLd = 0x00;
inline constexpr uint8_t kClassLdx = 0x01;
inline constexpr uint8_t kClassSt = 0x02;
inline constexpr uint8_t kClassStx = 0x03;
inline constexpr uint8_t kClassAlu = 0x04;
inline constexpr uint8_t kClassJmp = 0x05;
inline constexpr uint8_t kClassJmp32 = 0x06;
inline constexpr uint8_t kClassAlu64 = 0x07;

// ---- Size field for load/store (bits 3-4) ----
inline constexpr uint8_t kSizeW = 0x00;   // 4 bytes
inline constexpr uint8_t kSizeH = 0x08;   // 2 bytes
inline constexpr uint8_t kSizeB = 0x10;   // 1 byte
inline constexpr uint8_t kSizeDw = 0x18;  // 8 bytes

// ---- Mode field for load/store (bits 5-7) ----
inline constexpr uint8_t kModeImm = 0x00;
inline constexpr uint8_t kModeAbs = 0x20;
inline constexpr uint8_t kModeInd = 0x40;
inline constexpr uint8_t kModeMem = 0x60;
inline constexpr uint8_t kModeMemsx = 0x80;  // sign-extending load (LDX only)
inline constexpr uint8_t kModeAtomic = 0xc0;

// ---- ALU / ALU64 operations (bits 4-7) ----
inline constexpr uint8_t kAluAdd = 0x00;
inline constexpr uint8_t kAluSub = 0x10;
inline constexpr uint8_t kAluMul = 0x20;
inline constexpr uint8_t kAluDiv = 0x30;
inline constexpr uint8_t kAluOr = 0x40;
inline constexpr uint8_t kAluAnd = 0x50;
inline constexpr uint8_t kAluLsh = 0x60;
inline constexpr uint8_t kAluRsh = 0x70;
inline constexpr uint8_t kAluNeg = 0x80;
inline constexpr uint8_t kAluMod = 0x90;
inline constexpr uint8_t kAluXor = 0xa0;
inline constexpr uint8_t kAluMov = 0xb0;
inline constexpr uint8_t kAluArsh = 0xc0;
inline constexpr uint8_t kAluEnd = 0xd0;  // byte swap

// ---- JMP / JMP32 operations (bits 4-7) ----
inline constexpr uint8_t kJmpJa = 0x00;
inline constexpr uint8_t kJmpJeq = 0x10;
inline constexpr uint8_t kJmpJgt = 0x20;
inline constexpr uint8_t kJmpJge = 0x30;
inline constexpr uint8_t kJmpJset = 0x40;
inline constexpr uint8_t kJmpJne = 0x50;
inline constexpr uint8_t kJmpJsgt = 0x60;
inline constexpr uint8_t kJmpJsge = 0x70;
inline constexpr uint8_t kJmpCall = 0x80;
inline constexpr uint8_t kJmpExit = 0x90;
inline constexpr uint8_t kJmpJlt = 0xa0;
inline constexpr uint8_t kJmpJle = 0xb0;
inline constexpr uint8_t kJmpJslt = 0xc0;
inline constexpr uint8_t kJmpJsle = 0xd0;

// ---- Source operand flag (bit 3) ----
inline constexpr uint8_t kSrcK = 0x00;  // immediate
inline constexpr uint8_t kSrcX = 0x08;  // register

// ---- Atomic op immediates (subset) ----
inline constexpr int32_t kAtomicAdd = 0x00;
inline constexpr int32_t kAtomicOr = 0x40;
inline constexpr int32_t kAtomicAnd = 0x50;
inline constexpr int32_t kAtomicXor = 0xa0;
inline constexpr int32_t kAtomicFetch = 0x01;
inline constexpr int32_t kAtomicXchg = 0xe1;
inline constexpr int32_t kAtomicCmpXchg = 0xf1;

// ---- Pseudo src_reg values for BPF_LD_IMM64 ----
inline constexpr uint8_t kPseudoMapFd = 1;
inline constexpr uint8_t kPseudoMapValue = 2;
inline constexpr uint8_t kPseudoBtfId = 3;
inline constexpr uint8_t kPseudoFunc = 4;

// ---- Pseudo src_reg values for BPF_CALL ----
inline constexpr uint8_t kPseudoCallHelper = 0;  // imm = helper id
inline constexpr uint8_t kPseudoCallFunc = 1;    // imm = insn-relative target (bpf-to-bpf)
inline constexpr uint8_t kPseudoKfuncCall = 2;   // imm = BTF func id

// Registers. R0 is return value / scratch, R1-R5 are argument registers
// (clobbered by calls), R6-R9 are callee-saved, R10 is the read-only frame
// pointer. R11 is an auxiliary register visible only to rewrite passes.
inline constexpr uint8_t kR0 = 0;
inline constexpr uint8_t kR1 = 1;
inline constexpr uint8_t kR2 = 2;
inline constexpr uint8_t kR3 = 3;
inline constexpr uint8_t kR4 = 4;
inline constexpr uint8_t kR5 = 5;
inline constexpr uint8_t kR6 = 6;
inline constexpr uint8_t kR7 = 7;
inline constexpr uint8_t kR8 = 8;
inline constexpr uint8_t kR9 = 9;
inline constexpr uint8_t kR10 = 10;  // frame pointer, read-only
inline constexpr uint8_t kR11 = 11;  // internal auxiliary register (rewrites only)

inline constexpr int kNumProgRegs = 11;   // R0..R10 visible to programs
inline constexpr int kNumTotalRegs = 12;  // including R11

// eBPF stack size per frame, bytes.
inline constexpr int kStackSize = 512;

// A single eBPF instruction.
struct Insn {
  uint8_t opcode = 0;
  uint8_t dst = 0;
  uint8_t src = 0;
  int16_t off = 0;
  int32_t imm = 0;

  constexpr uint8_t Class() const { return opcode & 0x07; }
  constexpr uint8_t Size() const { return opcode & 0x18; }
  constexpr uint8_t Mode() const { return opcode & 0xe0; }
  constexpr uint8_t AluOp() const { return opcode & 0xf0; }
  constexpr uint8_t JmpOp() const { return opcode & 0xf0; }
  constexpr bool SrcIsReg() const { return (opcode & 0x08) != 0; }

  bool IsAlu() const { return Class() == kClassAlu || Class() == kClassAlu64; }
  bool IsJmp() const { return Class() == kClassJmp || Class() == kClassJmp32; }
  bool IsLoad() const { return Class() == kClassLd || Class() == kClassLdx; }
  bool IsStore() const { return Class() == kClassSt || Class() == kClassStx; }
  bool IsMemLoad() const {
    return Class() == kClassLdx && (Mode() == kModeMem || Mode() == kModeMemsx);
  }
  // Sign-extending load (BPF_MEMSX, ISA v4): the loaded B/H/W value fills the
  // 64-bit destination via sign extension instead of zero extension.
  bool IsMemLoadSx() const { return Class() == kClassLdx && Mode() == kModeMemsx; }
  bool IsMemStore() const {
    return (Class() == kClassSt || Class() == kClassStx) && Mode() == kModeMem;
  }
  bool IsAtomic() const { return Class() == kClassStx && Mode() == kModeAtomic; }
  bool IsLdImm64() const { return opcode == (kClassLd | kSizeDw | kModeImm); }
  bool IsCall() const { return Class() == kClassJmp && JmpOp() == kJmpCall; }
  bool IsHelperCall() const { return IsCall() && src == kPseudoCallHelper; }
  bool IsKfuncCall() const { return IsCall() && src == kPseudoKfuncCall; }
  bool IsBpfToBpfCall() const { return IsCall() && src == kPseudoCallFunc; }
  bool IsExit() const { return Class() == kClassJmp && JmpOp() == kJmpExit; }

  // Number of bytes accessed by a load/store instruction.
  int AccessBytes() const;

  // Absolute target instruction index of a jump located at |pc| (offset
  // field) and of a bpf-to-bpf call (immediate field). Both execution
  // engines and the micro-op decoder resolve branch targets through these,
  // so relative-offset arithmetic lives in one place.
  constexpr int JumpTargetPc(int pc) const { return pc + 1 + off; }
  constexpr int CallTargetPc(int pc) const { return pc + 1 + imm; }

  bool operator==(const Insn& other) const = default;
};

// The in-memory struct widens the packed dst/src nibbles to full bytes for
// ergonomics; the wire encoding (used for allocation-size math, e.g. the
// kmemdup path) is 8 bytes per instruction as in the kernel.
inline constexpr size_t kInsnWireSize = 8;

// ---- Instruction constructors (assembler-style helpers) ----

// dst = src (64-bit) / dst = imm
Insn MovReg(uint8_t dst, uint8_t src);
Insn MovImm(uint8_t dst, int32_t imm);
Insn Mov32Reg(uint8_t dst, uint8_t src);
Insn Mov32Imm(uint8_t dst, int32_t imm);

// dst op= src / imm (64-bit ALU)
Insn AluReg(uint8_t op, uint8_t dst, uint8_t src);
Insn AluImm(uint8_t op, uint8_t dst, int32_t imm);
// 32-bit ALU
Insn Alu32Reg(uint8_t op, uint8_t dst, uint8_t src);
Insn Alu32Imm(uint8_t op, uint8_t dst, int32_t imm);
Insn Neg(uint8_t dst);

// dst = *(size*)(src + off)
Insn LoadMem(uint8_t size, uint8_t dst, uint8_t src, int16_t off);
// dst = *(s-size*)(src + off) — sign-extending load; size must be B/H/W.
Insn LoadMemSx(uint8_t size, uint8_t dst, uint8_t src, int16_t off);
// *(size*)(dst + off) = src
Insn StoreMemReg(uint8_t size, uint8_t dst, uint8_t src, int16_t off);
// *(size*)(dst + off) = imm
Insn StoreMemImm(uint8_t size, uint8_t dst, int16_t off, int32_t imm);
// atomic op at *(size*)(dst + off) with src
Insn AtomicOp(uint8_t size, uint8_t dst, uint8_t src, int16_t off, int32_t op);

// Two-slot 64-bit immediate load; callers must emit both slots.
Insn LdImm64Lo(uint8_t dst, uint8_t pseudo_src, uint64_t imm64);
Insn LdImm64Hi(uint64_t imm64);

// Conditional / unconditional jumps
Insn JmpA(int16_t off);
Insn JmpImm(uint8_t op, uint8_t dst, int32_t imm, int16_t off);
Insn JmpReg(uint8_t op, uint8_t dst, uint8_t src, int16_t off);
Insn Jmp32Imm(uint8_t op, uint8_t dst, int32_t imm, int16_t off);
Insn Jmp32Reg(uint8_t op, uint8_t dst, uint8_t src, int16_t off);

// Calls and exit
Insn CallHelper(int32_t helper_id);
Insn CallKfunc(int32_t btf_func_id);
Insn CallPseudoFunc(int32_t insn_delta);
Insn Exit();

// Returns a human-readable mnemonic for one instruction, e.g.
// "r0 = *(u64 *)(r1 +8)". Decodes only the single slot (an ld_imm64 high
// slot renders as a continuation marker).
std::string Disassemble(const Insn& insn);

// Returns the register name ("r0".."r11").
std::string RegName(uint8_t reg);

}  // namespace bpf

#endif  // SRC_EBPF_INSN_H_
