// Fluent assembler for constructing eBPF programs in tests, examples, and the
// fuzzer. Mirrors the BPF_* instruction macros used in kernel selftests.

#ifndef SRC_EBPF_BUILDER_H_
#define SRC_EBPF_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"

namespace bpf {

// Builds a Program instruction by instruction. Jump offsets are expressed in
// raw instruction deltas (like the wire format); use Label/JumpTo for symbolic
// targets.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(ProgType type = ProgType::kSocketFilter) { prog_.type = type; }

  ProgramBuilder& Raw(const Insn& insn) {
    prog_.insns.push_back(insn);
    return *this;
  }

  ProgramBuilder& Mov(uint8_t dst, uint8_t src) { return Raw(MovReg(dst, src)); }
  ProgramBuilder& Mov(uint8_t dst, int32_t imm) { return Raw(MovImm(dst, imm)); }
  ProgramBuilder& Alu(uint8_t op, uint8_t dst, uint8_t src) { return Raw(AluReg(op, dst, src)); }
  ProgramBuilder& Alu(uint8_t op, uint8_t dst, int32_t imm) { return Raw(AluImm(op, dst, imm)); }
  ProgramBuilder& Add(uint8_t dst, int32_t imm) { return Alu(kAluAdd, dst, imm); }
  ProgramBuilder& Add(uint8_t dst, uint8_t src) { return Alu(kAluAdd, dst, src); }
  ProgramBuilder& Sub(uint8_t dst, int32_t imm) { return Alu(kAluSub, dst, imm); }
  ProgramBuilder& And(uint8_t dst, int32_t imm) { return Alu(kAluAnd, dst, imm); }

  ProgramBuilder& Load(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
    return Raw(LoadMem(size, dst, src, off));
  }
  ProgramBuilder& Store(uint8_t size, uint8_t dst, uint8_t src, int16_t off) {
    return Raw(StoreMemReg(size, dst, src, off));
  }
  ProgramBuilder& StoreImm(uint8_t size, uint8_t dst, int16_t off, int32_t imm) {
    return Raw(StoreMemImm(size, dst, off, imm));
  }

  // Emits the two-slot 64-bit immediate load.
  ProgramBuilder& LdImm64(uint8_t dst, uint64_t value, uint8_t pseudo_src = 0) {
    Raw(LdImm64Lo(dst, pseudo_src, value));
    return Raw(LdImm64Hi(value));
  }
  ProgramBuilder& LdMapFd(uint8_t dst, int32_t map_fd) {
    return LdImm64(dst, static_cast<uint32_t>(map_fd), kPseudoMapFd);
  }
  ProgramBuilder& LdBtfId(uint8_t dst, int32_t btf_id) {
    return LdImm64(dst, static_cast<uint32_t>(btf_id), kPseudoBtfId);
  }

  ProgramBuilder& Jmp(int16_t off) { return Raw(JmpA(off)); }
  ProgramBuilder& JmpIf(uint8_t op, uint8_t dst, int32_t imm, int16_t off) {
    return Raw(JmpImm(op, dst, imm, off));
  }
  ProgramBuilder& JmpIfReg(uint8_t op, uint8_t dst, uint8_t src, int16_t off) {
    return Raw(JmpReg(op, dst, src, off));
  }

  ProgramBuilder& Call(int32_t helper_id) { return Raw(CallHelper(helper_id)); }
  ProgramBuilder& Kfunc(int32_t btf_func_id) { return Raw(CallKfunc(btf_func_id)); }
  ProgramBuilder& Ret() { return Raw(bpf::Exit()); }

  // Convenience: mov r0, imm; exit.
  ProgramBuilder& RetImm(int32_t imm) {
    Mov(kR0, imm);
    return Ret();
  }

  size_t size() const { return prog_.insns.size(); }
  Program Build() const { return prog_; }

 private:
  Program prog_;
};

}  // namespace bpf

#endif  // SRC_EBPF_BUILDER_H_
