// Generator interface: a fuzz case is an eBPF program plus the kernel
// resources and driver actions that exercise it (maps to pre-create, attach
// targets, events to fire, follow-up syscalls).

#ifndef SRC_CORE_GENERATOR_H_
#define SRC_CORE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/analysis/patch.h"
#include "src/ebpf/program.h"
#include "src/kernel/rng.h"
#include "src/kernel/tracepoint.h"
#include "src/maps/map.h"
#include "src/verifier/kernel_version.h"

namespace bvf {

// One generated test case.
struct FuzzCase {
  bpf::Program prog;
  std::vector<bpf::MapDef> maps;  // created before load; fd = index + 1

  // Driver actions after a successful load.
  int test_runs = 2;
  bool do_attach = false;
  bpf::TracepointId attach_target = bpf::TracepointId::kSysEnter;
  std::vector<bpf::TracepointId> events;  // fired after attach
  bool do_xdp_install = false;            // install + run on the XDP dispatcher
  bool do_map_batch = false;              // batched map lookups (bug #9 path)
};

class Generator {
 public:
  virtual ~Generator() = default;
  virtual const char* name() const = 0;
  virtual FuzzCase Generate(bpf::Rng& rng) = 0;
  // Optional corpus mutation; default regenerates from scratch.
  virtual void Mutate(bpf::Rng& rng, FuzzCase& the_case) { the_case = Generate(rng); }
  // Independent copy for a parallel worker. BVF generators are stateless
  // between calls (all randomness flows through the Rng argument), so a clone
  // is just a configuration copy. Returning nullptr (the default) tells the
  // parallel engine the generator cannot be replicated; it then degrades to a
  // single worker rather than sharing one generator across threads.
  virtual std::unique_ptr<Generator> Clone() const { return nullptr; }
};

// InsertInsnPatched — used by the fuzzer's adjacent-instruction duplication
// mutation (paper §4.1: "simulating unrolled loops") — lives in
// src/analysis/patch.h, included above.

}  // namespace bvf

#endif  // SRC_CORE_GENERATOR_H_
