// Campaign checkpoint/resume (DESIGN.md §8.4, §12.4): serializes everything
// the fuzz loop needs to continue bit-identically — RNG position, corpus,
// stats (including findings and the coverage curve), and the global coverage
// hit set — into a line-oriented text file written atomically (tmp + fsync +
// rename), with a whole-file checksum trailer so a torn or corrupted file is
// rejected with a clear error instead of silently misparsing.
//
// Format v2 ("bvf-checkpoint v2"). The fingerprint line carries the campaign
// compatibility contract as separate fields:
//
//   fingerprint <options-hash> engine=<serial|parallel> epoch=<n>
//
// so a rejected resume can say *which* field mismatched (engine, epoch
// length, or the campaign options behind the hash) rather than a generic
// failure. The supervised engine (src/core/supervisor) writes engine=parallel
// — its checkpoints are interchangeable with in-process --jobs N checkpoints
// by construction (same epoch-shard discipline, same merge order).

#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/fuzzer.h"

namespace bvf {

// Engine tags stored on the fingerprint line. Serial and parallel checkpoints
// are not interchangeable: the serial engine's RNG stream position has no
// meaning for per-iteration seeds and vice versa.
inline constexpr char kEngineSerial[] = "serial";
inline constexpr char kEngineParallel[] = "parallel";

struct CampaignCheckpoint {
  uint64_t next_iteration = 1;  // first iteration the resumed run executes
  std::string fingerprint;      // FingerprintOptions() of the saving campaign
  std::string engine = kEngineSerial;  // kEngineSerial | kEngineParallel
  uint64_t epoch_len = 0;       // parallel engines only; 0 for serial
  std::array<uint64_t, 4> rng_state = {};
  std::vector<FuzzCase> corpus;
  CampaignStats stats;
  std::vector<std::string> coverage_keys;  // Coverage::SerializeHitKeys()
};

// Canonical hash of the options that must match between the saving and the
// resuming campaign for the continuation to be bit-identical. Deliberately
// excludes: iterations and stop_after (resuming to a different horizon is
// the point), the checkpoint/resume/journal paths themselves, jobs (resuming
// an 8-job campaign with 1 job is the point), and every supervisor knob
// (worker process management is a process concern, not campaign semantics).
std::string FingerprintOptions(const CampaignOptions& options, const std::string& tool);

// Field-wise compatibility check between a loaded checkpoint and the resuming
// campaign. Returns "" when the checkpoint can be resumed bit-identically;
// otherwise a message naming the first mismatching field (engine, epoch_len,
// or the options fingerprint). Call this before touching any RNG, stats,
// corpus, or coverage state.
std::string ValidateCheckpointCompat(const CampaignCheckpoint& checkpoint,
                                     const CampaignOptions& options,
                                     const std::string& tool, const std::string& engine);

// Returns 0 or a negative errno. The file appears atomically (tmp + fsync +
// rename), so a kill mid-write can never leave a half-written checkpoint.
int SaveCheckpoint(const std::string& path, const CampaignCheckpoint& checkpoint);

// Returns 0 on success; on failure returns a negative errno and, when
// |error| is non-null, a human-readable reason. Truncated files (missing
// checksum trailer) and corrupt files (checksum mismatch, malformed lines)
// are rejected before any field is interpreted.
int LoadCheckpoint(const std::string& path, CampaignCheckpoint* out, std::string* error);

// Order-independent digest of a campaign's result state (counters, findings,
// curve, coverage, sanitizer stats — everything except resume bookkeeping).
// Two campaigns with equal digests produced bit-identical results; used by
// the resume-identity tests and the smoke gate.
std::string StatsDigest(const CampaignStats& stats);

}  // namespace bvf

#endif  // SRC_CORE_CHECKPOINT_H_
