// Campaign checkpoint/resume (DESIGN.md §8.4): serializes everything the
// fuzz loop needs to continue bit-identically — RNG position, corpus, stats
// (including findings and the coverage curve), and the global coverage hit
// set — into a line-oriented text file written atomically (tmp + rename).
//
// A fingerprint of the resume-relevant campaign options guards against
// resuming under a different configuration, which would silently produce a
// divergent (and therefore meaningless) continuation.

#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/fuzzer.h"

namespace bvf {

struct CampaignCheckpoint {
  uint64_t next_iteration = 1;  // first iteration the resumed run executes
  std::string fingerprint;      // FingerprintOptions() of the saving campaign
  std::array<uint64_t, 4> rng_state = {};
  std::vector<FuzzCase> corpus;
  CampaignStats stats;
  std::vector<std::string> coverage_keys;  // Coverage::SerializeHitKeys()
};

// Canonical hash of the options that must match between the saving and the
// resuming campaign for the continuation to be bit-identical. Deliberately
// excludes: iterations and stop_after (resuming to a different horizon is
// the point), and the checkpoint/resume paths themselves.
std::string FingerprintOptions(const CampaignOptions& options, const std::string& tool);

// Fingerprint for the parallel engine's checkpoints. Derived from
// FingerprintOptions plus the epoch length (part of the parallel campaign's
// semantics) and an engine tag (serial and parallel checkpoints are not
// interchangeable: the serial engine's RNG stream has no meaning to the
// parallel engine and vice versa). Deliberately excludes jobs — resuming an
// 8-job campaign with 1 job is the point — and verdict_cache, which is
// digest-invisible.
std::string ParallelFingerprint(const CampaignOptions& options, const std::string& tool);

// Returns 0 or a negative errno. The file appears atomically.
int SaveCheckpoint(const std::string& path, const CampaignCheckpoint& checkpoint);

// Returns 0 on success; on failure returns a negative errno and, when
// |error| is non-null, a human-readable reason.
int LoadCheckpoint(const std::string& path, CampaignCheckpoint* out, std::string* error);

// Order-independent digest of a campaign's result state (counters, findings,
// curve, coverage, sanitizer stats — everything except resume bookkeeping).
// Two campaigns with equal digests produced bit-identical results; used by
// the resume-identity tests and the smoke gate.
std::string StatsDigest(const CampaignStats& stats);

}  // namespace bvf

#endif  // SRC_CORE_CHECKPOINT_H_
