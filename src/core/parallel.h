// Parallel sharded campaign engine (DESIGN.md §9).
//
// The legacy Fuzzer threads one RNG stream through every iteration, so each
// case's randomness depends on everything that ran before it — inherently
// serial. ParallelFuzzer replaces that with per-iteration seeds
// (CaseSeed(campaign_seed, i), the same construction FaultSeed already uses)
// and partitions iterations across worker threads in fixed epochs:
//
//   epoch e = iterations (e*epoch_len, (e+1)*epoch_len]   (absolute numbers)
//   iteration i in an epoch starting at s runs on worker (i - s) % jobs
//
// Within an epoch every worker sees the same frozen snapshots — the committed
// coverage set, the corpus, the campaign's finding-signature set, and the
// committed verdict cache — and buffers everything it produces. At the epoch
// barrier the coordinator merges worker output in iteration order. Because
// per-case decisions depend only on (campaign seed, iteration number, frozen
// snapshots) and merges are iteration-ordered, the campaign's findings,
// outcome histograms, coverage set, corpus, and final StatsDigest are
// bit-identical for every jobs value ≥ 1.
//
// Checkpoints are written at epoch barriers only, tagged with a
// parallel-specific fingerprint: an 8-job campaign's checkpoint resumes
// bit-identically under any other job count (including 1).

#ifndef SRC_CORE_PARALLEL_H_
#define SRC_CORE_PARALLEL_H_

#include <cstdint>

#include "src/core/fuzzer.h"

namespace bvf {

// Per-iteration RNG seed: a splitmix64-style mix of the campaign seed and the
// absolute iteration number. Deliberately a different stream than
// bpf::FaultSeed (different pre-mix constants), so a case's generation
// randomness and its fault schedule stay decorrelated.
inline uint64_t CaseSeed(uint64_t campaign_seed, uint64_t iteration) {
  uint64_t z = (campaign_seed ^ 0x6a09e667f3bcc909ull) +
               iteration * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class ParallelFuzzer {
 public:
  // |generator| is the prototype: with jobs > 1 each extra worker runs
  // Generator::Clone() of it. A generator that cannot clone degrades the
  // campaign to one worker (results are identical either way; that is the
  // engine's whole invariant).
  ParallelFuzzer(Generator& generator, CampaignOptions options);

  CampaignStats Run();

 private:
  Generator& generator_;
  CampaignOptions options_;
};

}  // namespace bvf

#endif  // SRC_CORE_PARALLEL_H_
