// Parallel sharded campaign engine (DESIGN.md §9).
//
// The legacy Fuzzer threads one RNG stream through every iteration, so each
// case's randomness depends on everything that ran before it — inherently
// serial. ParallelFuzzer replaces that with per-iteration seeds
// (CaseSeed(campaign_seed, i), the same construction FaultSeed already uses)
// and partitions iterations across worker threads in fixed epochs:
//
//   epoch e = iterations (e*epoch_len, (e+1)*epoch_len]   (absolute numbers)
//   iteration i in an epoch starting at s runs on worker (i - s) % jobs
//
// Within an epoch every worker sees the same frozen snapshots — the committed
// coverage set, the corpus, the campaign's finding-signature set, and the
// committed verdict cache — and buffers everything it produces. At the epoch
// barrier the coordinator merges worker output in iteration order. Because
// per-case decisions depend only on (campaign seed, iteration number, frozen
// snapshots) and merges are iteration-ordered, the campaign's findings,
// outcome histograms, coverage set, corpus, and final StatsDigest are
// bit-identical for every jobs value ≥ 1.
//
// Checkpoints are written at epoch barriers only, tagged engine=parallel
// (plus the epoch length) on the fingerprint line: an 8-job campaign's
// checkpoint resumes bit-identically under any other job count (including 1),
// and supervised (multi-process) checkpoints are interchangeable with
// in-process ones because both run this same discipline.

#ifndef SRC_CORE_PARALLEL_H_
#define SRC_CORE_PARALLEL_H_

#include <cstdint>

// The shard loop, the barrier-merge steps, and CaseSeed live in
// src/core/epoch.h, shared with the multi-process supervisor
// (src/core/supervisor) so the two engines cannot drift.
#include "src/core/epoch.h"
#include "src/core/fuzzer.h"

namespace bvf {

class ParallelFuzzer {
 public:
  // |generator| is the prototype: with jobs > 1 each extra worker runs
  // Generator::Clone() of it. A generator that cannot clone degrades the
  // campaign to one worker (results are identical either way; that is the
  // engine's whole invariant).
  ParallelFuzzer(Generator& generator, CampaignOptions options);

  CampaignStats Run();

 private:
  Generator& generator_;
  CampaignOptions options_;
};

}  // namespace bvf

#endif  // SRC_CORE_PARALLEL_H_
