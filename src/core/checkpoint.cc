#include "src/core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/serialize.h"

namespace bvf {

namespace {

using serialize::Escape;
using serialize::Fnv1a;
using serialize::Hex64;
using serialize::Reader;
using serialize::Unescape;

constexpr char kMagic[] = "bvf-checkpoint v2";
constexpr char kMagicV1[] = "bvf-checkpoint v1";
constexpr char kSumTag[] = "sum ";

// Writes |content| to |path| atomically: temp file in the same directory,
// fsync, rename. A kill at any point leaves either the old file or the new
// one, never a hybrid.
int AtomicWrite(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return -errno;
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      std::remove(tmp.c_str());
      return -err;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    return -EIO;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return -EIO;
  }
  return 0;
}

}  // namespace

std::string FingerprintOptions(const CampaignOptions& options, const std::string& tool) {
  std::ostringstream os;
  os << "v1"
     << " version=" << static_cast<int>(options.version) << " seed=" << options.seed
     << " sanitize=" << options.sanitize << " audit=" << options.audit_state
     << " covfb=" << options.coverage_feedback << " covpts=" << options.coverage_points
     << " resetcov=" << options.reset_coverage << " arena=" << options.arena_size
     << " budget=" << options.arena_budget << " confirm=" << options.confirm_runs
     << " reuse=" << options.reuse_substrate << " tool=" << tool;
  os << " limits=" << options.limits.step_budget << "/" << options.limits.wall_budget_ms
     << "/" << options.limits.max_call_depth;
  os.precision(17);
  os << " fault=" << options.fault.probability << "/" << options.fault.interval << "/"
     << options.fault.space << "/" << options.fault.times << "/";
  for (const bool enabled : options.fault.enabled) {
    os << (enabled ? 1 : 0);
  }
  const bpf::BugConfig& bugs = options.bugs;
  os << " bugs=" << bugs.bug1_nullness_propagation << bugs.bug2_task_struct_bounds
     << bugs.bug3_kfunc_backtrack << bugs.bug4_trace_printk_recursion
     << bugs.bug5_contention_begin << bugs.bug6_send_signal << bugs.bug7_dispatcher_sync
     << bugs.bug8_kmemdup << bugs.bug9_bucket_iteration << bugs.bug10_irq_work
     << bugs.bug11_xdp_offload << bugs.bug12_jmp32_signed_refine << bugs.cve_2022_23222
     << bugs.bug13_ld_imm64_pessimize;
  os << " mmorph=" << options.metamorph << "/" << options.metamorph_k;
  // The conformance prologue contributes findings (digest-included), so a
  // checkpoint written with a corpus cannot resume without one (or with a
  // different one).
  if (!options.conformance_dir.empty()) {
    os << " conf=" << options.conformance_dir;
  }
  // interp_engine is deliberately absent: the engines are digest-identical,
  // so a --interp=jit checkpoint must resume under --interp=legacy and vice
  // versa. The jit oracle, by contrast, changes outcomes and findings.
  os << " joracle=" << options.jit_oracle;
  return Hex64(Fnv1a(os.str()));
}

std::string ValidateCheckpointCompat(const CampaignCheckpoint& checkpoint,
                                     const CampaignOptions& options,
                                     const std::string& tool, const std::string& engine) {
  if (checkpoint.engine != engine) {
    return "checkpoint engine mismatch: checkpoint was written by the '" +
           checkpoint.engine + "' engine, this campaign runs the '" + engine +
           "' engine (their RNG models are incompatible)";
  }
  if (engine == kEngineParallel && checkpoint.epoch_len != options.epoch_len) {
    return "checkpoint epoch_len mismatch: checkpoint used " +
           std::to_string(checkpoint.epoch_len) + ", this campaign uses " +
           std::to_string(options.epoch_len) +
           " (epoch length is campaign semantics; pass --epoch=" +
           std::to_string(checkpoint.epoch_len) + " to resume)";
  }
  const std::string want = FingerprintOptions(options, tool);
  if (checkpoint.fingerprint != want) {
    return "checkpoint options-fingerprint mismatch: checkpoint " +
           checkpoint.fingerprint + " vs campaign " + want +
           " (seed, kernel version, bug set, sanitize/audit/coverage flags, "
           "fault plan, or metamorph config differ)";
  }
  return "";
}

int SaveCheckpoint(const std::string& path, const CampaignCheckpoint& checkpoint) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "fingerprint " << checkpoint.fingerprint << " engine=" << checkpoint.engine
     << " epoch=" << checkpoint.epoch_len << "\n";
  os << "next_iteration " << checkpoint.next_iteration << "\n";
  os << "rng " << checkpoint.rng_state[0] << " " << checkpoint.rng_state[1] << " "
     << checkpoint.rng_state[2] << " " << checkpoint.rng_state[3] << "\n";
  serialize::SerializeStats(os, checkpoint.stats);
  serialize::SerializeCorpus(os, checkpoint.corpus);
  os << "coverage " << checkpoint.coverage_keys.size() << "\n";
  for (const std::string& key : checkpoint.coverage_keys) {
    os << "k " << Escape(key) << "\n";
  }
  // Verdict-cache counters ride outside the SerializeStats body: they are
  // resumable state but not part of the result digest (cache on/off must
  // stay digest-comparable).
  os << "vcache " << checkpoint.stats.verdict_cache_hits << " "
     << checkpoint.stats.verdict_cache_misses << "\n";
  os << "ccache " << checkpoint.stats.canonical_cache_hits << " "
     << checkpoint.stats.canonical_cache_misses << "\n";
  os << "dcache " << checkpoint.stats.decode_cache_hits << " "
     << checkpoint.stats.decode_cache_misses << " "
     << checkpoint.stats.decode_cache_evictions << "\n";
  os << "jcache " << checkpoint.stats.jit_cache_hits << " "
     << checkpoint.stats.jit_cache_misses << " "
     << checkpoint.stats.jit_cache_evictions << "\n";
  // Metamorph volume counters: same discipline as the cache counters —
  // resumable, but digest-excluded (the divergence outcomes/findings in the
  // stats body are what the oracle contributes to the result).
  os << "mmorph " << checkpoint.stats.metamorph_bases << " "
     << checkpoint.stats.metamorph_variants << " "
     << checkpoint.stats.metamorph_verdict_divergences << " "
     << checkpoint.stats.metamorph_witness_divergences << " "
     << checkpoint.stats.metamorph_sanitizer_divergences << "\n";
  // Supervisor accounting and per-worker crash findings: digest-excluded for
  // the same reason (a campaign that survived a crash must stay
  // digest-comparable to one that never crashed).
  os << "supv " << checkpoint.stats.worker_crashes << " "
     << checkpoint.stats.worker_hangs << " " << checkpoint.stats.worker_exits << " "
     << checkpoint.stats.worker_restarts << " " << checkpoint.stats.epochs_abandoned
     << " " << checkpoint.stats.quarantined_cases << "\n";
  // Conformance-prologue volume counters: digest-excluded like the cache
  // counters (the mismatch/reject findings in the stats body are the result;
  // these only describe how much corpus was driven).
  os << "conf " << checkpoint.stats.conf_cases << " " << checkpoint.stats.conf_passed
     << " " << checkpoint.stats.conf_mismatches << " " << checkpoint.stats.conf_rejects
     << " " << checkpoint.stats.conf_seeded << "\n";
  os << "crashes " << checkpoint.stats.crash_findings.size() << "\n";
  for (const Finding& finding : checkpoint.stats.crash_findings) {
    serialize::SerializeFinding(os, finding);
  }
  os << "end\n";
  // Whole-file checksum trailer: covers every byte above, including "end\n".
  // A torn write is detectable as a missing trailer; bit rot as a mismatch.
  std::string content = os.str();
  content += kSumTag + Hex64(Fnv1a(content)) + "\n";
  return AtomicWrite(path, content);
}

int LoadCheckpoint(const std::string& path, CampaignCheckpoint* out, std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open checkpoint file: " + path;
    }
    return -ENOENT;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  const std::string data = buf.str();

  // Magic first: a clear "wrong format" beats a checksum complaint when the
  // file is not a checkpoint at all (or is a pre-v2 one).
  const size_t first_nl = data.find('\n');
  const std::string magic = data.substr(0, first_nl == std::string::npos ? data.size() : first_nl);
  if (magic == kMagicV1) {
    if (error != nullptr) {
      *error = "unsupported checkpoint format '" + std::string(kMagicV1) +
               "' (this build reads v2; re-run the campaign to produce a v2 checkpoint)";
    }
    return -EINVAL;
  }
  if (magic != kMagic) {
    if (error != nullptr) {
      *error = "not a bvf checkpoint (bad magic)";
    }
    return -EINVAL;
  }

  // The file must end with the checksum trailer. Anything else means the
  // write was cut short (the atomic rename makes this near-impossible for
  // SaveCheckpoint's own output, but copies and crashes mid-copy happen).
  constexpr size_t kTrailerLen = sizeof(kSumTag) - 1 + 16 + 1;  // "sum " + hex + \n
  if (data.size() < first_nl + 1 + kTrailerLen || data.back() != '\n') {
    if (error != nullptr) {
      *error = "truncated checkpoint: missing checksum trailer (file cut short?)";
    }
    return -EINVAL;
  }
  const size_t trailer_start = data.size() - kTrailerLen;
  if (data.compare(trailer_start, sizeof(kSumTag) - 1, kSumTag) != 0 ||
      (trailer_start != 0 && data[trailer_start - 1] != '\n')) {
    if (error != nullptr) {
      *error = "truncated checkpoint: missing checksum trailer (file cut short?)";
    }
    return -EINVAL;
  }
  const std::string body = data.substr(0, trailer_start);
  const std::string want_sum = data.substr(trailer_start + sizeof(kSumTag) - 1, 16);
  if (Hex64(Fnv1a(body)) != want_sum) {
    if (error != nullptr) {
      *error = "checkpoint checksum mismatch: file is corrupt or was partially "
               "overwritten";
    }
    return -EINVAL;
  }

  std::istringstream is(body);
  Reader reader(is);
  std::string magic_line;
  std::getline(is, magic_line);  // already validated above
  CampaignCheckpoint cp;
  {
    // fingerprint <options-hash> engine=<serial|parallel> epoch=<n>
    std::istringstream ss(reader.Line("fingerprint"));
    std::string engine_field;
    std::string epoch_field;
    if (!(ss >> cp.fingerprint >> engine_field >> epoch_field) ||
        engine_field.compare(0, 7, "engine=") != 0 ||
        epoch_field.compare(0, 6, "epoch=") != 0) {
      reader.Fail("malformed fingerprint line (want '<hash> engine=<e> epoch=<n>')");
    } else {
      cp.engine = engine_field.substr(7);
      char* endp = nullptr;
      cp.epoch_len = std::strtoull(epoch_field.c_str() + 6, &endp, 10);
      if (endp == nullptr || *endp != '\0') {
        reader.Fail("malformed epoch field on fingerprint line");
      }
      if (cp.engine != kEngineSerial && cp.engine != kEngineParallel) {
        reader.Fail("unknown engine '" + cp.engine + "' on fingerprint line");
      }
    }
  }
  cp.next_iteration = static_cast<uint64_t>(reader.Fields("next_iteration", 1)[0]);
  {
    // Full-range uint64 words; parsed separately from the signed field path.
    std::istringstream ss(reader.Line("rng"));
    for (int i = 0; i < 4; ++i) {
      if (!(ss >> cp.rng_state[i])) {
        reader.Fail("malformed rng state");
      }
    }
  }
  serialize::ParseStats(reader, &cp.stats);
  serialize::ParseCorpus(reader, &cp.corpus);
  for (uint64_t i = 0, n = reader.Count("coverage"); i < n && reader.ok(); ++i) {
    cp.coverage_keys.push_back(Unescape(reader.Line("k")));
  }
  const std::vector<int64_t> vcache = reader.Fields("vcache", 2);
  cp.stats.verdict_cache_hits = static_cast<uint64_t>(vcache[0]);
  cp.stats.verdict_cache_misses = static_cast<uint64_t>(vcache[1]);
  // Optional (checkpoints predating the canonical cache level lack it).
  if (reader.PeekTag() == "ccache") {
    const std::vector<int64_t> ccache = reader.Fields("ccache", 2);
    cp.stats.canonical_cache_hits = static_cast<uint64_t>(ccache[0]);
    cp.stats.canonical_cache_misses = static_cast<uint64_t>(ccache[1]);
  }
  const std::vector<int64_t> dcache = reader.Fields("dcache", 3);
  cp.stats.decode_cache_hits = static_cast<uint64_t>(dcache[0]);
  cp.stats.decode_cache_misses = static_cast<uint64_t>(dcache[1]);
  cp.stats.decode_cache_evictions = static_cast<uint64_t>(dcache[2]);
  // Optional (checkpoints predating the JIT tier lack it).
  if (reader.PeekTag() == "jcache") {
    const std::vector<int64_t> jcache = reader.Fields("jcache", 3);
    cp.stats.jit_cache_hits = static_cast<uint64_t>(jcache[0]);
    cp.stats.jit_cache_misses = static_cast<uint64_t>(jcache[1]);
    cp.stats.jit_cache_evictions = static_cast<uint64_t>(jcache[2]);
  }
  const std::vector<int64_t> mmorph = reader.Fields("mmorph", 5);
  cp.stats.metamorph_bases = static_cast<uint64_t>(mmorph[0]);
  cp.stats.metamorph_variants = static_cast<uint64_t>(mmorph[1]);
  cp.stats.metamorph_verdict_divergences = static_cast<uint64_t>(mmorph[2]);
  cp.stats.metamorph_witness_divergences = static_cast<uint64_t>(mmorph[3]);
  cp.stats.metamorph_sanitizer_divergences = static_cast<uint64_t>(mmorph[4]);
  const std::vector<int64_t> supv = reader.Fields("supv", 6);
  cp.stats.worker_crashes = static_cast<uint64_t>(supv[0]);
  cp.stats.worker_hangs = static_cast<uint64_t>(supv[1]);
  cp.stats.worker_exits = static_cast<uint64_t>(supv[2]);
  cp.stats.worker_restarts = static_cast<uint64_t>(supv[3]);
  cp.stats.epochs_abandoned = static_cast<uint64_t>(supv[4]);
  cp.stats.quarantined_cases = static_cast<uint64_t>(supv[5]);
  // Optional (checkpoints predating the conformance subsystem lack it).
  if (reader.PeekTag() == "conf") {
    const std::vector<int64_t> conf = reader.Fields("conf", 5);
    cp.stats.conf_cases = static_cast<uint64_t>(conf[0]);
    cp.stats.conf_passed = static_cast<uint64_t>(conf[1]);
    cp.stats.conf_mismatches = static_cast<uint64_t>(conf[2]);
    cp.stats.conf_rejects = static_cast<uint64_t>(conf[3]);
    cp.stats.conf_seeded = static_cast<uint64_t>(conf[4]);
  }
  for (uint64_t i = 0, n = reader.Count("crashes"); i < n && reader.ok(); ++i) {
    Finding finding;
    serialize::ParseFinding(reader, &finding);
    if (reader.ok()) {
      cp.stats.crash_findings.push_back(std::move(finding));
    }
  }
  reader.Line("end");
  if (!reader.ok()) {
    if (error != nullptr) {
      *error = reader.error();
    }
    return -EINVAL;
  }
  *out = std::move(cp);
  return 0;
}

std::string StatsDigest(const CampaignStats& stats) {
  std::ostringstream os;
  serialize::SerializeStats(os, stats);
  return Hex64(Fnv1a(os.str()));
}

}  // namespace bvf
