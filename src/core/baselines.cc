#include "src/core/baselines.h"

#include "src/ebpf/builder.h"
#include "src/verifier/helper_protos.h"
#include "src/verifier/verifier.h"

namespace bvf {

using bpf::Insn;
using bpf::MapDef;
using bpf::MapType;
using bpf::ProgType;
using bpf::Rng;

namespace {

std::vector<MapDef> BasicMaps(Rng& rng) {
  std::vector<MapDef> maps;
  MapDef array;
  array.type = MapType::kArray;
  array.key_size = 4;
  array.value_size = static_cast<uint32_t>(8 * (1 + rng.Below(4)));
  array.max_entries = 4;
  maps.push_back(array);
  if (rng.OneIn(2)) {
    MapDef hash;
    hash.type = MapType::kHash;
    hash.key_size = 4;
    hash.value_size = 16;
    hash.max_entries = 8;
    maps.push_back(hash);
  }
  return maps;
}

uint8_t RandomReg(Rng& rng) { return static_cast<uint8_t>(rng.Below(11)); }

}  // namespace

FuzzCase SyzkallerGenerator::Generate(bpf::Rng& rng) {
  FuzzCase the_case;
  the_case.maps = BasicMaps(rng);
  static constexpr ProgType kTypes[] = {ProgType::kSocketFilter, ProgType::kKprobe,
                                        ProgType::kTracepoint, ProgType::kXdp};
  the_case.prog.type = kTypes[rng.Below(4)];

  const int n = static_cast<int>(4 + rng.Below(20));
  std::vector<Insn>& insns = the_case.prog.insns;

  // Syzkaller's descriptions initialize the argument registers from typed
  // resources before the body, so a fair share of registers is usable; the
  // body itself has no dataflow model.
  bool inited[11] = {};
  bool is_ptr[11] = {};
  inited[1] = true;   // ctx
  inited[10] = true;  // fp
  is_ptr[1] = true;
  is_ptr[10] = true;
  for (uint8_t r = 0; r <= 5; ++r) {
    if (rng.Chance(0.7)) {
      insns.push_back(bpf::MovImm(r, static_cast<int32_t>(rng.Below(256))));
      inited[r] = true;
    }
  }
  int16_t stored_off = 0;  // last initialized stack slot (0 = none yet)
  bool r1_is_ctx = true;   // until the first call clobbers R1

  auto pick_reg = [&](double inited_bias) {
    if (rng.Chance(inited_bias)) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const uint8_t r = RandomReg(rng);
        if (inited[r]) {
          return r;
        }
      }
    }
    return RandomReg(rng);
  };
  // Destination registers: syzkaller's descriptions know R10 is read-only.
  auto pick_dst = [&](double inited_bias) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const uint8_t r = pick_reg(inited_bias);
      if (r != 10) {
        return r;
      }
    }
    return static_cast<uint8_t>(rng.Below(10));
  };
  // Arithmetic operands: templated as "integer", so usually scalar-typed.
  auto pick_scalar = [&](double bias) {
    if (rng.Chance(bias)) {
      for (int attempt = 0; attempt < 10; ++attempt) {
        const uint8_t r = static_cast<uint8_t>(rng.Below(10));
        if (inited[r] && !is_ptr[r]) {
          return r;
        }
      }
    }
    return pick_dst(bias);
  };

  for (int i = 0; i < n; ++i) {
    switch (rng.Below(10)) {
      case 0: {
        const uint8_t dst = pick_dst(0.3);
        insns.push_back(bpf::MovImm(dst, static_cast<int32_t>(rng.Next())));
        inited[dst] = true;
        is_ptr[dst] = false;
        break;
      }
      case 1: {
        const uint8_t dst = pick_dst(0.3);
        const uint8_t src = pick_reg(0.85);
        insns.push_back(bpf::MovReg(dst, src));
        inited[dst] = inited[src];
        is_ptr[dst] = is_ptr[src];
        break;
      }
      case 2:
      case 3: {
        static constexpr uint8_t kOps[] = {bpf::kAluAdd, bpf::kAluSub, bpf::kAluMul,
                                           bpf::kAluAnd, bpf::kAluOr,  bpf::kAluXor,
                                           bpf::kAluRsh, bpf::kAluLsh};
        const uint8_t op = kOps[rng.Below(8)];
        const bool shift = op == bpf::kAluLsh || op == bpf::kAluRsh;
        if (rng.OneIn(2)) {
          insns.push_back(bpf::AluImm(op, pick_scalar(0.9),
                                      shift ? static_cast<int32_t>(rng.Below(64))
                                            : static_cast<int32_t>(rng.Next() & 0xffff)));
        } else {
          insns.push_back(bpf::AluReg(op, pick_scalar(0.9), pick_scalar(0.9)));
        }
        break;
      }
      case 4:  // load: mostly from the last-written stack slot, sometimes wild
        if (stored_off != 0 && rng.Chance(0.85)) {
          const uint8_t dst = pick_dst(0.3);
          insns.push_back(bpf::LoadMem(bpf::kSizeDw, dst, bpf::kR10, stored_off));
          inited[dst] = true;
          is_ptr[dst] = false;
        } else {
          insns.push_back(bpf::LoadMem(bpf::kSizeDw, pick_dst(0.3), pick_reg(0.85),
                                       static_cast<int16_t>(8 * rng.Range(-4, 4))));
        }
        break;
      case 5: {  // stack store
        const int16_t off = static_cast<int16_t>(-8 * (1 + rng.Below(8)));
        insns.push_back(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, off,
                                         static_cast<int32_t>(rng.Next() & 0xff)));
        stored_off = off;
        break;
      }
      case 6: {  // map fd load
        const int map = static_cast<int>(rng.Below(the_case.maps.size()));
        const uint8_t dst = pick_dst(0.3);
        insns.push_back(
            bpf::LdImm64Lo(dst, bpf::kPseudoMapFd, static_cast<uint64_t>(map + 1)));
        insns.push_back(bpf::LdImm64Hi(0));
        inited[dst] = true;
        is_ptr[dst] = true;
        break;
      }
      case 7: {  // helper call: templated lookup most of the time, raw otherwise
        if (rng.Chance(0.65)) {
          insns.push_back(bpf::StoreMemImm(bpf::kSizeW, bpf::kR10, -4,
                                           static_cast<int32_t>(rng.Below(8))));
          insns.push_back(bpf::LdImm64Lo(bpf::kR1, bpf::kPseudoMapFd, 1));
          insns.push_back(bpf::LdImm64Hi(0));
          insns.push_back(bpf::MovReg(bpf::kR2, bpf::kR10));
          insns.push_back(bpf::AluImm(bpf::kAluAdd, bpf::kR2, -4));
          insns.push_back(bpf::CallHelper(bpf::kHelperMapLookupElem));
          insns.push_back(bpf::MovImm(bpf::kR0, 0));
          for (int r = 1; r <= 5; ++r) {
            inited[r] = false;
          }
          inited[0] = true;
          inited[1] = true;
          is_ptr[0] = false;
          is_ptr[1] = false;
          r1_is_ctx = false;
          insns.push_back(bpf::MovImm(bpf::kR1, 0));
        } else {
          const auto helpers = bpf::AvailableHelpers(version_, the_case.prog.type);
          if (!helpers.empty()) {
            insns.push_back(bpf::CallHelper(helpers[rng.Below(helpers.size())]));
            for (int r = 1; r <= 5; ++r) {
              inited[r] = false;
            }
            inited[0] = true;
            r1_is_ctx = false;
          }
        }
        break;
      }
      case 8: {  // conditional jump with a short forward offset
        const int16_t off = static_cast<int16_t>(rng.Below(3));
        insns.push_back(bpf::JmpImm(bpf::kJmpJeq, pick_reg(0.85),
                                    static_cast<int32_t>(rng.Below(16)), off));
        break;
      }
      case 9:  // ctx load template (syzkaller knows the ctx struct layouts)
        if (r1_is_ctx && rng.OneIn(2)) {
          const bpf::CtxDescriptor& desc = bpf::CtxDescriptorFor(the_case.prog.type);
          const bpf::CtxField& field = rng.Pick(desc.fields);
          uint8_t dst = pick_dst(0.3);
          if (dst == 1) {
            dst = 6;  // don't overwrite the ctx register the template relies on
          }
          insns.push_back(bpf::LoadMem(field.size == 8 ? bpf::kSizeDw : bpf::kSizeW, dst,
                                       bpf::kR1, static_cast<int16_t>(field.off)));
          inited[dst] = true;
          // data/data_end yield packet pointers; treat them as pointers.
          is_ptr[dst] = field.special != bpf::CtxField::Special::kNone;
        } else {  // 32-bit ALU
          insns.push_back(bpf::Alu32Imm(bpf::kAluAdd, pick_scalar(0.9),
                                        static_cast<int32_t>(rng.Below(4096))));
        }
        break;
    }
  }
  insns.push_back(bpf::MovImm(bpf::kR0, 0));
  insns.push_back(bpf::MovImm(bpf::kR0, 0));
  insns.push_back(bpf::MovImm(bpf::kR0, 0));
  insns.push_back(bpf::Exit());

  the_case.test_runs = 1;
  if ((the_case.prog.type == ProgType::kKprobe ||
       the_case.prog.type == ProgType::kTracepoint) &&
      rng.OneIn(4)) {
    the_case.do_attach = true;
    the_case.attach_target = static_cast<bpf::TracepointId>(rng.Below(4));
    the_case.events.push_back(the_case.attach_target);
  }
  the_case.do_map_batch = rng.OneIn(8);
  return the_case;
}

FuzzCase BuzzerGenerator::Generate(bpf::Rng& rng) {
  FuzzCase the_case;
  the_case.maps = BasicMaps(rng);
  the_case.prog.type = ProgType::kSocketFilter;
  std::vector<Insn>& insns = the_case.prog.insns;

  if (mode_ == Mode::kRandomBytes) {
    // Near-random encodings: almost everything dies in CheckEncoding.
    const int n = static_cast<int>(4 + rng.Below(20));
    for (int i = 0; i < n; ++i) {
      Insn insn;
      insn.opcode = static_cast<uint8_t>(rng.Next());
      insn.dst = static_cast<uint8_t>(rng.Below(16));
      insn.src = static_cast<uint8_t>(rng.Below(16));
      insn.off = static_cast<int16_t>(rng.Next());
      insn.imm = static_cast<int32_t>(rng.Next());
      insns.push_back(insn);
    }
    insns.push_back(bpf::Exit());
    the_case.test_runs = 1;
    return the_case;
  }

  // ALU/JMP mode: initialize every register, then mostly ALU and forward
  // jumps over correct-by-construction regions; occasional map access.
  for (uint8_t r = 0; r <= 9; ++r) {
    insns.push_back(bpf::MovImm(r, static_cast<int32_t>(rng.Below(1024))));
  }
  // A small fraction of generated programs is malformed (bad shift widths),
  // matching the ~97% acceptance of Buzzer's well-formed mode.
  if (rng.Chance(0.03)) {
    insns.push_back(bpf::AluImm(bpf::kAluLsh, 1, 64));
  }
  const bool use_maps = rng.OneIn(4);
  const int n = static_cast<int>(16 + rng.Below(48));
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.88)) {
      if (rng.OneIn(4)) {
        // Forward jump over one instruction: always in-range since a filler
        // ALU instruction follows.
        insns.push_back(bpf::JmpImm(bpf::kJmpJgt, static_cast<uint8_t>(rng.Below(10)),
                                    static_cast<int32_t>(rng.Below(2048)), 1));
        insns.push_back(
            bpf::AluImm(bpf::kAluAdd, static_cast<uint8_t>(rng.Below(10)),
                        static_cast<int32_t>(rng.Below(64))));
      } else {
        static constexpr uint8_t kOps[] = {bpf::kAluAdd, bpf::kAluSub, bpf::kAluMul,
                                           bpf::kAluAnd, bpf::kAluOr,  bpf::kAluXor,
                                           bpf::kAluLsh, bpf::kAluRsh, bpf::kAluArsh};
        const uint8_t op = kOps[rng.Below(9)];
        const bool shift = op == bpf::kAluLsh || op == bpf::kAluRsh || op == bpf::kAluArsh;
        if (rng.OneIn(2)) {
          insns.push_back(bpf::AluImm(op, static_cast<uint8_t>(rng.Below(10)),
                                      shift ? static_cast<int32_t>(rng.Below(64))
                                            : static_cast<int32_t>(rng.Next() & 0xffff)));
        } else {
          insns.push_back(bpf::AluReg(op, static_cast<uint8_t>(rng.Below(10)),
                                      static_cast<uint8_t>(rng.Below(10))));
        }
      }
    } else if (!use_maps || rng.Chance(0.8)) {
      // Stack traffic.
      const int16_t off = static_cast<int16_t>(-8 * (1 + rng.Below(4)));
      insns.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10,
                                       static_cast<uint8_t>(rng.Below(10)), off));
      insns.push_back(bpf::LoadMem(bpf::kSizeDw, static_cast<uint8_t>(rng.Below(10)),
                                   bpf::kR10, off));
    } else {
      // Simple map element update via the lookup pattern.
      insns.push_back(bpf::StoreMemImm(bpf::kSizeW, bpf::kR10, -4, 0));
      insns.push_back(bpf::LdImm64Lo(bpf::kR1, bpf::kPseudoMapFd, 1));
      insns.push_back(bpf::LdImm64Hi(0));
      insns.push_back(bpf::MovReg(bpf::kR2, bpf::kR10));
      insns.push_back(bpf::AluImm(bpf::kAluAdd, bpf::kR2, -4));
      insns.push_back(bpf::CallHelper(bpf::kHelperMapLookupElem));
      insns.push_back(bpf::JmpImm(bpf::kJmpJeq, bpf::kR0, 0, 1));
      insns.push_back(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR0, 0, 1));
      // Re-establish the all-initialized, all-scalar register file (the
      // pointer left in r0 must not leak into the ALU mix).
      for (uint8_t r = 0; r <= 5; ++r) {
        insns.push_back(bpf::MovImm(r, static_cast<int32_t>(rng.Below(64))));
      }
    }
  }
  insns.push_back(bpf::MovImm(bpf::kR0, 0));
  insns.push_back(bpf::Exit());
  the_case.test_runs = 1;
  return the_case;
}

}  // namespace bvf
