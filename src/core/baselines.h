// Baseline generators used in the paper's comparison (§6):
//
//  * SyzkallerGenerator — models syzkaller's bpf descriptions: instructions
//    are individually well-formed (drawn from typed templates), but there is
//    no cross-instruction state model, so programs routinely read
//    uninitialized registers, jump badly, or feed helpers garbage. Measured
//    acceptance in the paper: 23.5%.
//  * BuzzerGenerator — two modes: kRandomBytes (near-random encodings, ~1%
//    acceptance) and kAluJmp (well-formed ALU/JMP-heavy programs, ~97%
//    acceptance, >88% ALU+JMP instruction share, little else exercised).

#ifndef SRC_CORE_BASELINES_H_
#define SRC_CORE_BASELINES_H_

#include "src/core/generator.h"
#include "src/verifier/kernel_version.h"

namespace bvf {

class SyzkallerGenerator : public Generator {
 public:
  explicit SyzkallerGenerator(bpf::KernelVersion version) : version_(version) {}
  const char* name() const override { return "syzkaller"; }
  FuzzCase Generate(bpf::Rng& rng) override;
  std::unique_ptr<Generator> Clone() const override {
    return std::make_unique<SyzkallerGenerator>(version_);
  }

 private:
  bpf::KernelVersion version_;
};

class BuzzerGenerator : public Generator {
 public:
  enum class Mode { kRandomBytes, kAluJmp };

  explicit BuzzerGenerator(bpf::KernelVersion version, Mode mode = Mode::kAluJmp)
      : version_(version), mode_(mode) {}
  const char* name() const override {
    return mode_ == Mode::kAluJmp ? "buzzer" : "buzzer-random";
  }
  FuzzCase Generate(bpf::Rng& rng) override;
  std::unique_ptr<Generator> Clone() const override {
    return std::make_unique<BuzzerGenerator>(version_, mode_);
  }

 private:
  bpf::KernelVersion version_;
  Mode mode_;
};

}  // namespace bvf

#endif  // SRC_CORE_BASELINES_H_
