#include "src/core/oracle.h"

#include <cstdlib>

namespace bvf {

using bpf::ReportKind;

const char* KnownBugName(KnownBug bug) {
  switch (bug) {
    case KnownBug::kUnknown:
      return "unknown";
    case KnownBug::kBug1NullnessPropagation:
      return "#1 verifier: incorrect nullness propagation of pointer comparisons";
    case KnownBug::kBug2TaskStructBounds:
      return "#2 verifier: incorrect task_struct access validation";
    case KnownBug::kBug3KfuncBacktrack:
      return "#3 verifier: incorrect check on kfunc call operations";
    case KnownBug::kBug4TracePrintkRecursion:
      return "#4 verifier: missing check on programs attached to bpf_trace_printk";
    case KnownBug::kBug5ContentionBegin:
      return "#5 verifier: missing validation on contention_begin";
    case KnownBug::kBug6SendSignal:
      return "#6 verifier: missing strict checking on signal sending";
    case KnownBug::kBug7DispatcherSync:
      return "#7 dispatcher: missing sync between update and execution";
    case KnownBug::kBug8Kmemdup:
      return "#8 syscall: incorrect use of kmemdup()";
    case KnownBug::kBug9BucketIteration:
      return "#9 map: incorrect bucket iterating on lock-acquire failure";
    case KnownBug::kBug10IrqWork:
      return "#10 helper: incorrect use of irq_work_queue";
    case KnownBug::kBug11XdpOffload:
      return "#11 xdp: device program executed on host";
    case KnownBug::kCve2022_23222:
      return "CVE-2022-23222: ALU on nullable pointers";
    case KnownBug::kBug12Jmp32SignedRefine:
      return "#12 verifier: jmp32 unsigned refinement corrupts signed-32 bounds";
    case KnownBug::kBug13LdImm64Pessimize:
      return "#13 verifier: ld_imm64 drops small-constant tracking (spurious rejection)";
  }
  return "unknown";
}

const char* ConfirmationName(Confirmation confirmation) {
  switch (confirmation) {
    case Confirmation::kUnconfirmed:
      return "unconfirmed";
    case Confirmation::kDeterministic:
      return "deterministic";
    case Confirmation::kFaultDependent:
      return "fault-dependent";
    case Confirmation::kFlaky:
      return "flaky";
  }
  return "unconfirmed";
}

namespace {

// Extracts the faulting address from "... at 0x................" details.
uint64_t AddressFromDetails(const std::string& details) {
  const size_t pos = details.find(" at 0x");
  if (pos == std::string::npos) {
    return 0;
  }
  return strtoull(details.c_str() + pos + 4, nullptr, 16);
}

}  // namespace

KnownBug TriageReport(const bpf::KernelReport& report) {
  const std::string& where = report.title;
  const std::string& details = report.details;
  switch (report.kind) {
    case ReportKind::kBpfAsanNullDeref:
      // Nullness-propagation derefs hit page zero exactly; a nonzero offset
      // into the null page means arithmetic happened on the nullable pointer
      // before the check — the CVE-2022-23222 shape.
      if (AddressFromDetails(details) != 0) {
        return KnownBug::kCve2022_23222;
      }
      return KnownBug::kBug1NullnessPropagation;
    case ReportKind::kBpfAsanOob:
    case ReportKind::kBpfAsanWild:
      if (details.find("task_struct") != std::string::npos ||
          details.find("mm_struct") != std::string::npos ||
          details.find("file") != std::string::npos) {
        return KnownBug::kBug2TaskStructBounds;
      }
      return KnownBug::kCve2022_23222;
    case ReportKind::kAluLimitViolation:
      return KnownBug::kBug3KfuncBacktrack;
    case ReportKind::kLockdepRecursion:
    case ReportKind::kLockdepInconsistent:
    case ReportKind::kLockdepDeadlock:
      if (where.find("trace_printk") != std::string::npos) {
        return KnownBug::kBug4TracePrintkRecursion;
      }
      if (where.find("task_storage") != std::string::npos) {
        return KnownBug::kBug5ContentionBegin;
      }
      if (where.find("rq_lock") != std::string::npos) {
        return KnownBug::kBug10IrqWork;
      }
      return KnownBug::kUnknown;
    case ReportKind::kStackOverflow:
      if (where.find("trace_printk") != std::string::npos) {
        return KnownBug::kBug4TracePrintkRecursion;
      }
      if (where.find("contention_begin") != std::string::npos) {
        return KnownBug::kBug5ContentionBegin;
      }
      return KnownBug::kUnknown;
    case ReportKind::kPanic:
      if (where.find("send_signal") != std::string::npos) {
        return KnownBug::kBug6SendSignal;
      }
      return KnownBug::kUnknown;
    case ReportKind::kKasanNullDeref:
      if (where.find("dispatcher") != std::string::npos) {
        return KnownBug::kBug7DispatcherSync;
      }
      if (AddressFromDetails(details) != 0) {
        return KnownBug::kCve2022_23222;
      }
      return KnownBug::kBug1NullnessPropagation;
    case ReportKind::kWarn:
      if (where.find("bpf_prog_load") != std::string::npos &&
          details.find("kmemdup") != std::string::npos) {
        return KnownBug::kBug8Kmemdup;
      }
      if (where.find("xdp_do_generic") != std::string::npos) {
        return KnownBug::kBug11XdpOffload;
      }
      return KnownBug::kUnknown;
    case ReportKind::kKasanOob:
    case ReportKind::kKasanUseAfterFree:
      if (where.find("htab") != std::string::npos) {
        return KnownBug::kBug9BucketIteration;
      }
      return KnownBug::kUnknown;
    case ReportKind::kPageFault:
      // Native wild access: real, but without sanitation metadata the root
      // cause is ambiguous — left to manual triage as in the paper.
      return KnownBug::kUnknown;
    case ReportKind::kStateAuditViolation:
      // A violated 32-bit signed claim is the bug #12 shape (jmp32 refinement
      // writing s32_min without truth); 64-bit range/tnum misses match the
      // stale-bounds shape of bug #3 (missed backtrack invalidation).
      if (where.find("s32_") != std::string::npos) {
        return KnownBug::kBug12Jmp32SignedRefine;
      }
      return KnownBug::kBug3KfuncBacktrack;
    default:
      return KnownBug::kUnknown;
  }
}

std::vector<Finding> ClassifyReports(const bpf::ReportSink& sink, size_t watermark,
                                     uint64_t iteration) {
  std::vector<Finding> findings;
  const auto& reports = sink.reports();
  for (size_t i = watermark; i < reports.size(); ++i) {
    const bpf::KernelReport& report = reports[i];
    Finding finding;
    finding.kind = report.kind;
    finding.signature = report.Signature();
    finding.details = report.details;
    finding.indicator =
        bpf::IsIndicator1(report.kind) ? 1 : bpf::IsIndicator3(report.kind) ? 3 : 2;
    finding.triaged = TriageReport(report);
    finding.iteration = iteration;
    findings.push_back(std::move(finding));
  }
  return findings;
}

}  // namespace bvf
