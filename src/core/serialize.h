// Line-oriented campaign serialization shared by the checkpoint format
// (src/core/checkpoint.cc), the write-ahead findings journal
// (src/core/journal), and the supervisor's pipe protocol
// (src/core/supervisor/wire.cc). One grammar, three transports: a FuzzCase,
// a Finding, or a stats body serializes to the same bytes whether it lands
// in a checkpoint file, a journal record, or an epoch-result frame, so the
// formats cannot drift apart.
//
// Strings live to end-of-line after their tag; only line-structure
// characters (backslash, newline, carriage return) are escaped.

#ifndef SRC_CORE_SERIALIZE_H_
#define SRC_CORE_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/fuzzer.h"

namespace bvf {
namespace serialize {

uint64_t Fnv1a(const std::string& data);
std::string Hex64(uint64_t value);

std::string Escape(const std::string& s);
std::string Unescape(const std::string& s);

// Line reader with tag validation; records the first error and makes every
// subsequent read a no-op so parse code stays linear.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
    }
  }

  // Reads one line, checks its tag, and returns the remainder after the tag
  // (without leading space). Empty optional-style: "" on failure.
  std::string Line(const std::string& tag);

  // Parses space-separated integer fields from a tagged line.
  std::vector<int64_t> Fields(const std::string& tag, size_t count);

  // Tag of the next line without consuming it ("" at EOF/after an error).
  // Lets parsers accept files from before an optional line existed: peek,
  // and only consume when the tag matches.
  std::string PeekTag();

  // A one-field line holding a plausible element count.
  uint64_t Count(const std::string& tag);

 private:
  std::istream& is_;
  std::string error_;
};

// Canonical stats body shared by checkpoint files, StatsDigest, and the
// supervisor's epoch-result frames. Excludes stats.options (covered by the
// fingerprint), the digest-excluded counters (caches, metamorph volume,
// supervisor accounting — each rides its own checkpoint line), and the
// resume bookkeeping fields.
void SerializeStats(std::ostream& os, const CampaignStats& stats);
void ParseStats(Reader& reader, CampaignStats* stats);

// One fuzz case ("case" header + i/m/ev lines).
void SerializeCase(std::ostream& os, const FuzzCase& fc);
void ParseCase(Reader& reader, FuzzCase* fc);

// A corpus: "corpus <n>" followed by n cases.
void SerializeCorpus(std::ostream& os, const std::vector<FuzzCase>& corpus);
void ParseCorpus(Reader& reader, std::vector<FuzzCase>* corpus);

// One finding (f/fs/fd triplet, the same shape the stats body uses).
void SerializeFinding(std::ostream& os, const Finding& finding);
void ParseFinding(Reader& reader, Finding* finding);

}  // namespace serialize
}  // namespace bvf

#endif  // SRC_CORE_SERIALIZE_H_
