#include "src/core/serialize.h"

#include <cstdio>
#include <sstream>

namespace bvf {
namespace serialize {

uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string Hex64(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        default:
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string Reader::Line(const std::string& tag) {
  if (!ok()) {
    return "";
  }
  std::string line;
  if (!std::getline(is_, line)) {
    Fail("unexpected end of file, wanted '" + tag + "'");
    return "";
  }
  if (line.compare(0, tag.size(), tag) != 0 ||
      (line.size() > tag.size() && line[tag.size()] != ' ')) {
    Fail("malformed line, wanted '" + tag + "': " + line);
    return "";
  }
  return line.size() > tag.size() ? line.substr(tag.size() + 1) : "";
}

std::vector<int64_t> Reader::Fields(const std::string& tag, size_t count) {
  std::vector<int64_t> out;
  std::istringstream ss(Line(tag));
  int64_t value = 0;
  while (ss >> value) {
    out.push_back(value);
  }
  if (ok() && out.size() != count) {
    Fail("field count mismatch on '" + tag + "'");
  }
  out.resize(count, 0);
  return out;
}

std::string Reader::PeekTag() {
  if (!ok()) {
    return "";
  }
  const std::istream::pos_type pos = is_.tellg();
  std::string line;
  if (!std::getline(is_, line)) {
    is_.clear();
    is_.seekg(pos);
    return "";
  }
  is_.seekg(pos);
  const size_t space = line.find(' ');
  return space == std::string::npos ? line : line.substr(0, space);
}

uint64_t Reader::Count(const std::string& tag) {
  const std::vector<int64_t> fields = Fields(tag, 1);
  if (ok() && fields[0] < 0) {
    Fail("negative count on '" + tag + "'");
    return 0;
  }
  // Refuse absurd counts so a corrupt file can't balloon allocation.
  if (ok() && fields[0] > (1ll << 24)) {
    Fail("implausible count on '" + tag + "'");
    return 0;
  }
  return ok() ? static_cast<uint64_t>(fields[0]) : 0;
}

void SerializeFinding(std::ostream& os, const Finding& finding) {
  os << "f " << static_cast<int>(finding.kind) << " " << finding.indicator << " "
     << static_cast<int>(finding.triaged) << " " << finding.iteration << " "
     << static_cast<int>(finding.confirmation) << " " << finding.confirm_hits << " "
     << finding.confirm_runs << "\n";
  os << "fs " << Escape(finding.signature) << "\n";
  os << "fd " << Escape(finding.details) << "\n";
}

void ParseFinding(Reader& reader, Finding* finding) {
  const std::vector<int64_t> fields = reader.Fields("f", 7);
  finding->kind = static_cast<bpf::ReportKind>(fields[0]);
  finding->indicator = static_cast<int>(fields[1]);
  finding->triaged = static_cast<KnownBug>(fields[2]);
  finding->iteration = fields[3];
  finding->confirmation = static_cast<Confirmation>(fields[4]);
  finding->confirm_hits = static_cast<int>(fields[5]);
  finding->confirm_runs = static_cast<int>(fields[6]);
  finding->signature = Unescape(reader.Line("fs"));
  finding->details = Unescape(reader.Line("fd"));
}

void SerializeStats(std::ostream& os, const CampaignStats& stats) {
  os << "tool " << Escape(stats.tool) << "\n";
  os << "counters " << stats.iterations << " " << stats.accepted << " " << stats.rejected
     << " " << stats.exec_runs << " " << stats.exec_failures << " " << stats.panics << " "
     << stats.substrate_rebuilds << " " << stats.fault_injected << " " << stats.insns_total
     << " " << stats.insns_alu_jmp << " " << stats.insns_mem << " " << stats.insns_call
     << " " << stats.final_coverage << "\n";
  os << "reject_errno " << stats.reject_errno.size() << "\n";
  for (const auto& [err, count] : stats.reject_errno) {
    os << "e " << err << " " << count << "\n";
  }
  os << "exec_errno " << stats.exec_errno.size() << "\n";
  for (const auto& [err, count] : stats.exec_errno) {
    os << "x " << err << " " << count << "\n";
  }
  os << "outcomes " << stats.outcomes.size() << "\n";
  for (const auto& [outcome, count] : stats.outcomes) {
    os << "o " << static_cast<int>(outcome) << " " << count << "\n";
  }
  os << "sanitizer " << stats.sanitizer.programs << " " << stats.sanitizer.insns_before
     << " " << stats.sanitizer.insns_after << " " << stats.sanitizer.mem_sites << " "
     << stats.sanitizer.alu_sites << " " << stats.sanitizer.skipped_fp << " "
     << stats.sanitizer.skipped_rewritten << "\n";
  os << "curve " << stats.curve.size() << "\n";
  for (const CoveragePoint& point : stats.curve) {
    os << "c " << point.iteration << " " << point.covered << "\n";
  }
  os << "findings " << stats.findings.size() << "\n";
  for (const Finding& finding : stats.findings) {
    SerializeFinding(os, finding);
  }
}

void ParseStats(Reader& reader, CampaignStats* stats) {
  stats->tool = Unescape(reader.Line("tool"));
  const std::vector<int64_t> counters = reader.Fields("counters", 13);
  stats->iterations = counters[0];
  stats->accepted = counters[1];
  stats->rejected = counters[2];
  stats->exec_runs = counters[3];
  stats->exec_failures = counters[4];
  stats->panics = counters[5];
  stats->substrate_rebuilds = counters[6];
  stats->fault_injected = counters[7];
  stats->insns_total = counters[8];
  stats->insns_alu_jmp = counters[9];
  stats->insns_mem = counters[10];
  stats->insns_call = counters[11];
  stats->final_coverage = counters[12];
  for (uint64_t i = 0, n = reader.Count("reject_errno"); i < n && reader.ok(); ++i) {
    const std::vector<int64_t> kv = reader.Fields("e", 2);
    stats->reject_errno[static_cast<int>(kv[0])] = kv[1];
  }
  for (uint64_t i = 0, n = reader.Count("exec_errno"); i < n && reader.ok(); ++i) {
    const std::vector<int64_t> kv = reader.Fields("x", 2);
    stats->exec_errno[static_cast<int>(kv[0])] = kv[1];
  }
  for (uint64_t i = 0, n = reader.Count("outcomes"); i < n && reader.ok(); ++i) {
    const std::vector<int64_t> kv = reader.Fields("o", 2);
    stats->outcomes[static_cast<CaseOutcome>(kv[0])] = kv[1];
  }
  const std::vector<int64_t> san = reader.Fields("sanitizer", 7);
  stats->sanitizer.programs = san[0];
  stats->sanitizer.insns_before = san[1];
  stats->sanitizer.insns_after = san[2];
  stats->sanitizer.mem_sites = san[3];
  stats->sanitizer.alu_sites = san[4];
  stats->sanitizer.skipped_fp = san[5];
  stats->sanitizer.skipped_rewritten = san[6];
  for (uint64_t i = 0, n = reader.Count("curve"); i < n && reader.ok(); ++i) {
    const std::vector<int64_t> point = reader.Fields("c", 2);
    stats->curve.push_back(
        CoveragePoint{static_cast<uint64_t>(point[0]), static_cast<size_t>(point[1])});
  }
  for (uint64_t i = 0, n = reader.Count("findings"); i < n && reader.ok(); ++i) {
    Finding finding;
    ParseFinding(reader, &finding);
    if (reader.ok()) {
      stats->finding_signatures.insert(finding.signature);
      stats->findings.push_back(std::move(finding));
    }
  }
}

void SerializeCase(std::ostream& os, const FuzzCase& fc) {
  os << "case " << static_cast<int>(fc.prog.type) << " "
     << (fc.prog.offload_requested ? 1 : 0) << " " << fc.prog.insns.size() << " "
     << fc.maps.size() << " " << fc.test_runs << " " << (fc.do_attach ? 1 : 0) << " "
     << static_cast<int>(fc.attach_target) << " " << fc.events.size() << " "
     << (fc.do_xdp_install ? 1 : 0) << " " << (fc.do_map_batch ? 1 : 0) << "\n";
  for (const bpf::Insn& insn : fc.prog.insns) {
    os << "i " << static_cast<int>(insn.opcode) << " " << static_cast<int>(insn.dst)
       << " " << static_cast<int>(insn.src) << " " << insn.off << " " << insn.imm
       << "\n";
  }
  for (const bpf::MapDef& def : fc.maps) {
    os << "m " << static_cast<int>(def.type) << " " << def.key_size << " "
       << def.value_size << " " << def.max_entries << "\n";
  }
  for (const bpf::TracepointId event : fc.events) {
    os << "ev " << static_cast<int>(event) << "\n";
  }
}

void ParseCase(Reader& reader, FuzzCase* fc) {
  const std::vector<int64_t> header = reader.Fields("case", 10);
  fc->prog.type = static_cast<bpf::ProgType>(header[0]);
  fc->prog.offload_requested = header[1] != 0;
  fc->test_runs = static_cast<int>(header[4]);
  fc->do_attach = header[5] != 0;
  fc->attach_target = static_cast<bpf::TracepointId>(header[6]);
  fc->do_xdp_install = header[8] != 0;
  fc->do_map_batch = header[9] != 0;
  for (int64_t k = 0; k < header[2] && reader.ok(); ++k) {
    const std::vector<int64_t> fields = reader.Fields("i", 5);
    bpf::Insn insn;
    insn.opcode = static_cast<uint8_t>(fields[0]);
    insn.dst = static_cast<uint8_t>(fields[1]);
    insn.src = static_cast<uint8_t>(fields[2]);
    insn.off = static_cast<int16_t>(fields[3]);
    insn.imm = static_cast<int32_t>(fields[4]);
    fc->prog.insns.push_back(insn);
  }
  for (int64_t k = 0; k < header[3] && reader.ok(); ++k) {
    const std::vector<int64_t> fields = reader.Fields("m", 4);
    bpf::MapDef def;
    def.type = static_cast<bpf::MapType>(fields[0]);
    def.key_size = static_cast<uint32_t>(fields[1]);
    def.value_size = static_cast<uint32_t>(fields[2]);
    def.max_entries = static_cast<uint32_t>(fields[3]);
    fc->maps.push_back(def);
  }
  for (int64_t k = 0; k < header[7] && reader.ok(); ++k) {
    const std::vector<int64_t> fields = reader.Fields("ev", 1);
    fc->events.push_back(static_cast<bpf::TracepointId>(fields[0]));
  }
}

void SerializeCorpus(std::ostream& os, const std::vector<FuzzCase>& corpus) {
  os << "corpus " << corpus.size() << "\n";
  for (const FuzzCase& fc : corpus) {
    SerializeCase(os, fc);
  }
}

void ParseCorpus(Reader& reader, std::vector<FuzzCase>* corpus) {
  for (uint64_t i = 0, n = reader.Count("corpus"); i < n && reader.ok(); ++i) {
    FuzzCase fc;
    ParseCase(reader, &fc);
    if (reader.ok()) {
      corpus->push_back(std::move(fc));
    }
  }
}

}  // namespace serialize
}  // namespace bvf
