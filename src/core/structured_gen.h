// Structured eBPF program generation (paper §4.1, Fig. 4).
//
// Programs are partitioned into an init header (register initialization from
// the pool of loadable objects), a framed body (a sequence of basic / jump /
// call frames, frames chosen with equal probability, jump frames nesting
// other frames), and an end section (valid exit). A lightweight register-
// state model mirrors the verifier's view coarsely so that most emitted
// operations are legal, while controlled "risky" choices keep pressure on
// the verifier's checks (the measured ~49% acceptance of §6.3).

#ifndef SRC_CORE_STRUCTURED_GEN_H_
#define SRC_CORE_STRUCTURED_GEN_H_

#include <cstdint>
#include <vector>

#include "src/core/generator.h"
#include "src/verifier/kernel_version.h"

namespace bvf {

struct StructuredGenOptions {
  // Ablation switches (bench_ablation_structure).
  bool init_header = true;
  bool call_frames = true;
  bool jump_frames = true;
  bool risky = true;  // boundary offsets, skipped null checks, CVE patterns

  int max_body_frames = 6;
  int max_jump_depth = 2;

  // Filter out generated/mutated programs the bytecode lints prove the
  // verifier must reject (unreachable code, uninitialized reads): a
  // certain -EINVAL load wastes the iteration's verification+execution
  // budget. Generation retries a couple of times; mutation reverts.
  bool lint_filter = true;
};

class StructuredGenerator : public Generator {
 public:
  StructuredGenerator(bpf::KernelVersion version, StructuredGenOptions options = {})
      : version_(version), options_(options) {}

  const char* name() const override { return "bvf"; }
  FuzzCase Generate(bpf::Rng& rng) override;
  void Mutate(bpf::Rng& rng, FuzzCase& the_case) override;
  std::unique_ptr<Generator> Clone() const override {
    return std::make_unique<StructuredGenerator>(version_, options_);
  }

 private:
  FuzzCase GenerateOnce(bpf::Rng& rng);

  bpf::KernelVersion version_;
  StructuredGenOptions options_;
};

}  // namespace bvf

#endif  // SRC_CORE_STRUCTURED_GEN_H_
