// Shared epoch-shard machinery (DESIGN.md §9, §12).
//
// Two campaign engines run the same sharded epoch discipline: ParallelFuzzer
// (worker threads, src/core/parallel.cc) and SupervisedFuzzer (worker
// processes, src/core/supervisor/). Bit-identical StatsDigests across the two
// — and across job counts within each — depend on the shard loop and the
// barrier merge being literally the same code, so both live here and the
// engines only differ in transport (shared memory vs pipe frames).
//
// Contract for one epoch, for any engine:
//  * every worker sees the same frozen epoch-start snapshots (committed
//    coverage, corpus, finding signatures);
//  * iteration i of an epoch starting at s runs on shard (i - s) % jobs with
//    RNG seeded CaseSeed(campaign_seed, i) — no cross-iteration state;
//  * the coordinator merges shard output in iteration order at the barrier.

#ifndef SRC_CORE_EPOCH_H_
#define SRC_CORE_EPOCH_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/core/fuzzer.h"
#include "src/kernel/coverage.h"

namespace bvf {

// Per-iteration RNG seed: a splitmix64-style mix of the campaign seed and the
// absolute iteration number. Deliberately a different stream than
// bpf::FaultSeed (different pre-mix constants), so a case's generation
// randomness and its fault schedule stay decorrelated.
inline uint64_t CaseSeed(uint64_t campaign_seed, uint64_t iteration) {
  uint64_t z = (campaign_seed ^ 0x6a09e667f3bcc909ull) +
               iteration * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Everything one shard produced for one iteration that the barrier merge has
// to order by iteration number. Pure counters do not need ordering and travel
// separately (EpochShardResult::partial).
struct CaseRecord {
  uint64_t iteration = 0;
  bool corpus_candidate = false;
  FuzzCase the_case;              // stored only when corpus_candidate
  std::vector<Finding> findings;  // already confirmed (see epoch rule below)
};

struct EpochShardResult {
  // Order-independent counters for this shard's slice of the epoch. The
  // sanitizer field holds this epoch's *delta* (not a cumulative total), so
  // the merge is a plain Add and survives a worker process being re-forked.
  CampaignStats partial;
  std::vector<CaseRecord> records;  // iteration-ascending (the shard strides up)
};

// Optional per-case instrumentation. The supervised worker uses on_case_begin
// as its heartbeat (and to stage the in-flight case for quarantine
// forensics), and skip to suppress poisoned iterations after an epoch is
// abandoned. The in-process engine passes neither.
struct EpochShardHooks {
  std::function<void(uint64_t iteration, const FuzzCase& the_case)> on_case_begin;
  std::function<bool(uint64_t iteration)> skip;
};

// Runs iterations start+index, start+index+jobs, ... ≤ end through |runner|.
// |corpus| and |frozen_sigs| are the epoch-start snapshots; |sink| must be
// installed as the calling thread's coverage sink. Findings are confirmed iff
// their signature was unknown at epoch start AND this is the shard's first
// local occurrence this epoch: the merge keeps the globally earliest
// occurrence per signature, and the globally earliest is always its shard's
// first local occurrence — so every finding the merge keeps carries a
// confirmation, for any job count. Skipped iterations contribute nothing (not
// even an iterations tick): they did not run.
void RunEpochShard(const CampaignOptions& options, Generator& gen, CaseRunner& runner,
                   bpf::CoverageSink& sink, const std::vector<FuzzCase>& corpus,
                   const std::set<std::string>& frozen_sigs, int index, int jobs,
                   uint64_t start, uint64_t end, EpochShardResult& out,
                   const EpochShardHooks& hooks = {});

// Sums the order-independent counter fields of |partial| into |into|
// (including the per-epoch sanitizer delta) and clears |partial| for the next
// epoch. Findings/corpus/curve/coverage merge separately, in iteration order.
void MergeEpochCounters(CampaignStats& into, CampaignStats& partial);

// Barrier step: folds case records (across all shards of one epoch) into the
// campaign in iteration order — findings deduped by signature, corpus growth
// capped at 512. Sorts |records| internally; pointers must stay valid for the
// call only.
void MergeEpochRecords(std::vector<CaseRecord*> records, CampaignStats& stats,
                       std::vector<FuzzCase>& corpus);

// Barrier step: epoch-quantized coverage-curve points. Every sample point
// inside (next_iteration .. epoch_end] reports |covered|, the committed count
// after this epoch's merge.
void AppendEpochCurve(CampaignStats& stats, uint64_t next_iteration, uint64_t epoch_end,
                      uint64_t sample_every, size_t covered);

}  // namespace bvf

#endif  // SRC_CORE_EPOCH_H_
