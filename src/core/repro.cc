#include "src/core/repro.h"

#include <cstdio>
#include <cstring>

#include "src/analysis/cfg.h"
#include "src/analysis/lints.h"
#include "src/analysis/liveness.h"
#include "src/analysis/state_audit.h"
#include "src/core/metamorph/metamorph.h"
#include "src/core/oracle.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bvf {

std::set<std::string> ExecuteCase(const FuzzCase& the_case, const CampaignOptions& options,
                                  bool* accepted_out) {
  bpf::Kernel kernel(options.version, options.bugs, options.arena_size);
  bpf::Bpf bpf(kernel);
  Sanitizer sanitizer;
  if (options.sanitize) {
    bpf::BpfAsan::Register(kernel);
    bpf.set_instrument(sanitizer.Hook());
  }
  if (options.audit_state) {
    bpf.set_exec_observer(
        [&kernel](const bpf::LoadedProgram& prog, const bpf::WitnessTrace& trace) {
          AuditAndReport(prog, trace, kernel.reports());
        });
  }
  for (const bpf::MapDef& def : the_case.maps) {
    const int fd = bpf.MapCreate(def);
    if (fd < 0) {
      continue;
    }
    if (def.type == bpf::MapType::kHash || def.type == bpf::MapType::kArray) {
      for (uint32_t k = 0; k < 2 && k < def.max_entries; ++k) {
        std::vector<uint8_t> key(def.key_size, 0);
        std::memcpy(key.data(), &k, std::min<size_t>(sizeof(k), key.size()));
        std::vector<uint8_t> value(def.value_size, 0);
        bpf.MapUpdateElem(fd, key.data(), value.data());
      }
    }
  }

  const int prog_fd = bpf.ProgLoad(the_case.prog);
  if (accepted_out != nullptr) {
    *accepted_out = prog_fd > 0;
  }
  if (prog_fd > 0) {
    for (int run = 0; run < the_case.test_runs; ++run) {
      bpf.ProgTestRun(prog_fd, static_cast<uint32_t>(32 + 16 * run),
                      static_cast<uint64_t>(run));
    }
    if (the_case.do_attach && bpf.ProgAttach(prog_fd, the_case.attach_target) == 0) {
      for (bpf::TracepointId event : the_case.events) {
        bpf.FireEvent(event);
      }
      bpf.ProgTestRun(prog_fd, 64, 0);
      bpf.DetachAll();
    }
    if (the_case.do_xdp_install && the_case.prog.type == bpf::ProgType::kXdp &&
        bpf.XdpInstall(prog_fd) == 0) {
      bpf.XdpRun(64, 0);
      bpf.XdpRun(96, 1);
    }
    if (the_case.do_map_batch) {
      for (const auto& map : kernel.maps().maps()) {
        if (map->def().type == bpf::MapType::kHash) {
          for (int round = 0; round < 4; ++round) {
            bpf.MapLookupBatch(map->id(), 16);
          }
        }
      }
    }
  }

  std::set<std::string> signatures;
  for (const bpf::KernelReport& report : kernel.reports().reports()) {
    signatures.insert(report.Signature());
  }

  // Indicator #4 replay: variant derivation depends only on (seed, program,
  // k), so re-examining here reproduces exactly the campaign's divergences —
  // which is what lets MinimizeCase shrink a metamorph finding like any
  // other.
  if (options.metamorph && prog_fd > 0) {
    const MetamorphOracle oracle(options);
    for (const Finding& finding : oracle.Examine(the_case, 0).findings) {
      signatures.insert(finding.signature);
    }
  }
  return signatures;
}

std::string AnalyzeCase(const FuzzCase& the_case, const CampaignOptions& options) {
  std::string out;

  // Static view: CFG, lints, entry liveness.
  const Cfg cfg = BuildCfg(the_case.prog);
  out += "== CFG ==\n";
  out += cfg.ToString(the_case.prog);
  const LintReport lints = LintProgram(the_case.prog);
  out += "== lints ==\n";
  out += lints.lints.empty() ? "(clean)\n" : lints.ToString();
  const LivenessResult live = ComputeLiveness(the_case.prog, cfg);
  if (!live.live_in.empty()) {
    out += "== liveness ==\nlive at entry:";
    for (int r = 0; r < bpf::kNumProgRegs; ++r) {
      if (live.live_in[0] & RegBit(r)) {
        char buf[8];
        snprintf(buf, sizeof(buf), " R%d", r);
        out += buf;
      }
    }
    out += '\n';
  }

  // Dynamic view: re-execute with the witness audit and dump violations.
  out += "== state audit ==\n";
  bpf::Kernel kernel(options.version, options.bugs, options.arena_size);
  bpf::Bpf bpf(kernel);
  Sanitizer sanitizer;
  if (options.sanitize) {
    bpf::BpfAsan::Register(kernel);
    bpf.set_instrument(sanitizer.Hook());
  }
  std::vector<StateViolation> violations;
  bpf.set_exec_observer(
      [&violations](const bpf::LoadedProgram& prog, const bpf::WitnessTrace& trace) {
        std::vector<StateViolation> found = AuditWitnessTrace(prog, trace);
        violations.insert(violations.end(), found.begin(), found.end());
      });
  const int prog_fd = bpf.ProgLoad(the_case.prog);
  if (prog_fd <= 0) {
    char buf[64];
    snprintf(buf, sizeof(buf), "(program rejected by verifier: errno %d)\n", -prog_fd);
    out += buf;
    return out;
  }
  for (int run = 0; run < the_case.test_runs; ++run) {
    bpf.ProgTestRun(prog_fd, static_cast<uint32_t>(32 + 16 * run),
                    static_cast<uint64_t>(run));
  }
  if (violations.empty()) {
    out += "(all witnesses contained in verifier claims)\n";
  } else {
    for (const StateViolation& v : violations) {
      out += v.details;
      out += '\n';
    }
  }
  return out;
}

MinimizeResult MinimizeCase(const FuzzCase& the_case, const std::string& signature,
                            const CampaignOptions& options, int max_executions) {
  MinimizeResult result;
  result.reduced = the_case;
  result.insns_before = the_case.prog.insns.size();

  bool progress = true;
  while (progress && result.executions < max_executions) {
    progress = false;
    // Walk back-to-front so indices stay stable across kept deletions.
    for (size_t pos = result.reduced.prog.insns.size(); pos-- > 0;) {
      if (result.executions >= max_executions) {
        break;
      }
      if (result.reduced.prog.insns.size() <= 2) {
        break;  // nothing meaningful left to delete
      }
      if (pos < result.reduced.prog.insns.size() &&
          result.reduced.prog.insns[pos].opcode == 0 && pos > 0 &&
          result.reduced.prog.insns[pos - 1].IsLdImm64()) {
        continue;  // high slot: removed together with its low slot
      }
      FuzzCase candidate = result.reduced;
      RemoveInsnPatched(candidate.prog, pos);
      if (bpf::CheckEncoding(candidate.prog, nullptr) != 0) {
        continue;  // structurally broken (e.g. removed the exit)
      }
      ++result.executions;
      if (ExecuteCase(candidate, options).count(signature) != 0) {
        result.reduced = std::move(candidate);
        progress = true;
      }
    }
  }
  result.insns_after = result.reduced.prog.insns.size();
  return result;
}

}  // namespace bvf
