#include "src/core/metamorph/transform.h"

#include <array>
#include <cstddef>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/liveness.h"
#include "src/core/generator.h"

namespace bvf {

namespace {

using bpf::Insn;

bool IsLdImm64Hi(const bpf::Program& prog, size_t idx) {
  return idx > 0 && prog.insns[idx - 1].IsLdImm64();
}

bool IsBranch(const Insn& insn) {
  return insn.IsJmp() && insn.JmpOp() != bpf::kJmpCall && insn.JmpOp() != bpf::kJmpExit;
}

bool HasBpfToBpfCall(const bpf::Program& prog) {
  for (const Insn& insn : prog.insns) {
    if (insn.IsBpfToBpfCall()) {
      return true;
    }
  }
  return false;
}

bool SizeHeadroom(const bpf::Program& prog, size_t extra) {
  return !prog.insns.empty() && prog.insns.size() + extra <= kMaxVariantInsns;
}

// -- kRegRename --

bool UsesScratchReg(const bpf::Program& prog) {
  for (size_t i = 0; i < prog.insns.size(); ++i) {
    if (IsLdImm64Hi(prog, i)) {
      continue;
    }
    const Insn& insn = prog.insns[i];
    if ((insn.dst >= bpf::kR6 && insn.dst <= bpf::kR9) ||
        (insn.src >= bpf::kR6 && insn.src <= bpf::kR9)) {
      return true;
    }
  }
  return false;
}

bool ApplyRegRename(bpf::Program& prog, bpf::Rng& rng) {
  if (!UsesScratchReg(prog)) {
    return false;
  }
  // A uniform non-identity permutation of {r6..r9}, applied to every
  // register field. Pseudo-src codes (ld_imm64, calls) and the fixed
  // registers r0-r5/r10 are all outside 6..9, so a blanket map is exact.
  std::array<uint8_t, 16> perm{};
  for (uint8_t r = 0; r < perm.size(); ++r) {
    perm[r] = r;
  }
  for (uint8_t r = bpf::kR9; r > bpf::kR6; --r) {
    const uint8_t other =
        bpf::kR6 + static_cast<uint8_t>(rng.Below(r - bpf::kR6 + 1));
    std::swap(perm[r], perm[other]);
  }
  if (perm[bpf::kR6] == bpf::kR6 && perm[bpf::kR7] == bpf::kR7 &&
      perm[bpf::kR8] == bpf::kR8 && perm[bpf::kR9] == bpf::kR9) {
    std::swap(perm[bpf::kR6], perm[bpf::kR7]);
  }
  for (size_t i = 0; i < prog.insns.size(); ++i) {
    if (IsLdImm64Hi(prog, i)) {
      continue;  // dst/src are always 0, but keep the intent explicit
    }
    prog.insns[i].dst = perm[prog.insns[i].dst];
    prog.insns[i].src = perm[prog.insns[i].src];
  }
  return true;
}

// -- kDeadCodeInsert --

std::vector<uint8_t> DeadEntryRegs(const bpf::Program& prog) {
  std::vector<uint8_t> dead;
  if (prog.insns.empty()) {
    return dead;
  }
  const Cfg cfg = BuildCfg(prog);
  const LivenessResult liveness = ComputeLiveness(prog, cfg);
  if (liveness.live_in.empty()) {
    return dead;
  }
  const RegMask entry = liveness.live_in[0];
  for (uint8_t r = bpf::kR0; r <= bpf::kR9; ++r) {
    if (r == bpf::kR1) {
      continue;  // the context argument; never shadow it
    }
    if ((entry & RegBit(r)) == 0) {
      dead.push_back(r);
    }
  }
  return dead;
}

bool ApplyDeadCodeInsert(bpf::Program& prog, bpf::Rng& rng) {
  if (!SizeHeadroom(prog, 2)) {
    return false;
  }
  const std::vector<uint8_t> dead = DeadEntryRegs(prog);
  if (dead.empty()) {
    return false;
  }
  const uint8_t reg = dead[rng.Below(dead.size())];
  if (rng.Below(2) == 0) {
    // Init-header pool, small-imm flavor. The constant is drawn from a
    // distinctive high range so it cannot coincide with program constants and
    // perturb state-equality at loop headers (a dead register still sits in
    // the verifier's pruning state until the program overwrites it).
    const int32_t imm = static_cast<int32_t>(0x5a000000u | rng.Below(4096));
    InsertInsnPatched(prog, 0, bpf::MovImm(reg, imm));
  } else {
    // Init-header pool, random-imm64 flavor (two slots).
    const uint64_t value = rng.Next();
    InsertInsnPatched(prog, 0, bpf::LdImm64Lo(reg, 0, value));
    InsertInsnPatched(prog, 1, bpf::LdImm64Hi(value));
  }
  return true;
}

// -- kNopPad --

// Positions where an inserted instruction is reachable by fall-through and
// does not split a ld_imm64 pair. Jumps spanning the position are re-linked
// by InsertInsnPatched; jumps *to* the position bypass the pad, so the pad
// must be reachable from its predecessor (or be the entry).
std::vector<size_t> FallThroughSlots(const bpf::Program& prog) {
  std::vector<size_t> slots;
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (p == 0) {
      slots.push_back(p);
      continue;
    }
    const Insn& prev = prog.insns[p - 1];
    if (prev.IsLdImm64()) {
      continue;  // between the pair's slots
    }
    if (prev.IsExit()) {
      continue;
    }
    if (prev.IsJmp() && prev.JmpOp() == bpf::kJmpJa) {
      continue;
    }
    slots.push_back(p);
  }
  return slots;
}

bool ApplyNopPad(bpf::Program& prog, bpf::Rng& rng) {
  if (!SizeHeadroom(prog, 1)) {
    return false;
  }
  if (rng.Below(2) == 0) {
    // Identity move of the always-initialized context register at entry.
    InsertInsnPatched(prog, 0, bpf::MovReg(bpf::kR1, bpf::kR1));
    return true;
  }
  const std::vector<size_t> slots = FallThroughSlots(prog);
  if (slots.empty()) {
    return false;
  }
  InsertInsnPatched(prog, slots[rng.Below(slots.size())], bpf::JmpA(0));
  return true;
}

// -- kJumpRelayout --

std::vector<size_t> BranchSites(const bpf::Program& prog) {
  std::vector<size_t> sites;
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsBranch(prog.insns[p]) && !IsLdImm64Hi(prog, p)) {
      const int target = prog.insns[p].JumpTargetPc(static_cast<int>(p));
      if (target >= 0 && target < static_cast<int>(prog.insns.size())) {
        sites.push_back(p);
      }
    }
  }
  return sites;
}

bool ApplyJumpRelayout(bpf::Program& prog, bpf::Rng& rng) {
  // Restricted to single-subprogram programs: the landing pad shifts every
  // downstream index, and jumps must never cross subprogram boundaries.
  if (!SizeHeadroom(prog, 1) || HasBpfToBpfCall(prog)) {
    return false;
  }
  const std::vector<size_t> sites = BranchSites(prog);
  if (sites.empty()) {
    return false;
  }
  const size_t p = sites[rng.Below(sites.size())];
  const size_t t =
      static_cast<size_t>(prog.insns[p].JumpTargetPc(static_cast<int>(p)));
  // Insert a `ja +0` landing pad immediately before the target and redirect
  // the chosen jump onto it; every other edge to the target bypasses the pad
  // (InsertInsnPatched shifts their offsets). Placing the pad at the target —
  // rather than appending a trampoline at program end — keeps each hop's
  // direction identical to the base jump's, so the verifier's back-edge
  // bookkeeping (infinite-loop checks prune only what the base pruned, and
  // the pad's forward fall-through can only *add* prune opportunities, which
  // never reject).
  InsertInsnPatched(prog, t, bpf::JmpA(0));
  const size_t p_now = p >= t ? p + 1 : p;
  prog.insns[p_now].off =
      static_cast<int16_t>(static_cast<int64_t>(t) - static_cast<int64_t>(p_now) - 1);
  return true;
}

// -- kAluIdentity / kConstRemat --

std::vector<size_t> MovImmSites(const bpf::Program& prog, bool include_alu32) {
  std::vector<size_t> sites;
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    const Insn& insn = prog.insns[p];
    if (!insn.IsAlu() || insn.AluOp() != bpf::kAluMov || insn.SrcIsReg()) {
      continue;
    }
    if (!include_alu32 && insn.Class() != bpf::kClassAlu64) {
      continue;
    }
    sites.push_back(p);
  }
  return sites;
}

bool ApplyAluIdentity(bpf::Program& prog, bpf::Rng& rng) {
  if (!SizeHeadroom(prog, 1)) {
    return false;
  }
  // Only after a mov-imm: the destination is a known scalar constant there,
  // so the identity is exact in the abstract domain too (no tnum/bounds
  // widening that could flip a downstream bounds check). x&0 and x*0 are
  // excluded — they are not identities.
  const std::vector<size_t> sites = MovImmSites(prog, /*include_alu32=*/true);
  if (sites.empty()) {
    return false;
  }
  static constexpr uint8_t kIdentityOps[] = {
      bpf::kAluAdd, bpf::kAluSub, bpf::kAluOr,   bpf::kAluXor,
      bpf::kAluLsh, bpf::kAluRsh, bpf::kAluArsh,
  };
  const size_t p = sites[rng.Below(sites.size())];
  const uint8_t op = kIdentityOps[rng.Below(sizeof(kIdentityOps))];
  InsertInsnPatched(prog, p + 1, bpf::AluImm(op, prog.insns[p].dst, 0));
  return true;
}

bool ApplyConstRemat(bpf::Program& prog, bpf::Rng& rng) {
  if (!SizeHeadroom(prog, 1)) {
    return false;
  }
  // 64-bit mov-imm only: `mov rX, imm` sign-extends, and ld_imm64 of the
  // sign-extended value materializes the identical constant through the
  // wide-immediate verifier path (the asymmetry bug13 models).
  const std::vector<size_t> sites = MovImmSites(prog, /*include_alu32=*/false);
  if (sites.empty()) {
    return false;
  }
  const size_t p = sites[rng.Below(sites.size())];
  const uint8_t dst = prog.insns[p].dst;
  const uint64_t imm64 =
      static_cast<uint64_t>(static_cast<int64_t>(prog.insns[p].imm));
  prog.insns[p] = bpf::LdImm64Lo(dst, 0, imm64);
  InsertInsnPatched(prog, p + 1, bpf::LdImm64Hi(imm64));
  return true;
}

}  // namespace

const char* TransformKindName(TransformKind kind) {
  switch (kind) {
    case TransformKind::kRegRename:
      return "reg-rename";
    case TransformKind::kDeadCodeInsert:
      return "dead-code-insert";
    case TransformKind::kNopPad:
      return "nop-pad";
    case TransformKind::kJumpRelayout:
      return "jump-relayout";
    case TransformKind::kAluIdentity:
      return "alu-identity";
    case TransformKind::kConstRemat:
      return "const-remat";
  }
  return "unknown";
}

bool TransformApplicable(TransformKind kind, const bpf::Program& prog) {
  switch (kind) {
    case TransformKind::kRegRename:
      return SizeHeadroom(prog, 0) && UsesScratchReg(prog);
    case TransformKind::kDeadCodeInsert:
      return SizeHeadroom(prog, 2) && !DeadEntryRegs(prog).empty();
    case TransformKind::kNopPad:
      return SizeHeadroom(prog, 1);
    case TransformKind::kJumpRelayout:
      return SizeHeadroom(prog, 1) && !HasBpfToBpfCall(prog) &&
             !BranchSites(prog).empty();
    case TransformKind::kAluIdentity:
      return SizeHeadroom(prog, 1) && !MovImmSites(prog, true).empty();
    case TransformKind::kConstRemat:
      return SizeHeadroom(prog, 1) && !MovImmSites(prog, false).empty();
  }
  return false;
}

bool ApplyTransform(TransformKind kind, bpf::Program& prog, bpf::Rng& rng) {
  switch (kind) {
    case TransformKind::kRegRename:
      return SizeHeadroom(prog, 0) && ApplyRegRename(prog, rng);
    case TransformKind::kDeadCodeInsert:
      return ApplyDeadCodeInsert(prog, rng);
    case TransformKind::kNopPad:
      return ApplyNopPad(prog, rng);
    case TransformKind::kJumpRelayout:
      return ApplyJumpRelayout(prog, rng);
    case TransformKind::kAluIdentity:
      return ApplyAluIdentity(prog, rng);
    case TransformKind::kConstRemat:
      return ApplyConstRemat(prog, rng);
  }
  return false;
}

uint64_t ProgramFnv(const bpf::Program& prog) {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (value >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(prog.type));
  for (const Insn& insn : prog.insns) {
    mix(static_cast<uint64_t>(insn.opcode) | (static_cast<uint64_t>(insn.dst) << 8) |
        (static_cast<uint64_t>(insn.src) << 16) |
        (static_cast<uint64_t>(static_cast<uint16_t>(insn.off)) << 24) |
        (static_cast<uint64_t>(static_cast<uint32_t>(insn.imm)) << 40));
  }
  return hash;
}

}  // namespace bvf
