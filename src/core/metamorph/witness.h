// Execution witness for metamorphic comparison: everything observable about
// one program standing in for the case's program — the verifier verdict, the
// per-test-run error and R0, the set of indicator kinds fired, and whether
// the substrate panicked. Two witnesses of semantics-equal programs must be
// identical; any difference is a divergence for the oracle to classify.

#ifndef SRC_CORE_METAMORPH_WITNESS_H_
#define SRC_CORE_METAMORPH_WITNESS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/kernel/report.h"

namespace bvf {

struct ExecWitness {
  bool accepted = false;
  int load_err = 0;                        // 0 when accepted, -errno otherwise
  std::vector<int> run_errs;               // err of every test run, 0 included
  std::vector<uint64_t> run_r0;            // R0 of every test run
  std::set<bpf::ReportKind> report_kinds;  // indicator kinds fired (set, not
                                           // signatures: titles embed PCs,
                                           // which transforms legally shift)
  bool panicked = false;

  bool SameExecution(const ExecWitness& other) const {
    return run_errs == other.run_errs && run_r0 == other.run_r0;
  }
};

// Executes |prog| standing in for |the_case|'s program on a fresh throwaway
// substrate: the case's maps (with the seeded entries every replay path
// writes), PROG_LOAD, then the case's test runs with the iteration-free
// input formula ExecuteCase uses (pkt 32+16*run, seed run). No fault
// injection, no caches — a clean, deterministic witness, identical for any
// --jobs/--interp/resume configuration.
ExecWitness CollectWitness(const bpf::Program& prog, const FuzzCase& the_case,
                           const CampaignOptions& options);

}  // namespace bvf

#endif  // SRC_CORE_METAMORPH_WITNESS_H_
