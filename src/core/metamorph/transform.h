// Semantics-preserving eBPF program transforms (DESIGN.md §11).
//
// Each transform rewrites a program into a variant that is guaranteed to
// produce the same execution witness — same per-run error and R0 — under the
// Linux edge-rule semantics deduplicated in src/runtime/interp_ops.h (shift
// masking, div/mod-by-zero, endian truncation), and that a *correct* verifier
// must give the same verdict. A divergence between base and variant is
// therefore evidence of a verifier or runtime bug, not of the transform.
//
// Every transform carries a validity predicate: when the predicate fails
// (no applicable site, structural hazard like splitting a ld_imm64 pair or
// jumping across a subprogram boundary, size headroom exhausted),
// ApplyTransform returns false and leaves the program untouched. Decisions —
// which site, which register permutation, which identity op — are drawn from
// the caller-provided RNG, so a fixed RNG seed yields a fixed variant.

#ifndef SRC_CORE_METAMORPH_TRANSFORM_H_
#define SRC_CORE_METAMORPH_TRANSFORM_H_

#include <cstdint>

#include "src/ebpf/program.h"
#include "src/kernel/rng.h"

namespace bvf {

enum class TransformKind {
  // Apply one consistent permutation of the callee-saved scratch registers
  // r6-r9 to every instruction. The verifier is symmetric in these registers
  // and the exit value lives in r0, so the witness is unchanged.
  kRegRename = 0,
  // Insert a write to a register proven dead at entry (backward liveness,
  // src/analysis/liveness.h) — a mov-imm or ld_imm64 from the init-header
  // object pool. No path reads the register before writing it.
  kDeadCodeInsert,
  // Insert a no-op: `ja +0` at any fall-through-reachable position, or the
  // identity move `r1 = r1` at entry (r1 is the always-initialized context).
  kNopPad,
  // Re-layout one jump: insert a `ja +0` landing pad immediately before the
  // jump's target and redirect the jump onto it (other edges to the target
  // bypass the pad). The pad keeps both hops in the base jump's direction, so
  // the verifier's back-edge loop checks see the same edge classes as the
  // base program. Restricted to single-subprogram programs (jumps must not
  // cross subprog boundaries).
  kJumpRelayout,
  // Insert an ALU identity (x+0, x-0, x|0, x^0, x<<0, x>>0, x s>>0) right
  // after a mov-imm, where the operand is a known constant and the identity
  // is exact in both the abstract and the concrete domain.
  kAluIdentity,
  // Re-materialize a 64-bit mov-imm constant through a two-slot ld_imm64 of
  // the identical sign-extended value.
  kConstRemat,
};

inline constexpr int kNumTransformKinds = 6;

const char* TransformKindName(TransformKind kind);

// Variants never grow past this instruction count (well under the loader's
// kMaxInsns and the verifier's exploration budget, so padding alone can
// never flip a verdict through a resource limit).
inline constexpr size_t kMaxVariantInsns = 4096;

// True when |kind| has at least one applicable site in |prog| (the validity
// predicate, without mutating anything).
bool TransformApplicable(TransformKind kind, const bpf::Program& prog);

// Applies |kind| to |prog| using decisions drawn from |rng|. Returns false —
// with |prog| untouched — when the validity predicate rejects the program.
bool ApplyTransform(TransformKind kind, bpf::Program& prog, bpf::Rng& rng);

// FNV-1a over the instruction stream (opcode/dst/src/off/imm), the identity
// of a program for metamorphic-seed derivation: variants depend on what the
// program *is*, never on when or where it was generated, which is what makes
// metamorph findings replayable outside the campaign loop.
uint64_t ProgramFnv(const bpf::Program& prog);

}  // namespace bvf

#endif  // SRC_CORE_METAMORPH_TRANSFORM_H_
