#include "src/core/metamorph/witness.h"

#include <algorithm>
#include <cstring>

#include "src/analysis/state_audit.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bvf {

ExecWitness CollectWitness(const bpf::Program& prog, const FuzzCase& the_case,
                           const CampaignOptions& options) {
  ExecWitness witness;

  bpf::Kernel kernel(options.version, options.bugs, options.arena_size);
  bpf::Bpf bpf(kernel);
  Sanitizer sanitizer;
  if (options.sanitize) {
    bpf::BpfAsan::Register(kernel);
    bpf.set_instrument(sanitizer.Hook());
  }
  if (options.audit_state) {
    bpf.set_exec_observer(
        [&kernel](const bpf::LoadedProgram& loaded, const bpf::WitnessTrace& trace) {
          AuditAndReport(loaded, trace, kernel.reports());
        });
  }
  bpf.set_exec_limits(options.limits);
  bpf.set_exec_engine(options.interp_engine);
  kernel.arena().set_alloc_budget(options.arena_budget);

  for (const bpf::MapDef& def : the_case.maps) {
    const int fd = bpf.MapCreate(def);
    if (fd < 0) {
      continue;
    }
    if (def.type == bpf::MapType::kHash || def.type == bpf::MapType::kArray) {
      for (uint32_t k = 0; k < 2 && k < def.max_entries; ++k) {
        std::vector<uint8_t> key(def.key_size, 0);
        std::memcpy(key.data(), &k, std::min<size_t>(sizeof(k), key.size()));
        std::vector<uint8_t> value(def.value_size, 0);
        bpf.MapUpdateElem(fd, key.data(), value.data());
      }
    }
  }

  const int prog_fd = bpf.ProgLoad(prog);
  witness.accepted = prog_fd > 0;
  witness.load_err = prog_fd > 0 ? 0 : prog_fd;
  if (prog_fd > 0) {
    for (int run = 0; run < the_case.test_runs; ++run) {
      const bpf::ExecResult result = bpf.ProgTestRun(
          prog_fd, static_cast<uint32_t>(32 + 16 * run), static_cast<uint64_t>(run));
      witness.run_errs.push_back(result.err);
      witness.run_r0.push_back(result.r0);
    }
  }

  for (const bpf::KernelReport& report : kernel.reports().reports()) {
    witness.report_kinds.insert(report.kind);
  }
  witness.panicked = kernel.reports().panicked();
  return witness;
}

}  // namespace bvf
