#include "src/core/metamorph/metamorph.h"

#include <cstdio>
#include <string>

#include "src/core/metamorph/transform.h"
#include "src/core/metamorph/witness.h"
#include "src/kernel/coverage.h"
#include "src/kernel/rng.h"

namespace bvf {

namespace {

Finding MakeDivergenceFinding(bpf::ReportKind kind, TransformKind transform,
                              uint64_t program_fnv, int variant,
                              const std::string& what, uint64_t iteration) {
  Finding finding;
  finding.kind = kind;
  // Same shape as KernelReport::Signature() ("<kind name> in <where>"), with
  // the transform as the location: stable across program identities, so one
  // verifier asymmetry dedups to one finding however many programs hit it.
  finding.signature = std::string(bpf::ReportKindName(kind)) + " in " +
                      TransformKindName(transform);
  char buf[160];
  snprintf(buf, sizeof(buf), "prog fnv=0x%016llx variant k=%d (%s): %s",
           static_cast<unsigned long long>(program_fnv), variant,
           TransformKindName(transform), what.c_str());
  finding.details = buf;
  finding.indicator = 4;
  if (kind == bpf::ReportKind::kMetamorphVerdictDivergence &&
      transform == TransformKind::kConstRemat) {
    // A verdict flip under constant re-materialization is exactly the
    // mov-imm/ld_imm64 tracking asymmetry bug13 models.
    finding.triaged = KnownBug::kBug13LdImm64Pessimize;
  }
  finding.iteration = iteration;
  return finding;
}

std::string DescribeRuns(const ExecWitness& base, const ExecWitness& variant) {
  for (size_t i = 0; i < base.run_errs.size() && i < variant.run_errs.size(); ++i) {
    if (base.run_errs[i] != variant.run_errs[i] || base.run_r0[i] != variant.run_r0[i]) {
      char buf[128];
      snprintf(buf, sizeof(buf),
               "run %zu: base err=%d r0=0x%llx, variant err=%d r0=0x%llx", i,
               base.run_errs[i], static_cast<unsigned long long>(base.run_r0[i]),
               variant.run_errs[i],
               static_cast<unsigned long long>(variant.run_r0[i]));
      return buf;
    }
  }
  return "run counts differ";
}

}  // namespace

MetamorphOracle::Result MetamorphOracle::Examine(const FuzzCase& the_case,
                                                 uint64_t iteration) const {
  Result result;
  if (options_.metamorph_k <= 0) {
    return result;
  }
  // Oracle executions must not feed coverage: corpus evolution (and with it
  // the campaign digest) has to be identical whether metamorph is on or off
  // for the base stream, and independent of worker scheduling.
  bpf::ScopedCoverageSuppress suppress;

  const uint64_t fnv = ProgramFnv(the_case.prog);
  const ExecWitness base = CollectWitness(the_case.prog, the_case, options_);
  if (!base.accepted || base.panicked) {
    return result;  // the oracle's contract starts at an accepted base
  }
  result.bases_examined = 1;

  // Per-program rotation of the transform order: variant k starts its
  // first-applicable scan at kind (rotation + k), so K >= kNumTransformKinds
  // provably tries every kind, smaller K tries K distinct kinds, and the
  // rotation still varies across programs. The sentinel variant index -1
  // keeps the rotation draw out of every per-variant stream.
  const int rotation =
      static_cast<int>(MetamorphSeed(options_.seed, fnv, -1) % kNumTransformKinds);

  for (int k = 0; k < options_.metamorph_k; ++k) {
    bpf::Rng rng(MetamorphSeed(options_.seed, fnv, k));
    bpf::Program variant_prog = the_case.prog;
    TransformKind kind = TransformKind::kRegRename;
    bool applied = false;
    const int start = (rotation + k) % kNumTransformKinds;
    for (int step = 0; step < kNumTransformKinds && !applied; ++step) {
      kind = static_cast<TransformKind>((start + step) % kNumTransformKinds);
      applied = ApplyTransform(kind, variant_prog, rng);
    }
    if (!applied) {
      continue;  // no transform has an applicable site (tiny programs)
    }

    const ExecWitness variant = CollectWitness(variant_prog, the_case, options_);
    ++result.variants_executed;

    if (variant.accepted != base.accepted) {
      ++result.verdict_divergences;
      char what[96];
      snprintf(what, sizeof(what), "base accepted, variant rejected (errno %d)",
               -variant.load_err);
      result.findings.push_back(MakeDivergenceFinding(
          bpf::ReportKind::kMetamorphVerdictDivergence, kind, fnv, k, what,
          iteration));
      if (result.escalated == CaseOutcome::kUnclassified ||
          result.escalated == CaseOutcome::kWitnessDivergence ||
          result.escalated == CaseOutcome::kSanitizerDivergence) {
        result.escalated = CaseOutcome::kVerdictDivergence;
      }
      continue;
    }
    if (!base.SameExecution(variant) || variant.panicked != base.panicked) {
      ++result.witness_divergences;
      result.findings.push_back(MakeDivergenceFinding(
          bpf::ReportKind::kMetamorphWitnessDivergence, kind, fnv, k,
          variant.panicked != base.panicked ? "panic state differs"
                                            : DescribeRuns(base, variant),
          iteration));
      if (result.escalated != CaseOutcome::kVerdictDivergence) {
        result.escalated = CaseOutcome::kWitnessDivergence;
      }
      continue;
    }
    if (variant.report_kinds != base.report_kinds) {
      ++result.sanitizer_divergences;
      char what[96];
      snprintf(what, sizeof(what),
               "indicator kind sets differ (base %zu kinds, variant %zu kinds)",
               base.report_kinds.size(), variant.report_kinds.size());
      result.findings.push_back(MakeDivergenceFinding(
          bpf::ReportKind::kMetamorphSanitizerDivergence, kind, fnv, k, what,
          iteration));
      if (result.escalated == CaseOutcome::kUnclassified) {
        result.escalated = CaseOutcome::kSanitizerDivergence;
      }
    }
  }
  return result;
}

}  // namespace bvf
