// The metamorphic oracle (Indicator #4, DESIGN.md §11): for an accepted
// case, derive K semantics-preserving variants (src/core/metamorph/
// transform.h), execute base and variants on clean throwaway substrates, and
// compare their witnesses. A correct verifier/runtime pair produces identical
// witnesses; differences are classified, in precedence order, as
//
//   verdict divergence    — the variant's PROG_LOAD verdict flipped
//   witness divergence    — per-run error or R0 differs
//   sanitizer divergence  — the set of indicator kinds fired differs
//
// Variant derivation depends only on (campaign seed, program identity,
// variant index) — never on the iteration, worker, or engine — so the same
// program yields the same variants in the serial loop, any --jobs shard,
// either interpreter, after resume, and in the repro/minimize replay path.

#ifndef SRC_CORE_METAMORPH_METAMORPH_H_
#define SRC_CORE_METAMORPH_METAMORPH_H_

#include <cstdint>
#include <vector>

#include "src/core/fuzzer.h"
#include "src/core/generator.h"
#include "src/core/oracle.h"

namespace bvf {

// Seed for variant k of a program (splitmix64 over the campaign seed, the
// program's FNV identity, and the variant index; mirrors bpf::FaultSeed so
// metamorph decisions never consume a campaign RNG stream).
inline uint64_t MetamorphSeed(uint64_t campaign_seed, uint64_t program_fnv,
                              int variant) {
  uint64_t z = campaign_seed ^ (program_fnv * 0x9e3779b97f4a7c15ull) ^
               (static_cast<uint64_t>(variant) * 0xd1b54a32d192ed03ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class MetamorphOracle {
 public:
  explicit MetamorphOracle(const CampaignOptions& options) : options_(options) {}

  struct Result {
    uint64_t bases_examined = 0;     // 1 when the clean base witness loaded
    uint64_t variants_executed = 0;  // valid variants driven to a witness
    uint64_t verdict_divergences = 0;
    uint64_t witness_divergences = 0;
    uint64_t sanitizer_divergences = 0;
    std::vector<Finding> findings;  // indicator 4, one per diverging variant
    // Highest-precedence divergence, for CaseOutcome escalation
    // (kUnclassified when none).
    CaseOutcome escalated = CaseOutcome::kUnclassified;
  };

  // Examines one case: collects the clean base witness, derives and executes
  // options.metamorph_k variants, and classifies every divergence. Coverage
  // recording is suppressed throughout (oracle executions must not perturb
  // corpus evolution, or digests would depend on whether metamorph ran
  // before or after a worker's merge). Deterministic: depends only on the
  // case and the options; |iteration| is recorded in findings, nothing else.
  Result Examine(const FuzzCase& the_case, uint64_t iteration) const;

 private:
  const CampaignOptions& options_;
};

}  // namespace bvf

#endif  // SRC_CORE_METAMORPH_METAMORPH_H_
