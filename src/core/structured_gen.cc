#include "src/core/structured_gen.h"

#include <algorithm>

#include "src/analysis/lints.h"
#include "src/ebpf/builder.h"
#include "src/kernel/btf.h"
#include "src/verifier/helper_protos.h"
#include "src/verifier/verifier.h"

namespace bvf {

using bpf::Insn;
using bpf::KernelFeatures;
using bpf::MapDef;
using bpf::MapType;
using bpf::ProgType;
using bpf::Rng;
using bpf::TracepointId;

namespace {

// Generation-time register model: a coarse mirror of the verifier's types.
enum class GK : uint8_t {
  kUninit,
  kScalar,        // unknown scalar
  kScalarSmall,   // scalar refined into [0, bound]
  kMapPtr,        // CONST_PTR_TO_MAP
  kMapValue,      // non-null map value pointer
  kMapValueNull,  // map_value_or_null (pre null-check)
  kStack,         // R10 copy (possibly offset)
  kCtx,
  kTaskBtf,       // PTR_TO_BTF_ID task_struct
  kBtfPtr,        // other PTR_TO_BTF_ID
};

struct GReg {
  GK kind = GK::kUninit;
  int map = -1;       // map index (fd - 1) for kMapPtr/kMapValue*
  int btf = 0;        // BTF struct id for kBtfPtr
  int64_t bound = 0;  // for kScalarSmall
};

struct GenCtx {
  Rng* rng;
  KernelFeatures features;
  bpf::KernelVersion version;
  const StructuredGenOptions* options;

  ProgType type = ProgType::kSocketFilter;
  std::vector<MapDef> maps;

  GReg regs[11];
  bool stack_init[bpf::kStackSlots] = {};  // slot 0 = fp-8

  std::vector<Insn> out;

  // Pseudo eBPF functions (paper: call targets besides helpers/kfuncs).
  // Bodies are appended after the end section; call imms patched then.
  std::vector<std::vector<Insn>> subprogs;
  struct PendingCall {
    size_t call_idx;
    size_t subprog;
  };
  std::vector<PendingCall> pending_calls;

  // ---- emission helpers ----
  void Emit(const Insn& insn) { out.push_back(insn); }
  void EmitLdImm64(uint8_t dst, uint64_t value, uint8_t pseudo = 0) {
    Emit(bpf::LdImm64Lo(dst, pseudo, value));
    Emit(bpf::LdImm64Hi(value));
  }

  bool Chance(double p) { return rng->Chance(p); }
  int64_t Range(int64_t lo, int64_t hi) { return rng->Range(lo, hi); }

  // Picks a register matching |pred|; returns -1 when none matches.
  template <typename Pred>
  int PickReg(Pred pred) {
    int candidates[11];
    int n = 0;
    for (int r = 0; r <= 10; ++r) {
      if (pred(r, regs[r])) {
        candidates[n++] = r;
      }
    }
    if (n == 0) {
      return -1;
    }
    return candidates[rng->Below(n)];
  }

  int PickScalar() {
    return PickReg([](int r, const GReg& g) {
      return r != 10 && (g.kind == GK::kScalar || g.kind == GK::kScalarSmall);
    });
  }
  // A register that is free to clobber (prefers caller-saved temporaries).
  int PickDest(bool callee_saved_ok = true) {
    const int r = PickReg([&](int reg, const GReg& g) {
      if (reg == 10 || reg == 0) {
        return false;
      }
      const bool callee_saved = reg >= 6 && reg <= 9;
      if (callee_saved && !callee_saved_ok) {
        return false;
      }
      // Avoid clobbering the only ctx copy.
      return g.kind != GK::kCtx || reg == 1;
    });
    return r;
  }

  int FindKind(GK kind) {
    return PickReg([kind](int, const GReg& g) { return g.kind == kind; });
  }

  int FindMapOfType(MapType type) {
    std::vector<int> hits;
    for (size_t i = 0; i < maps.size(); ++i) {
      if (maps[i].type == type) {
        hits.push_back(static_cast<int>(i));
      }
    }
    if (hits.empty()) {
      return -1;
    }
    return hits[rng->Below(hits.size())];
  }

  // Initializes |bytes| bytes of stack at fp-|neg_off| via 8-byte stores.
  // Returns the (negative) offset used.
  int InitStack(int bytes) {
    const int slots = (bytes + 7) / 8;
    const int max_first = bpf::kStackSlots - slots;
    const int first = static_cast<int>(rng->Below(std::min(max_first, 8) + 1));
    for (int s = 0; s < slots; ++s) {
      const int slot = first + s;
      const int16_t off = static_cast<int16_t>(-8 * (slot + 1));
      Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, off,
                            static_cast<int32_t>(rng->Below(3) == 0 ? rng->Next() & 0xff : 0)));
      stack_init[slot] = true;
    }
    return -8 * (first + slots);
  }

  // Loads a stack pointer (fp + off) into |dst|.
  void StackPtrTo(uint8_t dst, int off) {
    Emit(bpf::MovReg(dst, bpf::kR10));
    if (off != 0) {
      Emit(bpf::AluImm(bpf::kAluAdd, dst, off));
    }
    regs[dst] = GReg{GK::kStack};
  }
};

uint8_t RandomSize(Rng& rng) {
  static constexpr uint8_t kSizes[] = {bpf::kSizeB, bpf::kSizeH, bpf::kSizeW, bpf::kSizeDw};
  return kSizes[rng.Below(4)];
}

int SizeBytes(uint8_t size) {
  switch (size) {
    case bpf::kSizeB:
      return 1;
    case bpf::kSizeH:
      return 2;
    case bpf::kSizeW:
      return 4;
    default:
      return 8;
  }
}

// ---------- init header ----------

void EmitInitHeader(GenCtx& g) {
  g.regs[1] = GReg{GK::kCtx};
  g.regs[10] = GReg{GK::kStack};

  if (!g.options->init_header) {
    return;
  }

  // Save the context pointer into a callee-saved register: calls clobber R1.
  if (g.Chance(0.8)) {
    g.Emit(bpf::MovReg(bpf::kR6, bpf::kR1));
    g.regs[6] = GReg{GK::kCtx};
  }

  // Candidate loads for the remaining callee-saved registers (paper Fig. 4
  // (1): map fds, map values, BTF ids, random 64-bit immediates).
  for (uint8_t r = 7; r <= 9; ++r) {
    if (g.Chance(0.25)) {
      continue;  // leave uninitialized (never read afterwards)
    }
    switch (g.rng->Below(5)) {
      case 0: {  // map fd
        const int map = static_cast<int>(g.rng->Below(g.maps.size()));
        g.EmitLdImm64(r, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
        g.regs[r] = GReg{GK::kMapPtr, map};
        break;
      }
      case 1:  // random 64-bit immediate
        g.EmitLdImm64(r, g.rng->Next());
        g.regs[r] = GReg{GK::kScalar};
        break;
      case 2:  // small immediate
        g.Emit(bpf::MovImm(r, static_cast<int32_t>(g.rng->Below(64))));
        g.regs[r] = GReg{GK::kScalarSmall, -1, 0, 63};
        break;
      case 3:  // stack pointer
        g.StackPtrTo(r, -static_cast<int>(8 * (1 + g.rng->Below(8))));
        break;
      case 4: {  // BTF object (ksym-style load)
        if (g.features.kfunc_calls || g.features.task_btf_helpers) {
          static constexpr int kBtfIds[] = {bpf::kBtfTaskStruct, bpf::kBtfMmStruct,
                                            bpf::kBtfFile, bpf::kBtfCgroup};
          const int btf = kBtfIds[g.rng->Below(4)];
          g.EmitLdImm64(r, static_cast<uint64_t>(btf), bpf::kPseudoBtfId);
          g.regs[r] =
              btf == bpf::kBtfTaskStruct ? GReg{GK::kTaskBtf} : GReg{GK::kBtfPtr, -1, btf};
        } else {
          g.Emit(bpf::MovImm(r, 1));
          g.regs[r] = GReg{GK::kScalarSmall, -1, 0, 1};
        }
        break;
      }
    }
  }

  // Pre-initialize a little stack so later frames can pass keys around.
  g.InitStack(16);
}

// ---------- basic frame ----------

void EmitBasicOp(GenCtx& g);

// Emits a guarded dereference body for a map-value register.
void EmitMapValueOps(GenCtx& g, int reg) {
  const MapDef& def = g.maps[g.regs[reg].map];
  const int count = static_cast<int>(1 + g.rng->Below(3));
  for (int i = 0; i < count; ++i) {
    const uint8_t size = RandomSize(*g.rng);
    const int bytes = SizeBytes(size);
    int max_off = static_cast<int>(def.value_size) - bytes;
    if (max_off < 0) {
      max_off = 0;
    }
    int16_t off = static_cast<int16_t>(g.rng->Below(max_off + 1));
    if (g.options->risky && g.Chance(0.12)) {
      off = static_cast<int16_t>(def.value_size - bytes + 1 + g.rng->Below(16));  // OOB try
    }
    if (g.Chance(0.5)) {
      const int dst = g.PickDest();
      if (dst >= 0) {
        g.Emit(bpf::LoadMem(size, static_cast<uint8_t>(dst), static_cast<uint8_t>(reg), off));
        g.regs[dst] = GReg{GK::kScalar};
      }
    } else if (g.Chance(0.7)) {
      g.Emit(bpf::StoreMemImm(size, static_cast<uint8_t>(reg), off,
                              static_cast<int32_t>(g.rng->Next() & 0xffff)));
    } else {
      const int src = g.PickScalar();
      if (src >= 0) {
        g.Emit(bpf::StoreMemReg(size, static_cast<uint8_t>(reg), static_cast<uint8_t>(src),
                                off));
      }
    }
  }
  // Variable-offset access pattern: mask a scalar and use it as an index —
  // exercises the bounds tracking + alu_limit machinery.
  if (g.Chance(0.35)) {
    const int idx = g.PickScalar();
    const int dst = g.PickDest();
    if (idx >= 0 && dst >= 0 && dst != reg && idx != dst && def.value_size >= 16) {
      g.Emit(bpf::AluImm(bpf::kAluAnd, static_cast<uint8_t>(idx),
                         static_cast<int32_t>(def.value_size / 2 - 8)));
      g.Emit(bpf::MovReg(static_cast<uint8_t>(dst), static_cast<uint8_t>(reg)));
      g.Emit(bpf::AluReg(bpf::kAluAdd, static_cast<uint8_t>(dst), static_cast<uint8_t>(idx)));
      g.Emit(bpf::LoadMem(bpf::kSizeDw, static_cast<uint8_t>(dst), static_cast<uint8_t>(dst),
                          0));
      g.regs[idx] = GReg{GK::kScalarSmall, -1, 0, static_cast<int64_t>(def.value_size / 2 - 8)};
      g.regs[dst] = GReg{GK::kScalar};
    }
  }
}

void EmitCtxLoad(GenCtx& g) {
  const int ctx = g.FindKind(GK::kCtx);
  const int dst = g.PickDest();
  if (ctx < 0 || dst < 0) {
    return;
  }
  const bpf::CtxDescriptor& desc = bpf::CtxDescriptorFor(g.type);
  const bpf::CtxField& field = g.rng->Pick(desc.fields);
  if (field.special != bpf::CtxField::Special::kNone) {
    return;  // packet fields handled by the packet pattern
  }
  const uint8_t size = field.size == 8 ? bpf::kSizeDw : bpf::kSizeW;
  g.Emit(bpf::LoadMem(size, static_cast<uint8_t>(dst), static_cast<uint8_t>(ctx),
                      static_cast<int16_t>(field.off)));
  g.regs[dst] = GReg{GK::kScalar};
  if (g.options->risky && g.Chance(0.05) && field.writable) {
    const int src = g.PickScalar();
    if (src >= 0) {
      g.Emit(bpf::StoreMemReg(bpf::kSizeW, static_cast<uint8_t>(ctx),
                              static_cast<uint8_t>(src), static_cast<int16_t>(field.off)));
    }
  }
}

void EmitBtfLoads(GenCtx& g) {
  const int reg = g.PickReg([](int, const GReg& r) {
    return r.kind == GK::kTaskBtf || r.kind == GK::kBtfPtr;
  });
  const int dst = g.PickDest();
  if (reg < 0 || dst < 0) {
    return;
  }
  const bool is_task = g.regs[reg].kind == GK::kTaskBtf;
  // task_struct field table (src/kernel/btf.cc): pointer fields chain.
  struct FieldPick {
    int16_t off;
    uint8_t size;
    GK result;
    int btf;
  };
  static constexpr FieldPick kTaskFields[] = {
      {16, bpf::kSizeW, GK::kScalar, 0},                    // pid
      {20, bpf::kSizeW, GK::kScalar, 0},                    // tgid
      {40, bpf::kSizeDw, GK::kBtfPtr, bpf::kBtfMmStruct},   // mm (NULL at runtime!)
      {48, bpf::kSizeDw, GK::kBtfPtr, bpf::kBtfFile},       // files
      {64, bpf::kSizeDw, GK::kScalar, 0},                   // start_time
      {112, bpf::kSizeDw, GK::kTaskBtf, 0},                 // parent
  };
  FieldPick pick{0, bpf::kSizeDw, GK::kScalar, 0};
  if (is_task) {
    pick = kTaskFields[g.rng->Below(6)];
    if (g.options->risky && g.Chance(0.2)) {
      // Offsets running toward/past the end of the 192-byte task_struct:
      // the tail of the window is legal only under bug #2's page-sized
      // bound and lands in the allocation's redzone at runtime.
      pick = FieldPick{static_cast<int16_t>(160 + 8 * g.rng->Below(8)), bpf::kSizeDw,
                       GK::kScalar, 0};
    }
  } else {
    pick.off = static_cast<int16_t>(8 * g.rng->Below(8));
    pick.size = bpf::kSizeDw;
  }
  g.Emit(bpf::LoadMem(pick.size, static_cast<uint8_t>(dst), static_cast<uint8_t>(reg),
                      pick.off));
  g.regs[dst] = pick.result == GK::kBtfPtr ? GReg{GK::kBtfPtr, -1, pick.btf}
                                           : GReg{pick.result};
}

void EmitBasicOp(GenCtx& g) {
  switch (g.rng->Below(8)) {
    case 0: {  // scalar ALU
      const int dst = g.PickScalar();
      if (dst < 0) {
        break;
      }
      static constexpr uint8_t kOps[] = {bpf::kAluAdd, bpf::kAluSub, bpf::kAluMul,
                                         bpf::kAluAnd, bpf::kAluOr,  bpf::kAluXor,
                                         bpf::kAluLsh, bpf::kAluRsh, bpf::kAluArsh};
      const uint8_t op = kOps[g.rng->Below(9)];
      const bool shift = op == bpf::kAluLsh || op == bpf::kAluRsh || op == bpf::kAluArsh;
      if (g.Chance(0.5)) {
        const int32_t imm = shift ? static_cast<int32_t>(g.rng->Below(64))
                                  : static_cast<int32_t>(g.rng->Next());
        if (g.Chance(0.3)) {
          g.Emit(bpf::Alu32Imm(op, static_cast<uint8_t>(dst),
                               shift ? imm % 32 : imm));
        } else {
          g.Emit(bpf::AluImm(op, static_cast<uint8_t>(dst), imm));
        }
      } else {
        const int src = g.PickScalar();
        if (src >= 0) {
          g.Emit(bpf::AluReg(op, static_cast<uint8_t>(dst), static_cast<uint8_t>(src)));
        }
      }
      g.regs[dst] = GReg{GK::kScalar};
      break;
    }
    case 1: {  // stack store
      const int slot = static_cast<int>(g.rng->Below(12));
      const int16_t off = static_cast<int16_t>(-8 * (slot + 1));
      if (g.Chance(0.5)) {
        g.Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, off,
                                static_cast<int32_t>(g.rng->Next() & 0xffff)));
      } else {
        const int src = g.PickReg([](int r, const GReg& reg) {
          return r != 10 && reg.kind != GK::kUninit;
        });
        if (src < 0) {
          break;
        }
        g.Emit(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, static_cast<uint8_t>(src), off));
      }
      g.stack_init[slot] = true;
      break;
    }
    case 2: {  // stack load
      int slot = -1;
      for (int s = 0; s < 12; ++s) {
        if (g.stack_init[s] && g.Chance(0.5)) {
          slot = s;
          break;
        }
      }
      if (slot < 0 && g.options->risky && g.Chance(0.15)) {
        slot = static_cast<int>(g.rng->Below(12));  // possibly uninitialized
      }
      if (slot < 0) {
        break;
      }
      const int dst = g.PickDest();
      if (dst < 0) {
        break;
      }
      g.Emit(bpf::LoadMem(bpf::kSizeDw, static_cast<uint8_t>(dst), bpf::kR10,
                          static_cast<int16_t>(-8 * (slot + 1))));
      g.regs[dst] = GReg{GK::kScalar};
      break;
    }
    case 3: {  // map value ops (requires a checked map-value register)
      const int mv = g.FindKind(GK::kMapValue);
      if (mv >= 0) {
        EmitMapValueOps(g, mv);
      }
      break;
    }
    case 4:
      EmitCtxLoad(g);
      break;
    case 5:
      EmitBtfLoads(g);
      break;
    case 6: {  // atomic op on an initialized stack slot
      int slot = -1;
      for (int s = 0; s < 12; ++s) {
        if (g.stack_init[s]) {
          slot = s;
          break;
        }
      }
      const int src = g.PickScalar();
      if (slot < 0 || src < 0) {
        break;
      }
      static constexpr int32_t kAtomicOps[] = {bpf::kAtomicAdd, bpf::kAtomicOr,
                                               bpf::kAtomicAnd, bpf::kAtomicXor,
                                               bpf::kAtomicAdd | bpf::kAtomicFetch};
      g.Emit(bpf::AtomicOp(bpf::kSizeDw, bpf::kR10, static_cast<uint8_t>(src),
                           static_cast<int16_t>(-8 * (slot + 1)),
                           kAtomicOps[g.rng->Below(5)]));
      break;
    }
    case 7: {  // scalar refinement via masking (feeds variable-offset uses)
      const int reg = g.PickScalar();
      if (reg < 0) {
        break;
      }
      const int64_t bound = 7 + 8 * static_cast<int64_t>(g.rng->Below(8));
      g.Emit(bpf::AluImm(bpf::kAluAnd, static_cast<uint8_t>(reg),
                         static_cast<int32_t>(bound)));
      g.regs[reg] = GReg{GK::kScalarSmall, -1, 0, bound};
      break;
    }
  }
}

void EmitBasicFrame(GenCtx& g) {
  const int ops = static_cast<int>(1 + g.rng->Below(4));
  for (int i = 0; i < ops; ++i) {
    EmitBasicOp(g);
  }
}

// ---------- call frame ----------

void EmitCallFrame(GenCtx& g);
void EmitFrames(GenCtx& g, int budget, int depth);

// Emits `r0 = map_lookup(map, key-on-stack)` + optional null check + uses.
void EmitMapLookupPattern(GenCtx& g, int map) {
  const MapDef& def = g.maps[map];
  const int key_off = g.InitStack(static_cast<int>(def.key_size));
  // Sometimes force a guaranteed-miss key so the OR_NULL branch is real.
  if (g.Chance(0.5)) {
    g.Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, static_cast<int16_t>(key_off), 77));
  }
  g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
  g.StackPtrTo(bpf::kR2, key_off);
  g.Emit(bpf::CallHelper(bpf::kHelperMapLookupElem));
  for (int r = 1; r <= 5; ++r) {
    g.regs[r] = GReg{GK::kUninit};
  }
  g.regs[0] = GReg{GK::kMapValueNull, map};

  // CVE-2022-23222 pattern: arithmetic on the nullable pointer before the
  // null check. Rejected by fixed verifiers, loadable under the CVE.
  const bool cve_pattern = g.options->risky && g.Chance(0.05);
  if (cve_pattern) {
    // Nonzero delta: at runtime a missed lookup leaves r0 == delta != 0, so
    // the null check takes the "non-null" branch with a garbage pointer.
    g.Emit(bpf::AluImm(bpf::kAluAdd, bpf::kR0,
                       static_cast<int32_t>(8 * (1 + g.rng->Below(3)))));
  }

  if (!g.options->risky || !g.Chance(0.10)) {
    // Null check guarding a body that dereferences the value.
    std::vector<Insn> saved = std::move(g.out);
    g.out.clear();
    g.regs[0].kind = GK::kMapValue;
    EmitMapValueOps(g, 0);
    std::vector<Insn> body = std::move(g.out);
    g.out = std::move(saved);
    g.Emit(bpf::JmpImm(bpf::kJmpJeq, bpf::kR0, 0, static_cast<int16_t>(body.size())));
    for (const Insn& insn : body) {
      g.Emit(insn);
    }
    g.regs[0] = GReg{GK::kScalar};  // merged: value-or-zero
    // Keep a map-value copy alive across later frames occasionally.
    if (g.Chance(0.3)) {
      // Re-check and stash in a callee-saved register.
      g.Emit(bpf::MovReg(bpf::kR7, bpf::kR0));
      g.regs[7] = GReg{GK::kScalar};
    }
  } else {
    // Risky: dereference without a null check (rejected unless buggy).
    const int dst = g.PickDest();
    if (dst >= 0) {
      g.Emit(bpf::LoadMem(bpf::kSizeDw, static_cast<uint8_t>(dst), bpf::kR0, 0));
      g.regs[dst] = GReg{GK::kScalar};
    }
    g.regs[0] = GReg{GK::kScalar};
  }
}

// Bug #1 shape (Listing 2): compare a nullable map value against a trusted
// PTR_TO_BTF_ID that is NULL at runtime, then dereference in the equal path.
void EmitNullnessPropagationPattern(GenCtx& g) {
  const int hash = g.FindMapOfType(MapType::kHash);
  if (hash < 0) {
    return;
  }
  // r8 = task->mm (PTR_TO_BTF_ID, runtime NULL for kernel threads)
  g.EmitLdImm64(bpf::kR8, static_cast<uint64_t>(bpf::kBtfMmStruct), bpf::kPseudoBtfId);
  g.regs[8] = GReg{GK::kBtfPtr, -1, bpf::kBtfMmStruct};

  const MapDef& def = g.maps[hash];
  const int key_off = g.InitStack(static_cast<int>(def.key_size));
  g.Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, static_cast<int16_t>(key_off), 7777));
  g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(hash + 1), bpf::kPseudoMapFd);
  g.StackPtrTo(bpf::kR2, key_off);
  g.Emit(bpf::CallHelper(bpf::kHelperMapLookupElem));
  for (int r = 1; r <= 5; ++r) {
    g.regs[r] = GReg{GK::kUninit};
  }
  // if r0 != r8 goto +1  -> the fall-through is the "equal" path where the
  // buggy verifier marks r0 non-null; at runtime both are NULL.
  g.Emit(bpf::JmpReg(bpf::kJmpJne, bpf::kR0, bpf::kR8, 1));
  g.Emit(bpf::LoadMem(bpf::kSizeDw, bpf::kR9, bpf::kR0, 0));
  g.regs[9] = GReg{GK::kScalar};
  g.regs[0] = GReg{GK::kScalar};
}

// Bug #3 shape: refine a caller-saved scalar, call a kfunc pair, then use
// the (actually clobbered) register as a map-value offset. No helper call
// may sit between the kfunc and the use — helpers legitimately scratch the
// argument registers in both worlds.
void EmitKfuncStaleBoundsPattern(GenCtx& g) {
  const int map = g.FindMapOfType(MapType::kArray);
  if (map < 0 || g.maps[map].value_size < 16) {
    return;
  }
  // The task pointer must survive the helper call below: callee-saved only.
  int task = g.PickReg(
      [](int r, const GReg& reg) { return r >= 6 && r <= 9 && reg.kind == GK::kTaskBtf; });
  if (task < 0) {
    g.EmitLdImm64(bpf::kR7, static_cast<uint64_t>(bpf::kBtfTaskStruct), bpf::kPseudoBtfId);
    g.regs[7] = GReg{GK::kTaskBtf};
    task = 7;
  }
  // Map value into r8 (callee-saved) behind a null check that skips the
  // whole pattern tail.
  const int key_off = g.InitStack(4);
  g.Emit(bpf::StoreMemImm(bpf::kSizeW, bpf::kR10, static_cast<int16_t>(key_off), 0));
  g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
  g.StackPtrTo(bpf::kR2, key_off);
  g.Emit(bpf::CallHelper(bpf::kHelperMapLookupElem));
  g.Emit(bpf::JmpImm(bpf::kJmpJeq, bpf::kR0, 0, 9));
  g.Emit(bpf::MovReg(bpf::kR8, bpf::kR0));
  // Variable bounded caller-saved scalar (a constant would be folded and
  // carry no alu_limit check), then an acquire/release kfunc pair.
  g.Emit(bpf::LoadMem(bpf::kSizeW, bpf::kR3, bpf::kR8, 0));
  g.Emit(bpf::AluImm(bpf::kAluAnd, bpf::kR3, 7));
  g.Emit(bpf::MovReg(bpf::kR1, static_cast<uint8_t>(task)));
  g.Emit(bpf::CallKfunc(bpf::kKfuncTaskAcquire));
  g.Emit(bpf::MovReg(bpf::kR1, bpf::kR0));
  g.Emit(bpf::CallKfunc(bpf::kKfuncTaskRelease));
  // Stale-bound use: the fixed verifier sees r3 uninitialized here; bug #3
  // keeps the pre-call [0,8) range while the native call left garbage.
  g.Emit(bpf::AluReg(bpf::kAluAdd, bpf::kR8, bpf::kR3));
  g.Emit(bpf::LoadMem(bpf::kSizeDw, bpf::kR9, bpf::kR8, 0));
  for (int r = 0; r <= 5; ++r) {
    g.regs[r] = r == 0 ? GReg{GK::kScalar} : GReg{GK::kUninit};
  }
  g.regs[8] = GReg{GK::kScalar};
  g.regs[9] = GReg{GK::kScalar};
}

void EmitCallFrame(GenCtx& g) {
  const std::vector<int32_t> helpers = bpf::AvailableHelpers(g.version, g.type);
  if (helpers.empty()) {
    return;
  }

  // RCU read-side critical section around a basic frame (kfunc pair).
  if (g.features.kfunc_calls && g.Chance(0.05)) {
    g.Emit(bpf::CallKfunc(bpf::kKfuncRcuReadLock));
    for (int r = 0; r <= 5; ++r) {
      g.regs[r] = GReg{GK::kUninit};
    }
    EmitBasicFrame(g);
    g.Emit(bpf::CallKfunc(bpf::kKfuncRcuReadUnlock));
    for (int r = 0; r <= 5; ++r) {
      g.regs[r] = GReg{GK::kUninit};
    }
    return;
  }

  // Occasionally emit one of the targeted bug shapes.
  if (g.options->risky && g.features.nullness_propagation && g.Chance(0.08)) {
    EmitNullnessPropagationPattern(g);
    return;
  }
  if (g.options->risky && g.features.kfunc_calls && g.Chance(0.08)) {
    EmitKfuncStaleBoundsPattern(g);
    return;
  }

  // Pseudo eBPF function call: a small leaf subprogram taking one scalar.
  if (g.Chance(0.08) && g.subprogs.size() < 3) {
    std::vector<Insn> body;
    body.push_back(bpf::MovReg(bpf::kR0, bpf::kR1));
    const int ops = static_cast<int>(1 + g.rng->Below(3));
    for (int i = 0; i < ops; ++i) {
      static constexpr uint8_t kOps[] = {bpf::kAluAdd, bpf::kAluXor, bpf::kAluMul,
                                         bpf::kAluRsh};
      const uint8_t op = kOps[g.rng->Below(4)];
      body.push_back(bpf::AluImm(op, bpf::kR0,
                                 op == bpf::kAluRsh
                                     ? static_cast<int32_t>(g.rng->Below(16))
                                     : static_cast<int32_t>(g.rng->Below(1024))));
    }
    // Subprograms may also use their own stack frame.
    if (g.Chance(0.5)) {
      body.push_back(bpf::StoreMemReg(bpf::kSizeDw, bpf::kR10, bpf::kR0, -8));
      body.push_back(bpf::LoadMem(bpf::kSizeDw, bpf::kR0, bpf::kR10, -8));
    }
    body.push_back(bpf::Exit());
    g.subprogs.push_back(std::move(body));

    const int scalar = g.PickScalar();
    if (scalar >= 0 && scalar != bpf::kR1) {
      g.Emit(bpf::MovReg(bpf::kR1, static_cast<uint8_t>(scalar)));
    } else if (scalar < 0) {
      g.Emit(bpf::MovImm(bpf::kR1, static_cast<int32_t>(g.rng->Below(128))));
    }
    g.pending_calls.push_back(
        GenCtx::PendingCall{g.out.size(), g.subprogs.size() - 1});
    g.Emit(bpf::CallPseudoFunc(0));  // imm patched after the end section
    for (int r = 1; r <= 5; ++r) {
      g.regs[r] = GReg{GK::kUninit};
    }
    g.regs[0] = GReg{GK::kScalar};
    return;
  }

  const int32_t helper = helpers[g.rng->Below(helpers.size())];
  const bool tracing =
      g.type == ProgType::kKprobe || g.type == ProgType::kTracepoint;

  switch (helper) {
    case bpf::kHelperMapLookupElem: {
      EmitMapLookupPattern(g, static_cast<int>(g.rng->Below(g.maps.size())));
      return;
    }
    case bpf::kHelperMapUpdateElem: {
      const int map = static_cast<int>(g.rng->Below(g.maps.size()));
      const MapDef& def = g.maps[map];
      if (def.value_size > 64) {
        return;
      }
      const int key_off = g.InitStack(static_cast<int>(def.key_size));
      const int val_off = g.InitStack(static_cast<int>(def.value_size));
      g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
      g.StackPtrTo(bpf::kR2, key_off);
      g.StackPtrTo(bpf::kR3, val_off);
      g.Emit(bpf::MovImm(bpf::kR4, 0));
      g.regs[4] = GReg{GK::kScalarSmall, -1, 0, 0};
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperMapDeleteElem: {
      const int map = static_cast<int>(g.rng->Below(g.maps.size()));
      const int key_off = g.InitStack(static_cast<int>(g.maps[map].key_size));
      g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
      g.StackPtrTo(bpf::kR2, key_off);
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperTracePrintk: {
      const int fmt_off = g.InitStack(8);
      g.StackPtrTo(bpf::kR1, fmt_off);
      g.Emit(bpf::MovImm(bpf::kR2, static_cast<int32_t>(1 + g.rng->Below(8))));
      g.Emit(bpf::MovImm(bpf::kR3, 0));
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperGetCurrentComm: {
      const int buf_off = g.InitStack(16);
      g.StackPtrTo(bpf::kR1, buf_off);
      g.Emit(bpf::MovImm(bpf::kR2, 16));
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperPerfEventOutput: {
      const int ctx = g.FindKind(GK::kCtx);
      if (ctx < 0) {
        return;
      }
      const int data_off = g.InitStack(16);
      g.Emit(bpf::MovReg(bpf::kR1, static_cast<uint8_t>(ctx)));
      const int map = g.FindMapOfType(MapType::kArray);
      g.EmitLdImm64(bpf::kR2, static_cast<uint64_t>((map < 0 ? 0 : map) + 1),
                    bpf::kPseudoMapFd);
      g.Emit(bpf::MovImm(bpf::kR3, 0));
      g.StackPtrTo(bpf::kR4, data_off);
      g.Emit(bpf::MovImm(bpf::kR5, 16));
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperSendSignal:
      g.Emit(bpf::MovImm(bpf::kR1, 9));
      g.Emit(bpf::CallHelper(helper));
      break;
    case bpf::kHelperGetCurrentTaskBtf:
      g.Emit(bpf::CallHelper(helper));
      for (int r = 1; r <= 5; ++r) {
        g.regs[r] = GReg{GK::kUninit};
      }
      g.regs[0] = GReg{GK::kTaskBtf};
      if (g.Chance(0.6)) {
        g.Emit(bpf::MovReg(bpf::kR9, bpf::kR0));
        g.regs[9] = GReg{GK::kTaskBtf};
      }
      return;
    case bpf::kHelperRingbufOutput: {
      const int map = g.FindMapOfType(MapType::kRingbuf);
      if (map < 0) {
        return;
      }
      const int data_off = g.InitStack(16);
      g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(map + 1), bpf::kPseudoMapFd);
      g.StackPtrTo(bpf::kR2, data_off);
      g.Emit(bpf::MovImm(bpf::kR3, 16));
      g.Emit(bpf::MovImm(bpf::kR4, 0));
      g.Emit(bpf::CallHelper(helper));
      break;
    }
    case bpf::kHelperTaskStorageGet:
    case bpf::kHelperTaskStorageDelete: {
      if (!tracing) {
        return;
      }
      const int hash = g.FindMapOfType(MapType::kHash);
      int task = g.FindKind(GK::kTaskBtf);
      if (hash < 0) {
        return;
      }
      if (task < 0) {
        if (!g.features.task_btf_helpers) {
          return;
        }
        g.Emit(bpf::CallHelper(bpf::kHelperGetCurrentTaskBtf));
        g.Emit(bpf::MovReg(bpf::kR9, bpf::kR0));
        g.regs[9] = GReg{GK::kTaskBtf};
        task = 9;
      }
      g.EmitLdImm64(bpf::kR1, static_cast<uint64_t>(hash + 1), bpf::kPseudoMapFd);
      g.Emit(bpf::MovReg(bpf::kR2, static_cast<uint8_t>(task)));
      if (helper == bpf::kHelperTaskStorageGet) {
        g.Emit(bpf::MovImm(bpf::kR3, 0));
        g.Emit(bpf::MovImm(bpf::kR4, 1));  // BPF_LOCAL_STORAGE_GET_F_CREATE
      }
      g.Emit(bpf::CallHelper(helper));
      for (int r = 1; r <= 5; ++r) {
        g.regs[r] = GReg{GK::kUninit};
      }
      g.regs[0] = helper == bpf::kHelperTaskStorageGet ? GReg{GK::kMapValueNull, hash}
                                                       : GReg{GK::kScalar};
      if (helper == bpf::kHelperTaskStorageGet) {
        // Null check so the state stays clean.
        g.Emit(bpf::JmpImm(bpf::kJmpJeq, bpf::kR0, 0, 1));
        g.Emit(bpf::LoadMem(bpf::kSizeDw, bpf::kR8, bpf::kR0, 0));
        g.regs[8] = GReg{GK::kScalar};
        g.regs[0] = GReg{GK::kScalar};
      }
      return;
    }
    default:
      // Nullary scalar helpers: ktime, prandom, smp id, pid/tgid, task.
      if (g.options->risky && g.Chance(0.05)) {
        // Bad argument on purpose (unknown state / wrong type).
        g.Emit(bpf::MovReg(bpf::kR1, bpf::kR10));
      }
      g.Emit(bpf::CallHelper(helper));
      break;
  }
  for (int r = 1; r <= 5; ++r) {
    g.regs[r] = GReg{GK::kUninit};
  }
  g.regs[0] = GReg{GK::kScalar};
}

// ---------- jump frame ----------

void MergeStates(GenCtx& g, const GReg before[11], const bool stack_before[bpf::kStackSlots]) {
  for (int r = 0; r <= 10; ++r) {
    if (g.regs[r].kind == before[r].kind && g.regs[r].map == before[r].map &&
        g.regs[r].btf == before[r].btf) {
      if (g.regs[r].kind == GK::kScalarSmall) {
        g.regs[r].bound = std::max(g.regs[r].bound, before[r].bound);
      }
      continue;
    }
    if (g.regs[r].kind == GK::kUninit || before[r].kind == GK::kUninit) {
      g.regs[r] = GReg{GK::kUninit};
    } else {
      g.regs[r] = GReg{GK::kScalar};
    }
  }
  for (int s = 0; s < bpf::kStackSlots; ++s) {
    g.stack_init[s] = g.stack_init[s] && stack_before[s];
  }
}

void EmitJumpFrame(GenCtx& g, int depth) {
  // Back-edge (bounded loop) with small probability; forward skip otherwise.
  if (g.Chance(0.25)) {
    // rC = N; body; rC -= 1; if rC != 0 goto -(len+2)
    const uint8_t counter = static_cast<uint8_t>(6 + g.rng->Below(4));
    const int iters = static_cast<int>(2 + g.rng->Below(3));
    g.Emit(bpf::MovImm(counter, iters));
    g.regs[counter] = GReg{GK::kScalarSmall, -1, 0, iters};
    std::vector<Insn> saved = std::move(g.out);
    g.out.clear();
    EmitBasicFrame(g);
    std::vector<Insn> body = std::move(g.out);
    g.out = std::move(saved);
    for (const Insn& insn : body) {
      g.Emit(insn);
    }
    g.Emit(bpf::AluImm(bpf::kAluSub, counter, 1));
    g.Emit(bpf::JmpImm(bpf::kJmpJne, counter, 0,
                       static_cast<int16_t>(-(static_cast<int>(body.size()) + 2))));
    g.regs[counter] = GReg{GK::kScalarSmall, -1, 0, iters};
    return;
  }

  // Forward conditional over a nested body.
  int cond = g.PickScalar();
  if (cond < 0) {
    const uint8_t tmp = 5;
    g.Emit(bpf::MovImm(tmp, static_cast<int32_t>(g.rng->Below(16))));
    g.regs[tmp] = GReg{GK::kScalarSmall, -1, 0, 15};
    cond = tmp;
  }
  GReg before[11];
  bool stack_before[bpf::kStackSlots];
  std::copy(std::begin(g.regs), std::end(g.regs), before);
  std::copy(std::begin(g.stack_init), std::end(g.stack_init), stack_before);

  std::vector<Insn> saved = std::move(g.out);
  g.out.clear();
  const size_t pending_before = g.pending_calls.size();
  const int inner = static_cast<int>(1 + g.rng->Below(2));
  EmitFrames(g, inner, depth + 1);
  std::vector<Insn> body = std::move(g.out);
  g.out = std::move(saved);
  // Pending subprogram calls recorded inside the body carry body-relative
  // indices; rebase them to the final stream (body lands after the jump).
  const size_t body_start = g.out.size() + 1;
  for (size_t k = pending_before; k < g.pending_calls.size(); ++k) {
    g.pending_calls[k].call_idx += body_start;
  }

  static constexpr uint8_t kCmpOps[] = {bpf::kJmpJeq,  bpf::kJmpJne,  bpf::kJmpJgt,
                                        bpf::kJmpJlt,  bpf::kJmpJsgt, bpf::kJmpJset};
  const uint8_t op = kCmpOps[g.rng->Below(6)];
  if (g.Chance(0.25)) {
    // JMP32 variant: compares the subregisters, refining 32-bit bounds.
    g.Emit(bpf::Jmp32Imm(op, static_cast<uint8_t>(cond),
                         static_cast<int32_t>(g.rng->Below(32)),
                         static_cast<int16_t>(body.size())));
  } else {
    g.Emit(bpf::JmpImm(op, static_cast<uint8_t>(cond), static_cast<int32_t>(g.rng->Below(32)),
                       static_cast<int16_t>(body.size())));
  }
  for (const Insn& insn : body) {
    g.Emit(insn);
  }
  MergeStates(g, before, stack_before);
}

void EmitFrames(GenCtx& g, int budget, int depth) {
  for (int i = 0; i < budget; ++i) {
    // Paper §4.1: frame kinds are selected with equal probability.
    int choice = static_cast<int>(g.rng->Below(3));
    if (choice == 1 && (!g.options->call_frames || g.out.size() > 400)) {
      choice = 0;
    }
    if (choice == 2 && (!g.options->jump_frames || depth >= g.options->max_jump_depth)) {
      choice = 0;
    }
    switch (choice) {
      case 0:
        EmitBasicFrame(g);
        break;
      case 1:
        EmitCallFrame(g);
        break;
      case 2:
        EmitJumpFrame(g, depth);
        break;
    }
  }
}

void EmitEndSection(GenCtx& g) {
  const int32_t ret =
      g.type == ProgType::kXdp ? static_cast<int32_t>(g.rng->Below(5)) : 0;
  g.Emit(bpf::MovImm(bpf::kR0, ret));
  g.Emit(bpf::Exit());
}

std::vector<MapDef> GenerateMaps(Rng& rng) {
  std::vector<MapDef> maps;
  MapDef array;
  array.type = MapType::kArray;
  array.key_size = 4;
  array.value_size = static_cast<uint32_t>(8 * (1 + rng.Below(8)));
  array.max_entries = static_cast<uint32_t>(1 + rng.Below(8));
  maps.push_back(array);

  MapDef hash;
  hash.type = MapType::kHash;
  hash.key_size = rng.OneIn(2) ? 4 : 8;
  hash.value_size = static_cast<uint32_t>(8 * (1 + rng.Below(8)));
  hash.max_entries = static_cast<uint32_t>(2 + rng.Below(14));
  maps.push_back(hash);

  if (rng.OneIn(3)) {
    MapDef extra;
    if (rng.OneIn(2)) {
      extra.type = MapType::kPercpuArray;
      extra.key_size = 4;
      extra.value_size = 16;
      extra.max_entries = 4;
    } else {
      extra.type = MapType::kRingbuf;
      extra.key_size = 4;
      extra.value_size = 8;
      extra.max_entries = 256;  // ring bytes
    }
    maps.push_back(extra);
  }
  return maps;
}

}  // namespace

FuzzCase StructuredGenerator::Generate(bpf::Rng& rng) {
  FuzzCase the_case = GenerateOnce(rng);
  // Lint filter: a program the CFG/dataflow lints prove unverifiable is a
  // guaranteed -EINVAL; spend at most two regenerations trying to do better
  // (structured output is almost always lint-clean, so this rarely fires).
  for (int attempt = 0; options_.lint_filter && attempt < 2; ++attempt) {
    if (!LintProgram(the_case.prog).CertainReject()) {
      break;
    }
    the_case = GenerateOnce(rng);
  }
  return the_case;
}

FuzzCase StructuredGenerator::GenerateOnce(bpf::Rng& rng) {
  FuzzCase the_case;

  GenCtx g;
  g.rng = &rng;
  g.features = KernelFeatures::For(version_);
  g.version = version_;
  g.options = &options_;

  static constexpr ProgType kTypes[] = {ProgType::kSocketFilter, ProgType::kKprobe,
                                        ProgType::kTracepoint, ProgType::kXdp};
  g.type = kTypes[rng.Below(4)];
  g.maps = GenerateMaps(rng);

  EmitInitHeader(g);
  EmitFrames(g, static_cast<int>(1 + rng.Below(options_.max_body_frames)), 0);
  // Occasional large straight-line block (unrolled-loop shape); stores go
  // through a copied stack pointer, so sanitation inflates them — the size
  // pressure that reaches the kmemdup limit (bug #8).
  if (rng.OneIn(48)) {
    g.Emit(bpf::MovReg(bpf::kR5, bpf::kR10));
    g.Emit(bpf::AluImm(bpf::kAluAdd, bpf::kR5, -8));
    g.Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR10, -8, 0));
    g.regs[5] = GReg{GK::kStack};
    const int pad = static_cast<int>(200 + rng.Below(400));
    for (int i = 0; i < pad; ++i) {
      if (rng.OneIn(4)) {
        EmitBasicOp(g);
      } else {
        if (g.regs[5].kind != GK::kStack) {  // a basic op may have clobbered r5
          g.Emit(bpf::MovReg(bpf::kR5, bpf::kR10));
          g.Emit(bpf::AluImm(bpf::kAluAdd, bpf::kR5, -8));
          g.regs[5] = GReg{GK::kStack};
        }
        g.Emit(bpf::StoreMemImm(bpf::kSizeDw, bpf::kR5, 0, i));
      }
    }
  }
  EmitEndSection(g);

  // Materialize pseudo eBPF functions after the end section and patch the
  // pending call targets.
  std::vector<size_t> subprog_starts;
  for (const std::vector<Insn>& body : g.subprogs) {
    subprog_starts.push_back(g.out.size());
    for (const Insn& insn : body) {
      g.Emit(insn);
    }
  }
  for (const GenCtx::PendingCall& call : g.pending_calls) {
    g.out[call.call_idx].imm = static_cast<int32_t>(subprog_starts[call.subprog]) -
                               (static_cast<int32_t>(call.call_idx) + 1);
  }

  the_case.prog.type = g.type;
  the_case.prog.insns = std::move(g.out);
  the_case.maps = g.maps;
  the_case.test_runs = static_cast<int>(1 + rng.Below(3));

  const bool tracing = g.type == ProgType::kKprobe || g.type == ProgType::kTracepoint;
  if (tracing && rng.Chance(0.5)) {
    the_case.do_attach = true;
    static constexpr TracepointId kTargets[] = {
        TracepointId::kContentionBegin, TracepointId::kTracePrintk,
        TracepointId::kSchedSwitch, TracepointId::kSysEnter};
    the_case.attach_target = kTargets[rng.Below(4)];
    the_case.events.push_back(the_case.attach_target);
    if (rng.OneIn(2)) {
      the_case.events.push_back(kTargets[rng.Below(4)]);
    }
  }
  if (g.type == ProgType::kXdp) {
    the_case.do_xdp_install = rng.Chance(0.6);
    the_case.prog.offload_requested = rng.Chance(0.15);
  }
  the_case.do_map_batch = rng.Chance(0.3);
  return the_case;
}

void StructuredGenerator::Mutate(bpf::Rng& rng, FuzzCase& the_case) {
  if (the_case.prog.insns.empty() || rng.OneIn(3)) {
    the_case = Generate(rng);
    return;
  }
  // Keep the pre-mutation case so a lint-rejected mutation can be undone
  // without consuming more randomness (campaign determinism).
  const FuzzCase before = options_.lint_filter ? the_case : FuzzCase{};
  const int kind = static_cast<int>(rng.Below(3));
  auto& insns = the_case.prog.insns;
  switch (kind) {
    case 0: {  // immediate tweak on a random ALU instruction
      for (int attempt = 0; attempt < 8; ++attempt) {
        Insn& insn = insns[rng.Below(insns.size())];
        if (insn.IsAlu() && !insn.SrcIsReg() && insn.AluOp() != bpf::kAluEnd) {
          insn.imm = static_cast<int32_t>(insn.imm + static_cast<int32_t>(rng.Range(-8, 8)));
          const bool shift = insn.AluOp() == bpf::kAluLsh || insn.AluOp() == bpf::kAluRsh ||
                             insn.AluOp() == bpf::kAluArsh;
          if (shift) {
            insn.imm &= insn.Class() == bpf::kClassAlu64 ? 63 : 31;
          }
          if ((insn.AluOp() == bpf::kAluDiv || insn.AluOp() == bpf::kAluMod) &&
              insn.imm == 0) {
            insn.imm = 1;
          }
          break;
        }
      }
      break;
    }
    case 1: {  // adjacent-instruction duplication (paper: unrolled loops)
      for (int attempt = 0; attempt < 8; ++attempt) {
        const size_t pos = rng.Below(insns.size());
        const Insn& insn = insns[pos];
        if (insn.IsAlu() || insn.IsMemStore()) {
          InsertInsnPatched(the_case.prog, pos, insn);
          break;
        }
      }
      break;
    }
    case 2: {  // offset tweak on a random memory access
      for (int attempt = 0; attempt < 8; ++attempt) {
        Insn& insn = insns[rng.Below(insns.size())];
        if (insn.IsMemLoad() || insn.IsMemStore()) {
          insn.off = static_cast<int16_t>(insn.off + 8 * rng.Range(-2, 2));
          break;
        }
      }
      break;
    }
  }
  if (options_.lint_filter && LintProgram(the_case.prog).CertainReject()) {
    the_case = before;  // undo a mutation the verifier is certain to reject
  }
}

}  // namespace bvf
