#include "src/core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/journal/journal.h"
#include "src/core/serialize.h"
#include "src/kernel/coverage.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/jit_prog.h"
#include "src/runtime/verdict_cache.h"

namespace bvf {

using bpf::Coverage;

namespace {

struct WorkerState {
  std::unique_ptr<Generator> gen_owned;  // null for the prototype's worker
  Generator* gen = nullptr;
  std::unique_ptr<CaseRunner> runner;
  std::unique_ptr<bpf::VerdictCacheShard> shard;
  std::unique_ptr<bpf::DecodeCacheShard> dshard;
  std::unique_ptr<bpf::JitCacheShard> jshard;
  bpf::CoverageSink sink;
  EpochShardResult out;  // counters + iteration-ordered records, this epoch
};

}  // namespace

ParallelFuzzer::ParallelFuzzer(Generator& generator, CampaignOptions options)
    : generator_(generator), options_(std::move(options)) {}

CampaignStats ParallelFuzzer::Run() {
  CampaignStats stats;
  stats.tool = generator_.name();
  options_.epoch_len = std::max<uint64_t>(1, options_.epoch_len);
  stats.options = options_;

  const uint64_t epoch_len = options_.epoch_len;
  int jobs = std::max(1, options_.jobs);

  // Worker 0 drives the prototype generator; every further worker needs an
  // independent clone. No clone support → degrade to one worker (results are
  // identical by construction, only throughput changes).
  std::vector<std::unique_ptr<Generator>> clones;
  for (int w = 1; w < jobs; ++w) {
    std::unique_ptr<Generator> clone = generator_.Clone();
    if (clone == nullptr) {
      jobs = 1;
      clones.clear();
      break;
    }
    clones.push_back(std::move(clone));
  }

  const std::string fingerprint = FingerprintOptions(options_, stats.tool);
  std::vector<FuzzCase> corpus;
  uint64_t start_iteration = 1;

  if (!options_.resume_path.empty()) {
    CampaignCheckpoint cp;
    std::string error;
    if (LoadCheckpoint(options_.resume_path, &cp, &error) != 0) {
      stats.resume_error = error.empty() ? "checkpoint load failed" : error;
      return stats;
    }
    // Field-wise validation (engine, epoch_len, options hash) before any
    // RNG/stats/corpus/coverage state is touched; a rejected resume reports
    // which field mismatched and leaves the campaign untouched.
    const std::string mismatch =
        ValidateCheckpointCompat(cp, options_, stats.tool, kEngineParallel);
    if (!mismatch.empty()) {
      stats.resume_error = mismatch;
      return stats;
    }
    stats = std::move(cp.stats);
    stats.options = options_;
    stats.tool = generator_.name();
    corpus = std::move(cp.corpus);
    Coverage::Get().ResetHits();
    Coverage::Get().RestoreHitKeys(cp.coverage_keys);
    start_iteration = cp.next_iteration;
    stats.resumed_from = start_iteration;
  } else if (options_.reset_coverage) {
    Coverage::Get().ResetHits();
  }

  // Conformance prologue before epoch 0, coordinator-side so it runs exactly
  // once for any job count. Resumed campaigns skip it: its findings and
  // corpus seeds are already inside the checkpoint.
  if (options_.resume_path.empty() && !options_.conformance_dir.empty() &&
      !RunConformancePrologue(options_, stats, &corpus)) {
    return stats;
  }

  // Write-ahead journal: every barrier's newly merged findings and corpus
  // growth are appended + fsynced before the epoch is considered done, so a
  // kill between checkpoints cannot lose a recorded finding.
  Journal journal;
  if (!options_.journal_path.empty()) {
    std::string error;
    if (journal.Open(options_.journal_path, &error) != 0) {
      stats.resume_error = "journal open failed: " + error;
      return stats;
    }
  }

  const uint64_t sample_every =
      options_.coverage_points > 0
          ? std::max<uint64_t>(1, options_.iterations / options_.coverage_points)
          : 0;
  // A simulated kill is quantized UP to the containing epoch's end: the
  // parallel engine's state is only well-defined at barriers.
  uint64_t last_iteration = options_.iterations;
  if (options_.stop_after != 0 && options_.stop_after < last_iteration) {
    last_iteration =
        std::min(last_iteration, ((options_.stop_after - 1) / epoch_len + 1) * epoch_len);
  }

  bpf::VerdictCache cache;
  bpf::DecodeCache dcache;
  bpf::JitCache jcache;
  std::vector<WorkerState> workers(static_cast<size_t>(jobs));
  std::vector<bpf::VerdictCacheShard*> shards;
  std::vector<bpf::DecodeCacheShard*> dshards;
  std::vector<bpf::JitCacheShard*> jshards;
  // Evictions restored from a checkpoint happened in a previous process; this
  // process's cache starts empty, so the running total is base + local.
  const uint64_t base_decode_evictions = stats.decode_cache_evictions;
  const uint64_t base_jit_evictions = stats.jit_cache_evictions;
  const bool use_jit_cache =
      options_.interp_engine == bpf::ExecEngine::kJit && bpf::JitAvailable();
  for (int w = 0; w < jobs; ++w) {
    WorkerState& worker = workers[static_cast<size_t>(w)];
    if (w == 0) {
      worker.gen = &generator_;
    } else {
      worker.gen_owned = std::move(clones[static_cast<size_t>(w - 1)]);
      worker.gen = worker.gen_owned.get();
    }
    worker.runner = std::make_unique<CaseRunner>(options_);
    if (options_.verdict_cache) {
      worker.shard = std::make_unique<bpf::VerdictCacheShard>(cache, /*immediate=*/false);
      worker.runner->set_verdict_shard(worker.shard.get());
      shards.push_back(worker.shard.get());
    }
    if (options_.interp_engine != bpf::ExecEngine::kLegacy) {
      // Same epoch discipline as the verdict cache: workers read the frozen
      // committed set and buffer inserts; the barrier commits in iteration
      // order, so hit/miss/evict counts are job-count invariant.
      worker.dshard = std::make_unique<bpf::DecodeCacheShard>(dcache, /*immediate=*/false);
      worker.runner->set_decode_shard(worker.dshard.get());
      dshards.push_back(worker.dshard.get());
    }
    if (use_jit_cache) {
      worker.jshard = std::make_unique<bpf::JitCacheShard>(jcache, /*immediate=*/false);
      worker.runner->set_jit_shard(worker.jshard.get());
      jshards.push_back(worker.jshard.get());
    }
  }

  // Epoch-frozen snapshots the workers read; only the coordinator writes
  // them, at barriers, while every worker is parked (the barrier mutex
  // provides the happens-before edges).
  const std::set<std::string>* frozen_sigs = &stats.finding_signatures;

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  uint64_t generation = 0;
  uint64_t epoch_start = 0;
  uint64_t epoch_end = 0;
  int done_count = 0;
  bool shutdown = false;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    threads.emplace_back([&, w] {
      WorkerState& worker = workers[static_cast<size_t>(w)];
      Coverage::InstallThreadSink(&worker.sink);
      uint64_t seen_generation = 0;
      for (;;) {
        uint64_t start = 0;
        uint64_t end = 0;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_work.wait(lock,
                       [&] { return shutdown || generation != seen_generation; });
          if (shutdown) {
            break;
          }
          seen_generation = generation;
          start = epoch_start;
          end = epoch_end;
        }
        RunEpochShard(options_, *worker.gen, *worker.runner, worker.sink, corpus,
                      *frozen_sigs, w, jobs, start, end, worker.out);
        {
          std::lock_guard<std::mutex> lock(mu);
          if (++done_count == jobs) {
            cv_done.notify_one();
          }
        }
      }
      Coverage::InstallThreadSink(nullptr);
    });
  }

  const auto save_checkpoint = [&](uint64_t next_iteration) {
    CampaignCheckpoint cp;
    cp.next_iteration = next_iteration;
    cp.fingerprint = fingerprint;
    cp.engine = kEngineParallel;
    cp.epoch_len = epoch_len;
    cp.rng_state = {};  // per-iteration seeds; there is no stream position
    cp.corpus = corpus;
    cp.stats = stats;
    cp.stats.final_coverage = Coverage::Get().hit_count();
    cp.coverage_keys = Coverage::Get().SerializeHitKeys();
    if (SaveCheckpoint(options_.checkpoint_path, cp) == 0 && journal.is_open()) {
      // The checkpoint covers everything the journal held; restart it empty.
      journal.Rotate();
    }
  };

  uint64_t next = start_iteration;
  while (next <= last_iteration) {
    const uint64_t end =
        std::min(last_iteration, ((next - 1) / epoch_len + 1) * epoch_len);
    {
      std::lock_guard<std::mutex> lock(mu);
      epoch_start = next;
      epoch_end = end;
      done_count = 0;
      ++generation;
    }
    cv_work.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_done.wait(lock, [&] { return done_count == jobs; });
    }

    // ---- Barrier merge (workers parked) ----
    // 1. Order-independent counters (including per-epoch sanitizer deltas).
    for (WorkerState& worker : workers) {
      MergeEpochCounters(stats, worker.out.partial);
    }
    // 2. Coverage: union each worker's epoch delta into the committed set.
    for (WorkerState& worker : workers) {
      Coverage::Get().Commit(worker.sink);
    }
    // 3. Verdict cache: commit pending inserts in iteration order (the
    //    entry-cap cutoff must not depend on the sharding) and fold counters.
    if (options_.verdict_cache) {
      cache.CommitShards(shards);
      for (WorkerState& worker : workers) {
        stats.verdict_cache_hits += worker.shard->TakeHits();
        stats.verdict_cache_misses += worker.shard->TakeMisses();
        stats.canonical_cache_hits += worker.shard->TakeCanonicalHits();
        stats.canonical_cache_misses += worker.shard->TakeCanonicalMisses();
      }
    }
    if (options_.interp_engine != bpf::ExecEngine::kLegacy) {
      dcache.CommitShards(dshards);
      for (WorkerState& worker : workers) {
        stats.decode_cache_hits += worker.dshard->TakeHits();
        stats.decode_cache_misses += worker.dshard->TakeMisses();
      }
      stats.decode_cache_evictions = base_decode_evictions + dcache.evictions();
    }
    if (use_jit_cache) {
      jcache.CommitShards(jshards);
      for (WorkerState& worker : workers) {
        stats.jit_cache_hits += worker.jshard->TakeHits();
        stats.jit_cache_misses += worker.jshard->TakeMisses();
      }
      stats.jit_cache_evictions = base_jit_evictions + jcache.evictions();
    }
    // 4. Findings and corpus growth, in iteration order across all workers.
    const size_t findings_before = stats.findings.size();
    const size_t corpus_before = corpus.size();
    {
      std::vector<CaseRecord*> merged;
      for (WorkerState& worker : workers) {
        for (CaseRecord& record : worker.out.records) {
          merged.push_back(&record);
        }
      }
      MergeEpochRecords(std::move(merged), stats, corpus);
      for (WorkerState& worker : workers) {
        worker.out.records.clear();
      }
    }
    // 5. Coverage curve, epoch-quantized: every sample point inside this
    //    epoch reports the committed count after the epoch's merge.
    AppendEpochCurve(stats, next, end, sample_every, Coverage::Get().hit_count());

    // Write-ahead order: journal what this barrier merged, fsync, and only
    // then (possibly) checkpoint.
    if (journal.is_open()) {
      for (size_t i = findings_before; i < stats.findings.size(); ++i) {
        JournalRecord record;
        record.type = JournalRecordType::kFinding;
        record.iteration = stats.findings[i].iteration;
        std::ostringstream payload;
        serialize::SerializeFinding(payload, stats.findings[i]);
        record.payload = payload.str();
        journal.Append(record);
      }
      for (size_t i = corpus_before; i < corpus.size(); ++i) {
        JournalRecord record;
        record.type = JournalRecordType::kCorpusCase;
        record.iteration = end;
        std::ostringstream payload;
        serialize::SerializeCase(payload, corpus[i]);
        record.payload = payload.str();
        journal.Append(record);
      }
      journal.Append(JournalRecord{JournalRecordType::kMark, end + 1, ""});
      journal.Sync();
    }

    if (!options_.checkpoint_path.empty() && options_.checkpoint_every != 0 &&
        end != last_iteration &&
        end / options_.checkpoint_every > (next - 1) / options_.checkpoint_every) {
      save_checkpoint(end + 1);
    }
    next = end + 1;
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    shutdown = true;
  }
  cv_work.notify_all();
  for (std::thread& thread : threads) {
    thread.join();
  }

  stats.final_coverage = Coverage::Get().hit_count();
  if (!options_.checkpoint_path.empty()) {
    save_checkpoint(last_iteration + 1);
  }
  return stats;
}

}  // namespace bvf
