#include "src/core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/kernel/coverage.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/verdict_cache.h"

namespace bvf {

using bpf::Coverage;

namespace {

// Everything one worker produced for one iteration that the barrier merge
// has to order by iteration number. Pure counters do not need ordering and
// travel separately (WorkerState::partial).
struct CaseRecord {
  uint64_t iteration = 0;
  bool corpus_candidate = false;
  FuzzCase the_case;              // stored only when corpus_candidate
  std::vector<Finding> findings;  // already confirmed (see epoch rule below)
};

struct WorkerState {
  std::unique_ptr<Generator> gen_owned;  // null for the prototype's worker
  Generator* gen = nullptr;
  std::unique_ptr<CaseRunner> runner;
  std::unique_ptr<bpf::VerdictCacheShard> shard;
  std::unique_ptr<bpf::DecodeCacheShard> dshard;
  bpf::CoverageSink sink;
  CampaignStats partial;           // order-independent counters, this epoch
  std::vector<CaseRecord> records; // iteration-ascending (worker strides up)
};

// Sums the order-independent counter fields of |partial| into |into| and
// clears |partial| for the next epoch. Findings/corpus/curve/coverage are
// merged separately, in iteration order.
void MergeCounters(CampaignStats& into, CampaignStats& partial) {
  into.iterations += partial.iterations;
  into.accepted += partial.accepted;
  into.rejected += partial.rejected;
  into.exec_runs += partial.exec_runs;
  into.exec_failures += partial.exec_failures;
  into.panics += partial.panics;
  into.substrate_rebuilds += partial.substrate_rebuilds;
  into.fault_injected += partial.fault_injected;
  into.insns_total += partial.insns_total;
  into.insns_alu_jmp += partial.insns_alu_jmp;
  into.insns_mem += partial.insns_mem;
  into.insns_call += partial.insns_call;
  for (const auto& [err, count] : partial.reject_errno) {
    into.reject_errno[err] += count;
  }
  for (const auto& [err, count] : partial.exec_errno) {
    into.exec_errno[err] += count;
  }
  for (const auto& [outcome, count] : partial.outcomes) {
    into.outcomes[outcome] += count;
  }
  into.metamorph_bases += partial.metamorph_bases;
  into.metamorph_variants += partial.metamorph_variants;
  into.metamorph_verdict_divergences += partial.metamorph_verdict_divergences;
  into.metamorph_witness_divergences += partial.metamorph_witness_divergences;
  into.metamorph_sanitizer_divergences += partial.metamorph_sanitizer_divergences;
  partial = CampaignStats{};
}

}  // namespace

ParallelFuzzer::ParallelFuzzer(Generator& generator, CampaignOptions options)
    : generator_(generator), options_(std::move(options)) {}

CampaignStats ParallelFuzzer::Run() {
  CampaignStats stats;
  stats.tool = generator_.name();
  stats.options = options_;

  const uint64_t epoch_len = std::max<uint64_t>(1, options_.epoch_len);
  int jobs = std::max(1, options_.jobs);

  // Worker 0 drives the prototype generator; every further worker needs an
  // independent clone. No clone support → degrade to one worker (results are
  // identical by construction, only throughput changes).
  std::vector<std::unique_ptr<Generator>> clones;
  for (int w = 1; w < jobs; ++w) {
    std::unique_ptr<Generator> clone = generator_.Clone();
    if (clone == nullptr) {
      jobs = 1;
      clones.clear();
      break;
    }
    clones.push_back(std::move(clone));
  }

  const std::string fingerprint = ParallelFingerprint(options_, stats.tool);
  std::vector<FuzzCase> corpus;
  uint64_t start_iteration = 1;

  if (!options_.resume_path.empty()) {
    CampaignCheckpoint cp;
    std::string error;
    if (LoadCheckpoint(options_.resume_path, &cp, &error) != 0) {
      stats.resume_error = error.empty() ? "checkpoint load failed" : error;
      return stats;
    }
    if (cp.fingerprint != fingerprint) {
      stats.resume_error =
          "checkpoint fingerprint mismatch: the checkpoint was written by a "
          "campaign with different options";
      return stats;
    }
    stats = std::move(cp.stats);
    stats.options = options_;
    stats.tool = generator_.name();
    corpus = std::move(cp.corpus);
    Coverage::Get().ResetHits();
    Coverage::Get().RestoreHitKeys(cp.coverage_keys);
    start_iteration = cp.next_iteration;
    stats.resumed_from = start_iteration;
  } else if (options_.reset_coverage) {
    Coverage::Get().ResetHits();
  }

  // Sanitizer counters restored from a checkpoint belong to work done by a
  // previous process; each worker's sanitizer starts from zero and the
  // barrier recomputes stats.sanitizer = base + Σ workers.
  const SanitizerStats base_sanitizer = stats.sanitizer;

  const uint64_t sample_every =
      options_.coverage_points > 0
          ? std::max<uint64_t>(1, options_.iterations / options_.coverage_points)
          : 0;
  // A simulated kill is quantized UP to the containing epoch's end: the
  // parallel engine's state is only well-defined at barriers.
  uint64_t last_iteration = options_.iterations;
  if (options_.stop_after != 0 && options_.stop_after < last_iteration) {
    last_iteration =
        std::min(last_iteration, ((options_.stop_after - 1) / epoch_len + 1) * epoch_len);
  }

  bpf::VerdictCache cache;
  bpf::DecodeCache dcache;
  std::vector<WorkerState> workers(static_cast<size_t>(jobs));
  std::vector<bpf::VerdictCacheShard*> shards;
  std::vector<bpf::DecodeCacheShard*> dshards;
  // Evictions restored from a checkpoint happened in a previous process; this
  // process's cache starts empty, so the running total is base + local.
  const uint64_t base_decode_evictions = stats.decode_cache_evictions;
  for (int w = 0; w < jobs; ++w) {
    WorkerState& worker = workers[static_cast<size_t>(w)];
    if (w == 0) {
      worker.gen = &generator_;
    } else {
      worker.gen_owned = std::move(clones[static_cast<size_t>(w - 1)]);
      worker.gen = worker.gen_owned.get();
    }
    worker.runner = std::make_unique<CaseRunner>(options_);
    if (options_.verdict_cache) {
      worker.shard = std::make_unique<bpf::VerdictCacheShard>(cache, /*immediate=*/false);
      worker.runner->set_verdict_shard(worker.shard.get());
      shards.push_back(worker.shard.get());
    }
    if (options_.interp_decoded) {
      // Same epoch discipline as the verdict cache: workers read the frozen
      // committed set and buffer inserts; the barrier commits in iteration
      // order, so hit/miss/evict counts are job-count invariant.
      worker.dshard = std::make_unique<bpf::DecodeCacheShard>(dcache, /*immediate=*/false);
      worker.runner->set_decode_shard(worker.dshard.get());
      dshards.push_back(worker.dshard.get());
    }
  }

  // Epoch-frozen snapshots the workers read; only the coordinator writes
  // them, at barriers, while every worker is parked (the barrier mutex
  // provides the happens-before edges).
  const std::set<std::string>* frozen_sigs = &stats.finding_signatures;

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  uint64_t generation = 0;
  uint64_t epoch_start = 0;
  uint64_t epoch_end = 0;
  int done_count = 0;
  bool shutdown = false;

  const auto run_epoch = [&](WorkerState& worker, int index, uint64_t start, uint64_t end) {
    std::set<std::string> local_sigs;  // signatures this worker saw this epoch
    for (uint64_t i = start + static_cast<uint64_t>(index); i <= end;
         i += static_cast<uint64_t>(jobs)) {
      bpf::Rng rng(CaseSeed(options_.seed, i));
      FuzzCase the_case;
      if (options_.coverage_feedback && !corpus.empty() && rng.Chance(0.4)) {
        the_case = rng.Pick(corpus);
        worker.gen->Mutate(rng, the_case);
      } else {
        the_case = worker.gen->Generate(rng);
      }

      AccumulateInsnMix(the_case, worker.partial);
      worker.sink.BeginCase();
      const CaseRunner::CaseResult result = worker.runner->RunOne(the_case, i);
      AccumulateCaseCounters(result, worker.partial);
      ++worker.partial.iterations;

      CaseRecord record;
      record.iteration = i;
      for (const Finding& found : result.findings) {
        // Confirm iff the signature was unknown at epoch start AND this is
        // the worker's first local occurrence this epoch. The merge keeps the
        // globally earliest occurrence per signature, and the globally
        // earliest is always its worker's first local occurrence — so every
        // finding the merge keeps carries a confirmation, for any job count.
        if (frozen_sigs->count(found.signature) == 0 &&
            local_sigs.insert(found.signature).second) {
          Finding finding = found;
          if (options_.confirm_runs > 0) {
            worker.runner->ConfirmFinding(finding, the_case, i, result.fault_log);
          }
          record.findings.push_back(std::move(finding));
        }
      }
      if (options_.coverage_feedback && worker.sink.NewSinceCase() > 0) {
        record.corpus_candidate = true;
        record.the_case = the_case;
      }
      if (record.corpus_candidate || !record.findings.empty()) {
        worker.records.push_back(std::move(record));
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    threads.emplace_back([&, w] {
      WorkerState& worker = workers[static_cast<size_t>(w)];
      Coverage::InstallThreadSink(&worker.sink);
      uint64_t seen_generation = 0;
      for (;;) {
        uint64_t start = 0;
        uint64_t end = 0;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_work.wait(lock,
                       [&] { return shutdown || generation != seen_generation; });
          if (shutdown) {
            break;
          }
          seen_generation = generation;
          start = epoch_start;
          end = epoch_end;
        }
        run_epoch(worker, w, start, end);
        {
          std::lock_guard<std::mutex> lock(mu);
          if (++done_count == jobs) {
            cv_done.notify_one();
          }
        }
      }
      Coverage::InstallThreadSink(nullptr);
    });
  }

  const auto save_checkpoint = [&](uint64_t next_iteration) {
    CampaignCheckpoint cp;
    cp.next_iteration = next_iteration;
    cp.fingerprint = fingerprint;
    cp.rng_state = {};  // per-iteration seeds; there is no stream position
    cp.corpus = corpus;
    cp.stats = stats;
    cp.stats.final_coverage = Coverage::Get().hit_count();
    cp.coverage_keys = Coverage::Get().SerializeHitKeys();
    SaveCheckpoint(options_.checkpoint_path, cp);
  };

  uint64_t next = start_iteration;
  while (next <= last_iteration) {
    const uint64_t end =
        std::min(last_iteration, ((next - 1) / epoch_len + 1) * epoch_len);
    {
      std::lock_guard<std::mutex> lock(mu);
      epoch_start = next;
      epoch_end = end;
      done_count = 0;
      ++generation;
    }
    cv_work.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_done.wait(lock, [&] { return done_count == jobs; });
    }

    // ---- Barrier merge (workers parked) ----
    // 1. Order-independent counters.
    for (WorkerState& worker : workers) {
      MergeCounters(stats, worker.partial);
    }
    // 2. Coverage: union each worker's epoch delta into the committed set.
    for (WorkerState& worker : workers) {
      Coverage::Get().Commit(worker.sink);
    }
    // 3. Verdict cache: commit pending inserts in iteration order (the
    //    entry-cap cutoff must not depend on the sharding) and fold counters.
    if (options_.verdict_cache) {
      cache.CommitShards(shards);
      for (WorkerState& worker : workers) {
        stats.verdict_cache_hits += worker.shard->TakeHits();
        stats.verdict_cache_misses += worker.shard->TakeMisses();
      }
    }
    if (options_.interp_decoded) {
      dcache.CommitShards(dshards);
      for (WorkerState& worker : workers) {
        stats.decode_cache_hits += worker.dshard->TakeHits();
        stats.decode_cache_misses += worker.dshard->TakeMisses();
      }
      stats.decode_cache_evictions = base_decode_evictions + dcache.evictions();
    }
    // 4. Findings and corpus growth, in iteration order across all workers.
    {
      std::vector<CaseRecord*> merged;
      for (WorkerState& worker : workers) {
        for (CaseRecord& record : worker.records) {
          merged.push_back(&record);
        }
      }
      std::sort(merged.begin(), merged.end(), [](const CaseRecord* a, const CaseRecord* b) {
        return a->iteration < b->iteration;
      });
      for (CaseRecord* record : merged) {
        for (Finding& finding : record->findings) {
          if (stats.finding_signatures.insert(finding.signature).second) {
            stats.findings.push_back(std::move(finding));
          }
        }
        if (record->corpus_candidate && corpus.size() < 512) {
          corpus.push_back(std::move(record->the_case));
        }
      }
      for (WorkerState& worker : workers) {
        worker.records.clear();
      }
    }
    // 5. Coverage curve, epoch-quantized: every sample point inside this
    //    epoch reports the committed count after the epoch's merge.
    if (sample_every != 0) {
      const size_t covered = Coverage::Get().hit_count();
      for (uint64_t m = ((next + sample_every - 1) / sample_every) * sample_every;
           m <= end; m += sample_every) {
        stats.curve.push_back(CoveragePoint{m, covered});
      }
    }
    // 6. Sanitizer totals: checkpoint base plus every worker's cumulative
    //    counters (workers never reset; sums are order-independent).
    stats.sanitizer = base_sanitizer;
    for (WorkerState& worker : workers) {
      stats.sanitizer.Add(worker.runner->sanitizer().stats());
    }

    if (!options_.checkpoint_path.empty() && options_.checkpoint_every != 0 &&
        end != last_iteration &&
        end / options_.checkpoint_every > (next - 1) / options_.checkpoint_every) {
      save_checkpoint(end + 1);
    }
    next = end + 1;
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    shutdown = true;
  }
  cv_work.notify_all();
  for (std::thread& thread : threads) {
    thread.join();
  }

  stats.final_coverage = Coverage::Get().hit_count();
  if (!options_.checkpoint_path.empty()) {
    save_checkpoint(last_iteration + 1);
  }
  return stats;
}

}  // namespace bvf
