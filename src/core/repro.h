// Reproducer support for triage (paper §6.5 "Bug Triage"): the paper's
// workflow manually pinpoints the guilty instruction of an erroneous-but-
// accepted program. This module automates the shrinking step: re-execute a
// triggering fuzz case while greedily deleting instructions, keeping each
// deletion only if the finding still reproduces. What remains is close to
// the guilty instruction plus the operations producing its operands.

#ifndef SRC_CORE_REPRO_H_
#define SRC_CORE_REPRO_H_

#include <set>
#include <string>

#include "src/core/fuzzer.h"
#include "src/core/generator.h"

namespace bvf {

// Executes one fuzz case on a fresh kernel with the campaign's configuration
// (bug set, version, sanitation) and returns every finding signature it
// produced. |accepted_out| reports the verifier verdict when non-null.
std::set<std::string> ExecuteCase(const FuzzCase& the_case, const CampaignOptions& options,
                                  bool* accepted_out = nullptr);

// RemoveInsnPatched — the minimizer's deletion primitive — lives in
// src/analysis/patch.h (via generator.h above).

struct MinimizeResult {
  FuzzCase reduced;
  size_t insns_before = 0;
  size_t insns_after = 0;
  int executions = 0;  // re-execution budget spent
};

// Greedy delta-debugging over single instructions: repeatedly removes any
// instruction whose removal preserves |signature| among the case's findings,
// until a fixpoint or |max_executions| re-runs.
MinimizeResult MinimizeCase(const FuzzCase& the_case, const std::string& signature,
                            const CampaignOptions& options, int max_executions = 2000);

// Static + dynamic analysis dump for one case (the --analysis view of
// examples/fuzz_campaign): the bytecode CFG with block structure, lint
// results, entry liveness, and -- when the program loads -- the abstract-
// state-vs-witness diff from re-executing it with the Indicator #3 audit.
std::string AnalyzeCase(const FuzzCase& the_case, const CampaignOptions& options);

}  // namespace bvf

#endif  // SRC_CORE_REPRO_H_
