#include "src/core/epoch.h"

#include <algorithm>

#include "src/kernel/rng.h"

namespace bvf {

void RunEpochShard(const CampaignOptions& options, Generator& gen, CaseRunner& runner,
                   bpf::CoverageSink& sink, const std::vector<FuzzCase>& corpus,
                   const std::set<std::string>& frozen_sigs, int index, int jobs,
                   uint64_t start, uint64_t end, EpochShardResult& out,
                   const EpochShardHooks& hooks) {
  const SanitizerStats sanitizer_at_start = runner.sanitizer().stats();
  std::set<std::string> local_sigs;  // signatures this shard saw this epoch
  for (uint64_t i = start + static_cast<uint64_t>(index); i <= end;
       i += static_cast<uint64_t>(jobs)) {
    if (hooks.skip && hooks.skip(i)) {
      continue;
    }
    bpf::Rng rng(CaseSeed(options.seed, i));
    FuzzCase the_case;
    if (options.coverage_feedback && !corpus.empty() && rng.Chance(0.4)) {
      the_case = rng.Pick(corpus);
      gen.Mutate(rng, the_case);
    } else {
      the_case = gen.Generate(rng);
    }
    if (hooks.on_case_begin) {
      hooks.on_case_begin(i, the_case);
    }

    AccumulateInsnMix(the_case, out.partial);
    sink.BeginCase();
    const CaseRunner::CaseResult result = runner.RunOne(the_case, i);
    AccumulateCaseCounters(result, out.partial);
    ++out.partial.iterations;

    CaseRecord record;
    record.iteration = i;
    for (const Finding& found : result.findings) {
      if (frozen_sigs.count(found.signature) == 0 &&
          local_sigs.insert(found.signature).second) {
        Finding finding = found;
        if (options.confirm_runs > 0) {
          runner.ConfirmFinding(finding, the_case, i, result.fault_log);
        }
        record.findings.push_back(std::move(finding));
      }
    }
    if (options.coverage_feedback && sink.NewSinceCase() > 0) {
      record.corpus_candidate = true;
      record.the_case = the_case;
    }
    if (record.corpus_candidate || !record.findings.empty()) {
      out.records.push_back(std::move(record));
    }
  }
  out.partial.sanitizer = runner.sanitizer().stats().Since(sanitizer_at_start);
}

void MergeEpochCounters(CampaignStats& into, CampaignStats& partial) {
  into.iterations += partial.iterations;
  into.accepted += partial.accepted;
  into.rejected += partial.rejected;
  into.exec_runs += partial.exec_runs;
  into.exec_failures += partial.exec_failures;
  into.panics += partial.panics;
  into.substrate_rebuilds += partial.substrate_rebuilds;
  into.fault_injected += partial.fault_injected;
  into.insns_total += partial.insns_total;
  into.insns_alu_jmp += partial.insns_alu_jmp;
  into.insns_mem += partial.insns_mem;
  into.insns_call += partial.insns_call;
  for (const auto& [err, count] : partial.reject_errno) {
    into.reject_errno[err] += count;
  }
  for (const auto& [err, count] : partial.exec_errno) {
    into.exec_errno[err] += count;
  }
  for (const auto& [outcome, count] : partial.outcomes) {
    into.outcomes[outcome] += count;
  }
  into.metamorph_bases += partial.metamorph_bases;
  into.metamorph_variants += partial.metamorph_variants;
  into.metamorph_verdict_divergences += partial.metamorph_verdict_divergences;
  into.metamorph_witness_divergences += partial.metamorph_witness_divergences;
  into.metamorph_sanitizer_divergences += partial.metamorph_sanitizer_divergences;
  into.sanitizer.Add(partial.sanitizer);
  partial = CampaignStats{};
}

void MergeEpochRecords(std::vector<CaseRecord*> records, CampaignStats& stats,
                       std::vector<FuzzCase>& corpus) {
  std::sort(records.begin(), records.end(), [](const CaseRecord* a, const CaseRecord* b) {
    return a->iteration < b->iteration;
  });
  for (CaseRecord* record : records) {
    for (Finding& finding : record->findings) {
      if (stats.finding_signatures.insert(finding.signature).second) {
        stats.findings.push_back(std::move(finding));
      }
    }
    if (record->corpus_candidate && corpus.size() < 512) {
      corpus.push_back(std::move(record->the_case));
    }
  }
}

void AppendEpochCurve(CampaignStats& stats, uint64_t next_iteration, uint64_t epoch_end,
                      uint64_t sample_every, size_t covered) {
  if (sample_every == 0) {
    return;
  }
  for (uint64_t m = ((next_iteration + sample_every - 1) / sample_every) * sample_every;
       m <= epoch_end; m += sample_every) {
    stats.curve.push_back(CoveragePoint{m, covered});
  }
}

}  // namespace bvf
