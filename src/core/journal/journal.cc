#include "src/core/journal/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/serialize.h"

namespace bvf {

namespace {

constexpr char kMagicLine[] = "bvf-journal v1\n";
constexpr uint32_t kFrameMagic = 0x4a465642;  // "BVFJ" little-endian
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4 + 8;
// A corrupt length field must not drive a multi-gigabyte read; real payloads
// are single findings or cases (a few KB).
constexpr uint32_t kMaxPayload = 64u << 20;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

// Checksum covers the header fields (sans the checksum itself) and the
// payload, so a bit flip anywhere in the record is caught.
uint64_t RecordChecksum(uint32_t type, uint64_t iteration, const std::string& payload) {
  std::string hdr;
  PutU32(hdr, type);
  PutU64(hdr, iteration);
  PutU32(hdr, static_cast<uint32_t>(payload.size()));
  return serialize::Fnv1a(hdr + payload);
}

void EncodeRecord(std::string& out, const JournalRecord& record) {
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(record.type));
  PutU64(out, record.iteration);
  PutU32(out, static_cast<uint32_t>(record.payload.size()));
  PutU64(out, RecordChecksum(static_cast<uint32_t>(record.type), record.iteration,
                             record.payload));
  out += record.payload;
}

// Scans |data| (past the magic line, starting at |offset|) and appends intact
// records to |out|. Returns the byte offset just past the last intact record;
// |damage| is empty when the scan consumed everything, else it describes why
// the remainder is unusable (torn tail / checksum mismatch / bad framing).
size_t ScanRecords(const std::string& data, size_t offset,
                   std::vector<JournalRecord>* out, std::string* damage) {
  size_t pos = offset;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderSize) {
      *damage = "torn record header at offset " + std::to_string(pos);
      return pos;
    }
    const char* hdr = data.data() + pos;
    if (GetU32(hdr) != kFrameMagic) {
      *damage = "bad frame magic at offset " + std::to_string(pos);
      return pos;
    }
    const uint32_t type = GetU32(hdr + 4);
    const uint64_t iteration = GetU64(hdr + 8);
    const uint32_t len = GetU32(hdr + 16);
    const uint64_t sum = GetU64(hdr + 20);
    if (len > kMaxPayload) {
      *damage = "implausible payload length at offset " + std::to_string(pos);
      return pos;
    }
    if (data.size() - pos - kHeaderSize < len) {
      *damage = "torn record payload at offset " + std::to_string(pos);
      return pos;
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.iteration = iteration;
    record.payload = data.substr(pos + kHeaderSize, len);
    if (RecordChecksum(type, iteration, record.payload) != sum) {
      *damage = "record checksum mismatch at offset " + std::to_string(pos);
      return pos;
    }
    if (out != nullptr) {
      out->push_back(std::move(record));
    }
    pos += kHeaderSize + len;
  }
  damage->clear();
  return pos;
}

int ReadWhole(const std::string& path, std::string* data) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return -ENOENT;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  *data = buf.str();
  return 0;
}

}  // namespace

Journal::~Journal() { Close(); }

int Journal::Open(const std::string& path, std::string* error, std::string* recovered) {
  Close();
  if (recovered != nullptr) {
    recovered->clear();
  }
  std::string data;
  const bool exists = ReadWhole(path, &data) == 0;
  size_t valid_end = 0;
  if (exists && !data.empty()) {
    if (data.compare(0, sizeof(kMagicLine) - 1, kMagicLine) != 0) {
      if (error != nullptr) {
        *error = "not a bvf journal (bad magic): " + path;
      }
      return -EINVAL;
    }
    std::string damage;
    valid_end = ScanRecords(data, sizeof(kMagicLine) - 1, nullptr, &damage);
    if (!damage.empty() && recovered != nullptr) {
      *recovered = "dropped " + std::to_string(data.size() - valid_end) +
                   " bytes after the last intact record (" + damage + ")";
    }
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal: " + path + ": " + std::strerror(errno);
    }
    return -errno;
  }
  if (!exists || data.empty()) {
    // Fresh journal: magic line first, so Replay can tell "empty journal"
    // from "not a journal".
    if (::write(fd, kMagicLine, sizeof(kMagicLine) - 1) !=
        static_cast<ssize_t>(sizeof(kMagicLine) - 1)) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot initialize journal: " + path;
      }
      return -EIO;
    }
  } else if (valid_end < data.size()) {
    // Truncate away the torn/corrupt suffix; appends continue after the last
    // intact record.
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot truncate damaged journal tail: " + path;
      }
      return -EIO;
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return -EIO;
  }
  fd_ = fd;
  path_ = path;
  buffer_.clear();
  return 0;
}

int Journal::Append(const JournalRecord& record) {
  if (fd_ < 0) {
    return -EBADF;
  }
  EncodeRecord(buffer_, record);
  return 0;
}

int Journal::Sync() {
  if (fd_ < 0) {
    return -EBADF;
  }
  size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -errno;
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  if (::fdatasync(fd_) != 0) {
    return -errno;
  }
  return 0;
}

int Journal::Rotate() {
  if (fd_ < 0) {
    return -EBADF;
  }
  const std::string path = path_;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return -errno;
  }
  if (::write(fd, kMagicLine, sizeof(kMagicLine) - 1) !=
          static_cast<ssize_t>(sizeof(kMagicLine) - 1) ||
      ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return -EIO;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return -EIO;
  }
  // The renamed fd is the live journal now; drop the old one.
  ::close(fd_);
  fd_ = fd;
  buffer_.clear();
  return 0;
}

void Journal::Close() {
  if (fd_ >= 0) {
    if (!buffer_.empty()) {
      Sync();
    }
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  buffer_.clear();
}

int Journal::Replay(const std::string& path, std::vector<JournalRecord>* out,
                    std::string* error, bool* truncated_tail) {
  if (truncated_tail != nullptr) {
    *truncated_tail = false;
  }
  std::string data;
  if (ReadWhole(path, &data) != 0) {
    if (error != nullptr) {
      *error = "cannot open journal: " + path;
    }
    return -ENOENT;
  }
  if (data.compare(0, sizeof(kMagicLine) - 1, kMagicLine) != 0) {
    if (error != nullptr) {
      *error = "not a bvf journal (bad magic): " + path;
    }
    return -EINVAL;
  }
  std::string damage;
  ScanRecords(data, sizeof(kMagicLine) - 1, out, &damage);
  if (!damage.empty()) {
    if (truncated_tail != nullptr) {
      *truncated_tail = true;
    }
    if (error != nullptr) {
      *error = damage;
    }
  }
  return 0;
}

}  // namespace bvf
