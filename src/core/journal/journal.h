// Write-ahead findings/corpus journal (DESIGN.md §12.3).
//
// Checkpoints are written at most every --checkpoint-every iterations; a
// campaign killed between checkpoints would lose every finding since the
// last one. The journal closes that window: at every epoch barrier the
// engines append what the barrier merged (new findings, corpus growth,
// worker-crash records, quarantine events, then a barrier mark) and fsync —
// so after any kill, `Replay` proves exactly which findings had been recorded
// before the lights went out. The resumed campaign re-derives the same
// findings deterministically from the checkpoint (the journal is evidence and
// forensics, not resume state), which is why replaying it does not perturb
// digest identity.
//
// Format: a text magic line ("bvf-journal v1"), then length+checksum framed
// records:
//
//   u32 frame-magic | u32 type | u64 iteration | u32 payload-len |
//   u64 fnv64(type‖iteration‖len‖payload) | payload bytes
//
// Payloads are the shared text grammar of src/core/serialize.h — the same
// bytes a checkpoint would hold. A writer killed mid-append leaves a torn
// tail; reopening truncates the tail (and any trailing corruption) back to
// the last intact record and continues appending. Rotation (after a
// checkpoint save supersedes the journal's contents) is atomic: fresh temp
// file + rename.

#ifndef SRC_CORE_JOURNAL_JOURNAL_H_
#define SRC_CORE_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bvf {

enum class JournalRecordType : uint32_t {
  kFinding = 1,     // payload: serialize::SerializeFinding (f/fs/fd triplet)
  kCorpusCase = 2,  // payload: serialize::SerializeCase
  kCrash = 3,       // payload: a kWorkerCrash finding (same triplet shape)
  kQuarantine = 4,  // payload: quarantine record (see supervisor.h)
  kMark = 5,        // barrier mark; iteration = next iteration, no payload
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kMark;
  uint64_t iteration = 0;
  std::string payload;
};

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens |path| for appending, creating it if absent. An existing file is
  // validated first: a torn tail or trailing corruption is truncated back to
  // the last intact record (|recovered|, when non-null, describes what was
  // dropped; empty when the file was clean). Returns 0 or a negative errno.
  int Open(const std::string& path, std::string* error, std::string* recovered = nullptr);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Buffers one record; nothing touches the disk until Sync().
  int Append(const JournalRecord& record);

  // Durability point: writes the buffer and fdatasyncs. The engines call this
  // once per epoch barrier, before any checkpoint write — write-ahead order.
  int Sync();

  // Atomically empties the journal (fresh temp file + rename). Call after a
  // checkpoint save lands: the checkpoint now covers everything the journal
  // held, so keeping the records would only duplicate them.
  int Rotate();

  void Close();

  // Reads every intact record of |path|. If the file ends in a torn or
  // corrupt suffix, returns the valid prefix with |truncated_tail| set (and
  // |error| describing the damage); a missing file or bad magic fails with a
  // negative errno.
  static int Replay(const std::string& path, std::vector<JournalRecord>* out,
                    std::string* error, bool* truncated_tail);

 private:
  std::string path_;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace bvf

#endif  // SRC_CORE_JOURNAL_JOURNAL_H_
