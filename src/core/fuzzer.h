// The BVF campaign loop (paper Fig. 3): generate a structured program,
// load it through the (instrumented) verifier, execute and drive it, and
// convert kernel reports into correctness-bug findings via the oracle.
// Coverage feedback preserves interesting programs for mutation.
//
// Two engines share the per-case machinery (CaseRunner):
//  * Fuzzer — the original single-threaded loop: one RNG stream threaded
//    through all iterations, immediate corpus growth and coverage commits.
//  * ParallelFuzzer (src/core/parallel.h) — sharded workers with
//    iteration-derived seeds and epoch-barrier merges; bit-identical results
//    for any job count.

#ifndef SRC_CORE_FUZZER_H_
#define SRC_CORE_FUZZER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/generator.h"
#include "src/core/oracle.h"
#include "src/kernel/fault_inject.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/exec_context.h"
#include "src/runtime/jit_prog.h"
#include "src/sanitizer/instrument.h"
#include "src/verifier/bug_registry.h"
#include "src/verifier/kernel_version.h"

namespace bpf {
class VerdictCacheShard;
}  // namespace bpf

namespace bvf {

class MetamorphOracle;

struct CampaignOptions {
  bpf::KernelVersion version = bpf::KernelVersion::kBpfNext;
  bpf::BugConfig bugs = bpf::BugConfig::None();
  bool sanitize = true;               // BVF's memory sanitation on/off
  bool audit_state = true;            // Indicator #3 abstract-state audit on/off
  uint64_t iterations = 5000;
  uint64_t seed = 1;
  bool coverage_feedback = true;      // corpus-guided generation
  int coverage_points = 48;           // curve samples ("hours" in Fig. 6)
  bool reset_coverage = true;         // reset the global hit set at start
  size_t arena_size = 512 * 1024;

  // -- Robustness engine (DESIGN.md §8) --
  // Kernel fault injection (failslab/fail_function model). Each case gets a
  // fresh injector seeded from FaultSeed(seed, iteration), so schedules are
  // independent of the campaign RNG stream and survive checkpoint/resume.
  bpf::FaultConfig fault;
  // Per-invocation execution guards (step budget, wall watchdog, call depth).
  bpf::ExecLimits limits;
  // KASAN-arena allocation budget per case in bytes (0 = arena size only).
  size_t arena_budget = 0;
  // Findings re-executed this many times for deterministic/flaky
  // classification (0 = confirmation off).
  int confirm_runs = 0;
  // Reuse one kernel substrate across cases (boot-snapshot rewind between
  // cases; full teardown + rebuild after a simulated panic). Off = the
  // pre-robustness behaviour of one substrate per case.
  bool reuse_substrate = true;
  // Campaign checkpointing: serialize resumable state to |checkpoint_path|
  // every |checkpoint_every| iterations (and at completion).
  std::string checkpoint_path;
  uint64_t checkpoint_every = 0;
  // Resume a previous campaign from this checkpoint file.
  std::string resume_path;
  // Deterministic simulated kill: stop after this absolute iteration
  // (0 = run to |iterations|). Checkpoint accounting stays identical to an
  // uninterrupted run, which is what makes resume bit-identity testable.
  // The parallel engine rounds up to the end of the containing epoch.
  uint64_t stop_after = 0;

  // -- Parallel engine (DESIGN.md §9; ParallelFuzzer only) --
  // Worker threads. The result is bit-identical for every value ≥ 1.
  int jobs = 1;
  // Iterations per synchronization epoch: the grain at which coverage,
  // corpus, findings, and the verdict cache merge. Part of the campaign's
  // semantics (and fingerprint) — changing it changes results; changing
  // |jobs| does not.
  uint64_t epoch_len = 64;
  // Digest-keyed verifier-verdict cache (src/runtime/verdict_cache.h).
  // On/off is invisible in the StatsDigest; only the hit/miss counters move.
  bool verdict_cache = false;
  // Canonical verdict-cache level (DESIGN.md §13): on a raw miss, the program
  // is canonicalized (src/analysis/canonicalize.h) and a committed rejection
  // for any alpha-equivalent spelling is served without re-verification.
  // Requires |verdict_cache|; same digest discipline — only the
  // canonical_cache_* counters move.
  bool canonical_cache = false;
  // Dirty-tracked arena reset (src/kernel/kasan.h): ResetCaseState rewrites
  // only the pages the case touched instead of the whole arena. Byte-for-byte
  // identical to the full rewind (BVF_PARANOID_RESET cross-checks), so it is
  // digest-invisible; off exists as the bench_reset baseline.
  bool dirty_reset = true;
  // Execution engine: decoded micro-op dispatch (default), the native x86-64
  // JIT tier compiled from the same micro-ops, or the legacy
  // instruction-at-a-time interpreter. Purely a throughput switch — all three
  // engines are digest-identical (tests/interp_parity_test.cc) — so it is
  // excluded from the options fingerprint. Decoded and jit modes also enable
  // the digest-keyed DecodedProgram cache (src/runtime/decoded_prog.h); jit
  // additionally enables the digest-keyed native-code cache
  // (src/runtime/jit_prog.h). Selecting kJit where the JIT is unavailable
  // (non-x86-64, W^X mappings denied) downgrades to kDecoded with a one-line
  // warning.
  bpf::ExecEngine interp_engine = bpf::ExecEngine::kDecoded;

  // -- JIT differential oracle (Indicator #5) --
  // For every accepted case, execute the program once under the decoded
  // interpreter and once under the JIT on clean throwaway substrates and
  // compare the witnesses (verdict, per-run err/R0, indicator kinds, panic
  // state). Any difference is a kJitDivergence finding — a miscompile by
  // construction, since the engines implement one semantics. Results-changing,
  // so it is part of the options fingerprint. Independent of |interp_engine|:
  // the oracle always compares decoded vs jit. No-op when the JIT is
  // unavailable on this host.
  bool jit_oracle = false;

  // -- Metamorphic oracle (Indicator #4, DESIGN.md §11) --
  // For every accepted case, execute |metamorph_k| semantics-preserving
  // variants on clean throwaway substrates and classify base/variant
  // divergences (verdict flip, witness mismatch, indicator asymmetry).
  // Results-changing, so both knobs are part of the options fingerprint.
  bool metamorph = false;
  int metamorph_k = 2;

  // -- Conformance corpus (Indicator #6, DESIGN.md §15) --
  // Directory of `.data` expected-value cases (src/conformance). When set,
  // every engine runs the full corpus as a campaign prologue before iteration
  // 0: each case is loaded and executed on all three engines, mismatches and
  // verdict surprises become indicator-6 findings (digest-included), and each
  // accepted case is appended to the mutation corpus as a seed.
  // Results-changing, so the directory is part of the options fingerprint;
  // resumed campaigns skip the prologue (its findings and seeds are already
  // in the checkpoint).
  std::string conformance_dir;

  // -- Crash-isolated supervisor (DESIGN.md §12; SupervisedFuzzer only) --
  // All process-management knobs: none is part of the options fingerprint
  // (a supervised campaign must resume as an in-process one and vice versa).
  // Failures tolerated per epoch before its in-flight cases are quarantined
  // and the epoch is re-run with the poison iterations skipped.
  int worker_retries = 3;
  // Missed-heartbeat deadline in milliseconds (0 disables hang detection).
  // Workers heartbeat once per case, so this bounds a single case's runtime.
  int hang_timeout_ms = 30000;
  // Base of the bounded exponential backoff between worker re-forks.
  int retry_backoff_ms = 50;
  // Poison-case records (replayable via bvf_repro) land here after
  // |worker_retries| consecutive failures of the same epoch.
  std::string quarantine_path;
  // Write-ahead findings/corpus journal (src/core/journal). Records are
  // appended at every epoch barrier before the checkpoint write, so findings
  // survive a supervisor kill between checkpoints.
  std::string journal_path;
  // Deterministic crash injection for tests and the smoke gate: the worker
  // executing absolute iteration |test_crash_at| first checks
  // |test_crash_marker| — if the file does not exist it creates it and
  // performs |test_crash_mode| (so the injected failure fires exactly once
  // and the retry proceeds cleanly). 0 = injection off.
  uint64_t test_crash_at = 0;
  int test_crash_mode = 0;  // 0=SIGABRT 1=SIGKILL 2=hang 3=exit(3)
  std::string test_crash_marker;
};

struct CoveragePoint {
  uint64_t iteration;
  size_t covered;
};

// Per-case terminal classification. Every iteration lands in exactly one
// bucket; kUnclassified existing in a campaign's totals is itself a bug (the
// smoke gate asserts it stays at zero).
enum class CaseOutcome {
  kUnclassified = 0,
  kRejected,            // verifier refused the program
  kExecOk,              // loaded and every execution returned cleanly
  kExecFault,           // some execution aborted (-EFAULT and friends)
  kExecTimeout,         // step budget / wall-clock watchdog trip
  kResourceExhausted,   // allocation failure (-ENOMEM/-E2BIG/-ENOSPC/-EAGAIN)
  kPanic,               // the simulated kernel panicked during the case
  // Metamorphic-oracle escalations (checkpoint-serialized as ints: append
  // only). A case whose base execution was clean but whose variants diverged
  // lands in the highest-precedence divergence bucket.
  kVerdictDivergence,   // a variant's PROG_LOAD verdict flipped
  kWitnessDivergence,   // a variant's per-run error/R0 differed
  kSanitizerDivergence, // indicator kinds fired on one side only
  // JIT differential oracle (Indicator #5): the decoded interpreter and the
  // JIT disagreed on this case's witness. Appended last — checkpoint
  // serialization stores outcomes as ints.
  kJitDivergence,
  // Conformance corpus (Indicator #6, DESIGN.md §15). These never enter
  // |CampaignStats::outcomes| — the prologue runs before iteration 0, and the
  // outcome histogram must keep summing to |iterations| — but they name the
  // two conformance failure classes wherever a per-case classification is
  // reported (finding details, tooling output). Append-tail as above.
  kConformanceMismatch,  // accepted, but an engine's r0 differed from expected
  kConformanceReject,    // verifier verdict contradicted the case expectation
};

const char* CaseOutcomeName(CaseOutcome outcome);

struct CampaignStats {
  std::string tool;
  CampaignOptions options;

  uint64_t iterations = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::map<int, uint64_t> reject_errno;  // load errno (positive) -> count
  uint64_t exec_runs = 0;
  std::map<int, uint64_t> exec_errno;    // execution errno (positive) -> count
  uint64_t exec_failures = 0;            // executions that returned an error

  // Robustness accounting.
  std::map<CaseOutcome, uint64_t> outcomes;
  uint64_t panics = 0;             // simulated panics contained in-run
  uint64_t substrate_rebuilds = 0; // teardown + reboot cycles after panics
  uint64_t fault_injected = 0;     // fault-point failures actually injected

  // Verdict-cache accounting (deterministic for any job count, but excluded
  // from StatsDigest so cache on/off campaigns stay digest-comparable). The
  // canonical counters partition the raw misses: every load that misses the
  // raw level either hits or misses the canonical one (when enabled).
  uint64_t verdict_cache_hits = 0;
  uint64_t verdict_cache_misses = 0;
  uint64_t canonical_cache_hits = 0;
  uint64_t canonical_cache_misses = 0;

  // Decode-cache accounting (decoded engine only). Same digest discipline as
  // the verdict-cache counters: deterministic for any job count, excluded
  // from StatsDigest so --interp=decoded|legacy campaigns stay comparable.
  uint64_t decode_cache_hits = 0;
  uint64_t decode_cache_misses = 0;
  uint64_t decode_cache_evictions = 0;

  // JIT code-cache accounting (jit engine only). Identical discipline to the
  // decode-cache counters: deterministic for any job count, excluded from
  // StatsDigest so --interp=jit|decoded|legacy campaigns stay comparable,
  // carried across resume by their own checkpoint line.
  uint64_t jit_cache_hits = 0;
  uint64_t jit_cache_misses = 0;
  uint64_t jit_cache_evictions = 0;

  // Metamorphic-oracle accounting (Indicator #4). The divergence *outcomes*
  // land in |outcomes| (digest-included); these volume counters follow the
  // cache-counter discipline — deterministic for any job count, excluded
  // from StatsDigest, carried across resume by their own checkpoint line.
  uint64_t metamorph_bases = 0;     // accepted cases the oracle examined
  uint64_t metamorph_variants = 0;  // variants executed to a witness
  uint64_t metamorph_verdict_divergences = 0;
  uint64_t metamorph_witness_divergences = 0;
  uint64_t metamorph_sanitizer_divergences = 0;

  // Supervisor accounting (SupervisedFuzzer only). Same digest discipline as
  // the cache counters: these describe the *process* (how many workers died,
  // how often the supervisor re-forked), not the campaign result, so they are
  // excluded from StatsDigest and ride their own checkpoint line.
  uint64_t worker_crashes = 0;     // workers reaped on a crash signal
  uint64_t worker_hangs = 0;       // workers reaped past the heartbeat deadline
  uint64_t worker_exits = 0;       // workers reaped on an unexpected clean exit
  uint64_t worker_restarts = 0;    // re-forks (includes retries of one epoch)
  uint64_t epochs_abandoned = 0;   // epochs re-run with poison cases skipped
  uint64_t quarantined_cases = 0;  // poison records written to the quarantine
  // kWorkerCrash findings (one per reaped worker, carrying the captured
  // stderr tail). Kept out of |findings| and the digest so a supervised
  // campaign with a crash stays digest-comparable to an uninterrupted run.
  std::vector<Finding> crash_findings;

  // Conformance-prologue accounting (Indicator #6). The mismatch/reject
  // *findings* land in |findings| (digest-included); these volume counters
  // follow the cache-counter discipline — deterministic for any job count,
  // excluded from StatsDigest, carried across resume by their own
  // checkpoint line.
  uint64_t conf_cases = 0;       // corpus cases driven by the prologue
  uint64_t conf_passed = 0;      // pass + expected-reject
  uint64_t conf_mismatches = 0;  // expected-value mismatches (engine bugs)
  uint64_t conf_rejects = 0;     // verdict surprises (verifier gaps)
  uint64_t conf_seeded = 0;      // accepted cases appended to the corpus

  // Resume bookkeeping (not part of checkpoints or digests).
  uint64_t resumed_from = 0;       // first iteration executed after resume
  std::string resume_error;        // non-empty when --resume was rejected

  std::vector<Finding> findings;  // deduped by signature
  std::set<std::string> finding_signatures;

  std::vector<CoveragePoint> curve;
  size_t final_coverage = 0;

  uint64_t insns_total = 0;
  uint64_t insns_alu_jmp = 0;
  uint64_t insns_mem = 0;
  uint64_t insns_call = 0;

  SanitizerStats sanitizer;

  double AcceptanceRate() const {
    const uint64_t total = accepted + rejected;
    return total == 0 ? 0.0 : static_cast<double>(accepted) / static_cast<double>(total);
  }
  double AluJmpShare() const {
    return insns_total == 0 ? 0.0
                            : static_cast<double>(insns_alu_jmp) /
                                  static_cast<double>(insns_total);
  }
  double VerdictCacheHitRate() const {
    const uint64_t total = verdict_cache_hits + verdict_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(verdict_cache_hits) / static_cast<double>(total);
  }
  double CanonicalCacheHitRate() const {
    const uint64_t total = canonical_cache_hits + canonical_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(canonical_cache_hits) / static_cast<double>(total);
  }
  double DecodeCacheHitRate() const {
    const uint64_t total = decode_cache_hits + decode_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(decode_cache_hits) / static_cast<double>(total);
  }
  double JitCacheHitRate() const {
    const uint64_t total = jit_cache_hits + jit_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(jit_cache_hits) / static_cast<double>(total);
  }
  bool FoundBug(KnownBug bug) const;
  // First iteration at which |bug| was observed; 0 when never found.
  uint64_t FoundAtIteration(KnownBug bug) const;
};

// One simulated machine plus the per-case drive/classify/confirm logic,
// shared by both campaign engines. A CaseRunner is single-owner state: the
// serial engine holds one, each parallel worker holds its own (substrates
// are private; the only cross-runner state is the process-global Coverage
// registry and the epoch-frozen verdict cache, both handled by their own
// synchronization disciplines).
class CaseRunner {
 public:
  explicit CaseRunner(const CampaignOptions& options);
  ~CaseRunner();

  struct CaseResult {
    int prog_fd = 0;
    uint64_t exec_runs = 0;
    std::vector<int> exec_errs;       // err of every execution, 0 included
    CaseOutcome outcome = CaseOutcome::kUnclassified;
    bool panicked = false;
    uint64_t faults_injected = 0;
    std::vector<Finding> findings;    // classified; dedup/confirm is the engine's job
    bpf::FaultLog fault_log;          // recorded fault schedule (empty if faults off)

    // Metamorphic-oracle accounting for this case (all zero when the oracle
    // is off or the case was rejected).
    uint64_t metamorph_bases = 0;
    uint64_t metamorph_variants = 0;
    uint64_t metamorph_verdict_divergences = 0;
    uint64_t metamorph_witness_divergences = 0;
    uint64_t metamorph_sanitizer_divergences = 0;
  };

  // Runs one case end-to-end: fault schedule from FaultSeed(seed, iteration),
  // map setup + load + test runs + attach/XDP/batch drive, outcome
  // classification, report→finding conversion, then the panic/reuse substrate
  // policy. The substrate is boot-equivalent again when this returns.
  CaseResult RunOne(const FuzzCase& the_case, uint64_t iteration);

  // Finding confirmation: re-executes the originating case |confirm_runs|
  // times on throwaway substrates, first clean, then (if clean runs don't
  // reproduce) replaying the recorded fault schedule. Coverage recording is
  // suppressed throughout. Sets finding.confirmation.
  void ConfirmFinding(Finding& finding, const FuzzCase& the_case, uint64_t iteration,
                      const bpf::FaultLog& fault_log);

  Sanitizer& sanitizer() { return sanitizer_; }
  // Binds a verdict-cache shard to this runner's campaign substrate (not to
  // confirmation substrates: confirmation must exercise the real verifier).
  void set_verdict_shard(bpf::VerdictCacheShard* shard);
  // Binds a decode-cache shard to this runner's campaign substrate (only
  // consulted while options.interp_engine is not kLegacy). Confirmation
  // substrates decode fresh: their loads are throwaway and must not move the
  // campaign's cache counters.
  void set_decode_shard(bpf::DecodeCacheShard* shard);
  // Binds a JIT code-cache shard to this runner's campaign substrate (only
  // consulted while options.interp_engine is kJit and the JIT is available).
  // Same confirmation-substrate exclusion as the decode cache.
  void set_jit_shard(bpf::JitCacheShard* shard);

  // Drops the substrate (end of campaign).
  void Teardown();

 private:
  // One simulated machine: kernel substrate + its bpf(2) facade. Torn down
  // and rebuilt after a panic; otherwise rewound between cases.
  struct Substrate;

  // Aggregate of one case's driver pass, fed to outcome classification.
  struct DriveResult {
    int prog_fd = 0;
    uint64_t exec_runs = 0;
    std::vector<int> exec_errs;
  };

  Substrate& EnsureSubstrate();
  void ConfigureSubstrate(Substrate& sub, Sanitizer* sanitizer, bool campaign);
  // Replays the exact RunOne driver sequence (map setup, test runs, attach,
  // XDP, batched lookups) against |sub| with the case's iteration-derived
  // seeds. Shared by the campaign pass and finding confirmation.
  DriveResult DriveCase(Substrate& sub, const FuzzCase& the_case, uint64_t iteration);
  bool ReproduceOnce(const FuzzCase& the_case, uint64_t iteration,
                     const std::string& signature, const bpf::FaultLog* replay);

  const CampaignOptions& options_;
  Sanitizer sanitizer_;
  bpf::VerdictCacheShard* verdict_shard_ = nullptr;
  bpf::DecodeCacheShard* decode_shard_ = nullptr;
  bpf::JitCacheShard* jit_shard_ = nullptr;
  std::unique_ptr<Substrate> substrate_;
  std::unique_ptr<MetamorphOracle> metamorph_;  // non-null iff options.metamorph
};

class Fuzzer {
 public:
  Fuzzer(Generator& generator, CampaignOptions options);
  ~Fuzzer();

  CampaignStats Run();

 private:
  void RunCase(FuzzCase& the_case, CampaignStats& stats, uint64_t iteration);

  Generator& generator_;
  CampaignOptions options_;
  std::vector<FuzzCase> corpus_;
  std::unique_ptr<CaseRunner> runner_;
};

// Folds one case's instruction-mix statistics into |stats| (shared by both
// engines so the accounting cannot drift).
void AccumulateInsnMix(const FuzzCase& the_case, CampaignStats& stats);

// Folds a CaseResult's order-independent counters (accept/reject, errno
// histograms, outcome buckets, panic/fault accounting) into |stats|.
void AccumulateCaseCounters(const CaseRunner::CaseResult& result, CampaignStats& stats);

// Conformance prologue (Indicator #6, DESIGN.md §15): loads the corpus at
// options.conformance_dir, drives every case through all three engines on the
// campaign's kernel configuration, converts mismatches and verdict surprises
// into indicator-6 findings (deduped into |stats| like campaign findings,
// confirmed options.confirm_runs times), fills the conf_* counters, and
// appends each accepted case to |corpus| as a mutation seed. Deterministic:
// the same options produce bit-identical stats for every engine and job
// count. Coverage recording is suppressed throughout so the prologue cannot
// disturb the campaign's coverage-guided generation. Returns false (filling
// stats.resume_error) when the directory is missing or a case fails to parse.
bool RunConformancePrologue(const CampaignOptions& options, CampaignStats& stats,
                            std::vector<FuzzCase>* corpus);

}  // namespace bvf

#endif  // SRC_CORE_FUZZER_H_
