// The BVF campaign loop (paper Fig. 3): generate a structured program,
// load it through the (instrumented) verifier, execute and drive it, and
// convert kernel reports into correctness-bug findings via the oracle.
// Coverage feedback preserves interesting programs for mutation.

#ifndef SRC_CORE_FUZZER_H_
#define SRC_CORE_FUZZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/generator.h"
#include "src/core/oracle.h"
#include "src/sanitizer/instrument.h"
#include "src/verifier/bug_registry.h"
#include "src/verifier/kernel_version.h"

namespace bvf {

struct CampaignOptions {
  bpf::KernelVersion version = bpf::KernelVersion::kBpfNext;
  bpf::BugConfig bugs = bpf::BugConfig::None();
  bool sanitize = true;               // BVF's memory sanitation on/off
  bool audit_state = true;            // Indicator #3 abstract-state audit on/off
  uint64_t iterations = 5000;
  uint64_t seed = 1;
  bool coverage_feedback = true;      // corpus-guided generation
  int coverage_points = 48;           // curve samples ("hours" in Fig. 6)
  bool reset_coverage = true;         // reset the global hit set at start
  size_t arena_size = 512 * 1024;
};

struct CoveragePoint {
  uint64_t iteration;
  size_t covered;
};

struct CampaignStats {
  std::string tool;
  CampaignOptions options;

  uint64_t iterations = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::map<int, uint64_t> reject_errno;  // errno (positive) -> count
  uint64_t exec_runs = 0;

  std::vector<Finding> findings;  // deduped by signature
  std::set<std::string> finding_signatures;

  std::vector<CoveragePoint> curve;
  size_t final_coverage = 0;

  uint64_t insns_total = 0;
  uint64_t insns_alu_jmp = 0;
  uint64_t insns_mem = 0;
  uint64_t insns_call = 0;

  SanitizerStats sanitizer;

  double AcceptanceRate() const {
    const uint64_t total = accepted + rejected;
    return total == 0 ? 0.0 : static_cast<double>(accepted) / static_cast<double>(total);
  }
  double AluJmpShare() const {
    return insns_total == 0 ? 0.0
                            : static_cast<double>(insns_alu_jmp) /
                                  static_cast<double>(insns_total);
  }
  bool FoundBug(KnownBug bug) const;
  // First iteration at which |bug| was observed; 0 when never found.
  uint64_t FoundAtIteration(KnownBug bug) const;
};

class Fuzzer {
 public:
  Fuzzer(Generator& generator, CampaignOptions options)
      : generator_(generator), options_(options) {}

  CampaignStats Run();

 private:
  void RunCase(FuzzCase& the_case, CampaignStats& stats, uint64_t iteration);

  Generator& generator_;
  CampaignOptions options_;
  Sanitizer sanitizer_;
  std::vector<FuzzCase> corpus_;
};

}  // namespace bvf

#endif  // SRC_CORE_FUZZER_H_
