#include "src/core/supervisor/wire.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/core/serialize.h"

namespace bvf {
namespace supervisor {

namespace {

constexpr uint32_t kFrameMagic = 0x50465642;  // "BVFP" little-endian
constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;
// Largest plausible payload: a full-state sync (corpus cap 512 cases, each a
// few KB) stays well under this; a corrupt length must not drive allocation.
constexpr uint32_t kMaxPayload = 256u << 20;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t FrameChecksum(uint32_t type, const std::string& payload) {
  std::string hdr;
  PutU32(hdr, type);
  PutU32(hdr, static_cast<uint32_t>(payload.size()));
  return serialize::Fnv1a(hdr + payload);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Reads exactly |len| bytes, honoring an absolute deadline (or blocking when
// |deadline_ms| < 0).
int ReadExact(int fd, char* buf, size_t len, int64_t deadline_ms) {
  size_t got = 0;
  while (got < len) {
    if (deadline_ms >= 0) {
      const int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) {
        return -ETIMEDOUT;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0) {
        if (errno == EINTR) {
          continue;
        }
        return -errno;
      }
      if (pr == 0) {
        return -ETIMEDOUT;
      }
    }
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n == 0) {
      return -EPIPE;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -errno;
    }
    got += static_cast<size_t>(n);
  }
  return 0;
}

}  // namespace

int WriteFrame(int fd, MsgType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  PutU32(frame, kFrameMagic);
  PutU32(frame, static_cast<uint32_t>(type));
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU64(frame, FrameChecksum(static_cast<uint32_t>(type), payload));
  frame += payload;
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -errno;
    }
    written += static_cast<size_t>(n);
  }
  return 0;
}

int ReadFrame(int fd, Frame* out, int timeout_ms) {
  const int64_t deadline_ms = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  char hdr[kHeaderSize];
  int rc = ReadExact(fd, hdr, kHeaderSize, deadline_ms);
  if (rc != 0) {
    return rc;
  }
  if (GetU32(hdr) != kFrameMagic) {
    return -EBADMSG;
  }
  const uint32_t type = GetU32(hdr + 4);
  const uint32_t len = GetU32(hdr + 8);
  const uint64_t sum = GetU64(hdr + 12);
  if (len > kMaxPayload) {
    return -EBADMSG;
  }
  std::string payload(len, '\0');
  if (len > 0) {
    rc = ReadExact(fd, payload.data(), len, deadline_ms);
    if (rc != 0) {
      return rc;
    }
  }
  if (FrameChecksum(type, payload) != sum) {
    return -EBADMSG;
  }
  out->type = static_cast<MsgType>(type);
  out->payload = std::move(payload);
  return 0;
}

}  // namespace supervisor
}  // namespace bvf
