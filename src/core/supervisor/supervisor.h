// Crash-isolated multi-process campaign supervisor (DESIGN.md §12).
//
// SupervisedFuzzer runs the §9 epoch-shard discipline with worker *processes*
// instead of threads: the coordinator forks one worker per shard, streams
// each epoch's range + state-sync deltas (corpus, finding signatures,
// coverage keys) over a command pipe, and workers stream per-case heartbeats
// and epoch results back. The barrier merge is the shared src/core/epoch.cc
// code, so the StatsDigest is bit-identical to an in-process `--jobs N` run —
// and checkpoints are tagged engine=parallel, interchangeable both ways.
//
// What the isolation buys (and the in-process engine cannot have): a worker
// that crashes on a real sanitizer abort, hangs past the heartbeat deadline,
// or exits unexpectedly is reaped and re-forked with bounded exponential
// backoff, its half-done epoch shard discarded and re-run; the campaign keeps
// going. Each death is recorded as a first-class kWorkerCrash finding
// carrying the worker's captured stderr (digest-excluded: crashes describe
// the process, not the campaign result). After --worker-retries consecutive
// failures of one shard, the case that was in flight at each death is written
// to the quarantine file (replayable through the existing repro path), its
// iteration is skipped, and the campaign degrades gracefully instead of
// dying. Determinism note: retries of *transient* failures are digest-neutral
// (the re-run shard re-derives identical results); an abandoned epoch is not
// — its skipped iterations never execute, which is the degradation, and the
// quarantine file records exactly what was given up.

#ifndef SRC_CORE_SUPERVISOR_SUPERVISOR_H_
#define SRC_CORE_SUPERVISOR_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/fuzzer.h"
#include "src/core/generator.h"

namespace bvf {

class SupervisedFuzzer {
 public:
  // |generator| is the prototype; worker processes inherit their own copy via
  // fork (process isolation is the clone mechanism — Generator::Clone() is
  // not needed). Supervisor knobs ride in |options| (worker_retries,
  // hang_timeout_ms, retry_backoff_ms, quarantine_path, journal_path).
  SupervisedFuzzer(Generator& generator, CampaignOptions options);

  // Runs the campaign. SIGTERM requests a graceful stop: the in-flight epoch
  // finishes, its barrier merges and checkpoints, and Run returns the stats
  // so far (resume continues bit-identically). On an unrecoverable supervisor
  // failure stats.resume_error describes it.
  CampaignStats Run();

 private:
  Generator& generator_;
  CampaignOptions options_;
};

// Worker-process entry point: services kEpoch commands from |cmd_fd| until
// kShutdown (or EOF, which a dying supervisor turns into SIGKILL via
// PR_SET_PDEATHSIG anyway). Called in the forked child; returns its exit
// code. Exposed for the smoke/bench drivers that embed a worker directly.
int RunWorkerProcess(Generator& generator, const CampaignOptions& options, int cmd_fd,
                     int res_fd);

// One poisoned case: after --worker-retries consecutive failures of a shard,
// the case in flight at each death lands here.
struct QuarantineRecord {
  uint64_t iteration = 0;
  int attempts = 0;        // failures observed before quarantining
  int signal_or_code = 0;  // death signal (>0) or negated exit code (<0)
  FuzzCase the_case;
};

// Parses a quarantine file (replay each record via ExecuteCase /
// --replay-quarantine). Returns 0 or a negative errno.
int LoadQuarantine(const std::string& path, std::vector<QuarantineRecord>* out,
                   std::string* error);

}  // namespace bvf

#endif  // SRC_CORE_SUPERVISOR_SUPERVISOR_H_
