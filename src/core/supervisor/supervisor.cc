// Coordinator half of the crash-isolated supervisor (DESIGN.md §12).
//
// The coordinator owns all campaign state (stats, corpus, committed coverage
// keys, finding signatures) and never executes a fuzz case itself; workers are
// fork()ed, stream heartbeats + results back over pipes, and are re-forked
// when they die. The epoch barrier merge is the shared src/core/epoch.cc code,
// run here over parsed frames instead of in-memory shard results — which is
// the whole digest-identity argument.

#include "src/core/supervisor/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/epoch.h"
#include "src/core/journal/journal.h"
#include "src/core/serialize.h"
#include "src/core/supervisor/wire.h"
#include "src/kernel/report.h"

namespace bvf {

namespace {

using supervisor::Frame;
using supervisor::MsgType;
using supervisor::ReadFrame;
using supervisor::WriteFrame;

volatile sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Coordinator-side view of one worker process (one shard).
struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;  // coordinator → worker
  int res_fd = -1;  // worker → coordinator
  std::string stderr_path;
  // State-sync high-water marks: how much of the coordinator's corpus /
  // signature / coverage-key history this worker process has been sent.
  // Zeroed on every re-fork, which turns the next epoch command into a full
  // snapshot — exactly the frozen epoch-start state a fresh thread would see.
  size_t sent_corpus = 0;
  size_t sent_sigs = 0;
  size_t sent_keys = 0;
  // Per-epoch collection state.
  bool result_done = false;
  EpochShardResult out;
  std::vector<std::string> result_keys;
  uint64_t vcache_hits = 0, vcache_misses = 0;
  uint64_t ccache_hits = 0, ccache_misses = 0;
  uint64_t dcache_hits = 0, dcache_misses = 0, dcache_evictions = 0;
  uint64_t jcache_hits = 0, jcache_misses = 0, jcache_evictions = 0;
  // Failure forensics.
  int consecutive_failures = 0;
  bool inflight_valid = false;
  uint64_t inflight_iteration = 0;
  FuzzCase inflight_case;
  int64_t last_heard_ms = 0;
};

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// Last |max_bytes| of the worker's captured stderr, for the crash finding.
std::string StderrTail(const std::string& path, size_t max_bytes = 4096) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return "";
  }
  is.seekg(0, std::ios::end);
  const std::streamoff size = is.tellg();
  const std::streamoff start = size > static_cast<std::streamoff>(max_bytes)
                                   ? size - static_cast<std::streamoff>(max_bytes)
                                   : 0;
  is.seekg(start);
  std::string tail(static_cast<size_t>(size - start), '\0');
  is.read(tail.data(), static_cast<std::streamsize>(tail.size()));
  tail.resize(static_cast<size_t>(is.gcount()));
  return tail;
}

bool ParseResultPayload(const std::string& payload, WorkerProc* w) {
  std::istringstream is(payload);
  serialize::Reader reader(is);
  reader.Fields("result", 2);
  serialize::ParseStats(reader, &w->out.partial);
  const uint64_t nrecords = reader.Count("records");
  for (uint64_t i = 0; i < nrecords && reader.ok(); ++i) {
    const std::vector<int64_t> fields = reader.Fields("r", 3);
    CaseRecord record;
    record.iteration = static_cast<uint64_t>(fields[0]);
    record.corpus_candidate = fields[1] != 0;
    if (record.corpus_candidate) {
      serialize::ParseCase(reader, &record.the_case);
    }
    for (int64_t f = 0; f < fields[2] && reader.ok(); ++f) {
      Finding finding;
      serialize::ParseFinding(reader, &finding);
      record.findings.push_back(std::move(finding));
    }
    w->out.records.push_back(std::move(record));
  }
  for (uint64_t i = 0, n = reader.Count("covkeys"); i < n && reader.ok(); ++i) {
    w->result_keys.push_back(serialize::Unescape(reader.Line("k")));
  }
  const std::vector<int64_t> vc = reader.Fields("vcache", 2);
  w->vcache_hits = static_cast<uint64_t>(vc[0]);
  w->vcache_misses = static_cast<uint64_t>(vc[1]);
  const std::vector<int64_t> cc = reader.Fields("ccache", 2);
  w->ccache_hits = static_cast<uint64_t>(cc[0]);
  w->ccache_misses = static_cast<uint64_t>(cc[1]);
  const std::vector<int64_t> dc = reader.Fields("dcache", 3);
  w->dcache_hits = static_cast<uint64_t>(dc[0]);
  w->dcache_misses = static_cast<uint64_t>(dc[1]);
  w->dcache_evictions = static_cast<uint64_t>(dc[2]);
  const std::vector<int64_t> jc = reader.Fields("jcache", 3);
  w->jcache_hits = static_cast<uint64_t>(jc[0]);
  w->jcache_misses = static_cast<uint64_t>(jc[1]);
  w->jcache_evictions = static_cast<uint64_t>(jc[2]);
  reader.Line("end");
  return reader.ok();
}

// Serializes one quarantine record in the quarantine-file grammar (also the
// journal kQuarantine payload).
std::string SerializeQuarantine(const QuarantineRecord& record) {
  std::ostringstream os;
  os << "quarantine " << record.iteration << " " << record.attempts << " "
     << record.signal_or_code << "\n";
  serialize::SerializeCase(os, record.the_case);
  os << "end\n";
  return os.str();
}

// Durably appends one record to the quarantine file.
int AppendQuarantineRecord(const std::string& path, const QuarantineRecord& record) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return -errno;
  }
  const std::string text = SerializeQuarantine(record);
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = -errno;
      ::close(fd);
      return err;
    }
    written += static_cast<size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return 0;
}

}  // namespace

int LoadQuarantine(const std::string& path, std::vector<QuarantineRecord>* out,
                   std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) {
      *error = "cannot open quarantine file: " + path;
    }
    return -ENOENT;
  }
  serialize::Reader reader(is);
  while (is.peek() != EOF && !is.eof()) {
    QuarantineRecord record;
    const std::vector<int64_t> fields = reader.Fields("quarantine", 3);
    record.iteration = static_cast<uint64_t>(fields[0]);
    record.attempts = static_cast<int>(fields[1]);
    record.signal_or_code = static_cast<int>(fields[2]);
    serialize::ParseCase(reader, &record.the_case);
    reader.Line("end");
    if (!reader.ok()) {
      if (error != nullptr) {
        *error = "malformed quarantine file: " + reader.error();
      }
      return -EINVAL;
    }
    out->push_back(std::move(record));
    is.peek();  // refresh eof for the loop condition
  }
  return 0;
}

SupervisedFuzzer::SupervisedFuzzer(Generator& generator, CampaignOptions options)
    : generator_(generator), options_(std::move(options)) {}

CampaignStats SupervisedFuzzer::Run() {
  CampaignStats stats;
  stats.tool = generator_.name();
  options_.epoch_len = std::max<uint64_t>(1, options_.epoch_len);
  stats.options = options_;

  const uint64_t epoch_len = options_.epoch_len;
  const int jobs = std::max(1, options_.jobs);
  const int worker_retries = std::max(1, options_.worker_retries);

  const std::string fingerprint = FingerprintOptions(options_, stats.tool);
  std::vector<FuzzCase> corpus;
  uint64_t start_iteration = 1;

  // The coordinator's committed coverage: a dedup set plus an insertion-order
  // vector (for per-worker indexed sync deltas and checkpoint key lines). The
  // coordinator never executes instrumented code, so this — not the global
  // registry — is the campaign's committed set; workers rebuild their local
  // registries from these keys on every (re)fork.
  std::set<std::string> cov_set;
  std::vector<std::string> cov_vec;
  // Finding signatures in a stable order, for the same indexed-delta scheme.
  std::vector<std::string> sigs_vec;

  if (!options_.resume_path.empty()) {
    CampaignCheckpoint cp;
    std::string error;
    if (LoadCheckpoint(options_.resume_path, &cp, &error) != 0) {
      stats.resume_error = error.empty() ? "checkpoint load failed" : error;
      return stats;
    }
    const std::string mismatch =
        ValidateCheckpointCompat(cp, options_, stats.tool, kEngineParallel);
    if (!mismatch.empty()) {
      stats.resume_error = mismatch;
      return stats;
    }
    stats = std::move(cp.stats);
    stats.options = options_;
    stats.tool = generator_.name();
    corpus = std::move(cp.corpus);
    for (std::string& key : cp.coverage_keys) {
      if (cov_set.insert(key).second) {
        cov_vec.push_back(std::move(key));
      }
    }
    start_iteration = cp.next_iteration;
    stats.resumed_from = start_iteration;
  }

  // Conformance prologue, coordinator-side: worker processes never see the
  // corpus directory — they receive the resulting seeds through the normal
  // corpus sync, exactly as on a resume. Must run before |sigs_vec| snapshots
  // the signature set so workers dedup against prologue findings too.
  if (options_.resume_path.empty() && !options_.conformance_dir.empty() &&
      !RunConformancePrologue(options_, stats, &corpus)) {
    return stats;
  }
  for (const std::string& sig : stats.finding_signatures) {
    sigs_vec.push_back(sig);
  }

  Journal journal;
  if (!options_.journal_path.empty()) {
    std::string error;
    if (journal.Open(options_.journal_path, &error) != 0) {
      stats.resume_error = "journal open failed: " + error;
      return stats;
    }
  }

  const uint64_t sample_every =
      options_.coverage_points > 0
          ? std::max<uint64_t>(1, options_.iterations / options_.coverage_points)
          : 0;
  uint64_t last_iteration = options_.iterations;
  if (options_.stop_after != 0 && options_.stop_after < last_iteration) {
    last_iteration =
        std::min(last_iteration, ((options_.stop_after - 1) / epoch_len + 1) * epoch_len);
  }

  // Signal plumbing: SIGTERM/SIGINT request a graceful stop at the next
  // barrier; SIGPIPE (a worker dying mid-frame) must not kill the
  // coordinator — the write error is handled as a worker failure.
  struct sigaction stop_action;
  std::memset(&stop_action, 0, sizeof(stop_action));
  stop_action.sa_handler = HandleStopSignal;
  struct sigaction old_term, old_int, old_pipe, ignore_pipe;
  std::memset(&ignore_pipe, 0, sizeof(ignore_pipe));
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGTERM, &stop_action, &old_term);
  ::sigaction(SIGINT, &stop_action, &old_int);
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);
  g_stop_requested = 0;

  std::vector<WorkerProc> workers(static_cast<size_t>(jobs));

  const auto spawn_worker = [&](WorkerProc& w) -> int {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(cmd) != 0) {
      return -errno;
    }
    if (::pipe(res) != 0) {
      const int err = -errno;
      ::close(cmd[0]);
      ::close(cmd[1]);
      return err;
    }
    char stderr_tmpl[] = "/tmp/bvf-worker-stderr-XXXXXX";
    const int stderr_fd = ::mkstemp(stderr_tmpl);
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = -errno;
      ::close(cmd[0]);
      ::close(cmd[1]);
      ::close(res[0]);
      ::close(res[1]);
      if (stderr_fd >= 0) {
        ::close(stderr_fd);
        ::unlink(stderr_tmpl);
      }
      return err;
    }
    if (pid == 0) {
      // Worker process. Drop every coordinator-owned fd (including the other
      // workers' pipe ends inherited through fork), capture stderr, reset
      // signal dispositions, and die with the coordinator.
      ::close(cmd[1]);
      ::close(res[0]);
      for (const WorkerProc& other : workers) {
        if (other.cmd_fd >= 0) {
          ::close(other.cmd_fd);
        }
        if (other.res_fd >= 0) {
          ::close(other.res_fd);
        }
      }
      if (stderr_fd >= 0) {
        ::dup2(stderr_fd, 2);
        ::close(stderr_fd);
      }
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGPIPE, SIG_DFL);
#ifdef PR_SET_PDEATHSIG
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      ::_exit(RunWorkerProcess(generator_, options_, cmd[0], res[1]));
    }
    ::close(cmd[0]);
    ::close(res[1]);
    if (stderr_fd >= 0) {
      ::close(stderr_fd);
    }
    w.pid = pid;
    w.cmd_fd = cmd[1];
    w.res_fd = res[0];
    w.stderr_path = stderr_tmpl;
    w.sent_corpus = 0;
    w.sent_sigs = 0;
    w.sent_keys = 0;
    w.inflight_valid = false;
    w.last_heard_ms = NowMs();
    return 0;
  };

  const auto reap_worker = [&](WorkerProc& w, bool hang) -> int {
    // Returns the death signal (>0) or negated exit code (<=0).
    CloseFd(w.cmd_fd);
    CloseFd(w.res_fd);
    if (hang && w.pid > 0) {
      ::kill(w.pid, SIGKILL);
    }
    int status = 0;
    if (w.pid > 0) {
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    w.pid = -1;
    if (hang) {
      ++stats.worker_hangs;
      return SIGKILL;
    }
    if (WIFSIGNALED(status)) {
      ++stats.worker_crashes;
      return WTERMSIG(status);
    }
    ++stats.worker_exits;
    return -(WIFEXITED(status) ? WEXITSTATUS(status) : 0);
  };

  const auto send_epoch = [&](WorkerProc& w, int index, uint64_t start, uint64_t end,
                              const std::set<uint64_t>& skip) -> int {
    // Forensic heartbeats (full case payloads) only on the attempt whose
    // failure would exhaust the retry budget and quarantine the in-flight
    // case; every other attempt heartbeats with just the iteration number.
    const bool forensic = w.consecutive_failures + 1 >= worker_retries;
    std::ostringstream os;
    os << "epoch " << start << " " << end << " " << index << " " << jobs << "\n";
    os << "forensic " << (forensic ? 1 : 0) << "\n";
    os << "skip " << skip.size() << "\n";
    for (uint64_t it : skip) {
      os << "s " << it << "\n";
    }
    os << "sigs " << (sigs_vec.size() - w.sent_sigs) << "\n";
    for (size_t i = w.sent_sigs; i < sigs_vec.size(); ++i) {
      os << "g " << serialize::Escape(sigs_vec[i]) << "\n";
    }
    os << "covkeys " << (cov_vec.size() - w.sent_keys) << "\n";
    for (size_t i = w.sent_keys; i < cov_vec.size(); ++i) {
      os << "k " << serialize::Escape(cov_vec[i]) << "\n";
    }
    os << "corpus " << (corpus.size() - w.sent_corpus) << "\n";
    for (size_t i = w.sent_corpus; i < corpus.size(); ++i) {
      serialize::SerializeCase(os, corpus[i]);
    }
    os << "end\n";
    const int rc = WriteFrame(w.cmd_fd, MsgType::kEpoch, os.str());
    if (rc == 0) {
      w.sent_sigs = sigs_vec.size();
      w.sent_keys = cov_vec.size();
      w.sent_corpus = corpus.size();
      w.last_heard_ms = NowMs();
    }
    return rc;
  };

  const auto shutdown_workers = [&] {
    for (WorkerProc& w : workers) {
      if (w.cmd_fd >= 0) {
        WriteFrame(w.cmd_fd, MsgType::kShutdown, "");
      }
      CloseFd(w.cmd_fd);
    }
    const int64_t deadline = NowMs() + 2000;
    for (WorkerProc& w : workers) {
      if (w.pid <= 0) {
        continue;
      }
      for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || (r < 0 && errno != EINTR)) {
          break;
        }
        if (NowMs() >= deadline) {
          ::kill(w.pid, SIGKILL);
          while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
          }
          break;
        }
        ::usleep(10'000);
      }
      w.pid = -1;
      CloseFd(w.res_fd);
      if (!w.stderr_path.empty()) {
        ::unlink(w.stderr_path.c_str());
        w.stderr_path.clear();
      }
    }
  };

  const auto save_checkpoint = [&](uint64_t next_iteration) {
    CampaignCheckpoint cp;
    cp.next_iteration = next_iteration;
    cp.fingerprint = fingerprint;
    cp.engine = kEngineParallel;
    cp.epoch_len = epoch_len;
    cp.rng_state = {};  // per-iteration seeds; there is no stream position
    cp.corpus = corpus;
    cp.stats = stats;
    cp.stats.final_coverage = cov_set.size();
    cp.coverage_keys = cov_vec;
    if (SaveCheckpoint(options_.checkpoint_path, cp) == 0 && journal.is_open()) {
      journal.Rotate();
    }
  };

  for (int w = 0; w < jobs; ++w) {
    const int rc = spawn_worker(workers[static_cast<size_t>(w)]);
    if (rc != 0) {
      stats.resume_error =
          std::string("supervisor: cannot spawn worker: ") + std::strerror(-rc);
      shutdown_workers();
      ::sigaction(SIGTERM, &old_term, nullptr);
      ::sigaction(SIGINT, &old_int, nullptr);
      ::sigaction(SIGPIPE, &old_pipe, nullptr);
      return stats;
    }
  }

  bool aborted = false;
  uint64_t next = start_iteration;
  while (next <= last_iteration && !aborted) {
    const uint64_t end =
        std::min(last_iteration, ((next - 1) / epoch_len + 1) * epoch_len);
    // Poison iterations quarantined during THIS epoch; the re-run shard skips
    // them. Persisting across retries of the epoch is what guarantees
    // progress: every quarantine strictly shrinks the work left to fail.
    std::set<uint64_t> skip;
    bool abandoned_counted = false;

    for (WorkerProc& w : workers) {
      w.result_done = false;
      w.out = EpochShardResult{};
      w.result_keys.clear();
      w.inflight_valid = false;
    }
    for (int i = 0; i < jobs; ++i) {
      WorkerProc& w = workers[static_cast<size_t>(i)];
      if (send_epoch(w, i, next, end, skip) != 0) {
        // A dead pipe at send time is a worker failure; the collect loop
        // below notices the closed result pipe and runs the retry path.
      }
    }

    // ---- Collect: wait for every shard's RESULT, reaping and re-forking
    // failed workers along the way. ----
    int pending = jobs;
    while (pending > 0) {
      std::vector<struct pollfd> pfds;
      std::vector<int> pfd_worker;
      int64_t poll_deadline = -1;
      for (int i = 0; i < jobs; ++i) {
        WorkerProc& w = workers[static_cast<size_t>(i)];
        if (w.result_done) {
          continue;
        }
        struct pollfd pfd;
        pfd.fd = w.res_fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        pfds.push_back(pfd);
        pfd_worker.push_back(i);
        if (options_.hang_timeout_ms > 0) {
          const int64_t deadline = w.last_heard_ms + options_.hang_timeout_ms;
          if (poll_deadline < 0 || deadline < poll_deadline) {
            poll_deadline = deadline;
          }
        }
      }
      int timeout = -1;
      if (poll_deadline >= 0) {
        timeout = static_cast<int>(std::max<int64_t>(0, poll_deadline - NowMs()));
      }
      const int pr = ::poll(pfds.data(), pfds.size(), timeout);
      if (pr < 0 && errno != EINTR) {
        stats.resume_error =
            std::string("supervisor: poll failed: ") + std::strerror(errno);
        aborted = true;
        break;
      }

      // Failure handling for one worker: reap, record, maybe quarantine,
      // back off, re-fork, resend the epoch.
      const auto handle_failure = [&](int index, bool hang) {
        WorkerProc& w = workers[static_cast<size_t>(index)];
        const int sig_or_code = reap_worker(w, hang);
        ++w.consecutive_failures;

        // First-class crash finding with the captured stderr (digest-excluded).
        Finding crash;
        crash.kind = bpf::ReportKind::kWorkerCrash;
        crash.indicator = 0;
        crash.iteration = w.inflight_valid ? w.inflight_iteration : 0;
        std::ostringstream sig;
        sig << "worker-crash:shard" << index << ":"
            << (hang ? "hang" : (sig_or_code > 0 ? "signal" : "exit")) << ":"
            << (sig_or_code > 0 ? sig_or_code : -sig_or_code);
        crash.signature = sig.str();
        std::ostringstream details;
        details << "worker for shard " << index << " ";
        if (hang) {
          details << "missed the heartbeat deadline (" << options_.hang_timeout_ms
                  << " ms) and was killed";
        } else if (sig_or_code > 0) {
          details << "died on signal " << sig_or_code;
        } else {
          details << "exited unexpectedly with code " << -sig_or_code;
        }
        details << " during epoch [" << next << "," << end << "]";
        if (w.inflight_valid) {
          details << ", iteration " << w.inflight_iteration << " in flight";
        }
        const std::string tail = StderrTail(w.stderr_path);
        if (!tail.empty()) {
          details << "; stderr: " << tail;
        }
        crash.details = details.str();
        stats.crash_findings.push_back(crash);
        if (!w.stderr_path.empty()) {
          ::unlink(w.stderr_path.c_str());
          w.stderr_path.clear();
        }
        if (journal.is_open()) {
          JournalRecord record;
          record.type = JournalRecordType::kCrash;
          record.iteration = crash.iteration;
          std::ostringstream payload;
          serialize::SerializeFinding(payload, crash);
          record.payload = payload.str();
          journal.Append(record);
          journal.Sync();
        }

        const int failures = w.consecutive_failures;
        if (failures >= worker_retries) {
          if (w.inflight_valid) {
            // Poison case: quarantine it, skip its iteration, degrade.
            QuarantineRecord q;
            q.iteration = w.inflight_iteration;
            q.attempts = failures;
            q.signal_or_code = sig_or_code;
            q.the_case = w.inflight_case;
            if (!options_.quarantine_path.empty()) {
              AppendQuarantineRecord(options_.quarantine_path, q);
            }
            if (journal.is_open()) {
              JournalRecord record;
              record.type = JournalRecordType::kQuarantine;
              record.iteration = q.iteration;
              record.payload = SerializeQuarantine(q);
              journal.Append(record);
              journal.Sync();
            }
            skip.insert(q.iteration);
            ++stats.quarantined_cases;
            if (!abandoned_counted) {
              ++stats.epochs_abandoned;
              abandoned_counted = true;
            }
            w.consecutive_failures = 0;  // fresh budget for the rest of the epoch
          } else {
            // Failing before any case begins is not attributable to a case;
            // retrying cannot converge. Give up on the campaign.
            stats.resume_error =
                "supervisor: worker for shard " + std::to_string(index) + " failed " +
                std::to_string(failures) +
                " times with no case in flight; aborting campaign";
            aborted = true;
            return;
          }
        }
        w.inflight_valid = false;

        const int64_t backoff = std::min<int64_t>(
            static_cast<int64_t>(options_.retry_backoff_ms)
                << std::min(failures - 1, 10),
            2000);
        if (backoff > 0) {
          ::usleep(static_cast<useconds_t>(backoff) * 1000);
        }
        const int rc = spawn_worker(w);
        if (rc != 0) {
          stats.resume_error =
              std::string("supervisor: cannot respawn worker: ") + std::strerror(-rc);
          aborted = true;
          return;
        }
        ++stats.worker_restarts;
        send_epoch(w, index, next, end, skip);
      };

      const int64_t now = NowMs();
      for (size_t p = 0; p < pfds.size() && !aborted; ++p) {
        WorkerProc& w = workers[static_cast<size_t>(pfd_worker[p])];
        if (w.result_done) {
          continue;  // can happen if an earlier entry's failure re-sorted state
        }
        if ((pfds[p].revents & POLLIN) != 0) {
          Frame frame;
          const int rc = ReadFrame(w.res_fd, &frame,
                                   options_.hang_timeout_ms > 0
                                       ? options_.hang_timeout_ms
                                       : -1);
          if (rc != 0) {
            // EOF, torn frame, or a stall mid-frame: all worker failures.
            handle_failure(pfd_worker[p], /*hang=*/rc == -ETIMEDOUT);
            continue;
          }
          w.last_heard_ms = NowMs();
          if (frame.type == MsgType::kCaseBegin) {
            std::istringstream is(frame.payload);
            serialize::Reader reader(is);
            const std::vector<int64_t> fields = reader.Fields("case_begin", 2);
            FuzzCase fc;
            if (reader.ok() && fields[1] != 0) {
              serialize::ParseCase(reader, &fc);  // forensic heartbeat
            }
            if (reader.ok()) {
              w.inflight_valid = true;
              w.inflight_iteration = static_cast<uint64_t>(fields[0]);
              w.inflight_case = std::move(fc);
            }
          } else if (frame.type == MsgType::kResult) {
            if (!ParseResultPayload(frame.payload, &w)) {
              handle_failure(pfd_worker[p], /*hang=*/false);
              continue;
            }
            w.result_done = true;
            w.inflight_valid = false;
            w.consecutive_failures = 0;
            --pending;
          } else {
            handle_failure(pfd_worker[p], /*hang=*/false);
          }
        } else if ((pfds[p].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
          handle_failure(pfd_worker[p], /*hang=*/false);
        } else if (options_.hang_timeout_ms > 0 &&
                   now - w.last_heard_ms >= options_.hang_timeout_ms) {
          handle_failure(pfd_worker[p], /*hang=*/true);
        }
      }
    }
    if (aborted) {
      break;
    }

    // ---- Barrier merge: the same steps, in the same order, as the
    // in-process engine (src/core/parallel.cc). ----
    for (WorkerProc& w : workers) {
      MergeEpochCounters(stats, w.out.partial);
    }
    for (WorkerProc& w : workers) {
      for (std::string& key : w.result_keys) {
        if (cov_set.insert(key).second) {
          cov_vec.push_back(std::move(key));
        }
      }
      w.result_keys.clear();
    }
    for (WorkerProc& w : workers) {
      stats.verdict_cache_hits += w.vcache_hits;
      stats.verdict_cache_misses += w.vcache_misses;
      stats.canonical_cache_hits += w.ccache_hits;
      stats.canonical_cache_misses += w.ccache_misses;
      stats.decode_cache_hits += w.dcache_hits;
      stats.decode_cache_misses += w.dcache_misses;
      stats.decode_cache_evictions += w.dcache_evictions;
      stats.jit_cache_hits += w.jcache_hits;
      stats.jit_cache_misses += w.jcache_misses;
      stats.jit_cache_evictions += w.jcache_evictions;
      w.vcache_hits = w.vcache_misses = 0;
      w.ccache_hits = w.ccache_misses = 0;
      w.dcache_hits = w.dcache_misses = w.dcache_evictions = 0;
      w.jcache_hits = w.jcache_misses = w.jcache_evictions = 0;
    }
    const size_t findings_before = stats.findings.size();
    const size_t corpus_before = corpus.size();
    {
      std::vector<CaseRecord*> merged;
      for (WorkerProc& w : workers) {
        for (CaseRecord& record : w.out.records) {
          merged.push_back(&record);
        }
      }
      MergeEpochRecords(std::move(merged), stats, corpus);
      for (WorkerProc& w : workers) {
        w.out.records.clear();
      }
    }
    for (size_t i = findings_before; i < stats.findings.size(); ++i) {
      sigs_vec.push_back(stats.findings[i].signature);
    }
    AppendEpochCurve(stats, next, end, sample_every, cov_set.size());

    if (journal.is_open()) {
      for (size_t i = findings_before; i < stats.findings.size(); ++i) {
        JournalRecord record;
        record.type = JournalRecordType::kFinding;
        record.iteration = stats.findings[i].iteration;
        std::ostringstream payload;
        serialize::SerializeFinding(payload, stats.findings[i]);
        record.payload = payload.str();
        journal.Append(record);
      }
      for (size_t i = corpus_before; i < corpus.size(); ++i) {
        JournalRecord record;
        record.type = JournalRecordType::kCorpusCase;
        record.iteration = end;
        std::ostringstream payload;
        serialize::SerializeCase(payload, corpus[i]);
        record.payload = payload.str();
        journal.Append(record);
      }
      journal.Append(JournalRecord{JournalRecordType::kMark, end + 1, ""});
      journal.Sync();
    }

    if (g_stop_requested) {
      // Graceful stop: this barrier's state is complete and journaled;
      // checkpoint it and return. Resume continues bit-identically.
      if (!options_.checkpoint_path.empty()) {
        save_checkpoint(end + 1);
      }
      next = end + 1;
      break;
    }
    if (!options_.checkpoint_path.empty() && options_.checkpoint_every != 0 &&
        end != last_iteration &&
        end / options_.checkpoint_every > (next - 1) / options_.checkpoint_every) {
      save_checkpoint(end + 1);
    }
    next = end + 1;
  }

  shutdown_workers();
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);

  stats.final_coverage = cov_set.size();
  if (!aborted && !g_stop_requested && !options_.checkpoint_path.empty()) {
    save_checkpoint(last_iteration + 1);
  }
  return stats;
}

}  // namespace bvf
