// Pipe framing for the crash-isolated campaign supervisor (DESIGN.md §12.2).
//
// The coordinator and its worker processes exchange length+checksum framed
// messages over anonymous pipes:
//
//   u32 frame-magic | u32 type | u32 payload-len |
//   u64 fnv64(type‖len‖payload) | payload bytes
//
// Payloads are the shared text grammar of src/core/serialize.h, so a case or
// a stats body crossing the pipe is byte-identical to the same object in a
// checkpoint or journal. Framing errors are fatal for the sending worker (the
// supervisor treats -EBADMSG exactly like a crash): a half-written frame from
// a dying process must never be interpreted as data.

#ifndef SRC_CORE_SUPERVISOR_WIRE_H_
#define SRC_CORE_SUPERVISOR_WIRE_H_

#include <cstdint>
#include <string>

namespace bvf {
namespace supervisor {

enum class MsgType : uint32_t {
  kEpoch = 1,      // coordinator → worker: epoch range + state sync deltas
  kCaseBegin = 2,  // worker → coordinator: heartbeat + in-flight case forensics
  kResult = 3,     // worker → coordinator: one shard's epoch output
  kShutdown = 4,   // coordinator → worker: exit cleanly
};

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

// Writes one frame; retries EINTR/partial writes. Returns 0 or a negative
// errno (-EPIPE when the peer is gone).
int WriteFrame(int fd, MsgType type, const std::string& payload);

// Reads one complete frame. |timeout_ms| < 0 blocks indefinitely; otherwise
// the whole frame must arrive within the budget. Returns 0 on success,
// -ETIMEDOUT on deadline, -EPIPE on EOF, -EBADMSG on a corrupt frame, or a
// negative errno.
int ReadFrame(int fd, Frame* out, int timeout_ms);

}  // namespace supervisor
}  // namespace bvf

#endif  // SRC_CORE_SUPERVISOR_WIRE_H_
