// Worker-process half of the supervisor (DESIGN.md §12.2). The worker is the
// same shard loop the in-process engine runs (src/core/epoch.cc) wrapped in a
// frame-servicing loop: sync state in, heartbeat + results out. Nothing here
// may touch the coordinator's state except through frames — that isolation is
// the entire point (a sanitizer abort in here kills this process only).

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/epoch.h"
#include "src/core/serialize.h"
#include "src/core/supervisor/supervisor.h"
#include "src/core/supervisor/wire.h"
#include "src/kernel/coverage.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/jit_prog.h"
#include "src/runtime/kernel.h"
#include "src/runtime/verdict_cache.h"

namespace bvf {

namespace {

using bpf::Coverage;
using supervisor::Frame;
using supervisor::MsgType;
using supervisor::ReadFrame;
using supervisor::WriteFrame;

struct EpochCommand {
  uint64_t start = 0;
  uint64_t end = 0;
  int index = 0;
  int jobs = 1;
  // Forensic mode: CASE_BEGIN heartbeats carry the full serialized case so
  // the supervisor can quarantine it if this attempt dies. Requested only on
  // the attempt whose failure would hit the retry budget — routine heartbeats
  // stay a dozen bytes, keeping the per-case supervision cost near zero.
  bool forensic = false;
  std::set<uint64_t> skip;
  std::vector<std::string> sigs;
  std::vector<std::string> covkeys;
  std::vector<FuzzCase> corpus_delta;
};

bool ParseEpochCommand(const std::string& payload, EpochCommand* out) {
  std::istringstream is(payload);
  serialize::Reader reader(is);
  const std::vector<int64_t> header = reader.Fields("epoch", 4);
  out->start = static_cast<uint64_t>(header[0]);
  out->end = static_cast<uint64_t>(header[1]);
  out->index = static_cast<int>(header[2]);
  out->jobs = static_cast<int>(header[3]);
  out->forensic = reader.Fields("forensic", 1)[0] != 0;
  for (uint64_t i = 0, n = reader.Count("skip"); i < n && reader.ok(); ++i) {
    out->skip.insert(static_cast<uint64_t>(reader.Fields("s", 1)[0]));
  }
  for (uint64_t i = 0, n = reader.Count("sigs"); i < n && reader.ok(); ++i) {
    out->sigs.push_back(serialize::Unescape(reader.Line("g")));
  }
  for (uint64_t i = 0, n = reader.Count("covkeys"); i < n && reader.ok(); ++i) {
    out->covkeys.push_back(serialize::Unescape(reader.Line("k")));
  }
  serialize::ParseCorpus(reader, &out->corpus_delta);
  reader.Line("end");
  return reader.ok();
}

// The deterministic crash injector for tests and the smoke gate. With a
// marker file the injected failure fires exactly once across worker
// re-forks (first attempt creates the marker, the retry finds it and runs
// clean) — the transient-crash scenario. Without a marker it fires on every
// attempt — the poison-case scenario that must end in quarantine.
void MaybeInjectCrash(const CampaignOptions& options, uint64_t iteration) {
  if (options.test_crash_at == 0 || iteration != options.test_crash_at) {
    return;
  }
  if (!options.test_crash_marker.empty()) {
    struct stat st;
    if (::stat(options.test_crash_marker.c_str(), &st) == 0) {
      return;  // already fired once; run clean this time
    }
    FILE* marker = std::fopen(options.test_crash_marker.c_str(), "w");
    if (marker != nullptr) {
      std::fclose(marker);
    }
  }
  std::fprintf(stderr, "bvf-worker: injected failure at iteration %llu (mode %d)\n",
               static_cast<unsigned long long>(iteration), options.test_crash_mode);
  std::fflush(stderr);
  switch (options.test_crash_mode) {
    case 1:
      ::kill(::getpid(), SIGKILL);
      break;
    case 2:
      for (;;) {
        ::pause();  // hang until the supervisor's deadline reaps us
      }
      break;
    case 3:
      ::_exit(3);
      break;
    default:
      ::abort();  // SIGABRT — the shape of a real sanitizer abort
  }
}

}  // namespace

int RunWorkerProcess(Generator& generator, const CampaignOptions& options, int cmd_fd,
                     int res_fd) {
  // Shed inherited process-global machine state; the coordinator's key sync
  // is the only source of committed coverage from here on.
  bpf::ResetWorkerProcessState();
  bpf::CoverageSink sink;
  Coverage::InstallThreadSink(&sink);

  CaseRunner runner(options);
  // Process-local caches in immediate mode: a hit is digest-invisible by
  // construction, so sharing them across processes would buy determinism
  // nothing — only the hit/miss counters differ from an in-process run, and
  // those are digest-excluded.
  bpf::VerdictCache vcache;
  bpf::VerdictCacheShard vshard(vcache, /*immediate=*/true);
  if (options.verdict_cache) {
    runner.set_verdict_shard(&vshard);
  }
  bpf::DecodeCache dcache;
  bpf::DecodeCacheShard dshard(dcache, /*immediate=*/true);
  if (options.interp_engine != bpf::ExecEngine::kLegacy) {
    runner.set_decode_shard(&dshard);
  }
  bpf::JitCache jcache;
  bpf::JitCacheShard jshard(jcache, /*immediate=*/true);
  if (options.interp_engine == bpf::ExecEngine::kJit && bpf::JitAvailable()) {
    runner.set_jit_shard(&jshard);
  }

  std::vector<FuzzCase> corpus;
  std::set<std::string> sigs;
  uint64_t last_evictions = 0;
  uint64_t last_jit_evictions = 0;

  for (;;) {
    Frame frame;
    const int rc = ReadFrame(cmd_fd, &frame, /*timeout_ms=*/-1);
    if (rc == -EPIPE) {
      return 0;  // supervisor is gone; PDEATHSIG would kill us anyway
    }
    if (rc != 0) {
      std::fprintf(stderr, "bvf-worker: command pipe error %d\n", -rc);
      return 1;
    }
    if (frame.type == MsgType::kShutdown) {
      return 0;
    }
    if (frame.type != MsgType::kEpoch) {
      std::fprintf(stderr, "bvf-worker: unexpected frame type %u\n",
                   static_cast<unsigned>(frame.type));
      return 1;
    }
    EpochCommand cmd;
    if (!ParseEpochCommand(frame.payload, &cmd)) {
      std::fprintf(stderr, "bvf-worker: malformed epoch command\n");
      return 1;
    }
    // Apply the sync deltas: this worker now holds the exact epoch-start
    // snapshots every in-process worker thread would see.
    for (const std::string& sig : cmd.sigs) {
      sigs.insert(sig);
    }
    Coverage::Get().RestoreHitKeys(cmd.covkeys);
    for (FuzzCase& fc : cmd.corpus_delta) {
      corpus.push_back(std::move(fc));
    }

    EpochShardHooks hooks;
    hooks.on_case_begin = [&](uint64_t iteration, const FuzzCase& the_case) {
      // Heartbeat + forensics: the supervisor learns what is in flight
      // before it runs, so a crash right after is attributable (and, after
      // K retries, quarantinable). The case body rides along only in
      // forensic mode — serializing every case would put a per-case tax on
      // healthy campaigns for data the supervisor needs only at quarantine
      // time.
      std::ostringstream payload;
      payload << "case_begin " << iteration << " " << (cmd.forensic ? 1 : 0) << "\n";
      if (cmd.forensic) {
        serialize::SerializeCase(payload, the_case);
      }
      WriteFrame(res_fd, MsgType::kCaseBegin, payload.str());
      MaybeInjectCrash(options, iteration);
    };
    if (!cmd.skip.empty()) {
      hooks.skip = [&](uint64_t iteration) { return cmd.skip.count(iteration) > 0; };
    }

    EpochShardResult out;
    RunEpochShard(options, generator, runner, sink, corpus, sigs, cmd.index, cmd.jobs,
                  cmd.start, cmd.end, out, hooks);

    // Ship the shard result. Coverage travels as stable keys: site ids are
    // registration-order and differ across processes.
    std::ostringstream payload;
    payload << "result " << cmd.start << " " << cmd.end << "\n";
    serialize::SerializeStats(payload, out.partial);
    payload << "records " << out.records.size() << "\n";
    for (const CaseRecord& record : out.records) {
      payload << "r " << record.iteration << " " << (record.corpus_candidate ? 1 : 0)
              << " " << record.findings.size() << "\n";
      if (record.corpus_candidate) {
        serialize::SerializeCase(payload, record.the_case);
      }
      for (const Finding& finding : record.findings) {
        serialize::SerializeFinding(payload, finding);
      }
    }
    const std::vector<std::string> keys = Coverage::Get().SiteKeysFor(sink.epoch_sites());
    sink.ClearEpoch();
    payload << "covkeys " << keys.size() << "\n";
    for (const std::string& key : keys) {
      payload << "k " << serialize::Escape(key) << "\n";
    }
    payload << "vcache " << vshard.TakeHits() << " " << vshard.TakeMisses() << "\n";
    payload << "ccache " << vshard.TakeCanonicalHits() << " "
            << vshard.TakeCanonicalMisses() << "\n";
    const uint64_t evictions = dcache.evictions();
    payload << "dcache " << dshard.TakeHits() << " " << dshard.TakeMisses() << " "
            << (evictions - last_evictions) << "\n";
    last_evictions = evictions;
    const uint64_t jit_evictions = jcache.evictions();
    payload << "jcache " << jshard.TakeHits() << " " << jshard.TakeMisses() << " "
            << (jit_evictions - last_jit_evictions) << "\n";
    last_jit_evictions = jit_evictions;
    payload << "end\n";
    if (WriteFrame(res_fd, MsgType::kResult, payload.str()) != 0) {
      return 0;  // supervisor is gone
    }
  }
}

}  // namespace bvf
