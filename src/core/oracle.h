// The test oracle (paper §3): classifies kernel reports into the two
// correctness-bug indicators, and triages findings against the known root
// causes of Table 2.

#ifndef SRC_CORE_ORACLE_H_
#define SRC_CORE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/report.h"

namespace bvf {

enum class KnownBug {
  kUnknown = 0,
  kBug1NullnessPropagation,
  kBug2TaskStructBounds,
  kBug3KfuncBacktrack,
  kBug4TracePrintkRecursion,
  kBug5ContentionBegin,
  kBug6SendSignal,
  kBug7DispatcherSync,
  kBug8Kmemdup,
  kBug9BucketIteration,
  kBug10IrqWork,
  kBug11XdpOffload,
  kCve2022_23222,
  // Synthetic bounds-tracking bug only the abstract-state audit can see: the
  // corrupted s32 range never feeds a pointer offset, so indicators #1/#2
  // stay silent (src/verifier/bug_registry.h, bug12_jmp32_signed_refine).
  kBug12Jmp32SignedRefine,
  // Synthetic spurious-rejection asymmetry only the metamorphic oracle can
  // see: the ld_imm64 path drops small-constant tracking that the mov-imm
  // path keeps, so an accepted program's ld_imm64-spelled variant fails to
  // load (src/verifier/bug_registry.h, bug13_ld_imm64_pessimize).
  kBug13LdImm64Pessimize,
};

const char* KnownBugName(KnownBug bug);

// Re-execution verdict for a finding (campaign confirmation pass): whether
// replaying the originating case reproduces the report without faults
// (deterministic), only under the recorded fault schedule (fault-dependent),
// or not reliably at all (flaky).
enum class Confirmation {
  kUnconfirmed = 0,   // confirmation disabled or not yet run
  kDeterministic,     // reproduces on every clean re-execution
  kFaultDependent,    // reproduces on every fault-log replay, not cleanly
  kFlaky,             // fails to reproduce consistently either way
};

const char* ConfirmationName(Confirmation confirmation);

struct Finding {
  bpf::ReportKind kind;
  std::string signature;  // stable dedup key
  std::string details;
  int indicator;          // 1 or 2 (paper §3.1/§3.2), 3 (state audit),
                          // 4 (metamorphic divergence), 5 (jit-vs-
                          // interpreter differential, DESIGN.md §14.5), or
                          // 6 (conformance expected-value oracle, §15)
  KnownBug triaged = KnownBug::kUnknown;
  uint64_t iteration = 0;  // campaign iteration that first triggered it

  // Confirmation pass results (Fuzzer::ConfirmFinding).
  Confirmation confirmation = Confirmation::kUnconfirmed;
  int confirm_hits = 0;  // re-executions that reproduced the signature
  int confirm_runs = 0;  // re-executions attempted
};

// Converts reports filed since |watermark| into findings (indicator
// classification + triage).
std::vector<Finding> ClassifyReports(const bpf::ReportSink& sink, size_t watermark,
                                     uint64_t iteration);

// Best-effort attribution of a report to a Table 2 root cause, using the
// report kind and the originating kernel routine (the automated part of the
// paper's triage; the paper's root-cause analysis itself is manual).
KnownBug TriageReport(const bpf::KernelReport& report);

}  // namespace bvf

#endif  // SRC_CORE_ORACLE_H_
