#include "src/core/fuzzer.h"

#include <cstring>

#include "src/analysis/state_audit.h"
#include "src/kernel/coverage.h"
#include "src/runtime/bpf_syscall.h"
#include "src/sanitizer/asan_funcs.h"

namespace bvf {

using bpf::Coverage;

bool CampaignStats::FoundBug(KnownBug bug) const {
  for (const Finding& finding : findings) {
    if (finding.triaged == bug) {
      return true;
    }
  }
  return false;
}

uint64_t CampaignStats::FoundAtIteration(KnownBug bug) const {
  uint64_t first = 0;
  for (const Finding& finding : findings) {
    if (finding.triaged == bug && (first == 0 || finding.iteration < first)) {
      first = finding.iteration;
    }
  }
  return first;
}

void Fuzzer::RunCase(FuzzCase& the_case, CampaignStats& stats, uint64_t iteration) {
  bpf::Kernel kernel(options_.version, options_.bugs, options_.arena_size);
  bpf::Bpf bpf(kernel);
  if (options_.sanitize) {
    bpf::BpfAsan::Register(kernel);
    bpf.set_instrument(sanitizer_.Hook());
  }
  if (options_.audit_state) {
    // Indicator #3: compare every execution's register witnesses against the
    // verifier's claimed abstract state, reporting containment misses.
    bpf.set_exec_observer(
        [&kernel](const bpf::LoadedProgram& prog, const bpf::WitnessTrace& trace) {
          AuditAndReport(prog, trace, kernel.reports());
        });
  }

  // Create the case's maps and seed a few entries so lookups can hit.
  for (const bpf::MapDef& def : the_case.maps) {
    const int fd = bpf.MapCreate(def);
    if (fd < 0) {
      continue;
    }
    if (def.type == bpf::MapType::kHash || def.type == bpf::MapType::kArray) {
      for (uint32_t k = 0; k < 2 && k < def.max_entries; ++k) {
        std::vector<uint8_t> key(def.key_size, 0);
        std::memcpy(key.data(), &k, std::min<size_t>(sizeof(k), key.size()));
        std::vector<uint8_t> value(def.value_size, 0);
        bpf.MapUpdateElem(fd, key.data(), value.data());
      }
    }
  }

  // Instruction-mix statistics over the as-generated program.
  for (const bpf::Insn& insn : the_case.prog.insns) {
    ++stats.insns_total;
    if (insn.IsAlu() || (insn.IsJmp() && !insn.IsCall() && !insn.IsExit())) {
      ++stats.insns_alu_jmp;
    } else if (insn.IsMemLoad() || insn.IsMemStore() || insn.IsAtomic() ||
               insn.IsLdImm64()) {
      ++stats.insns_mem;
    } else if (insn.IsCall()) {
      ++stats.insns_call;
    }
  }

  bpf::VerifierResult verdict;
  const int prog_fd = bpf.ProgLoad(the_case.prog, &verdict);
  if (prog_fd < 0) {
    ++stats.rejected;
    ++stats.reject_errno[-prog_fd];
  } else {
    ++stats.accepted;
    for (int run = 0; run < the_case.test_runs; ++run) {
      bpf.ProgTestRun(prog_fd, static_cast<uint32_t>(32 + 16 * run),
                      iteration * 16 + static_cast<uint64_t>(run));
      ++stats.exec_runs;
    }
    if (the_case.do_attach) {
      if (bpf.ProgAttach(prog_fd, the_case.attach_target) == 0) {
        for (bpf::TracepointId event : the_case.events) {
          bpf.FireEvent(event);
        }
        // Attached programs also run when the program itself re-executes.
        bpf.ProgTestRun(prog_fd, 64, iteration);
        ++stats.exec_runs;
        bpf.DetachAll();
      }
    }
    if (the_case.do_xdp_install && the_case.prog.type == bpf::ProgType::kXdp) {
      if (bpf.XdpInstall(prog_fd) == 0) {
        bpf.XdpRun(64, iteration);
        bpf.XdpRun(96, iteration + 1);
        ++stats.exec_runs;
      }
    }
    if (the_case.do_map_batch) {
      // Several batched lookups so the simulated bucket-lock contention tick
      // (every 3rd trylock) is reached.
      for (const auto& map : kernel.maps().maps()) {
        if (map->def().type == bpf::MapType::kHash) {
          for (int round = 0; round < 4; ++round) {
            bpf.MapLookupBatch(map->id(), 16);
          }
        }
      }
    }
  }

  // Oracle: convert this kernel's reports into deduped findings.
  for (Finding& finding : ClassifyReports(kernel.reports(), 0, iteration)) {
    if (stats.finding_signatures.insert(finding.signature).second) {
      stats.findings.push_back(std::move(finding));
    }
  }
}

CampaignStats Fuzzer::Run() {
  CampaignStats stats;
  stats.tool = generator_.name();
  stats.options = options_;
  sanitizer_.ResetStats();
  corpus_.clear();

  if (options_.reset_coverage) {
    Coverage::Get().ResetHits();
  }

  bpf::Rng rng(options_.seed);
  const uint64_t sample_every =
      options_.coverage_points > 0
          ? std::max<uint64_t>(1, options_.iterations / options_.coverage_points)
          : 0;

  for (uint64_t i = 1; i <= options_.iterations; ++i) {
    Coverage::Get().MarkRun();

    FuzzCase the_case;
    if (options_.coverage_feedback && !corpus_.empty() && rng.Chance(0.4)) {
      the_case = rng.Pick(corpus_);
      generator_.Mutate(rng, the_case);
    } else {
      the_case = generator_.Generate(rng);
    }

    RunCase(the_case, stats, i);

    if (options_.coverage_feedback && Coverage::Get().NewSinceMark() > 0 &&
        corpus_.size() < 512) {
      corpus_.push_back(the_case);
    }
    if (sample_every != 0 && i % sample_every == 0) {
      stats.curve.push_back(CoveragePoint{i, Coverage::Get().hit_count()});
    }
    ++stats.iterations;
  }

  stats.final_coverage = Coverage::Get().hit_count();
  stats.sanitizer = sanitizer_.stats();
  return stats;
}

}  // namespace bvf
