#include "src/core/fuzzer.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "src/analysis/canonicalize.h"
#include "src/analysis/state_audit.h"
#include "src/conformance/corpus.h"
#include "src/conformance/runner.h"
#include "src/core/checkpoint.h"
#include "src/core/metamorph/metamorph.h"
#include "src/core/metamorph/transform.h"
#include "src/core/metamorph/witness.h"
#include "src/kernel/coverage.h"
#include "src/runtime/bpf_syscall.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/verdict_cache.h"
#include "src/sanitizer/asan_funcs.h"

namespace bvf {

using bpf::Coverage;

const char* CaseOutcomeName(CaseOutcome outcome) {
  switch (outcome) {
    case CaseOutcome::kUnclassified:
      return "unclassified";
    case CaseOutcome::kRejected:
      return "rejected";
    case CaseOutcome::kExecOk:
      return "exec-ok";
    case CaseOutcome::kExecFault:
      return "exec-fault";
    case CaseOutcome::kExecTimeout:
      return "exec-timeout";
    case CaseOutcome::kResourceExhausted:
      return "resource-exhausted";
    case CaseOutcome::kPanic:
      return "panic";
    case CaseOutcome::kVerdictDivergence:
      return "verdict-divergence";
    case CaseOutcome::kWitnessDivergence:
      return "witness-divergence";
    case CaseOutcome::kSanitizerDivergence:
      return "sanitizer-divergence";
    case CaseOutcome::kJitDivergence:
      return "jit-divergence";
    case CaseOutcome::kConformanceMismatch:
      return "conformance-mismatch";
    case CaseOutcome::kConformanceReject:
      return "conformance-reject";
  }
  return "unclassified";
}

bool CampaignStats::FoundBug(KnownBug bug) const {
  for (const Finding& finding : findings) {
    if (finding.triaged == bug) {
      return true;
    }
  }
  return false;
}

uint64_t CampaignStats::FoundAtIteration(KnownBug bug) const {
  uint64_t first = 0;
  for (const Finding& finding : findings) {
    if (finding.triaged == bug && (first == 0 || finding.iteration < first)) {
      first = finding.iteration;
    }
  }
  return first;
}

void AccumulateInsnMix(const FuzzCase& the_case, CampaignStats& stats) {
  for (const bpf::Insn& insn : the_case.prog.insns) {
    ++stats.insns_total;
    if (insn.IsAlu() || (insn.IsJmp() && !insn.IsCall() && !insn.IsExit())) {
      ++stats.insns_alu_jmp;
    } else if (insn.IsMemLoad() || insn.IsMemStore() || insn.IsAtomic() ||
               insn.IsLdImm64()) {
      ++stats.insns_mem;
    } else if (insn.IsCall()) {
      ++stats.insns_call;
    }
  }
}

void AccumulateCaseCounters(const CaseRunner::CaseResult& result, CampaignStats& stats) {
  if (result.prog_fd < 0) {
    ++stats.rejected;
    ++stats.reject_errno[-result.prog_fd];
  } else {
    ++stats.accepted;
  }
  stats.exec_runs += result.exec_runs;
  for (const int err : result.exec_errs) {
    if (err != 0) {
      ++stats.exec_failures;
      ++stats.exec_errno[-err];
    }
  }
  stats.fault_injected += result.faults_injected;
  ++stats.outcomes[result.outcome];
  if (result.panicked) {
    ++stats.panics;
    ++stats.substrate_rebuilds;
  }
  stats.metamorph_bases += result.metamorph_bases;
  stats.metamorph_variants += result.metamorph_variants;
  stats.metamorph_verdict_divergences += result.metamorph_verdict_divergences;
  stats.metamorph_witness_divergences += result.metamorph_witness_divergences;
  stats.metamorph_sanitizer_divergences += result.metamorph_sanitizer_divergences;
}

// One simulated machine. Rebuilt from scratch after a panic (the contained
// analogue of a reboot); otherwise rewound between cases via ResetCaseState.
struct CaseRunner::Substrate {
  bpf::Kernel kernel;
  bpf::Bpf bpf;

  explicit Substrate(const CampaignOptions& options)
      : kernel(options.version, options.bugs, options.arena_size), bpf(kernel) {}
};

CaseRunner::CaseRunner(const CampaignOptions& options) : options_(options) {
  if (options_.metamorph) {
    metamorph_ = std::make_unique<MetamorphOracle>(options_);
  }
}

CaseRunner::~CaseRunner() = default;

void CaseRunner::set_verdict_shard(bpf::VerdictCacheShard* shard) {
  verdict_shard_ = shard;
  if (substrate_) {
    substrate_->bpf.set_verdict_cache(verdict_shard_, &sanitizer_);
  }
}

void CaseRunner::set_decode_shard(bpf::DecodeCacheShard* shard) {
  decode_shard_ = shard;
  if (substrate_) {
    substrate_->bpf.set_decode_cache(decode_shard_);
  }
}

void CaseRunner::set_jit_shard(bpf::JitCacheShard* shard) {
  jit_shard_ = shard;
  if (substrate_) {
    substrate_->bpf.set_jit_cache(jit_shard_);
  }
}

void CaseRunner::Teardown() { substrate_.reset(); }

CaseRunner::Substrate& CaseRunner::EnsureSubstrate() {
  if (!substrate_) {
    substrate_ = std::make_unique<Substrate>(options_);
    ConfigureSubstrate(*substrate_, &sanitizer_, /*campaign=*/true);
  }
  return *substrate_;
}

void CaseRunner::ConfigureSubstrate(Substrate& sub, Sanitizer* sanitizer, bool campaign) {
  // Every substrate — campaign and confirmation alike — runs the selected
  // engine, so a confirmation re-execution reproduces through the exact same
  // path as the original case (the engines are digest-identical anyway; this
  // keeps the intent honest).
  sub.bpf.set_exec_engine(options_.interp_engine);
  if (options_.sanitize) {
    bpf::BpfAsan::Register(sub.kernel);
    sub.bpf.set_instrument(sanitizer->Hook());
  }
  if (options_.audit_state) {
    // Indicator #3: compare every execution's register witnesses against the
    // verifier's claimed abstract state, reporting containment misses.
    bpf::Kernel* kernel = &sub.kernel;
    sub.bpf.set_exec_observer(
        [kernel](const bpf::LoadedProgram& prog, const bpf::WitnessTrace& trace) {
          AuditAndReport(prog, trace, kernel->reports());
        });
  }
  sub.kernel.arena().set_alloc_budget(options_.arena_budget);
  sub.kernel.arena().set_dirty_reset(options_.dirty_reset);
  sub.bpf.set_exec_limits(options_.limits);
  if (campaign && verdict_shard_ != nullptr) {
    // Confirmation substrates stay uncached: a confirmation run must exercise
    // the real verifier, and its stats are thrown away anyway.
    sub.bpf.set_verdict_cache(verdict_shard_, &sanitizer_);
    if (options_.canonical_cache) {
      // The ld_imm64 fold is the one canonicalization bug #13 breaks — its
      // whole premise is that the verifier treats the two constant spellings
      // differently — so it is disabled when that bug is armed.
      bvf::CanonicalizeOptions canon_options;
      canon_options.fold_ld_imm64 = !options_.bugs.bug13_ld_imm64_pessimize;
      sub.bpf.set_canonicalizer([canon_options](const bpf::Program& prog) {
        return Canonicalize(prog, canon_options);
      });
    }
  }
  if (campaign && decode_shard_ != nullptr) {
    sub.bpf.set_decode_cache(decode_shard_);
  }
  if (campaign && jit_shard_ != nullptr) {
    sub.bpf.set_jit_cache(jit_shard_);
  }
}

CaseRunner::DriveResult CaseRunner::DriveCase(Substrate& sub, const FuzzCase& the_case,
                                              uint64_t iteration) {
  DriveResult result;
  bpf::Bpf& bpf = sub.bpf;

  // Create the case's maps and seed a few entries so lookups can hit.
  for (const bpf::MapDef& def : the_case.maps) {
    const int fd = bpf.MapCreate(def);
    if (fd < 0) {
      continue;
    }
    if (def.type == bpf::MapType::kHash || def.type == bpf::MapType::kArray) {
      for (uint32_t k = 0; k < 2 && k < def.max_entries; ++k) {
        std::vector<uint8_t> key(def.key_size, 0);
        std::memcpy(key.data(), &k, std::min<size_t>(sizeof(k), key.size()));
        std::vector<uint8_t> value(def.value_size, 0);
        bpf.MapUpdateElem(fd, key.data(), value.data());
      }
    }
  }

  bpf::VerifierResult verdict;
  result.prog_fd = bpf.ProgLoad(the_case.prog, &verdict);
  if (result.prog_fd < 0) {
    return result;
  }
  for (int run = 0; run < the_case.test_runs; ++run) {
    const bpf::ExecResult one = bpf.ProgTestRun(
        result.prog_fd, static_cast<uint32_t>(32 + 16 * run),
        iteration * 16 + static_cast<uint64_t>(run));
    result.exec_errs.push_back(one.err);
    ++result.exec_runs;
  }
  if (the_case.do_attach) {
    if (bpf.ProgAttach(result.prog_fd, the_case.attach_target) == 0) {
      for (bpf::TracepointId event : the_case.events) {
        bpf.FireEvent(event);
      }
      // Attached programs also run when the program itself re-executes.
      const bpf::ExecResult one = bpf.ProgTestRun(result.prog_fd, 64, iteration);
      result.exec_errs.push_back(one.err);
      ++result.exec_runs;
      bpf.DetachAll();
    }
  }
  if (the_case.do_xdp_install && the_case.prog.type == bpf::ProgType::kXdp) {
    if (bpf.XdpInstall(result.prog_fd) == 0) {
      const bpf::ExecResult first = bpf.XdpRun(64, iteration);
      const bpf::ExecResult second = bpf.XdpRun(96, iteration + 1);
      result.exec_errs.push_back(first.err);
      result.exec_errs.push_back(second.err);
      ++result.exec_runs;
    }
  }
  if (the_case.do_map_batch) {
    // Several batched lookups so the simulated bucket-lock contention tick
    // (every 3rd trylock) is reached.
    for (const auto& map : sub.kernel.maps().maps()) {
      if (map->def().type == bpf::MapType::kHash) {
        for (int round = 0; round < 4; ++round) {
          bpf.MapLookupBatch(map->id(), 16);
        }
      }
    }
  }
  return result;
}

namespace {

CaseOutcome ClassifyOutcome(bool panicked, int prog_fd, const std::vector<int>& errs) {
  if (panicked) {
    return CaseOutcome::kPanic;
  }
  if (prog_fd < 0) {
    return CaseOutcome::kRejected;
  }
  bool resource = false;
  bool timeout = false;
  bool fault = false;
  for (const int err : errs) {
    switch (-err) {
      case 0:
        break;
      case ENOMEM:
      case E2BIG:
      case ENOSPC:
      case EAGAIN:
        resource = true;
        break;
      case ELOOP:
      case ETIMEDOUT:
        timeout = true;
        break;
      default:
        fault = true;
    }
  }
  if (resource) {
    return CaseOutcome::kResourceExhausted;
  }
  if (timeout) {
    return CaseOutcome::kExecTimeout;
  }
  if (fault) {
    return CaseOutcome::kExecFault;
  }
  return CaseOutcome::kExecOk;
}

// JIT differential oracle (Indicator #5): execute the case's program once
// under the decoded interpreter and once under the JIT, each on a clean
// throwaway substrate, and compare the witnesses. The two engines implement
// one semantics, so ANY difference is a miscompile by construction. The
// signature keys on which witness field diverged (not the program), so one
// codegen bug dedups to one finding however many programs hit it — the same
// discipline the metamorphic oracle uses. Returns an empty vector when the
// witnesses agree or the JIT is unavailable (the jit leg would silently run
// decoded: nothing to compare).
std::vector<Finding> RunJitOracle(const FuzzCase& the_case, uint64_t iteration,
                                  const CampaignOptions& options) {
  std::vector<Finding> findings;
  if (!bpf::JitAvailable()) {
    return findings;
  }
  // Oracle executions must not feed coverage: corpus evolution (and with it
  // the campaign digest) has to be identical whether the oracle is on or off
  // for the base stream.
  bpf::ScopedCoverageSuppress suppress;

  CampaignOptions decoded_options = options;
  decoded_options.interp_engine = bpf::ExecEngine::kDecoded;
  CampaignOptions jit_options = options;
  jit_options.interp_engine = bpf::ExecEngine::kJit;
  const ExecWitness decoded = CollectWitness(the_case.prog, the_case, decoded_options);
  const ExecWitness jit = CollectWitness(the_case.prog, the_case, jit_options);

  const char* field = nullptr;
  std::string what;
  if (decoded.accepted != jit.accepted) {
    // Cannot happen today (verification precedes engine selection), but a
    // future load-time compile error surfacing as -errno would land here.
    field = "verdict";
    char buf[96];
    snprintf(buf, sizeof(buf), "decoded %s (errno %d), jit %s (errno %d)",
             decoded.accepted ? "accepted" : "rejected", -decoded.load_err,
             jit.accepted ? "accepted" : "rejected", -jit.load_err);
    what = buf;
  } else if (!decoded.SameExecution(jit)) {
    field = "execution";
    for (size_t i = 0; i < decoded.run_errs.size() && i < jit.run_errs.size(); ++i) {
      if (decoded.run_errs[i] != jit.run_errs[i] || decoded.run_r0[i] != jit.run_r0[i]) {
        char buf[128];
        snprintf(buf, sizeof(buf),
                 "run %zu: decoded err=%d r0=0x%llx, jit err=%d r0=0x%llx", i,
                 decoded.run_errs[i],
                 static_cast<unsigned long long>(decoded.run_r0[i]), jit.run_errs[i],
                 static_cast<unsigned long long>(jit.run_r0[i]));
        what = buf;
        break;
      }
    }
    if (what.empty()) {
      what = "run counts differ";
    }
  } else if (decoded.panicked != jit.panicked) {
    field = "panic";
    what = "panic state differs";
  } else if (decoded.report_kinds != jit.report_kinds) {
    field = "reports";
    char buf[96];
    snprintf(buf, sizeof(buf),
             "indicator kind sets differ (decoded %zu kinds, jit %zu kinds)",
             decoded.report_kinds.size(), jit.report_kinds.size());
    what = buf;
  }
  if (field == nullptr) {
    return findings;
  }

  Finding finding;
  finding.kind = bpf::ReportKind::kJitDivergence;
  finding.signature =
      std::string(bpf::ReportKindName(finding.kind)) + " in " + field;
  char buf[160];
  snprintf(buf, sizeof(buf), "prog fnv=0x%016llx: %s",
           static_cast<unsigned long long>(ProgramFnv(the_case.prog)), what.c_str());
  finding.details = buf;
  finding.indicator = 5;
  finding.iteration = iteration;
  findings.push_back(std::move(finding));
  return findings;
}

}  // namespace

CaseRunner::CaseResult CaseRunner::RunOne(const FuzzCase& the_case, uint64_t iteration) {
  Substrate& sub = EnsureSubstrate();
  CaseResult result;

  // Per-case fault schedule, seeded independently of the campaign RNG stream
  // (FaultSeed mixes the campaign seed with the iteration), so fault decisions
  // neither perturb generation nor drift across checkpoint/resume.
  std::unique_ptr<bpf::FaultInjector> injector;
  if (options_.fault.Active()) {
    injector = std::make_unique<bpf::FaultInjector>(
        options_.fault, bpf::FaultSeed(options_.seed, iteration));
    sub.kernel.set_fault_injector(injector.get());
  }
  if (verdict_shard_ != nullptr) {
    verdict_shard_->set_iteration(iteration);
  }
  if (decode_shard_ != nullptr) {
    decode_shard_->set_iteration(iteration);
  }
  if (jit_shard_ != nullptr) {
    jit_shard_->set_iteration(iteration);
  }

  const DriveResult drive = DriveCase(sub, the_case, iteration);
  sub.kernel.set_fault_injector(nullptr);

  result.prog_fd = drive.prog_fd;
  result.exec_runs = drive.exec_runs;
  result.exec_errs = drive.exec_errs;
  if (injector != nullptr) {
    result.faults_injected = injector->total_failures();
  }

  result.panicked = sub.kernel.reports().panicked();
  result.outcome = ClassifyOutcome(result.panicked, drive.prog_fd, drive.exec_errs);

  // Oracle: convert this case's reports into findings before the substrate is
  // rewound (reports live on the kernel and do not survive the reset).
  result.findings = ClassifyReports(sub.kernel.reports(), 0, iteration);
  if (injector != nullptr && !result.findings.empty()) {
    result.fault_log = injector->log();
  }

  // Indicator #4: metamorphic examination of accepted cases. The oracle runs
  // on its own throwaway substrates (never this one) with coverage
  // suppressed, so it cannot disturb the campaign stream; it only adds
  // counters, findings, and — on divergence — an escalated outcome.
  if (metamorph_ != nullptr && !result.panicked && result.prog_fd > 0) {
    const MetamorphOracle::Result mm = metamorph_->Examine(the_case, iteration);
    result.metamorph_bases = mm.bases_examined;
    result.metamorph_variants = mm.variants_executed;
    result.metamorph_verdict_divergences = mm.verdict_divergences;
    result.metamorph_witness_divergences = mm.witness_divergences;
    result.metamorph_sanitizer_divergences = mm.sanitizer_divergences;
    result.findings.insert(result.findings.end(), mm.findings.begin(),
                           mm.findings.end());
    if (mm.escalated != CaseOutcome::kUnclassified) {
      result.outcome = mm.escalated;
    }
  }

  // Indicator #5: JIT-vs-interpreter differential comparison of accepted
  // cases. Like the metamorphic oracle it runs on throwaway substrates with
  // coverage suppressed; a divergence is the highest-precedence outcome (a
  // miscompile trumps any other classification of the same case).
  if (options_.jit_oracle && !result.panicked && result.prog_fd > 0) {
    std::vector<Finding> jit_findings = RunJitOracle(the_case, iteration, options_);
    if (!jit_findings.empty()) {
      result.outcome = CaseOutcome::kJitDivergence;
      result.findings.insert(result.findings.end(),
                             std::make_move_iterator(jit_findings.begin()),
                             std::make_move_iterator(jit_findings.end()));
    }
  }

  // Panic containment: a panicked machine is dead — tear it down and let the
  // next case boot a replacement. Otherwise rewind (or discard, when substrate
  // reuse is off).
  if (result.panicked) {
    substrate_.reset();
  } else if (options_.reuse_substrate) {
    sub.bpf.ResetCaseState();
  } else {
    substrate_.reset();
  }
  return result;
}

bool CaseRunner::ReproduceOnce(const FuzzCase& the_case, uint64_t iteration,
                               const std::string& signature, const bpf::FaultLog* replay) {
  // Confirmation runs on a throwaway substrate with a local sanitizer, so
  // they cannot disturb the campaign's substrate or instrumentation stats.
  Substrate sub(options_);
  Sanitizer confirm_sanitizer;
  ConfigureSubstrate(sub, &confirm_sanitizer, /*campaign=*/false);
  bpf::FaultInjector injector =
      replay != nullptr ? bpf::FaultInjector::Replay(*replay)
                        : bpf::FaultInjector(bpf::FaultConfig{}, 0);
  if (replay != nullptr) {
    sub.kernel.set_fault_injector(&injector);
  }
  DriveCase(sub, the_case, iteration);
  sub.kernel.set_fault_injector(nullptr);
  for (const Finding& finding : ClassifyReports(sub.kernel.reports(), 0, iteration)) {
    if (finding.signature == signature) {
      return true;
    }
  }
  return false;
}

void CaseRunner::ConfirmFinding(Finding& finding, const FuzzCase& the_case,
                                uint64_t iteration, const bpf::FaultLog& fault_log) {
  const int k = options_.confirm_runs;
  if (k <= 0) {
    return;
  }
  // Coverage is process-global; confirmation re-executions must not feed the
  // campaign's corpus-growth or curve accounting. In a worker thread this
  // mutes the thread's sink; single-threaded it disables the global recorder.
  bpf::ScopedCoverageSuppress suppress;

  if (finding.indicator == 5) {
    // JIT-divergence findings are fault-free by construction (the oracle
    // drives clean substrates), so confirmation is re-comparison:
    // deterministic iff every re-run reproduces the divergence signature.
    int hits = 0;
    for (int run = 0; run < k; ++run) {
      for (const Finding& repro : RunJitOracle(the_case, iteration, options_)) {
        if (repro.signature == finding.signature) {
          ++hits;
          break;
        }
      }
    }
    finding.confirmation =
        hits == k ? Confirmation::kDeterministic : Confirmation::kFlaky;
    finding.confirm_hits = hits;
    finding.confirm_runs = k;
    return;
  }

  if (finding.indicator == 4) {
    // Metamorphic findings are fault-free by construction (the oracle drives
    // clean substrates), so confirmation is re-examination: deterministic iff
    // every re-run reproduces the divergence signature.
    MetamorphOracle oracle(options_);
    int hits = 0;
    for (int run = 0; run < k; ++run) {
      const MetamorphOracle::Result mm = oracle.Examine(the_case, iteration);
      for (const Finding& repro : mm.findings) {
        if (repro.signature == finding.signature) {
          ++hits;
          break;
        }
      }
    }
    finding.confirmation =
        hits == k ? Confirmation::kDeterministic : Confirmation::kFlaky;
    finding.confirm_hits = hits;
    finding.confirm_runs = k;
    return;
  }

  int clean_hits = 0;
  for (int run = 0; run < k; ++run) {
    clean_hits += ReproduceOnce(the_case, iteration, finding.signature, nullptr) ? 1 : 0;
  }
  if (clean_hits == k) {
    finding.confirmation = Confirmation::kDeterministic;
    finding.confirm_hits = clean_hits;
    finding.confirm_runs = k;
  } else if (!fault_log.empty()) {
    // Not cleanly reproducible: replay the recorded fault schedule.
    int replay_hits = 0;
    for (int run = 0; run < k; ++run) {
      replay_hits += ReproduceOnce(the_case, iteration, finding.signature, &fault_log) ? 1 : 0;
    }
    finding.confirmation = replay_hits == k ? Confirmation::kFaultDependent
                                            : Confirmation::kFlaky;
    finding.confirm_hits = clean_hits + replay_hits;
    finding.confirm_runs = 2 * k;
  } else {
    finding.confirmation = Confirmation::kFlaky;
    finding.confirm_hits = clean_hits;
    finding.confirm_runs = k;
  }
}

Fuzzer::Fuzzer(Generator& generator, CampaignOptions options)
    : generator_(generator), options_(std::move(options)) {}

Fuzzer::~Fuzzer() = default;

void Fuzzer::RunCase(FuzzCase& the_case, CampaignStats& stats, uint64_t iteration) {
  // Instruction-mix statistics over the as-generated program.
  AccumulateInsnMix(the_case, stats);

  const CaseRunner::CaseResult result = runner_->RunOne(the_case, iteration);
  AccumulateCaseCounters(result, stats);

  for (Finding finding : result.findings) {
    if (stats.finding_signatures.insert(finding.signature).second) {
      if (options_.confirm_runs > 0) {
        runner_->ConfirmFinding(finding, the_case, iteration, result.fault_log);
      }
      stats.findings.push_back(std::move(finding));
    }
  }
}

CampaignStats Fuzzer::Run() {
  CampaignStats stats;
  stats.tool = generator_.name();
  stats.options = options_;
  corpus_.clear();
  runner_ = std::make_unique<CaseRunner>(options_);

  // The serial engine can use the verdict cache in immediate mode: each
  // iteration sees every earlier iteration's verdicts, and since a cache hit
  // is digest-invisible this preserves the legacy campaign bit-for-bit.
  bpf::VerdictCache cache;
  bpf::VerdictCacheShard shard(cache, /*immediate=*/true);
  if (options_.verdict_cache) {
    runner_->set_verdict_shard(&shard);
  }

  // Decode cache, same immediate-mode reasoning: a decode-cache hit returns
  // the identical DecodedProgram the miss path would have produced (the
  // digest pins the verifier-rewritten program bytes), so reuse is invisible.
  bpf::DecodeCache dcache;
  bpf::DecodeCacheShard dshard(dcache, /*immediate=*/true);
  if (options_.interp_engine != bpf::ExecEngine::kLegacy) {
    runner_->set_decode_shard(&dshard);
  }

  // JIT code cache, same discipline again: a hit returns the identical native
  // blob a fresh compile of the digest-pinned program would produce.
  bpf::JitCache jcache;
  bpf::JitCacheShard jshard(jcache, /*immediate=*/true);
  if (options_.interp_engine == bpf::ExecEngine::kJit && bpf::JitAvailable()) {
    runner_->set_jit_shard(&jshard);
  }

  bpf::Rng rng(options_.seed);
  uint64_t start_iteration = 1;
  const std::string fingerprint = FingerprintOptions(options_, stats.tool);

  if (!options_.resume_path.empty()) {
    CampaignCheckpoint cp;
    std::string error;
    if (LoadCheckpoint(options_.resume_path, &cp, &error) != 0) {
      stats.resume_error = error.empty() ? "checkpoint load failed" : error;
      return stats;
    }
    // Validate the full fingerprint line (engine, then options hash) before
    // touching any RNG/stats/corpus/coverage state, and report which field
    // mismatched — a rejected resume must leave the campaign untouched.
    const std::string mismatch =
        ValidateCheckpointCompat(cp, options_, stats.tool, kEngineSerial);
    if (!mismatch.empty()) {
      stats.resume_error = mismatch;
      return stats;
    }
    stats = std::move(cp.stats);
    stats.options = options_;
    stats.tool = generator_.name();
    corpus_ = std::move(cp.corpus);
    rng.RestoreState(cp.rng_state);
    Coverage::Get().ResetHits();
    Coverage::Get().RestoreHitKeys(cp.coverage_keys);
    runner_->sanitizer().RestoreStats(stats.sanitizer);
    start_iteration = cp.next_iteration;
    stats.resumed_from = start_iteration;
  } else if (options_.reset_coverage) {
    Coverage::Get().ResetHits();
  }

  // Conformance prologue before iteration 1. Resumed campaigns skip it: its
  // findings and corpus seeds are already inside the checkpoint (and the
  // fingerprint pins the directory, so the corpus cannot silently change).
  if (options_.resume_path.empty() && !options_.conformance_dir.empty() &&
      !RunConformancePrologue(options_, stats, &corpus_)) {
    runner_.reset();
    return stats;
  }

  // Evictions restored from a checkpoint happened in a previous process; this
  // process's cache starts empty, so the running total is base + local.
  const uint64_t base_decode_evictions = stats.decode_cache_evictions;
  const uint64_t base_jit_evictions = stats.jit_cache_evictions;

  const uint64_t sample_every =
      options_.coverage_points > 0
          ? std::max<uint64_t>(1, options_.iterations / options_.coverage_points)
          : 0;
  const uint64_t last_iteration =
      options_.stop_after != 0 ? std::min(options_.stop_after, options_.iterations)
                               : options_.iterations;

  const auto save_checkpoint = [&](uint64_t next_iteration) {
    CampaignCheckpoint cp;
    cp.next_iteration = next_iteration;
    cp.fingerprint = fingerprint;
    cp.engine = kEngineSerial;
    cp.epoch_len = 0;  // no epochs: the RNG stream position is the state
    cp.rng_state = rng.SaveState();
    cp.corpus = corpus_;
    cp.stats = stats;
    cp.stats.sanitizer = runner_->sanitizer().stats();
    cp.stats.final_coverage = Coverage::Get().hit_count();
    cp.coverage_keys = Coverage::Get().SerializeHitKeys();
    SaveCheckpoint(options_.checkpoint_path, cp);
  };

  for (uint64_t i = start_iteration; i <= last_iteration; ++i) {
    Coverage::Get().MarkRun();

    FuzzCase the_case;
    if (options_.coverage_feedback && !corpus_.empty() && rng.Chance(0.4)) {
      the_case = rng.Pick(corpus_);
      generator_.Mutate(rng, the_case);
    } else {
      the_case = generator_.Generate(rng);
    }

    RunCase(the_case, stats, i);
    stats.verdict_cache_hits += shard.TakeHits();
    stats.verdict_cache_misses += shard.TakeMisses();
    stats.canonical_cache_hits += shard.TakeCanonicalHits();
    stats.canonical_cache_misses += shard.TakeCanonicalMisses();
    stats.decode_cache_hits += dshard.TakeHits();
    stats.decode_cache_misses += dshard.TakeMisses();
    stats.decode_cache_evictions = base_decode_evictions + dcache.evictions();
    stats.jit_cache_hits += jshard.TakeHits();
    stats.jit_cache_misses += jshard.TakeMisses();
    stats.jit_cache_evictions = base_jit_evictions + jcache.evictions();

    if (options_.coverage_feedback && Coverage::Get().NewSinceMark() > 0 &&
        corpus_.size() < 512) {
      corpus_.push_back(the_case);
    }
    if (sample_every != 0 && i % sample_every == 0) {
      stats.curve.push_back(CoveragePoint{i, Coverage::Get().hit_count()});
    }
    ++stats.iterations;

    if (!options_.checkpoint_path.empty() && options_.checkpoint_every != 0 &&
        i % options_.checkpoint_every == 0 && i != last_iteration) {
      save_checkpoint(i + 1);
    }
  }

  stats.final_coverage = Coverage::Get().hit_count();
  stats.sanitizer = runner_->sanitizer().stats();
  if (!options_.checkpoint_path.empty()) {
    save_checkpoint(last_iteration + 1);
  }
  runner_.reset();
  return stats;
}

bool RunConformancePrologue(const CampaignOptions& options, CampaignStats& stats,
                            std::vector<FuzzCase>* corpus) {
  std::vector<conf::ConformanceCase> cases;
  std::string error;
  if (!conf::LoadCorpusDir(options.conformance_dir, &cases, &error)) {
    stats.resume_error = "conformance: " + error;
    return false;
  }

  // The prologue is not part of the coverage-guided loop: whatever kernel
  // paths the corpus lights up must not seed the campaign's hit set, or a
  // --conformance campaign would generate differently from a bare one.
  bpf::ScopedCoverageSuppress suppress;

  conf::RunnerConfig config;
  config.version = options.version;
  config.bugs = options.bugs;
  config.arena_size = options.arena_size;
  config.sanitize = options.sanitize;
  config.limits = options.limits;
  const conf::ConformanceRunner runner(config);

  std::vector<conf::CaseResult> results;
  results.reserve(cases.size());
  const conf::ConformanceRunner::Summary summary = runner.RunCorpus(cases, &results);
  stats.conf_cases += summary.cases;
  stats.conf_passed += summary.passed;
  stats.conf_mismatches += summary.mismatches;
  stats.conf_rejects += summary.rejects;

  for (size_t i = 0; i < cases.size(); ++i) {
    const conf::ConformanceCase& c = cases[i];
    const conf::CaseResult& result = results[i];

    const bool mismatch = result.verdict == conf::CaseVerdict::kMismatch;
    const bool verdict_gap = result.verdict == conf::CaseVerdict::kReject ||
                             result.verdict == conf::CaseVerdict::kUnexpectedAccept;
    if (mismatch || verdict_gap) {
      Finding finding;
      finding.kind = mismatch ? bpf::ReportKind::kConformanceMismatch
                              : bpf::ReportKind::kConformanceReject;
      finding.signature = std::string(bpf::ReportKindName(finding.kind)) + " in " + c.name;
      finding.details =
          std::string(CaseOutcomeName(mismatch ? CaseOutcome::kConformanceMismatch
                                               : CaseOutcome::kConformanceReject)) +
          " (" + conf::CaseVerdictName(result.verdict) + "): " + result.detail;
      finding.indicator = 6;
      finding.iteration = 0;  // pre-campaign
      if (stats.finding_signatures.insert(finding.signature).second) {
        // Conformance cases are replayable by construction; confirmation is a
        // straight re-run of the case through the same runner.
        if (options.confirm_runs > 0) {
          int hits = 0;
          for (int run = 0; run < options.confirm_runs; ++run) {
            if (runner.RunCase(c).verdict == result.verdict) {
              ++hits;
            }
          }
          finding.confirm_runs = options.confirm_runs;
          finding.confirm_hits = hits;
          finding.confirmation = hits == options.confirm_runs
                                     ? Confirmation::kDeterministic
                                     : Confirmation::kFlaky;
        }
        stats.findings.push_back(std::move(finding));
      }
    }

    // Accepted-and-executed cases become mutation seeds: authored programs
    // cover instruction shapes the structured generator rarely emits.
    if (corpus != nullptr &&
        (result.verdict == conf::CaseVerdict::kPass || mismatch) &&
        corpus->size() < 512) {
      FuzzCase seed;
      seed.prog = conf::ToProgram(c);
      seed.test_runs = 2;
      corpus->push_back(std::move(seed));
      ++stats.conf_seeded;
    }
  }
  return true;
}

}  // namespace bvf
