#include "src/verifier/bug_registry.h"

namespace bpf {

BugConfig BugConfig::All() {
  BugConfig bugs;
  bugs.bug1_nullness_propagation = true;
  bugs.bug2_task_struct_bounds = true;
  bugs.bug3_kfunc_backtrack = true;
  bugs.bug4_trace_printk_recursion = true;
  bugs.bug5_contention_begin = true;
  bugs.bug6_send_signal = true;
  bugs.bug7_dispatcher_sync = true;
  bugs.bug8_kmemdup = true;
  bugs.bug9_bucket_iteration = true;
  bugs.bug10_irq_work = true;
  bugs.bug11_xdp_offload = true;
  bugs.bug12_jmp32_signed_refine = true;
  bugs.bug13_ld_imm64_pessimize = true;
  bugs.cve_2022_23222 = true;
  return bugs;
}

BugConfig BugConfig::ForVersion(KernelVersion version) {
  BugConfig bugs;
  switch (version) {
    case KernelVersion::kV5_15:
      // Pre-5.16 era: the CVE plus the long-standing bugs (#4 existed 4 years).
      bugs.cve_2022_23222 = true;
      bugs.bug4_trace_printk_recursion = true;
      bugs.bug6_send_signal = true;
      bugs.bug9_bucket_iteration = true;
      break;
    case KernelVersion::kV6_1:
      bugs.bug2_task_struct_bounds = true;
      bugs.bug4_trace_printk_recursion = true;
      bugs.bug5_contention_begin = true;
      bugs.bug6_send_signal = true;
      bugs.bug8_kmemdup = true;
      bugs.bug9_bucket_iteration = true;
      bugs.bug10_irq_work = true;
      break;
    case KernelVersion::kBpfNext:
      bugs = All();
      bugs.cve_2022_23222 = false;  // fixed long before bpf-next
      break;
  }
  return bugs;
}

int BugConfig::Count() const { return static_cast<int>(EnabledNames().size()); }

std::vector<std::string> BugConfig::EnabledNames() const {
  std::vector<std::string> names;
  if (bug1_nullness_propagation) names.push_back("bug1_nullness_propagation");
  if (bug2_task_struct_bounds) names.push_back("bug2_task_struct_bounds");
  if (bug3_kfunc_backtrack) names.push_back("bug3_kfunc_backtrack");
  if (bug4_trace_printk_recursion) names.push_back("bug4_trace_printk_recursion");
  if (bug5_contention_begin) names.push_back("bug5_contention_begin");
  if (bug6_send_signal) names.push_back("bug6_send_signal");
  if (bug7_dispatcher_sync) names.push_back("bug7_dispatcher_sync");
  if (bug8_kmemdup) names.push_back("bug8_kmemdup");
  if (bug9_bucket_iteration) names.push_back("bug9_bucket_iteration");
  if (bug10_irq_work) names.push_back("bug10_irq_work");
  if (bug11_xdp_offload) names.push_back("bug11_xdp_offload");
  if (bug12_jmp32_signed_refine) names.push_back("bug12_jmp32_signed_refine");
  if (bug13_ld_imm64_pessimize) names.push_back("bug13_ld_imm64_pessimize");
  if (cve_2022_23222) names.push_back("cve_2022_23222");
  return names;
}

}  // namespace bpf
