// Memory access checking (check_mem_access and friends): stack slots, map
// values, context fields, BTF-typed kernel structures, packet data, and
// helper-provided memory regions. Carries injectable bug #2 (task_struct
// bounds validated against the wrong object size).

#include <algorithm>
#include <cerrno>

#include "src/kernel/coverage.h"
#include "src/verifier/checker.h"

namespace bpf {

int Checker::CheckMemAccess(VerifierState& state, const Insn& insn, int idx, int ptr_regno,
                            int value_regno, bool is_store, bool is_atomic) {
  if (int err = CheckRegRead(state, ptr_regno, idx); err != 0) {
    return err;
  }
  if (is_store && value_regno >= 0) {
    if (int err = CheckRegRead(state, value_regno, idx); err != 0) {
      return err;
    }
  }
  if (!is_store) {
    if (int err = CheckRegWrite(state, value_regno, idx); err != 0) {
      return err;
    }
  }

  const RegState ptr = Reg(state, ptr_regno);  // copy: value_regno may alias
  const int size = insn.AccessBytes();
  BVF_COV_IDX(12, static_cast<int>(ptr.type));
  BVF_COV_IDX(8, (size == 1 ? 0 : size == 2 ? 1 : size == 4 ? 2 : 3) + (is_store ? 4 : 0));

  // Record aux info for the sanitation pass. BTF wins on type conflicts
  // across paths so that exception-handled BTF loads are never misreported.
  InsnAux& aux = aux_[idx];
  if (aux.mem_ptr_type == RegType::kNotInit || ptr.type == RegType::kPtrToBtfId) {
    aux.mem_ptr_type = ptr.type;
  }
  if (ptr_regno == kR10) {
    aux.fp_const_access = true;
  }

  if (is_atomic) {
    BVF_COV();
    if (ptr.type != RegType::kPtrToStack && ptr.type != RegType::kPtrToMapValue &&
        ptr.type != RegType::kPtrToMem) {
      BVF_COV();
      Log("insn %d: atomic op on %s prohibited", idx, RegTypeName(ptr.type));
      return -EACCES;
    }
  }

  switch (ptr.type) {
    case RegType::kPtrToStack:
      BVF_COV();
      if (int err = CheckStackAccess(state, insn, idx, ptr, value_regno, is_store, is_atomic);
          err != 0) {
        return err;
      }
      break;
    case RegType::kPtrToMapValue: {
      BVF_COV();
      if (int err = CheckMapValueAccess(ptr, insn.off, size, idx); err != 0) {
        return err;
      }
      if (!is_store && value_regno >= 0) {
        Reg(state, value_regno).MarkUnknown();
      }
      break;
    }
    case RegType::kPtrToCtx:
      BVF_COV();
      if (int err = CheckCtxAccess(state, ptr, ptr.off + insn.off, size, is_store,
                                   value_regno, idx);
          err != 0) {
        return err;
      }
      break;
    case RegType::kPtrToBtfId:
      BVF_COV();
      if (int err = CheckBtfAccess(state, ptr, ptr.off + insn.off, size, is_store,
                                   value_regno, idx);
          err != 0) {
        return err;
      }
      break;
    case RegType::kPtrToPacket: {
      BVF_COV();
      if (is_store && prog_.type != ProgType::kXdp) {
        BVF_COV();
        Log("insn %d: packet data is read-only for this program type", idx);
        return -EACCES;
      }
      if (int err = CheckPacketAccess(ptr, insn.off, size, idx); err != 0) {
        return err;
      }
      if (!is_store && value_regno >= 0) {
        Reg(state, value_regno).MarkUnknown();
      }
      break;
    }
    case RegType::kPtrToMem:
      BVF_COV();
      if (int err = CheckMemRegionAccess(ptr, insn.off, size, idx); err != 0) {
        return err;
      }
      if (!is_store && value_regno >= 0) {
        Reg(state, value_regno).MarkUnknown();
      }
      break;
    case RegType::kPtrToMapValueOrNull:
    case RegType::kPtrToMemOrNull:
      BVF_COV();
      Log("insn %d: R%d invalid mem access '%s' (null check required)", idx, ptr_regno,
          RegTypeName(ptr.type));
      return -EACCES;
    case RegType::kPtrToPacketEnd:
    case RegType::kConstPtrToMap:
      BVF_COV();
      Log("insn %d: cannot dereference %s", idx, RegTypeName(ptr.type));
      return -EACCES;
    case RegType::kScalar:
    default:
      BVF_COV();
      Log("insn %d: R%d invalid mem access 'scalar'", idx, ptr_regno);
      return -EACCES;
  }

  // Atomic result registers: fetch variants write the old value to src;
  // cmpxchg writes it to R0.
  if (is_atomic) {
    if (insn.imm == kAtomicCmpXchg) {
      BVF_COV();
      Reg(state, kR0).MarkUnknown();
    } else if ((insn.imm & kAtomicFetch) != 0 || insn.imm == kAtomicXchg) {
      BVF_COV();
      Reg(state, insn.src).MarkUnknown();
    }
  }
  return 0;
}

int Checker::CheckStackAccess(VerifierState& state, const Insn& insn, int idx,
                              const RegState& ptr, int value_regno, bool is_store,
                              bool is_atomic) {
  const int size = insn.AccessBytes();
  if (!ptr.var_off.IsConst()) {
    BVF_COV();
    Log("insn %d: variable offset stack access prohibited", idx);
    return -EACCES;
  }
  const int64_t total_off =
      static_cast<int64_t>(ptr.off) + insn.off + static_cast<int64_t>(ptr.var_off.value);
  if (total_off >= 0 || total_off < -kStackSize || total_off + size > 0) {
    BVF_COV();
    Log("insn %d: invalid stack access off=%lld size=%d", idx,
        static_cast<long long>(total_off), size);
    return -EACCES;
  }

  FuncState& frame = state.cur();
  // Slot index: fp-8 -> slot 0, fp-16 -> slot 1, ...
  const int first_slot = static_cast<int>((-total_off - size) / 8);
  const int last_slot = static_cast<int>((-total_off - 1) / 8);

  if (is_store) {
    const bool aligned_full = size == 8 && (total_off % 8) == 0;
    if (is_atomic) {
      // A read-modify-write leaves the slot holding a mix of the old value
      // and the operand, never a spilled copy of the register.
      BVF_COV();
      for (int slot = first_slot; slot <= last_slot; ++slot) {
        if (frame.slot_type(slot) == SlotType::kInvalid) {
          BVF_COV();
          Log("insn %d: atomic op on uninitialized stack off=%lld", idx,
              static_cast<long long>(total_off));
          return -EACCES;
        }
        frame.SetSlot(slot, SlotType::kMisc);
      }
      return 0;
    }
    if (value_regno >= 0 && IsPointerType(Reg(state, value_regno).type)) {
      if (!aligned_full) {
        BVF_COV();
        Log("insn %d: partial pointer spill to stack prohibited", idx);
        return -EACCES;
      }
      BVF_COV();
      frame.SetSpill(first_slot, Reg(state, value_regno));
      return 0;
    }
    if (aligned_full && value_regno >= 0) {
      // Scalar spill: preserves bounds across fill.
      BVF_COV();
      frame.SetSpill(first_slot, Reg(state, value_regno));
      return 0;
    }
    const bool zero_imm_full = value_regno < 0 && insn.imm == 0 && aligned_full;
    for (int slot = first_slot; slot <= last_slot; ++slot) {
      BVF_COV();
      frame.SetSlot(slot, zero_imm_full ? SlotType::kZero : SlotType::kMisc);
    }
    return 0;
  }

  // Load.
  const bool aligned_full = size == 8 && (total_off % 8) == 0;
  if (aligned_full && frame.slot_type(first_slot) == SlotType::kSpill) {
    BVF_COV();
    Reg(state, value_regno) = frame.SpillData(first_slot);
    return 0;
  }
  for (int slot = first_slot; slot <= last_slot; ++slot) {
    if (frame.slot_type(slot) == SlotType::kInvalid) {
      BVF_COV();
      Log("insn %d: invalid read from uninitialized stack off=%lld", idx,
          static_cast<long long>(total_off));
      return -EACCES;
    }
    if (frame.slot_type(slot) == SlotType::kSpill &&
        IsPointerType(frame.SpillData(slot).type) && !aligned_full) {
      BVF_COV();
      Log("insn %d: partial read of spilled pointer prohibited", idx);
      return -EACCES;
    }
  }
  if (aligned_full && frame.slot_type(first_slot) == SlotType::kZero) {
    BVF_COV();
    Reg(state, value_regno).MarkKnown(0);
  } else {
    BVF_COV();
    Reg(state, value_regno).MarkUnknown();
  }
  return 0;
}

int Checker::CheckMapValueAccess(const RegState& ptr, int off, int size, int idx) {
  const Map* map = FindMap(ptr.map_id);
  if (map == nullptr) {
    Log("insn %d: map %d disappeared", idx, ptr.map_id);
    return -EFAULT;
  }
  const int64_t lo = static_cast<int64_t>(ptr.off) + off + ptr.smin;
  if (lo < 0) {
    BVF_COV();
    Log("insn %d: map value access below start: min off %lld", idx,
        static_cast<long long>(lo));
    return -EACCES;
  }
  if (ptr.umax > static_cast<uint64_t>(map->value_size())) {
    BVF_COV();
    Log("insn %d: unbounded map value offset (umax=%llu)", idx,
        static_cast<unsigned long long>(ptr.umax));
    return -EACCES;
  }
  const int64_t hi =
      static_cast<int64_t>(ptr.off) + off + static_cast<int64_t>(ptr.umax) + size;
  if (hi > static_cast<int64_t>(map->value_size())) {
    BVF_COV();
    Log("insn %d: map value access out of bounds: max off %lld > value_size %u", idx,
        static_cast<long long>(hi), map->value_size());
    return -EACCES;
  }
  BVF_COV();
  return 0;
}

int Checker::CheckCtxAccess(VerifierState& state, const RegState& ptr, int off, int size,
                            bool is_store, int value_regno, int idx) {
  const CtxDescriptor& desc = CtxDescriptorFor(prog_.type);
  if (is_store && value_regno < 0) {
    BVF_COV();
    Log("insn %d: BPF_ST to ctx is not allowed", idx);
    return -EACCES;
  }
  if (off < 0 || off + size > desc.size) {
    BVF_COV();
    Log("insn %d: ctx access off=%d size=%d out of bounds", idx, off, size);
    return -EACCES;
  }
  if (off % size != 0) {
    BVF_COV();
    Log("insn %d: misaligned ctx access off=%d size=%d", idx, off, size);
    return -EACCES;
  }
  const CtxField* field = desc.FieldAt(off, size);
  if (field == nullptr) {
    BVF_COV();
    Log("insn %d: invalid ctx field at off=%d", idx, off);
    return -EACCES;
  }
  BVF_COV_IDX(96, static_cast<int>(prog_.type) * 24 +
                      static_cast<int>(field - desc.fields.data()));
  if (is_store) {
    if (!field->writable) {
      BVF_COV();
      Log("insn %d: ctx field '%s' is read only", idx, field->name);
      return -EACCES;
    }
    if (IsPointerType(Reg(state, value_regno).type)) {
      BVF_COV();
      Log("insn %d: storing pointer into ctx prohibited", idx);
      return -EACCES;
    }
    BVF_COV();
    return 0;
  }
  // Load: packet fields become packet pointers; everything else is scalar.
  if (field->special == CtxField::Special::kPktData) {
    if (off != field->off || size != field->size) {
      BVF_COV();
      Log("insn %d: partial load of ctx field '%s'", idx, field->name);
      return -EACCES;
    }
    BVF_COV();
    RegState& dst = Reg(state, value_regno);
    dst = RegState::Pointer(RegType::kPtrToPacket);
    dst.id = NextId();
    return 0;
  }
  if (field->special == CtxField::Special::kPktEnd) {
    if (off != field->off || size != field->size) {
      BVF_COV();
      Log("insn %d: partial load of ctx field '%s'", idx, field->name);
      return -EACCES;
    }
    BVF_COV();
    Reg(state, value_regno) = RegState::Pointer(RegType::kPtrToPacketEnd);
    return 0;
  }
  BVF_COV();
  Reg(state, value_regno).MarkUnknown();
  return 0;
}

int Checker::CheckBtfAccess(VerifierState& state, const RegState& ptr, int off, int size,
                            bool is_store, int value_regno, int idx) {
  if (is_store) {
    BVF_COV();
    Log("insn %d: writing through PTR_TO_BTF_ID prohibited", idx);
    return -EACCES;
  }
  const BtfStruct* btf_struct = env_.btf != nullptr ? env_.btf->Find(ptr.btf_id) : nullptr;
  if (btf_struct == nullptr) {
    Log("insn %d: unknown BTF struct %d", idx, ptr.btf_id);
    return -EFAULT;
  }
  if (off < 0) {
    BVF_COV();
    Log("insn %d: negative BTF access off=%d", idx, off);
    return -EACCES;
  }
  // Bug #2: the access bound for task_struct is validated against a full page
  // instead of the object size, letting reads run past the allocation.
  uint32_t bound = btf_struct->size;
  if (env_.bugs.bug2_task_struct_bounds && ptr.btf_id == kBtfTaskStruct) {
    BVF_COV();
    bound = 4096;
  }
  if (static_cast<uint32_t>(off) + size > bound) {
    BVF_COV();
    Log("insn %d: BTF access beyond struct %s (off=%d size=%d)", idx,
        btf_struct->name.c_str(), off, size);
    return -EACCES;
  }
  BVF_COV_IDX(8, ptr.btf_id);
  if (value_regno < 0) {
    return 0;
  }
  const BtfField* field = btf_struct->FieldAt(off, size);
  RegState& dst = Reg(state, value_regno);
  if (field != nullptr && field->points_to != 0 && size == 8 &&
      static_cast<uint32_t>(off) == field->offset) {
    BVF_COV();
    dst = RegState::Pointer(RegType::kPtrToBtfId);
    dst.btf_id = field->points_to;
    return 0;
  }
  BVF_COV();
  dst.MarkUnknown();
  return 0;
}

int Checker::CheckPacketAccess(const RegState& ptr, int off, int size, int idx) {
  if (ptr.pkt_range == 0) {
    BVF_COV();
    Log("insn %d: packet access without bounds check (compare against data_end first)", idx);
    return -EACCES;
  }
  const int64_t lo = static_cast<int64_t>(ptr.off) + off + ptr.smin;
  const int64_t hi =
      static_cast<int64_t>(ptr.off) + off + static_cast<int64_t>(ptr.umax) + size;
  if (lo < 0 || ptr.umax > 0xffff || hi > static_cast<int64_t>(ptr.pkt_range)) {
    BVF_COV();
    Log("insn %d: packet access out of verified range [%lld, %lld) > %u", idx,
        static_cast<long long>(lo), static_cast<long long>(hi), ptr.pkt_range);
    return -EACCES;
  }
  BVF_COV();
  return 0;
}

int Checker::CheckMemRegionAccess(const RegState& ptr, int off, int size, int idx) {
  const int64_t lo = static_cast<int64_t>(ptr.off) + off + ptr.smin;
  const int64_t hi =
      static_cast<int64_t>(ptr.off) + off + static_cast<int64_t>(ptr.umax) + size;
  if (lo < 0 || ptr.umax > ptr.mem_size ||
      hi > static_cast<int64_t>(ptr.mem_size)) {
    BVF_COV();
    Log("insn %d: mem region access out of bounds [%lld, %lld) size=%u", idx,
        static_cast<long long>(lo), static_cast<long long>(hi), ptr.mem_size);
    return -EACCES;
  }
  BVF_COV();
  return 0;
}

// Validates that |size| bytes at the memory argument register are accessible
// (helper argument checking). Also initializes touched stack slots for write
// arguments, as the kernel does for ARG_PTR_TO_UNINIT_MEM.
int Checker::CheckHelperMemArg(VerifierState& state, int regno, int size, bool is_store,
                               const char* what, int idx) {
  const RegState& ptr = Reg(state, regno);
  if (size <= 0) {
    BVF_COV();
    Log("insn %d: invalid zero-sized %s argument", idx, what);
    return -EACCES;
  }
  switch (ptr.type) {
    case RegType::kPtrToStack: {
      BVF_COV();
      if (!ptr.var_off.IsConst()) {
        Log("insn %d: variable stack offset in %s argument", idx, what);
        return -EACCES;
      }
      const int64_t total_off = static_cast<int64_t>(ptr.off) + ptr.var_off.value;
      if (total_off >= 0 || total_off < -kStackSize || total_off + size > 0) {
        BVF_COV();
        Log("insn %d: %s argument stack range [%lld, +%d) out of bounds", idx, what,
            static_cast<long long>(total_off), size);
        return -EACCES;
      }
      FuncState& frame = state.cur();
      const int first_slot = static_cast<int>((-total_off - size) / 8);
      const int last_slot = static_cast<int>((-total_off - 1) / 8);
      for (int slot = first_slot; slot <= last_slot; ++slot) {
        if (is_store) {
          // Type-only downgrade: any stale spill payload stays behind and
          // remains part of state equality (historical behaviour the prune
          // and loop-detection digests depend on).
          frame.SetSlotKeepPayload(slot, SlotType::kMisc);
        } else if (frame.slot_type(slot) == SlotType::kInvalid) {
          BVF_COV();
          Log("insn %d: %s argument reads uninitialized stack", idx, what);
          return -EACCES;
        }
      }
      return 0;
    }
    case RegType::kPtrToMapValue:
      BVF_COV();
      return CheckMapValueAccess(ptr, 0, size, idx);
    case RegType::kPtrToMem:
      BVF_COV();
      return CheckMemRegionAccess(ptr, 0, size, idx);
    case RegType::kPtrToPacket:
      BVF_COV();
      return CheckPacketAccess(ptr, 0, size, idx);
    default:
      BVF_COV();
      Log("insn %d: R%d type %s invalid for %s argument", idx, regno, RegTypeName(ptr.type),
          what);
      return -EACCES;
  }
}

}  // namespace bpf
