// Call checking: helper contracts (check_helper_call), kfunc contracts with
// acquire/release reference tracking (carrying injectable bug #3), and
// bpf-to-bpf pseudo calls with inline frame walking.

#include <cerrno>

#include "src/kernel/coverage.h"
#include "src/verifier/checker.h"

namespace bpf {

int Checker::CheckCallArgs(VerifierState& state, const ArgType* args, const char* name,
                           int idx, const Map** map_out) {
  const Map* map = nullptr;
  int pending_mem_reg = -1;
  bool pending_mem_write = false;

  for (int i = 0; i < 5; ++i) {
    const int regno = kR1 + i;
    switch (args[i]) {
      case ArgType::kNone:
        continue;
      case ArgType::kAnything:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        break;
      case ArgType::kScalar:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        if (Reg(state, regno).type != RegType::kScalar) {
          BVF_COV();
          Log("insn %d: %s arg%d expects scalar, got %s", idx, name, i + 1,
              RegTypeName(Reg(state, regno).type));
          return -EACCES;
        }
        break;
      case ArgType::kConstMapPtr:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        if (Reg(state, regno).type != RegType::kConstPtrToMap) {
          BVF_COV();
          Log("insn %d: %s arg%d expects map pointer, got %s", idx, name, i + 1,
              RegTypeName(Reg(state, regno).type));
          return -EACCES;
        }
        map = FindMap(Reg(state, regno).map_id);
        if (map != nullptr) {
          BVF_COV_IDX(4, static_cast<int>(map->def().type));
        }
        if (map == nullptr) {
          Log("insn %d: %s arg%d references vanished map", idx, name, i + 1);
          return -EFAULT;
        }
        break;
      case ArgType::kPtrToMapKey:
        BVF_COV();
        if (map == nullptr) {
          Log("insn %d: %s arg%d key without preceding map arg", idx, name, i + 1);
          return -EACCES;
        }
        if (int err = CheckHelperMemArg(state, regno, static_cast<int>(map->key_size()),
                                        /*is_store=*/false, "map key", idx);
            err != 0) {
          return err;
        }
        break;
      case ArgType::kPtrToMapValue:
        BVF_COV();
        if (map == nullptr) {
          Log("insn %d: %s arg%d value without preceding map arg", idx, name, i + 1);
          return -EACCES;
        }
        if (int err = CheckHelperMemArg(state, regno, static_cast<int>(map->value_size()),
                                        /*is_store=*/false, "map value", idx);
            err != 0) {
          return err;
        }
        break;
      case ArgType::kPtrToMemRo:
      case ArgType::kPtrToMemWo:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        pending_mem_reg = regno;
        pending_mem_write = args[i] == ArgType::kPtrToMemWo;
        break;
      case ArgType::kConstSize: {
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        const RegState& size_reg = Reg(state, regno);
        if (size_reg.type != RegType::kScalar) {
          BVF_COV();
          Log("insn %d: %s arg%d size must be scalar", idx, name, i + 1);
          return -EACCES;
        }
        if (size_reg.umax > 4096 || size_reg.umin == 0) {
          BVF_COV();
          Log("insn %d: %s arg%d size unbounded or zero (umin=%llu umax=%llu)", idx, name,
              i + 1, static_cast<unsigned long long>(size_reg.umin),
              static_cast<unsigned long long>(size_reg.umax));
          return -EACCES;
        }
        if (pending_mem_reg < 0) {
          Log("insn %d: %s arg%d size without memory argument", idx, name, i + 1);
          return -EACCES;
        }
        if (int err = CheckHelperMemArg(state, pending_mem_reg,
                                        static_cast<int>(size_reg.umax), pending_mem_write,
                                        "helper memory", idx);
            err != 0) {
          return err;
        }
        pending_mem_reg = -1;
        break;
      }
      case ArgType::kPtrToCtx:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        if (Reg(state, regno).type != RegType::kPtrToCtx) {
          BVF_COV();
          Log("insn %d: %s arg%d expects ctx, got %s", idx, name, i + 1,
              RegTypeName(Reg(state, regno).type));
          return -EACCES;
        }
        break;
      case ArgType::kPtrToBtfTask:
        BVF_COV();
        if (int err = CheckRegRead(state, regno, idx); err != 0) {
          return err;
        }
        if (Reg(state, regno).type != RegType::kPtrToBtfId ||
            Reg(state, regno).btf_id != kBtfTaskStruct) {
          BVF_COV();
          Log("insn %d: %s arg%d expects task_struct pointer, got %s", idx, name, i + 1,
              RegTypeName(Reg(state, regno).type));
          return -EACCES;
        }
        break;
    }
  }
  if (map_out != nullptr) {
    *map_out = map;
  }
  return 0;
}

int Checker::CheckHelperCall(VerifierState& state, const Insn& insn, int idx) {
  const HelperProto* proto = FindHelperProto(insn.imm, env_.version, prog_.type);
  if (proto == nullptr) {
    BVF_COV();
    Log("insn %d: unknown or unavailable helper func#%d", idx, insn.imm);
    return -EINVAL;
  }
  BVF_COV();
  BVF_COV_IDX(kMaxHelperOrdinals, HelperOrdinal(proto->id));

  const Map* map = nullptr;
  if (int err = CheckCallArgs(state, proto->args, proto->name, idx, &map); err != 0) {
    return err;
  }

  res_.helpers_used.push_back(proto->id);
  res_.uses_lock_helper |= proto->acquires_lock;
  res_.uses_printk_helper |= proto->calls_printk;
  res_.uses_signal_helper |= proto->sends_signal;
  res_.uses_irqwork_helper |= proto->uses_irq_work;

  // Caller-saved registers are clobbered by the call.
  for (int r = kR1; r <= kR5; ++r) {
    Reg(state, r) = RegState::NotInit();
  }

  RegState& r0 = Reg(state, kR0);
  switch (proto->ret) {
    case RetType::kInteger:
    case RetType::kVoid:
      BVF_COV();
      r0.MarkUnknown();
      break;
    case RetType::kPtrToMapValueOrNull:
      BVF_COV();
      r0 = RegState::Pointer(RegType::kPtrToMapValueOrNull);
      r0.map_id = map != nullptr ? map->id() : 0;
      r0.id = NextId();
      break;
    case RetType::kPtrToBtfTask:
      BVF_COV();
      r0 = RegState::Pointer(RegType::kPtrToBtfId);
      r0.btf_id = kBtfTaskStruct;
      break;
    case RetType::kPtrToBtfTaskOrNull:
      BVF_COV();
      r0 = RegState::Pointer(RegType::kPtrToBtfId);
      r0.btf_id = kBtfTaskStruct;
      break;
  }
  return 0;
}

int Checker::CheckKfuncCall(VerifierState& state, const Insn& insn, int idx) {
  const KfuncProto* proto = FindKfuncProto(insn.imm, env_.version);
  if (proto == nullptr) {
    BVF_COV();
    Log("insn %d: calling invalid kfunc#%d", idx, insn.imm);
    return -EINVAL;
  }
  BVF_COV();
  BVF_COV_IDX(kMaxKfuncOrdinals, KfuncOrdinal(proto->btf_func_id));

  const int arg0_ref = Reg(state, kR1).ref_obj_id;
  if (int err = CheckCallArgs(state, proto->args, proto->name, idx, nullptr); err != 0) {
    return err;
  }
  if (proto->releases_ref) {
    BVF_COV();
    if (arg0_ref == 0 || !state.ReleaseRef(arg0_ref)) {
      BVF_COV();
      Log("insn %d: %s releasing unacquired reference", idx, proto->name);
      return -EINVAL;
    }
    // Invalidate every register carrying the released object.
    for (FuncState& frame : state.frames) {
      for (int r = 0; r < kNumProgRegs; ++r) {
        if (frame.regs[r].ref_obj_id == arg0_ref) {
          frame.regs[r] = RegState::NotInit();
        }
      }
    }
  }

  res_.kfuncs_used.push_back(proto->btf_func_id);

  // Bug #3: mishandled backtracking around kfunc calls leaves the caller-
  // saved registers' pre-call states in place. At runtime the native call
  // clobbers R1-R5, so any bound the verifier "remembers" is fiction.
  if (env_.bugs.bug3_kfunc_backtrack) {
    BVF_COV();
  } else {
    for (int r = kR1; r <= kR5; ++r) {
      Reg(state, r) = RegState::NotInit();
    }
  }

  RegState& r0 = Reg(state, kR0);
  switch (proto->ret) {
    case RetType::kPtrToBtfTask:
      BVF_COV();
      r0 = RegState::Pointer(RegType::kPtrToBtfId);
      r0.btf_id = kBtfTaskStruct;
      if (proto->acquires_ref) {
        r0.ref_obj_id = static_cast<int>(NextId());
        state.AddRef(r0.ref_obj_id);
      }
      break;
    case RetType::kVoid:
      BVF_COV();
      r0 = RegState::NotInit();
      break;
    default:
      BVF_COV();
      r0.MarkUnknown();
      break;
  }
  return 0;
}

int Checker::CheckPseudoCall(VerifierState& state, const Insn& insn, int idx, int* next) {
  const int target = idx + 1 + insn.imm;
  if (target < 0 || target >= static_cast<int>(prog_.insns.size())) {
    BVF_COV();
    Log("insn %d: pseudo call target %d out of range", idx, target);
    return -EINVAL;
  }
  if (state.frame_depth() >= kMaxCallFrames) {
    BVF_COV();
    Log("insn %d: the call stack of %d frames is too deep", idx, state.frame_depth());
    return -E2BIG;
  }
  // Arguments must be initialized (the callee may read any of R1-R5).
  BVF_COV();
  FuncState callee;
  for (int r = kR1; r <= kR5; ++r) {
    callee.regs[r] = Reg(state, r);
  }
  callee.regs[kR10] = RegState::Pointer(RegType::kPtrToStack);
  callee.callsite = idx;
  state.frames.push_back(callee);
  *next = target;
  return 0;
}

}  // namespace bpf
