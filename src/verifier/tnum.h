// Tristate numbers: the verifier's bitwise abstract domain, a port of the
// Linux kernel's kernel/bpf/tnum.c. A tnum tracks, per bit, whether the bit
// is known-0, known-1, or unknown: `value` holds the known-1 bits and `mask`
// holds the unknown bits (a bit must not be set in both).

#ifndef SRC_VERIFIER_TNUM_H_
#define SRC_VERIFIER_TNUM_H_

#include <cstdint>
#include <string>

namespace bpf {

struct Tnum {
  uint64_t value = 0;
  uint64_t mask = ~0ull;

  bool IsConst() const { return mask == 0; }
  bool IsUnknown() const { return mask == ~0ull; }
  // True if this tnum is fully known to equal |v|.
  bool EqualsConst(uint64_t v) const { return IsConst() && value == v; }
  // True if the concrete value |v| is representable by this tnum.
  bool Contains(uint64_t v) const { return ((v & ~mask) == value); }

  bool operator==(const Tnum& other) const = default;

  std::string ToString() const;
};

Tnum TnumConst(uint64_t value);
Tnum TnumUnknown();
// Smallest tnum containing every value in [min, max].
Tnum TnumRange(uint64_t min, uint64_t max);

Tnum TnumLshift(Tnum a, uint8_t shift);
Tnum TnumRshift(Tnum a, uint8_t shift);
Tnum TnumArshift(Tnum a, uint8_t shift, uint8_t insn_bitness);
Tnum TnumAdd(Tnum a, Tnum b);
Tnum TnumSub(Tnum a, Tnum b);
Tnum TnumAnd(Tnum a, Tnum b);
Tnum TnumOr(Tnum a, Tnum b);
Tnum TnumXor(Tnum a, Tnum b);
Tnum TnumMul(Tnum a, Tnum b);
Tnum TnumNeg(Tnum a);

// Intersection: both a and b are known to hold; returns the combined
// knowledge (kernel: tnum_intersect).
Tnum TnumIntersect(Tnum a, Tnum b);
// Union: either a or b holds (kernel: tnum_union — used at state merges).
Tnum TnumUnion(Tnum a, Tnum b);

// Truncates to the low |size| bytes.
Tnum TnumCast(Tnum a, uint8_t size);

// True if every value of b is representable in a (kernel: tnum_in).
bool TnumIn(Tnum a, Tnum b);

// 32-bit subregister helpers.
Tnum TnumSubreg(Tnum a);                    // low 32 bits
Tnum TnumClearSubreg(Tnum a);               // zero the low 32 bits
Tnum TnumWithSubreg(Tnum reg, Tnum subreg); // splice a 32-bit subreg in
Tnum TnumConstSubreg(Tnum reg, uint32_t value);

}  // namespace bpf

#endif  // SRC_VERIFIER_TNUM_H_
