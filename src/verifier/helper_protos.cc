#include "src/verifier/helper_protos.h"

#include "src/kernel/btf.h"

namespace bpf {

namespace {

constexpr ArgType kA = ArgType::kAnything;
constexpr ArgType kN = ArgType::kNone;

const HelperProto kHelperTable[] = {
    {kHelperMapLookupElem, "bpf_map_lookup_elem", RetType::kPtrToMapValueOrNull,
     {ArgType::kConstMapPtr, ArgType::kPtrToMapKey, kN, kN, kN}},
    {kHelperMapUpdateElem, "bpf_map_update_elem", RetType::kInteger,
     {ArgType::kConstMapPtr, ArgType::kPtrToMapKey, ArgType::kPtrToMapValue, ArgType::kScalar,
      kN}},
    {kHelperMapDeleteElem, "bpf_map_delete_elem", RetType::kInteger,
     {ArgType::kConstMapPtr, ArgType::kPtrToMapKey, kN, kN, kN}},
    {kHelperKtimeGetNs, "bpf_ktime_get_ns", RetType::kInteger, {kN, kN, kN, kN, kN}},
    {kHelperTracePrintk, "bpf_trace_printk", RetType::kInteger,
     {ArgType::kPtrToMemRo, ArgType::kConstSize, ArgType::kScalar, kN, kN},
     /*acquires_lock=*/true, /*calls_printk=*/true},
    {kHelperGetPrandomU32, "bpf_get_prandom_u32", RetType::kInteger, {kN, kN, kN, kN, kN}},
    {kHelperGetSmpProcessorId, "bpf_get_smp_processor_id", RetType::kInteger,
     {kN, kN, kN, kN, kN}},
    {kHelperGetCurrentPidTgid, "bpf_get_current_pid_tgid", RetType::kInteger,
     {kN, kN, kN, kN, kN}},
    {kHelperGetCurrentComm, "bpf_get_current_comm", RetType::kInteger,
     {ArgType::kPtrToMemWo, ArgType::kConstSize, kN, kN, kN}},
    {kHelperPerfEventOutput, "bpf_perf_event_output", RetType::kInteger,
     {ArgType::kPtrToCtx, ArgType::kConstMapPtr, ArgType::kScalar, ArgType::kPtrToMemRo,
      ArgType::kConstSize},
     /*acquires_lock=*/false, /*calls_printk=*/false, /*sends_signal=*/false,
     /*uses_irq_work=*/true},
    {kHelperGetCurrentTask, "bpf_get_current_task", RetType::kInteger, {kN, kN, kN, kN, kN}},
    {kHelperSendSignal, "bpf_send_signal", RetType::kInteger, {ArgType::kScalar, kN, kN, kN, kN},
     /*acquires_lock=*/false, /*calls_printk=*/false, /*sends_signal=*/true},
    {kHelperGetCurrentTaskBtf, "bpf_get_current_task_btf", RetType::kPtrToBtfTask,
     {kN, kN, kN, kN, kN}},
    {kHelperRingbufOutput, "bpf_ringbuf_output", RetType::kInteger,
     {ArgType::kConstMapPtr, ArgType::kPtrToMemRo, ArgType::kConstSize, ArgType::kScalar, kN}},
    {kHelperTaskStorageGet, "bpf_task_storage_get", RetType::kPtrToMapValueOrNull,
     {ArgType::kConstMapPtr, ArgType::kPtrToBtfTask, ArgType::kScalar, ArgType::kScalar, kN},
     /*acquires_lock=*/true},
    {kHelperTaskStorageDelete, "bpf_task_storage_delete", RetType::kInteger,
     {ArgType::kConstMapPtr, ArgType::kPtrToBtfTask, kN, kN, kN},
     /*acquires_lock=*/true},
    {kHelperLoop, "bpf_loop", RetType::kInteger,
     {ArgType::kScalar, ArgType::kScalar, ArgType::kScalar, ArgType::kScalar, kN}},
};

const KfuncProto kKfuncTable[] = {
    {kKfuncTaskAcquire, "bpf_task_acquire", RetType::kPtrToBtfTask,
     {ArgType::kPtrToBtfTask, kN, kN, kN, kN}, /*acquires_ref=*/true},
    {kKfuncTaskRelease, "bpf_task_release", RetType::kVoid,
     {ArgType::kPtrToBtfTask, kN, kN, kN, kN}, /*acquires_ref=*/false, /*releases_ref=*/true},
    {kKfuncRcuReadLock, "bpf_rcu_read_lock", RetType::kVoid, {kN, kN, kN, kN, kN}},
    {kKfuncRcuReadUnlock, "bpf_rcu_read_unlock", RetType::kVoid, {kN, kN, kN, kN, kN}},
};

bool HelperInVersion(int32_t id, const KernelFeatures& features) {
  switch (id) {
    case kHelperGetCurrentTaskBtf:
      return features.task_btf_helpers;
    case kHelperRingbufOutput:
      return features.ringbuf;
    case kHelperTaskStorageGet:
    case kHelperTaskStorageDelete:
      return features.task_storage;
    case kHelperLoop:
      return features.bpf_loop_helper;
    default:
      return true;
  }
}

bool HelperForProgType(int32_t id, ProgType prog_type) {
  switch (id) {
    // Tracing-only helpers.
    case kHelperTracePrintk:
    case kHelperGetCurrentPidTgid:
    case kHelperGetCurrentComm:
    case kHelperGetCurrentTask:
    case kHelperGetCurrentTaskBtf:
    case kHelperSendSignal:
    case kHelperTaskStorageGet:
    case kHelperTaskStorageDelete:
    case kHelperPerfEventOutput:
      return prog_type == ProgType::kKprobe || prog_type == ProgType::kTracepoint;
    default:
      return true;
  }
}

}  // namespace

const HelperProto* FindHelperProto(int32_t id, KernelVersion version, ProgType prog_type) {
  const KernelFeatures features = KernelFeatures::For(version);
  for (const HelperProto& proto : kHelperTable) {
    if (proto.id == id) {
      if (!HelperInVersion(id, features) || !HelperForProgType(id, prog_type)) {
        return nullptr;
      }
      return &proto;
    }
  }
  return nullptr;
}

const KfuncProto* FindKfuncProto(int32_t btf_func_id, KernelVersion version) {
  if (!KernelFeatures::For(version).kfunc_calls) {
    return nullptr;
  }
  for (const KfuncProto& proto : kKfuncTable) {
    if (proto.btf_func_id == btf_func_id) {
      return &proto;
    }
  }
  return nullptr;
}

std::vector<int32_t> AvailableHelpers(KernelVersion version, ProgType prog_type) {
  std::vector<int32_t> ids;
  for (const HelperProto& proto : kHelperTable) {
    if (FindHelperProto(proto.id, version, prog_type) != nullptr) {
      ids.push_back(proto.id);
    }
  }
  return ids;
}

int HelperOrdinal(int32_t id) {
  int ordinal = 0;
  for (const HelperProto& proto : kHelperTable) {
    if (proto.id == id) {
      return ordinal;
    }
    ++ordinal;
  }
  return -1;
}

int KfuncOrdinal(int32_t btf_func_id) {
  int ordinal = 0;
  for (const KfuncProto& proto : kKfuncTable) {
    if (proto.btf_func_id == btf_func_id) {
      return ordinal;
    }
    ++ordinal;
  }
  return -1;
}

std::vector<int32_t> AvailableKfuncs(KernelVersion version) {
  std::vector<int32_t> ids;
  for (const KfuncProto& proto : kKfuncTable) {
    if (FindKfuncProto(proto.btf_func_id, version) != nullptr) {
      ids.push_back(proto.btf_func_id);
    }
  }
  return ids;
}

}  // namespace bpf
