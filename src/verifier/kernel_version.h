// Simulated kernel versions and the feature surface each exposes.
//
// The paper evaluates three codebases (Linux v5.15, v6.1, and the bpf-next
// branch). Newer versions carry more verifier features — and therefore more
// coverage sites and different injected-bug sets — which is what produces the
// per-version coverage totals of Table 3.

#ifndef SRC_VERIFIER_KERNEL_VERSION_H_
#define SRC_VERIFIER_KERNEL_VERSION_H_

namespace bpf {

enum class KernelVersion {
  kV5_15,
  kV6_1,
  kBpfNext,
};

const char* KernelVersionName(KernelVersion version);

struct KernelFeatures {
  bool kfunc_calls = false;           // BTF kfuncs (task_acquire/release)
  bool nullness_propagation = false;  // reg-reg JEQ nullness transfer (bfeae75856ab)
  bool task_btf_helpers = false;      // bpf_get_current_task_btf and friends
  bool ringbuf = false;
  bool jmp32_bounds = false;          // dedicated 32-bit bounds refinement on JMP32
  bool sanitize_alu_limit = false;    // alu_limit computation for ptr ALU
  bool bpf_loop_helper = false;       // bpf_loop (bpf-next extra surface)
  bool task_storage = false;

  static KernelFeatures For(KernelVersion version);
};

}  // namespace bpf

#endif  // SRC_VERIFIER_KERNEL_VERSION_H_
