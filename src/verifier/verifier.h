// The eBPF verifier: path-sensitive abstract interpretation of eBPF programs,
// modelled on kernel/bpf/verifier.c.
//
// Pipeline (mirroring bpf_check()):
//   1. encoding validation (src/ebpf/program.h)
//   2. CFG check: reachability, jump sanity, subprogram discovery
//   3. do_check(): simulate every path, tracking per-register abstract state
//      (bounds, tnums, pointer provenance), stack slots, helper contracts
//   4. fixup/rewrite: resolve pseudo instructions (map fds, BTF ids) and run
//      the registered instrumentation hook (BVF's sanitation patches in
//      bpf_misc_fixup)
//
// Injectable historical bugs (BugConfig) gate specific checks; see
// DESIGN.md §5.

#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/ebpf/program.h"
#include "src/kernel/btf.h"
#include "src/maps/map.h"
#include "src/verifier/bug_registry.h"
#include "src/verifier/helper_protos.h"
#include "src/verifier/kernel_version.h"
#include "src/verifier/verifier_state.h"

namespace bpf {

// Registers covered by abstract-state claims: R0..R9 (R10 is always a frame
// pointer and never carries a scalar claim).
inline constexpr int kClaimRegs = 10;

// Per-instruction auxiliary data produced by verification and consumed by the
// rewrite/instrumentation passes (kernel: struct bpf_insn_aux_data).
struct InsnAux {
  bool seen = false;        // reached by do_check
  bool rewritten = false;   // inserted by a rewrite pass; sanitation skips it
  // Memory-access metadata for load/store instructions.
  RegType mem_ptr_type = RegType::kNotInit;
  bool fp_const_access = false;  // access via R10 + const off (sanitation skips)
  // ALU sanitation info for ptr<op>scalar instructions: the verifier's
  // believed signed range of the scalar operand at this point. The sanitizer
  // turns this into a runtime assert (paper §4.2: assert(offset < alu_limit)).
  bool alu_check = false;
  uint8_t alu_scalar_reg = 0;
  int64_t alu_smin = 0;
  int64_t alu_smax = 0;
  // Abstract-state claims for R0..R9 immediately before this instruction,
  // joined over every explored path. Empty unless
  // VerifierEnv::collect_state_claims is set; audited against concrete
  // register witnesses by src/analysis/state_audit (Indicator #3).
  std::vector<RegClaim> claims;
  // Bit r set while claims[r] is not yet permanently invalid. Observing an
  // invalid claim is a no-op, so the recording loop skips those registers;
  // most claims invalidate on first visit (non-scalar or uninitialized).
  uint16_t live_claims = 0;
};

struct VerifierResult {
  int err = 0;  // 0 on success, negative errno otherwise
  std::string log;

  // Rewritten program + aux (parallel arrays), valid when err == 0.
  Program prog;
  std::vector<InsnAux> aux;

  // Statistics.
  uint32_t insns_processed = 0;
  uint32_t peak_states = 0;
  uint32_t states_pruned = 0;

  // Behavioural summary used by attach-time policy checks.
  std::vector<int32_t> helpers_used;
  std::vector<int32_t> kfuncs_used;
  bool uses_lock_helper = false;
  bool uses_printk_helper = false;
  bool uses_signal_helper = false;
  bool uses_irqwork_helper = false;

  bool ok() const { return err == 0; }
};

// Everything the verifier needs from the surrounding kernel. The runtime
// layer fills this in; tests can provide minimal stubs.
struct VerifierEnv {
  MapRegistry* maps = nullptr;
  const BtfRegistry* btf = nullptr;
  KernelVersion version = KernelVersion::kBpfNext;
  BugConfig bugs;

  // Guest address resolution for the fixup pass.
  std::function<uint64_t(int map_id)> map_obj_addr;
  std::function<uint64_t(int btf_struct_id)> btf_obj_addr;

  // Instrumentation hook run at the end of the rewrite phase (BVF patches).
  std::function<void(Program&, std::vector<InsnAux>&)> instrument;

  // Export per-instruction abstract-state claims into InsnAux::claims for the
  // witness-containment audit (Indicator #3).
  bool collect_state_claims = false;

  bool verbose_log = false;  // per-insn state dump in the log
};

// Context-field descriptors per program type.
struct CtxField {
  const char* name;
  int off;
  int size;
  bool writable;
  enum class Special { kNone, kPktData, kPktEnd } special = Special::kNone;
};

struct CtxDescriptor {
  int size;
  std::vector<CtxField> fields;

  const CtxField* FieldAt(int off, int size) const;
};

const CtxDescriptor& CtxDescriptorFor(ProgType type);

// Runs the full pipeline on |prog|.
VerifierResult VerifyProgram(const Program& prog, VerifierEnv& env);

// Process-wide switch for the pruning-loop fingerprint fast path (cached
// StateFingerprint compare before the exact StateEqual on back-edge
// arrivals). On by default; equality outcomes are identical either way, so
// this only exists so benchmarks can measure the unaccelerated walk and
// paranoid tests can cross-check the two paths. Not thread-safe against
// in-flight verifications; flip it only between campaigns.
void SetPruneFingerprintEnabled(bool enabled);
bool PruneFingerprintEnabled();

// ---- Abstract transfer functions, exposed for tooling and property tests ----

// Applies the scalar ALU transfer function of |insn| (class+op) to dst/src
// abstract values, as adjust_scalar_min_max_vals does during verification.
void ScalarAluTransfer(const Insn& insn, RegState& dst, RegState src_val);

// Branch-outcome evaluation from bounds: 1 = always taken, 0 = never,
// -1 = unknown (is_branch_taken).
int BranchOutcome(const RegState& reg, uint64_t val, uint8_t jmp_op, bool is32);

// Refines |reg| under the assumption that `reg <jmp_op> val` holds
// (reg_set_min_max).
void RefineScalarAgainstConst(RegState& reg, uint8_t jmp_op, uint64_t val, bool is32);

}  // namespace bpf

#endif  // SRC_VERIFIER_VERIFIER_H_
