// Rewrite phase (kernel: convert_pseudo_ld_imm64 + do_misc_fixups): resolves
// pseudo ld_imm64 operands to runtime guest addresses and invokes the
// registered instrumentation hook — the point where BVF's sanitation patches
// plug in (paper §5: "conducted in the bpf_misc_fixup() phase in conjunction
// with other rewrite passes").

#include <cerrno>

#include "src/kernel/coverage.h"
#include "src/verifier/checker.h"

namespace bpf {

int Checker::Fixup() {
  res_.prog = prog_;
  std::vector<Insn>& insns = res_.prog.insns;

  for (size_t i = 0; i < insns.size(); ++i) {
    Insn& insn = insns[i];
    if (!insn.IsLdImm64()) {
      continue;
    }
    const uint64_t imm64 =
        (static_cast<uint64_t>(static_cast<uint32_t>(insns[i + 1].imm)) << 32) |
        static_cast<uint32_t>(insn.imm);
    uint64_t addr = 0;
    switch (insn.src) {
      case 0:
        ++i;
        continue;
      case kPseudoMapFd: {
        BVF_COV();
        if (env_.map_obj_addr) {
          addr = env_.map_obj_addr(static_cast<int>(imm64));
        }
        break;
      }
      case kPseudoMapValue: {
        BVF_COV();
        const Map* map = FindMap(static_cast<int>(imm64 & 0xffffffff));
        if (map != nullptr) {
          addr = map->ValuesAddr() + (imm64 >> 32);
        }
        break;
      }
      case kPseudoBtfId: {
        BVF_COV();
        if (env_.btf_obj_addr) {
          addr = env_.btf_obj_addr(static_cast<int>(imm64));
        }
        break;
      }
      default:
        Log("fixup: unexpected pseudo src %d at insn %zu", insn.src, i);
        return -EINVAL;
    }
    // Note: a BTF object address may legitimately be 0 (e.g. a kernel
    // thread's mm); PTR_TO_BTF_ID loads are exception-handled at runtime.
    insn.src = 0;
    insn.imm = static_cast<int32_t>(addr & 0xffffffffu);
    insns[i + 1].imm = static_cast<int32_t>(addr >> 32);
    ++i;
  }

  // Instrumentation hook: BVF's memory-access sanitation runs here, after all
  // other rewrites, so it sees the final instruction stream.
  if (env_.instrument) {
    BVF_COV();
    env_.instrument(res_.prog, aux_);
  }

  res_.aux = aux_;
  return 0;
}

}  // namespace bpf
