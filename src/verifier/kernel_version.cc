#include "src/verifier/kernel_version.h"

namespace bpf {

const char* KernelVersionName(KernelVersion version) {
  switch (version) {
    case KernelVersion::kV5_15:
      return "v5.15";
    case KernelVersion::kV6_1:
      return "v6.1";
    case KernelVersion::kBpfNext:
      return "bpf-next";
  }
  return "unknown";
}

KernelFeatures KernelFeatures::For(KernelVersion version) {
  KernelFeatures f;
  // v5.15 baseline.
  f.ringbuf = true;
  f.sanitize_alu_limit = true;
  f.task_storage = true;
  if (version == KernelVersion::kV5_15) {
    return f;
  }
  // v6.1 additions.
  f.kfunc_calls = true;
  f.task_btf_helpers = true;
  f.jmp32_bounds = true;
  if (version == KernelVersion::kV6_1) {
    return f;
  }
  // bpf-next additions.
  f.nullness_propagation = true;
  f.bpf_loop_helper = true;
  return f;
}

}  // namespace bpf
