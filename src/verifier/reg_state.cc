#include "src/verifier/reg_state.h"

#include <algorithm>
#include <cstdio>

namespace bpf {

const char* RegTypeName(RegType type) {
  switch (type) {
    case RegType::kNotInit:
      return "?";
    case RegType::kScalar:
      return "scalar";
    case RegType::kPtrToCtx:
      return "ctx";
    case RegType::kConstPtrToMap:
      return "map_ptr";
    case RegType::kPtrToMapValue:
      return "map_value";
    case RegType::kPtrToMapValueOrNull:
      return "map_value_or_null";
    case RegType::kPtrToStack:
      return "fp";
    case RegType::kPtrToPacket:
      return "pkt";
    case RegType::kPtrToPacketEnd:
      return "pkt_end";
    case RegType::kPtrToBtfId:
      return "ptr_to_btf_id";
    case RegType::kPtrToMem:
      return "mem";
    case RegType::kPtrToMemOrNull:
      return "mem_or_null";
  }
  return "unknown";
}

RegType NonNullVariant(RegType type) {
  switch (type) {
    case RegType::kPtrToMapValueOrNull:
      return RegType::kPtrToMapValue;
    case RegType::kPtrToMemOrNull:
      return RegType::kPtrToMem;
    default:
      return type;
  }
}

RegState RegState::Unknown() {
  RegState reg;
  reg.MarkUnknown();
  return reg;
}

RegState RegState::Known(uint64_t v) {
  RegState reg;
  reg.MarkKnown(v);
  return reg;
}

RegState RegState::Pointer(RegType type, int32_t off) {
  RegState reg;
  reg.type = type;
  reg.off = off;
  reg.var_off = TnumConst(0);
  reg.smin = reg.smax = 0;
  reg.umin = reg.umax = 0;
  reg.s32_min = reg.s32_max = 0;
  reg.u32_min = reg.u32_max = 0;
  return reg;
}

void RegState::SetUnboundedBounds() {
  smin = kS64Min;
  smax = kS64Max;
  umin = 0;
  umax = kU64Max;
  Set32Unbounded();
}

void RegState::Set32Unbounded() {
  s32_min = kS32Min;
  s32_max = kS32Max;
  u32_min = 0;
  u32_max = kU32Max;
}

void RegState::MarkUnknown() {
  type = RegType::kScalar;
  off = 0;
  var_off = TnumUnknown();
  SetUnboundedBounds();
  id = 0;
  map_id = 0;
  btf_id = 0;
  mem_size = 0;
  pkt_range = 0;
  ref_obj_id = 0;
}

void RegState::MarkKnown(uint64_t value) {
  MarkUnknown();
  var_off = TnumConst(value);
  smin = smax = static_cast<int64_t>(value);
  umin = umax = value;
  s32_min = s32_max = static_cast<int32_t>(value);
  u32_min = u32_max = static_cast<uint32_t>(value);
}

void RegState::UpdateBounds() {
  // 64-bit: bounds from var_off.
  umin = std::max(umin, var_off.value);
  umax = std::min(umax, var_off.value | var_off.mask);
  if (static_cast<int64_t>(umin) <= static_cast<int64_t>(umax)) {
    // Range does not cross the sign boundary: signed bounds can be tightened.
    smin = std::max(smin, static_cast<int64_t>(umin));
    smax = std::min(smax, static_cast<int64_t>(umax));
  }
  // 32-bit subrange.
  const Tnum sub = TnumSubreg(var_off);
  u32_min = std::max(u32_min, static_cast<uint32_t>(sub.value));
  u32_max = std::min(u32_max, static_cast<uint32_t>(sub.value | sub.mask));
  if (static_cast<int32_t>(u32_min) <= static_cast<int32_t>(u32_max)) {
    s32_min = std::max(s32_min, static_cast<int32_t>(u32_min));
    s32_max = std::min(s32_max, static_cast<int32_t>(u32_max));
  }
}

void RegState::DeduceBounds() {
  // 64-bit cross deduction (__reg64_deduce_bounds). Transfers are only valid
  // when the source interval does not cross its sign boundary.
  if (static_cast<int64_t>(umin) <= static_cast<int64_t>(umax)) {
    // Unsigned range stays on one side of 2^63: signed order matches.
    smin = std::max(smin, static_cast<int64_t>(umin));
    smax = std::min(smax, static_cast<int64_t>(umax));
  }
  if (smin >= 0 || smax < 0) {
    // Signed range does not cross zero: unsigned order matches.
    umin = std::max(umin, static_cast<uint64_t>(smin));
    umax = std::min(umax, static_cast<uint64_t>(smax));
  }
  // 32-bit cross deduction, same structure.
  if (static_cast<int32_t>(u32_min) <= static_cast<int32_t>(u32_max)) {
    s32_min = std::max(s32_min, static_cast<int32_t>(u32_min));
    s32_max = std::min(s32_max, static_cast<int32_t>(u32_max));
  }
  if (s32_min >= 0 || s32_max < 0) {
    u32_min = std::max(u32_min, static_cast<uint32_t>(s32_min));
    u32_max = std::min(u32_max, static_cast<uint32_t>(s32_max));
  }
}

void RegState::BoundOffset() {
  const Tnum range64 = TnumRange(umin, umax);
  var_off = TnumIntersect(var_off, range64);
  const Tnum range32 = TnumRange(u32_min, u32_max);
  var_off = TnumWithSubreg(var_off, TnumIntersect(TnumSubreg(var_off), range32));
}

void RegState::Assign32Into64() {
  umin = u32_min;
  umax = u32_max;
  if (s32_min >= 0) {
    smin = s32_min;
    smax = s32_max;
  } else {
    // Value may wrap when zero-extended; fall back to the unsigned range.
    smin = 0;
    smax = static_cast<int64_t>(kU32Max);
    umin = 0;
    umax = kU32Max;
    if (static_cast<int64_t>(u32_min) <= static_cast<int64_t>(u32_max)) {
      umin = u32_min;
      umax = u32_max;
      smin = static_cast<int64_t>(u32_min);
      smax = static_cast<int64_t>(u32_max);
    }
  }
}

void RegState::ZExt32() {
  var_off = TnumCast(var_off, 4);
  // Recompute 32-bit bounds from var_off, then assign upward.
  u32_min = 0;
  u32_max = kU32Max;
  s32_min = kS32Min;
  s32_max = kS32Max;
  const Tnum sub = TnumSubreg(var_off);
  u32_min = static_cast<uint32_t>(sub.value);
  u32_max = static_cast<uint32_t>(sub.value | sub.mask);
  if (static_cast<int32_t>(u32_min) <= static_cast<int32_t>(u32_max)) {
    s32_min = static_cast<int32_t>(u32_min);
    s32_max = static_cast<int32_t>(u32_max);
  }
  Assign32Into64();
  Sync();
}

bool RegState::BoundsSane() const {
  return smin <= smax && umin <= umax && s32_min <= s32_max && u32_min <= u32_max;
}

std::string RegState::ToString() const {
  char buf[192];
  switch (type) {
    case RegType::kScalar:
      if (var_off.IsConst()) {
        snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(var_off.value));
      } else {
        snprintf(buf, sizeof(buf), "scalar(umin=%llu,umax=%llu,smin=%lld,smax=%lld,var=%s)",
                 static_cast<unsigned long long>(umin), static_cast<unsigned long long>(umax),
                 static_cast<long long>(smin), static_cast<long long>(smax),
                 var_off.ToString().c_str());
      }
      break;
    case RegType::kPtrToMapValue:
    case RegType::kPtrToMapValueOrNull:
      snprintf(buf, sizeof(buf), "%s(map=%d,off=%d)", RegTypeName(type), map_id, off);
      break;
    case RegType::kPtrToBtfId:
      snprintf(buf, sizeof(buf), "%s(btf=%d,off=%d)", RegTypeName(type), btf_id, off);
      break;
    case RegType::kPtrToPacket:
      snprintf(buf, sizeof(buf), "pkt(off=%d,range=%u)", off, pkt_range);
      break;
    default:
      snprintf(buf, sizeof(buf), "%s(off=%d)", RegTypeName(type), off);
      break;
  }
  return buf;
}

bool RegSubsumes(const RegState& old_reg, const RegState& cur_reg) {
  if (old_reg.type == RegType::kNotInit) {
    return true;  // old state knew nothing about this register
  }
  if (old_reg.type == RegType::kScalar) {
    if (cur_reg.type != RegType::kScalar) {
      // A pointer in the current state is "safe" only if the old scalar was
      // fully unknown (kernel is stricter; this is conservative enough since
      // unknown scalars admit any bit pattern but not pointer provenance).
      return false;
    }
    return old_reg.umin <= cur_reg.umin && old_reg.umax >= cur_reg.umax &&
           old_reg.smin <= cur_reg.smin && old_reg.smax >= cur_reg.smax &&
           old_reg.u32_min <= cur_reg.u32_min && old_reg.u32_max >= cur_reg.u32_max &&
           old_reg.s32_min <= cur_reg.s32_min && old_reg.s32_max >= cur_reg.s32_max &&
           TnumIn(old_reg.var_off, cur_reg.var_off);
  }
  // Pointers must match exactly (including ids -- a simplification of the
  // kernel's idmap-based comparison).
  if (old_reg.type != cur_reg.type || old_reg.off != cur_reg.off ||
      old_reg.map_id != cur_reg.map_id || old_reg.btf_id != cur_reg.btf_id ||
      old_reg.mem_size != cur_reg.mem_size || old_reg.id != cur_reg.id ||
      old_reg.ref_obj_id != cur_reg.ref_obj_id) {
    return false;
  }
  if (old_reg.type == RegType::kPtrToPacket) {
    // A larger verified range subsumes a smaller one.
    return old_reg.pkt_range <= cur_reg.pkt_range;
  }
  return old_reg.var_off == cur_reg.var_off && old_reg.smin == cur_reg.smin &&
         old_reg.smax == cur_reg.smax;
}

std::string RegClaim::ToString() const {
  switch (status) {
    case Status::kUnseen:
      return "unseen";
    case Status::kInvalid:
      return "non-scalar";
    case Status::kValid:
      break;
  }
  char buf[224];
  snprintf(buf, sizeof(buf),
           "umin=%llu umax=%llu smin=%lld smax=%lld u32=[%u,%u] s32=[%d,%d] var=%s",
           static_cast<unsigned long long>(umin), static_cast<unsigned long long>(umax),
           static_cast<long long>(smin), static_cast<long long>(smax), u32_min, u32_max,
           s32_min, s32_max, var_off.ToString().c_str());
  return buf;
}

}  // namespace bpf
