// Internal verifier implementation class. Split across several translation
// units (checker.cc, check_alu.cc, check_mem.cc, check_jmp.cc, check_call.cc,
// fixup.cc) to mirror the functional areas of kernel/bpf/verifier.c.
// Not part of the public API; include src/verifier/verifier.h instead.

#ifndef SRC_VERIFIER_CHECKER_H_
#define SRC_VERIFIER_CHECKER_H_

#include <cstdarg>
#include <utility>
#include <vector>

#include "src/verifier/verifier.h"

namespace bpf {

class Checker {
 public:
  Checker(const Program& prog, VerifierEnv& env, VerifierResult& result);

  // Runs the pipeline; returns 0 or a negative errno (also stored in result).
  int Run();

 private:
  static constexpr int kPathEnd = -1;
  static constexpr uint32_t kMaxInsnsProcessed = 131072;
  static constexpr size_t kMaxPendingStates = 2048;
  static constexpr size_t kMaxExploredPerInsn = 64;

  // --- driver (checker.cc) ---
  int CheckCfg();
  int DoCheck();
  int ProcessInsn(VerifierState& state, int idx, int* next);
  // Returns true if the path at |idx| is subsumed by an explored state.
  bool TryPrune(int idx, VerifierState& state, bool via_back_edge, int* err);
  // Joins the current frame's R0..R9 into aux_[idx].claims (state audit).
  void RecordStateClaims(const VerifierState& state, int idx);
  void PushBranch(int idx, VerifierState state, bool back_edge);
  // Copy of |src| that reuses a recycled dead state's heap buffers when one
  // is available (copy-assignment into warm capacity skips the allocator).
  VerifierState CloneState(const VerifierState& src);
  // Returns a finished path's state to the recycle pool.
  void RecycleState(VerifierState&& state);
  int CheckExit(VerifierState& state, int idx, int* next);

  // --- ALU (check_alu.cc) ---
  int CheckAluOp(VerifierState& state, const Insn& insn, int idx);
  int AdjustPtrAlu(VerifierState& state, const Insn& insn, int idx, RegState& dst,
                   const RegState& src_val, bool dst_is_ptr);
  void AdjustScalarAlu(VerifierState& state, const Insn& insn, RegState& dst,
                       RegState src_val);

  // --- memory (check_mem.cc) ---
  int CheckMemAccess(VerifierState& state, const Insn& insn, int idx, int ptr_regno,
                     int value_regno, bool is_store, bool is_atomic = false);
  int CheckStackAccess(VerifierState& state, const Insn& insn, int idx, const RegState& ptr,
                       int value_regno, bool is_store, bool is_atomic);
  int CheckMapValueAccess(const RegState& ptr, int off, int size, int idx);
  int CheckCtxAccess(VerifierState& state, const RegState& ptr, int off, int size,
                     bool is_store, int value_regno, int idx);
  int CheckBtfAccess(VerifierState& state, const RegState& ptr, int off, int size,
                     bool is_store, int value_regno, int idx);
  int CheckPacketAccess(const RegState& ptr, int off, int size, int idx);
  int CheckMemRegionAccess(const RegState& ptr, int off, int size, int idx);
  // Helper-argument memory check: |size| readable/writable bytes at reg.
  int CheckHelperMemArg(VerifierState& state, int regno, int size, bool is_store,
                        const char* what, int idx);

  // --- jumps (check_jmp.cc) ---
  int CheckCondJmp(VerifierState& state, const Insn& insn, int idx, int* next);
  void MarkPtrOrNull(VerifierState& state, uint32_t id, bool is_null);
  void FindGoodPktPointers(VerifierState& state, uint32_t pkt_id, uint16_t range);

  // --- calls (check_call.cc) ---
  int CheckHelperCall(VerifierState& state, const Insn& insn, int idx);
  int CheckKfuncCall(VerifierState& state, const Insn& insn, int idx);
  int CheckPseudoCall(VerifierState& state, const Insn& insn, int idx, int* next);
  int CheckCallArgs(VerifierState& state, const ArgType* args, const char* name, int idx,
                    const Map** map_out);

  // --- ld_imm64 (checker.cc) ---
  int CheckLdImm64(VerifierState& state, const Insn& insn, int idx);

  // --- fixup (fixup.cc) ---
  int Fixup();

  // --- utilities ---
  RegState& Reg(VerifierState& state, int regno) { return state.regs()[regno]; }
  int CheckRegRead(VerifierState& state, int regno, int idx);
  int CheckRegWrite(VerifierState& state, int regno, int idx);  // R10 is read-only
  const Map* FindMap(int map_id) const;
  void Log(const char* fmt, ...) __attribute__((format(printf, 2, 3)));
  void LogState(const VerifierState& state);
  uint32_t NextId() { return ++id_gen_; }

  const Program& prog_;
  VerifierEnv& env_;
  VerifierResult& res_;
  KernelFeatures features_;

  std::vector<InsnAux> aux_;
  // Pending branch states: (insn index, state, reached via back edge).
  struct Pending {
    int idx;
    VerifierState state;
    bool back_edge;
  };
  std::vector<Pending> stack_;
  // Explored states per prune point, each carrying its StateFingerprint so
  // back-edge equality scans can reject non-matches without a full compare.
  struct Explored {
    uint64_t fingerprint;
    // Lazily filled: the hash is computed the first time a back-edge arrival
    // scans this insn's list, never for insns no back edge reaches.
    bool has_fingerprint;
    VerifierState state;
  };
  std::vector<std::vector<Explored>> explored_;
  std::vector<uint8_t> prune_point_;
  // Dead path states awaiting reuse by CloneState (bounded; per-program).
  std::vector<VerifierState> state_pool_;
  std::vector<uint8_t> reachable_;
  uint32_t id_gen_ = 0;
  uint32_t insns_processed_ = 0;

  friend struct CheckerTestPeer;
};

}  // namespace bpf

#endif  // SRC_VERIFIER_CHECKER_H_
