#include "src/verifier/verifier_state.h"

#include <algorithm>

namespace bpf {

bool FuncState::operator==(const FuncState& other) const {
  for (int i = 0; i < kNumProgRegs; ++i) {
    if (!(regs[i] == other.regs[i])) {
      return false;
    }
  }
  for (int i = 0; i < kStackSlots; ++i) {
    if (!(stack[i] == other.stack[i])) {
      return false;
    }
  }
  return callsite == other.callsite;
}

VerifierState VerifierState::Entry() {
  VerifierState state;
  state.frames.emplace_back();
  FuncState& frame = state.frames.back();
  frame.regs[kR1] = RegState::Pointer(RegType::kPtrToCtx);
  frame.regs[kR10] = RegState::Pointer(RegType::kPtrToStack);
  return state;
}

bool VerifierState::AddRef(int ref_obj_id) {
  acquired_refs.push_back(ref_obj_id);
  return true;
}

bool VerifierState::ReleaseRef(int ref_obj_id) {
  auto it = std::find(acquired_refs.begin(), acquired_refs.end(), ref_obj_id);
  if (it == acquired_refs.end()) {
    return false;
  }
  acquired_refs.erase(it);
  return true;
}

std::string VerifierState::ToString() const {
  std::string out;
  const FuncState& frame = cur();
  for (int i = 0; i < kNumProgRegs; ++i) {
    if (frame.regs[i].type == RegType::kNotInit) {
      continue;
    }
    out += " R" + std::to_string(i) + "=" + frame.regs[i].ToString();
  }
  for (int i = 0; i < kStackSlots; ++i) {
    if (frame.stack[i].type == SlotType::kInvalid) {
      continue;
    }
    const int off = -8 * (i + 1);
    out += " fp" + std::to_string(off) + "=";
    switch (frame.stack[i].type) {
      case SlotType::kSpill:
        out += frame.stack[i].spilled_reg.ToString();
        break;
      case SlotType::kMisc:
        out += "mmmm";
        break;
      case SlotType::kZero:
        out += "0000";
        break;
      default:
        break;
    }
  }
  return out;
}

namespace {

bool SlotSubsumes(const StackSlot& old_slot, const StackSlot& cur_slot) {
  if (old_slot.type == SlotType::kInvalid) {
    return true;  // old path never relied on this slot
  }
  if (old_slot.type == SlotType::kMisc) {
    // Misc admits any data except spilled pointers the program may reload.
    return cur_slot.type == SlotType::kMisc || cur_slot.type == SlotType::kZero ||
           (cur_slot.type == SlotType::kSpill &&
            cur_slot.spilled_reg.type == RegType::kScalar);
  }
  if (old_slot.type != cur_slot.type) {
    return false;
  }
  if (old_slot.type == SlotType::kSpill) {
    return RegSubsumes(old_slot.spilled_reg, cur_slot.spilled_reg);
  }
  return true;
}

}  // namespace

bool StateSubsumes(const VerifierState& old_state, const VerifierState& cur_state) {
  if (old_state.frames.size() != cur_state.frames.size()) {
    return false;
  }
  if (old_state.acquired_refs != cur_state.acquired_refs) {
    return false;
  }
  for (size_t f = 0; f < old_state.frames.size(); ++f) {
    const FuncState& old_frame = old_state.frames[f];
    const FuncState& cur_frame = cur_state.frames[f];
    if (old_frame.callsite != cur_frame.callsite) {
      return false;
    }
    for (int i = 0; i < kNumProgRegs; ++i) {
      if (!RegSubsumes(old_frame.regs[i], cur_frame.regs[i])) {
        return false;
      }
    }
    for (int i = 0; i < kStackSlots; ++i) {
      if (!SlotSubsumes(old_frame.stack[i], cur_frame.stack[i])) {
        return false;
      }
    }
  }
  return true;
}

bool StateEqual(const VerifierState& a, const VerifierState& b) {
  return a.frames == b.frames && a.acquired_refs == b.acquired_refs;
}

}  // namespace bpf
