#include "src/verifier/verifier_state.h"

#include <algorithm>

namespace bpf {

bool FuncState::operator==(const FuncState& other) const {
  for (int i = 0; i < kNumProgRegs; ++i) {
    if (!(regs[i] == other.regs[i])) {
      return false;
    }
  }
  // The sparse-payload invariant (see the struct comment) makes this
  // memberwise comparison equivalent to the old dense per-slot one.
  return stack_types == other.stack_types && spills == other.spills &&
         callsite == other.callsite;
}

VerifierState VerifierState::Entry() {
  VerifierState state;
  state.frames.emplace_back();
  FuncState& frame = state.frames.back();
  frame.regs[kR1] = RegState::Pointer(RegType::kPtrToCtx);
  frame.regs[kR10] = RegState::Pointer(RegType::kPtrToStack);
  return state;
}

bool VerifierState::AddRef(int ref_obj_id) {
  acquired_refs.push_back(ref_obj_id);
  return true;
}

bool VerifierState::ReleaseRef(int ref_obj_id) {
  auto it = std::find(acquired_refs.begin(), acquired_refs.end(), ref_obj_id);
  if (it == acquired_refs.end()) {
    return false;
  }
  acquired_refs.erase(it);
  return true;
}

std::string VerifierState::ToString() const {
  std::string out;
  const FuncState& frame = cur();
  for (int i = 0; i < kNumProgRegs; ++i) {
    if (frame.regs[i].type == RegType::kNotInit) {
      continue;
    }
    out += " R" + std::to_string(i) + "=" + frame.regs[i].ToString();
  }
  for (int i = 0; i < kStackSlots; ++i) {
    if (frame.slot_type(i) == SlotType::kInvalid) {
      continue;
    }
    const int off = -8 * (i + 1);
    out += " fp" + std::to_string(off) + "=";
    switch (frame.slot_type(i)) {
      case SlotType::kSpill:
        out += frame.SpillData(i).ToString();
        break;
      case SlotType::kMisc:
        out += "mmmm";
        break;
      case SlotType::kZero:
        out += "0000";
        break;
      default:
        break;
    }
  }
  return out;
}

namespace {

bool SlotSubsumes(const FuncState& old_frame, const FuncState& cur_frame, int i) {
  const SlotType old_type = old_frame.slot_type(i);
  const SlotType cur_type = cur_frame.slot_type(i);
  if (old_type == SlotType::kInvalid) {
    return true;  // old path never relied on this slot
  }
  if (old_type == SlotType::kMisc) {
    // Misc admits any data except spilled pointers the program may reload.
    return cur_type == SlotType::kMisc || cur_type == SlotType::kZero ||
           (cur_type == SlotType::kSpill &&
            cur_frame.SpillData(i).type == RegType::kScalar);
  }
  if (old_type != cur_type) {
    return false;
  }
  if (old_type == SlotType::kSpill) {
    return RegSubsumes(old_frame.SpillData(i), cur_frame.SpillData(i));
  }
  return true;
}

}  // namespace

bool StateSubsumes(const VerifierState& old_state, const VerifierState& cur_state) {
  if (old_state.frames.size() != cur_state.frames.size()) {
    return false;
  }
  if (old_state.acquired_refs != cur_state.acquired_refs) {
    return false;
  }
  for (size_t f = 0; f < old_state.frames.size(); ++f) {
    const FuncState& old_frame = old_state.frames[f];
    const FuncState& cur_frame = cur_state.frames[f];
    if (old_frame.callsite != cur_frame.callsite) {
      return false;
    }
    for (int i = 0; i < kNumProgRegs; ++i) {
      if (!RegSubsumes(old_frame.regs[i], cur_frame.regs[i])) {
        return false;
      }
    }
    for (int i = 0; i < kStackSlots; ++i) {
      if (!SlotSubsumes(old_frame, cur_frame, i)) {
        return false;
      }
    }
  }
  return true;
}

bool StateEqual(const VerifierState& a, const VerifierState& b) {
  return a.frames == b.frames && a.acquired_refs == b.acquired_refs;
}

uint64_t StateFingerprint(const VerifierState& state) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ (state.frames.size() * 0xff51afd7ed558ccdull);
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0xff51afd7ed558ccdull;
    h = (h << 23) | (h >> 41);
  };
  // Soundness rule: every value mixed in must be a deterministic function of
  // fields the member-wise operator== chains compare, in a fixed order.
  // Omitting or combining fields is fine (equal states still collide onto
  // one fingerprint, and a collision merely costs the full StateEqual
  // fallback); mixing anything outside the compared set is not. The
  // selection below is deliberately slim — this runs once per back-edge
  // arrival at a prune point, and three words per register discriminate the
  // states loops actually produce (the induction variable moves its value
  // and bounds together).
  const auto reg_digest = [&mix](const RegState& reg) {
    mix(static_cast<uint64_t>(reg.type) |
        (static_cast<uint64_t>(static_cast<uint32_t>(reg.off)) << 8) |
        (static_cast<uint64_t>(reg.id) << 40));
    mix(reg.var_off.value);
    mix(static_cast<uint64_t>(reg.smin) ^ (reg.umax * 0x9e3779b97f4a7c15ull));
  };
  mix(state.acquired_refs.size());
  for (int ref : state.acquired_refs) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(ref)) + 0x100);
  }
  for (const FuncState& frame : state.frames) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(frame.callsite)) + 1);
    for (const RegState& reg : frame.regs) {
      reg_digest(reg);
    }
    for (int i = 0; i < kStackSlots; i += 8) {
      uint64_t word = 0;
      for (int j = 0; j < 8; ++j) {
        word |= static_cast<uint64_t>(frame.stack_types[i + j]) << (8 * j);
      }
      mix(word);
    }
    // Entries are slot-ordered, so this mixes the same values in the same
    // order as a dense ascending slot walk; stale payloads under non-spill
    // types are compared by operator== but (soundly) omitted here.
    for (const SpillSlot& entry : frame.spills) {
      if (frame.slot_type(entry.slot) != SlotType::kSpill) {
        continue;
      }
      mix(static_cast<uint64_t>(entry.slot) + 0x200);
      reg_digest(entry.reg);
    }
  }
  return h;
}

}  // namespace bpf
