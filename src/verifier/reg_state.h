// Abstract register state: type lattice plus value-tracking bounds, closely
// following the kernel's struct bpf_reg_state (kernel/bpf/verifier.c).

#ifndef SRC_VERIFIER_REG_STATE_H_
#define SRC_VERIFIER_REG_STATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "src/verifier/tnum.h"

namespace bpf {

inline constexpr int64_t kS64Min = std::numeric_limits<int64_t>::min();
inline constexpr int64_t kS64Max = std::numeric_limits<int64_t>::max();
inline constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();
inline constexpr int32_t kS32Min = std::numeric_limits<int32_t>::min();
inline constexpr int32_t kS32Max = std::numeric_limits<int32_t>::max();
inline constexpr uint32_t kU32Max = std::numeric_limits<uint32_t>::max();

// Register types, mirroring enum bpf_reg_type. The *_OR_NULL variants model
// the kernel's PTR_MAYBE_NULL flag.
enum class RegType : uint8_t {
  kNotInit,
  kScalar,
  kPtrToCtx,
  kConstPtrToMap,
  kPtrToMapValue,
  kPtrToMapValueOrNull,
  kPtrToStack,
  kPtrToPacket,
  kPtrToPacketEnd,
  kPtrToBtfId,
  kPtrToMem,
  kPtrToMemOrNull,
};

const char* RegTypeName(RegType type);

inline bool IsPointerType(RegType type) {
  return type != RegType::kNotInit && type != RegType::kScalar;
}

inline bool IsOrNullType(RegType type) {
  return type == RegType::kPtrToMapValueOrNull || type == RegType::kPtrToMemOrNull;
}

// The non-null counterpart of an _OR_NULL type.
RegType NonNullVariant(RegType type);

struct RegState {
  RegType type = RegType::kNotInit;

  // Fixed (compile-time constant) part of a pointer offset.
  int32_t off = 0;

  // Value tracking. For scalars this is the value itself; for pointers it is
  // the variable part of the offset.
  Tnum var_off = TnumUnknown();
  int64_t smin = kS64Min;
  int64_t smax = kS64Max;
  uint64_t umin = 0;
  uint64_t umax = kU64Max;
  int32_t s32_min = kS32Min;
  int32_t s32_max = kS32Max;
  uint32_t u32_min = 0;
  uint32_t u32_max = kU32Max;

  // Identity for null-tracking and equal-scalar propagation: registers that
  // copy a value share the id, so refining one refines all.
  uint32_t id = 0;

  // Type-specific payload.
  int map_id = 0;       // kConstPtrToMap / kPtrToMapValue*
  int btf_id = 0;       // kPtrToBtfId
  uint32_t mem_size = 0;  // kPtrToMem*
  uint16_t pkt_range = 0;  // kPtrToPacket: verified accessible bytes past off

  // Reference tracking for acquired objects (kfunc task_acquire).
  int ref_obj_id = 0;

  // ---- Constructors / markers ----
  static RegState NotInit() { return RegState{}; }
  static RegState Unknown();          // unknown scalar
  static RegState Known(uint64_t v);  // constant scalar
  static RegState Pointer(RegType type, int32_t off = 0);

  bool IsConst() const { return type == RegType::kScalar && var_off.IsConst(); }
  uint64_t ConstValue() const { return var_off.value; }

  // ---- Bounds machinery (ports of the kernel helpers) ----
  void MarkUnknown();
  void MarkKnown(uint64_t value);
  void SetUnboundedBounds();
  void Set32Unbounded();

  // __update_reg_bounds: refine min/max from var_off.
  void UpdateBounds();
  // __reg_deduce_bounds: cross-deduce signed/unsigned bounds.
  void DeduceBounds();
  // __reg_bound_offset: refine var_off from bounds.
  void BoundOffset();
  // Full pipeline, as reg_bounds_sync.
  void Sync() {
    UpdateBounds();
    DeduceBounds();
    BoundOffset();
    UpdateBounds();
  }

  // Zero-extends the 64-bit bounds from the 32-bit subrange (kernel:
  // __reg_assign_32_into_64 + zext_32_to_64).
  void Assign32Into64();
  // Truncates to 32 bits (after a 32-bit ALU op).
  void ZExt32();

  // True when the scalar's concrete value is fully known.
  bool BoundsSane() const;

  std::string ToString() const;

  bool operator==(const RegState& other) const = default;
};

// Subsumption check for state pruning: every concrete value admitted by
// |cur| must be admitted by |old| (kernel: regsafe, simplified -- ids must
// match exactly rather than via an idmap).
bool RegSubsumes(const RegState& old_reg, const RegState& cur_reg);

// The verifier's joined abstract claim about one register at one instruction,
// accumulated over every explored path that reached it. Pruned arrivals are
// subsumed by an already-joined state, so a claim over-approximates every
// concrete execution -- any runtime value outside it is a range-analysis
// soundness bug (Indicator #3, src/analysis/state_audit.h).
struct RegClaim {
  enum class Status : uint8_t { kUnseen, kValid, kInvalid };

  Status status = Status::kUnseen;
  Tnum var_off = TnumConst(0);
  int64_t smin = 0;
  int64_t smax = 0;
  uint64_t umin = 0;
  uint64_t umax = 0;
  int32_t s32_min = 0;
  int32_t s32_max = 0;
  uint32_t u32_min = 0;
  uint32_t u32_max = 0;

  // Joins |reg| into the claim. A register that is not a scalar on some path
  // (pointer, not initialized) invalidates the claim permanently: its runtime
  // bit pattern is not comparable against scalar bounds. Inline: this runs
  // once per tracked register per verified instruction, and the invalid/
  // non-scalar early outs are the overwhelmingly common paths.
  void Observe(const RegState& reg) {
    if (status == Status::kInvalid) {
      return;
    }
    if (reg.type != RegType::kScalar) {
      status = Status::kInvalid;
      return;
    }
    if (status == Status::kUnseen) {
      status = Status::kValid;
      var_off = reg.var_off;
      smin = reg.smin;
      smax = reg.smax;
      umin = reg.umin;
      umax = reg.umax;
      s32_min = reg.s32_min;
      s32_max = reg.s32_max;
      u32_min = reg.u32_min;
      u32_max = reg.u32_max;
      return;
    }
    var_off = TnumUnion(var_off, reg.var_off);
    smin = std::min(smin, reg.smin);
    smax = std::max(smax, reg.smax);
    umin = std::min(umin, reg.umin);
    umax = std::max(umax, reg.umax);
    s32_min = std::min(s32_min, reg.s32_min);
    s32_max = std::max(s32_max, reg.s32_max);
    u32_min = std::min(u32_min, reg.u32_min);
    u32_max = std::max(u32_max, reg.u32_max);
  }

  bool valid() const { return status == Status::kValid; }

  std::string ToString() const;
};

}  // namespace bpf

#endif  // SRC_VERIFIER_REG_STATE_H_
