// Helper-function and kfunc prototypes: the contract the verifier enforces at
// call sites (kernel: struct bpf_func_proto).

#ifndef SRC_VERIFIER_HELPER_PROTOS_H_
#define SRC_VERIFIER_HELPER_PROTOS_H_

#include <cstdint>
#include <vector>

#include "src/ebpf/program.h"
#include "src/verifier/kernel_version.h"

namespace bpf {

// Helper ids (matching Linux uapi where the helper exists there).
enum HelperId : int32_t {
  kHelperMapLookupElem = 1,
  kHelperMapUpdateElem = 2,
  kHelperMapDeleteElem = 3,
  kHelperKtimeGetNs = 5,
  kHelperTracePrintk = 6,
  kHelperGetPrandomU32 = 7,
  kHelperGetSmpProcessorId = 8,
  kHelperGetCurrentPidTgid = 14,
  kHelperGetCurrentComm = 16,
  kHelperPerfEventOutput = 25,
  kHelperGetCurrentTask = 35,
  kHelperSendSignal = 109,
  kHelperGetCurrentTaskBtf = 112,
  kHelperRingbufOutput = 130,
  kHelperTaskStorageGet = 156,
  kHelperTaskStorageDelete = 157,
  kHelperLoop = 181,
};

// Internal function ids used by rewrite passes (never accepted from user
// programs; the encoding validator rejects ids in this range).
enum InternalFuncId : int32_t {
  kInternalBase = 0x70000000,
  kAsanLoad8 = kInternalBase + 1,
  kAsanLoad16,
  kAsanLoad32,
  kAsanLoad64,
  kAsanStore8,
  kAsanStore16,
  kAsanStore32,
  kAsanStore64,
  kAsanAluCheckPos,  // R1 = runtime offset, R2 = alu_limit (positive direction)
  kAsanAluCheckNeg,
  // PTR_TO_BTF_ID loads are exception-handled on NULL; these variants skip
  // the null-deref report while still catching OOB/UAF.
  kAsanLoadBtf8,
  kAsanLoadBtf16,
  kAsanLoadBtf32,
  kAsanLoadBtf64,
};

enum class ArgType : uint8_t {
  kNone,            // argument unused
  kAnything,        // any initialized value
  kConstMapPtr,     // CONST_PTR_TO_MAP
  kPtrToMapKey,     // readable memory of key_size bytes
  kPtrToMapValue,   // readable memory of value_size bytes
  kPtrToMemRo,      // readable memory, size in the next kConstSize arg
  kPtrToMemWo,      // writable memory, size in the next kConstSize arg
  kConstSize,       // scalar with known bounds, pairs with a kPtrToMem* arg
  kPtrToCtx,        // program context
  kPtrToBtfTask,    // PTR_TO_BTF_ID of task_struct
  kScalar,          // any scalar
};

enum class RetType : uint8_t {
  kInteger,            // unknown scalar
  kVoid,               // unknown scalar (nothing meaningful)
  kPtrToMapValueOrNull,
  kPtrToBtfTaskOrNull,  // NULL-checked BTF pointer (becomes kPtrToBtfId)
  kPtrToBtfTask,        // trusted, no null check required
};

struct HelperProto {
  int32_t id;
  const char* name;
  RetType ret;
  ArgType args[5];
  // Behavioural flags consumed by verifier checks and attach-time policy.
  bool acquires_lock = false;   // may take a kernel lock (contention path)
  bool calls_printk = false;    // enters the trace_printk path
  bool sends_signal = false;    // restricted in irq context
  bool uses_irq_work = false;   // schedules irq_work
};

struct KfuncProto {
  int32_t btf_func_id;
  const char* name;
  RetType ret;
  ArgType args[5];
  bool acquires_ref = false;  // returned object must be released
  bool releases_ref = false;  // first arg must be an acquired object
};

// Prototype lookup for a given kernel version and program type; nullptr when
// the helper does not exist or is not allowed for the program type.
const HelperProto* FindHelperProto(int32_t id, KernelVersion version, ProgType prog_type);
const KfuncProto* FindKfuncProto(int32_t btf_func_id, KernelVersion version);

// Every helper id available in |version| for |prog_type| (generator input).
std::vector<int32_t> AvailableHelpers(KernelVersion version, ProgType prog_type);
std::vector<int32_t> AvailableKfuncs(KernelVersion version);

// Dense ordinals for coverage-site indexing (-1 when unknown).
int HelperOrdinal(int32_t id);
int KfuncOrdinal(int32_t btf_func_id);
inline constexpr int kMaxHelperOrdinals = 32;
inline constexpr int kMaxKfuncOrdinals = 8;

}  // namespace bpf

#endif  // SRC_VERIFIER_HELPER_PROTOS_H_
