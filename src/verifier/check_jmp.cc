// Conditional-jump checking: branch-outcome evaluation from bounds
// (is_branch_taken), per-branch range refinement (reg_set_min_max), null-
// pointer branch marking, packet range discovery, and the nullness
// propagation feature carrying injectable bug #1.

#include <algorithm>
#include <cerrno>

#include "src/kernel/coverage.h"
#include "src/verifier/checker.h"

namespace bpf {

// Branch outcome: 1 taken, 0 not taken, -1 unknown.
int BranchOutcome(const RegState& reg, uint64_t val, uint8_t op, bool is32) {
  if (is32) {
    val = static_cast<uint32_t>(val);  // JMP32 compares the subregisters
  }
  const uint64_t umin = is32 ? reg.u32_min : reg.umin;
  const uint64_t umax = is32 ? reg.u32_max : reg.umax;
  const int64_t smin = is32 ? reg.s32_min : reg.smin;
  const int64_t smax = is32 ? reg.s32_max : reg.smax;
  const int64_t sval = is32 ? static_cast<int64_t>(static_cast<int32_t>(val))
                            : static_cast<int64_t>(val);
  const Tnum var = is32 ? TnumSubreg(reg.var_off) : reg.var_off;

  switch (op) {
    case kJmpJeq:
      if (var.IsConst() && var.value == val) {
        return 1;
      }
      if (!var.Contains(val) || val < umin || val > umax ||
          sval < smin || sval > smax) {
        return 0;
      }
      return -1;
    case kJmpJne: {
      const int eq = BranchOutcome(reg, val, kJmpJeq, is32);
      return eq < 0 ? -1 : 1 - eq;
    }
    case kJmpJgt:
      if (umin > val) return 1;
      if (umax <= val) return 0;
      return -1;
    case kJmpJge:
      if (umin >= val) return 1;
      if (umax < val) return 0;
      return -1;
    case kJmpJlt:
      if (umax < val) return 1;
      if (umin >= val) return 0;
      return -1;
    case kJmpJle:
      if (umax <= val) return 1;
      if (umin > val) return 0;
      return -1;
    case kJmpJsgt:
      if (smin > sval) return 1;
      if (smax <= sval) return 0;
      return -1;
    case kJmpJsge:
      if (smin >= sval) return 1;
      if (smax < sval) return 0;
      return -1;
    case kJmpJslt:
      if (smax < sval) return 1;
      if (smin >= sval) return 0;
      return -1;
    case kJmpJsle:
      if (smax <= sval) return 1;
      if (smin > sval) return 0;
      return -1;
    case kJmpJset:
      if ((var.value & val) != 0) return 1;
      if (((var.value | var.mask) & val) == 0) return 0;
      return -1;
    default:
      return -1;
  }
}

namespace {

// The op that holds on the fall-through path of `op`.
uint8_t InverseOp(uint8_t op) {
  switch (op) {
    case kJmpJeq:
      return kJmpJne;
    case kJmpJne:
      return kJmpJeq;
    case kJmpJgt:
      return kJmpJle;
    case kJmpJge:
      return kJmpJlt;
    case kJmpJlt:
      return kJmpJge;
    case kJmpJle:
      return kJmpJgt;
    case kJmpJsgt:
      return kJmpJsle;
    case kJmpJsge:
      return kJmpJslt;
    case kJmpJslt:
      return kJmpJsge;
    case kJmpJsle:
      return kJmpJsgt;
    default:
      return op;  // JSET handled separately
  }
}

// Injectable bug #12: after a JMP32 unsigned lower-bound refinement
// (`w_reg >= val` / `w_reg > val` held), the buggy code also raises s32_min
// as if the comparison had been signed. Wrong whenever the runtime
// subregister has its sign bit set: 0x80000000 >= 1 holds unsigned, but its
// signed value is INT32_MIN. No Sync() follows, so the corruption never
// leaves the signed-32 domain (see bug_registry.h).
void BuggyJmp32SignedRefine(RegState& reg, uint8_t op, uint32_t val) {
  if (reg.type != RegType::kScalar || val >= 0x7fffffffu) {
    return;
  }
  int32_t bound;
  if (op == kJmpJge) {
    bound = static_cast<int32_t>(val);
  } else if (op == kJmpJgt) {
    bound = static_cast<int32_t>(val) + 1;
  } else {
    return;
  }
  if (bound > reg.s32_max) {
    return;  // would invert the interval; the buggy code bails like kernel does
  }
  reg.s32_min = std::max(reg.s32_min, bound);
}

}  // namespace

// Refines |reg| knowing `reg <op> val` holds (64- or 32-bit comparison).
void RefineScalarAgainstConst(RegState& reg, uint8_t op, uint64_t val, bool is32) {
  if (reg.type != RegType::kScalar) {
    return;
  }
  if (is32) {
    val = static_cast<uint32_t>(val);  // JMP32 compares the subregisters
  }
  BVF_COV_IDX(32, (op >> 4) + (is32 ? 16 : 0));
  const int64_t sval = is32 ? static_cast<int64_t>(static_cast<int32_t>(val))
                            : static_cast<int64_t>(val);
  switch (op) {
    case kJmpJeq:
      if (is32) {
        reg.u32_min = std::max(reg.u32_min, static_cast<uint32_t>(val));
        reg.u32_max = std::min(reg.u32_max, static_cast<uint32_t>(val));
        reg.s32_min = std::max(reg.s32_min, static_cast<int32_t>(val));
        reg.s32_max = std::min(reg.s32_max, static_cast<int32_t>(val));
        reg.var_off = TnumWithSubreg(
            reg.var_off, TnumIntersect(TnumSubreg(reg.var_off), TnumConst(val)));
      } else {
        reg.var_off = TnumIntersect(reg.var_off, TnumConst(val));
        reg.umin = std::max(reg.umin, val);
        reg.umax = std::min(reg.umax, val);
        reg.smin = std::max(reg.smin, sval);
        reg.smax = std::min(reg.smax, sval);
      }
      break;
    case kJmpJne:
      break;  // a single excluded point rarely tightens interval bounds
    case kJmpJgt:
      if (val == (is32 ? static_cast<uint64_t>(kU32Max) : kU64Max)) {
        break;
      }
      if (is32) {
        reg.u32_min = std::max(reg.u32_min, static_cast<uint32_t>(val) + 1);
      } else {
        reg.umin = std::max(reg.umin, val + 1);
      }
      break;
    case kJmpJge:
      if (is32) {
        reg.u32_min = std::max(reg.u32_min, static_cast<uint32_t>(val));
      } else {
        reg.umin = std::max(reg.umin, val);
      }
      break;
    case kJmpJlt:
      if (val == 0) {
        break;
      }
      if (is32) {
        reg.u32_max = std::min(reg.u32_max, static_cast<uint32_t>(val) - 1);
      } else {
        reg.umax = std::min(reg.umax, val - 1);
      }
      break;
    case kJmpJle:
      if (is32) {
        reg.u32_max = std::min(reg.u32_max, static_cast<uint32_t>(val));
      } else {
        reg.umax = std::min(reg.umax, val);
      }
      break;
    case kJmpJsgt:
      if (sval == (is32 ? kS32Max : kS64Max)) {
        break;
      }
      if (is32) {
        reg.s32_min = std::max(reg.s32_min, static_cast<int32_t>(sval) + 1);
      } else {
        reg.smin = std::max(reg.smin, sval + 1);
      }
      break;
    case kJmpJsge:
      if (is32) {
        reg.s32_min = std::max(reg.s32_min, static_cast<int32_t>(sval));
      } else {
        reg.smin = std::max(reg.smin, sval);
      }
      break;
    case kJmpJslt:
      if (sval == (is32 ? kS32Min : kS64Min)) {
        break;
      }
      if (is32) {
        reg.s32_max = std::min(reg.s32_max, static_cast<int32_t>(sval) - 1);
      } else {
        reg.smax = std::min(reg.smax, sval - 1);
      }
      break;
    case kJmpJsle:
      if (is32) {
        reg.s32_max = std::min(reg.s32_max, static_cast<int32_t>(sval));
      } else {
        reg.smax = std::min(reg.smax, sval);
      }
      break;
    default:
      break;
  }
  reg.Sync();
  if (!reg.BoundsSane()) {
    // Contradictory branch: this path is dead; collapse to a harmless const.
    reg.MarkKnown(is32 ? static_cast<uint32_t>(val) : val);
  }
}

namespace {

// Refines both registers knowing `a <op> b` holds; reg-reg form uses each
// other's interval endpoints.
void RefineScalarVsScalar(RegState& a, RegState& b, uint8_t op, bool is32) {
  if (a.type != RegType::kScalar || b.type != RegType::kScalar) {
    return;
  }
  if (b.IsConst()) {
    RefineScalarAgainstConst(a, op, is32 ? TnumSubreg(b.var_off).value : b.ConstValue(), is32);
    return;
  }
  if (a.IsConst()) {
    // a <op> b  <=>  b <inverse-direction op> a
    uint8_t flipped = op;
    switch (op) {
      case kJmpJgt: flipped = kJmpJlt; break;
      case kJmpJge: flipped = kJmpJle; break;
      case kJmpJlt: flipped = kJmpJgt; break;
      case kJmpJle: flipped = kJmpJge; break;
      case kJmpJsgt: flipped = kJmpJslt; break;
      case kJmpJsge: flipped = kJmpJsle; break;
      case kJmpJslt: flipped = kJmpJsgt; break;
      case kJmpJsle: flipped = kJmpJsge; break;
      default: break;
    }
    RefineScalarAgainstConst(b, flipped, is32 ? TnumSubreg(a.var_off).value : a.ConstValue(), is32);
    return;
  }
  if (is32) {
    return;  // interval-vs-interval refinement kept to the 64-bit domain
  }
  switch (op) {
    case kJmpJgt:
      if (b.umin != kU64Max) a.umin = std::max(a.umin, b.umin + 1);
      if (a.umax != 0) b.umax = std::min(b.umax, a.umax - 1);
      break;
    case kJmpJge:
      a.umin = std::max(a.umin, b.umin);
      b.umax = std::min(b.umax, a.umax);
      break;
    case kJmpJlt:
      if (b.umax != 0) a.umax = std::min(a.umax, b.umax - 1);
      if (a.umin != kU64Max) b.umin = std::max(b.umin, a.umin + 1);
      break;
    case kJmpJle:
      a.umax = std::min(a.umax, b.umax);
      b.umin = std::max(b.umin, a.umin);
      break;
    case kJmpJsgt:
      if (b.smin != kS64Max) a.smin = std::max(a.smin, b.smin + 1);
      if (a.smax != kS64Min) b.smax = std::min(b.smax, a.smax - 1);
      break;
    case kJmpJsge:
      a.smin = std::max(a.smin, b.smin);
      b.smax = std::min(b.smax, a.smax);
      break;
    case kJmpJslt:
      if (b.smax != kS64Min) a.smax = std::min(a.smax, b.smax - 1);
      if (a.smin != kS64Max) b.smin = std::max(b.smin, a.smin + 1);
      break;
    case kJmpJsle:
      a.smax = std::min(a.smax, b.smax);
      b.smin = std::max(b.smin, a.smin);
      break;
    case kJmpJeq: {
      a.umin = b.umin = std::max(a.umin, b.umin);
      a.umax = b.umax = std::min(a.umax, b.umax);
      a.smin = b.smin = std::max(a.smin, b.smin);
      a.smax = b.smax = std::min(a.smax, b.smax);
      const Tnum both = TnumIntersect(a.var_off, b.var_off);
      a.var_off = b.var_off = both;
      break;
    }
    default:
      break;
  }
  a.Sync();
  b.Sync();
  if (!a.BoundsSane()) {
    a.MarkUnknown();
  }
  if (!b.BoundsSane()) {
    b.MarkUnknown();
  }
}

}  // namespace

void Checker::MarkPtrOrNull(VerifierState& state, uint32_t id, bool is_null) {
  if (id == 0) {
    return;
  }
  auto mark = [&](RegState& reg) {
    if (!IsOrNullType(reg.type) || reg.id != id) {
      return;
    }
    if (is_null) {
      // The kernel marks the register as a known-zero scalar. Note this
      // deliberately discards any accumulated offset: with CVE-2022-23222's
      // missing ALU filter that discard is exactly the exploited flaw.
      const int map_id = 0;
      (void)map_id;
      reg.MarkKnown(0);
    } else {
      reg.type = NonNullVariant(reg.type);
      reg.id = 0;
    }
  };
  for (FuncState& frame : state.frames) {
    for (int i = 0; i < kNumProgRegs; ++i) {
      mark(frame.regs[i]);
    }
    for (SpillSlot& entry : frame.spills) {
      if (frame.slot_type(entry.slot) == SlotType::kSpill) {
        mark(entry.reg);
      }
    }
  }
}

void Checker::FindGoodPktPointers(VerifierState& state, uint32_t pkt_id, uint16_t range) {
  if (pkt_id == 0 || range == 0) {
    return;
  }
  auto improve = [&](RegState& reg) {
    if (reg.type == RegType::kPtrToPacket && reg.id == pkt_id) {
      reg.pkt_range = std::max(reg.pkt_range, range);
    }
  };
  for (FuncState& frame : state.frames) {
    for (int i = 0; i < kNumProgRegs; ++i) {
      improve(frame.regs[i]);
    }
    for (SpillSlot& entry : frame.spills) {
      if (frame.slot_type(entry.slot) == SlotType::kSpill) {
        improve(entry.reg);
      }
    }
  }
}

int Checker::CheckCondJmp(VerifierState& state, const Insn& insn, int idx, int* next) {
  const bool is32 = insn.Class() == kClassJmp32;
  const uint8_t op = insn.JmpOp();
  BVF_COV_IDX(32, (op >> 4) + (is32 ? 16 : 0));

  if (int err = CheckRegRead(state, insn.dst, idx); err != 0) {
    return err;
  }
  RegState src_val;
  if (insn.SrcIsReg()) {
    if (int err = CheckRegRead(state, insn.src, idx); err != 0) {
      return err;
    }
    src_val = Reg(state, insn.src);
  } else {
    src_val = RegState::Known(is32 ? static_cast<uint32_t>(insn.imm)
                                   : static_cast<uint64_t>(static_cast<int64_t>(insn.imm)));
  }

  const RegState dst_val = Reg(state, insn.dst);
  const int taken_idx = idx + 1 + insn.off;
  const int fall_idx = idx + 1;

  const bool dst_is_ptr = IsPointerType(dst_val.type);
  const bool src_is_ptr = IsPointerType(src_val.type);

  // ---- Null-pointer checks: `if rX == 0` / `if rX != 0` on OR_NULL types.
  const bool src_is_zero = src_val.type == RegType::kScalar && src_val.var_off.EqualsConst(0);
  if (IsOrNullType(dst_val.type) && src_is_zero && (op == kJmpJeq || op == kJmpJne) && !is32) {
    BVF_COV();
    VerifierState taken = CloneState(state);
    MarkPtrOrNull(taken, dst_val.id, /*is_null=*/op == kJmpJeq);
    MarkPtrOrNull(state, dst_val.id, /*is_null=*/op != kJmpJeq);
    PushBranch(taken_idx, std::move(taken), taken_idx <= idx);
    *next = fall_idx;
    return 0;
  }

  // ---- Packet range discovery: pkt pointer vs pkt_end comparisons.
  if (!is32 && insn.SrcIsReg() &&
      ((dst_val.type == RegType::kPtrToPacket && src_val.type == RegType::kPtrToPacketEnd) ||
       (dst_val.type == RegType::kPtrToPacketEnd && src_val.type == RegType::kPtrToPacket))) {
    BVF_COV();
    const bool pkt_is_dst = dst_val.type == RegType::kPtrToPacket;
    const RegState& pkt = pkt_is_dst ? dst_val : src_val;
    const uint16_t range =
        pkt.off > 0 && pkt.off <= 0xffff ? static_cast<uint16_t>(pkt.off) : 0;

    VerifierState taken = CloneState(state);
    // In which branch does `data + off <= data_end` hold?
    bool good_in_taken = false;
    bool good_in_fall = false;
    switch (op) {
      case kJmpJle:
        good_in_taken = pkt_is_dst;
        good_in_fall = !pkt_is_dst;
        break;
      case kJmpJlt:
        good_in_taken = pkt_is_dst;
        good_in_fall = !pkt_is_dst;
        break;
      case kJmpJgt:
        good_in_taken = !pkt_is_dst;
        good_in_fall = pkt_is_dst;
        break;
      case kJmpJge:
        good_in_taken = !pkt_is_dst;
        good_in_fall = pkt_is_dst;
        break;
      default:
        break;
    }
    if (good_in_taken) {
      FindGoodPktPointers(taken, pkt.id, range);
    }
    if (good_in_fall) {
      FindGoodPktPointers(state, pkt.id, range);
    }
    PushBranch(taken_idx, std::move(taken), taken_idx <= idx);
    *next = fall_idx;
    return 0;
  }

  // ---- Nullness propagation across pointer equality (bpf-next feature,
  // commit bfeae75856ab; carries injectable bug #1).
  if (features_.nullness_propagation && !is32 && insn.SrcIsReg() && dst_is_ptr && src_is_ptr &&
      (op == kJmpJeq || op == kJmpJne)) {
    BVF_COV();
    VerifierState taken = CloneState(state);
    VerifierState* eq_state = op == kJmpJeq ? &taken : &state;

    auto propagate = [&](const RegState& nullable, const RegState& other) {
      if (!IsOrNullType(nullable.type) || IsOrNullType(other.type)) {
        return;
      }
      // Fixed behaviour (the paper's patch, Listing 3): skip the propagation
      // entirely when either register is PTR_TO_BTF_ID, whose "non-null"
      // typing is not trustworthy at runtime. Bug #1 omits this filter.
      if (!env_.bugs.bug1_nullness_propagation &&
          (nullable.type == RegType::kPtrToBtfId || other.type == RegType::kPtrToBtfId)) {
        BVF_COV();
        return;
      }
      BVF_COV();
      // `nullable == other` and `other` is (believed) non-null, so in the
      // equal path `nullable` is marked non-null.
      MarkPtrOrNull(*eq_state, nullable.id, /*is_null=*/false);
    };
    propagate(dst_val, src_val);
    propagate(src_val, dst_val);

    PushBranch(taken_idx, std::move(taken), taken_idx <= idx);
    *next = fall_idx;
    return 0;
  }

  // ---- Pointer/scalar or mixed-pointer comparisons: no refinement, both
  // branches feasible (the kernel restricts some of these for unprivileged
  // loads; we follow the privileged behaviour).
  if (dst_is_ptr || src_is_ptr) {
    BVF_COV();
    VerifierState taken = CloneState(state);
    PushBranch(taken_idx, std::move(taken), taken_idx <= idx);
    *next = fall_idx;
    return 0;
  }

  // ---- Scalar comparison: evaluate statically when the bounds decide it.
  if (src_val.IsConst() || !insn.SrcIsReg()) {
    const uint64_t val =
        is32 ? TnumSubreg(src_val.var_off).value : src_val.ConstValue();
    const int taken = BranchOutcome(dst_val, val, op, is32);
    if (taken == 1) {
      BVF_COV();
      *next = taken_idx;
      return 0;
    }
    if (taken == 0) {
      BVF_COV();
      *next = fall_idx;
      return 0;
    }
  }

  // Unknown outcome: explore both branches with refined bounds. Dedicated
  // 32-bit refinement only exists from v6.1 on (the jmp32_bounds feature);
  // earlier kernels explore JMP32 branches without tightening.
  BVF_COV();
  VerifierState taken_state = CloneState(state);
  if (is32 && !features_.jmp32_bounds) {
    BVF_COV();
    PushBranch(taken_idx, std::move(taken_state), taken_idx <= idx);
    *next = fall_idx;
    return 0;
  }
  if (insn.SrcIsReg()) {
    RefineScalarVsScalar(taken_state.regs()[insn.dst], taken_state.regs()[insn.src], op, is32);
    if (op != kJmpJset) {
      RefineScalarVsScalar(state.regs()[insn.dst], state.regs()[insn.src], InverseOp(op), is32);
    }
  } else {
    const uint64_t val = is32 ? static_cast<uint32_t>(insn.imm)
                              : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
    RefineScalarAgainstConst(taken_state.regs()[insn.dst], op, val, is32);
    if (op == kJmpJset) {
      // Fall-through of JSET: the tested bits are all known zero.
      RegState& reg = state.regs()[insn.dst];
      if (reg.type == RegType::kScalar) {
        reg.var_off.mask &= ~val;
        reg.var_off.value &= ~val;
        reg.Sync();
      }
    } else {
      RefineScalarAgainstConst(state.regs()[insn.dst], InverseOp(op), val, is32);
    }
    if (env_.bugs.bug12_jmp32_signed_refine && is32) {
      BVF_COV();
      const uint32_t val32 = static_cast<uint32_t>(val);
      BuggyJmp32SignedRefine(taken_state.regs()[insn.dst], op, val32);
      if (op != kJmpJset) {
        BuggyJmp32SignedRefine(state.regs()[insn.dst], InverseOp(op), val32);
      }
    }
  }
  PushBranch(taken_idx, std::move(taken_state), taken_idx <= idx);
  *next = fall_idx;
  return 0;
}

}  // namespace bpf
