// Context-layout descriptors per program type: which fields of the context
// structure a program may read/write, and which yield packet pointers
// (kernel: the per-prog-type is_valid_access callbacks).

#include "src/verifier/verifier.h"

namespace bpf {

const CtxField* CtxDescriptor::FieldAt(int off, int size) const {
  for (const CtxField& field : fields) {
    if (off >= field.off && off + size <= field.off + field.size) {
      return &field;
    }
  }
  return nullptr;
}

namespace {

CtxDescriptor MakeSkBuff() {
  CtxDescriptor d;
  d.size = 48;
  d.fields = {
      {"len", 0, 4, false},
      {"pkt_type", 4, 4, false},
      {"mark", 8, 4, true},
      {"queue_mapping", 12, 4, false},
      {"protocol", 16, 4, false},
      {"vlan_present", 20, 4, false},
      {"priority", 24, 4, true},
      {"ifindex", 28, 4, false},
      {"data", 32, 8, false, CtxField::Special::kPktData},
      {"data_end", 40, 8, false, CtxField::Special::kPktEnd},
  };
  return d;
}

CtxDescriptor MakeXdp() {
  CtxDescriptor d;
  d.size = 32;
  d.fields = {
      {"data", 0, 8, false, CtxField::Special::kPktData},
      {"data_end", 8, 8, false, CtxField::Special::kPktEnd},
      {"data_meta", 16, 8, false},
      {"ingress_ifindex", 24, 4, false},
      {"rx_queue_index", 28, 4, false},
  };
  return d;
}

CtxDescriptor MakePtRegs() {
  CtxDescriptor d;
  d.size = 168;  // 21 8-byte registers of pt_regs
  static const char* kRegNames[] = {"r15", "r14", "r13",    "r12", "bp",  "bx",  "r11",
                                    "r10", "r9",  "r8",     "ax",  "cx",  "dx",  "si",
                                    "di",  "orig_ax", "ip", "cs",  "flags", "sp", "ss"};
  for (int i = 0; i < 21; ++i) {
    d.fields.push_back(CtxField{kRegNames[i], i * 8, 8, false});
  }
  return d;
}

CtxDescriptor MakeTracepoint() {
  CtxDescriptor d;
  d.size = 64;  // raw tracepoint args, 8 u64 slots
  static const char* kArgNames[] = {"arg0", "arg1", "arg2", "arg3",
                                    "arg4", "arg5", "arg6", "arg7"};
  for (int i = 0; i < 8; ++i) {
    d.fields.push_back(CtxField{kArgNames[i], i * 8, 8, false});
  }
  return d;
}

}  // namespace

const CtxDescriptor& CtxDescriptorFor(ProgType type) {
  static const CtxDescriptor kSkBuff = MakeSkBuff();
  static const CtxDescriptor kXdp = MakeXdp();
  static const CtxDescriptor kPtRegs = MakePtRegs();
  static const CtxDescriptor kTracepoint = MakeTracepoint();
  switch (type) {
    case ProgType::kSocketFilter:
      return kSkBuff;
    case ProgType::kXdp:
      return kXdp;
    case ProgType::kKprobe:
      return kPtRegs;
    case ProgType::kTracepoint:
      return kTracepoint;
  }
  return kSkBuff;
}

}  // namespace bpf
