// Verifier driver: CFG validation, the do_check() path-exploration loop,
// state pruning, ld_imm64 resolution, and exit checks.

#include "src/verifier/checker.h"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include "src/kernel/coverage.h"

namespace bpf {

namespace {
std::atomic<bool> g_prune_fingerprint{true};
}  // namespace

void SetPruneFingerprintEnabled(bool enabled) {
  g_prune_fingerprint.store(enabled, std::memory_order_relaxed);
}

bool PruneFingerprintEnabled() {
  return g_prune_fingerprint.load(std::memory_order_relaxed);
}

VerifierResult VerifyProgram(const Program& prog, VerifierEnv& env) {
  VerifierResult result;
  Checker checker(prog, env, result);
  checker.Run();
  return result;
}

Checker::Checker(const Program& prog, VerifierEnv& env, VerifierResult& result)
    : prog_(prog), env_(env), res_(result), features_(KernelFeatures::For(env.version)) {
  aux_.resize(prog.insns.size());
  explored_.resize(prog.insns.size());
  prune_point_.assign(prog.insns.size(), 0);
  reachable_.assign(prog.insns.size(), 0);
}

void Checker::Log(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  res_.log.append(buf);
  res_.log.push_back('\n');
}

void Checker::LogState(const VerifierState& state) {
  if (env_.verbose_log) {
    res_.log.append(state.ToString());
    res_.log.push_back('\n');
  }
}

const Map* Checker::FindMap(int map_id) const {
  if (env_.maps == nullptr) {
    return nullptr;
  }
  return env_.maps->Find(map_id);
}

int Checker::Run() {
  int err = CheckEncoding(prog_, &res_.log);
  if (err != 0) {
    BVF_COV();
    res_.err = err;
    return err;
  }
  err = CheckCfg();
  if (err != 0) {
    BVF_COV();
    res_.err = err;
    return err;
  }
  err = DoCheck();
  if (err != 0) {
    BVF_COV();
    res_.err = err;
    return err;
  }
  err = Fixup();
  if (err != 0) {
    BVF_COV();
    res_.err = err;
    return err;
  }
  BVF_COV();
  res_.insns_processed = insns_processed_;
  res_.err = 0;
  return 0;
}

// Depth-first reachability over the CFG; rejects unreachable instructions,
// jumps into the middle of ld_imm64, and calls to invalid targets.
int Checker::CheckCfg() {
  const size_t n = prog_.insns.size();
  std::vector<uint8_t> ld64_hi(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (prog_.insns[i].IsLdImm64()) {
      ld64_hi[i + 1] = 1;
      ++i;
    }
  }

  std::vector<int> work;
  work.push_back(0);
  reachable_[0] = 1;
  auto visit = [&](int target, int from) -> int {
    if (target < 0 || target >= static_cast<int>(n)) {
      BVF_COV();
      Log("insn %d: jump target %d out of range", from, target);
      return -EINVAL;
    }
    if (ld64_hi[target]) {
      BVF_COV();
      Log("insn %d: jump into the middle of ld_imm64 at %d", from, target);
      return -EINVAL;
    }
    if (!reachable_[target]) {
      reachable_[target] = 1;
      work.push_back(target);
    }
    return 0;
  };

  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    const Insn& insn = prog_.insns[i];
    if (insn.IsExit()) {
      BVF_COV();
      continue;
    }
    if (insn.IsLdImm64()) {
      if (int err = visit(i + 2, i); err != 0) {
        return err;
      }
      continue;
    }
    if (insn.IsBpfToBpfCall()) {
      BVF_COV();
      const int target = i + 1 + insn.imm;
      if (int err = visit(target, i); err != 0) {
        return err;
      }
      if (target >= 0 && target < static_cast<int>(n)) {
        prune_point_[target] = 1;
      }
      if (int err = visit(i + 1, i); err != 0) {
        return err;
      }
      continue;
    }
    if (insn.IsJmp() && insn.JmpOp() == kJmpJa) {
      const int target = i + 1 + insn.off;
      if (int err = visit(target, i); err != 0) {
        return err;
      }
      if (target >= 0 && target < static_cast<int>(n)) {
        prune_point_[target] = 1;
      }
      continue;
    }
    if (insn.IsJmp() && insn.JmpOp() != kJmpCall && insn.JmpOp() != kJmpExit) {
      BVF_COV();
      const int target = i + 1 + insn.off;
      if (int err = visit(target, i); err != 0) {
        return err;
      }
      if (target >= 0 && target < static_cast<int>(n)) {
        prune_point_[target] = 1;
      }
      if (int err = visit(i + 1, i); err != 0) {
        return err;
      }
      continue;
    }
    // Fallthrough (ALU, mem, helper calls).
    if (int err = visit(i + 1, i); err != 0) {
      return err;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!reachable_[i] && !ld64_hi[i]) {
      BVF_COV();
      Log("unreachable insn %zu", i);
      return -EINVAL;
    }
  }
  return 0;
}

VerifierState Checker::CloneState(const VerifierState& src) {
  if (state_pool_.empty()) {
    return src;
  }
  VerifierState out = std::move(state_pool_.back());
  state_pool_.pop_back();
  out = src;  // assignment into recycled capacity; no allocation
  return out;
}

void Checker::RecycleState(VerifierState&& state) {
  constexpr size_t kMaxPooledStates = 64;
  if (state_pool_.size() < kMaxPooledStates) {
    state_pool_.push_back(std::move(state));
  }
}

void Checker::PushBranch(int idx, VerifierState state, bool back_edge) {
  stack_.push_back(Pending{idx, std::move(state), back_edge});
  if (stack_.size() > res_.peak_states) {
    res_.peak_states = static_cast<uint32_t>(stack_.size());
  }
}

bool Checker::TryPrune(int idx, VerifierState& state, bool via_back_edge, int* err) {
  auto& seen = explored_[idx];
  // One fingerprint of the incoming state replaces up to kMaxExploredPerInsn
  // full state compares on the back-edge (loop-detection) path: a mismatch
  // proves inequality, a match falls through to the exact StateEqual, so the
  // prune decisions are identical with the fast path on or off. Subsumption
  // has no such shortcut (it is an order, not an equivalence), but forward
  // arrivals scan far shorter lists in practice.
  const bool use_fp = PruneFingerprintEnabled();
  // Hashing is itself a cost, so fingerprints exist only where they pay:
  // the incoming state is hashed on back-edge arrivals with a non-empty
  // list, and stored states are hashed lazily the first time a back edge
  // scans their insn. Prune points no back edge ever reaches — the large
  // majority — never hash anything.
  uint64_t fp = 0;
  bool have_fp = false;
  if (use_fp && via_back_edge && !seen.empty()) {
    fp = StateFingerprint(state);
    have_fp = true;
  }
  for (Explored& old_entry : seen) {
    if (via_back_edge) {
      if (have_fp) {
        if (!old_entry.has_fingerprint) {
          old_entry.fingerprint = StateFingerprint(old_entry.state);
          old_entry.has_fingerprint = true;
        }
        if (old_entry.fingerprint != fp) {
          continue;  // hash-unequal proves state-unequal
        }
      }
      if (StateEqual(old_entry.state, state)) {
        BVF_COV();
        Log("infinite loop detected at insn %d", idx);
        *err = -EINVAL;
        return true;
      }
      continue;
    }
    // Subsumption pruning applies to forward (converging) arrivals only.
    // Pruning a back-edge arrival against a wider state would accept loops
    // with no termination proof (the kernel's states_maybe_looping guard).
    if (StateSubsumes(old_entry.state, state)) {
      BVF_COV();
      ++res_.states_pruned;
      return true;
    }
  }
  if (seen.size() < kMaxExploredPerInsn) {
    Explored entry{fp, have_fp, CloneState(state)};
    seen.push_back(std::move(entry));
  }
  return false;
}

int Checker::DoCheck() {
  PushBranch(0, VerifierState::Entry(), /*back_edge=*/false);

  while (!stack_.empty()) {
    Pending pending = std::move(stack_.back());
    stack_.pop_back();
    int idx = pending.idx;
    VerifierState state = std::move(pending.state);
    bool via_back_edge = pending.back_edge;

    while (true) {
      if (insns_processed_++ > kMaxInsnsProcessed) {
        BVF_COV();
        Log("BPF program is too large: processed %u insns", insns_processed_);
        return -E2BIG;
      }
      if (idx < 0 || idx >= static_cast<int>(prog_.insns.size())) {
        Log("invalid insn idx %d", idx);
        return -EFAULT;
      }
      aux_[idx].seen = true;

      int err = 0;
      if (prune_point_[idx] && TryPrune(idx, state, via_back_edge, &err)) {
        if (err != 0) {
          return err;
        }
        break;  // path pruned
      }
      via_back_edge = false;

      // Record claims only for non-pruned arrivals: a pruned state is
      // subsumed by an already-recorded one, so the join stays an
      // over-approximation of every concrete execution.
      if (env_.collect_state_claims) {
        RecordStateClaims(state, idx);
      }

      if (env_.verbose_log) {
        Log("%d: %s", idx, Disassemble(prog_.insns[idx]).c_str());
        LogState(state);
      }

      int next = idx + 1;
      err = ProcessInsn(state, idx, &next);
      if (err != 0) {
        return err;
      }
      if (next == kPathEnd) {
        break;
      }
      if (next <= idx) {
        via_back_edge = true;
      }
      idx = next;
    }
    RecycleState(std::move(state));

    if (stack_.size() > kMaxPendingStates) {
      BVF_COV();
      Log("too many branch states");
      return -E2BIG;
    }
  }
  return 0;
}

void Checker::RecordStateClaims(const VerifierState& state, int idx) {
  InsnAux& aux = aux_[idx];
  std::vector<RegClaim>& claims = aux.claims;
  if (claims.empty()) {
    claims.resize(kClaimRegs);
    aux.live_claims = (1u << kClaimRegs) - 1;
  }
  const RegState* regs = state.regs();
  uint32_t live = aux.live_claims;
  for (uint32_t m = live; m != 0; m &= m - 1) {
    const int r = __builtin_ctz(m);
    RegClaim& claim = claims[r];
    claim.Observe(regs[r]);
    if (claim.status == RegClaim::Status::kInvalid) {
      live &= ~(1u << r);
    }
  }
  aux.live_claims = static_cast<uint16_t>(live);
}

int Checker::ProcessInsn(VerifierState& state, int idx, int* next) {
  const Insn& insn = prog_.insns[idx];
  switch (insn.Class()) {
    case kClassAlu:
    case kClassAlu64:
      BVF_COV();
      return CheckAluOp(state, insn, idx);
    case kClassLd:
      if (insn.IsLdImm64()) {
        BVF_COV();
        *next = idx + 2;
        return CheckLdImm64(state, insn, idx);
      }
      Log("insn %d: unsupported BPF_LD", idx);
      return -EINVAL;
    case kClassLdx:
      BVF_COV();
      return CheckMemAccess(state, insn, idx, insn.src, insn.dst, /*is_store=*/false);
    case kClassSt:
      BVF_COV();
      return CheckMemAccess(state, insn, idx, insn.dst, -1, /*is_store=*/true);
    case kClassStx:
      if (insn.IsAtomic()) {
        BVF_COV();
        return CheckMemAccess(state, insn, idx, insn.dst, insn.src, /*is_store=*/true,
                              /*is_atomic=*/true);
      }
      BVF_COV();
      return CheckMemAccess(state, insn, idx, insn.dst, insn.src, /*is_store=*/true);
    case kClassJmp:
    case kClassJmp32:
      switch (insn.JmpOp()) {
        case kJmpCall:
          if (insn.IsHelperCall()) {
            BVF_COV();
            return CheckHelperCall(state, insn, idx);
          }
          if (insn.IsKfuncCall()) {
            BVF_COV();
            return CheckKfuncCall(state, insn, idx);
          }
          BVF_COV();
          return CheckPseudoCall(state, insn, idx, next);
        case kJmpExit:
          BVF_COV();
          return CheckExit(state, idx, next);
        case kJmpJa:
          BVF_COV();
          *next = idx + 1 + insn.off;
          return 0;
        default:
          return CheckCondJmp(state, insn, idx, next);
      }
    default:
      Log("insn %d: unknown class", idx);
      return -EINVAL;
  }
}

int Checker::CheckExit(VerifierState& state, int idx, int* next) {
  if (state.frame_depth() > 1) {
    // Returning from a bpf-to-bpf subprogram: R0 flows back to the caller,
    // R1-R5 are scratched, callee frame is discarded.
    BVF_COV();
    if (int err = CheckRegRead(state, kR0, idx); err != 0) {
      return err;
    }
    RegState ret = state.regs()[kR0];
    const int callsite = state.cur().callsite;
    state.frames.pop_back();
    state.regs()[kR0] = ret;
    for (int r = kR1; r <= kR5; ++r) {
      state.regs()[r] = RegState::NotInit();
    }
    *next = callsite + 1;
    return 0;
  }

  // Main-frame exit: R0 must hold a scalar return value.
  if (int err = CheckRegRead(state, kR0, idx); err != 0) {
    return err;
  }
  if (state.regs()[kR0].type != RegType::kScalar) {
    BVF_COV();
    Log("insn %d: R0 is not a scalar at exit (type=%s)", idx,
        RegTypeName(state.regs()[kR0].type));
    return -EACCES;
  }
  if (!state.acquired_refs.empty()) {
    BVF_COV();
    Log("insn %d: reference leak: %zu acquired object(s) not released", idx,
        state.acquired_refs.size());
    return -EINVAL;
  }
  *next = kPathEnd;
  return 0;
}

int Checker::CheckLdImm64(VerifierState& state, const Insn& insn, int idx) {
  const uint64_t imm64 = (static_cast<uint64_t>(
                              static_cast<uint32_t>(prog_.insns[idx + 1].imm))
                          << 32) |
                         static_cast<uint32_t>(insn.imm);
  RegState& dst = Reg(state, insn.dst);
  if (int err = CheckRegWrite(state, insn.dst, idx); err != 0) {
    return err;
  }
  switch (insn.src) {
    case 0:
      BVF_COV();
      if (env_.bugs.bug13_ld_imm64_pessimize && imm64 >= 1 && imm64 <= 255) {
        // Bug #13 model: the wide-immediate path loses constant tracking for
        // small values. mov-imm of the same constant stays exact, so the two
        // materializations verify asymmetrically — a spurious rejection shape
        // only the metamorphic oracle can see (the program never runs wrong,
        // it merely fails to load in one of its equivalent spellings).
        dst.MarkUnknown();
        return 0;
      }
      dst.MarkKnown(imm64);
      return 0;
    case kPseudoMapFd: {
      const Map* map = FindMap(static_cast<int>(imm64));
      if (map == nullptr) {
        BVF_COV();
        Log("insn %d: map fd %d not found", idx, static_cast<int>(imm64));
        return -EBADF;
      }
      BVF_COV();
      dst = RegState::Pointer(RegType::kConstPtrToMap);
      dst.map_id = map->id();
      return 0;
    }
    case kPseudoMapValue: {
      const Map* map = FindMap(static_cast<int>(imm64 & 0xffffffff));
      if (map == nullptr || map->def().type != MapType::kArray) {
        BVF_COV();
        Log("insn %d: direct map value load needs an array map", idx);
        return -EBADF;
      }
      BVF_COV();
      dst = RegState::Pointer(RegType::kPtrToMapValue);
      dst.map_id = map->id();
      dst.id = NextId();
      return 0;
    }
    case kPseudoBtfId: {
      const int btf_struct = static_cast<int>(imm64);
      if (env_.btf == nullptr || env_.btf->Find(btf_struct) == nullptr) {
        BVF_COV();
        Log("insn %d: unknown BTF id %d", idx, btf_struct);
        return -ENOENT;
      }
      BVF_COV();
      dst = RegState::Pointer(RegType::kPtrToBtfId);
      dst.btf_id = btf_struct;
      return 0;
    }
    default:
      Log("insn %d: unsupported ld_imm64 pseudo src %d", idx, insn.src);
      return -EINVAL;
  }
}

int Checker::CheckRegRead(VerifierState& state, int regno, int idx) {
  if (regno < 0 || regno >= kNumProgRegs) {
    Log("insn %d: invalid register R%d", idx, regno);
    return -EINVAL;
  }
  if (state.regs()[regno].type == RegType::kNotInit) {
    BVF_COV();
    Log("insn %d: R%d !read_ok (uninitialized register)", idx, regno);
    return -EACCES;
  }
  return 0;
}

int Checker::CheckRegWrite(VerifierState& state, int regno, int idx) {
  if (regno == kR10) {
    BVF_COV();
    Log("insn %d: frame pointer R10 is read only", idx);
    return -EACCES;
  }
  return 0;
}

}  // namespace bpf
