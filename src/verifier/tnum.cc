#include "src/verifier/tnum.h"

#include <cstdio>

namespace bpf {

Tnum TnumConst(uint64_t value) { return Tnum{value, 0}; }

Tnum TnumUnknown() { return Tnum{0, ~0ull}; }

Tnum TnumRange(uint64_t min, uint64_t max) {
  if (min > max) {
    return TnumUnknown();
  }
  const uint64_t chi = min ^ max;
  // Number of bits that differ between min and max.
  int bits = 64;
  if (chi != 0) {
    bits = 64 - __builtin_clzll(chi);
  } else {
    bits = 0;
  }
  if (bits > 63) {
    return TnumUnknown();
  }
  const uint64_t delta = (1ull << bits) - 1;
  return Tnum{min & ~delta, delta};
}

Tnum TnumLshift(Tnum a, uint8_t shift) { return Tnum{a.value << shift, a.mask << shift}; }

Tnum TnumRshift(Tnum a, uint8_t shift) { return Tnum{a.value >> shift, a.mask >> shift}; }

Tnum TnumArshift(Tnum a, uint8_t shift, uint8_t insn_bitness) {
  if (insn_bitness == 32) {
    const int32_t value = static_cast<int32_t>(a.value) >> shift;
    const int32_t mask = static_cast<int32_t>(a.mask) >> shift;
    return Tnum{static_cast<uint32_t>(value), static_cast<uint32_t>(mask)};
  }
  const int64_t value = static_cast<int64_t>(a.value) >> shift;
  const int64_t mask = static_cast<int64_t>(a.mask) >> shift;
  return Tnum{static_cast<uint64_t>(value), static_cast<uint64_t>(mask)};
}

Tnum TnumAdd(Tnum a, Tnum b) {
  const uint64_t sm = a.mask + b.mask;
  const uint64_t sv = a.value + b.value;
  const uint64_t sigma = sm + sv;
  const uint64_t chi = sigma ^ sv;
  const uint64_t mu = chi | a.mask | b.mask;
  return Tnum{sv & ~mu, mu};
}

Tnum TnumSub(Tnum a, Tnum b) {
  const uint64_t dv = a.value - b.value;
  const uint64_t alpha = dv + a.mask;
  const uint64_t beta = dv - b.mask;
  const uint64_t chi = alpha ^ beta;
  const uint64_t mu = chi | a.mask | b.mask;
  return Tnum{dv & ~mu, mu};
}

Tnum TnumAnd(Tnum a, Tnum b) {
  const uint64_t alpha = a.value | a.mask;
  const uint64_t beta = b.value | b.mask;
  const uint64_t v = a.value & b.value;
  return Tnum{v, alpha & beta & ~v};
}

Tnum TnumOr(Tnum a, Tnum b) {
  const uint64_t v = a.value | b.value;
  const uint64_t mu = a.mask | b.mask;
  return Tnum{v, mu & ~v};
}

Tnum TnumXor(Tnum a, Tnum b) {
  const uint64_t v = a.value ^ b.value;
  const uint64_t mu = a.mask | b.mask;
  return Tnum{v & ~mu, mu};
}

// Half-multiply: multiplies a by a known value (kernel: hma).
namespace {
Tnum Hma(Tnum acc, uint64_t value, uint64_t mask) {
  while (mask != 0) {
    // Fully-unknown is a fixed point of acc += {0, v} (TnumAdd folds any
    // addend into the all-ones mask), so the remaining iterations are no-ops.
    // Multiplies by unknown scalars saturate within a few bits; without this
    // exit they would walk all 64.
    if (acc.value == 0 && acc.mask == ~0ull) {
      return acc;
    }
    // Jump straight to the next set bit; the skipped iterations only shift.
    const int skip = __builtin_ctzll(mask);
    mask >>= skip;
    value <<= skip;
    acc = TnumAdd(acc, Tnum{0, value});
    mask >>= 1;
    value <<= 1;
  }
  return acc;
}
}  // namespace

Tnum TnumMul(Tnum a, Tnum b) {
  Tnum acc = TnumConst(a.value * b.value);
  acc = Hma(acc, a.mask, b.mask | b.value);
  return Hma(acc, b.mask, a.value);
}

Tnum TnumNeg(Tnum a) { return TnumSub(TnumConst(0), a); }

Tnum TnumIntersect(Tnum a, Tnum b) {
  const uint64_t v = a.value | b.value;
  const uint64_t mu = a.mask & b.mask;
  return Tnum{v & ~mu, mu};
}

Tnum TnumUnion(Tnum a, Tnum b) {
  const uint64_t v = a.value & b.value;
  const uint64_t mu = a.mask | b.mask | (a.value ^ b.value);
  return Tnum{v & ~mu, mu};
}

Tnum TnumCast(Tnum a, uint8_t size) {
  if (size >= 8) {
    return a;
  }
  const uint64_t keep = (1ull << (size * 8)) - 1;
  return Tnum{a.value & keep, a.mask & keep};
}

bool TnumIn(Tnum a, Tnum b) {
  if ((b.mask & ~a.mask) != 0) {
    return false;
  }
  return a.value == (b.value & ~a.mask);
}

Tnum TnumSubreg(Tnum a) { return TnumCast(a, 4); }

Tnum TnumClearSubreg(Tnum a) { return TnumLshift(TnumRshift(a, 32), 32); }

Tnum TnumWithSubreg(Tnum reg, Tnum subreg) {
  return TnumOr(TnumClearSubreg(reg), TnumSubreg(subreg));
}

Tnum TnumConstSubreg(Tnum reg, uint32_t value) {
  return TnumWithSubreg(reg, TnumConst(value));
}

std::string Tnum::ToString() const {
  char buf[64];
  if (IsConst()) {
    snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  } else {
    snprintf(buf, sizeof(buf), "(0x%llx; 0x%llx)", static_cast<unsigned long long>(value),
             static_cast<unsigned long long>(mask));
  }
  return buf;
}

}  // namespace bpf
