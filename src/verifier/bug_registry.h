// Injectable-bug registry: the 11 vulnerabilities of Table 2 plus
// CVE-2022-23222, each re-implemented as a faithful model of its documented
// root cause. A fuzzing experiment needs bugs to find; re-injecting the real
// root causes lets BVF rediscover them through the same mechanisms described
// in the paper (see DESIGN.md §5 for the per-bug mapping).

#ifndef SRC_VERIFIER_BUG_REGISTRY_H_
#define SRC_VERIFIER_BUG_REGISTRY_H_

#include <string>
#include <vector>

#include "src/verifier/kernel_version.h"

namespace bpf {

struct BugConfig {
  // -- Verifier correctness bugs (Table 2 #1-#6) --
  // #1: nullness propagation across `==` does not filter PTR_TO_BTF_ID.
  bool bug1_nullness_propagation = false;
  // #2: task_struct (BTF) access validated against the wrong object size.
  bool bug2_task_struct_bounds = false;
  // #3: kfunc-call handling corrupts backtracked scalar bounds of R0.
  bool bug3_kfunc_backtrack = false;
  // #4: programs calling bpf_trace_printk may attach to the trace_printk path.
  bool bug4_trace_printk_recursion = false;
  // #5: lock-acquiring helpers callable from progs attached to contention_begin.
  bool bug5_contention_begin = false;
  // #6: bpf_send_signal usable from unsafe (irq) context.
  bool bug6_send_signal = false;

  // -- Related eBPF-subsystem bugs (Table 2 #7-#11) --
  // #7: dispatcher image swap without synchronization (null-deref window).
  bool bug7_dispatcher_sync = false;
  // #8: kmemdup() of rewritten insns fails past KMALLOC_MAX.
  bool bug8_kmemdup = false;
  // #9: htab batched lookup walks past the bucket on trylock failure.
  bool bug9_bucket_iteration = false;
  // #10: irq_work misuse in a helper re-acquires a held lock.
  bool bug10_irq_work = false;
  // #11: device-offloaded XDP program runnable on the host path.
  bool bug11_xdp_offload = false;

  // -- Synthetic range-analysis bug (Indicator #3 target) --
  // #12: JMP32 unsigned-compare refinement mirrors the new unsigned lower
  // bound into the signed-32 domain without a sign check. The corruption
  // stays confined to s32_min (no bounds sync, and ZExt32 rebuilds 32-bit
  // bounds from the tnum), so it never reaches the 64-bit bounds consulted by
  // memory checks or alu_limit sanitation: invisible to Indicators #1/#2,
  // caught only by the abstract-state witness audit.
  bool bug12_jmp32_signed_refine = false;

  // -- Synthetic refinement asymmetry (metamorphic-oracle target) --
  // #13: the ld_imm64 constant-load path drops constant tracking for small
  // immediates (1..255), marking the destination unknown where the mov-imm
  // path of the same value keeps the exact constant. A pure spurious-
  // rejection asymmetry: any program whose acceptance depends on a small
  // constant (e.g. a bounded loop counter) still loads when the constant is
  // materialized through mov, but is rejected when it is materialized through
  // ld_imm64. No accepted program misbehaves, so Indicators #1-#3 can never
  // fire; only a verdict comparison between semantically equal programs
  // (src/core/metamorph) observes it.
  bool bug13_ld_imm64_pessimize = false;

  // -- Historical: CVE-2022-23222, ALU permitted on nullable map pointers. --
  bool cve_2022_23222 = false;

  // All bugs off (a fully fixed kernel).
  static BugConfig None() { return BugConfig{}; }
  // All bugs on (the testing target of the RQ1 campaign).
  static BugConfig All();
  // The historical bug set live on a given version at the paper's time frame.
  static BugConfig ForVersion(KernelVersion version);

  // Number of enabled bugs.
  int Count() const;
  std::vector<std::string> EnabledNames() const;
};

}  // namespace bpf

#endif  // SRC_VERIFIER_BUG_REGISTRY_H_
