// Whole-program verification state: register file and stack slots per call
// frame, plus acquired-reference tracking (kernel: struct bpf_verifier_state
// and bpf_func_state).

#ifndef SRC_VERIFIER_VERIFIER_STATE_H_
#define SRC_VERIFIER_VERIFIER_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/verifier/reg_state.h"

namespace bpf {

// One 8-byte stack slot.
enum class SlotType : uint8_t {
  kInvalid,  // never written
  kSpill,    // holds a spilled register (spilled_reg valid)
  kMisc,     // written with partial/unknown data
  kZero,     // known zero bytes
};

struct StackSlot {
  SlotType type = SlotType::kInvalid;
  RegState spilled_reg;  // valid when type == kSpill

  bool operator==(const StackSlot& other) const = default;
};

inline constexpr int kStackSlots = kStackSize / 8;  // 64 slots of 8 bytes
inline constexpr int kMaxCallFrames = 4;

// Per-function (call frame) state.
struct FuncState {
  RegState regs[kNumProgRegs];
  StackSlot stack[kStackSlots];

  // Call bookkeeping.
  int callsite = -1;  // insn index of the call that entered this frame

  bool operator==(const FuncState& other) const;
};

struct VerifierState {
  std::vector<FuncState> frames;
  // ref_obj_ids of acquired-but-unreleased kernel objects.
  std::vector<int> acquired_refs;
  // Total instructions walked along this path (loop-bound enforcement).
  int insn_path_len = 0;

  FuncState& cur() { return frames.back(); }
  const FuncState& cur() const { return frames.back(); }
  RegState* regs() { return frames.back().regs; }
  const RegState* regs() const { return frames.back().regs; }
  int frame_depth() const { return static_cast<int>(frames.size()); }

  // Creates the entry state: R1 = ctx, R10 = frame pointer, others not init.
  static VerifierState Entry();

  bool AddRef(int ref_obj_id);
  bool ReleaseRef(int ref_obj_id);

  std::string ToString() const;
};

// Pruning: true if a path continuing from |old_state| proved safe implies the
// same for |cur_state| (register and stack subsumption across all frames).
bool StateSubsumes(const VerifierState& old_state, const VerifierState& cur_state);

// Exact equality of the observable state (used for infinite-loop detection).
bool StateEqual(const VerifierState& a, const VerifierState& b);

}  // namespace bpf

#endif  // SRC_VERIFIER_VERIFIER_STATE_H_
