// Whole-program verification state: register file and stack slots per call
// frame, plus acquired-reference tracking (kernel: struct bpf_verifier_state
// and bpf_func_state).

#ifndef SRC_VERIFIER_VERIFIER_STATE_H_
#define SRC_VERIFIER_VERIFIER_STATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/verifier/reg_state.h"

namespace bpf {

// One 8-byte stack slot.
enum class SlotType : uint8_t {
  kInvalid,  // never written
  kSpill,    // holds a spilled register (payload valid)
  kMisc,     // written with partial/unknown data
  kZero,     // known zero bytes
};

// Sparse spill payload for one stack slot.
struct SpillSlot {
  uint8_t slot = 0;
  RegState reg;

  bool operator==(const SpillSlot& other) const = default;
};

inline constexpr int kStackSlots = kStackSize / 8;  // 64 slots of 8 bytes
inline constexpr int kMaxCallFrames = 4;

// Per-function (call frame) state.
//
// The stack is a dense type byte per slot plus a sparse, slot-ordered vector
// of spill payloads. Explored and pending states copy a FuncState per frame
// in the verifier's hottest loop, and a dense payload array (a full RegState
// per slot) made that copy ~7x larger than the data it carried; most states
// spill into a handful of slots at most.
//
// The split must not change equality semantics. The old dense layout's
// defaulted operator== compared every slot's payload even after the slot was
// downgraded to kMisc without clearing it (the helper-argument store path
// deliberately leaves stale spill data behind). The representation therefore
// keeps the invariant
//
//   spills holds an entry for slot i  <=>  the slot's logical payload is not
//                                          a default-constructed RegState
//
// with entries sorted by slot, so memberwise comparison of (stack_types,
// spills) matches the old per-slot (type, payload) comparison exactly, stale
// data included. All writes go through the accessors below to maintain it;
// in-place payload mutation (reference/packet marking) cannot produce a
// default RegState, so it cannot break the invariant either.
struct FuncState {
  RegState regs[kNumProgRegs];
  std::array<SlotType, kStackSlots> stack_types{};
  std::vector<SpillSlot> spills;

  // Call bookkeeping.
  int callsite = -1;  // insn index of the call that entered this frame

  SlotType slot_type(int i) const { return stack_types[static_cast<size_t>(i)]; }

  // Sets the slot's type and clears its spill payload (the common store path).
  void SetSlot(int i, SlotType type) {
    stack_types[static_cast<size_t>(i)] = type;
    for (auto it = spills.begin(); it != spills.end(); ++it) {
      if (it->slot == i) {
        spills.erase(it);
        break;
      }
      if (it->slot > i) {
        break;
      }
    }
  }

  // Sets the slot's type but keeps any spill payload in place — mirrors the
  // helper-argument store, which leaves stale (still compared) data behind.
  void SetSlotKeepPayload(int i, SlotType type) {
    stack_types[static_cast<size_t>(i)] = type;
  }

  // Spills |reg| into the slot. |reg| is always a readable register, never a
  // default-constructed one, so the upsert preserves the invariant.
  void SetSpill(int i, const RegState& reg) {
    stack_types[static_cast<size_t>(i)] = SlotType::kSpill;
    auto it = spills.begin();
    while (it != spills.end() && it->slot < i) {
      ++it;
    }
    if (it != spills.end() && it->slot == i) {
      it->reg = reg;
      return;
    }
    spills.insert(it, SpillSlot{static_cast<uint8_t>(i), reg});
  }

  // Payload of slot |i|; a default RegState when none is stored.
  const RegState& SpillData(int i) const {
    for (const SpillSlot& entry : spills) {
      if (entry.slot == i) {
        return entry.reg;
      }
      if (entry.slot > i) {
        break;
      }
    }
    static const RegState kNone;
    return kNone;
  }

  bool operator==(const FuncState& other) const;
};

struct VerifierState {
  std::vector<FuncState> frames;
  // ref_obj_ids of acquired-but-unreleased kernel objects.
  std::vector<int> acquired_refs;
  // Total instructions walked along this path (loop-bound enforcement).
  int insn_path_len = 0;

  FuncState& cur() { return frames.back(); }
  const FuncState& cur() const { return frames.back(); }
  RegState* regs() { return frames.back().regs; }
  const RegState* regs() const { return frames.back().regs; }
  int frame_depth() const { return static_cast<int>(frames.size()); }

  // Creates the entry state: R1 = ctx, R10 = frame pointer, others not init.
  static VerifierState Entry();

  bool AddRef(int ref_obj_id);
  bool ReleaseRef(int ref_obj_id);

  std::string ToString() const;
};

// Pruning: true if a path continuing from |old_state| proved safe implies the
// same for |cur_state| (register and stack subsumption across all frames).
bool StateSubsumes(const VerifierState& old_state, const VerifierState& cur_state);

// Exact equality of the observable state (used for infinite-loop detection).
bool StateEqual(const VerifierState& a, const VerifierState& b);

// 64-bit fingerprint over a subset of the fields StateEqual compares:
// StateEqual(a, b) implies StateFingerprint(a) == StateFingerprint(b), so a
// fingerprint mismatch proves inequality without walking both states. The
// checker caches one fingerprint per explored state and uses it to skip the
// full compare on back-edge arrivals (the loop-detection hot path).
uint64_t StateFingerprint(const VerifierState& state);

}  // namespace bpf

#endif  // SRC_VERIFIER_VERIFIER_STATE_H_
