// ALU instruction checking: scalar bounds arithmetic (adjust_scalar_min_max_
// vals) and pointer arithmetic (adjust_ptr_min_max_vals), including the
// alu_limit bookkeeping consumed by BVF's sanitation and the CVE-2022-23222
// injectable bug (ALU permitted on nullable pointers).

#include <cerrno>

#include "src/kernel/coverage.h"
#include "src/verifier/checker.h"

namespace bpf {

namespace {

bool AddOverflows(int64_t a, int64_t b) {
  int64_t out;
  return __builtin_add_overflow(a, b, &out);
}

bool SubOverflows(int64_t a, int64_t b) {
  int64_t out;
  return __builtin_sub_overflow(a, b, &out);
}

bool UAddOverflows(uint64_t a, uint64_t b) { return a + b < a; }

}  // namespace

int Checker::CheckAluOp(VerifierState& state, const Insn& insn, int idx) {
  const bool is64 = insn.Class() == kClassAlu64;
  const uint8_t op = insn.AluOp();
  BVF_COV_IDX(32, (op >> 4) + (is64 ? 16 : 0));

  if (int err = CheckRegWrite(state, insn.dst, idx); err != 0) {
    return err;
  }

  // Unary operations.
  if (op == kAluNeg || op == kAluEnd) {
    BVF_COV();
    if (int err = CheckRegRead(state, insn.dst, idx); err != 0) {
      return err;
    }
    RegState& dst = Reg(state, insn.dst);
    if (dst.type != RegType::kScalar) {
      BVF_COV();
      Log("insn %d: %s on pointer prohibited", idx, op == kAluNeg ? "neg" : "bswap");
      return -EACCES;
    }
    if (op == kAluNeg && dst.IsConst()) {
      dst.MarkKnown(is64 ? -dst.ConstValue()
                         : static_cast<uint32_t>(-static_cast<uint32_t>(dst.ConstValue())));
    } else {
      dst.MarkUnknown();
      if (!is64 || (op == kAluEnd && insn.imm < 64)) {
        dst.ZExt32();
      }
    }
    return 0;
  }

  // MOV.
  if (op == kAluMov) {
    RegState& dst = Reg(state, insn.dst);
    if (insn.SrcIsReg()) {
      if (int err = CheckRegRead(state, insn.src, idx); err != 0) {
        return err;
      }
      const RegState& src = Reg(state, insn.src);
      if (is64) {
        BVF_COV();
        dst = src;
      } else {
        BVF_COV();
        if (IsPointerType(src.type)) {
          // W-mov of a pointer leaks the low 32 bits as an unknown scalar.
          dst.MarkUnknown();
          dst.ZExt32();
        } else {
          dst = src;
          dst.id = 0;
          dst.ZExt32();
        }
      }
    } else {
      BVF_COV();
      if (is64) {
        dst.MarkKnown(static_cast<uint64_t>(static_cast<int64_t>(insn.imm)));
      } else {
        dst.MarkKnown(static_cast<uint32_t>(insn.imm));
      }
    }
    return 0;
  }

  // Binary operations.
  if (int err = CheckRegRead(state, insn.dst, idx); err != 0) {
    return err;
  }
  RegState src_val;
  if (insn.SrcIsReg()) {
    if (int err = CheckRegRead(state, insn.src, idx); err != 0) {
      return err;
    }
    src_val = Reg(state, insn.src);
  } else {
    src_val = RegState::Known(is64 ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                   : static_cast<uint32_t>(insn.imm));
  }

  RegState& dst = Reg(state, insn.dst);
  const bool dst_is_ptr = IsPointerType(dst.type);
  const bool src_is_ptr = IsPointerType(src_val.type);

  if (dst_is_ptr || src_is_ptr) {
    return AdjustPtrAlu(state, insn, idx, dst, src_val, dst_is_ptr);
  }

  // Self-aliasing identities the pointwise transfer cannot see: x^x == 0 and
  // x-x == 0.
  if (insn.SrcIsReg() && insn.src == insn.dst && dst.type == RegType::kScalar &&
      (op == kAluXor || op == kAluSub)) {
    BVF_COV();
    dst.MarkKnown(0);
    return 0;
  }

  AdjustScalarAlu(state, insn, dst, src_val);
  return 0;
}

int Checker::AdjustPtrAlu(VerifierState& state, const Insn& insn, int idx, RegState& dst,
                          const RegState& src_val, bool dst_is_ptr) {
  const uint8_t op = insn.AluOp();
  const bool is64 = insn.Class() == kClassAlu64;

  if (!is64) {
    BVF_COV();
    Log("insn %d: 32-bit ALU on pointer produces partial pointer", idx);
    return -EACCES;
  }
  if (op != kAluAdd && op != kAluSub) {
    BVF_COV();
    Log("insn %d: pointer arithmetic with prohibited operator", idx);
    return -EACCES;
  }
  if (dst_is_ptr && IsPointerType(src_val.type)) {
    BVF_COV();
    Log("insn %d: pointer %s pointer prohibited", idx, op == kAluAdd ? "+" : "-");
    return -EACCES;
  }

  // Normalize: ptr op scalar. scalar + ptr commutes for ADD only.
  RegState ptr;
  RegState scalar;
  bool scalar_is_dst_reg = false;
  if (dst_is_ptr) {
    ptr = dst;
    scalar = src_val;
  } else {
    if (op == kAluSub) {
      BVF_COV();
      Log("insn %d: scalar - pointer prohibited", idx);
      return -EACCES;
    }
    BVF_COV();
    ptr = src_val;
    scalar = dst;
    scalar_is_dst_reg = true;
  }

  // Which pointer types may participate in arithmetic.
  switch (ptr.type) {
    case RegType::kPtrToStack:
    case RegType::kPtrToMapValue:
    case RegType::kPtrToPacket:
    case RegType::kPtrToMem:
    case RegType::kPtrToBtfId:
      break;
    case RegType::kPtrToCtx:
      if (!scalar.IsConst()) {
        BVF_COV();
        Log("insn %d: variable offset on ctx pointer prohibited", idx);
        return -EACCES;
      }
      break;
    case RegType::kPtrToMapValueOrNull:
    case RegType::kPtrToMemOrNull:
      if (!env_.bugs.cve_2022_23222) {
        BVF_COV();
        Log("insn %d: pointer arithmetic on %s prohibited, null-check it first", idx,
            RegTypeName(ptr.type));
        return -EACCES;
      }
      // CVE-2022-23222: the check above was missing for *_or_null types; the
      // offset silently accumulates while the null-branch later marks the
      // register as constant zero.
      BVF_COV();
      break;
    default:
      BVF_COV();
      Log("insn %d: pointer arithmetic on %s prohibited", idx, RegTypeName(ptr.type));
      return -EACCES;
  }

  RegState result = ptr;

  if (scalar.IsConst()) {
    BVF_COV();
    const int64_t delta = static_cast<int64_t>(scalar.ConstValue());
    const int64_t signed_delta = op == kAluAdd ? delta : -delta;
    const int64_t new_off = static_cast<int64_t>(result.off) + signed_delta;
    if (new_off < kS32Min || new_off > kS32Max) {
      BVF_COV();
      Log("insn %d: pointer offset %lld out of range", idx, static_cast<long long>(new_off));
      return -EACCES;
    }
    result.off = static_cast<int32_t>(new_off);
  } else {
    // Variable offset: fold the scalar into the pointer's variable part.
    BVF_COV();
    if (op == kAluAdd) {
      result.var_off = TnumAdd(ptr.var_off, scalar.var_off);
      if (AddOverflows(ptr.smin, scalar.smin) || AddOverflows(ptr.smax, scalar.smax)) {
        result.smin = kS64Min;
        result.smax = kS64Max;
      } else {
        result.smin = ptr.smin + scalar.smin;
        result.smax = ptr.smax + scalar.smax;
      }
      if (UAddOverflows(ptr.umax, scalar.umax)) {
        result.umin = 0;
        result.umax = kU64Max;
      } else {
        result.umin = ptr.umin + scalar.umin;
        result.umax = ptr.umax + scalar.umax;
      }
    } else {
      result.var_off = TnumSub(ptr.var_off, scalar.var_off);
      if (SubOverflows(ptr.smin, scalar.smax) || SubOverflows(ptr.smax, scalar.smin)) {
        result.smin = kS64Min;
        result.smax = kS64Max;
      } else {
        result.smin = ptr.smin - scalar.smax;
        result.smax = ptr.smax - scalar.smin;
      }
      result.umin = 0;
      result.umax = kU64Max;
    }
    result.Set32Unbounded();
    result.Sync();
    if (!result.BoundsSane()) {
      result.var_off = TnumUnknown();
      result.SetUnboundedBounds();
    }

    // Record the sanitation oracle (paper §4.2): at runtime the scalar must
    // lie within the range the verifier believed here; a violation means the
    // range analysis itself was wrong.
    if (features_.sanitize_alu_limit) {
      BVF_COV();
      InsnAux& aux = aux_[idx];
      aux.alu_check = true;
      aux.alu_scalar_reg = scalar_is_dst_reg ? insn.dst : insn.src;
      aux.alu_smin = scalar.smin;
      aux.alu_smax = scalar.smax;
    }

    // Variable stack offsets are not supported by our (and old kernels')
    // stack tracking.
    if (ptr.type == RegType::kPtrToStack) {
      BVF_COV();
      Log("insn %d: variable offset stack pointer prohibited", idx);
      return -EACCES;
    }
  }

  // Packet pointer arithmetic invalidates the verified range when moving
  // backwards; keep it simple and reset on any variable change.
  if (result.type == RegType::kPtrToPacket && !scalar.IsConst()) {
    result.pkt_range = 0;
  }

  dst = result;
  return 0;
}

void Checker::AdjustScalarAlu(VerifierState& state, const Insn& insn, RegState& dst,
                              RegState src_val) {
  ScalarAluTransfer(insn, dst, std::move(src_val));
}

void ScalarAluTransfer(const Insn& insn, RegState& dst, RegState src_val) {
  const bool is64 = insn.Class() == kClassAlu64;
  const uint8_t op = insn.AluOp();

  if (!is64) {
    // 32-bit ALU: compute through the tnum domain on truncated operands,
    // then rebuild the bounds. Sound, at the cost of some range precision.
    BVF_COV();
    dst.var_off = TnumCast(dst.var_off, 4);
    src_val.var_off = TnumCast(src_val.var_off, 4);
  }

  const bool both_const = dst.IsConst() && src_val.IsConst();
  Tnum result = TnumUnknown();
  bool bounds_valid = false;  // whether smin/smax/umin/umax below are usable
  int64_t smin = kS64Min, smax = kS64Max;
  uint64_t umin = 0, umax = kU64Max;

  switch (op) {
    case kAluAdd:
      BVF_COV();
      result = TnumAdd(dst.var_off, src_val.var_off);
      if (is64) {
        // Signed and unsigned ranges survive independently (as in the
        // kernel): an overflow on one side only forfeits that side.
        bounds_valid = true;
        if (!AddOverflows(dst.smin, src_val.smin) && !AddOverflows(dst.smax, src_val.smax)) {
          smin = dst.smin + src_val.smin;
          smax = dst.smax + src_val.smax;
        }
        if (!UAddOverflows(dst.umax, src_val.umax)) {
          umin = dst.umin + src_val.umin;
          umax = dst.umax + src_val.umax;
        }
      }
      break;
    case kAluSub:
      BVF_COV();
      result = TnumSub(dst.var_off, src_val.var_off);
      if (is64) {
        bounds_valid = true;
        if (!SubOverflows(dst.smin, src_val.smax) && !SubOverflows(dst.smax, src_val.smin)) {
          smin = dst.smin - src_val.smax;
          smax = dst.smax - src_val.smin;
        }
        if (dst.umin >= src_val.umax) {  // no unsigned underflow possible
          umin = dst.umin - src_val.umax;
          umax = dst.umax - src_val.umin;
        }
      }
      break;
    case kAluMul:
      BVF_COV();
      result = TnumMul(dst.var_off, src_val.var_off);
      if (is64 && dst.smin >= 0 && src_val.smin >= 0 && dst.umax <= kU32Max &&
          src_val.umax <= kU32Max) {
        bounds_valid = true;
        smin = static_cast<int64_t>(dst.umin * src_val.umin);
        smax = static_cast<int64_t>(dst.umax * src_val.umax);
        umin = dst.umin * src_val.umin;
        umax = dst.umax * src_val.umax;
      }
      break;
    case kAluAnd:
      BVF_COV();
      result = TnumAnd(dst.var_off, src_val.var_off);
      if (is64) {
        bounds_valid = true;
        umin = result.value;
        umax = std::min(dst.umax, src_val.umax);
        if (dst.smin < 0 || src_val.smin < 0) {
          smin = kS64Min;
          smax = kS64Max;
        } else {
          smin = static_cast<int64_t>(umin);
          smax = static_cast<int64_t>(umax);
        }
      }
      break;
    case kAluOr:
      BVF_COV();
      result = TnumOr(dst.var_off, src_val.var_off);
      if (is64) {
        bounds_valid = true;
        umin = std::max(dst.umin, src_val.umin);
        umax = result.value | result.mask;
        if (dst.smin < 0 || src_val.smin < 0) {
          smin = kS64Min;
          smax = kS64Max;
        } else {
          smin = static_cast<int64_t>(umin);
          smax = static_cast<int64_t>(umax);
        }
      }
      break;
    case kAluXor:
      BVF_COV();
      result = TnumXor(dst.var_off, src_val.var_off);
      break;
    case kAluLsh:
      if (src_val.IsConst() && src_val.ConstValue() < (is64 ? 64u : 32u)) {
        BVF_COV();
        const uint8_t shift = static_cast<uint8_t>(src_val.ConstValue());
        result = TnumLshift(dst.var_off, shift);
        if (is64 && shift < 64 && dst.umax <= (kU64Max >> shift)) {
          bounds_valid = true;
          umin = dst.umin << shift;
          umax = dst.umax << shift;
          if (static_cast<int64_t>(umax) >= 0) {
            smin = static_cast<int64_t>(umin);
            smax = static_cast<int64_t>(umax);
          }
        }
      }
      break;
    case kAluRsh:
      if (src_val.IsConst() && src_val.ConstValue() < (is64 ? 64u : 32u)) {
        BVF_COV();
        const uint8_t shift = static_cast<uint8_t>(src_val.ConstValue());
        result = TnumRshift(dst.var_off, shift);
        if (is64) {
          bounds_valid = true;
          umin = dst.umin >> shift;
          umax = dst.umax >> shift;
          smin = static_cast<int64_t>(umin);
          smax = static_cast<int64_t>(umax);
        }
      }
      break;
    case kAluArsh:
      if (src_val.IsConst() && src_val.ConstValue() < (is64 ? 64u : 32u)) {
        BVF_COV();
        const uint8_t shift = static_cast<uint8_t>(src_val.ConstValue());
        result = TnumArshift(dst.var_off, shift, is64 ? 64 : 32);
        if (is64) {
          bounds_valid = true;
          smin = dst.smin >> shift;
          smax = dst.smax >> shift;
          umin = 0;
          umax = kU64Max;
        }
      }
      break;
    case kAluDiv:
      // BPF division is unsigned; division by zero yields zero at runtime,
      // so the result never exceeds the dividend.
      BVF_COV();
      if (both_const && src_val.ConstValue() != 0) {
        result = TnumConst(is64 ? dst.ConstValue() / src_val.ConstValue()
                                : static_cast<uint32_t>(dst.ConstValue()) /
                                      static_cast<uint32_t>(src_val.ConstValue()));
      } else if (is64) {
        // Unsigned division never exceeds the dividend. Signed bounds stay
        // open: results >= 2^63 are negative when reinterpreted.
        bounds_valid = true;
        umin = 0;
        umax = dst.umax;
        if (umax <= static_cast<uint64_t>(kS64Max)) {
          smin = 0;
          smax = static_cast<int64_t>(umax);
        }
      }
      break;
    case kAluMod:
      BVF_COV();
      if (both_const && src_val.ConstValue() != 0) {
        result = TnumConst(is64 ? dst.ConstValue() % src_val.ConstValue()
                                : static_cast<uint32_t>(dst.ConstValue()) %
                                      static_cast<uint32_t>(src_val.ConstValue()));
      } else if (is64 && src_val.IsConst() && src_val.ConstValue() != 0) {
        // x % c < c (the divisor is a known non-zero constant here).
        bounds_valid = true;
        umin = 0;
        umax = src_val.ConstValue() - 1;
        if (umax <= static_cast<uint64_t>(kS64Max)) {
          smin = 0;
          smax = static_cast<int64_t>(umax);
        }
      }
      break;
    default:
      break;
  }

  dst.MarkUnknown();
  dst.var_off = result;
  if (bounds_valid) {
    dst.smin = smin;
    dst.smax = smax;
    dst.umin = umin;
    dst.umax = umax;
  }
  dst.Sync();
  if (!dst.BoundsSane()) {
    dst.MarkUnknown();
  }
  if (!is64) {
    dst.ZExt32();
  }
}

}  // namespace bpf
