// Shared per-instruction semantics of the eBPF execution engines.
//
// Both the legacy instruction-at-a-time interpreter (interpreter.cc) and the
// pre-decoded micro-op engine (decoded_prog.cc) execute through these inline
// primitives, so the edge semantics audited against the Linux interpreter —
// shift-count masking (&63 / &31, matching the kernel's since-4.16 JIT/interp
// behavior), div/mod-by-zero (dst=0 / dst unchanged, BPF's defined result
// rather than a trap), 32-bit div/mod operating on truncated operands, and
// ByteSwap treating any width outside {16,32,64} as a no-op for bswap/to_be
// and as a plain mask for to_le — are locked down in exactly one place.
// A divergence between the engines would have to be introduced outside this
// header, which the differential parity suite (tests/interp_parity_test.cc)
// would catch.

#ifndef SRC_RUNTIME_INTERP_OPS_H_
#define SRC_RUNTIME_INTERP_OPS_H_

#include <cstdint>

#include "src/ebpf/insn.h"
#include "src/kernel/kasan.h"
#include "src/kernel/report.h"

namespace bpf {

inline uint64_t ByteSwap(uint64_t value, int width) {
  switch (width) {
    case 16:
      return __builtin_bswap16(static_cast<uint16_t>(value));
    case 32:
      return __builtin_bswap32(static_cast<uint32_t>(value));
    case 64:
      return __builtin_bswap64(value);
    default:
      return value;
  }
}

// BPF_END. to_le on this little-endian model is a pure truncation mask,
// exactly the kernel interpreter's (__u16)/(__u32) casts; to_be byteswaps.
// Reserved widths are rejected at load (program.cc ValidAluOpcode, matching
// Linux's "BPF_END uses reserved fields"), so the out-of-range arms are
// defensive — but they are still pinned down (interpreter_test.cc
// EdgeSemanticsTest): to_be at an unknown width is a no-op (ByteSwap's
// default), to_le at width >= 64 is a no-op, and width <= 0 clears the value
// instead of shifting by a negative amount.
inline uint64_t ExecEndian(uint64_t value, bool to_be, int32_t width) {
  if (to_be) {
    return ByteSwap(value, width);
  }
  if (width >= 64) {
    return value;
  }
  if (width <= 0) {
    return 0;
  }
  return value & ((1ull << width) - 1);
}

inline uint64_t AluOp64(uint8_t op, uint64_t dst, uint64_t src) {
  switch (op) {
    case kAluAdd:
      return dst + src;
    case kAluSub:
      return dst - src;
    case kAluMul:
      return dst * src;
    case kAluDiv:
      return src == 0 ? 0 : dst / src;
    case kAluOr:
      return dst | src;
    case kAluAnd:
      return dst & src;
    case kAluLsh:
      return dst << (src & 63);
    case kAluRsh:
      return dst >> (src & 63);
    case kAluMod:
      return src == 0 ? dst : dst % src;
    case kAluXor:
      return dst ^ src;
    case kAluMov:
      return src;
    case kAluArsh:
      return static_cast<uint64_t>(static_cast<int64_t>(dst) >> (src & 63));
    default:
      return dst;
  }
}

inline uint32_t AluOp32(uint8_t op, uint32_t dst, uint32_t src) {
  switch (op) {
    case kAluArsh:
      return static_cast<uint32_t>(static_cast<int32_t>(dst) >> (src & 31));
    case kAluLsh:
      return dst << (src & 31);
    case kAluRsh:
      return dst >> (src & 31);
    case kAluDiv:
      return src == 0 ? 0 : dst / src;
    case kAluMod:
      return src == 0 ? dst : dst % src;
    default:
      return static_cast<uint32_t>(AluOp64(op, dst, src));
  }
}

inline bool JmpTaken(uint8_t op, uint64_t dst, uint64_t src, bool is32) {
  if (is32) {
    dst = static_cast<uint32_t>(dst);
    src = static_cast<uint32_t>(src);
  }
  const int64_t sdst = is32 ? static_cast<int32_t>(dst) : static_cast<int64_t>(dst);
  const int64_t ssrc = is32 ? static_cast<int32_t>(src) : static_cast<int64_t>(src);
  switch (op) {
    case kJmpJeq:
      return dst == src;
    case kJmpJne:
      return dst != src;
    case kJmpJgt:
      return dst > src;
    case kJmpJge:
      return dst >= src;
    case kJmpJlt:
      return dst < src;
    case kJmpJle:
      return dst <= src;
    case kJmpJset:
      return (dst & src) != 0;
    case kJmpJsgt:
      return sdst > ssrc;
    case kJmpJsge:
      return sdst >= ssrc;
    case kJmpJslt:
      return sdst < ssrc;
    case kJmpJsle:
      return sdst <= ssrc;
    default:
      return false;
  }
}

// Sign-extends the low |size| bytes of |value| to 64 bits (BPF_MEMSX).
inline uint64_t SignExtend(uint64_t value, int size) {
  const int shift = 64 - 8 * size;
  return static_cast<uint64_t>(static_cast<int64_t>(value << shift) >> shift);
}

// Uninstrumented memory load. Returns false when the access faulted and the
// caller must abort with -EFAULT "page fault on load" (the oops was already
// filed). |btf_load| marks PTR_TO_BTF_ID loads, which are exception-table
// handled: a faulting access reads as zero instead of oopsing. |sign_extend|
// selects the BPF_MEMSX fill (loaded B/H/W value sign- instead of
// zero-extended into the 64-bit destination).
inline bool ExecMemLoad(KasanArena& arena, ReportSink& sink, uint64_t* regs,
                        uint8_t dst, uint8_t src, int64_t off, int size,
                        bool btf_load, bool sign_extend = false) {
  const uint64_t addr = regs[src] + off;
  // ClassifyRange suffices: an uninstrumented load only faults on unbacked
  // memory (kNull/kWild), which is a range property; shadow state is
  // irrelevant here (redzones/freed bytes read silently, as in JITed code).
  const AccessResult probe = arena.ClassifyRange(addr, size);
  if (probe == AccessResult::kNull || probe == AccessResult::kWild) {
    if (btf_load) {
      regs[dst] = 0;
      return true;
    }
    arena.RawRead(addr, size, nullptr, sink, "bpf_prog_run");  // files the oops
    return false;
  }
  uint64_t value = 0;
  arena.RawRead(addr, size, &value, sink, "bpf_prog_run");
  regs[dst] = sign_extend ? SignExtend(value, size) : value;
  return true;
}

// Uninstrumented store of |value| through regs[dst]+off. Returns false when
// the caller must abort with -EFAULT "page fault on store".
inline bool ExecMemStore(KasanArena& arena, ReportSink& sink, const uint64_t* regs,
                         uint8_t dst, int64_t off, uint64_t value, int size) {
  return arena.RawWrite(regs[dst] + off, size, value, sink, "bpf_prog_run");
}

// Atomic read-modify-write (BPF_STX | BPF_ATOMIC). Returns false when the
// initial read faulted and the caller must abort with -EFAULT "page fault on
// atomic". cmpxchg compares against R0 and always writes the old value back
// to R0; xchg and any FETCH-flagged op write the old value to regs[src].
inline bool ExecAtomicRmw(KasanArena& arena, ReportSink& sink, uint64_t* regs,
                          uint8_t dst, uint8_t src, int64_t off, int size,
                          int32_t imm) {
  const uint64_t addr = regs[dst] + off;
  uint64_t old = 0;
  if (!arena.RawRead(addr, size, &old, sink, "bpf_prog_run")) {
    return false;
  }
  const uint64_t operand = regs[src];
  uint64_t updated = old;
  switch (imm & ~kAtomicFetch) {
    case kAtomicAdd:
      updated = old + operand;
      break;
    case kAtomicOr:
      updated = old | operand;
      break;
    case kAtomicAnd:
      updated = old & operand;
      break;
    case kAtomicXor:
      updated = old ^ operand;
      break;
    default:
      break;
  }
  if (imm == kAtomicXchg) {
    updated = operand;
  } else if (imm == kAtomicCmpXchg) {
    updated = (old == regs[kR0]) ? operand : old;
    regs[kR0] = old;
  }
  if (size == 4) {
    updated = static_cast<uint32_t>(updated);
  }
  arena.RawWrite(addr, size, updated, sink, "bpf_prog_run");
  if ((imm & kAtomicFetch) != 0 || imm == kAtomicXchg) {
    regs[src] = old;
  }
  return true;
}

// Native calling convention: helper and kfunc calls clobber the argument
// registers. The garbage left behind is what makes stale verifier bounds
// (bug #3) observable at runtime.
inline void ClobberCallerSaved(uint64_t* regs, uint64_t call_counter) {
  for (int r = kR1; r <= kR5; ++r) {
    regs[r] = 0xdead0000beef0000ull ^ (call_counter << 8) ^ static_cast<uint64_t>(r);
  }
}

}  // namespace bpf

#endif  // SRC_RUNTIME_INTERP_OPS_H_
