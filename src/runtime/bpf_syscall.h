// The bpf(2) syscall surface of the simulated kernel: map creation, program
// loading (verification + rewrite + the kmemdup readback path of bug #8),
// test runs, tracepoint attachment (with the policy checks whose absence is
// bugs #4/#5), and the XDP dispatcher (bugs #7/#11).

#ifndef SRC_RUNTIME_BPF_SYSCALL_H_
#define SRC_RUNTIME_BPF_SYSCALL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/runtime/decoded_prog.h"
#include "src/runtime/exec_context.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/jit_prog.h"
#include "src/runtime/kernel.h"
#include "src/verifier/verifier.h"

namespace bvf {
class Sanitizer;
}  // namespace bvf

namespace bpf {

class VerdictCacheShard;

class Bpf {
 public:
  explicit Bpf(Kernel& kernel) : kernel_(kernel), interp_(kernel) {}

  Kernel& kernel() { return kernel_; }

  // Installs the program-rewrite instrumentation hook (BVF's sanitation
  // "Kconfig"); must be set before ProgLoad to take effect.
  void set_instrument(std::function<void(Program&, std::vector<InsnAux>&)> hook) {
    instrument_ = std::move(hook);
  }

  // Observer invoked after every interpreter run with the run's register
  // witness trace. Installing one also makes ProgLoad collect per-instruction
  // abstract-state claims, enabling the Indicator #3 containment audit
  // (src/analysis/state_audit.h). Must be set before ProgLoad to take effect.
  using ExecObserver = std::function<void(const LoadedProgram&, const WitnessTrace&)>;
  void set_exec_observer(ExecObserver observer) { exec_observer_ = std::move(observer); }

  // Per-invocation execution guards applied to every program run through this
  // syscall surface (test runs, attach handlers, XDP).
  void set_exec_limits(const ExecLimits& limits) { exec_limits_ = limits; }
  const ExecLimits& exec_limits() const { return exec_limits_; }

  // Installs a digest-keyed verifier-verdict cache shard: ProgLoad skips
  // VerifyProgram when the program's digest is committed, replaying the
  // original verification's sanitizer-stat delta into |sanitizer| (may be
  // null when instrumentation is off). nullptr disables caching.
  void set_verdict_cache(VerdictCacheShard* shard, bvf::Sanitizer* sanitizer) {
    verdict_cache_ = shard;
    cache_sanitizer_ = sanitizer;
  }

  // Enables the canonical verdict-cache level: on a raw-key miss, ProgLoad
  // runs |canonicalize| over the program, keys the result, and serves a
  // committed canonical REJECTION without re-verifying (acceptances always
  // verify fresh — their results carry spelling-specific rewritten programs).
  // The hook lives above this layer (src/analysis/canonicalize.h) because the
  // canonicalizer builds on the analysis library, which links against the
  // runtime; injecting it keeps the layering acyclic. No-op without a
  // verdict-cache shard; nullptr disables the level.
  void set_canonicalizer(std::function<Program(const Program&)> canonicalize) {
    canonicalize_ = std::move(canonicalize);
  }

  // Selects the execution tier for programs loaded through this facade:
  // kDecoded (the default) lowers the verified, rewritten program into
  // micro-ops once at load; kJit additionally compiles the micro-ops to
  // native x86-64 code; kLegacy runs the instruction-at-a-time path. All
  // three produce bit-identical results — this is a pure throughput switch.
  // Selecting kJit on a host where the JIT is unavailable (non-x86-64, or
  // W^X mappings denied) logs a one-line warning once per process and
  // downgrades to kDecoded. Affects programs loaded after the call.
  void set_exec_engine(ExecEngine engine);
  ExecEngine exec_engine() const { return engine_; }

  // Back-compat shim for the pre-JIT two-state switch.
  void set_decoded_exec(bool on) {
    set_exec_engine(on ? ExecEngine::kDecoded : ExecEngine::kLegacy);
  }
  bool decoded_exec() const { return engine_ != ExecEngine::kLegacy; }

  // Installs a digest-keyed decode cache shard: ProgLoad reuses a committed
  // DecodedProgram instead of re-lowering when the program digest (the same
  // key the verdict cache uses) is already committed. nullptr decodes fresh
  // on every load. Only consulted while decoded execution is on.
  void set_decode_cache(DecodeCacheShard* shard) { decode_cache_ = shard; }

  // Installs a digest-keyed JIT code cache shard (same key and commit
  // discipline as the decode cache): ProgLoad reuses a committed JitProgram
  // instead of recompiling. nullptr compiles fresh on every load. Only
  // consulted while the JIT tier is selected and available.
  void set_jit_cache(JitCacheShard* shard) { jit_cache_ = shard; }

  // Case-boundary reset for substrate reuse: unloads every program, resets fd
  // assignment and the XDP dispatcher, and rewinds the kernel substrate
  // (Kernel::ResetCaseState). After this, the facade behaves like one freshly
  // constructed over a freshly booted kernel.
  void ResetCaseState() {
    progs_.clear();
    next_prog_fd_ = 1;
    xdp_prog_fd_ = 0;
    xdp_update_window_ = false;
    kernel_.ResetCaseState();
  }

  // ---- BPF_MAP_* ----
  int MapCreate(const MapDef& def);  // returns map fd (>0) or -errno
  int MapUpdateElem(int map_fd, const void* key, const void* value);
  int MapLookupElem(int map_fd, const void* key, void* value_out);
  int MapDeleteElem(int map_fd, const void* key);
  int MapGetNextKey(int map_fd, const void* key, void* next_key);
  // Batched lookup (the syscall path carrying bug #9). Returns copied count.
  int MapLookupBatch(int map_fd, int max_count);

  // ---- BPF_PROG_LOAD / BPF_PROG_TEST_RUN / attach ----
  int ProgLoad(const Program& prog, VerifierResult* result_out = nullptr);
  ExecResult ProgTestRun(int prog_fd, uint32_t pkt_len = 64, uint64_t seed = 1);
  // Repeated test run reusing one execution context: BPF_PROG_TEST_RUN's
  // `repeat` attribute. Returns the last result with cumulative insn counts;
  // used by the overhead benchmark so interpretation dominates setup.
  ExecResult ProgTestRunRepeat(int prog_fd, int repeat, uint32_t pkt_len = 64,
                               uint64_t seed = 1);
  // Test run with caller-supplied context bytes: the seed-filled context is
  // overwritten with |ctx_bytes| (zero-padded / truncated to the context
  // size) before the program enters. Only meaningful for tracepoint/kprobe
  // programs, whose context carries no kernel-written pointer fields; the
  // conformance runner uses it to deliver a case's `-- mem` image.
  ExecResult ProgTestRunCtx(int prog_fd, const std::vector<uint8_t>& ctx_bytes,
                            uint64_t seed = 1);
  int ProgAttach(int prog_fd, TracepointId target);
  void DetachAll();

  // Simulated kernel activity that reaches attach points.
  void FireEvent(TracepointId id);

  // ---- XDP dispatcher ----
  int XdpInstall(int prog_fd);
  ExecResult XdpRun(uint32_t pkt_len = 64, uint64_t seed = 1);

  LoadedProgram* FindProg(int prog_fd);
  size_t prog_count() const { return progs_.size(); }

 private:
  // Builds/release a per-invocation execution context for |prog|.
  ExecContext MakeCtx(const LoadedProgram& prog, uint32_t pkt_len, uint64_t seed);
  void ReleaseCtx(ExecContext& ctx);
  ExecResult RunProgram(const LoadedProgram& prog, uint32_t pkt_len, uint64_t seed,
                        bool in_tracepoint, bool in_irq, TracepointId attach_point);

  Kernel& kernel_;
  Interpreter interp_;
  ExecLimits exec_limits_;
  VerdictCacheShard* verdict_cache_ = nullptr;
  bvf::Sanitizer* cache_sanitizer_ = nullptr;
  std::function<Program(const Program&)> canonicalize_;
  DecodeCacheShard* decode_cache_ = nullptr;
  JitCacheShard* jit_cache_ = nullptr;
  ExecEngine engine_ = ExecEngine::kDecoded;
  std::function<void(Program&, std::vector<InsnAux>&)> instrument_;
  ExecObserver exec_observer_;
  std::vector<std::unique_ptr<LoadedProgram>> progs_;
  int next_prog_fd_ = 1;

  int xdp_prog_fd_ = 0;
  bool xdp_update_window_ = false;
};

}  // namespace bpf

#endif  // SRC_RUNTIME_BPF_SYSCALL_H_
