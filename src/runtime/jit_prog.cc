// Portable half of the JIT execution tier (DESIGN.md §14): W^X code mapping,
// the C++ trampolines generated code calls for everything side-effectful, and
// the RunJit wrapper that translates JitAbort codes into the interpreters'
// exact errno/abort_reason/report behavior. The x86-64 assembler itself lives
// in jit_emit_x86_64.cc.

#include "src/runtime/jit_prog.h"

#include <sys/mman.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "src/runtime/helpers.h"
#include "src/runtime/interp_ops.h"
#include "src/runtime/jit_emit_x86_64.h"
#include "src/runtime/kernel.h"
#include "src/sanitizer/asan_check.h"

namespace bpf {

namespace {

std::atomic<bool> g_jit_force_unavailable{false};
std::atomic<bool> g_jit_miscompile{false};

// One-shot probe that the host actually permits W^X code mappings (mmap RW,
// flip to RX, execute). Some hardened environments deny PROT_EXEC remaps;
// failing the probe downgrades the tier to the decoded engine instead of
// failing every PROG_LOAD.
bool ProbeWx() {
  void* page = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (page == MAP_FAILED) {
    return false;
  }
  static_cast<uint8_t*>(page)[0] = 0xC3;  // ret
  if (mprotect(page, 4096, PROT_READ | PROT_EXEC) != 0) {
    munmap(page, 4096);
    return false;
  }
  reinterpret_cast<void (*)()>(page)();
  munmap(page, 4096);
  return true;
}

}  // namespace

bool JitAvailable() {
  if (g_jit_force_unavailable.load(std::memory_order_relaxed)) {
    return false;
  }
#if !defined(__x86_64__)
  return false;
#else
  static const bool ok = ProbeWx();
  return ok;
#endif
}

void SetJitForceUnavailableForTest(bool unavailable) {
  g_jit_force_unavailable.store(unavailable, std::memory_order_relaxed);
}

void SetJitMiscompileForTest(bool miscompile) {
  g_jit_miscompile.store(miscompile, std::memory_order_relaxed);
}

bool JitMiscompileForTest() {
  return g_jit_miscompile.load(std::memory_order_relaxed);
}

JitProgram::~JitProgram() {
  if (code != nullptr) {
    munmap(code, code_size);
  }
}

std::shared_ptr<const JitProgram> CompileJit(const DecodedProgram& decoded) {
  if (!JitAvailable()) {
    return nullptr;
  }
  std::vector<uint8_t> bytes;
  std::vector<size_t> heads;
  if (!EmitJitX86_64(decoded, &bytes, &heads)) {
    return nullptr;
  }
  void* mem = mmap(nullptr, bytes.size(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return nullptr;
  }
  std::memcpy(mem, bytes.data(), bytes.size());
  if (mprotect(mem, bytes.size(), PROT_READ | PROT_EXEC) != 0) {
    munmap(mem, bytes.size());
    return nullptr;
  }
  auto jit = std::make_shared<JitProgram>();
  jit->code = mem;
  jit->code_size = bytes.size();
  jit->entry = reinterpret_cast<JitEntry>(mem);  // prologue is at offset 0
  jit->uop_entry.resize(heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    jit->uop_entry[i] = reinterpret_cast<uint64_t>(mem) + heads[i];
  }
  return jit;
}

// ---- trampolines -----------------------------------------------------------
//
// Each wraps the exact C++ the decoded engine's handler runs (decoded_prog.cc)
// on the register file and kernel objects reachable through JitRt. Packed
// operand layouts match jit_emit_x86_64.cc's call sites field for field.

extern "C" uint64_t BvfJitWitness(JitRt* rt, uint64_t orig_pc) {
  WitnessTrace::Entry* entry = rt->witness->Append(static_cast<int32_t>(orig_pc));
  if (entry != nullptr) {
    for (int r = 0; r < kClaimRegs; ++r) {
      entry->regs[r] = rt->regs[r];
    }
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitWatchdog(JitRt* rt) {
  // Reached every 4096 charged steps (the countdown reload), or never within
  // a realistic run when the watchdog is off and the reload is the 2^62
  // sentinel — but stay correct even then.
  if (!rt->watchdog_enabled) {
    return kJitAbortNone;
  }
  if (std::chrono::steady_clock::now() >= rt->deadline) {
    return kJitAbortWatchdog;
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitLoad(JitRt* rt, uint64_t packed) {
  const uint8_t dst = packed & 0xff;
  const uint8_t src = (packed >> 8) & 0xff;
  const int size = static_cast<int>((packed >> 16) & 0xff);
  const bool btf_load = (packed >> 24) & 1;
  const bool sext = (packed >> 25) & 1;
  const int16_t off = static_cast<int16_t>(static_cast<uint16_t>(packed >> 32));
  if (!ExecMemLoad(*rt->arena, *rt->sink, rt->regs, dst, src, off, size, btf_load,
                   sext)) {
    return kJitAbortLoadFault;
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitStoreReg(JitRt* rt, uint64_t packed) {
  const uint8_t dst = packed & 0xff;
  const uint8_t src = (packed >> 8) & 0xff;
  const int size = static_cast<int>((packed >> 16) & 0xff);
  const int16_t off = static_cast<int16_t>(static_cast<uint16_t>(packed >> 32));
  if (!ExecMemStore(*rt->arena, *rt->sink, rt->regs, dst, off, rt->regs[src], size)) {
    return kJitAbortStoreFault;
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitStoreImm(JitRt* rt, uint64_t packed, uint64_t value) {
  const uint8_t dst = packed & 0xff;
  const int size = static_cast<int>((packed >> 16) & 0xff);
  const int16_t off = static_cast<int16_t>(static_cast<uint16_t>(packed >> 32));
  if (!ExecMemStore(*rt->arena, *rt->sink, rt->regs, dst, off, value, size)) {
    return kJitAbortStoreFault;
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitAtomic(JitRt* rt, uint64_t packed, uint64_t imm) {
  const uint8_t dst = packed & 0xff;
  const uint8_t src = (packed >> 8) & 0xff;
  const int size = static_cast<int>((packed >> 16) & 0xff);
  const int16_t off = static_cast<int16_t>(static_cast<uint16_t>(packed >> 32));
  if (!ExecAtomicRmw(*rt->arena, *rt->sink, rt->regs, dst, src, off, size,
                     static_cast<int32_t>(imm))) {
    return kJitAbortAtomicFault;
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitHelper(JitRt* rt, uint64_t id) {
  uint64_t* regs = rt->regs;
  const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
  regs[kR0] = DispatchHelper(*rt->kernel, *rt->ctx, static_cast<int32_t>(id), args);
  ClobberCallerSaved(regs, ++rt->call_counter);
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitKfunc(JitRt* rt, uint64_t id) {
  uint64_t* regs = rt->regs;
  const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
  regs[kR0] = DispatchKfunc(*rt->kernel, *rt->ctx, static_cast<int32_t>(id), args);
  ClobberCallerSaved(regs, ++rt->call_counter);
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitInternal(JitRt* rt, uint64_t id) {
  const InternalFn* fn = rt->kernel->FindInternalFunc(static_cast<int32_t>(id));
  if (fn == nullptr) {
    return kJitAbortBadInternal;
  }
  uint64_t* regs = rt->regs;
  const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
  regs[kR0] = (*fn)(*rt->kernel, *rt->ctx, args);
  return kJitAbortNone;
}

// Generic-table fallback shared by the four asan trampolines when BpfAsan's
// native entries are not installed (kernel.asan_funcs_native() false).
static uint64_t AsanTableFallback(JitRt* rt, int32_t id) {
  const InternalFn* fn = rt->kernel->FindInternalFunc(id);
  if (fn == nullptr) {
    return kJitAbortBadInternal;
  }
  uint64_t* regs = rt->regs;
  const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
  regs[kR0] = (*fn)(*rt->kernel, *rt->ctx, args);
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitAsanLoad(JitRt* rt, uint64_t packed) {
  const int size = static_cast<int>(packed & 0xff);
  const bool null_ok = (packed >> 8) & 1;
  if (!rt->asan_native) {
    return AsanTableFallback(rt, static_cast<int32_t>(packed >> 32));
  }
  uint64_t value;
  if (rt->arena->FastCheckedLoad(rt->regs[kR1], size, &value)) {
    rt->regs[kR0] = value;  // the inline fast path missed only narrowly
  } else {
    rt->regs[kR0] = AsanCheckedLoad(*rt->arena, *rt->sink, rt->regs[kR1], size, null_ok);
  }
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitAsanStore(JitRt* rt, uint64_t packed) {
  const int size = static_cast<int>(packed & 0xff);
  if (!rt->asan_native) {
    return AsanTableFallback(rt, static_cast<int32_t>(packed >> 32));
  }
  if (!rt->arena->FastCheckedStore(rt->regs[kR1], size, rt->regs[kR2])) {
    AsanCheckedStore(*rt->arena, *rt->sink, rt->regs[kR1], rt->regs[kR2], size);
  }
  rt->regs[kR0] = 0;
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitAsanAluPos(JitRt* rt, uint64_t id) {
  if (!rt->asan_native) {
    return AsanTableFallback(rt, static_cast<int32_t>(id));
  }
  AsanCheckAluPos(*rt->sink, rt->regs[kR1], rt->regs[kR2]);
  rt->regs[kR0] = 0;
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitAsanAluNeg(JitRt* rt, uint64_t id) {
  if (!rt->asan_native) {
    return AsanTableFallback(rt, static_cast<int32_t>(id));
  }
  AsanCheckAluNeg(*rt->sink, rt->regs[kR1], rt->regs[kR2]);
  rt->regs[kR0] = 0;
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitCallSubprog(JitRt* rt, uint64_t return_upc) {
  std::vector<JitFrame>& frames = *rt->frames;
  if (frames.size() >= static_cast<size_t>(rt->limits->max_call_depth)) {
    return kJitAbortCallDepth;
  }
  JitFrame frame;
  frame.return_upc = static_cast<int32_t>(return_upc);
  for (int i = 0; i < 4; ++i) {
    frame.saved_regs[i] = rt->regs[kR6 + i];
  }
  frame.saved_fp = rt->regs[kR10];
  frame.stack_alloc = rt->arena->Alloc(kStackSize + kExtendedStackSize, "bpf_subprog_stack");
  if (frame.stack_alloc == 0) {
    return kJitAbortStackAlloc;
  }
  rt->regs[kR10] = frame.stack_alloc + kExtendedStackSize + kStackSize;
  frames.push_back(frame);
  return kJitAbortNone;
}

extern "C" uint64_t BvfJitExit(JitRt* rt) {
  std::vector<JitFrame>& frames = *rt->frames;
  if (frames.empty()) {
    return ~0ull;  // program done; r0 is rt->regs[kR0]
  }
  const JitFrame& frame = frames.back();
  for (int i = 0; i < 4; ++i) {
    rt->regs[kR6 + i] = frame.saved_regs[i];
  }
  rt->regs[kR10] = frame.saved_fp;
  rt->arena->Free(frame.stack_alloc);
  const int32_t return_upc = frame.return_upc;
  frames.pop_back();
  return static_cast<uint64_t>(return_upc);
}

// ---- execution wrapper -----------------------------------------------------

ExecResult RunJit(Kernel& kernel, const JitProgram& jit, ExecContext& ctx,
                  const ExecLimits& limits) {
  ExecResult result;
  KasanArena& arena = kernel.arena();
  ReportSink& sink = kernel.reports();

  constexpr uint64_t kWatchdogStride = 4096;  // same clock cadence as interpreter.cc
  const bool watchdog = limits.wall_budget_ms > 0;

  std::vector<JitFrame> frames;
  JitRt rt;
  rt.regs[kR1] = ctx.ctx_addr;
  rt.regs[kR10] = ctx.fp;
  rt.max_insns = limits.step_budget;
  // With the watchdog off the countdown still runs (it saves a branch in the
  // hot prologue); the 2^62 reload keeps it from firing within any realistic
  // budget, and BvfJitWatchdog ignores spurious firings regardless.
  rt.wd_reload = watchdog ? kWatchdogStride : (1ull << 62);
  rt.witness = ctx.witness;
  rt.ret_table = jit.uop_entry.data();
  rt.mem_base = arena.jit_mem_base();
  rt.shadow_base = arena.jit_shadow_base();
  rt.page_dirty = arena.jit_page_dirty_base();
  rt.arena_size = arena.jit_arena_size();
  rt.asan_native = kernel.asan_funcs_native() ? 1 : 0;
  rt.kernel = &kernel;
  rt.ctx = &ctx;
  rt.limits = &limits;
  rt.arena = &arena;
  rt.sink = &sink;
  rt.frames = &frames;
  rt.watchdog_enabled = watchdog;
  if (watchdog) {
    rt.deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limits.wall_budget_ms);
  }

  const uint64_t code = jit.entry(&rt);
  result.insns_executed = rt.steps;

  // The budget/watchdog kWarn reports are filed here rather than from inside
  // generated code; both aborts are terminal (nothing reports after them in
  // the decoded engine either), so report order is preserved.
  switch (code) {
    case kJitAbortNone:
      result.r0 = rt.regs[kR0];
      break;
    case kJitAbortBudget:
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "soft lockup: eBPF program exceeded the execution budget");
      result.err = -ELOOP;
      result.abort_reason = "execution budget exceeded";
      break;
    case kJitAbortWatchdog:
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "watchdog: eBPF program exceeded the wall-clock budget");
      result.err = -ETIMEDOUT;
      result.abort_reason = "wall-clock budget exceeded";
      break;
    case kJitAbortPcOob:
      result.err = -EFAULT;
      result.abort_reason = "pc out of range";
      break;
    case kJitAbortLoadFault:
      result.err = -EFAULT;
      result.abort_reason = "page fault on load";
      break;
    case kJitAbortStoreFault:
      result.err = -EFAULT;
      result.abort_reason = "page fault on store";
      break;
    case kJitAbortAtomicFault:
      result.err = -EFAULT;
      result.abort_reason = "page fault on atomic";
      break;
    case kJitAbortCallDepth:
      result.err = -EFAULT;
      result.abort_reason = "call depth exceeded";
      break;
    case kJitAbortStackAlloc:
      result.err = -ENOMEM;
      result.abort_reason = "subprog stack allocation failed";
      break;
    case kJitAbortBadOpcode:
      result.err = -EINVAL;
      result.abort_reason = "unknown opcode";
      break;
    case kJitAbortBadInternal:
      result.err = -EFAULT;
      result.abort_reason = "unknown internal func";
      break;
    default:  // unreachable: every emitted path returns a known code
      result.err = -EINVAL;
      result.abort_reason = "unknown opcode";
      break;
  }

  // Release any leaked subprogram stacks on abnormal exit.
  for (const JitFrame& frame : frames) {
    arena.Free(frame.stack_alloc);
  }
  return result;
}

}  // namespace bpf
