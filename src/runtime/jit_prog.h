// Native x86-64 execution tier (DESIGN.md §14).
//
// CompileJit lowers a DecodedProgram — the same micro-op array the decoded
// engine dispatches over — into straight-line x86-64 machine code, once, at
// BPF_PROG_LOAD time. The generated code replicates the decoded engine's
// per-uop step prologue (budget charge, watchdog countdown, witness check)
// instruction for instruction, compiles pure ops (ALU, jumps, endian,
// ld_imm64) to native sequences whose edge semantics match interp_ops.h
// bit for bit, inlines the KasanArena word-wide sanitizer fast paths
// (FastCheckedLoad/FastCheckedStore) for the bpf_asan_* micro-ops, and routes
// every side-effectful operation (helpers, kfuncs, subprogram frames, faults,
// reports) through C++ trampolines that wrap the exact shared primitives the
// interpreters use. The engine is therefore digest-invisible: ExecResult,
// reports, sanitizer stats, witness traces, and campaign digests are
// bit-identical to both interpreters (tests/interp_parity_test.cc) — and any
// divergence is itself a finding (indicator #5, the JIT differential oracle
// in src/core/fuzzer.cc).
//
// Code blobs are W^X: emitted into an RW mmap, then flipped to RX with
// mprotect before first use. Host pointers that vary per substrate (arena
// memory, shadow, page-dirty table) are never baked into code — they travel
// in the per-invocation JitRt block — so one cached blob is safely shared
// across substrates, rebuilds, and forked supervisor workers, keyed by the
// same verdict digest the decode cache uses and following the identical
// epoch-shard commit discipline (src/runtime/digest_cache.h).
//
// On non-x86-64 hosts, or when the W^X allocation fails, JitAvailable() is
// false / CompileJit returns null and callers fall back to the decoded
// engine; selection-time fallback (with a one-line warning) lives in
// Bpf::set_exec_engine.

#ifndef SRC_RUNTIME_JIT_PROG_H_
#define SRC_RUNTIME_JIT_PROG_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/runtime/decoded_prog.h"
#include "src/runtime/digest_cache.h"
#include "src/runtime/exec_context.h"

namespace bpf {

class Kernel;
class KasanArena;
class ReportSink;
struct JitRt;

// Entry point of a compiled program: runs uop 0 with the machine state in
// |rt| and returns 0 on normal exit or a JitAbort code (jit_prog.cc) on any
// abort; the wrapper (RunJit) translates codes into the interpreter's exact
// errno/abort_reason/report behavior.
using JitEntry = uint64_t (*)(JitRt* rt);

// One compiled program. Immutable after compilation and substrate-agnostic
// (no host pointers in the code), so one instance is safely shared across
// substrates, workers, and rebuilds — the same sharing rule as
// DecodedProgram.
struct JitProgram {
  JitProgram() = default;
  JitProgram(const JitProgram&) = delete;
  JitProgram& operator=(const JitProgram&) = delete;
  ~JitProgram();  // munmaps |code|

  void* code = nullptr;  // RX mapping
  size_t code_size = 0;
  JitEntry entry = nullptr;
  // Native address of every uop's step prologue, indexed by uop index.
  // Subprogram returns are dynamic (the return uop is a runtime value), so
  // the exit trampoline indexes this table; everything else is patched to
  // direct jumps at compile time.
  std::vector<uint64_t> uop_entry;
};

// One bpf-to-bpf call frame, mirroring decoded_prog.cc's DecodedFrame.
struct JitFrame {
  int32_t return_upc;
  uint64_t saved_regs[4];  // R6-R9
  uint64_t saved_fp;
  uint64_t stack_alloc;
};

// Per-invocation machine-state block. Generated code keeps a pointer to it in
// r12 and addresses the leading fields with baked-in offsetof displacements,
// which is what lets one code blob serve every substrate: anything that
// varies per kernel instance or per run (arena pointers, limits, witness)
// travels here instead of in the code. The tail past |asan_native| is only
// ever touched by the C++ trampolines.
struct JitRt {
  // ---- read/written by generated code ----
  uint64_t regs[kNumTotalRegs] = {};  // BPF register file; R_i at [r12 + 8*i]
  uint64_t steps = 0;                 // published on every exit path
  uint64_t max_insns = 0;
  uint64_t wd_reload = 0;             // watchdog countdown reload value
  WitnessTrace* witness = nullptr;
  const uint64_t* ret_table = nullptr;  // JitProgram::uop_entry.data()
  uint8_t* mem_base = nullptr;          // this substrate's arena memory
  const uint8_t* shadow_base = nullptr;
  const uint8_t* page_dirty = nullptr;  // 1 byte per 4KiB arena page
  uint64_t arena_size = 0;
  uint8_t asan_native = 0;
  // ---- trampoline-only ----
  Kernel* kernel = nullptr;
  ExecContext* ctx = nullptr;
  const ExecLimits* limits = nullptr;
  KasanArena* arena = nullptr;
  ReportSink* sink = nullptr;
  std::vector<JitFrame>* frames = nullptr;
  uint64_t call_counter = 0;
  bool watchdog_enabled = false;
  std::chrono::steady_clock::time_point deadline{};
};

// True when this build/host can execute JIT-compiled programs (x86-64 and
// W^X mappings work). Cheap after the first call.
bool JitAvailable();

// Compiles |decoded| to native code. Returns null when the JIT is
// unavailable or the code mapping cannot be created; callers fall back to
// the decoded engine (never an error).
std::shared_ptr<const JitProgram> CompileJit(const DecodedProgram& decoded);

// Executes a compiled program. Behaviorally identical to RunDecoded on the
// DecodedProgram it was compiled from.
ExecResult RunJit(Kernel& kernel, const JitProgram& jit, ExecContext& ctx,
                  const ExecLimits& limits);

// JIT code blobs follow the shared digest-cache discipline
// (src/runtime/digest_cache.h), exactly like the decode cache.
using JitCache = DigestCache<const JitProgram>;
using JitCacheShard = DigestCacheShard<const JitProgram>;

// ---- Test hooks ----

// Forces JitAvailable() false / CompileJit null, exercising the graceful
// degradation path on hosts where the real JIT works.
void SetJitForceUnavailableForTest(bool unavailable);

// Deliberately miscompiles one narrow pattern (64-bit `add dst, 0x7eef`
// computes dst + 0x7ef0) so the JIT-vs-interpreter differential oracle has a
// real divergence to catch in tests. Never set outside tests.
void SetJitMiscompileForTest(bool miscompile);
bool JitMiscompileForTest();

}  // namespace bpf

#endif  // SRC_RUNTIME_JIT_PROG_H_
