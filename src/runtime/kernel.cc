#include "src/runtime/kernel.h"

#include <cstring>

#include "src/kernel/coverage.h"

namespace bpf {

Kernel::Kernel(KernelVersion version, BugConfig bugs, size_t arena_size)
    : version_(version),
      bugs_(bugs),
      arena_(arena_size),
      alloc_(arena_),
      lockdep_(reports_),
      tracepoints_(reports_),
      maps_(arena_, reports_) {
  lock_trace_printk_ = lockdep_.RegisterClass("trace_printk_lock");
  lock_task_storage_ = lockdep_.RegisterClass("bpf_task_storage_lock");
  lock_rq_ = lockdep_.RegisterClass("rq_lock");
  lock_irq_work_ = lockdep_.RegisterClass("irq_work_lock");

  // Materialize the BTF object instances programs can reach. The current
  // task is a kernel thread: pid/comm are filled in, mm stays NULL.
  const BtfStruct* task = btf_.Find(kBtfTaskStruct);
  const BtfStruct* file = btf_.Find(kBtfFile);
  const BtfStruct* cgroup = btf_.Find(kBtfCgroup);
  task_addr_ = arena_.Alloc(task->size, "task_struct");
  file_addr_ = arena_.Alloc(file->size, "file");
  cgroup_addr_ = arena_.Alloc(cgroup->size, "cgroup");

  auto put = [&](uint64_t base, uint32_t off, uint64_t value, size_t size) {
    uint8_t* host = arena_.HostPtr(base + off, size);
    if (host != nullptr) {
      std::memcpy(host, &value, size);
    }
  };
  put(task_addr_, 16, 2, 4);                  // pid
  put(task_addr_, 20, 2, 4);                  // tgid
  put(task_addr_, 40, 0, 8);                  // mm = NULL (kernel thread)
  put(task_addr_, 48, file_addr_, 8);         // files
  put(task_addr_, 56, cgroup_addr_, 8);       // cgroup
  put(task_addr_, 88, 120, 4);                // prio
  put(task_addr_, 112, task_addr_, 8);        // parent = self (init-like)
  put(task_addr_, 120, task_addr_, 8);        // real_parent
  const char comm[] = "kworker/0:1";
  uint8_t* host = arena_.HostPtr(task_addr_ + 24, sizeof(comm));
  if (host != nullptr) {
    std::memcpy(host, comm, sizeof(comm));
  }
  put(cgroup_addr_, 0, 1, 8);   // cgroup id
  put(cgroup_addr_, 16, 0, 8);  // parent cgroup = NULL (root)

  // Everything allocated so far is boot state; snapshot it so the substrate
  // can be rewound between fuzz cases (ResetCaseState).
  arena_.TakeBootSnapshot();
  boot_scalars_ = scalars_;
}

void Kernel::ResetCaseState() {
  set_fault_injector(nullptr);
  reports_.Clear();
  lockdep_.ResetCaseState();
  tracepoints_.DetachAll();
  maps_.Clear();
  arena_.ResetToBootSnapshot();
  scalars_ = boot_scalars_;
}

uint64_t Kernel::BtfObjAddr(int btf_struct_id) const {
  switch (btf_struct_id) {
    case kBtfTaskStruct:
      return task_addr_;
    case kBtfMmStruct:
      return 0;  // current is a kernel thread: no mm
    case kBtfFile:
      return file_addr_;
    case kBtfCgroup:
      return cgroup_addr_;
    default:
      return 0;
  }
}

void Kernel::RegisterInternalFunc(int32_t id, InternalFn fn) {
  // Any (re)binding may replace a BpfAsan entry, so the decoded engine's
  // inlined fast paths are no longer known-equivalent to the table.
  // BpfAsan::Register re-asserts the flag once its full set is installed.
  asan_funcs_native_ = false;
  internal_funcs_[id] = std::move(fn);
}

const InternalFn* Kernel::FindInternalFunc(int32_t id) const {
  auto it = internal_funcs_.find(id);
  return it != internal_funcs_.end() ? &it->second : nullptr;
}

void Kernel::TaskRefDec() {
  --scalars_.task_refs;
  if (scalars_.task_refs < 0) {
    reports_.Report(ReportKind::kWarn, "bpf_task_release",
                    "refcount underflow on task_struct");
    scalars_.task_refs = 0;
  }
}

void ResetWorkerProcessState() {
  Coverage::InstallThreadSink(nullptr);
  Coverage::Get().ResetHits();
}

}  // namespace bpf
