#include "src/runtime/decoded_prog.h"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "src/runtime/helpers.h"
#include "src/runtime/interp_ops.h"
#include "src/runtime/kernel.h"
#include "src/sanitizer/asan_check.h"
#include "src/verifier/helper_protos.h"

// Dispatch model: with BVF_THREADED_DISPATCH (and a toolchain that has GNU
// address-of-label), every uop body ends by jumping straight to the next
// body through a per-opcode jump table — the branch predictor sees one
// indirect branch per uop site instead of a single shared switch branch.
// Without it, the same bodies compile as cases of a portable switch. The
// bodies themselves are written once; only the UOP()/DISPATCH() glue differs.
#if defined(BVF_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define BVF_COMPUTED_GOTO 1
#else
#define BVF_COMPUTED_GOTO 0
#endif

namespace bpf {

namespace {

// Absolute uop index for a control transfer to instruction |target|: anything
// outside the program lands on the trailing kPcOob sentinel, which reproduces
// the legacy engine's "pc out of range" abort (including its step charge).
int32_t MapTarget(int64_t target, size_t insn_count) {
  return (target < 0 || target > static_cast<int64_t>(insn_count))
             ? static_cast<int32_t>(insn_count)
             : static_cast<int32_t>(target);
}

bool IsAsanLoadId(int32_t id, uint8_t* size, bool* null_ok) {
  switch (id) {
    case kAsanLoad8:
    case kAsanLoad16:
    case kAsanLoad32:
    case kAsanLoad64:
      *size = static_cast<uint8_t>(1u << (id - kAsanLoad8));
      *null_ok = false;
      return true;
    case kAsanLoadBtf8:
    case kAsanLoadBtf16:
    case kAsanLoadBtf32:
    case kAsanLoadBtf64:
      *size = static_cast<uint8_t>(1u << (id - kAsanLoadBtf8));
      *null_ok = true;
      return true;
    default:
      return false;
  }
}

bool IsAsanStoreId(int32_t id, uint8_t* size) {
  switch (id) {
    case kAsanStore8:
    case kAsanStore16:
    case kAsanStore32:
    case kAsanStore64:
      *size = static_cast<uint8_t>(1u << (id - kAsanStore8));
      return true;
    default:
      return false;
  }
}

struct DecodedFrame {
  int32_t return_upc;
  uint64_t saved_regs[4];  // R6-R9
  uint64_t saved_fp;
  uint64_t stack_alloc;
};

}  // namespace

std::shared_ptr<const DecodedProgram> DecodeProgram(const Program& prog,
                                                    const std::vector<InsnAux>& aux) {
  auto decoded = std::make_shared<DecodedProgram>();
  const auto& insns = prog.insns;
  const size_t n = insns.size();
  decoded->insn_count = n;
  decoded->uops.resize(n + 1);

  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = insns[pc];
    Uop& u = decoded->uops[pc];
    u.orig_pc = static_cast<int32_t>(pc);
    u.dst = insn.dst;
    u.src = insn.src;
    u.off = insn.off;
    // Same predicate the legacy engine evaluates per step: claims describe
    // the state before the original (non-rewritten) instruction executes.
    u.witness = pc < aux.size() && !aux[pc].rewritten && !aux[pc].claims.empty();
    const uint8_t cls = insn.Class();

    if (insn.IsLdImm64()) {
      if (pc + 1 < n) {
        u.code = UopCode::kLdImm64;
        u.imm = static_cast<int64_t>(
            (static_cast<uint64_t>(static_cast<uint32_t>(insns[pc + 1].imm)) << 32) |
            static_cast<uint32_t>(insn.imm));
        u.target = MapTarget(static_cast<int64_t>(pc) + 2, n);
        // The high slot is decoded on its own loop pass: opcode 0 classifies
        // to kInvalid, so a jump into the pair aborts exactly like legacy.
      } else {
        // A trailing lone ld_imm64 has no high slot to read; the verifier
        // rejects such encodings, so this is defensive only.
        u.code = UopCode::kInvalid;
      }
      continue;
    }

    if (cls == kClassAlu64 || cls == kClassAlu) {
      const uint8_t op = insn.AluOp();
      if (op == kAluNeg) {
        u.code = cls == kClassAlu64 ? UopCode::kNeg64 : UopCode::kNeg32;
        continue;
      }
      if (op == kAluEnd) {
        u.code = UopCode::kEndian;
        u.flag = (insn.opcode & 0x08) != 0;  // to_be
        u.imm = insn.imm;                    // width
        continue;
      }
      u.subop = op;
      if (insn.SrcIsReg()) {
        u.code = cls == kClassAlu64 ? UopCode::kAlu64Reg : UopCode::kAlu32Reg;
      } else {
        u.code = cls == kClassAlu64 ? UopCode::kAlu64Imm : UopCode::kAlu32Imm;
        u.imm = static_cast<int64_t>(insn.imm);
      }
      continue;
    }

    if (insn.IsMemLoad()) {
      u.code = UopCode::kLoad;
      u.size = static_cast<uint8_t>(insn.AccessBytes());
      u.flag = pc < aux.size() && aux[pc].mem_ptr_type == RegType::kPtrToBtfId;
      u.sext = insn.IsMemLoadSx();
      continue;
    }

    if (insn.IsStore()) {
      u.size = static_cast<uint8_t>(insn.AccessBytes());
      if (insn.IsAtomic()) {
        u.code = UopCode::kAtomic;
        u.imm = insn.imm;
        continue;
      }
      if (cls == kClassSt) {
        u.code = UopCode::kStoreImm;
        u.imm = static_cast<int64_t>(insn.imm);
      } else {
        u.code = UopCode::kStoreReg;
      }
      continue;
    }

    if (cls == kClassJmp || cls == kClassJmp32) {
      const uint8_t op = insn.JmpOp();
      if (op == kJmpJa) {
        u.code = UopCode::kJa;
        u.target = MapTarget(insn.JumpTargetPc(static_cast<int>(pc)), n);
        continue;
      }
      if (op == kJmpExit) {
        u.code = UopCode::kExit;
        continue;
      }
      if (op == kJmpCall) {
        // Classification order mirrors the legacy engine: pseudo-func call,
        // then the internal-id range (regardless of src), then kfunc/helper.
        if (insn.src == kPseudoCallFunc) {
          u.code = UopCode::kCallSubprog;
          u.target = MapTarget(insn.CallTargetPc(static_cast<int>(pc)), n);
          continue;
        }
        u.imm = insn.imm;
        if (insn.imm >= kInternalBase) {
          uint8_t size = 0;
          bool null_ok = false;
          if (IsAsanLoadId(insn.imm, &size, &null_ok)) {
            u.code = UopCode::kAsanLoad;
            u.size = size;
            u.flag = null_ok;
          } else if (IsAsanStoreId(insn.imm, &size)) {
            u.code = UopCode::kAsanStore;
            u.size = size;
          } else if (insn.imm == kAsanAluCheckPos) {
            u.code = UopCode::kAsanAluPos;
          } else if (insn.imm == kAsanAluCheckNeg) {
            u.code = UopCode::kAsanAluNeg;
          } else {
            u.code = UopCode::kCallInternal;
          }
          continue;
        }
        u.code = insn.src == kPseudoKfuncCall ? UopCode::kCallKfunc : UopCode::kCallHelper;
        continue;
      }
      // Conditional jump; ops outside the defined set behave as never-taken,
      // exactly as JmpTaken's default does in the legacy engine.
      u.subop = op;
      u.target = MapTarget(insn.JumpTargetPc(static_cast<int>(pc)), n);
      if (insn.SrcIsReg()) {
        u.code = cls == kClassJmp32 ? UopCode::kJmp32Reg : UopCode::kJmpReg;
      } else {
        u.code = cls == kClassJmp32 ? UopCode::kJmp32Imm : UopCode::kJmpImm;
        u.imm = static_cast<int64_t>(insn.imm);
      }
      continue;
    }

    u.code = UopCode::kInvalid;  // legacy "unknown opcode"
  }

  Uop& sentinel = decoded->uops[n];
  sentinel.code = UopCode::kPcOob;
  sentinel.orig_pc = static_cast<int32_t>(n);
  return decoded;
}

// The run loop is specialized on whether a witness trace is being recorded:
// campaign executions overwhelmingly run without one, and compiling the
// witness branch out of the per-uop prologue keeps the hot path to a step
// check, a watchdog countdown, and the dispatch. Both instantiations execute
// identical semantics — the parity suite runs with and without witnesses.
template <bool kWitness>
ExecResult RunDecodedImpl(Kernel& kernel, const DecodedProgram& decoded, ExecContext& ctx,
                          const ExecLimits& limits) {
  ExecResult result;
  KasanArena& arena = kernel.arena();
  ReportSink& sink = kernel.reports();
  const uint64_t max_insns = limits.step_budget;

  // Identical guard setup to the legacy engine: wall-clock watchdog checked
  // every few thousand steps, armed only when a budget is configured.
  const bool watchdog = limits.wall_budget_ms > 0;
  std::chrono::steady_clock::time_point deadline;
  if (watchdog) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(limits.wall_budget_ms);
  }
  constexpr uint64_t kWatchdogStride = 4096;
  // Countdown replaces the legacy engine's per-step modulo: it reaches zero
  // exactly when the post-increment step count is a kWatchdogStride multiple,
  // so the clock is sampled at the same instants as interpreter.cc.
  uint64_t watchdog_left = kWatchdogStride;
  // Step counter lives in a local so the hot loop never writes through the
  // result struct; it is published to result.insns_executed on every exit.
  uint64_t steps = 0;

  uint64_t regs[kNumTotalRegs] = {};
  regs[kR1] = ctx.ctx_addr;
  regs[kR10] = ctx.fp;

  std::vector<DecodedFrame> frames;
  uint64_t call_counter = 0;
  // When BpfAsan's own entries back the internal-function table, asan uops
  // take the inlined checked-access path; otherwise they fall back to the
  // generic table dispatch (preserving test-installed overrides and the
  // "unknown internal func" abort when nothing is registered).
  const bool asan_native = kernel.asan_funcs_native();

  const Uop* const uops = decoded.uops.data();
  const Uop* u = uops;
  int32_t upc = 0;

  auto abort_exec = [&](int err, const char* reason) {
    result.err = err;
    result.abort_reason = reason;
  };

#if BVF_COMPUTED_GOTO
  // Must list every UopCode in declaration order.
  static const void* const kJumpTable[] = {
      &&uop_kAlu64Imm,  &&uop_kAlu64Reg,    &&uop_kAlu32Imm,   &&uop_kAlu32Reg,
      &&uop_kNeg64,     &&uop_kNeg32,       &&uop_kEndian,     &&uop_kLdImm64,
      &&uop_kLoad,      &&uop_kStoreReg,    &&uop_kStoreImm,   &&uop_kAtomic,
      &&uop_kJa,        &&uop_kJmpImm,      &&uop_kJmpReg,     &&uop_kJmp32Imm,
      &&uop_kJmp32Reg,  &&uop_kExit,        &&uop_kCallSubprog, &&uop_kCallHelper,
      &&uop_kCallKfunc, &&uop_kCallInternal, &&uop_kAsanLoad,  &&uop_kAsanStore,
      &&uop_kAsanAluPos, &&uop_kAsanAluNeg, &&uop_kInvalid,    &&uop_kPcOob,
  };
  static_assert(sizeof(kJumpTable) / sizeof(kJumpTable[0]) == kNumUopCodes,
                "jump table must cover every UopCode");
#define UOP(name) uop_##name
#define DISPATCH() goto* kJumpTable[static_cast<size_t>(u->code)]
#else
#define UOP(name) case UopCode::name
#define DISPATCH() goto dispatch_switch
#endif
// One uop is exactly one legacy loop iteration: every transfer re-runs the
// step prologue — budget charge, watchdog countdown, witness — before the
// next dispatch, exactly as interpreter.cc does. The prologue is replicated
// into every handler (classic threaded-code layout): each handler ends in its
// own indirect jump, so the branch predictor learns per-handler successor
// patterns instead of funneling every transfer through one shared,
// maximally-mispredicted dispatch site. The cold halves (budget trip,
// watchdog fire, witness append) stay out of line.
#define NEXT(n)                                              \
  do {                                                       \
    upc = (n);                                               \
    if (steps++ >= max_insns) goto budget_exceeded;          \
    if (watchdog && --watchdog_left == 0) goto watchdog_due; \
    u = &uops[upc];                                          \
    if (kWitness && u->witness) goto witness_due;            \
    DISPATCH();                                              \
  } while (0)

  NEXT(0);

budget_exceeded:
  sink.Report(ReportKind::kWarn, "bpf_prog_run",
              "soft lockup: eBPF program exceeded the execution budget");
  abort_exec(-ELOOP, "execution budget exceeded");
  goto done;

watchdog_due:
  watchdog_left = kWatchdogStride;
  if (std::chrono::steady_clock::now() >= deadline) {
    sink.Report(ReportKind::kWarn, "bpf_prog_run",
                "watchdog: eBPF program exceeded the wall-clock budget");
    abort_exec(-ETIMEDOUT, "wall-clock budget exceeded");
    goto done;
  }
  u = &uops[upc];
  if (kWitness && u->witness) goto witness_due;
  DISPATCH();

witness_due: {
  WitnessTrace::Entry* entry = ctx.witness->Append(u->orig_pc);
  if (entry != nullptr) {
    for (int r = 0; r < kClaimRegs; ++r) {
      entry->regs[r] = regs[r];
    }
  }
  DISPATCH();
}

#if !BVF_COMPUTED_GOTO
dispatch_switch:
  switch (u->code) {
#endif

    UOP(kAlu64Imm) : {
      regs[u->dst] = AluOp64(u->subop, regs[u->dst], static_cast<uint64_t>(u->imm));
    }
    NEXT(upc + 1);

    UOP(kAlu64Reg) : {
      regs[u->dst] = AluOp64(u->subop, regs[u->dst], regs[u->src]);
    }
    NEXT(upc + 1);

    UOP(kAlu32Imm) : {
      regs[u->dst] = AluOp32(u->subop, static_cast<uint32_t>(regs[u->dst]),
                             static_cast<uint32_t>(u->imm));
    }
    NEXT(upc + 1);

    UOP(kAlu32Reg) : {
      regs[u->dst] = AluOp32(u->subop, static_cast<uint32_t>(regs[u->dst]),
                             static_cast<uint32_t>(regs[u->src]));
    }
    NEXT(upc + 1);

    UOP(kNeg64) : {
      regs[u->dst] = static_cast<uint64_t>(-static_cast<int64_t>(regs[u->dst]));
    }
    NEXT(upc + 1);

    UOP(kNeg32) : {
      regs[u->dst] = static_cast<uint32_t>(-static_cast<int32_t>(regs[u->dst]));
    }
    NEXT(upc + 1);

    UOP(kEndian) : {
      regs[u->dst] = ExecEndian(regs[u->dst], u->flag, static_cast<int32_t>(u->imm));
    }
    NEXT(upc + 1);

    UOP(kLdImm64) : {
      regs[u->dst] = static_cast<uint64_t>(u->imm);
    }
    NEXT(u->target);

    UOP(kLoad) : {
      if (!ExecMemLoad(arena, sink, regs, u->dst, u->src, u->off, u->size, u->flag,
                       u->sext)) {
        abort_exec(-EFAULT, "page fault on load");
        goto done;
      }
    }
    NEXT(upc + 1);

    UOP(kStoreReg) : {
      if (!ExecMemStore(arena, sink, regs, u->dst, u->off, regs[u->src], u->size)) {
        abort_exec(-EFAULT, "page fault on store");
        goto done;
      }
    }
    NEXT(upc + 1);

    UOP(kStoreImm) : {
      if (!ExecMemStore(arena, sink, regs, u->dst, u->off, static_cast<uint64_t>(u->imm),
                        u->size)) {
        abort_exec(-EFAULT, "page fault on store");
        goto done;
      }
    }
    NEXT(upc + 1);

    UOP(kAtomic) : {
      if (!ExecAtomicRmw(arena, sink, regs, u->dst, u->src, u->off, u->size,
                         static_cast<int32_t>(u->imm))) {
        abort_exec(-EFAULT, "page fault on atomic");
        goto done;
      }
    }
    NEXT(upc + 1);

    UOP(kJa) : { }
    NEXT(u->target);

    UOP(kJmpImm) : {
      if (JmpTaken(u->subop, regs[u->dst], static_cast<uint64_t>(u->imm), false)) {
        NEXT(u->target);
      }
    }
    NEXT(upc + 1);

    UOP(kJmpReg) : {
      if (JmpTaken(u->subop, regs[u->dst], regs[u->src], false)) {
        NEXT(u->target);
      }
    }
    NEXT(upc + 1);

    UOP(kJmp32Imm) : {
      if (JmpTaken(u->subop, regs[u->dst], static_cast<uint64_t>(u->imm), true)) {
        NEXT(u->target);
      }
    }
    NEXT(upc + 1);

    UOP(kJmp32Reg) : {
      if (JmpTaken(u->subop, regs[u->dst], regs[u->src], true)) {
        NEXT(u->target);
      }
    }
    NEXT(upc + 1);

    UOP(kExit) : {
      if (frames.empty()) {
        result.r0 = regs[kR0];
        goto done;
      }
      const DecodedFrame& frame = frames.back();
      for (int i = 0; i < 4; ++i) {
        regs[kR6 + i] = frame.saved_regs[i];
      }
      regs[kR10] = frame.saved_fp;
      arena.Free(frame.stack_alloc);
      const int32_t return_upc = frame.return_upc;
      frames.pop_back();
      NEXT(return_upc);
    }

    UOP(kCallSubprog) : {
      if (frames.size() >= static_cast<size_t>(limits.max_call_depth)) {
        abort_exec(-EFAULT, "call depth exceeded");
        goto done;
      }
      DecodedFrame frame;
      frame.return_upc = upc + 1;
      for (int i = 0; i < 4; ++i) {
        frame.saved_regs[i] = regs[kR6 + i];
      }
      frame.saved_fp = regs[kR10];
      frame.stack_alloc = arena.Alloc(kStackSize + kExtendedStackSize, "bpf_subprog_stack");
      if (frame.stack_alloc == 0) {
        abort_exec(-ENOMEM, "subprog stack allocation failed");
        goto done;
      }
      regs[kR10] = frame.stack_alloc + kExtendedStackSize + kStackSize;
      frames.push_back(frame);
      NEXT(u->target);
    }

    UOP(kCallHelper) : {
      const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
      regs[kR0] = DispatchHelper(kernel, ctx, static_cast<int32_t>(u->imm), args);
      ClobberCallerSaved(regs, ++call_counter);
    }
    NEXT(upc + 1);

    UOP(kCallKfunc) : {
      const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
      regs[kR0] = DispatchKfunc(kernel, ctx, static_cast<int32_t>(u->imm), args);
      ClobberCallerSaved(regs, ++call_counter);
    }
    NEXT(upc + 1);

    UOP(kCallInternal) : {
      const InternalFn* fn = kernel.FindInternalFunc(static_cast<int32_t>(u->imm));
      if (fn == nullptr) {
        abort_exec(-EFAULT, "unknown internal func");
        goto done;
      }
      const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
      regs[kR0] = (*fn)(kernel, ctx, args);
    }
    NEXT(upc + 1);

    UOP(kAsanLoad) : {
      if (asan_native) {
        // Word-wide fast path; anything but a clean interior hit falls back
        // to the reporting path, which re-classifies from scratch.
        uint64_t value;
        if (arena.FastCheckedLoad(regs[kR1], u->size, &value)) {
          regs[kR0] = value;
        } else {
          regs[kR0] = AsanCheckedLoad(arena, sink, regs[kR1], u->size, u->flag);
        }
      } else {
        const InternalFn* fn = kernel.FindInternalFunc(static_cast<int32_t>(u->imm));
        if (fn == nullptr) {
          abort_exec(-EFAULT, "unknown internal func");
          goto done;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        regs[kR0] = (*fn)(kernel, ctx, args);
      }
    }
    NEXT(upc + 1);

    UOP(kAsanStore) : {
      if (asan_native) {
        if (!arena.FastCheckedStore(regs[kR1], u->size, regs[kR2])) {
          AsanCheckedStore(arena, sink, regs[kR1], regs[kR2], u->size);
        }
        regs[kR0] = 0;
      } else {
        const InternalFn* fn = kernel.FindInternalFunc(static_cast<int32_t>(u->imm));
        if (fn == nullptr) {
          abort_exec(-EFAULT, "unknown internal func");
          goto done;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        regs[kR0] = (*fn)(kernel, ctx, args);
      }
    }
    NEXT(upc + 1);

    UOP(kAsanAluPos) : {
      if (asan_native) {
        AsanCheckAluPos(sink, regs[kR1], regs[kR2]);
        regs[kR0] = 0;
      } else {
        const InternalFn* fn = kernel.FindInternalFunc(static_cast<int32_t>(u->imm));
        if (fn == nullptr) {
          abort_exec(-EFAULT, "unknown internal func");
          goto done;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        regs[kR0] = (*fn)(kernel, ctx, args);
      }
    }
    NEXT(upc + 1);

    UOP(kAsanAluNeg) : {
      if (asan_native) {
        AsanCheckAluNeg(sink, regs[kR1], regs[kR2]);
        regs[kR0] = 0;
      } else {
        const InternalFn* fn = kernel.FindInternalFunc(static_cast<int32_t>(u->imm));
        if (fn == nullptr) {
          abort_exec(-EFAULT, "unknown internal func");
          goto done;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        regs[kR0] = (*fn)(kernel, ctx, args);
      }
    }
    NEXT(upc + 1);

    UOP(kInvalid) : {
      abort_exec(-EINVAL, "unknown opcode");
      goto done;
    }

    UOP(kPcOob) : {
      abort_exec(-EFAULT, "pc out of range");
      goto done;
    }

#if !BVF_COMPUTED_GOTO
  }
  abort_exec(-EINVAL, "unknown opcode");  // unreachable: the switch is total
  goto done;
#endif

#undef UOP
#undef DISPATCH
#undef NEXT

done:
  result.insns_executed = steps;
  // Release any leaked subprogram stacks on abnormal exit.
  for (const DecodedFrame& frame : frames) {
    arena.Free(frame.stack_alloc);
  }
  return result;
}

ExecResult RunDecoded(Kernel& kernel, const DecodedProgram& decoded, ExecContext& ctx,
                      const ExecLimits& limits) {
  if (ctx.witness != nullptr) {
    return RunDecodedImpl<true>(kernel, decoded, ctx, limits);
  }
  return RunDecodedImpl<false>(kernel, decoded, ctx, limits);
}

}  // namespace bpf
