// Helper and kfunc runtime implementations.
//
// Helpers are kernel code: their memory accesses go through the KASAN-
// instrumented Checked* accessors, and their locking goes through lockdep —
// which is what lets indicator #2 capture bugs that surface inside kernel
// routines invoked by verified programs (paper §3.2).

#include "src/runtime/helpers.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/verifier/helper_protos.h"

namespace bpf {

namespace {

// Copies |size| bytes of guest memory into a host buffer via the KASAN-
// checked path. Returns false if the source is unbacked.
bool CopyFromGuest(Kernel& kernel, uint64_t addr, size_t size, std::vector<uint8_t>* out,
                   const char* what) {
  out->resize(size);
  for (size_t i = 0; i < size; ++i) {
    uint64_t byte = 0;
    if (!kernel.arena().CheckedRead(addr + i, 1, &byte, kernel.reports(), what)) {
      return false;
    }
    (*out)[i] = static_cast<uint8_t>(byte);
  }
  return true;
}

uint64_t HelperMapLookup(Kernel& kernel, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  if (map == nullptr) {
    return 0;
  }
  std::vector<uint8_t> key;
  if (!CopyFromGuest(kernel, args[1], map->key_size(), &key, "bpf_map_lookup_elem")) {
    return 0;
  }
  return map->Lookup(key.data());
}

uint64_t HelperMapUpdate(Kernel& kernel, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  if (map == nullptr) {
    return static_cast<uint64_t>(-EINVAL);
  }
  std::vector<uint8_t> key;
  std::vector<uint8_t> value;
  if (!CopyFromGuest(kernel, args[1], map->key_size(), &key, "bpf_map_update_elem") ||
      !CopyFromGuest(kernel, args[2], map->value_size(), &value, "bpf_map_update_elem")) {
    return static_cast<uint64_t>(-EFAULT);
  }
  return static_cast<uint64_t>(map->Update(key.data(), value.data()));
}

uint64_t HelperMapDelete(Kernel& kernel, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  if (map == nullptr) {
    return static_cast<uint64_t>(-EINVAL);
  }
  std::vector<uint8_t> key;
  if (!CopyFromGuest(kernel, args[1], map->key_size(), &key, "bpf_map_delete_elem")) {
    return static_cast<uint64_t>(-EFAULT);
  }
  return static_cast<uint64_t>(map->Delete(key.data()));
}

uint64_t HelperTracePrintk(Kernel& kernel, ExecContext& ctx, const uint64_t args[5]) {
  const uint64_t fmt = args[0];
  const uint64_t size = args[1] > 64 ? 64 : args[1];
  std::vector<uint8_t> buf;
  if (!CopyFromGuest(kernel, fmt, size, &buf, "bpf_trace_printk")) {
    return static_cast<uint64_t>(-EFAULT);
  }
  // trace_printk serializes on an internal lock and passes through its own
  // tracing attach point — the re-entrancy source of Table 2 bug #4.
  kernel.lockdep().Acquire(kernel.lock_trace_printk(), ctx.lock_context());
  kernel.tracepoints().Fire(TracepointId::kTracePrintk);
  kernel.lockdep().Release(kernel.lock_trace_printk());
  return size;
}

uint64_t HelperGetCurrentComm(Kernel& kernel, const uint64_t args[5]) {
  const uint64_t buf = args[0];
  const uint64_t size = args[1] > 16 ? 16 : args[1];
  const char comm[] = "kworker/0:1";
  for (uint64_t i = 0; i < size; ++i) {
    const uint8_t byte = i < sizeof(comm) ? static_cast<uint8_t>(comm[i]) : 0;
    if (!kernel.arena().CheckedWrite(buf + i, 1, byte, kernel.reports(),
                                     "bpf_get_current_comm")) {
      return static_cast<uint64_t>(-EFAULT);
    }
  }
  return 0;
}

uint64_t HelperPerfEventOutput(Kernel& kernel, ExecContext& ctx, const uint64_t args[5]) {
  const uint64_t data = args[3];
  const uint64_t size = args[4] > 512 ? 512 : args[4];
  std::vector<uint8_t> buf;
  if (!CopyFromGuest(kernel, data, size, &buf, "bpf_perf_event_output")) {
    return static_cast<uint64_t>(-EFAULT);
  }
  // Bug #10: the output path queues completion work with irq_work_queue()
  // while running under the very lock that the irq_work path takes again.
  // The fixed implementation uses a lockless ring instead.
  if (kernel.bugs().bug10_irq_work && ctx.in_tracepoint) {
    kernel.lockdep().Acquire(kernel.lock_rq(), ctx.lock_context());
    kernel.lockdep().Release(kernel.lock_rq());
  }
  return 0;
}

uint64_t HelperSendSignal(Kernel& kernel, ExecContext& ctx, const uint64_t args[5]) {
  if (ctx.in_irq) {
    if (kernel.bugs().bug6_send_signal) {
      // Bug #6: missing strict context check; queueing a signal against the
      // interrupted task from irq context corrupts the signal state.
      kernel.reports().Panic("bpf_send_signal",
                             "signal delivery attempted from irq context");
      return 0;
    }
    return static_cast<uint64_t>(-EPERM);
  }
  return 0;
}

uint64_t HelperRingbufOutput(Kernel& kernel, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  auto* ringbuf = dynamic_cast<RingbufMap*>(map);
  if (ringbuf == nullptr) {
    return static_cast<uint64_t>(-EINVAL);
  }
  return static_cast<uint64_t>(
      ringbuf->Output(args[1], static_cast<uint32_t>(args[2])));
}

uint64_t HelperTaskStorageGet(Kernel& kernel, ExecContext& ctx, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  if (map == nullptr || map->def().type != MapType::kHash) {
    return 0;
  }
  const uint64_t task = args[1];
  const uint64_t flags = args[3];

  // The storage bucket lock is contended: acquiring it raises the
  // contention_begin tracepoint while the lock is held elsewhere. A program
  // attached there that re-enters this helper re-acquires the same class —
  // the Fig. 2 / Table 2 bug #5 deadlock shape.
  kernel.lockdep().Acquire(kernel.lock_task_storage(), ctx.lock_context());
  kernel.tracepoints().Fire(TracepointId::kContentionBegin);

  std::vector<uint8_t> key(map->key_size(), 0);
  std::memcpy(key.data(), &task, std::min<size_t>(sizeof(task), key.size()));
  uint64_t value_addr = map->Lookup(key.data());
  if (value_addr == 0 && (flags & 1) != 0) {
    std::vector<uint8_t> zero(map->value_size(), 0);
    map->Update(key.data(), zero.data());
    value_addr = map->Lookup(key.data());
  }
  kernel.lockdep().Release(kernel.lock_task_storage());
  return value_addr;
}

uint64_t HelperTaskStorageDelete(Kernel& kernel, ExecContext& ctx, const uint64_t args[5]) {
  Map* map = kernel.maps().FindByObjAddr(args[0]);
  if (map == nullptr || map->def().type != MapType::kHash) {
    return static_cast<uint64_t>(-EINVAL);
  }
  const uint64_t task = args[1];
  kernel.lockdep().Acquire(kernel.lock_task_storage(), ctx.lock_context());
  kernel.tracepoints().Fire(TracepointId::kContentionBegin);
  std::vector<uint8_t> key(map->key_size(), 0);
  std::memcpy(key.data(), &task, std::min<size_t>(sizeof(task), key.size()));
  const int err = map->Delete(key.data());
  kernel.lockdep().Release(kernel.lock_task_storage());
  return static_cast<uint64_t>(err);
}

}  // namespace

uint64_t DispatchHelper(Kernel& kernel, ExecContext& ctx, int32_t helper_id,
                        const uint64_t args[5]) {
  // Fault-injectable helper error paths (fail_function analogue). Only
  // helpers whose kernel contract includes a failure return are eligible;
  // each fails with the errno (or NULL) a real implementation can produce,
  // so injected failures are indistinguishable from organic ones.
  if (kernel.fault_injector() != nullptr) {
    switch (helper_id) {
      case kHelperMapLookupElem:
      case kHelperTaskStorageGet:
        if (kernel.ShouldInjectFault(FaultPoint::kHelperCall)) {
          return 0;  // NULL: lookup miss / storage allocation failure
        }
        break;
      case kHelperMapUpdateElem:
      case kHelperMapDeleteElem:
        if (kernel.ShouldInjectFault(FaultPoint::kHelperCall)) {
          return static_cast<uint64_t>(-ENOMEM);
        }
        break;
      case kHelperPerfEventOutput:
        if (kernel.ShouldInjectFault(FaultPoint::kHelperCall)) {
          return static_cast<uint64_t>(-ENOSPC);
        }
        break;
      case kHelperRingbufOutput:
        if (kernel.ShouldInjectFault(FaultPoint::kHelperCall)) {
          return static_cast<uint64_t>(-ENOMEM);
        }
        break;
      default:
        break;
    }
  }
  switch (helper_id) {
    case kHelperMapLookupElem:
      return HelperMapLookup(kernel, args);
    case kHelperMapUpdateElem:
      return HelperMapUpdate(kernel, args);
    case kHelperMapDeleteElem:
      return HelperMapDelete(kernel, args);
    case kHelperKtimeGetNs:
      return kernel.NextKtime();
    case kHelperTracePrintk:
      return HelperTracePrintk(kernel, ctx, args);
    case kHelperGetPrandomU32:
      return kernel.NextPrandom();
    case kHelperGetSmpProcessorId:
      return 0;
    case kHelperGetCurrentPidTgid:
      return (2ull << 32) | 2ull;
    case kHelperGetCurrentComm:
      return HelperGetCurrentComm(kernel, args);
    case kHelperPerfEventOutput:
      return HelperPerfEventOutput(kernel, ctx, args);
    case kHelperGetCurrentTask:
    case kHelperGetCurrentTaskBtf:
      return kernel.current_task_addr();
    case kHelperSendSignal:
      return HelperSendSignal(kernel, ctx, args);
    case kHelperRingbufOutput:
      return HelperRingbufOutput(kernel, args);
    case kHelperTaskStorageGet:
      return HelperTaskStorageGet(kernel, ctx, args);
    case kHelperTaskStorageDelete:
      return HelperTaskStorageDelete(kernel, ctx, args);
    case kHelperLoop:
      return 0;  // callback-less subset
    default:
      kernel.reports().Report(ReportKind::kWarn, "bpf_helper_dispatch",
                              "call to unimplemented helper " + std::to_string(helper_id));
      return 0;
  }
}

uint64_t DispatchKfunc(Kernel& kernel, ExecContext& ctx, int32_t btf_func_id,
                       const uint64_t args[5]) {
  switch (btf_func_id) {
    case kKfuncTaskAcquire:
      kernel.TaskRefInc();
      return args[0];
    case kKfuncTaskRelease:
      kernel.TaskRefDec();
      return 0;
    case kKfuncRcuReadLock:
    case kKfuncRcuReadUnlock:
      return 0;
    default:
      kernel.reports().Report(ReportKind::kWarn, "bpf_kfunc_dispatch",
                              "call to unknown kfunc " + std::to_string(btf_func_id));
      return 0;
  }
}

}  // namespace bpf
