// x86-64 machine-code emission for the JIT execution tier (DESIGN.md §14).
//
// Split from jit_prog.cc so the architecture-specific assembler stays in one
// translation unit: jit_prog.cc owns the portable pieces (W^X code mapping,
// the C++ trampolines, the RunJit wrapper) and this file owns instruction
// encoding and the per-uop lowering sequences. On non-x86-64 builds the
// emitter compiles to a stub that always fails, which CompileJit turns into
// the decoded-engine fallback.

#ifndef SRC_RUNTIME_JIT_EMIT_X86_64_H_
#define SRC_RUNTIME_JIT_EMIT_X86_64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/runtime/decoded_prog.h"

namespace bpf {

struct JitRt;

// Abort codes returned by compiled code / trampolines; RunJit translates them
// into the interpreters' exact errno + abort_reason + terminal-report
// behavior. 0 means clean exit (r0 is in JitRt::regs[0]).
enum JitAbort : uint64_t {
  kJitAbortNone = 0,
  kJitAbortBudget = 1,        // -ELOOP  "execution budget exceeded"
  kJitAbortWatchdog = 2,      // -ETIMEDOUT "wall-clock budget exceeded"
  kJitAbortPcOob = 3,         // -EFAULT "pc out of range"
  kJitAbortLoadFault = 4,     // -EFAULT "page fault on load"
  kJitAbortStoreFault = 5,    // -EFAULT "page fault on store"
  kJitAbortAtomicFault = 6,   // -EFAULT "page fault on atomic"
  kJitAbortCallDepth = 7,     // -EFAULT "call depth exceeded"
  kJitAbortStackAlloc = 8,    // -ENOMEM "subprog stack allocation failed"
  kJitAbortBadOpcode = 9,     // -EINVAL "unknown opcode"
  kJitAbortBadInternal = 10,  // -EFAULT "unknown internal func"
};

// C++ slow paths the generated code calls (defined in jit_prog.cc). All use
// the SysV C convention with the JitRt* first so BPF register state — which
// lives in JitRt::regs, not host registers — is reachable without spills.
// Every function returns a JitAbort (0 = continue); BvfJitExit instead
// returns ~0ull for "program done" or the uop index to resume at after a
// subprogram return.
extern "C" {
uint64_t BvfJitWitness(JitRt* rt, uint64_t orig_pc);
uint64_t BvfJitWatchdog(JitRt* rt);
uint64_t BvfJitLoad(JitRt* rt, uint64_t packed);
uint64_t BvfJitStoreReg(JitRt* rt, uint64_t packed);
uint64_t BvfJitStoreImm(JitRt* rt, uint64_t packed, uint64_t value);
uint64_t BvfJitAtomic(JitRt* rt, uint64_t packed, uint64_t imm);
uint64_t BvfJitHelper(JitRt* rt, uint64_t id);
uint64_t BvfJitKfunc(JitRt* rt, uint64_t id);
uint64_t BvfJitInternal(JitRt* rt, uint64_t id);
uint64_t BvfJitAsanLoad(JitRt* rt, uint64_t packed);
uint64_t BvfJitAsanStore(JitRt* rt, uint64_t packed);
uint64_t BvfJitAsanAluPos(JitRt* rt, uint64_t id);
uint64_t BvfJitAsanAluNeg(JitRt* rt, uint64_t id);
uint64_t BvfJitCallSubprog(JitRt* rt, uint64_t return_upc);
uint64_t BvfJitExit(JitRt* rt);
}

// Lowers |decoded| to x86-64 machine code. On success fills |code| with the
// finished (relocated-for-offset-zero) bytes — internal control flow is
// rel32, so the blob can be copied to any base — and |head_offsets| with the
// offset of every uop's step prologue (indexed like decoded.uops; this
// becomes JitProgram::uop_entry once the final base address is known).
// Returns false on non-x86-64 builds or if the program is not encodable.
bool EmitJitX86_64(const DecodedProgram& decoded, std::vector<uint8_t>* code,
                   std::vector<size_t>* head_offsets);

}  // namespace bpf

#endif  // SRC_RUNTIME_JIT_EMIT_X86_64_H_
