// The simulated-kernel aggregate: wires together the arena, allocator, KASAN,
// lockdep, tracepoints, BTF, and the map registry, and owns the runtime
// instances of BTF-typed kernel objects ("current" task and friends).

#ifndef SRC_RUNTIME_KERNEL_H_
#define SRC_RUNTIME_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/kernel/alloc.h"
#include "src/kernel/btf.h"
#include "src/kernel/fault_inject.h"
#include "src/kernel/kasan.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/report.h"
#include "src/kernel/tracepoint.h"
#include "src/maps/map.h"
#include "src/verifier/bug_registry.h"
#include "src/verifier/kernel_version.h"

namespace bpf {

struct ExecContext;
class Kernel;

// Signature of internal kernel functions callable from rewritten eBPF
// programs (the bpf_asan_* dispatch targets). Register-preserving except R0.
using InternalFn = std::function<uint64_t(Kernel&, ExecContext&, const uint64_t args[5])>;

class Kernel {
 public:
  explicit Kernel(KernelVersion version, BugConfig bugs, size_t arena_size = 1u << 20);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  ReportSink& reports() { return reports_; }
  KasanArena& arena() { return arena_; }
  KernelAllocator& alloc() { return alloc_; }
  Lockdep& lockdep() { return lockdep_; }
  TracepointRegistry& tracepoints() { return tracepoints_; }
  const BtfRegistry& btf() const { return btf_; }
  MapRegistry& maps() { return maps_; }

  KernelVersion version() const { return version_; }
  const BugConfig& bugs() const { return bugs_; }
  BugConfig& mutable_bugs() { return bugs_; }

  // Arms fault injection for the current case (failslab/fail_function model):
  // propagates to the allocator and is consulted by the syscall and helper
  // layers. Non-owning; nullptr disarms. Cleared by ResetCaseState().
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
    alloc_.set_fault_injector(injector);
  }
  FaultInjector* fault_injector() { return fault_injector_; }
  bool ShouldInjectFault(FaultPoint point) {
    return fault_injector_ != nullptr && fault_injector_->ShouldFail(point);
  }

  // Restores the substrate to its post-boot state between fuzz cases:
  // reports, lockdep (held locks + usage bits), tracepoint attachments, maps,
  // the KASAN arena (boot snapshot rewind, quarantine purge), and the
  // deterministic entropy sources. After this, a reused kernel is
  // indistinguishable from a freshly constructed one.
  void ResetCaseState();

  // Runtime addresses of the BTF object instances reachable from programs.
  // Deliberately, mm_struct resolves to 0: the current task is a kernel
  // thread, so `task->mm` is NULL at runtime even though its PTR_TO_BTF_ID
  // typing is trusted non-null — the premise of Table 2 bug #1.
  uint64_t BtfObjAddr(int btf_struct_id) const;
  uint64_t current_task_addr() const { return task_addr_; }

  // Well-known lock classes.
  int lock_trace_printk() const { return lock_trace_printk_; }
  int lock_task_storage() const { return lock_task_storage_; }
  int lock_rq() const { return lock_rq_; }
  int lock_irq_work() const { return lock_irq_work_; }

  // Internal functions installed by rewrite passes (the sanitizer).
  void RegisterInternalFunc(int32_t id, InternalFn fn);
  const InternalFn* FindInternalFunc(int32_t id) const;

  // True while the bpf_asan_* ids resolve to BpfAsan's own entries
  // (BpfAsan::Register sets it; re-registering any id in the asan range
  // clears it). The pre-decoded engine consults this before taking its
  // inlined asan fast paths; when false it falls back to the generic
  // internal-function table, preserving whatever a test installed.
  bool asan_funcs_native() const { return asan_funcs_native_; }
  void set_asan_funcs_native(bool native) { asan_funcs_native_ = native; }

  // Per-case scalar substrate state, restored from one boot snapshot by
  // ResetCaseState(). Any new per-case scalar belongs HERE, not as a loose
  // Kernel member: the struct-wide assignment in ResetCaseState() then resets
  // it automatically, so a field can't be silently forgotten the way the old
  // hand-written per-field resets could forget one.
  struct CaseScalars {
    // Deterministic "entropy" sources for helpers.
    uint64_t ktime = 1'000'000'000;
    uint32_t prandom = 0x12345678;
    // Acquired-task refcount (kfunc task_acquire/release bookkeeping).
    int task_refs = 0;
  };

  // Deterministic "entropy" sources for helpers.
  uint64_t NextKtime() { return scalars_.ktime += 1000; }
  uint32_t NextPrandom() {
    scalars_.prandom = scalars_.prandom * 1664525u + 1013904223u;
    return scalars_.prandom;
  }

  // Acquired-task refcount (kfunc task_acquire/release bookkeeping).
  void TaskRefInc() { ++scalars_.task_refs; }
  void TaskRefDec();
  int task_refs() const { return scalars_.task_refs; }

 private:
  KernelVersion version_;
  BugConfig bugs_;
  ReportSink reports_;
  KasanArena arena_;
  KernelAllocator alloc_;
  Lockdep lockdep_;
  TracepointRegistry tracepoints_;
  BtfRegistry btf_;
  MapRegistry maps_;

  uint64_t task_addr_ = 0;
  uint64_t file_addr_ = 0;
  uint64_t cgroup_addr_ = 0;

  int lock_trace_printk_ = 0;
  int lock_task_storage_ = 0;
  int lock_rq_ = 0;
  int lock_irq_work_ = 0;

  std::map<int32_t, InternalFn> internal_funcs_;
  bool asan_funcs_native_ = false;
  FaultInjector* fault_injector_ = nullptr;
  CaseScalars scalars_;
  // Boot-time copy captured at construction; ResetCaseState() restores from
  // it with one struct assignment (mirrors arena_.TakeBootSnapshot()).
  CaseScalars boot_scalars_;
};

// Resets every piece of process-global simulated-machine state a freshly
// forked (or re-forked) campaign worker process must not inherit from its
// parent: the coverage registry's hit set (workers rebuild their committed
// view from the coordinator's key sync) and any thread-installed coverage
// sink. Kernel instances themselves are per-CaseRunner objects and need no
// reset — a worker constructs its own after calling this.
void ResetWorkerProcessState();

}  // namespace bpf

#endif  // SRC_RUNTIME_KERNEL_H_
