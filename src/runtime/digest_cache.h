// Digest-keyed artifact cache with the §9 epoch-shard commit discipline.
//
// The decode cache (PR 4) and the JIT code cache share one concurrency and
// determinism model, so the machinery lives here once and each cache is an
// instantiation:
//
//  * the committed store is keyed by the 128-bit verdict digest (VerdictKey):
//    identical key => identical verifier output => identical rewritten
//    program => identical lowered artifact, so first-commit-wins is sound;
//  * between epoch barriers the committed store is read-only; workers buffer
//    inserts in per-shard pending lists tagged with their iteration number,
//    and the coordinator merges them in iteration order at the barrier
//    (CommitShards) while workers are parked — so the insert sequence, the
//    FIFO eviction sequence, and therefore every later epoch's hit/miss/evict
//    counters are job-count-invariant;
//  * a shard in immediate mode (serial engine, supervised worker process)
//    commits on the spot, which is the jobs=1 ordering by construction;
//  * shard lookups see only the committed store — never the shard's own
//    pending inserts — keeping the hit/miss sequence identical for every job
//    count;
//  * entries are std::shared_ptr, so FIFO eviction never invalidates an
//    artifact still referenced by a loaded program.

#ifndef SRC_RUNTIME_DIGEST_CACHE_H_
#define SRC_RUNTIME_DIGEST_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/runtime/verdict_cache.h"

namespace bpf {

template <typename V>
class DigestCacheShard;

// Shared committed store of lowered artifacts (decoded programs, JIT code
// blobs), keyed by the verdict digest. Capacity-bounded with FIFO eviction in
// commit order, which is itself deterministic.
template <typename V>
class DigestCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1 << 12;

  explicit DigestCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  std::shared_ptr<V> Lookup(const VerdictKey& key) const {
    const auto it = committed_.find(key);
    return it == committed_.end() ? nullptr : it->second;
  }

  // Merges every shard's pending inserts in iteration order (so both the
  // insert sequence and the eviction sequence are job-count-invariant), then
  // clears them.
  void CommitShards(const std::vector<DigestCacheShard<V>*>& shards) {
    std::vector<typename DigestCacheShard<V>::Pending*> merged;
    for (DigestCacheShard<V>* shard : shards) {
      for (auto& pending : shard->pending_) {
        merged.push_back(&pending);
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const typename DigestCacheShard<V>::Pending* a,
                 const typename DigestCacheShard<V>::Pending* b) {
                return a->iteration < b->iteration;
              });
    for (typename DigestCacheShard<V>::Pending* pending : merged) {
      CommitOne(pending->key, std::move(pending->value));
    }
    for (DigestCacheShard<V>* shard : shards) {
      shard->pending_.clear();
    }
  }

  size_t size() const { return committed_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  friend class DigestCacheShard<V>;

  void CommitOne(const VerdictKey& key, std::shared_ptr<V> value) {
    if (committed_.find(key) != committed_.end()) {
      return;  // first commit wins
    }
    if (committed_.size() >= max_entries_ && !fifo_.empty()) {
      committed_.erase(fifo_.front());
      fifo_.pop_front();
      ++evictions_;
    }
    committed_.emplace(key, std::move(value));
    fifo_.push_back(key);
  }

  size_t max_entries_;
  uint64_t evictions_ = 0;
  std::unordered_map<VerdictKey, std::shared_ptr<V>, VerdictKeyHash> committed_;
  std::deque<VerdictKey> fifo_;  // committed keys in commit order
};

// Per-worker handle; see the file comment for the commit discipline.
template <typename V>
class DigestCacheShard {
 public:
  DigestCacheShard(DigestCache<V>& owner, bool immediate)
      : owner_(owner), immediate_(immediate) {}

  void set_iteration(uint64_t iteration) { iteration_ = iteration; }

  std::shared_ptr<V> Lookup(const VerdictKey& key) {
    std::shared_ptr<V> cached = owner_.Lookup(key);
    if (cached != nullptr) {
      ++hits_;
    } else {
      ++misses_;
    }
    return cached;
  }

  void Insert(const VerdictKey& key, std::shared_ptr<V> value) {
    if (immediate_) {
      owner_.CommitOne(key, std::move(value));
    } else {
      pending_.emplace_back(iteration_, key, std::move(value));
    }
  }

  // Counter drain (the engines fold these into CampaignStats per epoch).
  uint64_t TakeHits() { return std::exchange(hits_, 0); }
  uint64_t TakeMisses() { return std::exchange(misses_, 0); }

 private:
  friend class DigestCache<V>;

  struct Pending {
    uint64_t iteration;
    VerdictKey key;
    std::shared_ptr<V> value;
    Pending(uint64_t i, const VerdictKey& k, std::shared_ptr<V>&& v)
        : iteration(i), key(k), value(std::move(v)) {}
  };

  DigestCache<V>& owner_;
  bool immediate_;
  uint64_t iteration_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Pending> pending_;
};

}  // namespace bpf

#endif  // SRC_RUNTIME_DIGEST_CACHE_H_
