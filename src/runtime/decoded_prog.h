// Decode-once micro-op execution engine (DESIGN.md §10).
//
// The legacy interpreter re-derives everything about an instruction — class,
// op, operand source, jump target, helper binding — from the raw Insn bytes
// on every step of every run, while the campaign executes the same accepted
// program many times (ProgTestRun repeats, attach events, confirmation runs,
// fault replays). DecodeProgram lowers a verified, sanitizer-rewritten
// program once, at BPF_PROG_LOAD time, into a dense array of micro-ops:
//
//   * the opcode is resolved to a flat UopCode (one dispatch, no nested
//     class/op/mode switches),
//   * ld_imm64 pairs are folded into a single uop carrying the full 64-bit
//     immediate (the high slot keeps a kInvalid placeholder so uop indices
//     stay equal to instruction indices and jumps into the pair behave
//     exactly like the legacy engine),
//   * jump offsets become absolute uop indices; any target outside the
//     program maps to a trailing kPcOob sentinel that reproduces the legacy
//     "pc out of range" abort,
//   * bpf_asan_{load,store}{8,16,32,64}, the BTF load variants, and the alu
//     guards — the hot sanitizer dispatch targets — are recognized by id and
//     lowered to dedicated uops that inline the checked-access semantics
//     (src/sanitizer/asan_check.h) with size/null_ok precomputed, skipping
//     the id->std::function table entirely, and
//   * per-insn flags the hot loop needs (witness recording, PTR_TO_BTF_ID
//     exception handling) are baked into the uop.
//
// RunDecoded executes the array with computed-goto threaded dispatch when the
// toolchain supports it (portable switch fallback behind the
// BVF_THREADED_DISPATCH cmake option). The engine is digest-invisible: it
// shares its per-instruction semantics with the legacy interpreter
// (src/runtime/interp_ops.h), runs the identical budget/watchdog/witness
// prologue on every uop, and a uop is exactly one legacy loop iteration, so
// ExecResult (r0, errno, insns_executed, abort_reason), reports, sanitizer
// stats, and fault-injection points are bit-identical — see
// tests/interp_parity_test.cc for the differential gate.
//
// DecodedProgram objects are cached under the same 128-bit digest the
// VerdictCache keys on (identical key => identical verifier output =>
// identical rewritten program and aux => identical decode). The cache is an
// instantiation of the shared digest-cache discipline
// (src/runtime/digest_cache.h): epoch-shard commits keep hit/miss/evict
// counters job-count-invariant under the parallel engine, and entries are
// evicted FIFO in commit order, which is itself deterministic. LoadedProgram
// holds a shared_ptr, so eviction or case reset never invalidates a program
// that is still loaded (prog-fd close simply drops the last reference).

#ifndef SRC_RUNTIME_DECODED_PROG_H_
#define SRC_RUNTIME_DECODED_PROG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/runtime/digest_cache.h"
#include "src/runtime/exec_context.h"
#include "src/runtime/verdict_cache.h"

namespace bpf {

class Kernel;

enum class UopCode : uint8_t {
  kAlu64Imm,
  kAlu64Reg,
  kAlu32Imm,
  kAlu32Reg,
  kNeg64,
  kNeg32,
  kEndian,      // bswap / to_le mask; flag = to_be, imm = width
  kLdImm64,     // folded pair; imm = full 64-bit immediate, target = pc + 2
  kLoad,        // BPF_LDX|BPF_MEM[SX]; flag = PTR_TO_BTF_ID, sext = BPF_MEMSX
  kStoreReg,
  kStoreImm,
  kAtomic,
  kJa,
  kJmpImm,
  kJmpReg,
  kJmp32Imm,
  kJmp32Reg,
  kExit,
  kCallSubprog,   // target = callee entry uop
  kCallHelper,    // imm = helper id
  kCallKfunc,     // imm = kfunc id
  kCallInternal,  // imm = internal func id (generic table dispatch)
  kAsanLoad,      // inlined bpf_asan_load{8..64}[_btf]; flag = null_ok
  kAsanStore,     // inlined bpf_asan_store{8..64}
  kAsanAluPos,    // inlined bpf_asan_alu_check_pos
  kAsanAluNeg,    // inlined bpf_asan_alu_check_neg
  kInvalid,       // legacy "unknown opcode" (-EINVAL)
  kPcOob,         // sentinel: legacy "pc out of range" (-EFAULT)
};

inline constexpr size_t kNumUopCodes = static_cast<size_t>(UopCode::kPcOob) + 1;

struct Uop {
  UopCode code = UopCode::kInvalid;
  uint8_t subop = 0;    // raw ALU/JMP op for the shared semantic helpers
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t size = 0;     // memory/asan access bytes
  bool flag = false;    // btf_load / null_ok / to_be
  bool sext = false;    // kLoad: BPF_MEMSX sign-extending fill
  bool witness = false; // record a register witness before executing
  int16_t off = 0;      // memory offset
  int32_t target = 0;   // absolute uop index: taken branch / callee / skip
  int32_t orig_pc = 0;  // original instruction index (witness entries)
  int64_t imm = 0;      // sign-extended imm / folded imm64 / call id
};

// One verified program, lowered. uops[i] corresponds to insns[i] for
// i < insn_count; uops[insn_count] is the kPcOob sentinel every out-of-range
// control transfer lands on. Immutable after decode and kernel-agnostic, so
// one instance is safely shared across substrates, workers, and rebuilds.
struct DecodedProgram {
  std::vector<Uop> uops;
  size_t insn_count = 0;
};

// Lowers |prog| (the rewritten instruction stream) with its per-insn verifier
// metadata |aux| into micro-ops. Never fails: encodings the legacy engine
// would reject at runtime lower to kInvalid uops that abort identically.
std::shared_ptr<const DecodedProgram> DecodeProgram(const Program& prog,
                                                    const std::vector<InsnAux>& aux);

// Executes a decoded program. Behaviorally identical to
// Interpreter::RunLegacy on the program it was decoded from.
ExecResult RunDecoded(Kernel& kernel, const DecodedProgram& decoded, ExecContext& ctx,
                      const ExecLimits& limits);

// Decoded programs follow the shared digest-cache discipline
// (src/runtime/digest_cache.h); the names are kept so call sites read as
// "the decode cache".
using DecodeCache = DigestCache<const DecodedProgram>;
using DecodeCacheShard = DigestCacheShard<const DecodedProgram>;

}  // namespace bpf

#endif  // SRC_RUNTIME_DECODED_PROG_H_
