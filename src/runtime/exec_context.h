// Runtime execution context of one eBPF program invocation: guest addresses
// of its context structure, packet data, and stack (with the extended region
// used by the sanitation instrumentation), plus the kernel-context flags
// helpers consult (tracepoint/irq).

#ifndef SRC_RUNTIME_EXEC_CONTEXT_H_
#define SRC_RUNTIME_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"
#include "src/kernel/lockdep.h"
#include "src/kernel/tracepoint.h"
#include "src/verifier/verifier.h"

namespace bpf {

// Extra stack space below the visible 512 bytes, reserved for register
// backups emitted by the sanitation pass (paper Fig. 5: "an extended stack
// space that is also invisible to the program").
inline constexpr int kExtendedStackSize = 64;

// Execution tier for verified programs. All three produce bit-identical
// observable results (ExecResult, reports, sanitizer stats, campaign
// digests); the choice is a pure throughput switch:
//  * kLegacy  — instruction-at-a-time interpretation of the raw Insn stream;
//  * kDecoded — decode-once micro-op engine (DESIGN.md §10);
//  * kJit     — single-pass x86-64 native compilation of the micro-ops
//    (DESIGN.md §14); falls back to kDecoded on unsupported hosts.
enum class ExecEngine : uint8_t { kLegacy, kDecoded, kJit };

inline const char* ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kLegacy:
      return "legacy";
    case ExecEngine::kDecoded:
      return "decoded";
    case ExecEngine::kJit:
      return "jit";
  }
  return "?";
}

// Per-invocation execution guards. The step budget is the classic runaway-
// loop bound; the wall-clock watchdog additionally catches cases whose
// *per-instruction* cost explodes (pathological dispatch chains), and the
// call-depth ceiling bounds bpf-to-bpf recursion. Guard trips surface as
// classified ExecResult errors (-ELOOP / -ETIMEDOUT / -EFAULT), never hangs.
struct ExecLimits {
  uint64_t step_budget = 1u << 18;  // instructions per invocation
  uint64_t wall_budget_ms = 0;      // wall-clock watchdog (0 = off)
  int max_call_depth = 8;           // bpf-to-bpf call frames
};

// Concrete register values captured by the interpreter immediately before
// executing an instruction that carries abstract-state claims
// (InsnAux::claims). Compared offline against those claims by the
// witness-containment audit (src/analysis/state_audit.h, Indicator #3).
struct WitnessTrace {
  struct Entry {
    int32_t pc = 0;
    uint64_t regs[kClaimRegs] = {};  // R0..R9
  };

  std::vector<Entry> entries;
  uint64_t dropped = 0;  // entries not recorded once |cap| was reached
  size_t cap = 8192;

  void Clear() {
    entries.clear();
    dropped = 0;
  }
  Entry* Append(int32_t pc) {
    if (entries.size() >= cap) {
      ++dropped;
      return nullptr;
    }
    entries.emplace_back();
    entries.back().pc = pc;
    return &entries.back();
  }
};

struct ExecContext {
  uint64_t ctx_addr = 0;    // guest address of the context struct
  uint64_t fp = 0;          // frame pointer (R10): one past the stack top
  uint64_t stack_base = 0;  // low guest address of the stack allocation
  uint64_t pkt_addr = 0;
  uint32_t pkt_len = 0;

  // When set, the interpreter records per-instruction register witnesses here.
  WitnessTrace* witness = nullptr;

  // Kernel-side context of this invocation.
  bool in_tracepoint = false;
  bool in_irq = false;
  TracepointId attach_point = TracepointId::kSysEnter;

  LockContext lock_context() const {
    return in_tracepoint ? LockContext::kTracepoint : LockContext::kNormal;
  }
};

struct DecodedProgram;
struct JitProgram;

// A verified, rewritten, loadable program as stored by the syscall layer.
struct LoadedProgram {
  int id = 0;
  ProgType type = ProgType::kSocketFilter;
  Program prog;               // rewritten instruction stream
  std::vector<InsnAux> aux;   // parallel per-insn metadata
  bool offloaded = false;     // XDP device offload requested (bug #11 path)

  // Micro-op lowering of |prog| (src/runtime/decoded_prog.h), produced at
  // load time when decoded execution is enabled; null runs the legacy
  // instruction-at-a-time interpreter. Shared with the decode cache, so an
  // evicted entry stays alive for as long as any loaded program uses it.
  std::shared_ptr<const DecodedProgram> decoded;

  // Native x86-64 compilation of |decoded| (src/runtime/jit_prog.h), produced
  // at load time when the JIT tier is selected and available; null falls back
  // to the decoded engine. Shared with the JIT code cache under the same
  // eviction-survival rule as |decoded|.
  std::shared_ptr<const JitProgram> jit;

  // Behavioural summary from verification (attach policy input).
  bool uses_lock_helper = false;
  bool uses_printk_helper = false;
  bool uses_signal_helper = false;
  bool uses_irqwork_helper = false;
};

struct ExecResult {
  uint64_t r0 = 0;
  // 0, -EFAULT (fault abort), -ELOOP (step budget), -ETIMEDOUT (wall-clock
  // watchdog), -ENOMEM (allocation failure on the execution path).
  int err = 0;
  uint64_t insns_executed = 0;
  std::string abort_reason;

  bool ok() const { return err == 0; }
};

}  // namespace bpf

#endif  // SRC_RUNTIME_EXEC_CONTEXT_H_
