#include "src/runtime/verdict_cache.h"

#include <algorithm>

#include "src/runtime/kernel.h"

namespace bpf {

namespace {

// Two independent FNV-1a streams; different offset bases decorrelate them.
struct Digest2 {
  uint64_t lo = 14695981039346656037ull;
  uint64_t hi = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;

  void Byte(uint8_t b) {
    lo = (lo ^ b) * 1099511628211ull;
    hi = (hi ^ b) * 0x100000001b3ull;
    hi = (hi << 7) | (hi >> 57);
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      Byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
};

}  // namespace

VerdictKey MakeVerdictKey(const Program& prog, Kernel& kernel, bool instrumented,
                          bool collect_claims) {
  Digest2 d;
  d.Byte(2);  // key-format version (2: bug13 joined the packed bug bits)
  d.U32(static_cast<uint32_t>(kernel.version()));
  const BugConfig& bugs = kernel.bugs();
  const bool bug_bits[] = {
      bugs.bug1_nullness_propagation, bugs.bug2_task_struct_bounds,
      bugs.bug3_kfunc_backtrack,      bugs.bug4_trace_printk_recursion,
      bugs.bug5_contention_begin,     bugs.bug6_send_signal,
      bugs.bug7_dispatcher_sync,      bugs.bug8_kmemdup,
      bugs.bug9_bucket_iteration,     bugs.bug10_irq_work,
      bugs.bug11_xdp_offload,         bugs.bug12_jmp32_signed_refine,
      bugs.cve_2022_23222,            bugs.bug13_ld_imm64_pessimize,
  };
  uint32_t packed = 0;
  for (size_t i = 0; i < sizeof(bug_bits) / sizeof(bug_bits[0]); ++i) {
    packed |= bug_bits[i] ? (1u << i) : 0;
  }
  d.U32(packed);
  d.Byte(instrumented ? 1 : 0);
  d.Byte(collect_claims ? 1 : 0);
  d.U32(static_cast<uint32_t>(prog.type));
  d.Byte(prog.offload_requested ? 1 : 0);
  d.U64(prog.insns.size());
  for (const Insn& insn : prog.insns) {
    d.Byte(insn.opcode);
    d.Byte(insn.dst);
    d.Byte(insn.src);
    d.U32(static_cast<uint32_t>(static_cast<uint16_t>(insn.off)));
    d.U32(static_cast<uint32_t>(insn.imm));
  }
  // Map definitions, in id order: pseudo map-fd references resolve against
  // these, and key/value sizes feed helper-argument and access checks.
  const auto& maps = kernel.maps().maps();
  d.U64(maps.size());
  for (const auto& map : maps) {
    d.U32(static_cast<uint32_t>(map->id()));
    d.U32(static_cast<uint32_t>(map->def().type));
    d.U32(map->def().key_size);
    d.U32(map->def().value_size);
    d.U32(map->def().max_entries);
  }
  return VerdictKey{d.lo, d.hi};
}

void VerdictCache::CommitShards(const std::vector<VerdictCacheShard*>& shards) {
  // Gather (iteration-ordered) so the max_entries cutoff — and therefore the
  // committed set every later epoch looks up against — is independent of how
  // iterations were sharded across workers. Both levels follow the same
  // discipline.
  const auto merge = [this](Store& store, std::vector<VerdictCacheShard::Pending*>& merged) {
    std::sort(merged.begin(), merged.end(),
              [](const VerdictCacheShard::Pending* a, const VerdictCacheShard::Pending* b) {
                return a->iteration < b->iteration;
              });
    for (VerdictCacheShard::Pending* pending : merged) {
      if (store.find(pending->key) == store.end()) {
        CommitOne(store, pending->key, std::move(pending->verdict));
      }
    }
  };
  std::vector<VerdictCacheShard::Pending*> raw;
  std::vector<VerdictCacheShard::Pending*> canon;
  for (VerdictCacheShard* shard : shards) {
    for (auto& pending : shard->pending_) {
      raw.push_back(&pending);
    }
    for (auto& pending : shard->pending_canon_) {
      canon.push_back(&pending);
    }
  }
  merge(committed_, raw);
  merge(canon_committed_, canon);
  for (VerdictCacheShard* shard : shards) {
    shard->pending_.clear();
    shard->pending_canon_.clear();
  }
}

}  // namespace bpf
