// Digest-keyed verifier-verdict cache (DESIGN.md §9).
//
// Generated programs repeat — corpus mutation reverts, baseline generators
// draw from small spaces, and long campaigns re-derive the same bytecode —
// and verification (path-sensitive abstract interpretation) dominates the
// cost of a rejected case. The cache maps a digest of everything the
// verifier's answer depends on — instruction bytes, program type/offload,
// kernel version, injected-bug configuration, instrumentation & claim
// collection flags, and the map definitions the program can reference — to
// the full VerifierResult, so a duplicate program skips re-verification.
//
// Verification is effect-free on the simulated kernel (VerifierEnv carries no
// allocator or report-sink access), with two bookkept exceptions the cache
// replays: the sanitizer's instrumentation-stat delta (recorded at miss time,
// credited on hit) and verifier branch coverage. Coverage needs no replay:
// a hit requires the same program to have been verified in a *previous*
// sync epoch, so its verifier sites are already in the committed global set
// and contribute nothing to per-case novelty either way. Cache on/off is
// therefore invisible in a campaign's StatsDigest.
//
// A second, *canonical* level (DESIGN.md §13) catches alpha-equivalent
// re-derivations the raw level cannot: on a raw miss the loader canonicalizes
// the program (src/analysis/canonicalize.h) and looks the canonical digest up
// in a separate committed store. The canonical level serves REJECTIONS ONLY.
// Rejections are substrate-pure — ProgLoad's reject path returns before any
// allocation, and sanitizer instrumentation runs only after DoCheck passes,
// so a served rejection has a zero sanitizer delta and no kernel side effects
// to replay. Acceptances are never served canonically: the accepted
// VerifierResult carries the rewritten program, whose instruction stream
// (and decode-cache lowering) legitimately differs across alpha-equivalent
// spellings.
//
// Concurrency model matches the parallel engine's epoch discipline: the
// committed maps are read-only between barriers; each worker's shard buffers
// its inserts and the coordinator merges them (in iteration order, so the
// entry-cap cutoff is job-count-invariant) while workers are parked. A shard
// in immediate mode (single-threaded campaigns) commits inserts on the spot.

#ifndef SRC_RUNTIME_VERDICT_CACHE_H_
#define SRC_RUNTIME_VERDICT_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sanitizer/instrument.h"
#include "src/verifier/verifier.h"

namespace bpf {

class Kernel;

// 128-bit program digest (two independent FNV-1a streams over the canonical
// key material). 64 bits would already make collisions implausible at
// campaign scale; 128 makes them ignorable.
struct VerdictKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const VerdictKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey& key) const {
    return static_cast<size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull));
  }
};

// Digest of everything VerifyProgram's answer depends on for |prog| loaded
// into |kernel| under the given instrumentation flags.
VerdictKey MakeVerdictKey(const Program& prog, Kernel& kernel, bool instrumented,
                          bool collect_claims);

struct CachedVerdict {
  VerifierResult result;
  // Instrumentation-stat delta the original verification produced; credited
  // to the loading substrate's sanitizer on every hit.
  bvf::SanitizerStats san_delta;
};

class VerdictCacheShard;

// The shared committed store. Not internally synchronized: between barriers
// it is read-only (worker lookups); CommitShards mutates it from a single
// coordinator thread while workers are parked, the barrier providing the
// happens-before edges.
class VerdictCache {
 public:
  explicit VerdictCache(size_t max_entries = kDefaultMaxEntries) : max_entries_(max_entries) {}

  static constexpr size_t kDefaultMaxEntries = 1 << 15;

  const CachedVerdict* Lookup(const VerdictKey& key) const {
    const auto it = committed_.find(key);
    return it == committed_.end() ? nullptr : &it->second;
  }

  // Canonical-level lookup; entries are rejections only (see file comment).
  const CachedVerdict* LookupCanonical(const VerdictKey& key) const {
    const auto it = canon_committed_.find(key);
    return it == canon_committed_.end() ? nullptr : &it->second;
  }

  // Merges every shard's pending inserts (both levels), ordered by
  // originating iteration so the max_entries cutoff does not depend on the
  // worker sharding, then clears them.
  void CommitShards(const std::vector<VerdictCacheShard*>& shards);

  size_t size() const { return committed_.size(); }
  size_t canonical_size() const { return canon_committed_.size(); }
  uint64_t dropped() const { return dropped_; }

 private:
  friend class VerdictCacheShard;

  using Store = std::unordered_map<VerdictKey, CachedVerdict, VerdictKeyHash>;

  void CommitOne(Store& store, const VerdictKey& key, CachedVerdict&& verdict) {
    if (store.size() >= max_entries_) {
      ++dropped_;
      return;
    }
    store.emplace(key, std::move(verdict));
  }

  size_t max_entries_;
  uint64_t dropped_ = 0;
  Store committed_;
  Store canon_committed_;
};

// Per-worker cache handle. Lookups see only the committed (epoch-frozen)
// store — never this shard's own pending inserts — which is what makes the
// hit/miss sequence identical for every job count.
class VerdictCacheShard {
 public:
  VerdictCacheShard(VerdictCache& owner, bool immediate)
      : owner_(owner), immediate_(immediate) {}

  // The campaign iteration whose load is about to consult the cache; used to
  // order pending inserts deterministically at merge time.
  void set_iteration(uint64_t iteration) { iteration_ = iteration; }

  const CachedVerdict* Lookup(const VerdictKey& key) {
    const CachedVerdict* cached = owner_.Lookup(key);
    if (cached != nullptr) {
      ++hits_;
    } else {
      ++misses_;
    }
    return cached;
  }

  // Canonical-level lookup; consulted only after a raw miss, so raw and
  // canonical counters partition the loads that reached the cache.
  const CachedVerdict* LookupCanonical(const VerdictKey& key) {
    const CachedVerdict* cached = owner_.LookupCanonical(key);
    if (cached != nullptr) {
      ++canon_hits_;
    } else {
      ++canon_misses_;
    }
    return cached;
  }

  void Insert(const VerdictKey& key, CachedVerdict verdict) {
    if (immediate_) {
      owner_.CommitOne(owner_.committed_, key, std::move(verdict));
    } else {
      pending_.emplace_back(iteration_, key, std::move(verdict));
    }
  }

  // Canonical-level insert; callers only pass rejections.
  void InsertCanonical(const VerdictKey& key, CachedVerdict verdict) {
    if (immediate_) {
      owner_.CommitOne(owner_.canon_committed_, key, std::move(verdict));
    } else {
      pending_canon_.emplace_back(iteration_, key, std::move(verdict));
    }
  }

  // Counter drain (the engines fold these into CampaignStats per epoch).
  uint64_t TakeHits() { return std::exchange(hits_, 0); }
  uint64_t TakeMisses() { return std::exchange(misses_, 0); }
  uint64_t TakeCanonicalHits() { return std::exchange(canon_hits_, 0); }
  uint64_t TakeCanonicalMisses() { return std::exchange(canon_misses_, 0); }

 private:
  friend class VerdictCache;

  struct Pending {
    uint64_t iteration;
    VerdictKey key;
    CachedVerdict verdict;
    Pending(uint64_t i, const VerdictKey& k, CachedVerdict&& v)
        : iteration(i), key(k), verdict(std::move(v)) {}
  };

  VerdictCache& owner_;
  bool immediate_;
  uint64_t iteration_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t canon_hits_ = 0;
  uint64_t canon_misses_ = 0;
  std::vector<Pending> pending_;
  std::vector<Pending> pending_canon_;
};

}  // namespace bpf

#endif  // SRC_RUNTIME_VERDICT_CACHE_H_
