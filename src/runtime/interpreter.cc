#include "src/runtime/interpreter.h"

#include <cerrno>
#include <chrono>
#include <vector>

#include "src/runtime/helpers.h"
#include "src/verifier/helper_protos.h"

namespace bpf {

namespace {

uint64_t ByteSwap(uint64_t value, int width) {
  switch (width) {
    case 16:
      return __builtin_bswap16(static_cast<uint16_t>(value));
    case 32:
      return __builtin_bswap32(static_cast<uint32_t>(value));
    case 64:
      return __builtin_bswap64(value);
    default:
      return value;
  }
}

uint64_t AluOp64(uint8_t op, uint64_t dst, uint64_t src) {
  switch (op) {
    case kAluAdd:
      return dst + src;
    case kAluSub:
      return dst - src;
    case kAluMul:
      return dst * src;
    case kAluDiv:
      return src == 0 ? 0 : dst / src;
    case kAluOr:
      return dst | src;
    case kAluAnd:
      return dst & src;
    case kAluLsh:
      return dst << (src & 63);
    case kAluRsh:
      return dst >> (src & 63);
    case kAluMod:
      return src == 0 ? dst : dst % src;
    case kAluXor:
      return dst ^ src;
    case kAluMov:
      return src;
    case kAluArsh:
      return static_cast<uint64_t>(static_cast<int64_t>(dst) >> (src & 63));
    default:
      return dst;
  }
}

uint32_t AluOp32(uint8_t op, uint32_t dst, uint32_t src) {
  switch (op) {
    case kAluArsh:
      return static_cast<uint32_t>(static_cast<int32_t>(dst) >> (src & 31));
    case kAluLsh:
      return dst << (src & 31);
    case kAluRsh:
      return dst >> (src & 31);
    case kAluDiv:
      return src == 0 ? 0 : dst / src;
    case kAluMod:
      return src == 0 ? dst : dst % src;
    default:
      return static_cast<uint32_t>(AluOp64(op, dst, src));
  }
}

bool JmpTaken(uint8_t op, uint64_t dst, uint64_t src, bool is32) {
  if (is32) {
    dst = static_cast<uint32_t>(dst);
    src = static_cast<uint32_t>(src);
  }
  const int64_t sdst = is32 ? static_cast<int32_t>(dst) : static_cast<int64_t>(dst);
  const int64_t ssrc = is32 ? static_cast<int32_t>(src) : static_cast<int64_t>(src);
  switch (op) {
    case kJmpJeq:
      return dst == src;
    case kJmpJne:
      return dst != src;
    case kJmpJgt:
      return dst > src;
    case kJmpJge:
      return dst >= src;
    case kJmpJlt:
      return dst < src;
    case kJmpJle:
      return dst <= src;
    case kJmpJset:
      return (dst & src) != 0;
    case kJmpJsgt:
      return sdst > ssrc;
    case kJmpJsge:
      return sdst >= ssrc;
    case kJmpJslt:
      return sdst < ssrc;
    case kJmpJsle:
      return sdst <= ssrc;
    default:
      return false;
  }
}

struct CallFrame {
  int return_pc;
  uint64_t saved_regs[4];  // R6-R9
  uint64_t saved_fp;
  uint64_t stack_alloc;
};

}  // namespace

ExecResult Interpreter::Run(const LoadedProgram& prog, ExecContext& ctx,
                            const ExecLimits& limits) {
  ExecResult result;
  KasanArena& arena = kernel_.arena();
  ReportSink& sink = kernel_.reports();
  const uint64_t max_insns = limits.step_budget;

  // Wall-clock watchdog: checked every few thousand instructions so the hot
  // loop stays branch-cheap. Only armed when a budget is configured, keeping
  // default campaigns fully deterministic.
  const bool watchdog = limits.wall_budget_ms > 0;
  std::chrono::steady_clock::time_point deadline;
  if (watchdog) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(limits.wall_budget_ms);
  }
  constexpr uint64_t kWatchdogStride = 4096;

  uint64_t regs[kNumTotalRegs] = {};
  regs[kR1] = ctx.ctx_addr;
  regs[kR10] = ctx.fp;

  std::vector<CallFrame> frames;
  uint64_t call_counter = 0;
  int pc = 0;
  const auto& insns = prog.prog.insns;

  auto abort_exec = [&](int err, const char* reason) {
    result.err = err;
    result.abort_reason = reason;
  };

  while (true) {
    if (result.insns_executed++ >= max_insns) {
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "soft lockup: eBPF program exceeded the execution budget");
      abort_exec(-ELOOP, "execution budget exceeded");
      break;
    }
    if (watchdog && result.insns_executed % kWatchdogStride == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "watchdog: eBPF program exceeded the wall-clock budget");
      abort_exec(-ETIMEDOUT, "wall-clock budget exceeded");
      break;
    }
    if (pc < 0 || pc >= static_cast<int>(insns.size())) {
      abort_exec(-EFAULT, "pc out of range");
      break;
    }
    const Insn& insn = insns[pc];
    const uint8_t cls = insn.Class();

    // Witness recording for the abstract-state audit: claims describe the
    // state before the original (non-rewritten) instruction executes, and the
    // sanitation prefixes are register-preserving at those boundaries.
    if (ctx.witness != nullptr && pc < static_cast<int>(prog.aux.size()) &&
        !prog.aux[pc].rewritten && !prog.aux[pc].claims.empty()) {
      WitnessTrace::Entry* entry = ctx.witness->Append(pc);
      if (entry != nullptr) {
        for (int r = 0; r < kClaimRegs; ++r) {
          entry->regs[r] = regs[r];
        }
      }
    }

    // ---- ld_imm64 ----
    if (insn.IsLdImm64()) {
      regs[insn.dst] =
          (static_cast<uint64_t>(static_cast<uint32_t>(insns[pc + 1].imm)) << 32) |
          static_cast<uint32_t>(insn.imm);
      pc += 2;
      continue;
    }

    // ---- ALU ----
    if (cls == kClassAlu64 || cls == kClassAlu) {
      const uint8_t op = insn.AluOp();
      if (op == kAluNeg) {
        if (cls == kClassAlu64) {
          regs[insn.dst] = static_cast<uint64_t>(-static_cast<int64_t>(regs[insn.dst]));
        } else {
          regs[insn.dst] = static_cast<uint32_t>(-static_cast<int32_t>(regs[insn.dst]));
        }
        ++pc;
        continue;
      }
      if (op == kAluEnd) {
        const bool to_be = (insn.opcode & 0x08) != 0;
        uint64_t v = regs[insn.dst];
        if (to_be) {
          v = ByteSwap(v, insn.imm);
        } else {
          v = insn.imm >= 64 ? v : (v & ((1ull << insn.imm) - 1));
        }
        regs[insn.dst] = v;
        ++pc;
        continue;
      }
      const uint64_t src_val = insn.SrcIsReg()
                                   ? regs[insn.src]
                                   : (cls == kClassAlu64
                                          ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                          : static_cast<uint32_t>(insn.imm));
      if (cls == kClassAlu64) {
        regs[insn.dst] = AluOp64(op, regs[insn.dst], src_val);
      } else {
        regs[insn.dst] = AluOp32(op, static_cast<uint32_t>(regs[insn.dst]),
                                 static_cast<uint32_t>(src_val));
      }
      ++pc;
      continue;
    }

    // ---- Loads ----
    if (insn.IsMemLoad()) {
      const uint64_t addr = regs[insn.src] + static_cast<int64_t>(insn.off);
      const int size = insn.AccessBytes();
      const AccessResult probe = arena.Classify(addr, size);
      if (probe == AccessResult::kNull || probe == AccessResult::kWild) {
        const bool btf_load = pc < static_cast<int>(prog.aux.size()) &&
                              prog.aux[pc].mem_ptr_type == RegType::kPtrToBtfId;
        if (btf_load) {
          // PTR_TO_BTF_ID loads are exception-table handled: a faulting
          // access reads as zero instead of oopsing.
          regs[insn.dst] = 0;
          ++pc;
          continue;
        }
        arena.RawRead(addr, size, nullptr, sink, "bpf_prog_run");  // files the oops
        abort_exec(-EFAULT, "page fault on load");
        break;
      }
      uint64_t value = 0;
      arena.RawRead(addr, size, &value, sink, "bpf_prog_run");
      regs[insn.dst] = value;
      ++pc;
      continue;
    }

    // ---- Stores / atomics ----
    if (insn.IsStore()) {
      const uint64_t addr = regs[insn.dst] + static_cast<int64_t>(insn.off);
      const int size = insn.AccessBytes();
      if (insn.IsAtomic()) {
        uint64_t old = 0;
        if (!arena.RawRead(addr, size, &old, sink, "bpf_prog_run")) {
          abort_exec(-EFAULT, "page fault on atomic");
          break;
        }
        const uint64_t operand = regs[insn.src];
        uint64_t updated = old;
        switch (insn.imm & ~kAtomicFetch) {
          case kAtomicAdd:
            updated = old + operand;
            break;
          case kAtomicOr:
            updated = old | operand;
            break;
          case kAtomicAnd:
            updated = old & operand;
            break;
          case kAtomicXor:
            updated = old ^ operand;
            break;
          default:
            break;
        }
        if (insn.imm == kAtomicXchg) {
          updated = operand;
        } else if (insn.imm == kAtomicCmpXchg) {
          updated = (old == regs[kR0]) ? operand : old;
          regs[kR0] = old;
        }
        if (size == 4) {
          updated = static_cast<uint32_t>(updated);
        }
        arena.RawWrite(addr, size, updated, sink, "bpf_prog_run");
        if ((insn.imm & kAtomicFetch) != 0 || insn.imm == kAtomicXchg) {
          regs[insn.src] = old;
        }
        ++pc;
        continue;
      }
      const uint64_t value =
          insn.Class() == kClassSt ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                   : regs[insn.src];
      if (!arena.RawWrite(addr, size, value, sink, "bpf_prog_run")) {
        abort_exec(-EFAULT, "page fault on store");
        break;
      }
      ++pc;
      continue;
    }

    // ---- Jumps, calls, exit ----
    if (cls == kClassJmp || cls == kClassJmp32) {
      const uint8_t op = insn.JmpOp();
      if (op == kJmpJa) {
        pc += 1 + insn.off;
        continue;
      }
      if (op == kJmpExit) {
        if (frames.empty()) {
          result.r0 = regs[kR0];
          break;
        }
        const CallFrame& frame = frames.back();
        for (int i = 0; i < 4; ++i) {
          regs[kR6 + i] = frame.saved_regs[i];
        }
        regs[kR10] = frame.saved_fp;
        arena.Free(frame.stack_alloc);
        pc = frame.return_pc;
        frames.pop_back();
        continue;
      }
      if (op == kJmpCall) {
        if (insn.src == kPseudoCallFunc) {
          if (frames.size() >= static_cast<size_t>(limits.max_call_depth)) {
            abort_exec(-EFAULT, "call depth exceeded");
            break;
          }
          CallFrame frame;
          frame.return_pc = pc + 1;
          for (int i = 0; i < 4; ++i) {
            frame.saved_regs[i] = regs[kR6 + i];
          }
          frame.saved_fp = regs[kR10];
          frame.stack_alloc =
              arena.Alloc(kStackSize + kExtendedStackSize, "bpf_subprog_stack");
          if (frame.stack_alloc == 0) {
            abort_exec(-ENOMEM, "subprog stack allocation failed");
            break;
          }
          regs[kR10] = frame.stack_alloc + kExtendedStackSize + kStackSize;
          frames.push_back(frame);
          pc = pc + 1 + insn.imm;
          continue;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        if (insn.imm >= kInternalBase) {
          // Internal (bpf_asan_*) dispatch: register-preserving except R0.
          const InternalFn* fn = kernel_.FindInternalFunc(insn.imm);
          if (fn == nullptr) {
            abort_exec(-EFAULT, "unknown internal func");
            break;
          }
          regs[kR0] = (*fn)(kernel_, ctx, args);
          ++pc;
          continue;
        }
        if (insn.src == kPseudoKfuncCall) {
          regs[kR0] = DispatchKfunc(kernel_, ctx, insn.imm, args);
        } else {
          regs[kR0] = DispatchHelper(kernel_, ctx, insn.imm, args);
        }
        // Native calling convention clobbers the argument registers. The
        // garbage left behind is what makes stale verifier bounds (bug #3)
        // observable at runtime.
        ++call_counter;
        for (int r = kR1; r <= kR5; ++r) {
          regs[r] = 0xdead0000beef0000ull ^ (call_counter << 8) ^ static_cast<uint64_t>(r);
        }
        ++pc;
        continue;
      }
      // Conditional jump.
      const uint64_t src_val = insn.SrcIsReg()
                                   ? regs[insn.src]
                                   : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
      if (JmpTaken(op, regs[insn.dst], src_val, cls == kClassJmp32)) {
        pc += 1 + insn.off;
      } else {
        ++pc;
      }
      continue;
    }

    abort_exec(-EINVAL, "unknown opcode");
    break;
  }

  // Release any leaked subprogram stacks on abnormal exit.
  for (const CallFrame& frame : frames) {
    arena.Free(frame.stack_alloc);
  }
  return result;
}

}  // namespace bpf
