#include "src/runtime/interpreter.h"

#include <cerrno>
#include <chrono>
#include <vector>

#include "src/runtime/decoded_prog.h"
#include "src/runtime/helpers.h"
#include "src/runtime/interp_ops.h"
#include "src/runtime/jit_prog.h"
#include "src/verifier/helper_protos.h"

namespace bpf {

namespace {

struct CallFrame {
  int return_pc;
  uint64_t saved_regs[4];  // R6-R9
  uint64_t saved_fp;
  uint64_t stack_alloc;
};

}  // namespace

ExecResult Interpreter::Run(const LoadedProgram& prog, ExecContext& ctx,
                            const ExecLimits& limits) {
  if (prog.jit != nullptr) {
    return RunJit(kernel_, *prog.jit, ctx, limits);
  }
  if (prog.decoded != nullptr) {
    return RunDecoded(kernel_, *prog.decoded, ctx, limits);
  }
  return RunLegacy(prog, ctx, limits);
}

ExecResult Interpreter::RunLegacy(const LoadedProgram& prog, ExecContext& ctx,
                                  const ExecLimits& limits) {
  ExecResult result;
  KasanArena& arena = kernel_.arena();
  ReportSink& sink = kernel_.reports();
  const uint64_t max_insns = limits.step_budget;

  // Wall-clock watchdog: checked every few thousand instructions so the hot
  // loop stays branch-cheap. Only armed when a budget is configured, keeping
  // default campaigns fully deterministic.
  const bool watchdog = limits.wall_budget_ms > 0;
  std::chrono::steady_clock::time_point deadline;
  if (watchdog) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(limits.wall_budget_ms);
  }
  constexpr uint64_t kWatchdogStride = 4096;

  uint64_t regs[kNumTotalRegs] = {};
  regs[kR1] = ctx.ctx_addr;
  regs[kR10] = ctx.fp;

  std::vector<CallFrame> frames;
  uint64_t call_counter = 0;
  int pc = 0;
  const auto& insns = prog.prog.insns;

  auto abort_exec = [&](int err, const char* reason) {
    result.err = err;
    result.abort_reason = reason;
  };

  while (true) {
    if (result.insns_executed++ >= max_insns) {
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "soft lockup: eBPF program exceeded the execution budget");
      abort_exec(-ELOOP, "execution budget exceeded");
      break;
    }
    if (watchdog && result.insns_executed % kWatchdogStride == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      sink.Report(ReportKind::kWarn, "bpf_prog_run",
                  "watchdog: eBPF program exceeded the wall-clock budget");
      abort_exec(-ETIMEDOUT, "wall-clock budget exceeded");
      break;
    }
    if (pc < 0 || pc >= static_cast<int>(insns.size())) {
      abort_exec(-EFAULT, "pc out of range");
      break;
    }
    const Insn& insn = insns[pc];
    const uint8_t cls = insn.Class();

    // Witness recording for the abstract-state audit: claims describe the
    // state before the original (non-rewritten) instruction executes, and the
    // sanitation prefixes are register-preserving at those boundaries.
    if (ctx.witness != nullptr && pc < static_cast<int>(prog.aux.size()) &&
        !prog.aux[pc].rewritten && !prog.aux[pc].claims.empty()) {
      WitnessTrace::Entry* entry = ctx.witness->Append(pc);
      if (entry != nullptr) {
        for (int r = 0; r < kClaimRegs; ++r) {
          entry->regs[r] = regs[r];
        }
      }
    }

    // ---- ld_imm64 ----
    if (insn.IsLdImm64()) {
      regs[insn.dst] =
          (static_cast<uint64_t>(static_cast<uint32_t>(insns[pc + 1].imm)) << 32) |
          static_cast<uint32_t>(insn.imm);
      pc += 2;
      continue;
    }

    // ---- ALU ----
    if (cls == kClassAlu64 || cls == kClassAlu) {
      const uint8_t op = insn.AluOp();
      if (op == kAluNeg) {
        if (cls == kClassAlu64) {
          regs[insn.dst] = static_cast<uint64_t>(-static_cast<int64_t>(regs[insn.dst]));
        } else {
          regs[insn.dst] = static_cast<uint32_t>(-static_cast<int32_t>(regs[insn.dst]));
        }
        ++pc;
        continue;
      }
      if (op == kAluEnd) {
        const bool to_be = (insn.opcode & 0x08) != 0;
        regs[insn.dst] = ExecEndian(regs[insn.dst], to_be, insn.imm);
        ++pc;
        continue;
      }
      const uint64_t src_val = insn.SrcIsReg()
                                   ? regs[insn.src]
                                   : (cls == kClassAlu64
                                          ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                          : static_cast<uint32_t>(insn.imm));
      if (cls == kClassAlu64) {
        regs[insn.dst] = AluOp64(op, regs[insn.dst], src_val);
      } else {
        regs[insn.dst] = AluOp32(op, static_cast<uint32_t>(regs[insn.dst]),
                                 static_cast<uint32_t>(src_val));
      }
      ++pc;
      continue;
    }

    // ---- Loads ----
    if (insn.IsMemLoad()) {
      const bool btf_load = pc < static_cast<int>(prog.aux.size()) &&
                            prog.aux[pc].mem_ptr_type == RegType::kPtrToBtfId;
      if (!ExecMemLoad(arena, sink, regs, insn.dst, insn.src, insn.off,
                       insn.AccessBytes(), btf_load, insn.IsMemLoadSx())) {
        abort_exec(-EFAULT, "page fault on load");
        break;
      }
      ++pc;
      continue;
    }

    // ---- Stores / atomics ----
    if (insn.IsStore()) {
      const int size = insn.AccessBytes();
      if (insn.IsAtomic()) {
        if (!ExecAtomicRmw(arena, sink, regs, insn.dst, insn.src, insn.off, size,
                           insn.imm)) {
          abort_exec(-EFAULT, "page fault on atomic");
          break;
        }
        ++pc;
        continue;
      }
      const uint64_t value =
          insn.Class() == kClassSt ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                   : regs[insn.src];
      if (!ExecMemStore(arena, sink, regs, insn.dst, insn.off, value, size)) {
        abort_exec(-EFAULT, "page fault on store");
        break;
      }
      ++pc;
      continue;
    }

    // ---- Jumps, calls, exit ----
    if (cls == kClassJmp || cls == kClassJmp32) {
      const uint8_t op = insn.JmpOp();
      if (op == kJmpJa) {
        pc = insn.JumpTargetPc(pc);
        continue;
      }
      if (op == kJmpExit) {
        if (frames.empty()) {
          result.r0 = regs[kR0];
          break;
        }
        const CallFrame& frame = frames.back();
        for (int i = 0; i < 4; ++i) {
          regs[kR6 + i] = frame.saved_regs[i];
        }
        regs[kR10] = frame.saved_fp;
        arena.Free(frame.stack_alloc);
        pc = frame.return_pc;
        frames.pop_back();
        continue;
      }
      if (op == kJmpCall) {
        if (insn.src == kPseudoCallFunc) {
          if (frames.size() >= static_cast<size_t>(limits.max_call_depth)) {
            abort_exec(-EFAULT, "call depth exceeded");
            break;
          }
          CallFrame frame;
          frame.return_pc = pc + 1;
          for (int i = 0; i < 4; ++i) {
            frame.saved_regs[i] = regs[kR6 + i];
          }
          frame.saved_fp = regs[kR10];
          frame.stack_alloc =
              arena.Alloc(kStackSize + kExtendedStackSize, "bpf_subprog_stack");
          if (frame.stack_alloc == 0) {
            abort_exec(-ENOMEM, "subprog stack allocation failed");
            break;
          }
          regs[kR10] = frame.stack_alloc + kExtendedStackSize + kStackSize;
          frames.push_back(frame);
          pc = insn.CallTargetPc(pc);
          continue;
        }
        const uint64_t args[5] = {regs[kR1], regs[kR2], regs[kR3], regs[kR4], regs[kR5]};
        if (insn.imm >= kInternalBase) {
          // Internal (bpf_asan_*) dispatch: register-preserving except R0.
          const InternalFn* fn = kernel_.FindInternalFunc(insn.imm);
          if (fn == nullptr) {
            abort_exec(-EFAULT, "unknown internal func");
            break;
          }
          regs[kR0] = (*fn)(kernel_, ctx, args);
          ++pc;
          continue;
        }
        if (insn.src == kPseudoKfuncCall) {
          regs[kR0] = DispatchKfunc(kernel_, ctx, insn.imm, args);
        } else {
          regs[kR0] = DispatchHelper(kernel_, ctx, insn.imm, args);
        }
        ClobberCallerSaved(regs, ++call_counter);
        ++pc;
        continue;
      }
      // Conditional jump.
      const uint64_t src_val = insn.SrcIsReg()
                                   ? regs[insn.src]
                                   : static_cast<uint64_t>(static_cast<int64_t>(insn.imm));
      if (JmpTaken(op, regs[insn.dst], src_val, cls == kClassJmp32)) {
        pc = insn.JumpTargetPc(pc);
      } else {
        ++pc;
      }
      continue;
    }

    abort_exec(-EINVAL, "unknown opcode");
    break;
  }

  // Release any leaked subprogram stacks on abnormal exit.
  for (const CallFrame& frame : frames) {
    arena.Free(frame.stack_alloc);
  }
  return result;
}

}  // namespace bpf
