// Runtime implementations of eBPF helper functions and kfuncs. The verifier
// checks calls against src/verifier/helper_protos.h; this is the behaviour
// behind them, including the lock acquisition / tracepoint firing chains that
// drive the paper's indicator #2 bugs.

#ifndef SRC_RUNTIME_HELPERS_H_
#define SRC_RUNTIME_HELPERS_H_

#include <cstdint>

#include "src/runtime/exec_context.h"
#include "src/runtime/kernel.h"

namespace bpf {

// Executes helper |helper_id| with R1-R5 in |args|. Returns the R0 value.
uint64_t DispatchHelper(Kernel& kernel, ExecContext& ctx, int32_t helper_id,
                        const uint64_t args[5]);

// Executes kfunc |btf_func_id|. Returns the R0 value.
uint64_t DispatchKfunc(Kernel& kernel, ExecContext& ctx, int32_t btf_func_id,
                       const uint64_t args[5]);

}  // namespace bpf

#endif  // SRC_RUNTIME_HELPERS_H_
