// eBPF execution engine. Stands in for the kernel's JIT + native execution:
// memory accesses take the *uninstrumented* path (KasanArena::Raw*), so a
// verifier-missed out-of-bounds access silently corrupts unless BVF's
// sanitation rewrote the program to dispatch through bpf_asan_* functions.

#ifndef SRC_RUNTIME_INTERPRETER_H_
#define SRC_RUNTIME_INTERPRETER_H_

#include <cstdint>

#include "src/runtime/exec_context.h"
#include "src/runtime/kernel.h"

namespace bpf {

class Interpreter {
 public:
  explicit Interpreter(Kernel& kernel) : kernel_(kernel) {}

  // Executes |prog| in |ctx| under the given execution guards (step budget,
  // optional wall-clock watchdog, call-depth ceiling). Guard trips abort with
  // a classified error instead of hanging the campaign. Takes the pre-decoded
  // micro-op engine when the program carries a DecodedProgram (the default
  // load path), else the instruction-at-a-time path; both are behaviorally
  // identical (tests/interp_parity_test.cc).
  ExecResult Run(const LoadedProgram& prog, ExecContext& ctx, const ExecLimits& limits);

  // Always interprets the raw instruction stream, ignoring prog.decoded.
  // Exposed for the differential parity suite and the interpreter benchmark.
  ExecResult RunLegacy(const LoadedProgram& prog, ExecContext& ctx, const ExecLimits& limits);

  // Convenience overload: default guards with an explicit step budget (the
  // real kernel relies on the verifier; a missed unbounded loop here is
  // reported as a soft lockup).
  ExecResult Run(const LoadedProgram& prog, ExecContext& ctx, uint64_t max_insns = 1 << 18) {
    ExecLimits limits;
    limits.step_budget = max_insns;
    return Run(prog, ctx, limits);
  }

 private:
  Kernel& kernel_;
};

}  // namespace bpf

#endif  // SRC_RUNTIME_INTERPRETER_H_
