// Single-pass x86-64 lowering of DecodedProgram micro-ops (DESIGN.md §14).
//
// Machine model:
//   r12 = JitRt*          (BPF registers live in memory at [r12 + 8*i])
//   r13 = step counter    (published to JitRt::steps on every exit)
//   r14 = step budget     (ExecLimits::step_budget)
//   r15 = watchdog countdown (reload value in JitRt::wd_reload; a sentinel
//         reload keeps the countdown unreachable when the watchdog is off)
//   rax/rcx/rdx/rsi/rdi   scratch within one uop body
//
// Every uop begins with the exact step prologue the decoded engine's NEXT()
// macro runs — budget charge (post-increment semantics: the tripping step is
// still counted), watchdog countdown with the clock sampled out of line every
// 4096 steps, then the witness check — so step accounting, watchdog firing
// instants, and witness entries are bit-identical across engines. Pure ops
// compile to native sequences whose edge cases coincide with interp_ops.h
// (x86 masks 64/32-bit shift counts to 6/5 bits; cmp/test sign-extend imm32;
// 32-bit ops zero-extend), division guards the src==0 definitions explicitly,
// and memory/sanitizer ops inline the KasanArena fast-path checks with slow
// cases routed to the BvfJit* trampolines, which run the interpreters' C++.
// Cold code (watchdog stubs, slow paths) is emitted after the hot stream so
// the fall-through path stays dense.

#include "src/runtime/jit_emit_x86_64.h"

#if defined(__x86_64__)

#include <cstddef>
#include <functional>

#include "src/ebpf/insn.h"
#include "src/kernel/kasan.h"
#include "src/runtime/jit_prog.h"

namespace bpf {
namespace {

enum X64Reg : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition codes for 0F 8x jcc.
enum Cond : uint8_t {
  CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6, CC_A = 0x7,
  CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF,
};

// x86 immediate-group extensions (81 /ext, 83 /ext).
constexpr uint8_t kExtAdd = 0, kExtAnd = 4, kExtSub = 5, kExtCmp = 7;
// Shift-group extensions (C1 / D3 /ext).
constexpr uint8_t kExtShl = 4, kExtShr = 5, kExtSar = 7;

class Asm {
 public:
  int NewLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }
  void Bind(int label) { labels_[label] = static_cast<int64_t>(buf_.size()); }
  size_t LabelOffset(int label) const { return static_cast<size_t>(labels_[label]); }

  // ---- raw emission ----
  void B(uint8_t b) { buf_.push_back(b); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) B(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) B(static_cast<uint8_t>(v >> (8 * i)));
  }

  void Rex(bool w, uint8_t reg, uint8_t index, uint8_t base) {
    const uint8_t rex = 0x40 | (w ? 8 : 0) | (((reg >> 3) & 1) << 2) |
                        (((index >> 3) & 1) << 1) | ((base >> 3) & 1);
    if (rex != 0x40) B(rex);
  }
  void ModRR(uint8_t reg, uint8_t rm) { B(0xC0 | ((reg & 7) << 3) | (rm & 7)); }

  // ModRM(+SIB)+disp for [base + disp].
  void MemBaseDisp(uint8_t reg_field, uint8_t base, int32_t disp) {
    const uint8_t basel = base & 7;
    const bool need_sib = basel == 4;  // rsp/r12 encodings require a SIB byte
    uint8_t mod;
    if (disp == 0 && basel != 5) {
      mod = 0;  // rbp/r13 as base require an explicit displacement
    } else if (disp >= -128 && disp <= 127) {
      mod = 1;
    } else {
      mod = 2;
    }
    B(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) | (need_sib ? 4 : basel)));
    if (need_sib) B(0x20 | basel);  // scale 1, no index
    if (mod == 1) {
      B(static_cast<uint8_t>(disp));
    } else if (mod == 2) {
      U32(static_cast<uint32_t>(disp));
    }
  }
  // ModRM+SIB for [base + index] (scale 1, no displacement). |index| must not
  // encode as 4 in its low bits (rsp); we never pass rsp/r12 as an index.
  void MemBaseIndex(uint8_t reg_field, uint8_t base, uint8_t index) {
    const uint8_t basel = base & 7;
    if (basel == 5) {  // rbp/r13 base needs mod=01 + disp8 0
      B(static_cast<uint8_t>(0x44 | ((reg_field & 7) << 3)));
      B(((index & 7) << 3) | basel);
      B(0);
      return;
    }
    B(static_cast<uint8_t>(0x04 | ((reg_field & 7) << 3)));
    B(((index & 7) << 3) | basel);
  }

  // ---- instructions ----
  void Push(uint8_t r) { Rex(false, 0, 0, r); B(0x50 + (r & 7)); }
  void Pop(uint8_t r) { Rex(false, 0, 0, r); B(0x58 + (r & 7)); }
  void Ret() { B(0xC3); }

  void MovRR64(uint8_t dst, uint8_t src) { Rex(true, src, 0, dst); B(0x89); ModRR(src, dst); }
  void MovRR32(uint8_t dst, uint8_t src) { Rex(false, src, 0, dst); B(0x89); ModRR(src, dst); }
  void MovRI64(uint8_t r, uint64_t imm) { Rex(true, 0, 0, r); B(0xB8 + (r & 7)); U64(imm); }
  void MovRI32(uint8_t r, uint32_t imm) { Rex(false, 0, 0, r); B(0xB8 + (r & 7)); U32(imm); }
  void MovRI32s(uint8_t r, int32_t imm) {  // mov r64, imm32 (sign-extends)
    Rex(true, 0, 0, r);
    B(0xC7);
    ModRR(0, r);
    U32(static_cast<uint32_t>(imm));
  }

  void LoadQ(uint8_t dst, uint8_t base, int32_t disp) {
    Rex(true, dst, 0, base); B(0x8B); MemBaseDisp(dst, base, disp);
  }
  void LoadD(uint8_t dst, uint8_t base, int32_t disp) {  // zero-extends
    Rex(false, dst, 0, base); B(0x8B); MemBaseDisp(dst, base, disp);
  }
  void StoreQ(uint8_t base, int32_t disp, uint8_t src) {
    Rex(true, src, 0, base); B(0x89); MemBaseDisp(src, base, disp);
  }
  void StoreQImm32s(uint8_t base, int32_t disp, int32_t imm) {  // sign-extends
    Rex(true, 0, 0, base); B(0xC7); MemBaseDisp(0, base, disp); U32(static_cast<uint32_t>(imm));
  }
  void Lea(uint8_t dst, uint8_t base, int32_t disp) {
    Rex(true, dst, 0, base); B(0x8D); MemBaseDisp(dst, base, disp);
  }

  // Zero-/sign-agnostic sized load/store at [base + index], scale 1.
  void LoadSized(uint8_t dst, uint8_t base, uint8_t index, int size) {
    switch (size) {
      case 1: Rex(false, dst, index, base); B(0x0F); B(0xB6); MemBaseIndex(dst, base, index); break;
      case 2: Rex(false, dst, index, base); B(0x0F); B(0xB7); MemBaseIndex(dst, base, index); break;
      case 4: Rex(false, dst, index, base); B(0x8B); MemBaseIndex(dst, base, index); break;
      default: Rex(true, dst, index, base); B(0x8B); MemBaseIndex(dst, base, index); break;
    }
  }
  void StoreSized(uint8_t base, uint8_t index, uint8_t src, int size) {
    switch (size) {
      case 1: Rex(false, src, index, base); B(0x88); MemBaseIndex(src, base, index); break;
      case 2: B(0x66); Rex(false, src, index, base); B(0x89); MemBaseIndex(src, base, index); break;
      case 4: Rex(false, src, index, base); B(0x89); MemBaseIndex(src, base, index); break;
      default: Rex(true, src, index, base); B(0x89); MemBaseIndex(src, base, index); break;
    }
  }

  // reg-direction ALU forms: |opcode| is the r/m,reg byte (01 add, 29 sub,
  // 09 or, 21 and, 31 xor, 39 cmp, 85 test).
  void AluRR64(uint8_t opcode, uint8_t rm, uint8_t reg) {
    Rex(true, reg, 0, rm); B(opcode); ModRR(reg, rm);
  }
  void AluRR32(uint8_t opcode, uint8_t rm, uint8_t reg) {
    Rex(false, reg, 0, rm); B(opcode); ModRR(reg, rm);
  }
  void AluMR64(uint8_t opcode, uint8_t base, int32_t disp, uint8_t reg) {
    Rex(true, reg, 0, base); B(opcode); MemBaseDisp(reg, base, disp);
  }
  void AluMR32(uint8_t opcode, uint8_t base, int32_t disp, uint8_t reg) {
    Rex(false, reg, 0, base); B(opcode); MemBaseDisp(reg, base, disp);
  }
  // cmp reg, [base+disp] (3B /r: reg - rm).
  void CmpRM64(uint8_t reg, uint8_t base, int32_t disp) {
    Rex(true, reg, 0, base); B(0x3B); MemBaseDisp(reg, base, disp);
  }

  // imm-group ALU (81 /ext imm32, 83 /ext imm8).
  void AluRI64(uint8_t ext, uint8_t r, int32_t imm) {
    Rex(true, 0, 0, r); B(0x81); ModRR(ext, r); U32(static_cast<uint32_t>(imm));
  }
  void AluRI32(uint8_t ext, uint8_t r, int32_t imm) {
    Rex(false, 0, 0, r); B(0x81); ModRR(ext, r); U32(static_cast<uint32_t>(imm));
  }
  void AluRI8_64(uint8_t ext, uint8_t r, int8_t imm) {
    Rex(true, 0, 0, r); B(0x83); ModRR(ext, r); B(static_cast<uint8_t>(imm));
  }
  void AluMI64(uint8_t ext, uint8_t base, int32_t disp, int32_t imm) {
    Rex(true, 0, 0, base); B(0x81); MemBaseDisp(ext, base, disp); U32(static_cast<uint32_t>(imm));
  }
  void AluMI32(uint8_t ext, uint8_t base, int32_t disp, int32_t imm) {
    Rex(false, 0, 0, base); B(0x81); MemBaseDisp(ext, base, disp); U32(static_cast<uint32_t>(imm));
  }

  void TestRR64(uint8_t a, uint8_t b) { AluRR64(0x85, a, b); }
  void TestRR32(uint8_t a, uint8_t b) { AluRR32(0x85, a, b); }
  void TestMI64(uint8_t base, int32_t disp, int32_t imm) {
    Rex(true, 0, 0, base); B(0xF7); MemBaseDisp(0, base, disp); U32(static_cast<uint32_t>(imm));
  }
  void TestMI32(uint8_t base, int32_t disp, int32_t imm) {
    Rex(false, 0, 0, base); B(0xF7); MemBaseDisp(0, base, disp); U32(static_cast<uint32_t>(imm));
  }
  void XorRR32(uint8_t r) { AluRR32(0x31, r, r); }

  void CmpByteMemDisp0(uint8_t base, int32_t disp) {  // cmp byte [base+disp], 0
    Rex(false, 0, 0, base); B(0x80); MemBaseDisp(7, base, disp); B(0);
  }
  void CmpByteMemIndex0(uint8_t base, uint8_t index) {  // cmp byte [base+index], 0
    Rex(false, 0, index, base); B(0x80); MemBaseIndex(7, base, index); B(0);
  }

  void ImulRM64(uint8_t dst, uint8_t base, int32_t disp) {
    Rex(true, dst, 0, base); B(0x0F); B(0xAF); MemBaseDisp(dst, base, disp);
  }
  void ImulRR32(uint8_t dst, uint8_t src) {
    Rex(false, dst, 0, src); B(0x0F); B(0xAF); ModRR(dst, src);
  }
  void ImulRRI(uint8_t dst, uint8_t src, int32_t imm, bool w) {
    Rex(w, dst, 0, src); B(0x69); ModRR(dst, src); U32(static_cast<uint32_t>(imm));
  }
  void NegR64(uint8_t r) { Rex(true, 0, 0, r); B(0xF7); ModRR(3, r); }
  void NegR32(uint8_t r) { Rex(false, 0, 0, r); B(0xF7); ModRR(3, r); }
  void NegM64(uint8_t base, int32_t disp) {
    Rex(true, 0, 0, base); B(0xF7); MemBaseDisp(3, base, disp);
  }
  void DivR64(uint8_t r) { Rex(true, 0, 0, r); B(0xF7); ModRR(6, r); }  // rdx:rax / r
  void DivR32(uint8_t r) { Rex(false, 0, 0, r); B(0xF7); ModRR(6, r); }

  void ShiftRI64(uint8_t ext, uint8_t r, uint8_t count) {
    Rex(true, 0, 0, r); B(0xC1); ModRR(ext, r); B(count);
  }
  void ShiftRI32(uint8_t ext, uint8_t r, uint8_t count) {
    Rex(false, 0, 0, r); B(0xC1); ModRR(ext, r); B(count);
  }
  void ShiftRC64(uint8_t ext, uint8_t r) {  // count in cl
    Rex(true, 0, 0, r); B(0xD3); ModRR(ext, r);
  }
  void ShiftRC32(uint8_t ext, uint8_t r) {
    Rex(false, 0, 0, r); B(0xD3); ModRR(ext, r);
  }
  void ShiftMI64(uint8_t ext, uint8_t base, int32_t disp, uint8_t count) {
    Rex(true, 0, 0, base); B(0xC1); MemBaseDisp(ext, base, disp); B(count);
  }
  void ShiftMC64(uint8_t ext, uint8_t base, int32_t disp) {
    Rex(true, 0, 0, base); B(0xD3); MemBaseDisp(ext, base, disp);
  }

  void Bswap64(uint8_t r) { Rex(true, 0, 0, r); B(0x0F); B(0xC8 + (r & 7)); }
  void Bswap32(uint8_t r) { Rex(false, 0, 0, r); B(0x0F); B(0xC8 + (r & 7)); }
  void MovzxAl() { B(0x0F); B(0xB6); B(0xC0); }   // movzx eax, al
  void MovzxAx() { B(0x0F); B(0xB7); B(0xC0); }   // movzx eax, ax

  void Jcc(uint8_t cc, int label) { B(0x0F); B(0x80 + cc); Rel32(label); }
  void Jmp(int label) { B(0xE9); Rel32(label); }
  void JmpMemIndex8(uint8_t base, uint8_t index) {  // jmp qword [base + index*8]
    Rex(false, 0, index, base);
    B(0xFF);
    B(0x24);
    B(static_cast<uint8_t>(0xC0 | ((index & 7) << 3) | (base & 7)));
  }
  void CallAbs(const void* fn) {
    MovRI64(RAX, reinterpret_cast<uint64_t>(fn));
    B(0xFF);
    B(0xD0);  // call rax
  }

  bool Finalize(std::vector<uint8_t>* out) {
    for (const Fixup& f : fixups_) {
      const int64_t target = labels_[f.label];
      if (target < 0) return false;  // unbound label
      const int64_t rel = target - static_cast<int64_t>(f.pos) - 4;
      for (int i = 0; i < 4; ++i) {
        buf_[f.pos + i] = static_cast<uint8_t>(static_cast<uint64_t>(rel) >> (8 * i));
      }
    }
    *out = std::move(buf_);
    return true;
  }

 private:
  struct Fixup {
    size_t pos;  // offset of the rel32 field
    int label;
  };
  void Rel32(int label) {
    fixups_.push_back({buf_.size(), label});
    U32(0);
  }

  std::vector<uint8_t> buf_;
  std::vector<int64_t> labels_;
  std::vector<Fixup> fixups_;
};

int32_t RegOff(int r) { return static_cast<int32_t>(r) * 8; }
#define RT_OFF(field) static_cast<int32_t>(offsetof(JitRt, field))

// Condition code for a BPF conditional-jump subop; jset uses test+NE.
// Returns false for subops outside the defined set (never taken — exactly
// JmpTaken's default), in which case no branch is emitted.
bool CondFor(uint8_t subop, uint8_t* cc) {
  switch (subop) {
    case kJmpJeq: *cc = CC_E; return true;
    case kJmpJne: *cc = CC_NE; return true;
    case kJmpJgt: *cc = CC_A; return true;
    case kJmpJge: *cc = CC_AE; return true;
    case kJmpJlt: *cc = CC_B; return true;
    case kJmpJle: *cc = CC_BE; return true;
    case kJmpJset: *cc = CC_NE; return true;
    case kJmpJsgt: *cc = CC_G; return true;
    case kJmpJsge: *cc = CC_GE; return true;
    case kJmpJslt: *cc = CC_L; return true;
    case kJmpJsle: *cc = CC_LE; return true;
    default: return false;
  }
}

}  // namespace

bool EmitJitX86_64(const DecodedProgram& decoded, std::vector<uint8_t>* code,
                   std::vector<size_t>* head_offsets) {
  const std::vector<Uop>& uops = decoded.uops;
  const size_t n = uops.size();
  if (n == 0) return false;

  Asm a;
  std::vector<int> head(n);
  for (int& h : head) h = a.NewLabel();
  const int budget_tail = a.NewLabel();
  const int exit_tail = a.NewLabel();
  const int return_tail = a.NewLabel();

  bool has_subprog = false;
  for (const Uop& u : uops) {
    if (u.code == UopCode::kCallSubprog) has_subprog = true;
  }

  struct WdStub {
    int label;
    int resume;
  };
  std::vector<WdStub> wd_stubs;
  std::vector<std::function<void()>> cold_blocks;

  // Emits the call-and-dispatch tail shared by every slow path: trampoline
  // call, abort-code test, resume at the next uop's step prologue.
  auto emit_slow_call = [&](const void* fn, uint64_t packed, bool has_rdx,
                            uint64_t rdx_value, int resume_label) {
    a.MovRR64(RDI, R12);
    a.MovRI64(RSI, packed);
    if (has_rdx) a.MovRI64(RDX, rdx_value);
    a.CallAbs(fn);
    a.TestRR32(RAX, RAX);
    a.Jcc(CC_NE, return_tail);
    a.Jmp(resume_label);
  };

  // ---- function prologue ----
  a.Push(R12);
  a.Push(R13);
  a.Push(R14);
  a.Push(R15);
  a.AluRI8_64(kExtSub, RSP, 8);  // keep rsp 16-byte aligned at call sites
  a.MovRR64(R12, RDI);
  a.XorRR32(R13);  // steps = 0
  a.LoadQ(R14, R12, RT_OFF(max_insns));
  a.LoadQ(R15, R12, RT_OFF(wd_reload));
  // falls through into uop 0's step prologue

  for (size_t i = 0; i < n; ++i) {
    const Uop& u = uops[i];
    a.Bind(head[i]);

    // Step prologue — one uop is exactly one legacy loop iteration.
    a.AluRR64(0x39, R13, R14);  // cmp steps, max_insns
    a.Jcc(CC_AE, budget_tail);
    a.AluRI8_64(kExtAdd, R13, 1);
    a.AluRI8_64(kExtSub, R15, 1);
    const int wd = a.NewLabel();
    a.Jcc(CC_E, wd);  // countdown hit zero: cold stub samples the clock
    const int resume = a.NewLabel();
    a.Bind(resume);
    wd_stubs.push_back({wd, resume});

    if (u.witness) {
      const int skip = a.NewLabel();
      a.LoadQ(RAX, R12, RT_OFF(witness));
      a.TestRR64(RAX, RAX);
      a.Jcc(CC_E, skip);
      a.MovRR64(RDI, R12);
      a.MovRI32(RSI, static_cast<uint32_t>(u.orig_pc));
      a.CallAbs(reinterpret_cast<const void*>(&BvfJitWitness));
      a.Bind(skip);
    }

    const int32_t dst_off = RegOff(u.dst);

    switch (u.code) {
      case UopCode::kAlu64Imm: {
        int64_t imm = u.imm;
        if (JitMiscompileForTest() && u.subop == kAluAdd && imm == 0x7eef) {
          imm += 1;  // deliberate test-only miscompile (SetJitMiscompileForTest)
        }
        const int32_t imm32 = static_cast<int32_t>(imm);
        switch (u.subop) {
          case kAluAdd: a.AluMI64(0, R12, dst_off, imm32); break;
          case kAluSub: a.AluMI64(5, R12, dst_off, imm32); break;
          case kAluOr: a.AluMI64(1, R12, dst_off, imm32); break;
          case kAluAnd: a.AluMI64(4, R12, dst_off, imm32); break;
          case kAluXor: a.AluMI64(6, R12, dst_off, imm32); break;
          case kAluMov: a.StoreQImm32s(R12, dst_off, imm32); break;
          case kAluLsh: a.ShiftMI64(kExtShl, R12, dst_off, imm & 63); break;
          case kAluRsh: a.ShiftMI64(kExtShr, R12, dst_off, imm & 63); break;
          case kAluArsh: a.ShiftMI64(kExtSar, R12, dst_off, imm & 63); break;
          case kAluMul:
            a.LoadQ(RAX, R12, dst_off);
            a.ImulRRI(RAX, RAX, imm32, true);
            a.StoreQ(R12, dst_off, RAX);
            break;
          case kAluDiv:
            if (imm == 0) {
              a.StoreQImm32s(R12, dst_off, 0);
            } else {
              a.LoadQ(RAX, R12, dst_off);
              a.MovRI32s(RCX, imm32);
              a.XorRR32(RDX);
              a.DivR64(RCX);
              a.StoreQ(R12, dst_off, RAX);
            }
            break;
          case kAluMod:
            if (imm != 0) {  // src==0 leaves dst unchanged
              a.LoadQ(RAX, R12, dst_off);
              a.MovRI32s(RCX, imm32);
              a.XorRR32(RDX);
              a.DivR64(RCX);
              a.StoreQ(R12, dst_off, RDX);
            }
            break;
          default: break;  // unknown subop: dst unchanged (AluOp64 default)
        }
        break;
      }

      case UopCode::kAlu64Reg: {
        const int32_t src_off = RegOff(u.src);
        switch (u.subop) {
          case kAluAdd: a.LoadQ(RCX, R12, src_off); a.AluMR64(0x01, R12, dst_off, RCX); break;
          case kAluSub: a.LoadQ(RCX, R12, src_off); a.AluMR64(0x29, R12, dst_off, RCX); break;
          case kAluOr: a.LoadQ(RCX, R12, src_off); a.AluMR64(0x09, R12, dst_off, RCX); break;
          case kAluAnd: a.LoadQ(RCX, R12, src_off); a.AluMR64(0x21, R12, dst_off, RCX); break;
          case kAluXor: a.LoadQ(RCX, R12, src_off); a.AluMR64(0x31, R12, dst_off, RCX); break;
          case kAluMov:
            a.LoadQ(RAX, R12, src_off);
            a.StoreQ(R12, dst_off, RAX);
            break;
          case kAluLsh:
            a.LoadQ(RCX, R12, src_off);
            a.ShiftMC64(kExtShl, R12, dst_off);  // hardware masks cl & 63
            break;
          case kAluRsh:
            a.LoadQ(RCX, R12, src_off);
            a.ShiftMC64(kExtShr, R12, dst_off);
            break;
          case kAluArsh:
            a.LoadQ(RCX, R12, src_off);
            a.ShiftMC64(kExtSar, R12, dst_off);
            break;
          case kAluMul:
            a.LoadQ(RAX, R12, dst_off);
            a.ImulRM64(RAX, R12, src_off);
            a.StoreQ(R12, dst_off, RAX);
            break;
          case kAluDiv: {
            const int zero = a.NewLabel();
            const int done = a.NewLabel();
            a.LoadQ(RAX, R12, dst_off);
            a.LoadQ(RCX, R12, src_off);
            a.TestRR64(RCX, RCX);
            a.Jcc(CC_E, zero);
            a.XorRR32(RDX);
            a.DivR64(RCX);
            a.StoreQ(R12, dst_off, RAX);
            a.Jmp(done);
            a.Bind(zero);
            a.StoreQImm32s(R12, dst_off, 0);
            a.Bind(done);
            break;
          }
          case kAluMod: {
            const int skip = a.NewLabel();
            a.LoadQ(RAX, R12, dst_off);
            a.LoadQ(RCX, R12, src_off);
            a.TestRR64(RCX, RCX);
            a.Jcc(CC_E, skip);  // src==0: dst unchanged
            a.XorRR32(RDX);
            a.DivR64(RCX);
            a.StoreQ(R12, dst_off, RDX);
            a.Bind(skip);
            break;
          }
          default: break;
        }
        break;
      }

      case UopCode::kAlu32Imm: {
        const int32_t imm32 = static_cast<int32_t>(u.imm);
        // Result is always the zero-extended 32-bit value — even for
        // "unchanged" cases like mod-by-zero, AluOp32 truncates.
        a.LoadD(RAX, R12, dst_off);
        switch (u.subop) {
          case kAluAdd: a.AluRI32(0, RAX, imm32); break;
          case kAluSub: a.AluRI32(5, RAX, imm32); break;
          case kAluOr: a.AluRI32(1, RAX, imm32); break;
          case kAluAnd: a.AluRI32(4, RAX, imm32); break;
          case kAluXor: a.AluRI32(6, RAX, imm32); break;
          case kAluMov: a.MovRI32(RAX, static_cast<uint32_t>(imm32)); break;
          case kAluMul: a.ImulRRI(RAX, RAX, imm32, false); break;
          case kAluLsh: a.ShiftRI32(kExtShl, RAX, u.imm & 31); break;
          case kAluRsh: a.ShiftRI32(kExtShr, RAX, u.imm & 31); break;
          case kAluArsh: a.ShiftRI32(kExtSar, RAX, u.imm & 31); break;
          case kAluDiv:
            if (imm32 == 0) {
              a.XorRR32(RAX);
            } else {
              a.MovRI32(RCX, static_cast<uint32_t>(imm32));
              a.XorRR32(RDX);
              a.DivR32(RCX);
            }
            break;
          case kAluMod:
            if (imm32 != 0) {
              a.MovRI32(RCX, static_cast<uint32_t>(imm32));
              a.XorRR32(RDX);
              a.DivR32(RCX);
              a.MovRR32(RAX, RDX);
            }
            break;
          default: break;  // AluOp32 default: truncated dst
        }
        a.StoreQ(R12, dst_off, RAX);
        break;
      }

      case UopCode::kAlu32Reg: {
        const int32_t src_off = RegOff(u.src);
        a.LoadD(RAX, R12, dst_off);
        a.LoadD(RCX, R12, src_off);
        switch (u.subop) {
          case kAluAdd: a.AluRR32(0x01, RAX, RCX); break;
          case kAluSub: a.AluRR32(0x29, RAX, RCX); break;
          case kAluOr: a.AluRR32(0x09, RAX, RCX); break;
          case kAluAnd: a.AluRR32(0x21, RAX, RCX); break;
          case kAluXor: a.AluRR32(0x31, RAX, RCX); break;
          case kAluMov: a.MovRR32(RAX, RCX); break;
          case kAluMul: a.ImulRR32(RAX, RCX); break;
          case kAluLsh: a.ShiftRC32(kExtShl, RAX); break;
          case kAluRsh: a.ShiftRC32(kExtShr, RAX); break;
          case kAluArsh: a.ShiftRC32(kExtSar, RAX); break;
          case kAluDiv: {
            const int zero = a.NewLabel();
            const int done = a.NewLabel();
            a.TestRR32(RCX, RCX);
            a.Jcc(CC_E, zero);
            a.XorRR32(RDX);
            a.DivR32(RCX);
            a.Jmp(done);
            a.Bind(zero);
            a.XorRR32(RAX);
            a.Bind(done);
            break;
          }
          case kAluMod: {
            const int store = a.NewLabel();
            a.TestRR32(RCX, RCX);
            a.Jcc(CC_E, store);  // src==0: truncated dst
            a.XorRR32(RDX);
            a.DivR32(RCX);
            a.MovRR32(RAX, RDX);
            a.Bind(store);
            break;
          }
          default: break;
        }
        a.StoreQ(R12, dst_off, RAX);
        break;
      }

      case UopCode::kNeg64:
        a.NegM64(R12, dst_off);
        break;

      case UopCode::kNeg32:
        a.LoadD(RAX, R12, dst_off);
        a.NegR32(RAX);
        a.StoreQ(R12, dst_off, RAX);
        break;

      case UopCode::kEndian: {
        const int w = static_cast<int>(u.imm);
        if (u.flag) {  // to_be: ByteSwap (no-op outside {16,32,64})
          if (w == 16) {
            a.LoadQ(RAX, R12, dst_off);
            a.Bswap64(RAX);
            a.ShiftRI64(kExtShr, RAX, 48);  // bswap16 of the low word
            a.StoreQ(R12, dst_off, RAX);
          } else if (w == 32) {
            a.LoadD(RAX, R12, dst_off);
            a.Bswap32(RAX);
            a.StoreQ(R12, dst_off, RAX);
          } else if (w == 64) {
            a.LoadQ(RAX, R12, dst_off);
            a.Bswap64(RAX);
            a.StoreQ(R12, dst_off, RAX);
          }
        } else {  // to_le: truncation mask (ExecEndian)
          if (w >= 64) {
            // no-op
          } else if (w <= 0) {
            a.StoreQImm32s(R12, dst_off, 0);
          } else {
            a.LoadQ(RAX, R12, dst_off);
            a.MovRI64(RCX, (1ull << w) - 1);
            a.AluRR64(0x21, RAX, RCX);
            a.StoreQ(R12, dst_off, RAX);
          }
        }
        break;
      }

      case UopCode::kLdImm64:
        a.MovRI64(RAX, static_cast<uint64_t>(u.imm));
        a.StoreQ(R12, dst_off, RAX);
        a.Jmp(head[u.target]);
        break;

      case UopCode::kLoad: {
        const int slow = a.NewLabel();
        a.LoadQ(RAX, R12, RegOff(u.src));
        if (u.off != 0) a.Lea(RAX, RAX, u.off);
        a.MovRI64(RDX, kArenaBase);
        a.MovRR64(RCX, RAX);
        a.AluRR64(0x29, RCX, RDX);  // rcx = guest offset into the arena
        a.LoadQ(RDX, R12, RT_OFF(arena_size));
        a.AluRI8_64(kExtSub, RDX, static_cast<int8_t>(u.size));
        a.AluRR64(0x39, RCX, RDX);
        a.Jcc(CC_A, slow);  // null page / wild / overflow: C++ path
        a.LoadQ(RSI, R12, RT_OFF(mem_base));
        a.LoadSized(RAX, RSI, RCX, u.size);
        if (u.sext && u.size < 8) {  // BPF_MEMSX: sign- instead of zero-extend
          const uint8_t shift = static_cast<uint8_t>(64 - 8 * u.size);
          a.ShiftRI64(kExtShl, RAX, shift);
          a.ShiftRI64(kExtSar, RAX, shift);
        }
        a.StoreQ(R12, dst_off, RAX);
        const uint64_t packed = static_cast<uint64_t>(u.dst) |
                                static_cast<uint64_t>(u.src) << 8 |
                                static_cast<uint64_t>(u.size) << 16 |
                                (u.flag ? 1ull << 24 : 0) |
                                (u.sext ? 1ull << 25 : 0) |
                                static_cast<uint64_t>(static_cast<uint16_t>(u.off)) << 32;
        cold_blocks.push_back([&a, &emit_slow_call, slow, packed, next = head[i + 1]] {
          a.Bind(slow);
          emit_slow_call(reinterpret_cast<const void*>(&BvfJitLoad), packed, false, 0, next);
        });
        break;
      }

      case UopCode::kStoreReg:
      case UopCode::kStoreImm: {
        const bool is_imm = u.code == UopCode::kStoreImm;
        const int slow = a.NewLabel();
        a.LoadQ(RAX, R12, dst_off);
        if (u.off != 0) a.Lea(RAX, RAX, u.off);
        a.MovRI64(RDX, kArenaBase);
        a.MovRR64(RCX, RAX);
        a.AluRR64(0x29, RCX, RDX);
        a.LoadQ(RDX, R12, RT_OFF(arena_size));
        a.AluRI8_64(kExtSub, RDX, static_cast<int8_t>(u.size));
        a.AluRR64(0x39, RCX, RDX);
        a.Jcc(CC_A, slow);
        if (u.size > 1) {  // page-spanning stores take the C++ path (MarkDirty)
          a.MovRR32(RSI, RCX);
          a.AluRI32(kExtAnd, RSI, 4095);
          a.AluRI32(kExtCmp, RSI, 4096 - u.size);
          a.Jcc(CC_A, slow);
        }
        a.MovRR64(RDX, RCX);
        a.ShiftRI64(kExtShr, RDX, 12);
        a.LoadQ(RSI, R12, RT_OFF(page_dirty));
        a.CmpByteMemIndex0(RSI, RDX);
        a.Jcc(CC_E, slow);  // page not yet dirty: C++ path marks it
        a.LoadQ(RSI, R12, RT_OFF(mem_base));
        if (is_imm) {
          a.MovRI32s(RDX, static_cast<int32_t>(u.imm));
        } else {
          a.LoadQ(RDX, R12, RegOff(u.src));
        }
        a.StoreSized(RSI, RCX, RDX, u.size);
        const uint64_t packed = static_cast<uint64_t>(u.dst) |
                                static_cast<uint64_t>(u.src) << 8 |
                                static_cast<uint64_t>(u.size) << 16 |
                                static_cast<uint64_t>(static_cast<uint16_t>(u.off)) << 32;
        const void* fn = is_imm ? reinterpret_cast<const void*>(&BvfJitStoreImm)
                                : reinterpret_cast<const void*>(&BvfJitStoreReg);
        const uint64_t imm_val = static_cast<uint64_t>(u.imm);
        cold_blocks.push_back(
            [&a, &emit_slow_call, slow, packed, fn, is_imm, imm_val, next = head[i + 1]] {
              a.Bind(slow);
              emit_slow_call(fn, packed, is_imm, imm_val, next);
            });
        break;
      }

      case UopCode::kAtomic: {
        const uint64_t packed = static_cast<uint64_t>(u.dst) |
                                static_cast<uint64_t>(u.src) << 8 |
                                static_cast<uint64_t>(u.size) << 16 |
                                static_cast<uint64_t>(static_cast<uint16_t>(u.off)) << 32;
        a.MovRR64(RDI, R12);
        a.MovRI64(RSI, packed);
        a.MovRI64(RDX, static_cast<uint64_t>(u.imm));
        a.CallAbs(reinterpret_cast<const void*>(&BvfJitAtomic));
        a.TestRR32(RAX, RAX);
        a.Jcc(CC_NE, return_tail);
        break;
      }

      case UopCode::kJa:
        a.Jmp(head[u.target]);
        break;

      case UopCode::kJmpImm: {
        uint8_t cc;
        if (!CondFor(u.subop, &cc)) break;  // undefined op: never taken
        const int32_t imm32 = static_cast<int32_t>(u.imm);
        if (u.subop == kJmpJset) {
          a.TestMI64(R12, dst_off, imm32);  // test sign-extends imm32
        } else {
          a.AluMI64(kExtCmp, R12, dst_off, imm32);  // cmp sign-extends imm32
        }
        a.Jcc(cc, head[u.target]);
        break;
      }

      case UopCode::kJmpReg: {
        uint8_t cc;
        if (!CondFor(u.subop, &cc)) break;
        a.LoadQ(RCX, R12, RegOff(u.src));
        a.AluMR64(u.subop == kJmpJset ? 0x85 : 0x39, R12, dst_off, RCX);
        a.Jcc(cc, head[u.target]);
        break;
      }

      case UopCode::kJmp32Imm: {
        uint8_t cc;
        if (!CondFor(u.subop, &cc)) break;
        const int32_t imm32 = static_cast<int32_t>(u.imm);
        if (u.subop == kJmpJset) {
          a.TestMI32(R12, dst_off, imm32);
        } else {
          a.AluMI32(kExtCmp, R12, dst_off, imm32);
        }
        a.Jcc(cc, head[u.target]);
        break;
      }

      case UopCode::kJmp32Reg: {
        uint8_t cc;
        if (!CondFor(u.subop, &cc)) break;
        a.LoadD(RCX, R12, RegOff(u.src));
        a.AluMR32(u.subop == kJmpJset ? 0x85 : 0x39, R12, dst_off, RCX);
        a.Jcc(cc, head[u.target]);
        break;
      }

      case UopCode::kExit:
        if (!has_subprog) {
          a.Jmp(exit_tail);  // frames are provably empty
        } else {
          a.MovRR64(RDI, R12);
          a.CallAbs(reinterpret_cast<const void*>(&BvfJitExit));
          a.AluRI8_64(kExtCmp, RAX, -1);
          a.Jcc(CC_E, exit_tail);
          // Subprogram return: resume at the caller's next uop via the
          // native-head table (the return upc is a runtime value).
          a.LoadQ(RCX, R12, RT_OFF(ret_table));
          a.JmpMemIndex8(RCX, RAX);
        }
        break;

      case UopCode::kCallSubprog:
        a.MovRR64(RDI, R12);
        a.MovRI32(RSI, static_cast<uint32_t>(i + 1));  // return upc
        a.CallAbs(reinterpret_cast<const void*>(&BvfJitCallSubprog));
        a.TestRR32(RAX, RAX);
        a.Jcc(CC_NE, return_tail);
        a.Jmp(head[u.target]);
        break;

      case UopCode::kCallHelper:
      case UopCode::kCallKfunc:
        a.MovRR64(RDI, R12);
        a.MovRI32(RSI, static_cast<uint32_t>(u.imm));
        a.CallAbs(u.code == UopCode::kCallHelper
                      ? reinterpret_cast<const void*>(&BvfJitHelper)
                      : reinterpret_cast<const void*>(&BvfJitKfunc));
        break;  // helpers never abort

      case UopCode::kCallInternal:
        a.MovRR64(RDI, R12);
        a.MovRI32(RSI, static_cast<uint32_t>(u.imm));
        a.CallAbs(reinterpret_cast<const void*>(&BvfJitInternal));
        a.TestRR32(RAX, RAX);
        a.Jcc(CC_NE, return_tail);
        break;

      case UopCode::kAsanLoad: {
        // Inline FastCheckedLoad (kasan.h): word-in-arena check, shadow-word
        // mask test, masked 8-byte read. Any miss — including the non-native
        // internal-table configuration — re-runs the full C++ path.
        const int slow = a.NewLabel();
        const uint64_t mask =
            u.size >= 8 ? ~0ull : ((1ull << (u.size * 8)) - 1);
        a.CmpByteMemDisp0(R12, RT_OFF(asan_native));
        a.Jcc(CC_E, slow);
        a.LoadQ(RAX, R12, RegOff(kR1));
        a.MovRI64(RDX, kArenaBase);
        a.MovRR64(RCX, RAX);
        a.AluRR64(0x29, RCX, RDX);
        a.LoadQ(RDX, R12, RT_OFF(arena_size));
        a.AluRI8_64(kExtSub, RDX, 8);
        a.AluRR64(0x39, RCX, RDX);
        a.Jcc(CC_A, slow);
        a.LoadQ(RSI, R12, RT_OFF(shadow_base));
        a.LoadSized(RDX, RSI, RCX, 8);
        if (u.size >= 8) {
          a.TestRR64(RDX, RDX);
        } else {
          a.MovRI32(RSI, static_cast<uint32_t>(mask));
          a.TestRR64(RDX, RSI);
        }
        a.Jcc(CC_NE, slow);
        a.LoadQ(RSI, R12, RT_OFF(mem_base));
        a.LoadSized(RAX, RSI, RCX, 8);
        if (u.size == 1) {
          a.MovzxAl();
        } else if (u.size == 2) {
          a.MovzxAx();
        } else if (u.size == 4) {
          a.MovRR32(RAX, RAX);
        }
        a.StoreQ(R12, RegOff(kR0), RAX);
        const uint64_t packed =
            static_cast<uint64_t>(u.size) | (u.flag ? 1ull << 8 : 0) |
            static_cast<uint64_t>(static_cast<uint32_t>(u.imm)) << 32;
        cold_blocks.push_back([&a, &emit_slow_call, slow, packed, next = head[i + 1]] {
          a.Bind(slow);
          emit_slow_call(reinterpret_cast<const void*>(&BvfJitAsanLoad), packed, false, 0,
                         next);
        });
        break;
      }

      case UopCode::kAsanStore: {
        const int slow = a.NewLabel();
        const uint64_t mask =
            u.size >= 8 ? ~0ull : ((1ull << (u.size * 8)) - 1);
        a.CmpByteMemDisp0(R12, RT_OFF(asan_native));
        a.Jcc(CC_E, slow);
        a.LoadQ(RAX, R12, RegOff(kR1));
        a.MovRI64(RDX, kArenaBase);
        a.MovRR64(RCX, RAX);
        a.AluRR64(0x29, RCX, RDX);
        a.LoadQ(RDX, R12, RT_OFF(arena_size));
        a.AluRI8_64(kExtSub, RDX, 8);
        a.AluRR64(0x39, RCX, RDX);
        a.Jcc(CC_A, slow);
        a.LoadQ(RSI, R12, RT_OFF(shadow_base));
        a.LoadSized(RDX, RSI, RCX, 8);
        if (u.size >= 8) {
          a.TestRR64(RDX, RDX);
        } else {
          a.MovRI32(RSI, static_cast<uint32_t>(mask));
          a.TestRR64(RDX, RSI);
        }
        a.Jcc(CC_NE, slow);
        // The blended write touches the whole containing 8-byte word; take
        // the native path only when that word sits in one already-dirty page
        // (so skipping MarkDirty is a no-op).
        a.MovRR32(RSI, RCX);
        a.AluRI32(kExtAnd, RSI, 4095);
        a.AluRI32(kExtCmp, RSI, 4088);
        a.Jcc(CC_A, slow);
        a.MovRR64(RDX, RCX);
        a.ShiftRI64(kExtShr, RDX, 12);
        a.LoadQ(RSI, R12, RT_OFF(page_dirty));
        a.CmpByteMemIndex0(RSI, RDX);
        a.Jcc(CC_E, slow);
        a.LoadQ(RSI, R12, RT_OFF(mem_base));
        a.LoadQ(RDX, R12, RegOff(kR2));  // value
        if (u.size >= 8) {
          a.StoreSized(RSI, RCX, RDX, 8);
        } else {
          a.LoadSized(RAX, RSI, RCX, 8);  // current word
          a.MovRI64(RDI, ~mask);
          a.AluRR64(0x21, RAX, RDI);
          a.MovRI32(RDI, static_cast<uint32_t>(mask));
          a.AluRR64(0x21, RDX, RDI);
          a.AluRR64(0x09, RAX, RDX);
          a.StoreSized(RSI, RCX, RAX, 8);
        }
        a.StoreQImm32s(R12, RegOff(kR0), 0);
        const uint64_t packed =
            static_cast<uint64_t>(u.size) |
            static_cast<uint64_t>(static_cast<uint32_t>(u.imm)) << 32;
        cold_blocks.push_back([&a, &emit_slow_call, slow, packed, next = head[i + 1]] {
          a.Bind(slow);
          emit_slow_call(reinterpret_cast<const void*>(&BvfJitAsanStore), packed, false, 0,
                         next);
        });
        break;
      }

      case UopCode::kAsanAluPos: {
        // Fast path: no violation (value <= limit) files nothing.
        const int slow = a.NewLabel();
        a.CmpByteMemDisp0(R12, RT_OFF(asan_native));
        a.Jcc(CC_E, slow);
        a.LoadQ(RAX, R12, RegOff(kR1));
        a.CmpRM64(RAX, R12, RegOff(kR2));
        a.Jcc(CC_A, slow);  // value > limit: report path
        a.StoreQImm32s(R12, RegOff(kR0), 0);
        const uint64_t packed = static_cast<uint64_t>(static_cast<uint32_t>(u.imm));
        cold_blocks.push_back([&a, &emit_slow_call, slow, packed, next = head[i + 1]] {
          a.Bind(slow);
          emit_slow_call(reinterpret_cast<const void*>(&BvfJitAsanAluPos), packed, false, 0,
                         next);
        });
        break;
      }

      case UopCode::kAsanAluNeg: {
        // Fast path: value is non-positive and its magnitude is within limit.
        const int slow = a.NewLabel();
        a.CmpByteMemDisp0(R12, RT_OFF(asan_native));
        a.Jcc(CC_E, slow);
        a.LoadQ(RAX, R12, RegOff(kR1));
        a.TestRR64(RAX, RAX);
        a.Jcc(CC_G, slow);  // signed value > 0: report path
        a.NegR64(RAX);      // magnitude
        a.CmpRM64(RAX, R12, RegOff(kR2));
        a.Jcc(CC_A, slow);  // magnitude > limit: report path
        a.StoreQImm32s(R12, RegOff(kR0), 0);
        const uint64_t packed = static_cast<uint64_t>(static_cast<uint32_t>(u.imm));
        cold_blocks.push_back([&a, &emit_slow_call, slow, packed, next = head[i + 1]] {
          a.Bind(slow);
          emit_slow_call(reinterpret_cast<const void*>(&BvfJitAsanAluNeg), packed, false, 0,
                         next);
        });
        break;
      }

      case UopCode::kInvalid:
        a.MovRI32(RAX, kJitAbortBadOpcode);
        a.Jmp(return_tail);
        break;

      case UopCode::kPcOob:
        a.MovRI32(RAX, kJitAbortPcOob);
        a.Jmp(return_tail);
        break;
    }
    // Non-control uops fall through into the next uop's step prologue.
  }

  // ---- shared tails ----
  a.Bind(budget_tail);
  a.AluRI8_64(kExtAdd, R13, 1);  // the tripping step is still counted
  a.MovRI32(RAX, kJitAbortBudget);
  a.Jmp(return_tail);

  a.Bind(exit_tail);
  a.XorRR32(RAX);  // clean exit; falls through

  a.Bind(return_tail);
  a.StoreQ(R12, RT_OFF(steps), R13);
  a.AluRI8_64(kExtAdd, RSP, 8);
  a.Pop(R15);
  a.Pop(R14);
  a.Pop(R13);
  a.Pop(R12);
  a.Ret();

  // ---- cold code ----
  for (const WdStub& s : wd_stubs) {
    a.Bind(s.label);
    a.MovRR64(RDI, R12);
    a.CallAbs(reinterpret_cast<const void*>(&BvfJitWatchdog));
    a.LoadQ(R15, R12, RT_OFF(wd_reload));  // countdown restarts either way
    a.TestRR32(RAX, RAX);
    a.Jcc(CC_NE, return_tail);
    a.Jmp(s.resume);  // re-runs the witness check, as watchdog_due does
  }
  for (const std::function<void()>& emit : cold_blocks) {
    emit();
  }

  if (!a.Finalize(code)) return false;
  head_offsets->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*head_offsets)[i] = a.LabelOffset(head[i]);
  }
  return true;
}

}  // namespace bpf

#else  // !defined(__x86_64__)

namespace bpf {

bool EmitJitX86_64(const DecodedProgram&, std::vector<uint8_t>*, std::vector<size_t>*) {
  return false;
}

}  // namespace bpf

#endif
