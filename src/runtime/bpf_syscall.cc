#include "src/runtime/bpf_syscall.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/ebpf/insn.h"
#include "src/runtime/decoded_prog.h"
#include "src/runtime/verdict_cache.h"
#include "src/sanitizer/instrument.h"

namespace bpf {

namespace {

// Deterministic packet/context filler.
uint8_t SeedByte(uint64_t seed, uint32_t i) {
  uint64_t x = seed + i * 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  return static_cast<uint8_t>(x >> 32);
}

}  // namespace

int Bpf::MapCreate(const MapDef& def) {
  if (kernel_.ShouldInjectFault(FaultPoint::kMapCreate)) {
    return -ENOMEM;
  }
  const int id = kernel_.maps().Create(def, kernel_.bugs().bug9_bucket_iteration);
  if (id < 0) {
    return id;
  }
  Map* map = kernel_.maps().Find(id);
  const uint64_t obj = kernel_.arena().Alloc(64, "struct bpf_map");
  if (obj == 0) {
    return -ENOMEM;
  }
  map->set_obj_addr(obj);
  return id;
}

int Bpf::MapUpdateElem(int map_fd, const void* key, const void* value) {
  Map* map = kernel_.maps().Find(map_fd);
  if (map == nullptr) {
    return -EBADF;
  }
  if (kernel_.ShouldInjectFault(FaultPoint::kMapUpdate)) {
    return -ENOMEM;  // element allocation failed
  }
  return map->Update(key, value);
}

int Bpf::MapLookupElem(int map_fd, const void* key, void* value_out) {
  Map* map = kernel_.maps().Find(map_fd);
  if (map == nullptr) {
    return -EBADF;
  }
  const uint64_t addr = map->Lookup(key);
  if (addr == 0) {
    return -ENOENT;
  }
  if (!kernel_.arena().CopyOut(addr, value_out, map->value_size())) {
    return -EFAULT;
  }
  return 0;
}

int Bpf::MapDeleteElem(int map_fd, const void* key) {
  Map* map = kernel_.maps().Find(map_fd);
  return map != nullptr ? map->Delete(key) : -EBADF;
}

int Bpf::MapGetNextKey(int map_fd, const void* key, void* next_key) {
  Map* map = kernel_.maps().Find(map_fd);
  return map != nullptr ? map->GetNextKey(key, next_key) : -EBADF;
}

int Bpf::MapLookupBatch(int map_fd, int max_count) {
  Map* map = kernel_.maps().Find(map_fd);
  auto* htab = dynamic_cast<HashMap*>(map);
  if (htab == nullptr) {
    return -EINVAL;
  }
  std::vector<std::vector<uint8_t>> values;
  return htab->LookupBatch(&values, max_count);
}

void Bpf::set_exec_engine(ExecEngine engine) {
  if (engine == ExecEngine::kJit && !JitAvailable()) {
    // Graceful degradation: warn once per process, then behave exactly like
    // --interp=decoded (same digests, same findings — only throughput differs).
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "bvf: jit tier unavailable on this host; "
                   "falling back to --interp=decoded\n");
    }
    engine = ExecEngine::kDecoded;
  }
  engine_ = engine;
}

int Bpf::ProgLoad(const Program& prog, VerifierResult* result_out) {
  VerifierEnv env;
  env.maps = &kernel_.maps();
  env.btf = &kernel_.btf();
  env.version = kernel_.version();
  env.bugs = kernel_.bugs();
  env.map_obj_addr = [this](int map_id) {
    Map* map = kernel_.maps().Find(map_id);
    return map != nullptr ? map->obj_addr() : 0ull;
  };
  env.btf_obj_addr = [this](int btf_id) { return kernel_.BtfObjAddr(btf_id); };
  env.instrument = instrument_;
  env.collect_state_claims = static_cast<bool>(exec_observer_);

  // Verdict cache: VerifyProgram is effect-free on the kernel substrate (its
  // env exposes no allocator or report sink), so a committed digest match can
  // reuse the stored result wholesale. The sanitizer-stat delta the original
  // verification produced is replayed; verifier branch coverage needs no
  // replay because a hit implies the same program was verified in an earlier
  // sync epoch, so its sites are already in the committed global set.
  // The decode and JIT caches share the verdict digest: identical key implies
  // the same verifier output, hence the same rewritten program and aux, hence
  // the same lowering and the same machine code — so one key computation
  // serves all three caches.
  const bool want_decode = engine_ != ExecEngine::kLegacy;
  const bool want_decode_cache = want_decode && decode_cache_ != nullptr;
  const bool want_jit = engine_ == ExecEngine::kJit && JitAvailable();
  const bool want_jit_cache = want_jit && jit_cache_ != nullptr;
  VerdictKey key{};
  if (verdict_cache_ != nullptr || want_decode_cache || want_jit_cache) {
    key = MakeVerdictKey(prog, kernel_, static_cast<bool>(instrument_),
                         env.collect_state_claims);
  }

  VerifierResult result;
  if (verdict_cache_ != nullptr) {
    if (const CachedVerdict* cached = verdict_cache_->Lookup(key)) {
      result = cached->result;
      if (cache_sanitizer_ != nullptr) {
        cache_sanitizer_->Credit(cached->san_delta);
      }
    } else {
      // Canonical level: alpha-equivalent spellings (register renames, nop
      // padding, jump relayout, const rematerialization — the DESIGN.md §11
      // transform classes) share one canonical digest. Only committed
      // REJECTIONS are served: a rejection returns below before any substrate
      // effect, its sanitizer delta is zero by construction (instrumentation
      // runs after DoCheck passes), and its verdict is spelling-invariant —
      // which is not true of an acceptance's rewritten program.
      const CachedVerdict* canon = nullptr;
      VerdictKey canon_key{};
      if (canonicalize_) {
        canon_key = MakeVerdictKey(canonicalize_(prog), kernel_,
                                   static_cast<bool>(instrument_),
                                   env.collect_state_claims);
        canon = verdict_cache_->LookupCanonical(canon_key);
      }
      if (canon != nullptr) {
        result = canon->result;
        // Promote to the raw level so textual repeats of this spelling skip
        // canonicalization in later epochs.
        verdict_cache_->Insert(key, CachedVerdict{result, canon->san_delta});
        if (cache_sanitizer_ != nullptr) {
          cache_sanitizer_->Credit(canon->san_delta);
        }
      } else {
        const bvf::SanitizerStats before =
            cache_sanitizer_ != nullptr ? cache_sanitizer_->stats() : bvf::SanitizerStats{};
        result = VerifyProgram(prog, env);
        CachedVerdict fresh;
        fresh.result = result;
        if (cache_sanitizer_ != nullptr) {
          fresh.san_delta = cache_sanitizer_->stats().Since(before);
        }
        if (canonicalize_ && result.err != 0) {
          verdict_cache_->InsertCanonical(canon_key, fresh);
        }
        verdict_cache_->Insert(key, std::move(fresh));
      }
    }
  } else {
    result = VerifyProgram(prog, env);
  }
  const int err = result.err;
  if (result_out != nullptr) {
    *result_out = result;
  }
  if (err != 0) {
    return err;
  }

  // Duplicate the rewritten ("xlated") instructions for later readback by
  // user space. Bug #8: this used kmemdup(); sanitation inflates programs
  // past KMALLOC_MAX, and the unchecked failure trips a WARN. The fix is
  // kvmemdup() (the paper's upstreamed primitive).
  const size_t xlated_bytes = result.prog.insns.size() * kInsnWireSize;
  std::vector<uint8_t> wire(xlated_bytes, 0);
  uint64_t dup = 0;
  if (kernel_.bugs().bug8_kmemdup) {
    dup = kernel_.alloc().Kmemdup(wire.data(), xlated_bytes, "xlated_insns");
    if (dup == 0) {
      kernel_.reports().Report(
          ReportKind::kWarn, "bpf_prog_load",
          "kmemdup of " + std::to_string(xlated_bytes) + " xlated bytes failed");
    }
  } else {
    dup = kernel_.alloc().Kvmemdup(wire.data(), xlated_bytes, "xlated_insns");
  }
  if (dup != 0) {
    kernel_.alloc().Kfree(dup);
  }

  auto loaded = std::make_unique<LoadedProgram>();
  loaded->id = next_prog_fd_++;
  loaded->type = prog.type;
  loaded->prog = std::move(result.prog);
  loaded->aux = std::move(result.aux);
  loaded->offloaded = prog.offload_requested;
  loaded->uses_lock_helper = result.uses_lock_helper;
  loaded->uses_printk_helper = result.uses_printk_helper;
  loaded->uses_signal_helper = result.uses_signal_helper;
  loaded->uses_irqwork_helper = result.uses_irqwork_helper;
  if (want_decode) {
    if (want_decode_cache) {
      loaded->decoded = decode_cache_->Lookup(key);
      if (loaded->decoded == nullptr) {
        std::shared_ptr<const DecodedProgram> fresh =
            DecodeProgram(loaded->prog, loaded->aux);
        loaded->decoded = fresh;
        decode_cache_->Insert(key, std::move(fresh));
      }
    } else {
      loaded->decoded = DecodeProgram(loaded->prog, loaded->aux);
    }
  }
  if (want_jit) {
    if (want_jit_cache) {
      loaded->jit = jit_cache_->Lookup(key);
      if (loaded->jit == nullptr) {
        std::shared_ptr<const JitProgram> fresh = CompileJit(*loaded->decoded);
        if (fresh != nullptr) {
          loaded->jit = fresh;
          jit_cache_->Insert(key, std::move(fresh));
        }
        // Compile failure (code mapping refused mid-run) is not cached: the
        // program simply runs on the decoded engine.
      }
    } else {
      loaded->jit = CompileJit(*loaded->decoded);
    }
  }
  const int fd = loaded->id;
  progs_.push_back(std::move(loaded));
  return fd;
}

LoadedProgram* Bpf::FindProg(int prog_fd) {
  for (const auto& prog : progs_) {
    if (prog->id == prog_fd) {
      return prog.get();
    }
  }
  return nullptr;
}

ExecContext Bpf::MakeCtx(const LoadedProgram& prog, uint32_t pkt_len, uint64_t seed) {
  ExecContext ctx;
  KasanArena& arena = kernel_.arena();
  const CtxDescriptor& desc = CtxDescriptorFor(prog.type);

  ctx.ctx_addr = arena.Alloc(desc.size, "bpf_ctx");
  ctx.stack_base = arena.Alloc(kStackSize + kExtendedStackSize, "bpf_prog_stack");
  ctx.fp = ctx.stack_base + kExtendedStackSize + kStackSize;

  uint8_t* ctx_host = arena.HostPtr(ctx.ctx_addr, desc.size);
  if (ctx_host == nullptr) {
    return ctx;
  }
  std::memset(ctx_host, 0, desc.size);

  switch (prog.type) {
    case ProgType::kSocketFilter:
    case ProgType::kXdp: {
      pkt_len = pkt_len == 0 ? 1 : pkt_len;
      ctx.pkt_addr = arena.Alloc(pkt_len, "pkt_data");
      ctx.pkt_len = pkt_len;
      uint8_t* pkt = arena.HostPtr(ctx.pkt_addr, pkt_len);
      for (uint32_t i = 0; i < pkt_len && pkt != nullptr; ++i) {
        pkt[i] = SeedByte(seed, i);
      }
      const uint64_t data = ctx.pkt_addr;
      const uint64_t data_end = ctx.pkt_addr + pkt_len;
      if (prog.type == ProgType::kSocketFilter) {
        std::memcpy(ctx_host + 0, &pkt_len, 4);   // len
        std::memcpy(ctx_host + 32, &data, 8);     // data
        std::memcpy(ctx_host + 40, &data_end, 8); // data_end
      } else {
        std::memcpy(ctx_host + 0, &data, 8);
        std::memcpy(ctx_host + 8, &data_end, 8);
        std::memcpy(ctx_host + 16, &data, 8);     // data_meta == data (no meta)
      }
      break;
    }
    case ProgType::kKprobe:
    case ProgType::kTracepoint: {
      for (int off = 0; off + 8 <= desc.size; off += 8) {
        uint64_t v = 0;
        for (int b = 0; b < 8; ++b) {
          v |= static_cast<uint64_t>(SeedByte(seed, off + b)) << (b * 8);
        }
        std::memcpy(ctx_host + off, &v, 8);
      }
      break;
    }
  }
  return ctx;
}

void Bpf::ReleaseCtx(ExecContext& ctx) {
  KasanArena& arena = kernel_.arena();
  if (ctx.ctx_addr != 0) {
    arena.Free(ctx.ctx_addr);
  }
  if (ctx.stack_base != 0) {
    arena.Free(ctx.stack_base);
  }
  if (ctx.pkt_addr != 0) {
    arena.Free(ctx.pkt_addr);
  }
}

ExecResult Bpf::RunProgram(const LoadedProgram& prog, uint32_t pkt_len, uint64_t seed,
                           bool in_tracepoint, bool in_irq, TracepointId attach_point) {
  ExecContext ctx = MakeCtx(prog, pkt_len, seed);
  // Under memory pressure (arena budget guard, fault injection) the context
  // or stack allocation can fail; a real kernel returns -ENOMEM from the
  // test-run path rather than entering the program with NULL pointers.
  if (ctx.ctx_addr == 0 || ctx.stack_base == 0 || (ctx.pkt_len != 0 && ctx.pkt_addr == 0)) {
    ReleaseCtx(ctx);
    ExecResult result;
    result.err = -ENOMEM;
    result.abort_reason = "execution context allocation failed";
    return result;
  }
  ctx.in_tracepoint = in_tracepoint;
  ctx.in_irq = in_irq;
  ctx.attach_point = attach_point;
  // The trace is per-invocation (a helper can fire a tracepoint that runs
  // another program, nesting RunProgram), so it lives on this stack frame.
  WitnessTrace trace;
  if (exec_observer_) {
    ctx.witness = &trace;
  }
  ExecResult result = interp_.Run(prog, ctx, exec_limits_);
  if (exec_observer_) {
    exec_observer_(prog, trace);
  }
  ReleaseCtx(ctx);
  return result;
}

ExecResult Bpf::ProgTestRun(int prog_fd, uint32_t pkt_len, uint64_t seed) {
  LoadedProgram* prog = FindProg(prog_fd);
  if (prog == nullptr) {
    ExecResult result;
    result.err = -EBADF;
    return result;
  }
  ExecResult result = RunProgram(*prog, pkt_len, seed, /*in_tracepoint=*/false,
                                 /*in_irq=*/false, TracepointId::kSysEnter);
  // The test-run harness force-releases anything a crashed program held.
  kernel_.lockdep().Reset();
  return result;
}

ExecResult Bpf::ProgTestRunCtx(int prog_fd, const std::vector<uint8_t>& ctx_bytes,
                               uint64_t seed) {
  LoadedProgram* prog = FindProg(prog_fd);
  if (prog == nullptr) {
    ExecResult result;
    result.err = -EBADF;
    return result;
  }
  ExecContext ctx = MakeCtx(*prog, /*pkt_len=*/64, seed);
  if (ctx.ctx_addr == 0 || ctx.stack_base == 0 || (ctx.pkt_len != 0 && ctx.pkt_addr == 0)) {
    ReleaseCtx(ctx);
    ExecResult result;
    result.err = -ENOMEM;
    result.abort_reason = "execution context allocation failed";
    return result;
  }
  const CtxDescriptor& desc = CtxDescriptorFor(prog->type);
  uint8_t* ctx_host = kernel_.arena().HostPtr(ctx.ctx_addr, desc.size);
  if (ctx_host != nullptr) {
    std::memset(ctx_host, 0, desc.size);
    if (!ctx_bytes.empty()) {
      std::memcpy(ctx_host, ctx_bytes.data(),
                  std::min<size_t>(ctx_bytes.size(), static_cast<size_t>(desc.size)));
    }
  }
  WitnessTrace trace;
  if (exec_observer_) {
    ctx.witness = &trace;
  }
  ExecResult result = interp_.Run(*prog, ctx, exec_limits_);
  if (exec_observer_) {
    exec_observer_(*prog, trace);
  }
  ReleaseCtx(ctx);
  kernel_.lockdep().Reset();
  return result;
}

ExecResult Bpf::ProgTestRunRepeat(int prog_fd, int repeat, uint32_t pkt_len, uint64_t seed) {
  LoadedProgram* prog = FindProg(prog_fd);
  ExecResult result;
  if (prog == nullptr) {
    result.err = -EBADF;
    return result;
  }
  ExecContext ctx = MakeCtx(*prog, pkt_len, seed);
  if (ctx.ctx_addr == 0 || ctx.stack_base == 0 || (ctx.pkt_len != 0 && ctx.pkt_addr == 0)) {
    ReleaseCtx(ctx);
    result.err = -ENOMEM;
    result.abort_reason = "execution context allocation failed";
    return result;
  }
  WitnessTrace trace;
  uint64_t total_insns = 0;
  for (int run = 0; run < repeat; ++run) {
    if (exec_observer_) {
      trace.Clear();
      ctx.witness = &trace;
    }
    ExecResult one = interp_.Run(*prog, ctx, exec_limits_);
    if (exec_observer_) {
      exec_observer_(*prog, trace);
    }
    total_insns += one.insns_executed;
    const bool stop = run == repeat - 1 || one.err != 0;
    if (stop) {
      result = std::move(one);
      result.insns_executed = total_insns;
      break;
    }
  }
  ReleaseCtx(ctx);
  kernel_.lockdep().Reset();
  return result;
}

int Bpf::ProgAttach(int prog_fd, TracepointId target) {
  LoadedProgram* prog = FindProg(prog_fd);
  if (prog == nullptr) {
    return -EBADF;
  }
  if (prog->type != ProgType::kKprobe && prog->type != ProgType::kTracepoint) {
    return -EINVAL;
  }

  // Attach-time policy. The absence of these two checks is Table 2 bugs
  // #4 and #5: programs re-entering the very path they are attached to.
  if (target == TracepointId::kTracePrintk && prog->uses_printk_helper &&
      !kernel_.bugs().bug4_trace_printk_recursion) {
    return -EINVAL;
  }
  if (target == TracepointId::kContentionBegin && prog->uses_lock_helper &&
      !kernel_.bugs().bug5_contention_begin) {
    return -EINVAL;
  }

  const bool irq_context =
      target == TracepointId::kContentionBegin || target == TracepointId::kTracePrintk;
  const int prog_id = prog->id;
  kernel_.tracepoints().Attach(target, [this, prog_id, target, irq_context]() {
    LoadedProgram* attached = FindProg(prog_id);
    if (attached == nullptr) {
      return;
    }
    RunProgram(*attached, 64, static_cast<uint64_t>(prog_id), /*in_tracepoint=*/true,
               irq_context, target);
  });
  return 0;
}

void Bpf::DetachAll() { kernel_.tracepoints().DetachAll(); }

void Bpf::FireEvent(TracepointId id) {
  switch (id) {
    case TracepointId::kSchedSwitch:
      // Scheduler tracepoints run under the runqueue lock.
      kernel_.lockdep().Acquire(kernel_.lock_rq(), LockContext::kNormal);
      kernel_.tracepoints().Fire(id);
      kernel_.lockdep().Release(kernel_.lock_rq());
      break;
    case TracepointId::kTracePrintk:
      kernel_.lockdep().Acquire(kernel_.lock_trace_printk(), LockContext::kNormal);
      kernel_.tracepoints().Fire(id);
      kernel_.lockdep().Release(kernel_.lock_trace_printk());
      break;
    default:
      kernel_.tracepoints().Fire(id);
      break;
  }
  kernel_.lockdep().Reset();
}

int Bpf::XdpInstall(int prog_fd) {
  LoadedProgram* prog = FindProg(prog_fd);
  if (prog == nullptr) {
    return -EBADF;
  }
  if (prog->type != ProgType::kXdp) {
    return -EINVAL;
  }
  if (prog->offloaded && !kernel_.bugs().bug11_xdp_offload) {
    // Fixed kernels refuse to install a device-bound program on the generic
    // (host) dispatcher.
    return -EINVAL;
  }
  if (kernel_.bugs().bug7_dispatcher_sync) {
    // Bug #7: the dispatcher image is swapped without waiting for in-flight
    // executions; the next run can observe the torn (NULL) entry.
    xdp_update_window_ = true;
  }
  xdp_prog_fd_ = prog_fd;
  return 0;
}

ExecResult Bpf::XdpRun(uint32_t pkt_len, uint64_t seed) {
  ExecResult result;
  if (xdp_prog_fd_ == 0) {
    result.err = -ENOENT;
    return result;
  }
  if (xdp_update_window_) {
    xdp_update_window_ = false;
    kernel_.reports().Report(ReportKind::kKasanNullDeref, "bpf_dispatcher_xdp_func",
                             "execution raced with dispatcher update");
    result.err = -EFAULT;
    return result;
  }
  LoadedProgram* prog = FindProg(xdp_prog_fd_);
  if (prog == nullptr) {
    result.err = -ENOENT;
    return result;
  }
  if (prog->offloaded) {
    // Bug #11 reached: a program bound to a device executes on the host.
    kernel_.reports().Report(ReportKind::kWarn, "xdp_do_generic",
                             "device-offloaded program executed on host path");
  }
  return RunProgram(*prog, pkt_len, seed, /*in_tracepoint=*/false, /*in_irq=*/false,
                    TracepointId::kSysEnter);
}

}  // namespace bpf
