// Bounded-exhaustive soundness audit of the tnum operators
// (src/verifier/tnum.h): for every pair of 8-bit tnums (6561 of them) and
// every pair of concrete member values, the abstract result must contain the
// concrete result. This is the Indicator #3 methodology applied to the
// verifier's bitwise domain in isolation -- a mutation of tnum.cc that drops
// or weakens a carry/borrow term is caught here without any fuzzing.
//
// 8-bit operands embedded in 64-bit tnums keep the check exhaustive yet fast
// (~2-3s per binary operator single-threaded); shifts additionally embed the
// operand at the top byte (<<56) so truncation at bit 63 is exercised.

#ifndef SRC_ANALYSIS_TNUM_AUDIT_H_
#define SRC_ANALYSIS_TNUM_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/verifier/tnum.h"

namespace bvf {

enum class TnumOp {
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kMul,
  kLshift,
  kRshift,
  kArshift,
  kIntersect,  // audited as: result must contain values in BOTH inputs
  kUnion,      // audited as: result must contain values in EITHER input
};

const char* TnumOpName(TnumOp op);

struct TnumViolation {
  TnumOp op;
  bpf::Tnum a, b;       // abstract inputs
  uint64_t x = 0, y = 0;  // concrete witnesses (members of a / b)
  bpf::Tnum result;     // unsound abstract result
  uint64_t concrete = 0;  // x op y, not contained in result
  std::string ToString() const;
};

struct TnumAuditResult {
  uint64_t checked = 0;  // concrete (x, y) pairs exercised
  std::vector<TnumViolation> violations;  // capped at 16 per op
  bool ok() const { return violations.empty(); }
};

// Audits one operator over all 8-bit tnum pairs. For commutative ops
// (add/and/or/xor/mul/intersect/union) only ordered pairs i <= j are checked.
TnumAuditResult AuditTnumOp(TnumOp op);

// Runs every operator; returns the merged result.
TnumAuditResult AuditAllTnumOps();

}  // namespace bvf

#endif  // SRC_ANALYSIS_TNUM_AUDIT_H_
