// Explicit control-flow graph over eBPF bytecode: basic blocks, successor
// edges across conditional/unconditional jumps and exits, bpf-to-bpf call
// edges, and subprogram boundaries. Unlike the verifier's on-the-fly DFS
// (Checker::CheckCfg), the graph is materialized so generic dataflow passes
// (src/analysis/dataflow.h) and lints can run over it -- including on
// not-yet-verified programs, so construction is robust to out-of-range jump
// targets (the edge is dropped, never followed).

#ifndef SRC_ANALYSIS_CFG_H_
#define SRC_ANALYSIS_CFG_H_

#include <string>
#include <vector>

#include "src/ebpf/program.h"

namespace bvf {

struct BasicBlock {
  int first = 0;  // index of the first instruction
  int last = 0;   // index of the last instruction (ld_imm64: its low slot)
  std::vector<int> succs;  // successor block ids (intraprocedural)
  std::vector<int> preds;
  // Callee entry block for a bpf-to-bpf call ending this block (-1 if none).
  // Kept separate from succs so dataflow stays intraprocedural.
  int call_target = -1;
  int subprog = 0;  // subprogram index (0 = main)
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  // Instruction index -> block id; the high slot of a ld_imm64 maps to the
  // same block as its low slot.
  std::vector<int> block_of;
  // Entry instruction of each subprogram; subprog_entry[0] == 0 (main).
  std::vector<int> subprog_entry;

  int BlockAt(int insn) const {
    return insn >= 0 && insn < static_cast<int>(block_of.size()) ? block_of[insn] : -1;
  }
  bool IsEntryBlock(int block) const;

  // Block ids reachable from the main entry, following successor and call
  // edges (mirrors the verifier's reachability notion).
  std::vector<bool> ReachableBlocks() const;

  std::string ToString(const bpf::Program& prog) const;
};

Cfg BuildCfg(const bpf::Program& prog);

}  // namespace bvf

#endif  // SRC_ANALYSIS_CFG_H_
