#include "src/analysis/reaching_defs.h"

#include "src/analysis/dataflow.h"
#include "src/analysis/liveness.h"

namespace bvf {

namespace {

using bpf::Insn;
using bpf::kNumProgRegs;

struct DefUniverse {
  std::vector<Def> defs;
  // Per instruction: ids of the defs it generates.
  std::vector<std::vector<int>> insn_defs;
  // Per subprogram: ids of its synthetic entry defs.
  std::vector<std::vector<int>> entry_defs;
  // Per register: bitset (over def ids) of every def of that register.
  std::vector<std::vector<uint64_t>> kill;
  int words = 0;

  void SetBit(std::vector<uint64_t>& bits, int id) const {
    bits[id / 64] |= uint64_t{1} << (id % 64);
  }
};

DefUniverse BuildUniverse(const bpf::Program& prog, const Cfg& cfg) {
  DefUniverse u;
  const int n = static_cast<int>(prog.insns.size());
  u.insn_defs.resize(n);
  u.entry_defs.resize(cfg.subprog_entry.size());

  for (size_t sp = 0; sp < cfg.subprog_entry.size(); ++sp) {
    for (int r = 0; r < kNumProgRegs; ++r) {
      Def d;
      d.reg = r;
      if (sp == 0) {
        d.uninit = !(r == bpf::kR1 || r == bpf::kR10);
      } else {
        d.uninit = !((r >= bpf::kR1 && r <= bpf::kR5) || r == bpf::kR10);
      }
      u.entry_defs[sp].push_back(static_cast<int>(u.defs.size()));
      u.defs.push_back(d);
    }
  }

  for (int i = 0; i < n; ++i) {
    if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;  // data slot
    const Insn& insn = prog.insns[i];
    const RegMask mask = InsnDefMask(insn);
    for (int r = 0; r < kNumProgRegs; ++r) {
      if (!(mask & RegBit(r))) continue;
      Def d;
      d.insn = i;
      d.reg = r;
      // A call's R1-R5 writes are clobbers, not values the program may read.
      d.uninit = insn.IsCall() && r != bpf::kR0;
      u.insn_defs[i].push_back(static_cast<int>(u.defs.size()));
      u.defs.push_back(d);
    }
  }

  const int ndefs = static_cast<int>(u.defs.size());
  u.words = (ndefs + 63) / 64;
  u.kill.assign(kNumProgRegs, std::vector<uint64_t>(u.words, 0));
  for (int id = 0; id < ndefs; ++id) u.SetBit(u.kill[u.defs[id].reg], id);
  return u;
}

struct ReachingDomain {
  using Value = std::vector<uint64_t>;
  static constexpr bool kForward = true;

  const bpf::Program* prog;
  const DefUniverse* u;

  Value Boundary() const { return Value(u->words, 0); }
  Value Init() const { return Value(u->words, 0); }
  bool Join(Value& into, const Value& from) const {
    bool changed = false;
    for (int w = 0; w < u->words; ++w) {
      const uint64_t merged = into[w] | from[w];
      changed |= merged != into[w];
      into[w] = merged;
    }
    return changed;
  }
  Value Transfer(const Cfg& cfg, int block, const Value& in) const {
    Value v = in;
    const BasicBlock& bb = cfg.blocks[block];
    // Synthetic entry defs are generated (without killing -- a loop back to
    // the entry legitimately carries real defs) at the top of entry blocks.
    if (cfg.IsEntryBlock(block)) {
      const int sp = bb.subprog;
      for (int id : u->entry_defs[sp]) u->SetBit(v, id);
    }
    for (int i = bb.first; i <= bb.last; ++i) {
      if (i > 0 && prog->insns[i - 1].IsLdImm64()) continue;
      for (int id : u->insn_defs[i]) {
        const std::vector<uint64_t>& kill = u->kill[u->defs[id].reg];
        for (int w = 0; w < u->words; ++w) v[w] &= ~kill[w];
        u->SetBit(v, id);
      }
    }
    return v;
  }
};

}  // namespace

bool ReachingDefs::UninitReaches(int insn, int reg) const {
  if (insn < 0 || insn >= num_insns_) return false;
  for (size_t id = 0; id < defs_.size(); ++id) {
    if (defs_[id].reg == reg && defs_[id].uninit &&
        Bit(insn, static_cast<int>(id))) {
      return true;
    }
  }
  return false;
}

std::vector<int> ReachingDefs::DefsReaching(int insn, int reg) const {
  std::vector<int> ids;
  if (insn < 0 || insn >= num_insns_) return ids;
  for (size_t id = 0; id < defs_.size(); ++id) {
    if (defs_[id].reg == reg && Bit(insn, static_cast<int>(id))) {
      ids.push_back(static_cast<int>(id));
    }
  }
  return ids;
}

ReachingDefs ComputeReachingDefs(const bpf::Program& prog, const Cfg& cfg) {
  ReachingDefs res;
  const int n = static_cast<int>(prog.insns.size());
  res.num_insns_ = n;
  if (n == 0 || cfg.blocks.empty()) return res;

  DefUniverse u = BuildUniverse(prog, cfg);
  ReachingDomain domain{&prog, &u};
  DataflowResult<ReachingDomain> solved = Solve(cfg, domain);

  res.defs_ = u.defs;
  res.words_ = u.words;
  res.in_.assign(static_cast<size_t>(n) * u.words, 0);

  // Re-walk each block to materialize per-instruction in-sets.
  for (int b = 0; b < static_cast<int>(cfg.blocks.size()); ++b) {
    const BasicBlock& bb = cfg.blocks[b];
    std::vector<uint64_t> v = solved.in[b];
    if (cfg.IsEntryBlock(b)) {
      for (int id : u.entry_defs[bb.subprog]) u.SetBit(v, id);
    }
    for (int i = bb.first; i <= bb.last; ++i) {
      if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;
      for (int w = 0; w < u.words; ++w) res.in_[i * u.words + w] = v[w];
      if (prog.insns[i].IsLdImm64() && i + 1 < n) {
        for (int w = 0; w < u.words; ++w) {
          res.in_[(i + 1) * u.words + w] = v[w];
        }
      }
      for (int id : u.insn_defs[i]) {
        const std::vector<uint64_t>& kill = u.kill[u.defs[id].reg];
        for (int w = 0; w < u.words; ++w) v[w] &= ~kill[w];
        u.SetBit(v, id);
      }
    }
  }
  return res;
}

}  // namespace bvf
