#include "src/analysis/cfg.h"

#include <algorithm>
#include <cstdio>

namespace bvf {

namespace {

using bpf::Insn;
using bpf::kClassJmp;
using bpf::kJmpJa;

// True if |insn| ends a basic block: any jump-class instruction (conditional,
// unconditional, exit) or a call (helper, kfunc, or bpf-to-bpf -- calls end
// blocks so the call edge has a well-defined site).
bool IsTerminator(const Insn& insn) { return insn.IsJmp(); }

// Branch target of a jump instruction, or -1 if it has none (exit, calls,
// jmp32-class JA which this ISA subset never emits).
int JumpTarget(const Insn& insn, int idx) {
  const uint8_t op = insn.JmpOp();
  if (insn.IsExit() || insn.IsCall()) return -1;
  if (op == kJmpJa && insn.Class() != kClassJmp) return -1;
  return idx + 1 + insn.off;
}

bool IsUnconditional(const Insn& insn) {
  return insn.Class() == kClassJmp && insn.JmpOp() == kJmpJa;
}

}  // namespace

bool Cfg::IsEntryBlock(int block) const {
  if (block < 0 || block >= static_cast<int>(blocks.size())) return false;
  const int first = blocks[block].first;
  return std::find(subprog_entry.begin(), subprog_entry.end(), first) !=
         subprog_entry.end();
}

std::vector<bool> Cfg::ReachableBlocks() const {
  std::vector<bool> reached(blocks.size(), false);
  if (blocks.empty()) return reached;
  std::vector<int> stack;
  const int entry = BlockAt(0);
  if (entry >= 0) {
    reached[entry] = true;
    stack.push_back(entry);
  }
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    auto visit = [&](int s) {
      if (s >= 0 && s < static_cast<int>(blocks.size()) && !reached[s]) {
        reached[s] = true;
        stack.push_back(s);
      }
    };
    for (int s : blocks[b].succs) visit(s);
    visit(blocks[b].call_target);
  }
  return reached;
}

Cfg BuildCfg(const bpf::Program& prog) {
  Cfg cfg;
  const int n = static_cast<int>(prog.insns.size());
  if (n == 0) return cfg;

  // High slots of ld_imm64 pairs are data, not instructions: they never start
  // a block and are never valid jump targets.
  std::vector<bool> is_hi(n, false);
  for (int i = 0; i < n; ++i) {
    if (prog.insns[i].IsLdImm64() && i + 1 < n) {
      is_hi[i + 1] = true;
      ++i;
    }
  }

  auto valid_target = [&](int t) { return t >= 0 && t < n && !is_hi[t]; };

  // Pass 1: leaders. Instruction 0, every valid jump/call target, and the
  // instruction following any terminator.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  std::vector<int> entries = {0};
  for (int i = 0; i < n; ++i) {
    if (is_hi[i]) continue;
    const Insn& insn = prog.insns[i];
    if (!IsTerminator(insn)) continue;
    if (i + 1 < n && !is_hi[i + 1]) leader[i + 1] = true;
    const int target = JumpTarget(insn, i);
    if (target >= 0 && valid_target(target)) leader[target] = true;
    if (insn.IsBpfToBpfCall()) {
      const int callee = i + 1 + insn.imm;
      if (valid_target(callee)) {
        leader[callee] = true;
        if (std::find(entries.begin(), entries.end(), callee) == entries.end()) {
          entries.push_back(callee);
        }
      }
    }
  }

  // Pass 2: carve blocks and fill block_of. A block runs from its leader to
  // the instruction before the next leader, or through its terminator. For a
  // ld_imm64 pair `last` names the low slot; the data slot maps to the same
  // block but never starts or ends one.
  cfg.block_of.assign(n, -1);
  for (int i = 0; i < n;) {
    const int id = static_cast<int>(cfg.blocks.size());
    BasicBlock bb;
    bb.first = i;
    int j = i;
    while (true) {
      cfg.block_of[j] = id;
      int end = j;  // last slot occupied by this logical instruction
      if (prog.insns[j].IsLdImm64() && j + 1 < n && is_hi[j + 1]) {
        cfg.block_of[j + 1] = id;
        end = j + 1;
      }
      if (IsTerminator(prog.insns[j]) || end + 1 >= n || leader[end + 1]) {
        bb.last = j;
        i = end + 1;
        break;
      }
      j = end + 1;
    }
    cfg.blocks.push_back(bb);
  }

  // Pass 3: edges. Fall-through, branch targets, and call targets; edges to
  // invalid targets are dropped rather than followed.
  for (int id = 0; id < static_cast<int>(cfg.blocks.size()); ++id) {
    BasicBlock& bb = cfg.blocks[id];
    const int term = bb.last;
    const Insn& tinsn = prog.insns[term];
    // First slot after the block (skipping a trailing ld_imm64 data slot).
    const int next = term + (tinsn.IsLdImm64() ? 2 : 1);
    auto add_succ = [&](int target_insn) {
      if (!valid_target(target_insn)) return;
      const int s = cfg.block_of[target_insn];
      if (s < 0) return;
      if (std::find(bb.succs.begin(), bb.succs.end(), s) == bb.succs.end()) {
        bb.succs.push_back(s);
      }
    };
    if (!IsTerminator(tinsn)) {
      add_succ(next);  // straight-line block split by a leader: falls through
      continue;
    }
    if (tinsn.IsExit()) continue;
    if (tinsn.IsCall()) {
      add_succ(next);  // returns to the continuation
      if (tinsn.IsBpfToBpfCall()) {
        const int callee = term + 1 + tinsn.imm;
        if (valid_target(callee)) bb.call_target = cfg.block_of[callee];
      }
      continue;
    }
    const int target = JumpTarget(tinsn, term);
    if (target >= 0) add_succ(target);
    if (!IsUnconditional(tinsn)) add_succ(next);
  }

  // Pass 4: preds + subprogram assignment. Subprograms are contiguous insn
  // ranges starting at their entries (kernel layout), so sort the entries and
  // bucket blocks by first-instruction position.
  for (int id = 0; id < static_cast<int>(cfg.blocks.size()); ++id) {
    for (int s : cfg.blocks[id].succs) cfg.blocks[s].preds.push_back(id);
  }
  std::sort(entries.begin(), entries.end());
  cfg.subprog_entry = entries;
  for (BasicBlock& bb : cfg.blocks) {
    auto it = std::upper_bound(entries.begin(), entries.end(), bb.first);
    bb.subprog = static_cast<int>(it - entries.begin()) - 1;
  }
  // Drop successor edges that cross a subprogram boundary (a jump into
  // another subprogram is structurally invalid; keep the graph well-formed).
  for (BasicBlock& bb : cfg.blocks) {
    auto bad = [&](int s) { return cfg.blocks[s].subprog != bb.subprog; };
    for (int s : bb.succs) {
      if (bad(s)) {
        auto& preds = cfg.blocks[s].preds;
        preds.erase(std::remove(preds.begin(), preds.end(),
                                cfg.block_of[bb.first]),
                    preds.end());
      }
    }
    bb.succs.erase(std::remove_if(bb.succs.begin(), bb.succs.end(), bad),
                   bb.succs.end());
  }
  return cfg;
}

std::string Cfg::ToString(const bpf::Program& prog) const {
  std::string out;
  char buf[128];
  const std::vector<bool> reached = ReachableBlocks();
  for (int id = 0; id < static_cast<int>(blocks.size()); ++id) {
    const BasicBlock& bb = blocks[id];
    snprintf(buf, sizeof(buf), "bb%d [insn %d..%d, subprog %d%s]:\n", id,
             bb.first, bb.last, bb.subprog,
             reached[id] ? "" : ", unreachable");
    out += buf;
    for (int i = bb.first; i <= bb.last && i < static_cast<int>(prog.insns.size());
         ++i) {
      snprintf(buf, sizeof(buf), "  %4d: ", i);
      out += buf;
      out += Disassemble(prog.insns[i]);
      out += '\n';
      if (prog.insns[i].IsLdImm64()) ++i;
    }
    out += "  ->";
    if (bb.succs.empty()) out += " (none)";
    for (int s : bb.succs) {
      snprintf(buf, sizeof(buf), " bb%d", s);
      out += buf;
    }
    if (bb.call_target >= 0) {
      snprintf(buf, sizeof(buf), ", calls bb%d", bb.call_target);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace bvf
