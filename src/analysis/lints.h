// Bytecode lints built on the CFG + dataflow passes. Used two ways:
//   - the structured generator filters out programs the verifier will
//     certainly reject (unreachable code, uninitialized register reads),
//     so fuzzing budget is not wasted on guaranteed -EINVAL loads;
//   - the repro/analysis tooling prints them alongside the CFG.
// Dead stack stores are informational only: the verifier accepts them, but
// they dilute generated programs.

#ifndef SRC_ANALYSIS_LINTS_H_
#define SRC_ANALYSIS_LINTS_H_

#include <string>
#include <vector>

#include "src/ebpf/program.h"

namespace bvf {

enum class LintKind {
  kUnreachableBlock,  // code the verifier's CFG check rejects
  kUninitRead,        // read of a register no init definition reaches
  kDeadStackStore,    // stack slot written but never read before overwrite/exit
};

const char* LintKindName(LintKind kind);

struct Lint {
  LintKind kind;
  int insn = 0;  // anchor instruction index
  int reg = -1;  // offending register (kUninitRead), else -1
  std::string message;
};

struct LintReport {
  std::vector<Lint> lints;

  // True if any lint predicts certain verifier rejection (unreachable code or
  // an uninitialized read on every path).
  bool CertainReject() const;
  std::string ToString() const;
};

LintReport LintProgram(const bpf::Program& prog);

}  // namespace bvf

#endif  // SRC_ANALYSIS_LINTS_H_
