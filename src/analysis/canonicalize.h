// Program canonicalization for the canonical verdict-cache level.
//
// Canonicalize() maps alpha-equivalent programs — programs related by the
// verdict-preserving metamorphic transforms of DESIGN.md §11 (register
// renaming, dead init-header writes, nop padding, jump relayout, ALU
// identities, constant rematerialization) — to one shared representative, so
// a PROG_LOAD verdict computed for any member of the equivalence class can be
// served to every other member from the cache.
//
// Every rewrite below is deliberately narrower than the transform it inverts:
// a strip fires only where the construction site guarantees the rewrite
// cannot change the verifier's verdict (e.g. an ALU identity is removed only
// when its operand is a known constant from an immediately preceding
// const-write and no jump lands on the identity itself; a leading nop/dead
// write is removed only when entry is its sole predecessor). Programs the
// passes do not recognize simply canonicalize to themselves — missing a
// rewrite costs a cache miss, never a wrong verdict.
//
// Ill-formed programs (failing bpf::CheckEncoding) are returned unchanged:
// both a malformed program and its malformed variants then take the same
// fresh-verification path, so the guard is consistent across an equivalence
// class.

#ifndef SRC_ANALYSIS_CANONICALIZE_H_
#define SRC_ANALYSIS_CANONICALIZE_H_

#include "src/ebpf/program.h"

namespace bvf {

// Options controlling which rewrites are sound under the armed bug set.
struct CanonicalizeOptions {
  // Folding `ld_imm64 rX, v` (with v == sext32(lo32)) into `mov64 rX, imm`
  // is verdict-preserving only when the verifier treats both constant
  // materializations identically. Table 2 bug #13 (ld_imm64 pessimization)
  // breaks exactly that symmetry, so callers must clear this when
  // bug13_ld_imm64_pessimize is armed.
  bool fold_ld_imm64 = true;
};

// Returns the canonical representative of |prog|'s equivalence class.
// Deterministic and idempotent: Canonicalize(Canonicalize(p)) ==
// Canonicalize(p). The input is never mutated.
bpf::Program Canonicalize(const bpf::Program& prog, const CanonicalizeOptions& options);

}  // namespace bvf

#endif  // SRC_ANALYSIS_CANONICALIZE_H_
