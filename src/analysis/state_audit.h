// Indicator #3: abstract-state soundness auditing (witness containment).
//
// The verifier's safety argument rests on its abstract state
// over-approximating every concrete execution: at each instruction, the
// claimed [smin,smax]/[umin,umax] ranges and var_off tnum for a scalar
// register must contain the value the register actually holds when execution
// reaches that instruction. The interpreter records per-instruction register
// witnesses (WitnessTrace); this module replays them against the claims the
// verifier exported during DoCheck (InsnAux::claims) and files any
// containment miss as a kStateAuditViolation kernel report.
//
// Unlike indicators #1/#2, this catches bounds-tracking bugs that never
// reach an out-of-bounds access -- e.g. a branch refinement that corrupts
// s32_min is visible the moment a concrete run lands outside the claimed
// range, even if the corrupted register is never used as a pointer offset.

#ifndef SRC_ANALYSIS_STATE_AUDIT_H_
#define SRC_ANALYSIS_STATE_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernel/report.h"
#include "src/runtime/exec_context.h"

namespace bvf {

struct StateViolation {
  int pc = 0;
  int reg = 0;
  // Name of the first violated claim field ("smin", "umax", "var_off", ...).
  const char* field = "";
  uint64_t witness = 0;  // concrete register value
  std::string details;   // claim vs witness, human-readable
};

// Checks every trace entry against the program's per-instruction claims.
// Entries at instructions without valid claims (unverified registers,
// non-scalar types on some path) are skipped.
std::vector<StateViolation> AuditWitnessTrace(const bpf::LoadedProgram& prog,
                                              const bpf::WitnessTrace& trace);

// Files violations into |sink| as kStateAuditViolation reports. Titles are
// stable per violated field ("bpf_state_audit: smin violation") so campaign
// dedup collapses repeats of the same corruption shape.
void FileStateAuditReports(const std::vector<StateViolation>& violations,
                           const bpf::LoadedProgram& prog,
                           bpf::ReportSink& sink);

// Convenience: audit one trace and report. The shape expected by
// Bpf::set_exec_observer.
void AuditAndReport(const bpf::LoadedProgram& prog,
                    const bpf::WitnessTrace& trace, bpf::ReportSink& sink);

}  // namespace bvf

#endif  // SRC_ANALYSIS_STATE_AUDIT_H_
