#include "src/analysis/lints.h"

#include <cstdio>

#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/liveness.h"
#include "src/analysis/reaching_defs.h"

namespace bvf {

namespace {

using namespace bpf;  // opcode constants

// Register-use mask for the uninit-read lint. Unlike liveness, calls
// contribute nothing: how many of R1-R5 a helper actually reads depends on
// its prototype (and for bpf-to-bpf calls on the callee), which the lint
// deliberately does not resolve -- over-reporting there would make the
// generator filter out valid programs.
RegMask LintUseMask(const Insn& insn) {
  if (insn.IsCall()) return 0;
  return InsnUseMask(insn);
}

// ---- dead stack store detection ----

// Stack slot (8-byte granularity) touched by a R10-relative access, or -1.
int StackSlotOf(int16_t off) {
  if (off < -kStackSize || off >= 0) return -1;
  return (off + kStackSize) / 8;
}

// True if R10 is used other than as the base of a direct load/store: copied,
// offset into another register, stored as a value, compared... Once the frame
// pointer escapes, helpers and pointer arithmetic can read any slot, so the
// dead-store analysis gives up (all slots live).
bool FramePointerEscapes(const bpf::Program& prog) {
  for (size_t i = 0; i < prog.insns.size(); ++i) {
    if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;
    const Insn& insn = prog.insns[i];
    if (!(InsnUseMask(insn) & RegBit(kR10))) continue;
    const bool base_load = insn.IsMemLoad() && insn.src == kR10;
    // Store/atomic with R10 as the address base is fine unless the *value*
    // being stored is R10 itself (a register-stx with src == R10).
    const bool base_store = (insn.IsMemStore() || insn.IsAtomic()) &&
                            insn.dst == kR10 &&
                            !(insn.Class() == kClassStx && insn.src == kR10);
    if (!base_load && !base_store) return true;
  }
  return false;
}

struct StackLiveDomain {
  using Value = uint64_t;  // bit s = stack slot s may be read later
  static constexpr bool kForward = false;

  const bpf::Program* prog;

  Value Boundary() const { return 0; }
  Value Init() const { return 0; }
  bool Join(Value& into, const Value& from) const {
    const Value merged = into | from;
    const bool changed = merged != into;
    into = merged;
    return changed;
  }
  Value Transfer(const Cfg& cfg, int block, const Value& in) const {
    Value live = in;
    const BasicBlock& bb = cfg.blocks[block];
    for (int i = bb.last; i >= bb.first; --i) {
      if (i > 0 && prog->insns[i - 1].IsLdImm64()) continue;
      live = Step(prog->insns[i], live, nullptr);
    }
    return live;
  }

  // One backward step; reports a dead store through |dead| when non-null.
  static Value Step(const Insn& insn, Value live, bool* dead) {
    if (insn.IsMemLoad() && insn.src == kR10) {
      const int lo = StackSlotOf(insn.off);
      const int hi = StackSlotOf(static_cast<int16_t>(insn.off + insn.AccessBytes() - 1));
      for (int s = lo; s <= hi; ++s) {
        if (s >= 0) live |= uint64_t{1} << s;
      }
      return live;
    }
    if ((insn.IsMemStore() || insn.IsAtomic()) && insn.dst == kR10) {
      const int slot = StackSlotOf(insn.off);
      if (slot < 0) return live;
      if (insn.IsAtomic()) {  // atomics read the slot too
        live |= uint64_t{1} << slot;
        return live;
      }
      if (dead != nullptr) *dead = !(live & (uint64_t{1} << slot));
      // Only a full-width aligned store kills the slot.
      if (insn.AccessBytes() == 8 && insn.off % 8 == 0) {
        live &= ~(uint64_t{1} << slot);
      }
      return live;
    }
    return live;
  }
};

}  // namespace

const char* LintKindName(LintKind kind) {
  switch (kind) {
    case LintKind::kUnreachableBlock:
      return "unreachable-block";
    case LintKind::kUninitRead:
      return "uninit-read";
    case LintKind::kDeadStackStore:
      return "dead-stack-store";
  }
  return "unknown";
}

bool LintReport::CertainReject() const {
  for (const Lint& lint : lints) {
    if (lint.kind == LintKind::kUnreachableBlock ||
        lint.kind == LintKind::kUninitRead) {
      return true;
    }
  }
  return false;
}

std::string LintReport::ToString() const {
  std::string out;
  char buf[64];
  for (const Lint& lint : lints) {
    snprintf(buf, sizeof(buf), "[%s] insn %d: ", LintKindName(lint.kind), lint.insn);
    out += buf;
    out += lint.message;
    out += '\n';
  }
  return out;
}

LintReport LintProgram(const bpf::Program& prog) {
  LintReport report;
  if (prog.insns.empty()) return report;
  const Cfg cfg = BuildCfg(prog);

  // 1. Unreachable blocks: the verifier's CFG check rejects these outright.
  const std::vector<bool> reached = cfg.ReachableBlocks();
  for (int b = 0; b < static_cast<int>(cfg.blocks.size()); ++b) {
    if (reached[b]) continue;
    Lint lint;
    lint.kind = LintKind::kUnreachableBlock;
    lint.insn = cfg.blocks[b].first;
    char buf[96];
    snprintf(buf, sizeof(buf), "bb%d (insn %d..%d) is unreachable from entry",
             b, cfg.blocks[b].first, cfg.blocks[b].last);
    lint.message = buf;
    report.lints.push_back(lint);
  }

  // 2. Uninitialized register reads on reachable instructions.
  const ReachingDefs rd = ComputeReachingDefs(prog, cfg);
  for (size_t i = 0; i < prog.insns.size(); ++i) {
    if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;
    const int b = cfg.BlockAt(static_cast<int>(i));
    if (b < 0 || !reached[b]) continue;
    const RegMask uses = LintUseMask(prog.insns[i]);
    for (int r = 0; r < kNumProgRegs; ++r) {
      if (!(uses & RegBit(r))) continue;
      if (!rd.UninitReaches(static_cast<int>(i), r)) continue;
      Lint lint;
      lint.kind = LintKind::kUninitRead;
      lint.insn = static_cast<int>(i);
      lint.reg = r;
      char buf[96];
      snprintf(buf, sizeof(buf), "R%d may be read uninitialized", r);
      lint.message = buf;
      report.lints.push_back(lint);
    }
  }

  // 3. Dead stack stores (informational), only when the frame pointer never
  // escapes into another register or memory.
  if (!FramePointerEscapes(prog)) {
    StackLiveDomain domain{&prog};
    DataflowResult<StackLiveDomain> solved = Solve(cfg, domain);
    for (int b = 0; b < static_cast<int>(cfg.blocks.size()); ++b) {
      if (!reached[b]) continue;
      uint64_t live = solved.in[b];
      const BasicBlock& bb = cfg.blocks[b];
      for (int i = bb.last; i >= bb.first; --i) {
        if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;
        bool dead = false;
        live = StackLiveDomain::Step(prog.insns[i], live, &dead);
        if (!dead) continue;
        Lint lint;
        lint.kind = LintKind::kDeadStackStore;
        lint.insn = i;
        char buf[96];
        snprintf(buf, sizeof(buf), "store to fp%+d is never read", prog.insns[i].off);
        lint.message = buf;
        report.lints.push_back(lint);
      }
    }
  }
  return report;
}

}  // namespace bvf
