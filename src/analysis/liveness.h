// Backward liveness over R0..R10, per instruction, on top of the generic
// dataflow engine. Register sets are uint16_t bitmasks (bit r = register r).

#ifndef SRC_ANALYSIS_LIVENESS_H_
#define SRC_ANALYSIS_LIVENESS_H_

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"

namespace bvf {

using RegMask = uint16_t;

inline constexpr RegMask RegBit(int r) { return static_cast<RegMask>(1u << r); }

// Registers read by |insn| (for calls: the argument registers R1-R5; for
// exit: R0, the return value the caller observes).
RegMask InsnUseMask(const bpf::Insn& insn);

// Registers written by |insn| (for calls: R0 plus the clobbered R1-R5).
RegMask InsnDefMask(const bpf::Insn& insn);

struct LivenessResult {
  // Per instruction index: registers live immediately before / after it. The
  // high slot of a ld_imm64 pair mirrors its low slot.
  std::vector<RegMask> live_in;
  std::vector<RegMask> live_out;
};

LivenessResult ComputeLiveness(const bpf::Program& prog, const Cfg& cfg);

}  // namespace bvf

#endif  // SRC_ANALYSIS_LIVENESS_H_
