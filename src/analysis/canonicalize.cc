#include "src/analysis/canonicalize.h"

#include <array>
#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/liveness.h"
#include "src/analysis/patch.h"

namespace bvf {

namespace {

using bpf::Insn;

bool IsLdImm64Hi(const bpf::Program& prog, size_t idx) {
  return idx > 0 && prog.insns[idx - 1].IsLdImm64();
}

bool IsBranch(const Insn& insn) {
  return insn.IsJmp() && insn.JmpOp() != bpf::kJmpCall && insn.JmpOp() != bpf::kJmpExit;
}

// Instruction indices some branch jumps to. Out-of-range targets cannot occur
// here (the caller pre-validates with CheckEncoding).
std::vector<uint8_t> JumpTargets(const bpf::Program& prog) {
  std::vector<uint8_t> targeted(prog.insns.size(), 0);
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    const Insn& insn = prog.insns[p];
    if (IsBranch(insn)) {
      targeted[static_cast<size_t>(insn.JumpTargetPc(static_cast<int>(p)))] = 1;
    }
  }
  return targeted;
}

bool IsMov64Imm(const Insn& insn) {
  return insn.opcode == (bpf::kClassAlu64 | bpf::kAluMov | bpf::kSrcK);
}

bool IsMov32Imm(const Insn& insn) {
  return insn.opcode == (bpf::kClassAlu | bpf::kAluMov | bpf::kSrcK);
}

// `ja +0` falls through to the instruction a jump onto it would reach anyway,
// so removal (which re-links jumps-to-it onto its successor) is exact. This
// inverts both kNopPad's ja-flavor and kJumpRelayout's landing pad.
bool StripJaZero(bpf::Program& prog) {
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    const Insn& insn = prog.insns[p];
    if (insn.Class() == bpf::kClassJmp && insn.JmpOp() == bpf::kJmpJa &&
        insn.off == 0) {
      RemoveInsnPatched(prog, p);
      return true;
    }
  }
  return false;
}

// `r1 = r1` at entry is the identity on the always-initialized context
// register — but only when entry is its sole predecessor. With a jump landing
// on index 0, the mov would also execute mid-program, where r1 may have been
// clobbered by a call and the extra read changes (or creates) the verifier's
// rejection; such programs canonicalize to themselves.
bool StripLeadingCtxMov(bpf::Program& prog) {
  if (prog.insns.empty()) {
    return false;
  }
  const Insn& first = prog.insns[0];
  const bool is_ctx_mov =
      first.opcode == (bpf::kClassAlu64 | bpf::kAluMov | bpf::kSrcX) &&
      first.dst == bpf::kR1 && first.src == bpf::kR1 && first.off == 0 &&
      first.imm == 0;
  if (!is_ctx_mov || prog.insns.size() < 2) {
    return false;
  }
  if (JumpTargets(prog)[0] != 0) {
    return false;
  }
  RemoveInsnPatched(prog, 0);
  return true;
}

// A 64-bit ALU identity (`rX op= 0` for op in {add,sub,or,xor,lsh,rsh,arsh})
// is exactly removable when rX is a known scalar constant — guaranteed when
// the instruction is fall-through-only (not a jump target) and immediately
// preceded by a const-write to the same register. Without the const-write
// guard the strip would be unsound: `rPtr += 0` is pointer arithmetic the
// verifier tracks, and or/xor/shift on a pointer is an outright rejection.
bool StripConstAluIdentity(bpf::Program& prog) {
  const std::vector<uint8_t> targeted = JumpTargets(prog);
  for (size_t p = 1; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p) || targeted[p] != 0) {
      continue;
    }
    const Insn& insn = prog.insns[p];
    if (insn.Class() != bpf::kClassAlu64 || insn.SrcIsReg() || insn.imm != 0 ||
        insn.off != 0) {
      continue;
    }
    const uint8_t op = insn.AluOp();
    const bool identity_op = op == bpf::kAluAdd || op == bpf::kAluSub ||
                             op == bpf::kAluOr || op == bpf::kAluXor ||
                             op == bpf::kAluLsh || op == bpf::kAluRsh ||
                             op == bpf::kAluArsh;
    if (!identity_op) {
      continue;
    }
    // The immediately preceding instruction must leave insn.dst holding a
    // known scalar constant: mov-imm of either width, or a plain (src == 0,
    // i.e. non-pseudo) ld_imm64 whose high slot directly precedes |p|.
    const Insn& prev = prog.insns[p - 1];
    bool const_before = false;
    if (!IsLdImm64Hi(prog, p - 1)) {
      const_before = (IsMov64Imm(prev) || IsMov32Imm(prev)) && prev.dst == insn.dst;
    } else if (p >= 2) {
      const Insn& lo = prog.insns[p - 2];
      const_before = lo.src == 0 && lo.dst == insn.dst;
    }
    if (!const_before) {
      continue;
    }
    RemoveInsnPatched(prog, p);
    return true;
  }
  return false;
}

// Inverts kDeadCodeInsert: a leading const-write (mov64-imm or plain
// ld_imm64) to a register the rest of the program never reads is removable
// when entry is the instruction's sole predecessor. The jump-target guard
// matters beyond semantics: re-executing a const-write on a back edge pins
// the register to one known value at the loop header, which perturbs the
// verifier's state-equality bookkeeping; stripping it could flip an
// infinite-loop verdict. Fall-through-only leading writes have no such
// effect.
bool StripLeadingDeadConstWrite(bpf::Program& prog) {
  if (prog.insns.size() < 2) {
    return false;
  }
  const Insn& first = prog.insns[0];
  const bool mov_imm = IsMov64Imm(first) && first.off == 0;
  const bool ld_imm64 = first.IsLdImm64() && first.src == 0;
  if ((!mov_imm && !ld_imm64) || first.dst == bpf::kR1 || first.dst > bpf::kR9) {
    return false;
  }
  const size_t width = ld_imm64 ? 2 : 1;
  if (prog.insns.size() < width + 1) {
    return false;
  }
  const std::vector<uint8_t> targeted = JumpTargets(prog);
  for (size_t p = 0; p < width; ++p) {
    if (targeted[p] != 0) {
      return false;
    }
  }
  const Cfg cfg = BuildCfg(prog);
  const LivenessResult liveness = ComputeLiveness(prog, cfg);
  if (liveness.live_out.empty() ||
      (liveness.live_out[0] & RegBit(first.dst)) != 0) {
    return false;
  }
  RemoveInsnPatched(prog, 0);
  return true;
}

// Inverts kConstRemat: a plain ld_imm64 whose 64-bit value is the sign
// extension of its low word materializes the same constant `mov64 rX, imm`
// would, so (absent bug #13, which breaks that symmetry) the two spellings
// are verdict-equivalent. The high slot must not be a jump target: a jump
// into the middle of a ld_imm64 pair is its own verifier error, which the
// fold would erase.
bool FoldLdImm64(bpf::Program& prog) {
  const std::vector<uint8_t> targeted = JumpTargets(prog);
  for (size_t p = 0; p + 1 < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    const Insn& insn = prog.insns[p];
    if (!insn.IsLdImm64() || insn.src != 0 || targeted[p + 1] != 0) {
      continue;
    }
    const uint64_t value =
        static_cast<uint32_t>(insn.imm) |
        (static_cast<uint64_t>(static_cast<uint32_t>(prog.insns[p + 1].imm)) << 32);
    if (static_cast<uint64_t>(static_cast<int64_t>(insn.imm)) != value) {
      continue;
    }
    const uint8_t dst = insn.dst;
    const int32_t imm = insn.imm;
    prog.insns[p] = bpf::MovImm(dst, imm);
    RemoveInsnPatched(prog, p + 1);
    return true;
  }
  return false;
}

// Inverts kRegRename: renumber the callee-saved scratch registers r6-r9 in
// first-appearance order (dst before src, program order, ld_imm64 high slots
// skipped). The verifier is symmetric in r6-r9, so any uniform permutation —
// this one included — is verdict-preserving; picking the first-appearance
// one makes every member of a rename orbit land on the same spelling.
bool CanonicalRegRename(bpf::Program& prog) {
  std::array<uint8_t, 16> perm{};
  std::array<bool, 16> assigned{};
  for (uint8_t r = 0; r < perm.size(); ++r) {
    perm[r] = r;
  }
  uint8_t next = bpf::kR6;
  auto visit = [&](uint8_t reg) {
    if (reg >= bpf::kR6 && reg <= bpf::kR9 && !assigned[reg]) {
      assigned[reg] = true;
      perm[reg] = next++;
    }
  };
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    visit(prog.insns[p].dst);
    visit(prog.insns[p].src);
  }
  // Unreferenced scratch registers take the remaining slots in order.
  for (uint8_t r = bpf::kR6; r <= bpf::kR9; ++r) {
    if (!assigned[r]) {
      perm[r] = next++;
    }
  }
  if (perm[bpf::kR6] == bpf::kR6 && perm[bpf::kR7] == bpf::kR7 &&
      perm[bpf::kR8] == bpf::kR8 && perm[bpf::kR9] == bpf::kR9) {
    return false;
  }
  for (size_t p = 0; p < prog.insns.size(); ++p) {
    if (IsLdImm64Hi(prog, p)) {
      continue;
    }
    prog.insns[p].dst = perm[prog.insns[p].dst];
    prog.insns[p].src = perm[prog.insns[p].src];
  }
  return true;
}

}  // namespace

bpf::Program Canonicalize(const bpf::Program& prog, const CanonicalizeOptions& options) {
  bpf::Program canon = prog;
  if (bpf::CheckEncoding(canon, nullptr) != 0) {
    return canon;  // ill-formed: canonicalizes to itself
  }
  // Strip passes to fixpoint (each removal can expose another site — e.g. a
  // folded ld_imm64 becomes the const-write guarding an ALU identity), then
  // one register renumbering. Every strip shrinks the program, so the loop
  // terminates.
  bool changed = true;
  while (changed) {
    changed = StripJaZero(canon);
    changed = StripLeadingCtxMov(canon) || changed;
    changed = StripConstAluIdentity(canon) || changed;
    changed = StripLeadingDeadConstWrite(canon) || changed;
    if (options.fold_ld_imm64) {
      changed = FoldLdImm64(canon) || changed;
    }
  }
  CanonicalRegRename(canon);
  return canon;
}

}  // namespace bvf
