#include "src/analysis/state_audit.h"

#include <cstdio>
#include <set>
#include <string>

#include "src/ebpf/insn.h"
#include "src/verifier/verifier.h"

namespace bvf {

namespace {

// First claim field the witness value violates, or nullptr if contained.
// Checked 64-bit domain first, then the 32-bit subregister domain, then the
// bitwise domain -- the order only affects which stable title a multi-field
// miss files under.
const char* ViolatedField(const bpf::RegClaim& claim, uint64_t w) {
  const int64_t sw = static_cast<int64_t>(w);
  if (sw < claim.smin) return "smin";
  if (sw > claim.smax) return "smax";
  if (w < claim.umin) return "umin";
  if (w > claim.umax) return "umax";
  const uint32_t w32 = static_cast<uint32_t>(w);
  const int32_t sw32 = static_cast<int32_t>(w32);
  if (sw32 < claim.s32_min) return "s32_min";
  if (sw32 > claim.s32_max) return "s32_max";
  if (w32 < claim.u32_min) return "u32_min";
  if (w32 > claim.u32_max) return "u32_max";
  if (!claim.var_off.Contains(w)) return "var_off";
  return nullptr;
}

}  // namespace

std::vector<StateViolation> AuditWitnessTrace(const bpf::LoadedProgram& prog,
                                              const bpf::WitnessTrace& trace) {
  std::vector<StateViolation> violations;
  // One violation per (pc, reg, field) per trace keeps repeat executions of
  // a corrupted loop body from flooding the result.
  std::set<std::tuple<int, int, const char*>> seen;
  for (const bpf::WitnessTrace::Entry& entry : trace.entries) {
    const int pc = entry.pc;
    if (pc < 0 || pc >= static_cast<int>(prog.aux.size())) continue;
    const std::vector<bpf::RegClaim>& claims = prog.aux[pc].claims;
    for (int r = 0; r < static_cast<int>(claims.size()); ++r) {
      const bpf::RegClaim& claim = claims[r];
      if (!claim.valid()) continue;
      const uint64_t w = entry.regs[r];
      const char* field = ViolatedField(claim, w);
      if (field == nullptr) continue;
      if (!seen.insert({pc, r, field}).second) continue;
      StateViolation v;
      v.pc = pc;
      v.reg = r;
      v.field = field;
      v.witness = w;
      char buf[192];
      snprintf(buf, sizeof(buf),
               "insn %d R%d: witness 0x%llx (%lld) violates %s of claim ", pc,
               r, static_cast<unsigned long long>(w),
               static_cast<long long>(w), field);
      v.details = buf;
      v.details += claim.ToString();
      if (pc < static_cast<int>(prog.prog.insns.size())) {
        v.details += "\n  at: ";
        v.details += bpf::Disassemble(prog.prog.insns[pc]);
      }
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

void FileStateAuditReports(const std::vector<StateViolation>& violations,
                           const bpf::LoadedProgram& prog,
                           bpf::ReportSink& sink) {
  // One report per violated field per audit: the field is the triage-relevant
  // shape, and per-field titles keep campaign dedup bounded.
  std::set<std::string> filed;
  for (const StateViolation& v : violations) {
    std::string title = std::string("bpf_state_audit: ") + v.field + " violation";
    if (!filed.insert(title).second) continue;
    char hdr[64];
    snprintf(hdr, sizeof(hdr), "prog %d: ", prog.id);
    sink.Report(bpf::ReportKind::kStateAuditViolation, std::move(title),
                hdr + v.details);
  }
}

void AuditAndReport(const bpf::LoadedProgram& prog,
                    const bpf::WitnessTrace& trace, bpf::ReportSink& sink) {
  const std::vector<StateViolation> violations = AuditWitnessTrace(prog, trace);
  if (!violations.empty()) FileStateAuditReports(violations, prog, sink);
}

}  // namespace bvf
