#include "src/analysis/patch.h"

#include <cstdint>

namespace bvf {

using bpf::Insn;

void InsertInsnPatched(bpf::Program& prog, size_t pos, const Insn& insn) {
  auto& insns = prog.insns;
  insns.insert(insns.begin() + static_cast<long>(pos), insn);
  // Positions map as f(x) = x >= pos ? x + 1 : x. For a pre-insertion jump
  // at i_pre targeting t_pre = i_pre + 1 + delta, the new delta is
  // f(t_pre) - (f(i_pre) + 1).
  const int64_t p = static_cast<int64_t>(pos);
  auto shifted = [p](int64_t x) { return x >= p ? x + 1 : x; };
  for (size_t j = 0; j < insns.size(); ++j) {
    if (j == pos) {
      continue;  // the inserted instruction itself
    }
    Insn& cur = insns[j];
    const bool is_branch =
        cur.IsJmp() && cur.JmpOp() != bpf::kJmpCall && cur.JmpOp() != bpf::kJmpExit;
    const bool is_pseudo_call = cur.IsBpfToBpfCall();
    if (!is_branch && !is_pseudo_call) {
      continue;
    }
    const int64_t i_pre = static_cast<int64_t>(j) > p ? static_cast<int64_t>(j) - 1
                                                      : static_cast<int64_t>(j);
    const int64_t delta = is_branch ? cur.off : cur.imm;
    const int64_t t_pre = i_pre + 1 + delta;
    const int64_t new_delta = shifted(t_pre) - (static_cast<int64_t>(j) + 1);
    if (is_branch) {
      cur.off = static_cast<int16_t>(new_delta);
    } else {
      cur.imm = static_cast<int32_t>(new_delta);
    }
  }
}

void RemoveInsnPatched(bpf::Program& prog, size_t pos) {
  auto& insns = prog.insns;
  size_t width = 1;
  if (insns[pos].IsLdImm64()) {
    width = 2;  // both slots go
  }
  insns.erase(insns.begin() + static_cast<long>(pos),
              insns.begin() + static_cast<long>(pos + width));
  // Positions map as f(x) = x > pos ? x - width : x (a jump *to* the removed
  // instruction lands on its successor, which now sits at pos).
  const int64_t p = static_cast<int64_t>(pos);
  const int64_t w = static_cast<int64_t>(width);
  auto shifted = [p, w](int64_t x) { return x > p ? x - w : x; };
  for (size_t j = 0; j < insns.size(); ++j) {
    Insn& cur = insns[j];
    const bool is_branch =
        cur.IsJmp() && cur.JmpOp() != bpf::kJmpCall && cur.JmpOp() != bpf::kJmpExit;
    const bool is_pseudo_call = cur.IsBpfToBpfCall();
    if (!is_branch && !is_pseudo_call) {
      continue;
    }
    const int64_t i_pre = static_cast<int64_t>(j) >= p ? static_cast<int64_t>(j) + w
                                                       : static_cast<int64_t>(j);
    const int64_t delta = is_branch ? cur.off : cur.imm;
    int64_t t_pre = i_pre + 1 + delta;
    if (t_pre > p && t_pre < p + w) {
      t_pre = p + w;  // targeted a ld_imm64 high slot: fall to the successor
    }
    const int64_t new_delta = shifted(t_pre) - (static_cast<int64_t>(j) + 1);
    if (is_branch) {
      cur.off = static_cast<int16_t>(new_delta);
    } else {
      cur.imm = static_cast<int32_t>(new_delta);
    }
  }
}

}  // namespace bvf
