#include "src/analysis/liveness.h"

#include "src/analysis/dataflow.h"

namespace bvf {

namespace {

using namespace bpf;  // opcode constants

// Argument/caller-saved register masks for calls. All call flavors (helper,
// kfunc, bpf-to-bpf) share the eBPF calling convention: R1-R5 carry
// arguments and are clobbered, R0 receives the result, R6-R9 survive.
constexpr RegMask kCallUses =
    RegBit(kR1) | RegBit(kR2) | RegBit(kR3) | RegBit(kR4) | RegBit(kR5);
constexpr RegMask kCallDefs = kCallUses | RegBit(kR0);

}  // namespace

RegMask InsnUseMask(const Insn& insn) {
  const uint8_t cls = insn.Class();
  switch (cls) {
    case kClassAlu:
    case kClassAlu64: {
      const uint8_t op = insn.AluOp();
      RegMask uses = 0;
      // MOV overwrites dst without reading it; everything else is read-modify.
      if (op != kAluMov) uses |= RegBit(insn.dst);
      if (insn.SrcIsReg() && op != kAluNeg && op != kAluEnd) {
        uses |= RegBit(insn.src);
      }
      return uses;
    }
    case kClassLd:
      return 0;  // ld_imm64 (and its data slot): no register inputs
    case kClassLdx:
      return RegBit(insn.src);
    case kClassSt:
      return RegBit(insn.dst);
    case kClassStx: {
      RegMask uses = RegBit(insn.dst) | RegBit(insn.src);
      if (insn.IsAtomic() && insn.imm == kAtomicCmpXchg) uses |= RegBit(kR0);
      return uses;
    }
    case kClassJmp:
    case kClassJmp32: {
      if (insn.IsCall()) return kCallUses;
      if (insn.IsExit()) return RegBit(kR0);
      if (insn.JmpOp() == kJmpJa) return 0;
      RegMask uses = RegBit(insn.dst);
      if (insn.SrcIsReg()) uses |= RegBit(insn.src);
      return uses;
    }
  }
  return 0;
}

RegMask InsnDefMask(const Insn& insn) {
  const uint8_t cls = insn.Class();
  switch (cls) {
    case kClassAlu:
    case kClassAlu64:
      return RegBit(insn.dst);
    case kClassLd:
      return insn.IsLdImm64() ? RegBit(insn.dst) : 0;
    case kClassLdx:
      return RegBit(insn.dst);
    case kClassSt:
      return 0;
    case kClassStx:
      if (insn.IsAtomic()) {
        if (insn.imm == kAtomicCmpXchg) return RegBit(kR0);
        if (insn.imm & kAtomicFetch) return RegBit(insn.src);  // incl. xchg
      }
      return 0;
    case kClassJmp:
    case kClassJmp32:
      if (insn.IsCall()) return kCallDefs;
      return 0;
  }
  return 0;
}

namespace {

struct LivenessDomain {
  using Value = RegMask;
  static constexpr bool kForward = false;

  const bpf::Program* prog;
  const Cfg* cfg;

  Value Boundary() const { return 0; }  // nothing live after exit
  Value Init() const { return 0; }
  bool Join(Value& into, const Value& from) const {
    const Value merged = into | from;
    const bool changed = merged != into;
    into = merged;
    return changed;
  }
  // Backward: |in| is the live set at block exit; walk instructions in
  // reverse applying live = (live & ~def) | use.
  Value Transfer(const Cfg& c, int block, const Value& in) const {
    Value live = in;
    const BasicBlock& bb = c.blocks[block];
    for (int i = bb.last; i >= bb.first; --i) {
      if (i > 0 && prog->insns[i - 1].IsLdImm64()) continue;  // data slot
      const bpf::Insn& insn = prog->insns[i];
      live = static_cast<Value>((live & ~InsnDefMask(insn)) | InsnUseMask(insn));
    }
    return live;
  }
};

}  // namespace

LivenessResult ComputeLiveness(const bpf::Program& prog, const Cfg& cfg) {
  LivenessDomain domain{&prog, &cfg};
  DataflowResult<LivenessDomain> solved = Solve(cfg, domain);

  LivenessResult res;
  const int n = static_cast<int>(prog.insns.size());
  res.live_in.assign(n, 0);
  res.live_out.assign(n, 0);
  for (int b = 0; b < static_cast<int>(cfg.blocks.size()); ++b) {
    const BasicBlock& bb = cfg.blocks[b];
    RegMask live = solved.in[b];  // live at block exit (backward pass)
    for (int i = bb.last; i >= bb.first; --i) {
      if (i > 0 && prog.insns[i - 1].IsLdImm64()) continue;
      const bpf::Insn& insn = prog.insns[i];
      res.live_out[i] = live;
      live = static_cast<RegMask>((live & ~InsnDefMask(insn)) | InsnUseMask(insn));
      res.live_in[i] = live;
      if (insn.IsLdImm64() && i + 1 < n) {
        res.live_in[i + 1] = res.live_in[i];
        res.live_out[i + 1] = res.live_out[i];
      }
    }
  }
  return res;
}

}  // namespace bvf
