// Forward reaching-definitions over R0..R10 with explicit "uninitialized"
// definitions, so a use reached by an uninit def is a definite bug candidate
// (the uninit-read lint, src/analysis/lints.h).
//
// The def universe holds one real def per (instruction, register) write plus
// synthetic entry defs per subprogram:
//   - main entry: R1 (context pointer) and R10 (frame pointer) initialized,
//     R0 and R2-R9 uninitialized;
//   - other subprogram entries: R1-R5 (arguments) and R10 initialized,
//     R0 and R6-R9 uninitialized (callee-saved regs belong to the caller's
//     frame and must be treated as garbage intraprocedurally).
// Helper/kfunc/bpf-to-bpf calls add uninit defs for the clobbered R1-R5 and a
// real def for R0.

#ifndef SRC_ANALYSIS_REACHING_DEFS_H_
#define SRC_ANALYSIS_REACHING_DEFS_H_

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"

namespace bvf {

struct Def {
  int insn = -1;  // defining instruction index, or -1 for an entry def
  int reg = 0;
  bool uninit = false;  // the value is garbage (entry junk or call clobber)
};

class ReachingDefs {
 public:
  const std::vector<Def>& defs() const { return defs_; }

  // True if any definition of |reg| reaching |insn| (just before it executes)
  // is an uninitialized one.
  bool UninitReaches(int insn, int reg) const;

  // Ids (indices into defs()) of the definitions of |reg| reaching |insn|.
  std::vector<int> DefsReaching(int insn, int reg) const;

 private:
  friend ReachingDefs ComputeReachingDefs(const bpf::Program& prog,
                                          const Cfg& cfg);

  bool Bit(int insn, int def_id) const {
    return (in_[insn * words_ + def_id / 64] >> (def_id % 64)) & 1;
  }

  std::vector<Def> defs_;
  std::vector<uint64_t> in_;  // per-insn reaching set, words_ words each
  int words_ = 0;
  int num_insns_ = 0;
};

ReachingDefs ComputeReachingDefs(const bpf::Program& prog, const Cfg& cfg);

}  // namespace bvf

#endif  // SRC_ANALYSIS_REACHING_DEFS_H_
