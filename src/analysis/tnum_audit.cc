#include "src/analysis/tnum_audit.h"

#include <cstdio>

namespace bvf {

namespace {

using bpf::Tnum;

constexpr int kViolationCap = 16;

// All well-formed 8-bit tnums (value and mask disjoint): 3^8 = 6561, each
// with its explicit member list (submask enumeration).
struct Universe {
  std::vector<Tnum> tnums;
  std::vector<std::vector<uint64_t>> members;
};

const Universe& GetUniverse() {
  static const Universe u = [] {
    Universe univ;
    for (uint64_t m = 0; m < 256; ++m) {
      for (uint64_t v = 0; v < 256; ++v) {
        if (v & m) continue;
        univ.tnums.push_back(Tnum{v, m});
        std::vector<uint64_t> mem;
        uint64_t s = m;
        for (;;) {
          mem.push_back(v | s);
          if (s == 0) break;
          s = (s - 1) & m;
        }
        univ.members.push_back(std::move(mem));
      }
    }
    return univ;
  }();
  return u;
}

void AddViolation(TnumAuditResult& res, TnumOp op, Tnum a, Tnum b, uint64_t x,
                  uint64_t y, Tnum result, uint64_t concrete) {
  if (res.violations.size() >= kViolationCap) return;
  res.violations.push_back(TnumViolation{op, a, b, x, y, result, concrete});
}

// Exhaustive binary-op audit: for every tnum pair and every concrete member
// pair, abstract(a, b) must contain concrete(x, y). The inner loop uses a
// residual accumulator -- `(z & ~mask) ^ value` is zero exactly when the
// result contains z, so OR-ing residuals detects any violation without a
// branch; witnesses are re-derived only on failure.
template <typename AbsFn, typename ConcFn>
TnumAuditResult AuditBinary(TnumOp op, bool commutative, AbsFn abs_fn,
                            ConcFn conc_fn) {
  const Universe& u = GetUniverse();
  TnumAuditResult res;
  const size_t n = u.tnums.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = commutative ? i : 0; j < n; ++j) {
      const Tnum r = abs_fn(u.tnums[i], u.tnums[j]);
      const uint64_t rv = r.value;
      const uint64_t rm = r.mask;
      uint64_t acc = 0;
      for (uint64_t x : u.members[i]) {
        for (uint64_t y : u.members[j]) {
          acc |= (conc_fn(x, y) & ~rm) ^ rv;
        }
      }
      res.checked += u.members[i].size() * u.members[j].size();
      if (acc == 0) continue;
      for (uint64_t x : u.members[i]) {
        for (uint64_t y : u.members[j]) {
          const uint64_t z = conc_fn(x, y);
          if (!r.Contains(z)) {
            AddViolation(res, op, u.tnums[i], u.tnums[j], x, y, r, z);
          }
        }
      }
    }
  }
  return res;
}

// Shift audit: |embed_shift| places the 8-bit operand at a chosen bit
// position (0 for the low byte, 56 resp. 24 to exercise the top byte / the
// 32-bit sign bit), |max_shift| bounds the shift amount.
template <typename AbsFn, typename ConcFn>
void AuditShiftEmbedding(TnumAuditResult& res, TnumOp op, int embed_shift,
                         int max_shift, AbsFn abs_fn, ConcFn conc_fn) {
  const Universe& u = GetUniverse();
  const size_t n = u.tnums.size();
  for (size_t i = 0; i < n; ++i) {
    const Tnum a{u.tnums[i].value << embed_shift, u.tnums[i].mask << embed_shift};
    for (int s = 0; s <= max_shift; ++s) {
      const Tnum r = abs_fn(a, static_cast<uint8_t>(s));
      uint64_t acc = 0;
      for (uint64_t x : u.members[i]) {
        acc |= (conc_fn(x << embed_shift, s) & ~r.mask) ^ r.value;
      }
      res.checked += u.members[i].size();
      if (acc == 0) continue;
      for (uint64_t x : u.members[i]) {
        const uint64_t z = conc_fn(x << embed_shift, s);
        if (!r.Contains(z)) {
          AddViolation(res, op, a, bpf::TnumConst(static_cast<uint64_t>(s)), x << embed_shift,
                       static_cast<uint64_t>(s), r, z);
        }
      }
    }
  }
}

// Intersect/union audits need membership in the inputs, not pairs: intersect
// must keep any value lying in both inputs; union must keep values from
// either input.
TnumAuditResult AuditIntersect() {
  const Universe& u = GetUniverse();
  TnumAuditResult res;
  const size_t n = u.tnums.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const Tnum r = bpf::TnumIntersect(u.tnums[i], u.tnums[j]);
      for (uint64_t x : u.members[i]) {
        if (!u.tnums[j].Contains(x)) continue;
        ++res.checked;
        if (!r.Contains(x)) {
          AddViolation(res, TnumOp::kIntersect, u.tnums[i], u.tnums[j], x, x, r, x);
        }
      }
    }
  }
  return res;
}

TnumAuditResult AuditUnion() {
  const Universe& u = GetUniverse();
  TnumAuditResult res;
  const size_t n = u.tnums.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const Tnum r = bpf::TnumUnion(u.tnums[i], u.tnums[j]);
      uint64_t acc = 0;
      for (uint64_t x : u.members[i]) acc |= (x & ~r.mask) ^ r.value;
      for (uint64_t y : u.members[j]) acc |= (y & ~r.mask) ^ r.value;
      res.checked += u.members[i].size() + u.members[j].size();
      if (acc == 0) continue;
      for (uint64_t x : u.members[i]) {
        if (!r.Contains(x)) {
          AddViolation(res, TnumOp::kUnion, u.tnums[i], u.tnums[j], x, x, r, x);
        }
      }
      for (uint64_t y : u.members[j]) {
        if (!r.Contains(y)) {
          AddViolation(res, TnumOp::kUnion, u.tnums[i], u.tnums[j], y, y, r, y);
        }
      }
    }
  }
  return res;
}

void Merge(TnumAuditResult& into, TnumAuditResult from) {
  into.checked += from.checked;
  for (TnumViolation& v : from.violations) {
    if (into.violations.size() >= kViolationCap) break;
    into.violations.push_back(v);
  }
}

}  // namespace

const char* TnumOpName(TnumOp op) {
  switch (op) {
    case TnumOp::kAdd: return "tnum_add";
    case TnumOp::kSub: return "tnum_sub";
    case TnumOp::kAnd: return "tnum_and";
    case TnumOp::kOr: return "tnum_or";
    case TnumOp::kXor: return "tnum_xor";
    case TnumOp::kMul: return "tnum_mul";
    case TnumOp::kLshift: return "tnum_lshift";
    case TnumOp::kRshift: return "tnum_rshift";
    case TnumOp::kArshift: return "tnum_arshift";
    case TnumOp::kIntersect: return "tnum_intersect";
    case TnumOp::kUnion: return "tnum_union";
  }
  return "unknown";
}

std::string TnumViolation::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "%s(%s, %s): concrete %llu op %llu = %llu not in abstract %s",
           TnumOpName(op), a.ToString().c_str(), b.ToString().c_str(),
           static_cast<unsigned long long>(x), static_cast<unsigned long long>(y),
           static_cast<unsigned long long>(concrete), result.ToString().c_str());
  return buf;
}

TnumAuditResult AuditTnumOp(TnumOp op) {
  switch (op) {
    case TnumOp::kAdd:
      return AuditBinary(op, /*commutative=*/true, bpf::TnumAdd,
                         [](uint64_t x, uint64_t y) { return x + y; });
    case TnumOp::kSub:
      return AuditBinary(op, /*commutative=*/false, bpf::TnumSub,
                         [](uint64_t x, uint64_t y) { return x - y; });
    case TnumOp::kAnd:
      return AuditBinary(op, /*commutative=*/true, bpf::TnumAnd,
                         [](uint64_t x, uint64_t y) { return x & y; });
    case TnumOp::kOr:
      return AuditBinary(op, /*commutative=*/true, bpf::TnumOr,
                         [](uint64_t x, uint64_t y) { return x | y; });
    case TnumOp::kXor:
      return AuditBinary(op, /*commutative=*/true, bpf::TnumXor,
                         [](uint64_t x, uint64_t y) { return x ^ y; });
    case TnumOp::kMul:
      return AuditBinary(op, /*commutative=*/true, bpf::TnumMul,
                         [](uint64_t x, uint64_t y) { return x * y; });
    case TnumOp::kLshift: {
      TnumAuditResult res;
      AuditShiftEmbedding(res, op, 0, 63, bpf::TnumLshift,
                          [](uint64_t x, int s) { return x << s; });
      return res;
    }
    case TnumOp::kRshift: {
      TnumAuditResult res;
      AuditShiftEmbedding(res, op, 0, 63, bpf::TnumRshift,
                          [](uint64_t x, int s) { return x >> s; });
      AuditShiftEmbedding(res, op, 56, 63, bpf::TnumRshift,
                          [](uint64_t x, int s) { return x >> s; });
      return res;
    }
    case TnumOp::kArshift: {
      TnumAuditResult res;
      const auto abs64 = [](Tnum a, uint8_t s) { return bpf::TnumArshift(a, s, 64); };
      const auto conc64 = [](uint64_t x, int s) {
        return static_cast<uint64_t>(static_cast<int64_t>(x) >> s);
      };
      AuditShiftEmbedding(res, op, 0, 63, abs64, conc64);
      AuditShiftEmbedding(res, op, 56, 63, abs64, conc64);
      const auto abs32 = [](Tnum a, uint8_t s) { return bpf::TnumArshift(a, s, 32); };
      const auto conc32 = [](uint64_t x, int s) {
        return static_cast<uint64_t>(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<uint32_t>(x)) >> s));
      };
      AuditShiftEmbedding(res, op, 0, 31, abs32, conc32);
      AuditShiftEmbedding(res, op, 24, 31, abs32, conc32);
      return res;
    }
    case TnumOp::kIntersect:
      return AuditIntersect();
    case TnumOp::kUnion:
      return AuditUnion();
  }
  return TnumAuditResult{};
}

TnumAuditResult AuditAllTnumOps() {
  TnumAuditResult res;
  for (TnumOp op :
       {TnumOp::kAdd, TnumOp::kSub, TnumOp::kAnd, TnumOp::kOr, TnumOp::kXor,
        TnumOp::kMul, TnumOp::kLshift, TnumOp::kRshift, TnumOp::kArshift,
        TnumOp::kIntersect, TnumOp::kUnion}) {
    Merge(res, AuditTnumOp(op));
  }
  return res;
}

}  // namespace bvf
