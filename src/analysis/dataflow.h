// Generic worklist dataflow solver over the bytecode CFG (src/analysis/cfg.h).
//
// A Domain supplies:
//   using Value = ...;                 // one lattice element per block edge
//   static constexpr bool kForward;    // direction of propagation
//   Value Boundary() const;            // value at entry (fwd) / exit (bwd) blocks
//   Value Init() const;                // optimistic initial value (lattice bottom)
//   bool Join(Value& into, const Value& from) const;   // returns true if changed
//   Value Transfer(const Cfg& cfg, int block, const Value& in) const;
//
// Solve() iterates block transfer functions to a fixpoint. Joins happen at
// block granularity; passes needing per-instruction facts (liveness,
// reaching defs) re-walk each block from the solved boundary values.

#ifndef SRC_ANALYSIS_DATAFLOW_H_
#define SRC_ANALYSIS_DATAFLOW_H_

#include <vector>

#include "src/analysis/cfg.h"

namespace bvf {

template <typename Domain>
struct DataflowResult {
  // Value at block entry (forward) resp. block exit (backward) -- the "input"
  // side of the transfer function for each block.
  std::vector<typename Domain::Value> in;
  // Value after applying the block's transfer function.
  std::vector<typename Domain::Value> out;
  int iterations = 0;  // total transfer applications until fixpoint
};

template <typename Domain>
DataflowResult<Domain> Solve(const Cfg& cfg, const Domain& domain) {
  const int nb = static_cast<int>(cfg.blocks.size());
  DataflowResult<Domain> res;
  res.in.assign(nb, domain.Init());
  res.out.assign(nb, domain.Init());

  // Seed boundary blocks: no predecessors (forward) / no successors
  // (backward). Unreachable cycles keep Init() until joined into.
  for (int b = 0; b < nb; ++b) {
    const bool boundary = Domain::kForward ? cfg.blocks[b].preds.empty()
                                           : cfg.blocks[b].succs.empty();
    if (boundary) res.in[b] = domain.Boundary();
  }

  std::vector<bool> queued(nb, true);
  std::vector<int> worklist;
  worklist.reserve(nb);
  // Process in reverse id order for backward passes (blocks are laid out in
  // instruction order, so this approximates reverse post-order both ways).
  for (int b = 0; b < nb; ++b) {
    worklist.push_back(Domain::kForward ? nb - 1 - b : b);
  }

  while (!worklist.empty()) {
    const int b = worklist.back();
    worklist.pop_back();
    queued[b] = false;
    res.out[b] = domain.Transfer(cfg, b, res.in[b]);
    ++res.iterations;
    const std::vector<int>& targets =
        Domain::kForward ? cfg.blocks[b].succs : cfg.blocks[b].preds;
    for (int t : targets) {
      if (domain.Join(res.in[t], res.out[b]) && !queued[t]) {
        queued[t] = true;
        worklist.push_back(t);
      }
    }
  }
  return res;
}

}  // namespace bvf

#endif  // SRC_ANALYSIS_DATAFLOW_H_
