// Offset-preserving program surgery, the kernel's bpf_patch_insn_data shape:
// insert or delete one instruction while re-linking every branch and
// pseudo-call whose span crosses the edit point. Shared by the structured
// generator's duplication mutation, reproducer minimization, and the
// canonicalizer's strip passes.

#ifndef SRC_ANALYSIS_PATCH_H_
#define SRC_ANALYSIS_PATCH_H_

#include <cstddef>

#include "src/ebpf/program.h"

namespace bvf {

// Inserts |insn| at |pos| in the program, patching every branch and
// pseudo-call offset that spans the insertion point. Jumps that targeted
// |pos| target the shifted original instruction, i.e. they bypass the
// inserted one.
void InsertInsnPatched(bpf::Program& prog, size_t pos, const bpf::Insn& insn);

// Deletes the instruction at |pos| (both slots for ld_imm64), re-linking
// every branch and pseudo-call offset that spans the deletion. The inverse
// of InsertInsnPatched. Jumps targeting the removed instruction fall to its
// successor.
void RemoveInsnPatched(bpf::Program& prog, size_t pos);

}  // namespace bvf

#endif  // SRC_ANALYSIS_PATCH_H_
