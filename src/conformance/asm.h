// Small BPF assembler for the conformance corpus (DESIGN.md §15).
//
// Parses the mnemonic syntax the disassembler (src/ebpf/insn.cc) emits, one
// instruction per line, covering the surface the structured generator rarely
// exercises: ALU32/ALU64 (register and immediate forms), JMP/JMP32, MEM and
// MEMSX loads/stores, the four endian-conversion spellings (le/be/bswap/
// swap_le), two-slot ld_imm64, calls, and exit. Assemble(Disassemble(prog))
// is byte-identical for every encodable program the corpus format covers —
// the round-trip property tests/conformance_test.cc locks down.

#ifndef SRC_CONFORMANCE_ASM_H_
#define SRC_CONFORMANCE_ASM_H_

#include <string>
#include <vector>

#include "src/ebpf/insn.h"

namespace bvf {
namespace conf {

// First parse failure of an assembly text: 1-based source line plus message.
struct AsmError {
  int line = 0;
  std::string message;

  std::string Format() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

// Assembles one instruction line (no comments/blank handling). Returns false
// and fills |error->message| on malformed input; |error->line| is left to the
// caller. An ld_imm64 mnemonic appends two slots; the `(ld_imm64 hi: ...)`
// continuation line appends none but patches the previous high slot.
bool AssembleLine(const std::string& line, std::vector<bpf::Insn>* insns,
                  AsmError* error);

// Assembles a full program text: one instruction per line, `#` comments and
// blank lines ignored. On failure returns false with the offending 1-based
// line number in |error|; |insns| is left in an unspecified state.
bool AssembleProgram(const std::string& text, std::vector<bpf::Insn>* insns,
                     AsmError* error);

}  // namespace conf
}  // namespace bvf

#endif  // SRC_CONFORMANCE_ASM_H_
