#include "src/conformance/runner.h"

#include <sstream>

#include "src/runtime/bpf_syscall.h"
#include "src/runtime/jit_prog.h"
#include "src/runtime/kernel.h"
#include "src/sanitizer/asan_funcs.h"
#include "src/sanitizer/instrument.h"

namespace bvf {
namespace conf {

namespace {

// Later verdicts are worse; Worst() folds per-engine classifications.
CaseVerdict Worst(CaseVerdict a, CaseVerdict b) { return a < b ? b : a; }

std::string FormatR0(uint64_t value) {
  std::ostringstream os;
  os << value;
  if (value > 9) {
    os << " (0x" << std::hex << value << ")";
  }
  return os.str();
}

}  // namespace

const char* CaseVerdictName(CaseVerdict verdict) {
  switch (verdict) {
    case CaseVerdict::kPass:
      return "pass";
    case CaseVerdict::kExpectedReject:
      return "expected-reject";
    case CaseVerdict::kUnexpectedAccept:
      return "unexpected-accept";
    case CaseVerdict::kReject:
      return "reject";
    case CaseVerdict::kMismatch:
      return "mismatch";
  }
  return "?";
}

bpf::Program ToProgram(const ConformanceCase& c) {
  bpf::Program prog;
  prog.type = bpf::ProgType::kTracepoint;
  prog.insns = c.insns;
  return prog;
}

CaseResult ConformanceRunner::RunCase(const ConformanceCase& c) const {
  CaseResult result;
  result.name = c.name;
  const bpf::Program prog = ToProgram(c);

  static const bpf::ExecEngine kEngines[] = {
      bpf::ExecEngine::kLegacy, bpf::ExecEngine::kDecoded, bpf::ExecEngine::kJit};

  bool classified_load = false;
  bool accepted = false;
  std::ostringstream detail;
  for (const bpf::ExecEngine engine : kEngines) {
    EngineRun run;
    run.engine = engine;
    if (engine == bpf::ExecEngine::kJit && !bpf::JitAvailable()) {
      result.runs.push_back(run);  // ran = false: engine unavailable here
      continue;
    }

    // Fresh substrate per engine: no verdict/decode caches, no state carried
    // across engines, so every run is a from-scratch load + execute.
    bpf::Kernel kernel(config_.version, config_.bugs, config_.arena_size);
    bpf::Bpf bpf(kernel);
    bpf.set_exec_engine(engine);
    bvf::Sanitizer sanitizer;
    if (config_.sanitize) {
      bpf::BpfAsan::Register(kernel);
      bpf.set_instrument(sanitizer.Hook());
    }
    bpf.set_exec_limits(config_.limits);

    bpf::VerifierResult verdict;
    const int fd = bpf.ProgLoad(prog, &verdict);
    if (!classified_load) {
      classified_load = true;
      accepted = fd > 0;
      if (!accepted) {
        result.verifier_log = verdict.log;
        if (c.expect_reject) {
          if (!c.expected_error.empty() &&
              verdict.log.find(c.expected_error) == std::string::npos) {
            result.verdict = Worst(result.verdict, CaseVerdict::kReject);
            detail << "rejected, but log lacks expected substring '"
                   << c.expected_error << "'; ";
          } else {
            result.verdict = Worst(result.verdict, CaseVerdict::kExpectedReject);
          }
        } else {
          result.verdict = Worst(result.verdict, CaseVerdict::kReject);
          detail << "verifier rejected a -- result case; ";
        }
      } else if (c.expect_reject) {
        result.verdict = Worst(result.verdict, CaseVerdict::kUnexpectedAccept);
        detail << "verifier accepted a -- error case; ";
      }
    } else if ((fd > 0) != accepted) {
      // The verifier is engine-independent; acceptance flipping with the
      // engine would mean load-path state bleeding into verification.
      result.verdict = Worst(result.verdict, CaseVerdict::kMismatch);
      detail << bpf::ExecEngineName(engine) << ": load verdict diverged; ";
    }
    if (fd <= 0 || c.expect_reject) {
      result.runs.push_back(run);
      continue;
    }

    const bpf::ExecResult exec = bpf.ProgTestRunCtx(fd, c.mem);
    run.ran = true;
    run.r0 = exec.r0;
    run.err = exec.err;
    run.abort_reason = exec.abort_reason;
    result.runs.push_back(run);

    if (exec.err != 0) {
      result.verdict = Worst(result.verdict, CaseVerdict::kMismatch);
      detail << bpf::ExecEngineName(engine) << ": aborted ("
             << (exec.abort_reason.empty() ? "err" : exec.abort_reason) << "="
             << exec.err << "); ";
    } else if (exec.r0 != c.expected_r0) {
      result.verdict = Worst(result.verdict, CaseVerdict::kMismatch);
      detail << bpf::ExecEngineName(engine) << ": r0 = " << FormatR0(exec.r0)
             << ", expected " << FormatR0(c.expected_r0) << "; ";
    }
  }
  result.detail = detail.str();
  return result;
}

ConformanceRunner::Summary ConformanceRunner::RunCorpus(
    const std::vector<ConformanceCase>& corpus, std::vector<CaseResult>* results) const {
  Summary summary;
  for (const ConformanceCase& c : corpus) {
    CaseResult result = RunCase(c);
    ++summary.cases;
    switch (result.verdict) {
      case CaseVerdict::kPass:
      case CaseVerdict::kExpectedReject:
        ++summary.passed;
        break;
      case CaseVerdict::kMismatch:
        ++summary.mismatches;
        break;
      case CaseVerdict::kReject:
      case CaseVerdict::kUnexpectedAccept:
        ++summary.rejects;
        break;
    }
    if (results != nullptr) {
      results->push_back(std::move(result));
    }
  }
  return summary;
}

}  // namespace conf
}  // namespace bvf
