#include "src/conformance/asm.h"

#include <cstring>
#include <sstream>

namespace bvf {
namespace conf {

using bpf::Insn;

namespace {

// Cursor over one trimmed instruction line. All parsing is longest-match
// against literal fragments of the disassembler's output grammar.
struct Scanner {
  const std::string& s;
  size_t i = 0;

  explicit Scanner(const std::string& line) : s(line) {}

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
  }
  bool Eat(const char* lit) {
    SkipWs();
    const size_t n = std::strlen(lit);
    if (s.compare(i, n, lit) == 0) {
      i += n;
      return true;
    }
    return false;
  }
  bool AtEnd() {
    SkipWs();
    return i >= s.size();
  }
  std::string Rest() { return s.substr(i); }
};

bool Fail(AsmError* error, const std::string& message) {
  if (error != nullptr) {
    error->message = message;
  }
  return false;
}

// `r0`..`r11`, optionally spelled `wr0`..`wr11` (the disassembler's 32-bit
// operand prefix). |is32| reports whether the w prefix was present.
bool ParseReg(Scanner& sc, uint8_t* reg, bool* is32) {
  sc.SkipWs();
  size_t i = sc.i;
  bool w = false;
  if (i < sc.s.size() && sc.s[i] == 'w' && i + 1 < sc.s.size() && sc.s[i + 1] == 'r') {
    w = true;
    ++i;
  }
  if (i >= sc.s.size() || sc.s[i] != 'r') {
    return false;
  }
  ++i;
  if (i >= sc.s.size() || sc.s[i] < '0' || sc.s[i] > '9') {
    return false;
  }
  int value = 0;
  while (i < sc.s.size() && sc.s[i] >= '0' && sc.s[i] <= '9') {
    value = value * 10 + (sc.s[i] - '0');
    if (value > 15) {
      return false;
    }
    ++i;
  }
  if (value > bpf::kR11) {
    return false;
  }
  *reg = static_cast<uint8_t>(value);
  if (is32 != nullptr) {
    *is32 = w;
  }
  sc.i = i;
  return true;
}

// Optionally signed decimal or 0x-hex magnitude. The magnitude is returned
// unsigned with its sign bit separate so callers can apply their own field
// range rules (s16 offset, s32 immediate, full u64 for ld_imm64).
bool ParseNumber(Scanner& sc, uint64_t* magnitude, bool* negative) {
  sc.SkipWs();
  size_t i = sc.i;
  bool neg = false;
  if (i < sc.s.size() && (sc.s[i] == '+' || sc.s[i] == '-')) {
    neg = sc.s[i] == '-';
    ++i;
  }
  uint64_t value = 0;
  size_t digits = 0;
  if (i + 1 < sc.s.size() && sc.s[i] == '0' && (sc.s[i + 1] == 'x' || sc.s[i + 1] == 'X')) {
    i += 2;
    while (i < sc.s.size()) {
      const char c = sc.s[i];
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        break;
      }
      if (value >> 60 != 0) {
        return false;  // would overflow 64 bits
      }
      value = value * 16 + static_cast<uint64_t>(d);
      ++digits;
      ++i;
    }
  } else {
    while (i < sc.s.size() && sc.s[i] >= '0' && sc.s[i] <= '9') {
      const uint64_t d = static_cast<uint64_t>(sc.s[i] - '0');
      if (value > (~0ull - d) / 10) {
        return false;
      }
      value = value * 10 + d;
      ++digits;
      ++i;
    }
  }
  if (digits == 0) {
    return false;
  }
  *magnitude = value;
  *negative = neg;
  sc.i = i;
  return true;
}

// s32 immediate: negative magnitudes up to 2^31, positive up to 2^32-1 (hex
// bit patterns like 0xdeadbeef are accepted and wrap, as in every assembler).
bool ParseImm32(Scanner& sc, int32_t* imm, AsmError* error) {
  uint64_t mag = 0;
  bool neg = false;
  if (!ParseNumber(sc, &mag, &neg)) {
    return Fail(error, "expected immediate");
  }
  if (neg ? mag > 0x80000000ull : mag > 0xffffffffull) {
    return Fail(error, "immediate out of 32-bit range");
  }
  *imm = neg ? static_cast<int32_t>(-static_cast<int64_t>(mag))
             : static_cast<int32_t>(static_cast<uint32_t>(mag));
  return true;
}

// s16 branch/memory offset.
bool ParseOff(Scanner& sc, int16_t* off, AsmError* error) {
  uint64_t mag = 0;
  bool neg = false;
  if (!ParseNumber(sc, &mag, &neg)) {
    return Fail(error, "expected offset");
  }
  if (neg ? mag > 0x8000ull : mag > 0x7fffull) {
    return Fail(error, "offset out of 16-bit range");
  }
  *off = static_cast<int16_t>(neg ? -static_cast<int64_t>(mag)
                                  : static_cast<int64_t>(mag));
  return true;
}

// `u8|u16|u32|u64|s8|s16|s32` memory access width; |sign| reports MEMSX.
bool ParseSizeName(Scanner& sc, uint8_t* size, bool* sign) {
  sc.SkipWs();
  struct Entry {
    const char* name;
    uint8_t size;
    bool sign;
  };
  static const Entry kSizes[] = {
      {"u16", bpf::kSizeH, false}, {"u32", bpf::kSizeW, false},
      {"u64", bpf::kSizeDw, false}, {"u8", bpf::kSizeB, false},
      {"s16", bpf::kSizeH, true},  {"s32", bpf::kSizeW, true},
      {"s8", bpf::kSizeB, true},
      // s64 encodes (the loader rejects MEMSX|DW) so corpus `-- error` cases
      // can exercise that rejection path.
      {"s64", bpf::kSizeDw, true},
  };
  for (const Entry& entry : kSizes) {
    if (sc.Eat(entry.name)) {
      *size = entry.size;
      *sign = entry.sign;
      return true;
    }
  }
  return false;
}

bool ParseAluOpToken(Scanner& sc, uint8_t* op) {
  struct Entry {
    const char* token;
    uint8_t op;
  };
  // Longest-match order: compound tokens before their prefixes.
  static const Entry kOps[] = {
      {"s>>=", bpf::kAluArsh}, {"<<=", bpf::kAluLsh}, {">>=", bpf::kAluRsh},
      {"+=", bpf::kAluAdd},    {"-=", bpf::kAluSub},  {"*=", bpf::kAluMul},
      {"/=", bpf::kAluDiv},    {"|=", bpf::kAluOr},   {"&=", bpf::kAluAnd},
      {"%=", bpf::kAluMod},    {"^=", bpf::kAluXor},  {"=", bpf::kAluMov},
  };
  for (const Entry& entry : kOps) {
    if (sc.Eat(entry.token)) {
      *op = entry.op;
      return true;
    }
  }
  return false;
}

bool ParseJmpOpToken(Scanner& sc, uint8_t* op) {
  struct Entry {
    const char* token;
    uint8_t op;
  };
  static const Entry kOps[] = {
      {"s>=", bpf::kJmpJsge}, {"s<=", bpf::kJmpJsle}, {"s>", bpf::kJmpJsgt},
      {"s<", bpf::kJmpJslt},  {"==", bpf::kJmpJeq},   {"!=", bpf::kJmpJne},
      {">=", bpf::kJmpJge},   {"<=", bpf::kJmpJle},   {">", bpf::kJmpJgt},
      {"<", bpf::kJmpJlt},    {"&", bpf::kJmpJset},
  };
  for (const Entry& entry : kOps) {
    if (sc.Eat(entry.token)) {
      *op = entry.op;
      return true;
    }
  }
  return false;
}

// `*(<size> *)(<reg> <off>)` — shared by load RHS and store LHS. The `*(`
// has already been consumed.
bool ParseMemRef(Scanner& sc, uint8_t* size, bool* sign, uint8_t* reg, int16_t* off,
                 AsmError* error) {
  if (!ParseSizeName(sc, size, sign)) {
    return Fail(error, "unknown memory access size");
  }
  if (!sc.Eat("*)(")) {
    return Fail(error, "malformed memory operand");
  }
  if (!ParseReg(sc, reg, nullptr)) {
    return Fail(error, "expected base register");
  }
  if (!ParseOff(sc, off, error)) {
    return false;
  }
  if (!sc.Eat(")")) {
    return Fail(error, "malformed memory operand");
  }
  return true;
}

bool ParseEndianMnemonic(Scanner& sc, bool* is32_class, bool* to_be) {
  // Longest-match: swap_le before le, bswap before be.
  if (sc.Eat("swap_le")) {
    *is32_class = false;
    *to_be = false;
    return true;
  }
  if (sc.Eat("bswap")) {
    *is32_class = false;
    *to_be = true;
    return true;
  }
  if (sc.Eat("be")) {
    *is32_class = true;
    *to_be = true;
    return true;
  }
  if (sc.Eat("le")) {
    *is32_class = true;
    *to_be = false;
    return true;
  }
  return false;
}

bool AssembleCall(Scanner& sc, std::vector<Insn>* insns, AsmError* error) {
  int32_t imm = 0;
  if (sc.Eat("helper#")) {
    if (!ParseImm32(sc, &imm, error)) {
      return false;
    }
    insns->push_back(bpf::CallHelper(imm));
  } else if (sc.Eat("kfunc#")) {
    if (!ParseImm32(sc, &imm, error)) {
      return false;
    }
    insns->push_back(bpf::CallKfunc(imm));
  } else if (sc.Eat("pc")) {
    if (!ParseImm32(sc, &imm, error)) {
      return false;
    }
    insns->push_back(bpf::CallPseudoFunc(imm));
  } else {
    return Fail(error, "unknown call target (want helper#N, kfunc#N, or pc+N)");
  }
  return true;
}

bool AssembleCondJmp(Scanner& sc, std::vector<Insn>* insns, AsmError* error) {
  uint8_t dst = 0;
  bool dst32 = false;
  if (!ParseReg(sc, &dst, &dst32)) {
    return Fail(error, "expected register after 'if'");
  }
  uint8_t op = 0;
  if (!ParseJmpOpToken(sc, &op)) {
    return Fail(error, "unknown comparison operator");
  }
  uint8_t src = 0;
  bool src32 = false;
  int32_t imm = 0;
  const bool src_is_reg = ParseReg(sc, &src, &src32);
  if (!src_is_reg && !ParseImm32(sc, &imm, error)) {
    return false;
  }
  if (src_is_reg && src32 != dst32) {
    return Fail(error, "mixed 32/64-bit comparison operands");
  }
  if (!sc.Eat("goto")) {
    return Fail(error, "expected 'goto'");
  }
  int16_t off = 0;
  if (!ParseOff(sc, &off, error)) {
    return false;
  }
  if (src_is_reg) {
    insns->push_back(dst32 ? bpf::Jmp32Reg(op, dst, src, off)
                           : bpf::JmpReg(op, dst, src, off));
  } else {
    insns->push_back(dst32 ? bpf::Jmp32Imm(op, dst, imm, off)
                           : bpf::JmpImm(op, dst, imm, off));
  }
  return true;
}

// `(ld_imm64 hi: 0xNN)` — the disassembler's high-slot continuation line.
// Patches the immediately preceding high slot rather than emitting one, so
// `rX = 0xLO ll` + continuation reassembles to the exact two-slot pair.
bool AssembleLdImm64Hi(Scanner& sc, std::vector<Insn>* insns, AsmError* error) {
  uint64_t mag = 0;
  bool neg = false;
  if (!ParseNumber(sc, &mag, &neg) || neg || mag > 0xffffffffull) {
    return Fail(error, "malformed ld_imm64 continuation value");
  }
  if (!sc.Eat(")")) {
    return Fail(error, "malformed ld_imm64 continuation");
  }
  if (insns->size() < 2 || !(*insns)[insns->size() - 2].IsLdImm64() ||
      insns->back().opcode != 0) {
    return Fail(error, "ld_imm64 continuation without a preceding ld_imm64");
  }
  insns->back().imm = static_cast<int32_t>(static_cast<uint32_t>(mag));
  return true;
}

bool AssembleStore(Scanner& sc, std::vector<Insn>* insns, AsmError* error) {
  uint8_t size = 0;
  bool sign = false;
  uint8_t base = 0;
  int16_t off = 0;
  if (!ParseMemRef(sc, &size, &sign, &base, &off, error)) {
    return false;
  }
  if (sign) {
    return Fail(error, "sign-extending store does not exist");
  }
  if (!sc.Eat("=")) {
    return Fail(error, "expected '=' after store target");
  }
  uint8_t src = 0;
  bool src32 = false;
  if (ParseReg(sc, &src, &src32)) {
    if (src32) {
      return Fail(error, "store source must be a 64-bit register name");
    }
    insns->push_back(bpf::StoreMemReg(size, base, src, off));
    return true;
  }
  int32_t imm = 0;
  if (!ParseImm32(sc, &imm, error)) {
    return false;
  }
  insns->push_back(bpf::StoreMemImm(size, base, off, imm));
  return true;
}

// Everything that starts with a (possibly w-prefixed) destination register:
// mov/ALU, neg, endian conversion, memory load, ld_imm64.
bool AssembleRegLine(Scanner& sc, std::vector<Insn>* insns, AsmError* error) {
  uint8_t dst = 0;
  bool dst32 = false;
  if (!ParseReg(sc, &dst, &dst32)) {
    return Fail(error, "unknown instruction");
  }
  uint8_t alu_op = 0;
  if (!ParseAluOpToken(sc, &alu_op)) {
    return Fail(error, "unknown operator");
  }

  if (alu_op == bpf::kAluMov) {
    // `rX = -rX` (negate; the disassembler prints the operand un-prefixed).
    sc.SkipWs();
    if (sc.i < sc.s.size() && sc.s[sc.i] == '-' && sc.i + 1 < sc.s.size() &&
        (sc.s[sc.i + 1] == 'r' || sc.s[sc.i + 1] == 'w')) {
      ++sc.i;
      uint8_t operand = 0;
      if (!ParseReg(sc, &operand, nullptr)) {
        return Fail(error, "malformed negate operand");
      }
      if (operand != dst) {
        return Fail(error, "negate reads and writes one register");
      }
      Insn insn = bpf::Neg(dst);
      if (dst32) {
        insn.opcode = static_cast<uint8_t>(bpf::kClassAlu | bpf::kAluNeg);
      }
      insns->push_back(insn);
      return true;
    }
    // `rX = *(size *)(rY +off)` load.
    if (sc.Eat("*(")) {
      uint8_t size = 0;
      bool sign = false;
      uint8_t base = 0;
      int16_t off = 0;
      if (!ParseMemRef(sc, &size, &sign, &base, &off, error)) {
        return false;
      }
      if (dst32) {
        return Fail(error, "load destination must be a 64-bit register name");
      }
      insns->push_back(sign ? bpf::LoadMemSx(size, dst, base, off)
                            : bpf::LoadMem(size, dst, base, off));
      return true;
    }
    // `rX = le16 rX` / be / bswap / swap_le endian conversion.
    bool endian32_class = false;
    bool to_be = false;
    if (ParseEndianMnemonic(sc, &endian32_class, &to_be)) {
      int32_t width = 0;
      if (!ParseImm32(sc, &width, error)) {
        return false;
      }
      uint8_t operand = 0;
      if (!ParseReg(sc, &operand, nullptr) || operand != dst) {
        return Fail(error, "endian conversion reads and writes one register");
      }
      if (dst32) {
        return Fail(error, "endian destination must be a 64-bit register name");
      }
      Insn insn;
      insn.opcode = static_cast<uint8_t>((endian32_class ? bpf::kClassAlu : bpf::kClassAlu64) |
                                         bpf::kAluEnd | (to_be ? bpf::kSrcX : bpf::kSrcK));
      insn.dst = dst;
      insn.imm = width;
      insns->push_back(insn);
      return true;
    }
  }

  // Register RHS: mov/ALU register form.
  uint8_t src = 0;
  bool src32 = false;
  if (ParseReg(sc, &src, &src32)) {
    if (src32 != dst32) {
      return Fail(error, "mixed 32/64-bit ALU operands");
    }
    insns->push_back(dst32 ? bpf::Alu32Reg(alu_op, dst, src)
                           : bpf::AluReg(alu_op, dst, src));
    return true;
  }

  // Immediate RHS. `rX = <imm64> ll` is the two-slot 64-bit load; everything
  // else is a 32-bit immediate ALU form.
  sc.SkipWs();
  const size_t imm_start = sc.i;
  uint64_t mag = 0;
  bool neg = false;
  if (!ParseNumber(sc, &mag, &neg)) {
    return Fail(error, "expected register or immediate operand");
  }
  if (sc.Eat("ll")) {
    if (alu_op != bpf::kAluMov || dst32) {
      return Fail(error, "ld_imm64 must be written 'rN = <imm> ll'");
    }
    uint8_t pseudo = 0;
    if (sc.Eat("map_fd")) {
      pseudo = bpf::kPseudoMapFd;
    } else if (sc.Eat("map_value")) {
      pseudo = bpf::kPseudoMapValue;
    } else if (sc.Eat("btf_id")) {
      pseudo = bpf::kPseudoBtfId;
    } else if (sc.Eat("func")) {
      pseudo = bpf::kPseudoFunc;
    }
    const uint64_t value = neg ? static_cast<uint64_t>(-static_cast<int64_t>(mag)) : mag;
    insns->push_back(bpf::LdImm64Lo(dst, pseudo, value));
    insns->push_back(bpf::LdImm64Hi(value));
    return true;
  }
  // Re-parse as a range-checked 32-bit immediate.
  sc.i = imm_start;
  int32_t imm = 0;
  if (!ParseImm32(sc, &imm, error)) {
    return false;
  }
  insns->push_back(dst32 ? bpf::Alu32Imm(alu_op, dst, imm)
                         : bpf::AluImm(alu_op, dst, imm));
  return true;
}

}  // namespace

bool AssembleLine(const std::string& line, std::vector<Insn>* insns, AsmError* error) {
  Scanner sc(line);
  bool ok;
  if (sc.Eat("exit")) {
    insns->push_back(bpf::Exit());
    ok = true;
  } else if (sc.Eat("goto")) {
    int16_t off = 0;
    ok = ParseOff(sc, &off, error);
    if (ok) {
      insns->push_back(bpf::JmpA(off));
    }
  } else if (sc.Eat("call")) {
    ok = AssembleCall(sc, insns, error);
  } else if (sc.Eat("if")) {
    ok = AssembleCondJmp(sc, insns, error);
  } else if (sc.Eat("(ld_imm64 hi:")) {
    ok = AssembleLdImm64Hi(sc, insns, error);
  } else if (sc.Eat("*(")) {
    ok = AssembleStore(sc, insns, error);
  } else {
    ok = AssembleRegLine(sc, insns, error);
  }
  if (!ok) {
    return false;
  }
  if (!sc.AtEnd()) {
    return Fail(error, "trailing junk: '" + sc.Rest() + "'");
  }
  return true;
}

bool AssembleProgram(const std::string& text, std::vector<Insn>* insns, AsmError* error) {
  insns->clear();
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments ('#' to end of line) and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    size_t end = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(begin, end - begin + 1);
    AsmError local;
    if (!AssembleLine(trimmed, insns, &local)) {
      if (error != nullptr) {
        error->line = line_no;
        error->message = local.message;
      }
      return false;
    }
  }
  if (insns->empty()) {
    if (error != nullptr) {
      error->line = line_no;
      error->message = "empty program";
    }
    return false;
  }
  return true;
}

}  // namespace conf
}  // namespace bvf
