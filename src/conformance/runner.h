// Conformance runner (DESIGN.md §15): drives each corpus case through the
// full PROG_LOAD pipeline and — when accepted — executes it on all three
// engines (legacy interpreter, decoded micro-ops, x86-64 JIT), comparing
// every engine's r0 against the case's expected value and against the other
// engines. Divergence here is a replayable expected-value oracle: unlike the
// differential oracles in src/core, the ground truth is authored, not
// inferred, so a conformance mismatch directly names the broken engine
// semantics.

#ifndef SRC_CONFORMANCE_RUNNER_H_
#define SRC_CONFORMANCE_RUNNER_H_

#include <string>
#include <vector>

#include "src/conformance/corpus.h"
#include "src/ebpf/program.h"
#include "src/runtime/exec_context.h"
#include "src/verifier/bug_registry.h"
#include "src/verifier/kernel_version.h"

namespace bvf {
namespace conf {

// Per-case outcome, ordered by severity (Worst() keeps the max).
enum class CaseVerdict {
  kPass,              // accepted; every engine returned the expected r0
  kExpectedReject,    // `-- error` case, verifier rejected as expected
  kUnexpectedAccept,  // `-- error` case, verifier accepted — verifier gap
  kReject,            // `-- result` case, verifier rejected — verifier gap
  kMismatch,          // accepted but an engine's r0 differs (engine bug)
};

const char* CaseVerdictName(CaseVerdict verdict);

// One engine's execution of an accepted case.
struct EngineRun {
  bpf::ExecEngine engine = bpf::ExecEngine::kLegacy;
  bool ran = false;  // false when the engine is unavailable (JIT off-host)
  uint64_t r0 = 0;
  int err = 0;
  std::string abort_reason;
};

struct CaseResult {
  std::string name;
  CaseVerdict verdict = CaseVerdict::kPass;
  std::string verifier_log;      // only on rejections
  std::vector<EngineRun> runs;   // one per engine that was attempted
  std::string detail;            // human-readable mismatch/reject description
};

// Substrate parameters. Each engine gets a freshly booted kernel so no state
// leaks between engines or cases; the config mirrors the campaign options so
// `--conformance` observes the same simulated kernel the campaign fuzzes.
struct RunnerConfig {
  bpf::KernelVersion version = bpf::KernelVersion::kBpfNext;
  bpf::BugConfig bugs;  // default: all bugs off
  size_t arena_size = 1u << 20;
  bool sanitize = false;  // instrument programs with the BPF sanitizer
  bpf::ExecLimits limits;
};

// Converts an assembled case into a loadable tracepoint program (the
// tracepoint context is 8 read-only u64 slots with no kernel-written
// pointers, which is what lets `-- mem` images be delivered verbatim).
bpf::Program ToProgram(const ConformanceCase& c);

class ConformanceRunner {
 public:
  explicit ConformanceRunner(const RunnerConfig& config) : config_(config) {}
  ConformanceRunner() : ConformanceRunner(RunnerConfig{}) {}

  // Runs one case: loads on a fresh substrate per engine, executes when
  // accepted, classifies. Deterministic — same case, same result.
  CaseResult RunCase(const ConformanceCase& c) const;

  // Runs every case in order. |results| may be null when only the summary
  // counters matter.
  struct Summary {
    uint64_t cases = 0;
    uint64_t passed = 0;        // kPass + kExpectedReject
    uint64_t mismatches = 0;    // kMismatch
    uint64_t rejects = 0;       // kReject + kUnexpectedAccept
  };
  Summary RunCorpus(const std::vector<ConformanceCase>& corpus,
                    std::vector<CaseResult>* results) const;

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace conf
}  // namespace bvf

#endif  // SRC_CONFORMANCE_RUNNER_H_
