// Conformance corpus loader (DESIGN.md §15).
//
// A corpus case is one `.data` file with up to four sections:
//
//   -- asm        assembly text (required), one instruction per line
//   -- mem        optional hex bytes copied into the program context
//   -- result     expected r0 after execution (decimal or 0x hex, u64)
//   -- error      the verifier is expected to REJECT this program; the
//                 section body (optional) is a substring of the expected log
//
// Exactly one of `-- result` / `-- error` must be present. `#` starts a
// comment anywhere; blank lines are ignored. Directory loads scan `*.data`
// in byte-wise filename order so every runner sees the corpus identically.

#ifndef SRC_CONFORMANCE_CORPUS_H_
#define SRC_CONFORMANCE_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"

namespace bvf {
namespace conf {

struct ConformanceCase {
  std::string name;  // file stem, e.g. "alu64_add_imm"
  std::string path;  // full path when loaded from disk, else empty

  std::string asm_text;           // raw `-- asm` section body
  std::vector<bpf::Insn> insns;   // assembled program

  std::vector<uint8_t> mem;       // `-- mem` bytes (context image), may be empty

  bool expect_reject = false;     // case carries `-- error`
  uint64_t expected_r0 = 0;       // valid when !expect_reject
  std::string expected_error;     // optional log substring for reject cases
};

// Parses one case text. |name| seeds the case name (error messages and
// reporting). Returns false with a human-readable message on malformed
// sections, assembly errors (with line numbers), truncated hex, a missing
// `-- result`, or a `-- result`/`-- error` conflict.
bool ParseCaseText(const std::string& text, const std::string& name,
                   ConformanceCase* out, std::string* error);

// Loads one `.data` file.
bool LoadCaseFile(const std::string& path, ConformanceCase* out, std::string* error);

// Scans |dir| (non-recursively) for `*.data` files in sorted filename order.
// Returns false if the directory is unreadable or any case fails to parse;
// |error| names the offending file. An empty directory is an error — a
// conformance run over zero cases is always a misconfiguration.
bool LoadCorpusDir(const std::string& dir, std::vector<ConformanceCase>* out,
                   std::string* error);

}  // namespace conf
}  // namespace bvf

#endif  // SRC_CONFORMANCE_CORPUS_H_
